#include "core/semiring.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace adtp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Semiring, MinCostTableRow) {
  const Semiring s = Semiring::min_cost();
  EXPECT_EQ(s.one(), 0);
  EXPECT_EQ(s.zero(), kInf);
  EXPECT_EQ(s.combine(3, 4), 7);
  EXPECT_TRUE(s.prefer(3, 4));
  EXPECT_FALSE(s.prefer(4, 3));
  EXPECT_EQ(s.choose(3, 4), 3);
}

TEST(Semiring, MinTimeSeqMatchesMinCost) {
  const Semiring s = Semiring::min_time_seq();
  EXPECT_EQ(s.combine(5, 2), 7);
  EXPECT_EQ(s.choose(5, 2), 2);
  EXPECT_EQ(s.zero(), kInf);
}

TEST(Semiring, MinTimeParCombinesWithMax) {
  const Semiring s = Semiring::min_time_par();
  EXPECT_EQ(s.combine(5, 2), 5);
  EXPECT_EQ(s.choose(5, 2), 2);
  EXPECT_EQ(s.one(), 0);
  EXPECT_EQ(s.zero(), kInf);
}

TEST(Semiring, MinSkillCombinesWithMax) {
  const Semiring s = Semiring::min_skill();
  EXPECT_EQ(s.combine(30, 80), 80);
  EXPECT_EQ(s.choose(30, 80), 30);
}

TEST(Semiring, ProbabilityTableRow) {
  // From the Definition 4 axioms: ([0,1], max, *, 0, 1, >=).
  const Semiring s = Semiring::probability();
  EXPECT_EQ(s.one(), 1);   // unit of *: certain success
  EXPECT_EQ(s.zero(), 0);  // worst value: impossible
  EXPECT_DOUBLE_EQ(s.combine(0.5, 0.5), 0.25);
  EXPECT_TRUE(s.prefer(0.8, 0.2));   // higher probability preferred
  EXPECT_FALSE(s.prefer(0.2, 0.8));
  EXPECT_EQ(s.choose(0.8, 0.2), 0.8);
}

TEST(Semiring, InfinityAbsorbsInMinCost) {
  const Semiring s = Semiring::min_cost();
  EXPECT_EQ(s.combine(kInf, 5), kInf);
  EXPECT_TRUE(s.prefer(5, kInf));
}

TEST(Semiring, StrictAndEquivalent) {
  const Semiring s = Semiring::min_cost();
  EXPECT_TRUE(s.strictly_prefer(1, 2));
  EXPECT_FALSE(s.strictly_prefer(2, 1));
  EXPECT_FALSE(s.strictly_prefer(2, 2));
  EXPECT_TRUE(s.equivalent(2, 2));
  EXPECT_FALSE(s.equivalent(1, 2));
}

class TableIDomains : public ::testing::TestWithParam<SemiringKind> {};

TEST_P(TableIDomains, SatisfiesDefinition4Axioms) {
  const Semiring s{GetParam()};
  const auto report = s.check_axioms(/*seed=*/17, /*samples=*/500);
  EXPECT_TRUE(report.commutative);
  EXPECT_TRUE(report.associative);
  EXPECT_TRUE(report.monotone);
  EXPECT_TRUE(report.one_is_unit);
  EXPECT_TRUE(report.one_minimal);
  EXPECT_TRUE(report.zero_maximal);
  EXPECT_TRUE(report.order_total);
  EXPECT_TRUE(report.all_hold());
}

std::string domain_case_name(
    const ::testing::TestParamInfo<SemiringKind>& info) {
  return semiring_kind_name(info.param);
}

INSTANTIATE_TEST_SUITE_P(
    AllBuiltIns, TableIDomains,
    ::testing::Values(SemiringKind::MinCost, SemiringKind::MinTimeSeq,
                      SemiringKind::MinTimePar, SemiringKind::MinSkill,
                      SemiringKind::Probability),
    domain_case_name);

TEST(Semiring, CustomDomainWorks) {
  // "max damage given a budget" style domain: combine = +, prefer = >=
  // (the attacker wants more damage); one = 0 damage, zero = "impossible"
  // marked by -inf.
  const Semiring damage = Semiring::custom(
      "damage", 0.0, -kInf, [](double a, double b) { return a + b; },
      [](double a, double b) { return a >= b; });
  EXPECT_EQ(damage.kind(), SemiringKind::Custom);
  EXPECT_EQ(damage.name(), "damage");
  EXPECT_EQ(damage.combine(3, 4), 7);
  EXPECT_EQ(damage.choose(3, 4), 4);
  EXPECT_TRUE(damage.prefer(4, 3));
}

TEST(Semiring, CustomDomainAxiomCheckCatchesBrokenCombine) {
  // Subtraction is neither commutative nor associative nor monotone.
  const Semiring broken = Semiring::custom(
      "broken", 0.0, kInf, [](double a, double b) { return a - b; },
      [](double a, double b) { return a <= b; });
  const auto report = broken.check_axioms(3, 500);
  EXPECT_FALSE(report.commutative);
  EXPECT_FALSE(report.all_hold());
}

TEST(Semiring, CustomRequiresHooks) {
  EXPECT_THROW((void)Semiring::custom("x", 0, 1, nullptr,
                                      [](double, double) { return true; }),
               ModelError);
  EXPECT_THROW(
      (void)Semiring::custom("x", 0, 1,
                             [](double a, double b) { return a + b; },
                             nullptr),
      ModelError);
}

TEST(Semiring, CustomKindCannotUsePlainConstructor) {
  EXPECT_THROW(Semiring s{SemiringKind::Custom}, ModelError);
}

TEST(Semiring, ParseKindNames) {
  EXPECT_EQ(parse_semiring_kind("mincost"), SemiringKind::MinCost);
  EXPECT_EQ(parse_semiring_kind("min-cost"), SemiringKind::MinCost);
  EXPECT_EQ(parse_semiring_kind("MIN_COST"), SemiringKind::MinCost);
  EXPECT_EQ(parse_semiring_kind("mintimeseq"), SemiringKind::MinTimeSeq);
  EXPECT_EQ(parse_semiring_kind("mintimepar"), SemiringKind::MinTimePar);
  EXPECT_EQ(parse_semiring_kind("minskill"), SemiringKind::MinSkill);
  EXPECT_EQ(parse_semiring_kind("probability"), SemiringKind::Probability);
  EXPECT_EQ(parse_semiring_kind("prob"), SemiringKind::Probability);
  EXPECT_FALSE(parse_semiring_kind("nonsense").has_value());
}

TEST(Semiring, KindNamesRoundTrip) {
  for (SemiringKind kind :
       {SemiringKind::MinCost, SemiringKind::MinTimeSeq,
        SemiringKind::MinTimePar, SemiringKind::MinSkill,
        SemiringKind::Probability}) {
    EXPECT_EQ(parse_semiring_kind(semiring_kind_name(kind)), kind);
  }
  EXPECT_THROW((void)semiring_kind_name(SemiringKind::Custom), ModelError);
}

TEST(Semiring, ToStringHumanNames) {
  EXPECT_STREQ(to_string(SemiringKind::MinCost), "min cost");
  EXPECT_STREQ(to_string(SemiringKind::Probability), "probability");
}

}  // namespace
}  // namespace adtp
