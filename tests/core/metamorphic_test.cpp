/// Metamorphic properties: semantic invariants that must hold under
/// controlled transformations of the model. These catch whole classes of
/// bugs (ordering sensitivity, price-handling errors, gate asymmetries)
/// that fixed golden values cannot.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "adt/transform.hpp"
#include "core/analyzer.hpp"
#include "core/budget.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"
#include "util/rng.hpp"

namespace adtp {
namespace {

const Semiring kCost = Semiring::min_cost();

AugmentedAdt random_model(std::uint64_t seed, double share = 0.25) {
  RandomAdtOptions options;
  options.target_nodes = 30;
  options.share_probability = share;
  options.max_defenses = 7;
  return generate_random_aadt(options, seed, kCost, kCost);
}

Front front_of(const AugmentedAdt& aadt) { return analyze(aadt).front; }

/// Rebuilds the model with one leaf's value replaced.
AugmentedAdt with_value(const AugmentedAdt& aadt, const std::string& leaf,
                        double value) {
  Attribution beta = aadt.attribution();
  beta.set(leaf, value);
  return AugmentedAdt(aadt.adt(), std::move(beta), aadt.defender_domain(),
                      aadt.attacker_domain());
}

/// Clones the ADT with every AND/OR gate's children shuffled.
AugmentedAdt with_shuffled_children(const AugmentedAdt& aadt,
                                    std::uint64_t seed) {
  const Adt& adt = aadt.adt();
  Rng rng(seed);
  Adt clone;
  std::vector<NodeId> remap(adt.size());
  for (NodeId v : adt.topological_order()) {
    const Node& n = adt.node(v);
    switch (n.type) {
      case GateType::BasicStep:
        remap[v] = clone.add_basic(n.name, n.agent);
        break;
      case GateType::Inhibit:
        remap[v] = clone.add_inhibit(n.name, remap[n.children[0]],
                                     remap[n.children[1]]);
        break;
      case GateType::And:
      case GateType::Or: {
        std::vector<NodeId> children;
        children.reserve(n.children.size());
        for (NodeId c : n.children) children.push_back(remap[c]);
        for (std::size_t i = children.size(); i > 1; --i) {
          std::swap(children[i - 1], children[rng.below(i)]);
        }
        remap[v] = clone.add_gate(n.name, n.type, n.agent,
                                  std::move(children));
        break;
      }
    }
  }
  clone.set_root(remap[adt.root()]);
  clone.freeze();
  return AugmentedAdt(std::move(clone), aadt.attribution(),
                      aadt.defender_domain(), aadt.attacker_domain());
}

class Metamorphic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Metamorphic, ChildOrderIrrelevant) {
  const AugmentedAdt original = random_model(GetParam());
  const AugmentedAdt shuffled =
      with_shuffled_children(original, GetParam() * 3 + 1);
  EXPECT_TRUE(front_of(original).same_values(front_of(shuffled), kCost,
                                             kCost));
}

TEST_P(Metamorphic, ScalingAttackerCostsScalesTheFront) {
  const AugmentedAdt original = random_model(GetParam());
  constexpr double kScale = 7.0;
  Attribution beta = original.attribution();
  for (NodeId id : original.adt().attack_steps()) {
    beta.set(original.adt().name(id),
             beta.get(original.adt().name(id)) * kScale);
  }
  const AugmentedAdt scaled(original.adt(), std::move(beta), kCost, kCost);

  const Front before = front_of(original);
  const Front after = front_of(scaled);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before.points()[i].def, after.points()[i].def);
    EXPECT_EQ(before.points()[i].att * kScale, after.points()[i].att);
  }
}

TEST_P(Metamorphic, RaisingADefensePriceNeverHelpsTheDefender) {
  const AugmentedAdt original = random_model(GetParam());
  if (original.adt().num_defenses() == 0) GTEST_SKIP();
  const std::string leaf =
      original.adt().name(original.adt().defense_steps()[0]);
  const AugmentedAdt pricier =
      with_value(original, leaf, original.attribution().get(leaf) + 37);

  const Front cheap = front_of(original);
  const Front expensive = front_of(pricier);
  // At every budget, the cheap model guarantees an attacker value that is
  // at least as adverse.
  for (double budget : {0.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1e9}) {
    const double g_cheap =
        guaranteed_attacker_value(cheap, budget, kCost, kCost);
    const double g_expensive =
        guaranteed_attacker_value(expensive, budget, kCost, kCost);
    EXPECT_TRUE(kCost.prefer(g_expensive, g_cheap))
        << "budget " << budget << ": cheap guarantees " << g_cheap
        << ", expensive " << g_expensive;
  }
}

TEST_P(Metamorphic, LoweringAnAttackPriceNeverHurtsTheAttacker) {
  const AugmentedAdt original = random_model(GetParam());
  const std::string leaf =
      original.adt().name(original.adt().attack_steps()[0]);
  const double old_value = original.attribution().get(leaf);
  if (old_value <= 1) GTEST_SKIP();
  const AugmentedAdt cheaper = with_value(original, leaf, old_value / 2);

  const Front before = front_of(original);
  const Front after = front_of(cheaper);
  for (double budget : {0.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1e9}) {
    const double g_before =
        guaranteed_attacker_value(before, budget, kCost, kCost);
    const double g_after =
        guaranteed_attacker_value(after, budget, kCost, kCost);
    // The attacker weakly prefers the after-value.
    EXPECT_TRUE(kCost.prefer(g_after, g_before)) << "budget " << budget;
  }
}

TEST_P(Metamorphic, AddingADominatedAttackAlternativeChangesNothing) {
  // Wrap the root in OR(root, overpriced-copy-of-cheapest-attack).
  const AugmentedAdt original = random_model(GetParam());
  if (original.adt().agent(original.adt().root()) != Agent::Attacker) {
    GTEST_SKIP();
  }
  const Adt& adt = original.adt();
  Adt clone;
  std::vector<NodeId> remap(adt.size());
  for (NodeId v : adt.topological_order()) {
    const Node& n = adt.node(v);
    switch (n.type) {
      case GateType::BasicStep:
        remap[v] = clone.add_basic(n.name, n.agent);
        break;
      case GateType::Inhibit:
        remap[v] = clone.add_inhibit(n.name, remap[n.children[0]],
                                     remap[n.children[1]]);
        break;
      default: {
        std::vector<NodeId> children;
        for (NodeId c : n.children) children.push_back(remap[c]);
        remap[v] = clone.add_gate(n.name, n.type, n.agent,
                                  std::move(children));
      }
    }
  }
  const NodeId pricey = clone.add_basic("overpriced", Agent::Attacker);
  const NodeId root = clone.add_gate("wrapped_root", GateType::Or,
                                     Agent::Attacker,
                                     {remap[adt.root()], pricey});
  clone.set_root(root);
  clone.freeze();

  Attribution beta = original.attribution();
  beta.set("overpriced", 1e12);  // never optimal against a finite attack
  const AugmentedAdt wrapped(std::move(clone), std::move(beta), kCost,
                             kCost);

  // Finite points are untouched; "perfect defense" points (att = inf)
  // degrade to the fallback's cost, since the overpriced alternative is
  // always available now.
  const Front original_front = front_of(original);
  std::vector<ValuePoint> expected_points;
  for (ValuePoint p : original_front.points()) {
    if (std::isinf(p.att)) p.att = 1e12;
    expected_points.push_back(p);
  }
  const Front expected =
      Front::minimized(std::move(expected_points), kCost, kCost);
  EXPECT_TRUE(expected.same_values(front_of(wrapped), kCost, kCost));
}

TEST_P(Metamorphic, UnfoldedTreeOfATreeIsIdentical) {
  const AugmentedAdt tree = random_model(GetParam(), /*share=*/0.0);
  ASSERT_TRUE(tree.adt().is_tree());
  const AugmentedAdt unfolded = unfold_to_tree(tree);
  EXPECT_EQ(unfolded.adt().size(), tree.adt().size());
  EXPECT_TRUE(front_of(tree).same_values(front_of(unfolded), kCost, kCost));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Metamorphic,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace adtp
