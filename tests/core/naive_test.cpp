#include "core/naive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/catalog.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace adtp {
namespace {

TEST(Naive, Example2FeasibleEvents) {
  // S = {(00,010),(01,010),(10,010),(11,110)} on Fig. 3.
  const AugmentedAdt fig3 = catalog::fig3_example();
  const auto events = enumerate_feasible_events(fig3);
  ASSERT_EQ(events.size(), 4u);  // one per defense vector

  auto find = [&](const std::string& delta) -> const FeasibleEvent& {
    for (const auto& ev : events) {
      if (ev.defense.to_string() == delta) return ev;
    }
    throw std::logic_error("missing delta " + delta);
  };

  EXPECT_EQ(find("00").response->to_string(), "010");
  EXPECT_EQ(find("01").response->to_string(), "010");
  EXPECT_EQ(find("10").response->to_string(), "010");
  EXPECT_EQ(find("11").response->to_string(), "110");
  EXPECT_EQ(find("00").attack_value, 10);
  EXPECT_EQ(find("11").attack_value, 15);
  EXPECT_EQ(find("11").defense_value, 15);
}

TEST(Naive, Fig3Front) {
  const AugmentedAdt fig3 = catalog::fig3_example();
  EXPECT_EQ(naive_front(fig3).to_string(), "{(0, 10), (15, 15)}");
}

TEST(Naive, Fig5Front) {
  const AugmentedAdt fig5 = catalog::fig5_example();
  EXPECT_EQ(naive_front(fig5).to_string(), "{(0, 5), (4, 10), (12, inf)}");
}

TEST(Naive, Fig4ExponentialFront) {
  // |PF| = 2^n and each point is (k, k).
  const AugmentedAdt fig4 = catalog::fig4_exponential(5);
  const Front front = naive_front(fig4);
  ASSERT_EQ(front.size(), 32u);
  for (std::size_t k = 0; k < 32; ++k) {
    EXPECT_EQ(front.points()[k].def, static_cast<double>(k));
    EXPECT_EQ(front.points()[k].att, static_cast<double>(k));
  }
}

TEST(Naive, Fig4ResponseMirrorsDefense) {
  // rho(delta) = delta for the Fig. 4 family.
  const AugmentedAdt fig4 = catalog::fig4_exponential(4);
  for (const auto& ev : enumerate_feasible_events(fig4)) {
    ASSERT_TRUE(ev.response.has_value());
    EXPECT_EQ(ev.response->to_string(), ev.defense.to_string());
  }
}

TEST(Naive, MoneyTheftDagFront) {
  EXPECT_EQ(naive_front(catalog::money_theft_dag()).to_string(),
            "{(0, 80), (20, 90), (50, 140)}");
}

TEST(Naive, NoValidAttackYieldsInfinity) {
  // Single attack fully inhibited by a defense: with the defense active
  // there is no successful attack, so rho = "hat" with value 1_oplus.
  Adt adt;
  const NodeId a = adt.add_basic("a", Agent::Attacker);
  const NodeId d = adt.add_basic("d", Agent::Defender);
  adt.add_inhibit("top", a, d);
  adt.freeze();
  Attribution beta;
  beta.set("a", 5);
  beta.set("d", 3);
  const AugmentedAdt aadt(std::move(adt), std::move(beta),
                          Semiring::min_cost(), Semiring::min_cost());
  const auto events = enumerate_feasible_events(aadt);
  ASSERT_EQ(events.size(), 2u);
  bool saw_blocked = false;
  for (const auto& ev : events) {
    if (ev.defense.to_string() == "1") {
      EXPECT_FALSE(ev.response.has_value());
      EXPECT_TRUE(std::isinf(ev.attack_value));
      saw_blocked = true;
    }
  }
  EXPECT_TRUE(saw_blocked);
  EXPECT_EQ(naive_front(aadt).to_string(), "{(0, 5), (3, inf)}");
}

TEST(Naive, WitnessesReplayThroughStructureFunction) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const WitnessFront front = naive_front_witness(dag);
  ASSERT_EQ(front.size(), 3u);
  for (const auto& p : front.points()) {
    // Witness values must reproduce the point's metric values.
    EXPECT_EQ(dag.defense_vector_value(p.defense), p.def);
    EXPECT_EQ(dag.attack_vector_value(p.attack), p.att);
  }
}

TEST(Naive, MaxBitsGuard) {
  const AugmentedAdt fig4 = catalog::fig4_exponential(6);  // 12 bits
  NaiveOptions options;
  options.max_bits = 11;
  EXPECT_THROW((void)naive_front(fig4, options), LimitError);
  options.max_bits = 12;
  EXPECT_NO_THROW((void)naive_front(fig4, options));
}

TEST(Naive, DeadlineGuard) {
  const AugmentedAdt fig4 = catalog::fig4_exponential(10);
  const Deadline expired(1e-9);
  // Give the deadline a moment to be in the past.
  while (!expired.expired()) {
  }
  NaiveOptions options;
  options.deadline = &expired;
  EXPECT_THROW((void)naive_front(fig4, options), LimitError);
}

TEST(NaiveSharding, FrontIdenticalAcrossThreadCounts) {
  // The sharded enumeration must be invisible in the result: per-delta
  // values are computed independently of the shard layout and dominance
  // minimization only selects among them, so the fronts are *exactly*
  // equal (not merely approximately) for every thread count.
  const AugmentedAdt fig4 = catalog::fig4_exponential(8);  // 2^8 deltas
  const AugmentedAdt dag = catalog::money_theft_dag();
  for (const AugmentedAdt* model : {&fig4, &dag}) {
    const Front sequential = naive_front(*model);
    for (unsigned threads : {2u, 3u, 4u, 8u}) {
      NaiveOptions options;
      options.threads = threads;
      const Front sharded = naive_front(*model, options);
      EXPECT_TRUE(sharded.same_values(sequential,
                                      model->defender_domain(),
                                      model->attacker_domain()))
          << threads << " threads: " << sharded.to_string() << " vs "
          << sequential.to_string();
    }
  }
}

TEST(NaiveSharding, EventsAndWitnessesIdenticalAcrossThreadCounts) {
  // enumerate_feasible_events fills disjoint slices of one delta-ordered
  // vector, so the event list - bitvecs included - is identical, and the
  // witness front built from it is too.
  // n = 9 keeps 2^9 * 2^9 evaluations above the sharding work floor, so
  // the requested thread count is actually honored.
  const AugmentedAdt fig4 = catalog::fig4_exponential(9);
  const auto sequential = enumerate_feasible_events(fig4);
  NaiveOptions options;
  options.threads = 5;  // deliberately not a divisor of 2^9
  const auto sharded = enumerate_feasible_events(fig4, options);
  ASSERT_EQ(sharded.size(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sharded[i].defense.to_string(),
              sequential[i].defense.to_string());
    EXPECT_EQ(sharded[i].defense_value, sequential[i].defense_value);
    EXPECT_EQ(sharded[i].attack_value, sequential[i].attack_value);
    ASSERT_EQ(sharded[i].response.has_value(),
              sequential[i].response.has_value());
    if (sequential[i].response.has_value()) {
      EXPECT_EQ(sharded[i].response->to_string(),
                sequential[i].response->to_string());
    }
  }

  const WitnessFront seq_witness = naive_front_witness(fig4);
  const WitnessFront sharded_witness = naive_front_witness(fig4, options);
  ASSERT_EQ(sharded_witness.size(), seq_witness.size());
  for (std::size_t i = 0; i < seq_witness.size(); ++i) {
    EXPECT_EQ(sharded_witness.points()[i].defense.to_string(),
              seq_witness.points()[i].defense.to_string());
    EXPECT_EQ(sharded_witness.points()[i].attack.to_string(),
              seq_witness.points()[i].attack.to_string());
  }
}

TEST(NaiveSharding, ThreadsZeroResolvesToHardware) {
  const AugmentedAdt fig4 = catalog::fig4_exponential(6);
  NaiveOptions options;
  options.threads = 0;  // hardware_concurrency
  EXPECT_TRUE(naive_front(fig4, options)
                  .same_values(naive_front(fig4), fig4.defender_domain(),
                               fig4.attacker_domain()));
}

TEST(NaiveSharding, MoreThreadsThanDeltasIsClamped) {
  // 2^1 = 2 deltas with 16 requested workers: shards are clamped so none
  // is empty, and the result is unchanged.
  const AugmentedAdt fig4 = catalog::fig4_exponential(1);
  NaiveOptions options;
  options.threads = 16;
  EXPECT_TRUE(naive_front(fig4, options)
                  .same_values(naive_front(fig4), fig4.defender_domain(),
                               fig4.attacker_domain()));
}

TEST(NaiveSharding, GuardsFireInsideShards) {
  const AugmentedAdt fig4 = catalog::fig4_exponential(10);
  {
    CancelToken cancel;
    cancel.cancel();
    NaiveOptions options;
    options.threads = 4;
    options.cancel = &cancel;
    EXPECT_THROW((void)naive_front(fig4, options), CancelledError);
    EXPECT_THROW((void)enumerate_feasible_events(fig4, options),
                 CancelledError);
  }
  {
    const Deadline expired(1e-9);
    while (!expired.expired()) {
    }
    NaiveOptions options;
    options.threads = 4;
    options.deadline = &expired;
    EXPECT_THROW((void)naive_front(fig4, options), LimitError);
  }
}

TEST(Naive, ProbabilityDomains) {
  // Attacker maximizes success probability; defender's "cost" is also a
  // probability here (e.g. residual risk budget). Check the response is
  // the max-probability attack.
  Adt adt;
  const NodeId a1 = adt.add_basic("a1", Agent::Attacker);
  const NodeId a2 = adt.add_basic("a2", Agent::Attacker);
  adt.add_gate("top", GateType::Or, Agent::Attacker, {a1, a2});
  adt.freeze();
  Attribution beta;
  beta.set("a1", 0.3);
  beta.set("a2", 0.7);
  const AugmentedAdt aadt(std::move(adt), std::move(beta),
                          Semiring::min_cost(), Semiring::probability());
  const auto events = enumerate_feasible_events(aadt);
  ASSERT_EQ(events.size(), 1u);
  // Best single attack is a2 (0.7); doing both multiplies to 0.21, worse.
  EXPECT_DOUBLE_EQ(events[0].attack_value, 0.7);
  EXPECT_EQ(events[0].response->to_string(), "01");
}

}  // namespace
}  // namespace adtp
