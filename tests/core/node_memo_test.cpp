/// NodeFrontMemo is keyed on subtree *content*: identical subtrees in
/// independently built models must share entries, a one-leaf edit must
/// invalidate exactly the root-ward spine, and a memoized re-analysis
/// must be bit-identical to a cold one - fronts and witnesses, at every
/// thread count. The LRU bound, the stats counters, and the
/// FrontCache-key neutrality of the memo knobs are part of the contract
/// (docs/CONTRACTS.md, "Incremental equals cold").

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "core/analyzer.hpp"
#include "core/front_cache.hpp"
#include "core/node_memo.hpp"
#include "gen/catalog.hpp"

namespace adtp {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

/// fig4 with one leaf's attribute value changed.
AugmentedAdt with_tweaked_leaf(const AugmentedAdt& base, const char* leaf,
                               double value) {
  Attribution attribution = base.attribution();
  attribution.set(leaf, value);
  return AugmentedAdt(base.adt(), attribution, base.defender_domain(),
                      base.attacker_domain());
}

TEST(SubtreeHashes, IdenticalContentHashesEqualAcrossBuilds) {
  const AugmentedAdt a = catalog::fig4_exponential(5);
  const AugmentedAdt b = catalog::fig4_exponential(5);
  EXPECT_EQ(subtree_value_hashes(a), subtree_value_hashes(b));
  EXPECT_EQ(subtree_layout_hashes(a.adt()), subtree_layout_hashes(b.adt()));
}

TEST(SubtreeHashes, LeafEditDirtiesExactlyTheSpine) {
  const AugmentedAdt base = catalog::fig4_exponential(5);
  const AugmentedAdt edited = with_tweaked_leaf(base, "d3", 99.0);
  const auto before = subtree_value_hashes(base);
  const auto after = subtree_value_hashes(edited);
  ASSERT_EQ(before.size(), after.size());
  // The dirty spine of a d3 edit is d3, its INH gate I3, and the root.
  const Adt& adt = base.adt();
  const NodeId d3 = adt.at("d3");
  const NodeId i3 = adt.at("I3");
  for (NodeId v = 0; v < before.size(); ++v) {
    const bool on_spine = v == d3 || v == i3 || v == adt.root();
    EXPECT_EQ(before[v] != after[v], on_spine)
        << "node " << adt.name(v) << (on_spine ? " should" : " should not")
        << " change";
  }
  // Layout is value-independent: identical everywhere.
  EXPECT_EQ(subtree_layout_hashes(base.adt()),
            subtree_layout_hashes(edited.adt()));
}

TEST(SubtreeHashes, ContextsSeparateAlgorithmsAndLimits) {
  const AugmentedAdt model = catalog::fig4_exponential(4);
  const BddBuOptions bdd;
  EXPECT_NE(bottom_up_memo_context(model, 0), hybrid_memo_context(model, bdd));
  EXPECT_NE(bottom_up_memo_context(model, 0),
            bottom_up_memo_context(model, 64));
  BddBuOptions seeded;
  seeded.order_heuristic = bdd::OrderHeuristic::Random;
  seeded.order_seed = 7;
  EXPECT_NE(hybrid_memo_context(model, bdd), hybrid_memo_context(model, seeded));
}

TEST(NodeFrontMemoStore, LookupInsertRoundTripIsBitIdentical) {
  NodeFrontMemo memo(8);
  const NodeMemoKey key{1, 2, 0};
  const Front front =
      Front::from_staircase({ValuePoint{1, 8}, ValuePoint{3, 2}});
  Front out;
  EXPECT_FALSE(memo.lookup(key, out));
  memo.insert(key, front);
  ASSERT_TRUE(memo.lookup(key, out));
  EXPECT_TRUE(out.bit_identical_values(front));
  const NodeFrontMemo::Stats stats = memo.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(NodeFrontMemoStore, ValueAndWitnessStoresAreIndependent) {
  NodeFrontMemo memo(8);
  const NodeMemoKey key{1, 2, 0};
  memo.insert(key, Front::singleton(ValuePoint{1, 1}));
  WitnessFront witness_out;
  EXPECT_FALSE(memo.lookup(key, witness_out));  // separate store
  Front value_out;
  EXPECT_TRUE(memo.lookup(key, value_out));
}

TEST(NodeFrontMemoStore, EvictsLeastRecentlyUsedAtCapacity) {
  NodeFrontMemo memo(2);
  memo.insert(NodeMemoKey{1, 0, 0}, Front::singleton(ValuePoint{1, 1}));
  memo.insert(NodeMemoKey{2, 0, 0}, Front::singleton(ValuePoint{2, 2}));
  Front out;
  ASSERT_TRUE(memo.lookup(NodeMemoKey{1, 0, 0}, out));  // refresh key 1
  memo.insert(NodeMemoKey{3, 0, 0}, Front::singleton(ValuePoint{3, 3}));
  EXPECT_TRUE(memo.lookup(NodeMemoKey{1, 0, 0}, out));
  EXPECT_FALSE(memo.lookup(NodeMemoKey{2, 0, 0}, out));  // the LRU victim
  EXPECT_EQ(memo.stats().evictions, 1u);
  EXPECT_EQ(memo.stats().entries, 2u);
}

TEST(NodeFrontMemoStore, CapacityZeroDisablesTheMemo) {
  NodeFrontMemo memo(0);
  memo.insert(NodeMemoKey{1, 0, 0}, Front::singleton(ValuePoint{1, 1}));
  Front out;
  EXPECT_FALSE(memo.lookup(NodeMemoKey{1, 0, 0}, out));
  EXPECT_EQ(memo.stats().entries, 0u);
}

TEST(MemoizedBottomUp, WarmRunIsBitIdenticalToColdAtEveryThreadCount) {
  const AugmentedAdt model = catalog::fig4_exponential(7);
  const Front cold = bottom_up_front(model);
  const WitnessFront cold_witness = bottom_up_front_witness(model);

  NodeFrontMemo memo;
  for (unsigned threads : kThreadCounts) {
    BottomUpOptions options;
    options.threads = threads;
    options.parallel_node_floor = 0;
    options.memo = &memo;
    NodeMemoStats stats;
    options.memo_stats = &stats;
    EXPECT_TRUE(bottom_up_front(model, options).bit_identical_values(cold))
        << "memoized@" << threads << " threads diverged from cold";
    const WitnessFront warm_witness = bottom_up_front_witness(model, options);
    EXPECT_TRUE(warm_witness.bit_identical_values(cold_witness));
    for (std::size_t i = 0; i < warm_witness.size(); ++i) {
      EXPECT_EQ(warm_witness.points()[i].defense,
                cold_witness.points()[i].defense);
      EXPECT_EQ(warm_witness.points()[i].attack,
                cold_witness.points()[i].attack);
    }
  }
  // After the first pair of runs every gate front is resident: the later
  // runs must be pure replay (single memo hit at the root, zero misses).
  BottomUpOptions warm;
  warm.memo = &memo;
  NodeMemoStats stats;
  warm.memo_stats = &stats;
  EXPECT_TRUE(bottom_up_front(model, warm).bit_identical_values(cold));
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(MemoizedBottomUp, LeafEditRecomputesOnlyTheDirtySpine) {
  const AugmentedAdt base = catalog::fig4_exponential(7);
  NodeFrontMemo memo;
  BottomUpOptions options;
  options.memo = &memo;
  NodeMemoStats stats;
  options.memo_stats = &stats;
  (void)bottom_up_front(base, options);  // warm the memo

  const AugmentedAdt edited = with_tweaked_leaf(base, "d4", 1234.0);
  stats = {};
  const Front incremental = bottom_up_front(edited, options);
  // fig4's root folds n INH gates; a d4 edit dirties I4 and the root, so
  // the other n-1 INH fronts replay from the memo.
  EXPECT_EQ(stats.hits, 6u);
  EXPECT_EQ(stats.misses, 2u);  // I4 and the root
  BottomUpOptions cold;
  EXPECT_TRUE(incremental.bit_identical_values(bottom_up_front(edited, cold)));
}

TEST(MemoizedHybrid, WarmRunIsBitIdenticalToColdOnADag) {
  // money_theft_dag shares its "phishing" leaf between two subtrees, so
  // Auto routes it to BddBu and analyze_incremental to Hybrid.
  const AugmentedAdt model = catalog::money_theft_dag();
  HybridOptions cold_options;
  const Front cold = hybrid_front(model, cold_options);

  NodeFrontMemo memo;
  HybridOptions options;
  options.memo = &memo;
  NodeMemoStats stats;
  options.memo_stats = &stats;
  EXPECT_TRUE(hybrid_front(model, options).bit_identical_values(cold));
  EXPECT_GT(stats.misses, 0u);
  stats = {};
  EXPECT_TRUE(hybrid_front(model, options).bit_identical_values(cold));
  EXPECT_EQ(stats.hits, 1u);  // root replay
  EXPECT_EQ(stats.misses, 0u);
}

TEST(AnalyzeIncremental, ResolvesAutoAndMatchesCold) {
  const AugmentedAdt tree = catalog::fig4_exponential(6);
  const AugmentedAdt dag = catalog::money_theft_dag();
  NodeFrontMemo memo;

  const AnalysisResult tree_warm = analyze_incremental(tree, memo);
  EXPECT_EQ(tree_warm.used, Algorithm::BottomUp);
  EXPECT_TRUE(tree_warm.front.bit_identical_values(analyze(tree).front));
  EXPECT_GT(tree_warm.memo_misses, 0u);

  const AnalysisResult dag_warm = analyze_incremental(dag, memo);
  EXPECT_EQ(dag_warm.used, Algorithm::Hybrid);
  HybridOptions hybrid;
  EXPECT_TRUE(dag_warm.front.bit_identical_values(hybrid_front(dag, hybrid)));

  // Second calls replay from the shared memo.
  const AnalysisResult replay = analyze_incremental(tree, memo);
  EXPECT_EQ(replay.memo_hits, 1u);
  EXPECT_EQ(replay.memo_misses, 0u);
  EXPECT_TRUE(replay.front.bit_identical_values(tree_warm.front));
}

TEST(MemoKnobs, StayOutOfTheFrontCacheKey) {
  const AugmentedAdt model = catalog::fig4_exponential(4);
  NodeFrontMemo memo;
  AnalysisOptions plain;
  AnalysisOptions memoized;
  memoized.bottom_up.memo = &memo;
  memoized.hybrid.memo = &memo;
  NodeMemoStats stats;
  memoized.bottom_up.memo_stats = &stats;
  AnalysisOptions grained;
  grained.bdd.task_grain_points = 1;  // execution-only, like threads
  EXPECT_EQ(front_cache_key(model, plain), front_cache_key(model, memoized));
  EXPECT_EQ(front_cache_key(model, plain), front_cache_key(model, grained));
}

TEST(CustomDomains, BypassTheMemo) {
  const AugmentedAdt base = catalog::fig4_exponential(4);
  // min-cost via opaque hooks: semantically identical, but the hooks
  // cannot be content-hashed, so fronts must not be memoized.
  const Semiring custom = Semiring::custom(
      "custom-cost", 0.0, std::numeric_limits<double>::infinity(),
      [](double a, double b) { return a + b; },
      [](double a, double b) { return a <= b; });
  const AugmentedAdt model(base.adt(), base.attribution(), custom,
                           base.attacker_domain());
  EXPECT_FALSE(memoizable(model));
  NodeFrontMemo memo;
  BottomUpOptions options;
  options.memo = &memo;
  NodeMemoStats stats;
  options.memo_stats = &stats;
  (void)bottom_up_front(model, options);
  EXPECT_EQ(stats.hits + stats.misses, 0u);
  EXPECT_EQ(memo.stats().entries, 0u);
}

}  // namespace
}  // namespace adtp
