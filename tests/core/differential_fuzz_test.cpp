/// Cross-algorithm differential fuzz harness.
///
/// Four algorithms now share one semantics (Theorems 1-2 plus the hybrid
/// decomposition), and all four are additionally parameterized by an
/// intra-model thread count that must not change a single bit of output.
/// This suite pits them all against each other on seeded random models:
///
///  - oracle agreement: naive (Algorithm 2) is ground truth; bottom-up
///    (trees), BDDBU, and hybrid must reproduce its front;
///  - thread invariance: every parallel algorithm must produce
///    *bit-identical* fronts - and witnesses - at 1, 2, and 8 threads
///    (this is what keeps the thread knobs out of the FrontCache key);
///  - witness validity: every witness must replay through the structure
///    function and match its claimed metric values.
///
/// This suite pins the determinism and cache-key-neutrality invariants
/// of docs/CONTRACTS.md - update both together.
///
/// On failure the offending model is dumped as a .adt file (plus its
/// generator seed) so the case can be replayed with
/// `adt_cli analyze <file>` or a targeted unit test.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "adt/structure.hpp"
#include "adt/text_format.hpp"
#include "core/analyzer.hpp"
#include "gen/random_adt.hpp"
#include "util/cpu.hpp"

namespace adtp {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

struct FuzzDomains {
  SemiringKind defender;
  SemiringKind attacker;
};

// A rotating palette of Table I domain pairs (see cross_algorithm_test for
// the full matrix; here the goal is breadth per seed, not per pair).
constexpr FuzzDomains kDomainPalette[] = {
    {SemiringKind::MinCost, SemiringKind::MinCost},
    {SemiringKind::MinCost, SemiringKind::MinTimePar},
    {SemiringKind::MinSkill, SemiringKind::MinCost},
    {SemiringKind::MinCost, SemiringKind::Probability},
    {SemiringKind::MinTimeSeq, SemiringKind::MinSkill},
};

/// Exact (bitwise, not domain-equivalent) front comparison: the thread
/// invariance contract is that the same doubles come out.
template <typename P>
bool bit_identical_values(const BasicFront<P>& a, const BasicFront<P>& b) {
  return a.bit_identical_values(b);
}

bool bit_identical_witnesses(const WitnessFront& a, const WitnessFront& b) {
  if (!bit_identical_values(a, b)) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.points()[i].defense != b.points()[i].defense) return false;
    if (a.points()[i].attack != b.points()[i].attack) return false;
  }
  return true;
}

/// Dumps the model next to the test binary's temp dir and returns a
/// replay hint appended to every failure message of the case.
std::string dump_model(const AugmentedAdt& aadt, std::uint64_t seed) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("adtp_differential_fuzz_seed" + std::to_string(seed) +
                     ".adt");
  save_adt_file(aadt, path.string());
  return "seed " + std::to_string(seed) + "; model dumped to " +
         path.string() + " (replay: adt_cli analyze " + path.string() + ")";
}

AugmentedAdt model_for_seed(std::uint64_t seed, bool dag) {
  RandomAdtOptions options;
  options.share_probability = dag ? 0.3 : 0.0;
  options.max_defenses = 6;
  options.root_agent = seed % 3 == 0 ? Agent::Defender : Agent::Attacker;
  const FuzzDomains domains =
      kDomainPalette[seed % (sizeof(kDomainPalette) /
                             sizeof(kDomainPalette[0]))];
  // Every case runs the naive oracle ~8 times (value + witness paths at
  // several thread counts), each a 2^|D| x 2^|A| scan - and the TSan CI
  // job amplifies that by ~50x on oversubscribed runners. |D| is capped
  // by the generator; cap |A| too by shrinking the target until the
  // model fits the budget (deterministic per seed).
  for (std::size_t target = 16 + seed % 18;; target -= 4) {
    options.target_nodes = target;
    AugmentedAdt aadt = generate_random_aadt(
        options, seed, Semiring{domains.defender}, Semiring{domains.attacker});
    if (aadt.adt().num_attacks() <= 12 || target <= 8) return aadt;
  }
}

/// Relative-error comparison for witness metric replay: the kernels and
/// AugmentedAdt::*_vector_value combine the same leaf values in
/// different association orders, which double arithmetic only preserves
/// up to ULPs (same tolerance rationale as Front::approx_same_values).
void expect_value_replays(double replayed, double claimed,
                          const char* context) {
  if (replayed == claimed) return;  // covers equal infinities
  const double scale = std::max({1.0, std::abs(replayed), std::abs(claimed)});
  EXPECT_LE(std::abs(replayed - claimed), 1e-9 * scale) << context;
}

/// Validates one witness front against the structure function. An
/// attacker value of 1_oplus_A (inf for the min-* domains, 0 for
/// probability) is the "no successful attack exists" sentinel - there is
/// no attack vector to replay then.
void expect_witnesses_valid(const AugmentedAdt& aadt,
                            const WitnessFront& front, const char* who) {
  StructureEvaluator eval(aadt.adt());
  const double no_attack = aadt.attacker_domain().zero();
  for (const auto& p : front.points()) {
    expect_value_replays(
        aadt.defense_vector_value(p.defense), p.def,
        (std::string(who) + ": defense witness does not replay").c_str());
    if (p.att == no_attack) continue;  // no successful attack recorded
    expect_value_replays(
        aadt.attack_vector_value(p.attack), p.att,
        (std::string(who) + ": attack witness does not replay").c_str());
    EXPECT_TRUE(eval.attack_succeeds(p.defense, p.attack))
        << who << ": witness attack does not succeed";
  }
}

class DifferentialFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialFuzz, AlgorithmsAgreeAcrossThreadCounts) {
  const std::uint64_t seed = GetParam();
  const bool dag = seed % 2 == 0;
  const AugmentedAdt aadt = model_for_seed(seed, dag);

  // Oracle (sequential naive).
  const Front oracle = naive_front(aadt);

  // Naive: values must be bit-identical for every thread count (the
  // per-delta computation is sharding-invariant by construction).
  for (unsigned threads : kThreadCounts) {
    NaiveOptions naive;
    naive.threads = threads;
    EXPECT_TRUE(bit_identical_values(naive_front(aadt, naive), oracle))
        << "naive@" << threads << " threads diverged";
  }

  // BDDBU: bit-identical across thread counts, oracle-equal in value.
  BddBuOptions bdd_base;
  bdd_base.parallel_node_floor = 0;  // force the pool even on tiny models
  const Front bdd_reference = bdd_bu_front(aadt, bdd_base);
  EXPECT_TRUE(bdd_reference.approx_same_values(oracle))
      << "BDDBU " << bdd_reference.to_string() << " vs naive "
      << oracle.to_string();
  for (unsigned threads : kThreadCounts) {
    BddBuOptions bdd = bdd_base;
    bdd.threads = threads;
    EXPECT_TRUE(bit_identical_values(bdd_bu_front(aadt, bdd), bdd_reference))
        << "bdd@" << threads << " threads diverged";
  }

  // Hybrid: same contract, threaded through its blob options.
  HybridOptions hybrid_base;
  hybrid_base.bdd.parallel_node_floor = 0;
  const Front hybrid_reference = hybrid_front(aadt, hybrid_base);
  EXPECT_TRUE(hybrid_reference.approx_same_values(oracle))
      << "hybrid " << hybrid_reference.to_string() << " vs naive "
      << oracle.to_string();
  for (unsigned threads : kThreadCounts) {
    HybridOptions hybrid = hybrid_base;
    hybrid.bdd.threads = threads;
    EXPECT_TRUE(
        bit_identical_values(hybrid_front(aadt, hybrid), hybrid_reference))
        << "hybrid@" << threads << " threads diverged";
  }

  // Bottom-up only applies to trees: oracle-equal in value, and the
  // sibling-subtree task DAG must be bit-identical to the sequential
  // walk - front AND witnesses - at every thread count.
  if (aadt.adt().is_tree()) {
    BottomUpOptions bu_base;
    bu_base.parallel_node_floor = 0;  // force the task DAG on tiny trees
    const Front bu_reference = bottom_up_front(aadt);
    EXPECT_TRUE(bu_reference.approx_same_values(oracle))
        << "bottom-up diverged from naive";
    const WitnessFront bu_witness = bottom_up_front_witness(aadt);
    expect_witnesses_valid(aadt, bu_witness, "bottom-up");
    for (unsigned threads : kThreadCounts) {
      BottomUpOptions bu = bu_base;
      bu.threads = threads;
      EXPECT_TRUE(
          bit_identical_values(bottom_up_front(aadt, bu), bu_reference))
          << "bottom-up@" << threads << " threads diverged";
      EXPECT_TRUE(bit_identical_witnesses(bottom_up_front_witness(aadt, bu),
                                          bu_witness))
          << "bottom-up witness@" << threads << " threads diverged";
    }
  }

  // Witness paths: bit-identical (values AND events) across thread
  // counts, and every witness must replay.
  NaiveOptions nw1;
  const WitnessFront naive_witness = naive_front_witness(aadt, nw1);
  expect_witnesses_valid(aadt, naive_witness, "naive");
  for (unsigned threads : kThreadCounts) {
    NaiveOptions nw;
    nw.threads = threads;
    EXPECT_TRUE(bit_identical_witnesses(naive_front_witness(aadt, nw),
                                        naive_witness))
        << "naive witness@" << threads << " threads diverged";
  }

  const WitnessFront bdd_witness = bdd_bu_front_witness(aadt, bdd_base);
  expect_witnesses_valid(aadt, bdd_witness, "bdd");
  for (unsigned threads : kThreadCounts) {
    BddBuOptions bdd = bdd_base;
    bdd.threads = threads;
    EXPECT_TRUE(bit_identical_witnesses(bdd_bu_front_witness(aadt, bdd),
                                        bdd_witness))
        << "bdd witness@" << threads << " threads diverged";
  }

  if (HasFailure()) {
    ADD_FAILURE() << dump_model(aadt, seed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

/// Scalar-as-oracle contract of the SIMD dispatch (util/cpu.hpp): on the
/// same seeds, every algorithm run with the vector kernels enabled must
/// produce bit-identical fronts AND witnesses to a forced-scalar run, at
/// every thread count. This is the end-to-end check behind the ADTP_SIMD
/// knob - the kernels-level version lives in simd_kernels_test.cpp.
class SimdVsScalar : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimdVsScalar, AutoDispatchMatchesForcedScalarBitForBit) {
  if (detected_simd_level() == SimdLevel::Scalar) {
    GTEST_SKIP() << "no vector ISA detected; dispatch is already scalar";
  }
  const std::uint64_t seed = GetParam();
  const AugmentedAdt aadt = model_for_seed(seed, /*dag=*/seed % 2 == 0);

  // Forced-scalar references, one per algorithm.
  Front scalar_naive, scalar_bdd, scalar_hybrid, scalar_bu;
  WitnessFront scalar_naive_w, scalar_bdd_w;
  const bool tree = aadt.adt().is_tree();
  BddBuOptions bdd_base;
  bdd_base.parallel_node_floor = 0;  // same pool shape as the SIMD runs
  HybridOptions hybrid_base;
  hybrid_base.bdd.parallel_node_floor = 0;
  {
    ScopedSimdOverride scalar(SimdLevel::Scalar);
    scalar_naive = naive_front(aadt);
    scalar_bdd = bdd_bu_front(aadt, bdd_base);
    scalar_hybrid = hybrid_front(aadt, hybrid_base);
    if (tree) scalar_bu = bottom_up_front(aadt);
    scalar_naive_w = naive_front_witness(aadt);
    scalar_bdd_w = bdd_bu_front_witness(aadt, bdd_base);
  }

  // Auto dispatch (whatever the CPU offers) at every thread count.
  for (unsigned threads : kThreadCounts) {
    NaiveOptions naive;
    naive.threads = threads;
    EXPECT_TRUE(bit_identical_values(naive_front(aadt, naive), scalar_naive))
        << "naive@" << threads << " threads diverged from scalar";
    EXPECT_TRUE(bit_identical_witnesses(naive_front_witness(aadt, naive),
                                        scalar_naive_w))
        << "naive witness@" << threads << " threads diverged from scalar";

    BddBuOptions bdd = bdd_base;
    bdd.threads = threads;
    EXPECT_TRUE(bit_identical_values(bdd_bu_front(aadt, bdd), scalar_bdd))
        << "bdd@" << threads << " threads diverged from scalar";
    EXPECT_TRUE(
        bit_identical_witnesses(bdd_bu_front_witness(aadt, bdd), scalar_bdd_w))
        << "bdd witness@" << threads << " threads diverged from scalar";

    HybridOptions hybrid = hybrid_base;
    hybrid.bdd.threads = threads;
    EXPECT_TRUE(
        bit_identical_values(hybrid_front(aadt, hybrid), scalar_hybrid))
        << "hybrid@" << threads << " threads diverged from scalar";
  }
  if (tree) {
    for (unsigned threads : kThreadCounts) {
      BottomUpOptions bu;
      bu.parallel_node_floor = 0;
      bu.threads = threads;
      EXPECT_TRUE(bit_identical_values(bottom_up_front(aadt, bu), scalar_bu))
          << "bottom-up@" << threads << " threads diverged from scalar";
    }
  }

  if (HasFailure()) {
    ADD_FAILURE() << dump_model(aadt, seed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdVsScalar,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace adtp
