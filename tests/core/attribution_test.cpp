#include "core/attribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gen/catalog.hpp"
#include "util/error.hpp"

namespace adtp {
namespace {

Adt two_leaf_adt() {
  Adt adt;
  const NodeId a = adt.add_basic("a", Agent::Attacker);
  const NodeId d = adt.add_basic("d", Agent::Defender);
  adt.add_inhibit("top", a, d);
  adt.freeze();
  return adt;
}

TEST(Attribution, SetGetHas) {
  Attribution beta;
  EXPECT_FALSE(beta.has("a"));
  beta.set("a", 5);
  EXPECT_TRUE(beta.has("a"));
  EXPECT_EQ(beta.get("a"), 5);
  beta.set("a", 7);  // overwrite
  EXPECT_EQ(beta.get("a"), 7);
  EXPECT_EQ(beta.size(), 1u);
  EXPECT_THROW((void)beta.get("missing"), AttributionError);
}

TEST(Attribution, ValidateCompleteAssignment) {
  Attribution beta;
  beta.set("a", 1);
  beta.set("d", 2);
  EXPECT_NO_THROW(beta.validate(two_leaf_adt()));
}

TEST(Attribution, ValidateMissingAttackValue) {
  Attribution beta;
  beta.set("d", 2);
  EXPECT_THROW(beta.validate(two_leaf_adt()), AttributionError);
}

TEST(Attribution, ValidateMissingDefenseValue) {
  Attribution beta;
  beta.set("a", 1);
  EXPECT_THROW(beta.validate(two_leaf_adt()), AttributionError);
}

TEST(Attribution, ValidateUnknownName) {
  Attribution beta;
  beta.set("a", 1);
  beta.set("d", 2);
  beta.set("ghost", 3);
  EXPECT_THROW(beta.validate(two_leaf_adt()), AttributionError);
}

TEST(Attribution, ValidateGateValueRejected) {
  Attribution beta;
  beta.set("a", 1);
  beta.set("d", 2);
  beta.set("top", 3);
  EXPECT_THROW(beta.validate(two_leaf_adt()), AttributionError);
}

TEST(Attribution, ValidateNanRejected) {
  Attribution beta;
  beta.set("a", std::nan(""));
  beta.set("d", 2);
  EXPECT_THROW(beta.validate(two_leaf_adt()), AttributionError);
}

TEST(AugmentedAdt, DenseLookups) {
  const AugmentedAdt fig5 = catalog::fig5_example();
  const Adt& adt = fig5.adt();
  EXPECT_EQ(fig5.attack_value(adt.attack_index(adt.at("a1"))), 5);
  EXPECT_EQ(fig5.attack_value(adt.attack_index(adt.at("a2"))), 10);
  EXPECT_EQ(fig5.defense_value(adt.defense_index(adt.at("d1"))), 4);
  EXPECT_EQ(fig5.value_of(adt.at("d2")), 8);
  EXPECT_THROW((void)fig5.value_of(adt.at("top")), AttributionError);
}

TEST(AugmentedAdt, ConstructorValidates) {
  Adt adt = two_leaf_adt();
  Attribution beta;
  beta.set("a", 1);  // missing d
  EXPECT_THROW(AugmentedAdt(adt, beta, Semiring::min_cost(),
                            Semiring::min_cost()),
               AttributionError);
}

TEST(AugmentedAdt, Example1MetricValues) {
  // Example 1: beta_D({d1,d2}) = 15, beta_A({a1,a2}) = 15 on Fig. 3.
  const AugmentedAdt fig3 = catalog::fig3_example();
  EXPECT_EQ(fig3.defense_vector_value(BitVec::from_string("11")), 15);
  EXPECT_EQ(fig3.attack_vector_value(BitVec::from_string("110")), 15);
  // Empty vectors take the neutral element 1_tensor.
  EXPECT_EQ(fig3.defense_vector_value(BitVec::from_string("00")), 0);
  EXPECT_EQ(fig3.attack_vector_value(BitVec::from_string("000")), 0);
}

TEST(AugmentedAdt, VectorValuesUseDomainCombine) {
  Adt adt = two_leaf_adt();
  Attribution beta;
  beta.set("a", 0.5);
  beta.set("d", 0.25);
  const AugmentedAdt aadt(std::move(adt), std::move(beta),
                          Semiring::probability(), Semiring::probability());
  BitVec defense(1);
  defense.set(0);
  BitVec attack(1);
  attack.set(0);
  EXPECT_DOUBLE_EQ(aadt.defense_vector_value(defense), 0.25);
  EXPECT_DOUBLE_EQ(aadt.attack_vector_value(attack), 0.5);
  // Neutral element of * is 1.
  EXPECT_DOUBLE_EQ(aadt.attack_vector_value(BitVec(1)), 1.0);
}

TEST(AugmentedAdt, FreezesUnfrozenInput) {
  Adt adt;
  adt.add_basic("a", Agent::Attacker);
  Attribution beta;
  beta.set("a", 3);
  const AugmentedAdt aadt(std::move(adt), std::move(beta),
                          Semiring::min_cost(), Semiring::min_cost());
  EXPECT_TRUE(aadt.adt().frozen());
  EXPECT_EQ(aadt.adt().num_attacks(), 1u);
}


TEST(AugmentedAdt, DomainRangeValidation) {
  auto build = [](double attack_value, double defense_value,
                  Semiring dd, Semiring da) {
    Adt adt;
    const NodeId a = adt.add_basic("a", Agent::Attacker);
    const NodeId d = adt.add_basic("d", Agent::Defender);
    adt.add_inhibit("top", a, d);
    adt.freeze();
    Attribution beta;
    beta.set("a", attack_value);
    beta.set("d", defense_value);
    return AugmentedAdt(std::move(adt), std::move(beta), std::move(dd),
                        std::move(da));
  };
  // Negative cost: outside [0, inf].
  EXPECT_THROW(build(-5, 2, Semiring::min_cost(), Semiring::min_cost()),
               AttributionError);
  EXPECT_THROW(build(5, -2, Semiring::min_cost(), Semiring::min_cost()),
               AttributionError);
  // Probability outside [0, 1].
  EXPECT_THROW(build(1.5, 2, Semiring::min_cost(), Semiring::probability()),
               AttributionError);
  EXPECT_NO_THROW(build(0.5, 2, Semiring::min_cost(),
                        Semiring::probability()));
  // inf is a legal cost ("cannot be bought").
  EXPECT_NO_THROW(build(5, std::numeric_limits<double>::infinity(),
                        Semiring::min_cost(), Semiring::min_cost()));
  // Custom domains accept anything non-NaN.
  const Semiring damage = Semiring::custom(
      "damage", 0.0, -std::numeric_limits<double>::infinity(),
      [](double x, double y) { return x + y; },
      [](double x, double y) { return x >= y; });
  EXPECT_NO_THROW(build(-5, 2, Semiring::min_cost(), damage));
}

TEST(Semiring, ContainsTableIRanges) {
  EXPECT_TRUE(Semiring::min_cost().contains(0));
  EXPECT_TRUE(Semiring::min_cost().contains(
      std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(Semiring::min_cost().contains(-0.001));
  EXPECT_FALSE(
      Semiring::min_cost().contains(std::nan("")));
  EXPECT_TRUE(Semiring::probability().contains(0));
  EXPECT_TRUE(Semiring::probability().contains(1));
  EXPECT_FALSE(Semiring::probability().contains(1.001));
  EXPECT_FALSE(Semiring::probability().contains(-0.1));
}

}  // namespace
}  // namespace adtp
