#include "core/bdd_bu.hpp"

#include <gtest/gtest.h>

#include "adt/structure.hpp"
#include "bdd/build.hpp"
#include "core/naive.hpp"
#include "gen/catalog.hpp"
#include "util/error.hpp"

namespace adtp {
namespace {

TEST(BddBu, MoneyTheftDagFront) {
  // The paper's Section VI-A BDDBU result on the DAG-shaped model.
  EXPECT_EQ(bdd_bu_front(catalog::money_theft_dag()).to_string(),
            "{(0, 80), (20, 90), (50, 140)}");
}

TEST(BddBu, MoneyTheftMatchesKordyWidelSetSemantics140) {
  // 140 is the value [5] computes under set semantics; it is the last
  // point's attacker value.
  const Front front = bdd_bu_front(catalog::money_theft_dag());
  EXPECT_EQ(front.points().back().att, 140);
}

TEST(BddBu, TreeModelsMatchBottomUpGoldens) {
  EXPECT_EQ(bdd_bu_front(catalog::fig3_example()).to_string(),
            "{(0, 10), (15, 15)}");
  EXPECT_EQ(bdd_bu_front(catalog::fig5_example()).to_string(),
            "{(0, 5), (4, 10), (12, inf)}");
}

TEST(BddBu, MoneyTheftTreeVariantMatchesBottomUp) {
  // On the unfolded tree, BDDBU must agree with BU (same semantics).
  EXPECT_EQ(bdd_bu_front(catalog::money_theft_tree()).to_string(),
            "{(0, 90), (30, 150), (50, 165)}");
}

TEST(BddBu, Fig4ExponentialAllPointsPresent) {
  const AugmentedAdt fig4 = catalog::fig4_exponential(6);
  const Front front = bdd_bu_front(fig4);
  ASSERT_EQ(front.size(), 64u);
  for (std::size_t k = 0; k < 64; ++k) {
    EXPECT_EQ(front.points()[k].def, static_cast<double>(k));
    EXPECT_EQ(front.points()[k].att, static_cast<double>(k));
  }
}

TEST(BddBu, AllOrderHeuristicsAgree) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const std::string expected = "{(0, 80), (20, 90), (50, 140)}";
  for (auto heuristic :
       {bdd::OrderHeuristic::Dfs, bdd::OrderHeuristic::Bfs,
        bdd::OrderHeuristic::Index, bdd::OrderHeuristic::Random}) {
    BddBuOptions options;
    options.order_heuristic = heuristic;
    options.order_seed = 7;
    EXPECT_EQ(bdd_bu_front(dag, options).to_string(), expected)
        << to_string(heuristic);
  }
}

TEST(BddBu, ExplicitOrderOption) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  BddBuOptions options;
  options.order = bdd::VarOrder::defense_first(dag.adt(),
                                               bdd::OrderHeuristic::Bfs);
  EXPECT_EQ(bdd_bu_front(dag, options).to_string(),
            "{(0, 80), (20, 90), (50, 140)}");
}

TEST(BddBu, ReportCarriesDiagnostics) {
  const BddBuReport report = bdd_bu_analyze(catalog::money_theft_dag());
  EXPECT_EQ(report.front.size(), 3u);
  EXPECT_GT(report.bdd_size, 2u);
  EXPECT_GE(report.manager_nodes, report.bdd_size);
  EXPECT_GE(report.max_front_size, report.front.size());
  EXPECT_GE(report.build_seconds, 0);
  EXPECT_GE(report.propagate_seconds, 0);
}

TEST(BddBu, WitnessesReplayOnDag) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const WitnessFront front = bdd_bu_front_witness(dag);
  ASSERT_EQ(front.size(), 3u);
  for (const auto& p : front.points()) {
    EXPECT_EQ(dag.defense_vector_value(p.defense), p.def);
    EXPECT_EQ(dag.attack_vector_value(p.attack), p.att);
    EXPECT_TRUE(attack_succeeds(dag.adt(), p.defense, p.attack));
  }
  // The cheapest attack is {phishing, log in & execute transfer}: the
  // paper's optimal no-budget strategy under set semantics.
  const Adt& adt = dag.adt();
  const auto& free_point = front.points()[0];
  EXPECT_TRUE(free_point.attack.test(adt.attack_index(adt.at("phishing"))));
  EXPECT_TRUE(free_point.attack.test(
      adt.attack_index(adt.at("log_in_and_execute_transfer"))));
  EXPECT_EQ(free_point.attack.count(), 2u);
}

TEST(BddBu, DefenderRootedWitnesses) {
  const AugmentedAdt fig4 = catalog::fig4_exponential(3);
  const WitnessFront front = bdd_bu_front_witness(fig4);
  ASSERT_EQ(front.size(), 8u);
  for (const auto& p : front.points()) {
    EXPECT_EQ(fig4.defense_vector_value(p.defense), p.def);
    EXPECT_EQ(fig4.attack_vector_value(p.attack), p.att);
    EXPECT_TRUE(attack_succeeds(fig4.adt(), p.defense, p.attack));
  }
}

TEST(BddBu, NodeLimitGuard) {
  const AugmentedAdt fig4 = catalog::fig4_exponential(8);
  BddBuOptions options;
  options.node_limit = 8;  // absurdly small
  EXPECT_THROW((void)bdd_bu_front(fig4, options), LimitError);
}

TEST(BddBu, ConstantStructureFunctions) {
  // An AND of (a, NOT a)-style contradiction is not expressible without
  // two agents, but a defense-only root gives constant functions w.r.t.
  // the attacker target. Attack-rooted single BAS keeps it simple:
  {
    Adt adt;
    adt.add_basic("a", Agent::Attacker);
    adt.freeze();
    Attribution beta;
    beta.set("a", 2);
    const AugmentedAdt aadt(std::move(adt), std::move(beta),
                            Semiring::min_cost(), Semiring::min_cost());
    EXPECT_EQ(bdd_bu_front(aadt).to_string(), "{(0, 2)}");
  }
  {
    // Defender-rooted single BDS: tau(R_T) = D, the attacker wants 0.
    Adt adt;
    adt.add_basic("d", Agent::Defender);
    adt.freeze();
    Attribution beta;
    beta.set("d", 4);
    const AugmentedAdt aadt(std::move(adt), std::move(beta),
                            Semiring::min_cost(), Semiring::min_cost());
    EXPECT_EQ(bdd_bu_front(aadt).to_string(), "{(0, 0), (4, inf)}");
  }
}

TEST(BddBu, OnPrebuiltBdd) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const auto order = bdd::VarOrder::defense_first(dag.adt());
  bdd::Manager manager(order.num_vars());
  const bdd::Ref root =
      bdd::build_structure_function(manager, dag.adt(), order);
  EXPECT_EQ(bdd_bu_on_bdd(dag, manager, root, order).to_string(),
            "{(0, 80), (20, 90), (50, 140)}");
}

TEST(BddBu, ProbabilityAttackerDomain) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  Attribution beta;
  for (NodeId id : dag.adt().attack_steps()) {
    beta.set(dag.adt().name(id), 0.5);
  }
  for (NodeId id : dag.adt().defense_steps()) {
    beta.set(dag.adt().name(id), dag.attribution().get(dag.adt().name(id)));
  }
  const AugmentedAdt prob(dag.adt(), beta, Semiring::min_cost(),
                          Semiring::probability());
  const Front front = bdd_bu_front(prob);
  const Front oracle = naive_front(prob);
  EXPECT_TRUE(front.approx_same_values(oracle))
      << front.to_string() << " vs " << oracle.to_string();
}

}  // namespace
}  // namespace adtp
