/// Incremental-equals-cold fuzz harness.
///
/// A NodeFrontMemo persists across an edit *sequence* - cost tweaks,
/// defense removals (toggles), subtree grafts - exactly the interactive
/// serving pattern the memo exists for. After every edit the memoized
/// re-analysis must be bit-identical to a cold one: fronts AND witnesses,
/// at 1, 2 and 8 threads (parallel_node_floor = 0 forces the task-DAG
/// path even on tiny models). This suite pins the "Incremental equals
/// cold" contract of docs/CONTRACTS.md - update both together.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/node_memo.hpp"
#include "core/whatif.hpp"
#include "gen/random_adt.hpp"

namespace adtp {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

struct FuzzDomains {
  SemiringKind defender;
  SemiringKind attacker;
};

constexpr FuzzDomains kDomainPalette[] = {
    {SemiringKind::MinCost, SemiringKind::MinCost},
    {SemiringKind::MinCost, SemiringKind::MinTimePar},
    {SemiringKind::MinSkill, SemiringKind::MinCost},
    {SemiringKind::MinCost, SemiringKind::Probability},
    {SemiringKind::MinTimeSeq, SemiringKind::MinSkill},
};

AugmentedAdt model_for_seed(std::uint64_t seed, bool dag) {
  RandomAdtOptions options;
  options.share_probability = dag ? 0.3 : 0.0;
  options.max_defenses = 6;
  options.target_nodes = 14 + seed % 16;
  const FuzzDomains domains =
      kDomainPalette[seed % (sizeof(kDomainPalette) /
                             sizeof(kDomainPalette[0]))];
  return generate_random_aadt(options, seed, Semiring{domains.defender},
                              Semiring{domains.attacker});
}

/// Edit kind 0: a leaf attribute tweak (deterministic per step).
AugmentedAdt tweak_cost(const AugmentedAdt& base, std::uint64_t salt) {
  const Adt& adt = base.adt();
  std::vector<NodeId> leaves = adt.attack_steps();
  leaves.insert(leaves.end(), adt.defense_steps().begin(),
                adt.defense_steps().end());
  const NodeId leaf = leaves[salt % leaves.size()];
  Attribution attribution = base.attribution();
  double value = attribution.get(adt.name(leaf)) + 1 + double(salt % 5);
  if (base.attacker_domain().kind() == SemiringKind::Probability ||
      base.defender_domain().kind() == SemiringKind::Probability) {
    value = 0.25 + 0.1 * double(salt % 7);  // keep probabilities in [0, 1]
  }
  attribution.set(adt.name(leaf), value);
  return AugmentedAdt(adt, attribution, base.defender_domain(),
                      base.attacker_domain());
}

/// Edit kind 1: toggle a defense off via the what-if fold; falls back to
/// a tweak when the model has no defenses or the fold trivializes it.
AugmentedAdt toggle_defense(const AugmentedAdt& base, std::uint64_t salt) {
  const Adt& adt = base.adt();
  if (adt.num_defenses() != 0) {
    const NodeId leaf =
        adt.defense_steps()[salt % adt.num_defenses()];
    if (auto reduced = with_basic_step_removed(base, leaf)) {
      return std::move(*reduced);
    }
  }
  return tweak_cost(base, salt);
}

/// Edit kind 2: graft a fresh subtree at the root. The old root's whole
/// subtree stays byte-identical, so an incremental re-analysis should
/// replay it from the memo wholesale.
AugmentedAdt graft_subtree(const AugmentedAdt& base, std::uint64_t salt) {
  const Adt& old = base.adt();
  Adt adt;
  std::vector<NodeId> map(old.size(), kNoNode);
  for (NodeId v : old.topological_order()) {
    switch (old.type(v)) {
      case GateType::BasicStep:
        map[v] = adt.add_basic(old.name(v), old.agent(v));
        break;
      case GateType::And:
      case GateType::Or: {
        std::vector<NodeId> children;
        for (NodeId c : old.children(v)) children.push_back(map[c]);
        map[v] = adt.add_gate(old.name(v), old.type(v), old.agent(v),
                              std::move(children));
        break;
      }
      case GateType::Inhibit:
        map[v] = adt.add_inhibit(old.name(v), map[old.inhibited_child(v)],
                                 map[old.trigger_child(v)]);
        break;
    }
  }
  const std::string leaf_name = "graft_leaf_" + std::to_string(salt);
  const Agent agent = old.agent(old.root());
  const NodeId leaf = adt.add_basic(leaf_name, agent);
  adt.set_root(adt.add_gate("graft_or_" + std::to_string(salt), GateType::Or,
                            agent, {map[old.root()], leaf}));
  adt.freeze();
  Attribution attribution = base.attribution();
  const bool probability =
      (agent == Agent::Attacker
           ? base.attacker_domain().kind()
           : base.defender_domain().kind()) == SemiringKind::Probability;
  attribution.set(leaf_name, probability ? 0.5 : 3 + double(salt % 4));
  return AugmentedAdt(std::move(adt), std::move(attribution),
                      base.defender_domain(), base.attacker_domain());
}

class IncrementalFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalFuzz, EditSequencesStayBitIdenticalToCold) {
  const std::uint64_t seed = GetParam();
  const bool dag = seed % 2 == 0;
  AugmentedAdt current = model_for_seed(seed, dag);

  NodeFrontMemo memo;  // persists across the whole edit sequence
  std::uint64_t total_hits = 0;
  constexpr int kEdits = 6;
  for (int step = 0; step <= kEdits; ++step) {
    if (step > 0) {
      const std::uint64_t salt = seed * 131 + std::uint64_t(step);
      switch (step % 3) {
        case 1:
          current = tweak_cost(current, salt);
          break;
        case 2:
          current = toggle_defense(current, salt);
          break;
        default:
          current = graft_subtree(current, salt);
          break;
      }
    }

    // Cold references, computed without any memo.
    const bool tree = current.adt().is_tree();
    AnalysisOptions cold;
    const Front cold_front = analyze(current, cold).front;

    for (unsigned threads : kThreadCounts) {
      AnalysisOptions options;
      options.intra_model_threads = threads;
      options.bottom_up.parallel_node_floor = 0;
      options.hybrid.bdd.parallel_node_floor = 0;
      const AnalysisResult warm =
          analyze_incremental(current, memo, options);
      EXPECT_TRUE(warm.front.bit_identical_values(cold_front))
          << "seed " << seed << " step " << step << " @" << threads
          << " threads: incremental front diverged from cold";
      total_hits += warm.memo_hits;
    }

    if (tree) {
      // Witness path: the memoized witness kernel must replay bit-identical
      // witness vectors too, at every thread count.
      const WitnessFront cold_witness = bottom_up_front_witness(current);
      for (unsigned threads : kThreadCounts) {
        BottomUpOptions bu;
        bu.threads = threads;
        bu.parallel_node_floor = 0;
        bu.memo = &memo;
        const WitnessFront warm = bottom_up_front_witness(current, bu);
        ASSERT_TRUE(warm.bit_identical_values(cold_witness))
            << "seed " << seed << " step " << step << " @" << threads
            << " threads: incremental witness values diverged";
        for (std::size_t i = 0; i < warm.size(); ++i) {
          EXPECT_EQ(warm.points()[i].defense, cold_witness.points()[i].defense)
              << "seed " << seed << " step " << step;
          EXPECT_EQ(warm.points()[i].attack, cold_witness.points()[i].attack)
              << "seed " << seed << " step " << step;
        }
      }
    }
  }
  // The sequence re-analyzes each model 3+ times and edits touch one
  // spine, so the memo must have replayed plenty of subtree fronts.
  EXPECT_GT(total_hits, 0u) << "seed " << seed << ": memo never hit";
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace adtp
