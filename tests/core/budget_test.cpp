#include "core/budget.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bdd_bu.hpp"
#include "gen/catalog.hpp"
#include "util/error.hpp"

namespace adtp {
namespace {

const Semiring kCost = Semiring::min_cost();

Front money_front() { return bdd_bu_front(catalog::money_theft_dag()); }

TEST(Budget, GuaranteedAttackerValueSweep) {
  // DAG front: {(0,80),(20,90),(50,140)}.
  const Front front = money_front();
  EXPECT_EQ(guaranteed_attacker_value(front, 0, kCost, kCost), 80);
  EXPECT_EQ(guaranteed_attacker_value(front, 19, kCost, kCost), 80);
  EXPECT_EQ(guaranteed_attacker_value(front, 20, kCost, kCost), 90);
  EXPECT_EQ(guaranteed_attacker_value(front, 49, kCost, kCost), 90);
  EXPECT_EQ(guaranteed_attacker_value(front, 50, kCost, kCost), 140);
  EXPECT_EQ(guaranteed_attacker_value(front, 1e9, kCost, kCost), 140);
}

TEST(Budget, CheapestDefenseForTargets) {
  const Front front = money_front();
  EXPECT_EQ(cheapest_defense_for(front, 80, kCost, kCost), 0);
  EXPECT_EQ(cheapest_defense_for(front, 81, kCost, kCost), 20);
  EXPECT_EQ(cheapest_defense_for(front, 90, kCost, kCost), 20);
  EXPECT_EQ(cheapest_defense_for(front, 140, kCost, kCost), 50);
  EXPECT_FALSE(cheapest_defense_for(front, 141, kCost, kCost).has_value());
}

TEST(Budget, UnlimitedDefenderValue) {
  EXPECT_EQ(unlimited_defender_value(money_front()), 140);
  // The tree-semantics value from [5] is 165.
  const AugmentedAdt tree = catalog::money_theft_tree();
  EXPECT_EQ(unlimited_defender_value(bdd_bu_front(tree)), 165);
}

TEST(Budget, PerfectDefenseIsInfinity) {
  const Front front = bdd_bu_front(catalog::fig5_example());
  EXPECT_TRUE(std::isinf(guaranteed_attacker_value(front, 12, kCost, kCost)));
  EXPECT_EQ(cheapest_defense_for(front, kCost.zero(), kCost, kCost), 12);
}

TEST(Budget, EmptyFrontRejected) {
  const Front empty;
  EXPECT_THROW((void)guaranteed_attacker_value(empty, 1, kCost, kCost),
               Error);
  EXPECT_THROW((void)unlimited_defender_value(empty), Error);
}

TEST(Budget, ProbabilityDomainTargets) {
  // Defender cost vs attack success probability: "spend at least X to
  // push success probability to at most p".
  const Semiring prob = Semiring::probability();
  const Front front = Front::minimized(
      {{0, 0.9}, {10, 0.5}, {30, 0.05}}, kCost, prob);
  EXPECT_DOUBLE_EQ(guaranteed_attacker_value(front, 9, kCost, prob), 0.9);
  EXPECT_DOUBLE_EQ(guaranteed_attacker_value(front, 10, kCost, prob), 0.5);
  EXPECT_DOUBLE_EQ(guaranteed_attacker_value(front, 31, kCost, prob), 0.05);
  // Target: success probability at most 0.5.
  EXPECT_EQ(cheapest_defense_for(front, 0.5, kCost, prob), 10);
  EXPECT_EQ(cheapest_defense_for(front, 0.04, kCost, prob), std::nullopt);
}

}  // namespace
}  // namespace adtp
