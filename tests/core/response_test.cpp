#include "core/response.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "adt/structure.hpp"
#include "core/naive.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"
#include "util/error.hpp"

namespace adtp {
namespace {

TEST(Response, Example2ResponsesOnFig3) {
  // rho(00) = rho(01) = rho(10) = 010 (cost 10); rho(11) = 110 (cost 15).
  const AugmentedAdt fig3 = catalog::fig3_example();
  const Responder responder(fig3);
  for (const char* delta : {"00", "01", "10"}) {
    const ResponseResult r = responder.respond(BitVec::from_string(delta));
    EXPECT_TRUE(r.attack_exists);
    EXPECT_EQ(r.value, 10) << delta;
    EXPECT_EQ(r.attack.to_string(), "010") << delta;
  }
  const ResponseResult r = responder.respond(BitVec::from_string("11"));
  EXPECT_EQ(r.value, 15);
  EXPECT_EQ(r.attack.to_string(), "110");
}

TEST(Response, MoneyTheftNarrative) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const Adt& adt = dag.adt();
  const Responder responder(dag);

  // Undefended: phishing + transfer = 80.
  const ResponseResult undefended = responder.respond_undefended();
  EXPECT_EQ(undefended.value, 80);

  // SMS auth deployed: the attacker moves to the ATM (90).
  BitVec sms(adt.num_defenses());
  sms.set(adt.defense_index(adt.at("sms_authentication")));
  EXPECT_EQ(responder.respond(sms).value, 90);

  // SMS + cover keypad: online with phone theft (140).
  BitVec both = sms;
  both.set(adt.defense_index(adt.at("cover_keypad")));
  const ResponseResult r = responder.respond(both);
  EXPECT_EQ(r.value, 140);
  EXPECT_TRUE(r.attack.test(adt.attack_index(adt.at("steal_phone"))));
}

TEST(Response, NoAttackExists) {
  Adt adt;
  const NodeId a = adt.add_basic("a", Agent::Attacker);
  const NodeId d = adt.add_basic("d", Agent::Defender);
  adt.add_inhibit("top", a, d);
  adt.freeze();
  Attribution beta;
  beta.set("a", 5);
  beta.set("d", 3);
  const AugmentedAdt aadt(std::move(adt), std::move(beta),
                          Semiring::min_cost(), Semiring::min_cost());
  const ResponseResult r = optimal_response(aadt, BitVec::from_string("1"));
  EXPECT_FALSE(r.attack_exists);
  EXPECT_TRUE(std::isinf(r.value));
  EXPECT_TRUE(r.attack.none());
}

TEST(Response, DefenderRootedGoal) {
  // Fig. 4 family: the optimal response mirrors the defense vector.
  const AugmentedAdt fig4 = catalog::fig4_exponential(4);
  const Responder responder(fig4);
  for (const char* delta : {"0000", "1010", "1111", "0001"}) {
    const ResponseResult r = responder.respond(BitVec::from_string(delta));
    EXPECT_TRUE(r.attack_exists);
    EXPECT_EQ(r.attack.to_string(), delta);
  }
}

TEST(Response, VectorSizeValidated) {
  const AugmentedAdt fig5 = catalog::fig5_example();
  const Responder responder(fig5);
  EXPECT_THROW((void)responder.respond(BitVec(5)), ModelError);
}

TEST(Response, ClassicalAttackTreeSpecialCase) {
  // No defenses: respond_undefended() is the classical min-cost attack.
  Adt adt = catalog::fig1_steal_data_at();
  Attribution beta;
  beta.set("BU", 90);
  beta.set("PA", 20);
  beta.set("ESV", 35);
  beta.set("ACV", 40);
  beta.set("SDK", 25);
  const AugmentedAdt aadt(std::move(adt), std::move(beta),
                          Semiring::min_cost(), Semiring::min_cost());
  const ResponseResult r = Responder(aadt).respond_undefended();
  EXPECT_EQ(r.value, 45);  // PA + SDK
  EXPECT_EQ(r.attack.count(), 2u);
}

TEST(Response, WitnessReplaysAndIsOptimal) {
  RandomAdtOptions options;
  options.target_nodes = 24;
  options.share_probability = 0.25;
  options.max_defenses = 5;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const AugmentedAdt aadt = generate_random_aadt(
        options, seed, Semiring::min_cost(), Semiring::min_cost());
    const Responder responder(aadt);
    const auto events = enumerate_feasible_events(aadt);
    for (const auto& ev : events) {
      const ResponseResult r = responder.respond(ev.defense);
      // Same optimal value as the brute-force oracle...
      EXPECT_EQ(r.attack_exists, ev.response.has_value());
      EXPECT_EQ(r.value, ev.attack_value)
          << "seed " << seed << " delta " << ev.defense.to_string();
      // ...and the witness really achieves it.
      if (r.attack_exists) {
        EXPECT_TRUE(attack_succeeds(aadt.adt(), ev.defense, r.attack));
        EXPECT_EQ(aadt.attack_vector_value(r.attack), r.value);
      }
    }
  }
}

TEST(Response, ParallelTimeDomain) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  Attribution beta;
  for (NodeId id : dag.adt().attack_steps()) {
    beta.set(dag.adt().name(id), dag.attribution().get(dag.adt().name(id)));
  }
  for (NodeId id : dag.adt().defense_steps()) {
    beta.set(dag.adt().name(id), dag.attribution().get(dag.adt().name(id)));
  }
  const AugmentedAdt par(dag.adt(), beta, Semiring::min_cost(),
                         Semiring::min_time_par());
  // Undefended, parallel time: the ATM branch runs steal card (10),
  // eavesdrop (20) and withdraw (60) in parallel -> 60, beating the
  // online branch's phishing (70).
  EXPECT_EQ(Responder(par).respond_undefended().value, 60);
}

TEST(Response, BddSizeReported) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const Responder responder(dag);
  EXPECT_GT(responder.bdd_size(), 2u);
}


TEST(MinimalAttacks, Fig1ClassicalCutSets) {
  Adt adt = catalog::fig1_steal_data_at();
  Attribution beta;
  for (NodeId id : adt.attack_steps()) beta.set(adt.name(id), 1);
  const AugmentedAdt aadt(std::move(adt), std::move(beta),
                          Semiring::min_cost(), Semiring::min_cost());
  const auto sets = Responder(aadt).minimal_attacks(BitVec(0));
  // AND(OR(BU,PA,ESV,ACV), SDK): one credential theft + SDK each.
  ASSERT_EQ(sets.size(), 4u);
  for (const BitVec& s : sets) {
    EXPECT_EQ(s.count(), 2u);
    EXPECT_TRUE(
        s.test(aadt.adt().attack_index(aadt.adt().at("SDK"))));
  }
}

TEST(MinimalAttacks, MoneyTheftUndefended) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const Adt& adt = dag.adt();
  const auto sets =
      Responder(dag).minimal_attacks(BitVec(adt.num_defenses()));
  // Undefended minimal attacks: ATM = {steal card, force|eavesdrop,
  // withdraw}, online = {user, pwd, transfer} combinations:
  // user in {guess_user, phishing} x pwd in {guess_pwd, phishing}.
  // With shared phishing, {phishing, transfer} is one set.
  ASSERT_FALSE(sets.empty());
  // Every set succeeds; dropping any element fails (minimality).
  for (const BitVec& s : sets) {
    EXPECT_TRUE(attack_succeeds(adt, BitVec(adt.num_defenses()), s));
    for (std::size_t bit : s.set_bits()) {
      BitVec smaller = s;
      smaller.reset(bit);
      EXPECT_FALSE(
          attack_succeeds(adt, BitVec(adt.num_defenses()), smaller));
    }
  }
  // Pairwise incomparable.
  for (std::size_t i = 0; i < sets.size(); ++i) {
    for (std::size_t j = 0; j < sets.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(sets[i].is_subset_of(sets[j]));
      }
    }
  }
  // The cheapest minimal attack is the optimal response.
  double best = std::numeric_limits<double>::infinity();
  for (const BitVec& s : sets) {
    best = std::min(best, dag.attack_vector_value(s));
  }
  EXPECT_EQ(best, 80);
}

TEST(MinimalAttacks, DefensesPruneCutSets) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const Adt& adt = dag.adt();
  const Responder responder(dag);
  const auto undefended =
      responder.minimal_attacks(BitVec(adt.num_defenses()));
  BitVec sms(adt.num_defenses());
  sms.set(adt.defense_index(adt.at("sms_authentication")));
  const auto defended = responder.minimal_attacks(sms);
  // Online attacks now additionally require steal_phone; the family
  // changes and every defended set still succeeds against sms.
  for (const BitVec& s : defended) {
    EXPECT_TRUE(attack_succeeds(adt, sms, s));
  }
  EXPECT_NE(undefended.size(), 0u);
  EXPECT_NE(defended.size(), 0u);
}

TEST(MinimalAttacks, DefenderRootedFamily) {
  // Fig. 4: with defenses delta deployed, the unique minimal attack is
  // exactly delta.
  const AugmentedAdt fig4 = catalog::fig4_exponential(4);
  const Responder responder(fig4);
  for (const char* delta : {"0000", "1010", "1111"}) {
    const auto sets = responder.minimal_attacks(BitVec::from_string(delta));
    ASSERT_EQ(sets.size(), 1u) << delta;
    EXPECT_EQ(sets[0].to_string(), delta);
  }
}

TEST(MinimalAttacks, MatchesBruteForceOnRandomModels) {
  RandomAdtOptions options;
  options.target_nodes = 20;
  options.share_probability = 0.25;
  options.max_defenses = 4;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const AugmentedAdt aadt = generate_random_aadt(
        options, seed, Semiring::min_cost(), Semiring::min_cost());
    const Adt& adt = aadt.adt();
    if (adt.num_attacks() > 16) continue;
    const Responder responder(aadt);
    Rng rng(seed);
    BitVec defense(adt.num_defenses());
    for (std::size_t i = 0; i < defense.size(); ++i) {
      if (rng.chance(0.5)) defense.set(i);
    }
    // Brute force: all successful attack masks, filtered to minimal.
    StructureEvaluator eval(adt);
    std::vector<BitVec> successful;
    for (std::uint64_t mask = 0;
         mask < (std::uint64_t{1} << adt.num_attacks()); ++mask) {
      BitVec attack(adt.num_attacks());
      for (std::size_t i = 0; i < adt.num_attacks(); ++i) {
        if ((mask >> i) & 1ULL) attack.set(i);
      }
      if (eval.attack_succeeds(defense, attack)) {
        successful.push_back(std::move(attack));
      }
    }
    std::vector<BitVec> expected;
    for (const BitVec& s : successful) {
      bool minimal = true;
      for (const BitVec& t : successful) {
        if (t != s && t.is_subset_of(s)) minimal = false;
      }
      if (minimal) expected.push_back(s);
    }
    auto sets = responder.minimal_attacks(defense);
    std::sort(sets.begin(), sets.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(sets, expected) << "seed " << seed;
  }
}

TEST(MinimalAttacks, SetLimitGuard) {
  const AugmentedAdt fig4 = catalog::fig4_exponential(6);
  const Responder responder(fig4);
  BitVec all(6);
  for (std::size_t i = 0; i < 6; ++i) all.set(i);
  EXPECT_NO_THROW((void)responder.minimal_attacks(all));
  // An absurdly small budget trips the guard even on tiny models.
  EXPECT_THROW((void)responder.minimal_attacks(all, 1), LimitError);
}

}  // namespace
}  // namespace adtp
