#include "core/bottom_up.hpp"

#include <gtest/gtest.h>

#include "adt/structure.hpp"
#include "gen/catalog.hpp"
#include "util/error.hpp"

namespace adtp {
namespace {

TEST(TableII, OperatorSelection) {
  EXPECT_EQ(attack_op(GateType::And, Agent::Attacker), AttackOp::Combine);
  EXPECT_EQ(attack_op(GateType::And, Agent::Defender), AttackOp::Choose);
  EXPECT_EQ(attack_op(GateType::Or, Agent::Attacker), AttackOp::Choose);
  EXPECT_EQ(attack_op(GateType::Or, Agent::Defender), AttackOp::Combine);
  EXPECT_EQ(attack_op(GateType::Inhibit, Agent::Attacker), AttackOp::Combine);
  EXPECT_EQ(attack_op(GateType::Inhibit, Agent::Defender), AttackOp::Choose);
  EXPECT_THROW((void)attack_op(GateType::BasicStep, Agent::Attacker),
               ModelError);
}

TEST(BottomUp, Example5StepByStep) {
  const AugmentedAdt fig5 = catalog::fig5_example();
  const Adt& adt = fig5.adt();
  const auto fronts = bottom_up_all_fronts(fig5);

  // Leaf fronts.
  EXPECT_EQ(fronts[adt.at("a1")].to_string(), "{(0, 5)}");
  EXPECT_EQ(fronts[adt.at("a2")].to_string(), "{(0, 10)}");
  EXPECT_EQ(fronts[adt.at("d1")].to_string(), "{(0, 0), (4, inf)}");
  EXPECT_EQ(fronts[adt.at("d2")].to_string(), "{(0, 0), (8, inf)}");
  // INH fronts (the paper's step 2-3; "8" in the PDF is a garbled inf).
  EXPECT_EQ(fronts[adt.at("i1")].to_string(), "{(0, 5), (4, inf)}");
  EXPECT_EQ(fronts[adt.at("i2")].to_string(), "{(0, 10), (8, inf)}");
  // Final front (step 4).
  EXPECT_EQ(fronts[adt.root()].to_string(), "{(0, 5), (4, 10), (12, inf)}");
}

TEST(BottomUp, Fig3Front) {
  EXPECT_EQ(bottom_up_front(catalog::fig3_example()).to_string(),
            "{(0, 10), (15, 15)}");
}

TEST(BottomUp, Fig4ExponentialFrontSize) {
  for (int n = 1; n <= 8; ++n) {
    const Front front = bottom_up_front(catalog::fig4_exponential(n));
    EXPECT_EQ(front.size(), std::size_t{1} << n) << "n = " << n;
  }
}

TEST(BottomUp, MoneyTheftTreePerNodeFronts) {
  // The red annotations of Fig. 7 (tree variant), spot-checked at the
  // nodes the paper prints.
  const AugmentedAdt tree = catalog::money_theft_tree();
  const Adt& adt = tree.adt();
  const auto fronts = bottom_up_all_fronts(tree);

  EXPECT_EQ(fronts[adt.at("cover_keypad_effective")].to_string(),
            "{(0, 0), (30, 75)}");
  EXPECT_EQ(fronts[adt.at("eavesdrop_uncovered")].to_string(),
            "{(0, 20), (30, 95)}");
  EXPECT_EQ(fronts[adt.at("learn_pin")].to_string(), "{(0, 20), (30, 95)}");
  EXPECT_EQ(fronts[adt.at("via_atm")].to_string(), "{(0, 90), (30, 165)}");
  EXPECT_EQ(fronts[adt.at("sms_effective")].to_string(),
            "{(0, 0), (20, 60)}");
  EXPECT_EQ(fronts[adt.at("transfer_allowed")].to_string(),
            "{(0, 10), (20, 70)}");
  EXPECT_EQ(fronts[adt.at("get_user_name")].to_string(), "{(0, 70)}");
  EXPECT_EQ(fronts[adt.at("get_password")].to_string(), "{(0, 70)}");
  EXPECT_EQ(fronts[adt.at("guess_pwd_blocked")].to_string(),
            "{(0, 120), (10, inf)}");
  EXPECT_EQ(fronts[adt.at("via_online_banking")].to_string(),
            "{(0, 150), (20, 210)}");
  EXPECT_EQ(fronts[adt.root()].to_string(),
            "{(0, 90), (30, 150), (50, 165)}");
}

TEST(BottomUp, MoneyTheftMatchesKordyWidel165) {
  // [5] reports 165 as the minimal cost of an unpreventable attack under
  // tree semantics - the attacker value of the front's last point.
  const Front front = bottom_up_front(catalog::money_theft_tree());
  EXPECT_EQ(front.points().back().att, 165);
}

TEST(BottomUp, RejectsDags) {
  EXPECT_THROW((void)bottom_up_front(catalog::money_theft_dag()),
               ModelError);
}

TEST(BottomUp, WitnessesReplayOnMoneyTheftTree) {
  const AugmentedAdt tree = catalog::money_theft_tree();
  const WitnessFront front = bottom_up_front_witness(tree);
  ASSERT_EQ(front.size(), 3u);
  for (const auto& p : front.points()) {
    EXPECT_EQ(tree.defense_vector_value(p.defense), p.def);
    EXPECT_EQ(tree.attack_vector_value(p.attack), p.att);
    // The witness attack must actually succeed against the witness
    // defense.
    EXPECT_TRUE(attack_succeeds(tree.adt(), p.defense, p.attack));
  }
}

TEST(BottomUp, WitnessNamesTellTheStory) {
  // The paper's narrative: with no budget the attacker goes via ATM; with
  // cover keypad + SMS auth the attacker uses the camera.
  const AugmentedAdt tree = catalog::money_theft_tree();
  const Adt& adt = tree.adt();
  const WitnessFront front = bottom_up_front_witness(tree);
  ASSERT_EQ(front.size(), 3u);

  const auto& free_point = front.points()[0];
  EXPECT_TRUE(
      free_point.attack.test(adt.attack_index(adt.at("eavesdrop"))));
  EXPECT_TRUE(
      free_point.attack.test(adt.attack_index(adt.at("steal_card"))));

  const auto& full_point = front.points()[2];
  EXPECT_TRUE(
      full_point.defense.test(adt.defense_index(adt.at("cover_keypad"))));
  EXPECT_TRUE(full_point.defense.test(
      adt.defense_index(adt.at("sms_authentication"))));
  EXPECT_TRUE(full_point.attack.test(adt.attack_index(adt.at("camera"))));
  // Strong pwd is not part of any Pareto-optimal point.
  for (const auto& p : front.points()) {
    EXPECT_FALSE(p.defense.test(adt.defense_index(adt.at("strong_pwd"))));
  }
}

TEST(BottomUp, SingleLeafModels) {
  {
    Adt adt;
    adt.add_basic("a", Agent::Attacker);
    adt.freeze();
    Attribution beta;
    beta.set("a", 9);
    const AugmentedAdt aadt(std::move(adt), std::move(beta),
                            Semiring::min_cost(), Semiring::min_cost());
    EXPECT_EQ(bottom_up_front(aadt).to_string(), "{(0, 9)}");
  }
  {
    Adt adt;
    adt.add_basic("d", Agent::Defender);
    adt.freeze();
    Attribution beta;
    beta.set("d", 4);
    const AugmentedAdt aadt(std::move(adt), std::move(beta),
                            Semiring::min_cost(), Semiring::min_cost());
    // Defender-rooted single defense: free-to-defeat, or bought and
    // undefeatable.
    EXPECT_EQ(bottom_up_front(aadt).to_string(), "{(0, 0), (4, inf)}");
  }
}

// Determinism contract of the sibling-subtree task DAG (see
// docs/CONTRACTS.md): the parallel walk folds every gate exactly like the
// sequential walk, so fronts AND witnesses are bit-identical at every
// thread count. parallel_node_floor = 0 forces the scheduler even on
// these small catalog trees.
TEST(BottomUp, ParallelWalkMatchesSequentialBitForBit) {
  const AugmentedAdt models[] = {catalog::fig5_example(),
                                 catalog::money_theft_tree(),
                                 catalog::fig4_exponential(10)};
  for (const AugmentedAdt& aadt : models) {
    const BottomUpReport sequential = bottom_up_analyze(aadt);
    EXPECT_EQ(sequential.threads_used, 1u);
    EXPECT_EQ(sequential.sched.tasks, 0u);
    for (unsigned threads : {2u, 8u}) {
      BottomUpOptions options;
      options.threads = threads;
      options.parallel_node_floor = 0;
      const BottomUpReport parallel = bottom_up_analyze(aadt, options);
      EXPECT_TRUE(
          parallel.front.bit_identical_values(sequential.front))
          << "front diverged at " << threads << " threads";
      EXPECT_EQ(parallel.threads_used, threads);
      // One task per node: the whole tree went through the scheduler.
      EXPECT_EQ(parallel.sched.tasks, aadt.adt().size());
      EXPECT_EQ(parallel.max_front_size, sequential.max_front_size);
    }
  }
}

TEST(BottomUp, ParallelWitnessesMatchSequentialBitForBit) {
  const AugmentedAdt tree = catalog::money_theft_tree();
  const WitnessFront sequential = bottom_up_front_witness(tree);
  for (unsigned threads : {2u, 8u}) {
    BottomUpOptions options;
    options.threads = threads;
    options.parallel_node_floor = 0;
    const WitnessFront parallel = bottom_up_front_witness(tree, options);
    ASSERT_TRUE(parallel.bit_identical_values(sequential));
    for (std::size_t i = 0; i < parallel.size(); ++i) {
      EXPECT_EQ(parallel.points()[i].defense, sequential.points()[i].defense);
      EXPECT_EQ(parallel.points()[i].attack, sequential.points()[i].attack);
    }
  }
}

TEST(BottomUp, NodeFloorKeepsSmallTreesSequential) {
  // Below the floor the walk must not spin up a scheduler even when the
  // threads knob asks for one (the default-floor path of every analyze()
  // call on small models).
  BottomUpOptions options;
  options.threads = 8;
  options.parallel_node_floor = 1000;
  const BottomUpReport report =
      bottom_up_analyze(catalog::fig5_example(), options);
  EXPECT_EQ(report.threads_used, 1u);
  EXPECT_EQ(report.sched.tasks, 0u);
  EXPECT_EQ(report.front.to_string(), "{(0, 5), (4, 10), (12, inf)}");
}

TEST(BottomUp, ExternalPoolIsUsedForLargeTrees) {
  TaskScheduler pool(4);
  BottomUpOptions options;
  options.pool = &pool;
  options.parallel_node_floor = 0;
  const BottomUpReport report =
      bottom_up_analyze(catalog::fig4_exponential(8), options);
  EXPECT_EQ(report.threads_used, 4u);
  EXPECT_EQ(report.front.size(), std::size_t{1} << 8);
}

TEST(BottomUp, MinTimeParallelDomain) {
  // AND under parallel time takes the max of children times.
  Adt adt;
  const NodeId a1 = adt.add_basic("a1", Agent::Attacker);
  const NodeId a2 = adt.add_basic("a2", Agent::Attacker);
  adt.add_gate("top", GateType::And, Agent::Attacker, {a1, a2});
  adt.freeze();
  Attribution beta;
  beta.set("a1", 3);
  beta.set("a2", 8);
  const AugmentedAdt aadt(std::move(adt), std::move(beta),
                          Semiring::min_cost(), Semiring::min_time_par());
  EXPECT_EQ(bottom_up_front(aadt).to_string(), "{(0, 8)}");
}

TEST(BottomUp, ProbabilityDomainOrGate) {
  Adt adt;
  const NodeId a1 = adt.add_basic("a1", Agent::Attacker);
  const NodeId a2 = adt.add_basic("a2", Agent::Attacker);
  adt.add_gate("top", GateType::Or, Agent::Attacker, {a1, a2});
  adt.freeze();
  Attribution beta;
  beta.set("a1", 0.3);
  beta.set("a2", 0.7);
  const AugmentedAdt aadt(std::move(adt), std::move(beta),
                          Semiring::min_cost(), Semiring::probability());
  const Front front = bottom_up_front(aadt);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_DOUBLE_EQ(front.front_point().att, 0.7);
}

}  // namespace
}  // namespace adtp
