#include "core/analyzer.hpp"

#include <gtest/gtest.h>

#include "gen/catalog.hpp"
#include "util/error.hpp"

namespace adtp {
namespace {

TEST(Analyzer, AutoPicksBottomUpForTrees) {
  const AnalysisResult result = analyze(catalog::money_theft_tree());
  EXPECT_EQ(result.used, Algorithm::BottomUp);
  EXPECT_EQ(result.front.to_string(), "{(0, 90), (30, 150), (50, 165)}");
  EXPECT_GE(result.seconds, 0);
}

TEST(Analyzer, AutoPicksBddForDags) {
  const AnalysisResult result = analyze(catalog::money_theft_dag());
  EXPECT_EQ(result.used, Algorithm::BddBu);
  EXPECT_EQ(result.front.to_string(), "{(0, 80), (20, 90), (50, 140)}");
}

TEST(Analyzer, ExplicitAlgorithmsAgree) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const std::string expected = "{(0, 80), (20, 90), (50, 140)}";
  for (Algorithm algorithm :
       {Algorithm::Naive, Algorithm::BddBu, Algorithm::Hybrid}) {
    AnalysisOptions options;
    options.algorithm = algorithm;
    const AnalysisResult result = analyze(dag, options);
    EXPECT_EQ(result.used, algorithm);
    EXPECT_EQ(result.front.to_string(), expected) << to_string(algorithm);
  }
}

TEST(Analyzer, BottomUpRequestOnDagThrows) {
  AnalysisOptions options;
  options.algorithm = Algorithm::BottomUp;
  EXPECT_THROW((void)analyze(catalog::money_theft_dag(), options),
               ModelError);
}

TEST(Analyzer, OptionsForwardedToNaive) {
  AnalysisOptions options;
  options.algorithm = Algorithm::Naive;
  options.naive.max_bits = 3;
  EXPECT_THROW((void)analyze(catalog::money_theft_dag(), options),
               LimitError);
}

TEST(Analyzer, IntraModelThreadsOverridesNaiveSharding) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  AnalysisOptions options;
  options.algorithm = Algorithm::Naive;
  const std::string expected = analyze(dag, options).front.to_string();
  // The knob shards the naive enumeration; the result is unchanged.
  options.intra_model_threads = 4;
  EXPECT_EQ(analyze(dag, options).front.to_string(), expected);
  // An explicit naive.threads coexists: intra_model_threads == 0 leaves
  // the per-algorithm setting alone.
  options.intra_model_threads = 0;
  options.naive.threads = 3;
  EXPECT_EQ(analyze(dag, options).front.to_string(), expected);
}

TEST(Analyzer, AlgorithmNames) {
  EXPECT_STREQ(to_string(Algorithm::Auto), "auto");
  EXPECT_STREQ(to_string(Algorithm::Naive), "naive");
  EXPECT_STREQ(to_string(Algorithm::BottomUp), "bottom-up");
  EXPECT_STREQ(to_string(Algorithm::BddBu), "bdd-bu");
  EXPECT_STREQ(to_string(Algorithm::Hybrid), "hybrid");
}

}  // namespace
}  // namespace adtp
