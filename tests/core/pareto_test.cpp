#include "core/pareto.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace adtp {
namespace {

const Semiring kCost = Semiring::min_cost();
const Semiring kProb = Semiring::probability();

Front make_front(std::vector<ValuePoint> pts) {
  return Front::minimized(std::move(pts), kCost, kCost);
}

TEST(Dominance, Definition9) {
  // (s1,t1) dominates (s2,t2) iff s1 <=_D s2 and t1 >=_A t2.
  const ValuePoint p{5, 20};
  EXPECT_TRUE(dominates(p, ValuePoint{10, 10}, kCost, kCost));
  EXPECT_TRUE(dominates(p, ValuePoint{5, 5}, kCost, kCost));
  EXPECT_TRUE(dominates(p, p, kCost, kCost));  // non-strict
  EXPECT_FALSE(dominates(p, ValuePoint{4, 25}, kCost, kCost));
  EXPECT_FALSE(dominates(p, ValuePoint{4, 10}, kCost, kCost));
  EXPECT_FALSE(dominates(p, ValuePoint{10, 25}, kCost, kCost));
}

TEST(Front, Example3) {
  // X = {(10,10),(5,20),(5,5)}; (5,20) dominates both others.
  const Front front =
      make_front({{10, 10}, {5, 20}, {5, 5}});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front.front_point().def, 5);
  EXPECT_EQ(front.front_point().att, 20);
}

TEST(Front, StaircaseSortedAndStrict) {
  const Front front = make_front({{0, 5}, {8, 5}, {4, 10}, {12, 8}, {4, 10}});
  // (8,5) dominated by (0,5); (12,8) dominated by (4,10); dup (4,10)
  // collapses.
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(front.points()[0].def, 0);
  EXPECT_EQ(front.points()[0].att, 5);
  EXPECT_EQ(front.points()[1].def, 4);
  EXPECT_EQ(front.points()[1].att, 10);
}

TEST(Front, EqualValuePairsCollapse) {
  const Front front = make_front({{3, 3}, {3, 3}, {3, 3}});
  EXPECT_EQ(front.size(), 1u);
}

TEST(Front, EmptyInputGivesEmptyFront) {
  const Front front = make_front({});
  EXPECT_TRUE(front.empty());
  EXPECT_EQ(front.to_string(), "{}");
}

TEST(Front, SingletonAndToString) {
  const Front front = Front::singleton(ValuePoint{0, 90});
  EXPECT_EQ(front.to_string(), "{(0, 90)}");
}

TEST(Front, InfinityPointsSurvive) {
  // "Perfect defense" points (att = inf) are meaningful and must be kept.
  const Front front = make_front({{0, 5}, {12, kCost.zero()}});
  ASSERT_EQ(front.size(), 2u);
  EXPECT_TRUE(std::isinf(front.points()[1].att));
}

TEST(Front, MergedWith) {
  const Front a = make_front({{0, 5}, {4, 10}});
  const Front b = make_front({{2, 8}, {4, 12}});
  const Front merged = a.merged_with(b, kCost, kCost);
  // (2,8) survives between (0,5) and (4,12); (4,10) dominated by (4,12).
  EXPECT_EQ(merged.to_string(), "{(0, 5), (2, 8), (4, 12)}");
}

TEST(Front, SameValues) {
  const Front a = make_front({{0, 5}, {4, 10}});
  const Front b = make_front({{4, 10}, {0, 5}});
  const Front c = make_front({{0, 5}});
  EXPECT_TRUE(a.same_values(b, kCost, kCost));
  EXPECT_FALSE(a.same_values(c, kCost, kCost));
}

TEST(Front, ProbabilityOrderReversed) {
  // Attacker domain probability: higher is better for the attacker, so a
  // point with *lower* success probability is better for the defender.
  const Front front = Front::minimized(
      {{0, 0.9}, {5, 0.5}, {7, 0.6}, {9, 0.1}}, kCost, kProb);
  // (7,0.6) is dominated by (5,0.5): more spend, easier attack.
  EXPECT_EQ(front.size(), 3u);
  EXPECT_EQ(front.points()[0].att, 0.9);
  EXPECT_EQ(front.points()[1].att, 0.5);
  EXPECT_EQ(front.points()[2].att, 0.1);
}

TEST(CombineFronts, Example5OrGate) {
  // The OR-A combination of the two INH fronts from Example 5.
  const Front left = make_front({{0, 5}, {4, kCost.zero()}});
  const Front right = make_front({{0, 10}, {8, kCost.zero()}});
  const Front combined =
      combine_fronts(left, right, AttackOp::Choose, kCost, kCost);
  EXPECT_EQ(combined.to_string(), "{(0, 5), (4, 10), (12, inf)}");
}

TEST(CombineFronts, CombineAddsBothCoordinates) {
  const Front left = make_front({{0, 5}});
  const Front right = make_front({{0, 0}, {4, kCost.zero()}});
  const Front combined =
      combine_fronts(left, right, AttackOp::Combine, kCost, kCost);
  EXPECT_EQ(combined.to_string(), "{(0, 5), (4, inf)}");
}

TEST(CombineFronts, WitnessUnionsAndAdoption) {
  WitnessPoint l;
  l.def = 0;
  l.att = 5;
  l.defense = BitVec::from_string("00");
  l.attack = BitVec::from_string("10");
  WitnessPoint r_cheap;
  r_cheap.def = 0;
  r_cheap.att = 3;
  r_cheap.defense = BitVec::from_string("00");
  r_cheap.attack = BitVec::from_string("01");
  WitnessPoint r_blocked;
  r_blocked.def = 4;
  r_blocked.att = kCost.zero();
  r_blocked.defense = BitVec::from_string("01");
  r_blocked.attack = BitVec::from_string("00");

  const auto left = WitnessFront::singleton(l);
  const auto right =
      WitnessFront::minimized({r_cheap, r_blocked}, kCost, kCost);

  // Choose: the attacker picks the better side; defenses union.
  const auto chosen =
      combine_fronts(left, right, AttackOp::Choose, kCost, kCost);
  ASSERT_EQ(chosen.size(), 2u);
  EXPECT_EQ(chosen.points()[0].att, 3);
  EXPECT_EQ(chosen.points()[0].attack.to_string(), "01");  // adopted right
  EXPECT_EQ(chosen.points()[1].att, 5);
  EXPECT_EQ(chosen.points()[1].attack.to_string(), "10");  // kept left
  EXPECT_EQ(chosen.points()[1].defense.to_string(), "01");

  // Combine: both attacks execute; bits union.
  const auto both =
      combine_fronts(left, right, AttackOp::Combine, kCost, kCost);
  EXPECT_EQ(both.points()[0].att, 8);
  EXPECT_EQ(both.points()[0].attack.to_string(), "11");
}

TEST(Front, MinimizedMatchesBruteForceRandomized) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ValuePoint> pts;
    const int n = 1 + static_cast<int>(rng.below(40));
    for (int i = 0; i < n; ++i) {
      pts.push_back(ValuePoint{static_cast<double>(rng.below(12)),
                               static_cast<double>(rng.below(12))});
    }
    const Front fast = Front::minimized(pts, kCost, kCost);
    const auto slow = pareto_min_bruteforce(pts, kCost, kCost);
    // Same size and same value multiset (both deduplicate).
    ASSERT_EQ(fast.size(), slow.size()) << "trial " << trial;
    for (const auto& p : slow) {
      bool found = false;
      for (const auto& q : fast.points()) {
        found = found || (q.def == p.def && q.att == p.att);
      }
      EXPECT_TRUE(found) << "(" << p.def << "," << p.att << ")";
    }
  }
}

TEST(Front, NoKeptPointDominatedProperty) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<ValuePoint> pts;
    for (int i = 0; i < 25; ++i) {
      pts.push_back(ValuePoint{static_cast<double>(rng.below(10)),
                               static_cast<double>(rng.below(10))});
    }
    const Front front = Front::minimized(pts, kCost, kCost);
    const auto& kept = front.points();
    for (std::size_t i = 0; i < kept.size(); ++i) {
      for (std::size_t j = 0; j < kept.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(dominates(kept[i], kept[j], kCost, kCost))
            << "kept point dominated by another kept point";
      }
    }
    // And every input point is dominated-or-equal by something kept.
    for (const auto& p : pts) {
      bool covered = false;
      for (const auto& q : kept) {
        covered = covered || dominates(q, p, kCost, kCost);
      }
      EXPECT_TRUE(covered);
    }
  }
}

TEST(AttackOp, Names) {
  EXPECT_STREQ(to_string(AttackOp::Combine), "tensor_A");
  EXPECT_STREQ(to_string(AttackOp::Choose), "oplus_A");
}

/// Cycles through domains with additive, collapsing (max), and
/// reversed-order operations, so the staircase fast paths are exercised
/// where their soundness argument is subtle: a max combine collapses
/// distinct values into equal-def runs, and the probability order
/// reverses the staircase direction.
const Semiring& domain_for(int i) {
  static const Semiring kSkill = Semiring::min_skill();
  switch (i % 3) {
    case 0:
      return kCost;
    case 1:
      return kSkill;
    default:
      return kProb;
  }
}

double random_metric(Rng& rng, const Semiring& domain) {
  return domain.kind() == SemiringKind::Probability
             ? static_cast<double>(rng.below(31)) / 30.0
             : static_cast<double>(rng.below(30));
}

Front random_front(Rng& rng, std::size_t max_points, const Semiring& da) {
  std::vector<ValuePoint> pts;
  const std::size_t n = 1 + rng.below(max_points);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(ValuePoint{static_cast<double>(rng.below(30)),
                             random_metric(rng, da)});
  }
  return Front::minimized(std::move(pts), kCost, da);
}

TEST(FrontArena, CombineIntoMatchesCombineFronts) {
  // The arena path (buffer reuse + singleton fast path that skips the
  // re-sort) must agree with the allocating reference on random fronts of
  // every size mix, for both Table II attacker ops, across every
  // (defender, attacker) mix of additive, collapsing, and reversed-order
  // domains. Trials run through dispatch_domains so the *static* policy
  // pairs - the ones that enable the no-sort fast path - are what is
  // exercised.
  Rng rng(41);
  FrontArena<ValuePoint> arena;
  for (int trial = 0; trial < 450; ++trial) {
    const Semiring& dsem = domain_for(trial / 3);
    const Semiring& asem = domain_for(trial);
    dispatch_domains(dsem, asem, [&](const auto& dd, const auto& da) {
      auto rand_front = [&](std::size_t max_points) {
        std::vector<ValuePoint> pts;
        const std::size_t n = 1 + rng.below(max_points);
        for (std::size_t i = 0; i < n; ++i) {
          pts.push_back(ValuePoint{random_metric(rng, dsem),
                                   random_metric(rng, asem)});
        }
        return Front::minimized(std::move(pts), dd, da);
      };
      // Some trials force a singleton on one side (the no-sort path).
      const Front lhs = rand_front(trial % 4 == 1 ? 1 : 8);
      const Front rhs = rand_front(trial % 4 == 3 ? 1 : 8);
      const AttackOp op =
          trial % 2 == 0 ? AttackOp::Combine : AttackOp::Choose;

      const Front expected = combine_fronts(lhs, rhs, op, dd, da);
      Front acc = lhs;
      arena.combine_into(acc, rhs, op, dd, da);
      EXPECT_TRUE(acc.same_values(expected, dd, da))
          << "trial " << trial << ": " << acc.to_string() << " vs "
          << expected.to_string();
      return 0;
    });
  }
}

TEST(FrontArena, CombineIntoSelfAliasIsSafe) {
  FrontArena<ValuePoint> arena;
  const Front base = make_front({{0, 5}, {4, 10}, {7, 20}});
  const Front expected =
      combine_fronts(base, base, AttackOp::Combine, kCost, kCost);
  Front acc = base;
  arena.combine_into(acc, acc, AttackOp::Combine, kCost, kCost);
  EXPECT_TRUE(acc.same_values(expected, kCost, kCost));
}

TEST(FrontArena, MergedTransformedMatchesShiftAndMerge) {
  // The sorted-merge path of Algorithm 3's defense step: shift one front's
  // defender coordinate by a constant via tensor_D and union with the
  // other, across every (defender, attacker) domain mix - collapsing max
  // defenders produce equal-def runs the merge must compact, and
  // probability defenders reverse the staircase direction.
  Rng rng(43);
  FrontArena<ValuePoint> arena;
  for (int trial = 0; trial < 450; ++trial) {
    const Semiring& dsem = domain_for(trial / 3);
    const Semiring& asem = domain_for(trial);
    dispatch_domains(dsem, asem, [&](const auto& dd, const auto& da) {
      auto rand_front = [&]() {
        std::vector<ValuePoint> pts;
        const std::size_t n = 1 + rng.below(8);
        for (std::size_t i = 0; i < n; ++i) {
          pts.push_back(ValuePoint{random_metric(rng, dsem),
                                   random_metric(rng, asem)});
        }
        return Front::minimized(std::move(pts), dd, da);
      };
      const Front low = rand_front();
      const Front high = rand_front();
      const double beta = random_metric(rng, dsem);

      std::vector<ValuePoint> reference = low.points();
      for (const ValuePoint& q : high.points()) {
        reference.push_back(ValuePoint{dd.combine(beta, q.def), q.att});
      }
      const Front expected = Front::minimized(std::move(reference), dd, da);

      const Front merged = arena.merged_transformed(
          low, high,
          [&](const ValuePoint& q) {
            return ValuePoint{dd.combine(beta, q.def), q.att};
          },
          dd, da);
      EXPECT_TRUE(merged.same_values(expected, dd, da))
          << "trial " << trial << ": " << merged.to_string() << " vs "
          << expected.to_string();
      return 0;
    });
  }
}

TEST(FrontArena, MergedTransformedSortsForUnmarkedDomains) {
  // Regression: a custom (unmarked) defender domain whose combine
  // violates the monotonicity axiom must still get a valid staircase -
  // the fast merge is reserved for domains marked kMonotoneCombine.
  const Semiring weird = Semiring::custom(
      "absdiff", 0.0, std::numeric_limits<double>::infinity(),
      [](double x, double y) { return std::abs(x - y); },
      [](double x, double y) { return x <= y; });
  FrontArena<ValuePoint> arena;
  const Front low =
      Front::minimized({{1, 9}, {5, 12}, {9, 20}}, weird, kCost);
  const Front high = low;
  const double beta = 6;

  std::vector<ValuePoint> reference = low.points();
  for (const ValuePoint& q : high.points()) {
    reference.push_back(ValuePoint{weird.combine(beta, q.def), q.att});
  }
  const Front expected =
      Front::minimized(std::move(reference), weird, kCost);

  const Front merged = arena.merged_transformed(
      low, high,
      [&](const ValuePoint& q) {
        return ValuePoint{weird.combine(beta, q.def), q.att};
      },
      weird, kCost);
  EXPECT_TRUE(merged.same_values(expected, weird, kCost))
      << merged.to_string() << " vs " << expected.to_string();
}

TEST(Front, MergedWithMatchesMinimizedUnionRandomized) {
  // merged_with is now an O(n+m) staircase merge; it must agree with
  // concatenate-and-minimize on random fronts. Odd trials use the
  // probability attacker domain, whose order (and thus the staircase
  // direction) is reversed.
  Rng rng(47);
  for (int trial = 0; trial < 200; ++trial) {
    const Semiring& da = trial % 2 == 1 ? kProb : kCost;
    const Front a = random_front(rng, 10, da);
    const Front b = random_front(rng, 10, da);
    std::vector<ValuePoint> all = a.points();
    all.insert(all.end(), b.points().begin(), b.points().end());
    const Front expected = Front::minimized(std::move(all), kCost, da);
    const Front merged = a.merged_with(b, kCost, da);
    EXPECT_TRUE(merged.same_values(expected, kCost, da))
        << "trial " << trial << ": " << merged.to_string() << " vs "
        << expected.to_string();
  }
}

TEST(CombineFronts, KWaySortAndBruteForceAgreeFuzz) {
  // The three combine paths must agree on values for random front pairs
  // across every (defender, attacker) mix of additive, collapsing, and
  // reversed-order domains, both Table II ops, and every size mix
  // (empty, singleton, general). The sort path and the O(n^2) brute force
  // are the oracles; the k-way path is the implementation under test.
  Rng rng(61);
  for (int trial = 0; trial < 600; ++trial) {
    const Semiring& dsem = domain_for(trial / 3);
    const Semiring& asem = domain_for(trial);
    dispatch_domains(dsem, asem, [&](const auto& dd, const auto& da) {
      auto rand_front = [&](std::size_t max_points) {
        std::vector<ValuePoint> pts;
        const std::size_t n = rng.below(max_points + 1);  // may be empty
        for (std::size_t i = 0; i < n; ++i) {
          pts.push_back(ValuePoint{random_metric(rng, dsem),
                                   random_metric(rng, asem)});
        }
        return Front::minimized(std::move(pts), dd, da);
      };
      const Front lhs = rand_front(trial % 5 == 1 ? 1 : 12);
      const Front rhs = rand_front(trial % 5 == 3 ? 1 : 12);
      const AttackOp op =
          trial % 2 == 0 ? AttackOp::Combine : AttackOp::Choose;
      using Dd = std::decay_t<decltype(dd)>;
      using Da = std::decay_t<decltype(da)>;
      EXPECT_TRUE((staircase_combine_eligible<Dd, Da>(op)));

      const Front kway = combine_fronts_kway(lhs, rhs, op, dd, da);
      const Front sorted = combine_fronts_sorted(lhs, rhs, op, dd, da);
      EXPECT_TRUE(kway.same_values(sorted, dd, da))
          << "trial " << trial << ": " << kway.to_string() << " vs "
          << sorted.to_string();

      std::vector<ValuePoint> product;
      detail::product_points(lhs.points(), rhs.points(), op, dd, da,
                             product);
      const auto brute = pareto_min_bruteforce(product, dd, da);
      EXPECT_EQ(kway.size(), brute.size()) << "trial " << trial;
      for (const ValuePoint& p : brute) {
        bool found = false;
        for (const ValuePoint& q : kway.points()) {
          found = found || (dd.equivalent(q.def, p.def) &&
                            da.equivalent(q.att, p.att));
        }
        EXPECT_TRUE(found) << "trial " << trial << ": (" << p.def << ", "
                           << p.att << ") missing from k-way result";
      }
      return 0;
    });
  }
}

TEST(CombineFronts, KWayMatchesSortOnLargeStaircases) {
  // Fig. 4-style worst case: two long incomparable staircases whose
  // product prunes heavily. Exercises the upper-envelope row dropping on
  // sizes where a bug would have many chances to surface.
  for (const AttackOp op : {AttackOp::Combine, AttackOp::Choose}) {
    std::vector<ValuePoint> a;
    std::vector<ValuePoint> b;
    for (int i = 0; i < 200; ++i) {
      a.push_back(ValuePoint{double(i), double(i)});
      b.push_back(ValuePoint{double(3 * i + 1), double(2 * i + 1)});
    }
    dispatch_domains(kCost, kCost, [&](const auto& dd, const auto& da) {
      const Front lhs = Front::minimized(a, dd, da);
      const Front rhs = Front::minimized(b, dd, da);
      const Front kway = combine_fronts_kway(lhs, rhs, op, dd, da);
      const Front sorted = combine_fronts_sorted(lhs, rhs, op, dd, da);
      EXPECT_TRUE(kway.same_values(sorted, dd, da))
          << to_string(op) << ": " << kway.size() << " vs "
          << sorted.size() << " points";
      return 0;
    });
  }
}

TEST(CombineFronts, KWayWitnessesAreValidProducts) {
  // Witness payloads on the k-way path: every kept point must be the
  // product of an actual (lhs, rhs) point pair - matching values AND the
  // op's witness rule (defense union always; attack union under Combine,
  // adoption of the attacker-preferred side under Choose). Witness
  // *choice* between equal-value products may differ from the sort path;
  // validity may not.
  Rng rng(67);
  dispatch_domains(kCost, kCost, [&](const auto& dd, const auto& da) {
    for (int trial = 0; trial < 200; ++trial) {
      const std::size_t nl = 1 + rng.below(6);
      const std::size_t nr = 1 + rng.below(6);
      auto rand_witness_front = [&](std::size_t n, std::size_t bit_base) {
        std::vector<WitnessPoint> pts;
        for (std::size_t i = 0; i < n; ++i) {
          WitnessPoint p;
          p.def = static_cast<double>(rng.below(20));
          p.att = static_cast<double>(rng.below(20));
          p.defense = BitVec(16);
          p.attack = BitVec(16);
          p.defense.set(bit_base + i);
          p.attack.set(bit_base + i);
          pts.push_back(std::move(p));
        }
        return WitnessFront::minimized(std::move(pts), dd, da);
      };
      const WitnessFront lhs = rand_witness_front(nl, 0);
      const WitnessFront rhs = rand_witness_front(nr, 8);
      const AttackOp op =
          trial % 2 == 0 ? AttackOp::Combine : AttackOp::Choose;

      const WitnessFront kway = combine_fronts_kway(lhs, rhs, op, dd, da);
      for (const WitnessPoint& r : kway.points()) {
        bool valid = false;
        for (const WitnessPoint& p : lhs.points()) {
          for (const WitnessPoint& q : rhs.points()) {
            const WitnessPoint expect =
                detail::product_point(p, q, op, dd, da);
            valid = valid ||
                    (dd.equivalent(expect.def, r.def) &&
                     da.equivalent(expect.att, r.att) &&
                     expect.defense.to_string() == r.defense.to_string() &&
                     expect.attack.to_string() == r.attack.to_string());
          }
        }
        EXPECT_TRUE(valid) << "trial " << trial
                           << ": kept point is not a valid product";
      }
      return;
    }
  });
}

TEST(CombineFronts, AutoDispatchesByEligibility) {
  // Static built-in policies certify eligibility; the runtime Semiring
  // and DynamicDomain never do, so combine_fronts falls back to the
  // sorting path for them (and stays correct for a non-monotone custom
  // combine that would break the staircase argument).
  EXPECT_TRUE((staircase_combine_eligible<MinCostDomain, MinSkillDomain>(
      AttackOp::Combine)));
  EXPECT_TRUE((staircase_combine_eligible<ProbabilityDomain, MinCostDomain>(
      AttackOp::Choose)));
  EXPECT_FALSE((staircase_combine_eligible<DynamicDomain, DynamicDomain>(
      AttackOp::Combine)));
  EXPECT_FALSE((staircase_combine_eligible<Semiring, Semiring>(
      AttackOp::Choose)));

  const Semiring weird = Semiring::custom(
      "absdiff", 0.0, std::numeric_limits<double>::infinity(),
      [](double x, double y) { return std::abs(x - y); },
      [](double x, double y) { return x <= y; });
  const Front lhs = Front::minimized({{1, 9}, {5, 12}, {9, 20}}, weird,
                                     kCost);
  const Front rhs = Front::minimized({{2, 3}, {6, 8}}, weird, kCost);
  // Non-monotone custom combine: the auto path must equal the sort oracle.
  const Front combined =
      combine_fronts(lhs, rhs, AttackOp::Choose, weird, kCost);
  const Front sorted =
      combine_fronts_sorted(lhs, rhs, AttackOp::Choose, weird, kCost);
  EXPECT_TRUE(combined.same_values(sorted, weird, kCost));
}

TEST(FrontArena, CombineStatsCountPaths) {
  FrontArena<ValuePoint> arena;
  const Front big = make_front({{0, 5}, {4, 10}, {7, 20}});
  dispatch_domains(kCost, kCost, [&](const auto& dd, const auto& da) {
    Front acc = big;
    arena.combine_into(acc, big, AttackOp::Combine, dd, da);
    return 0;
  });
  EXPECT_EQ(arena.stats().kway_combines, 1u);
  EXPECT_EQ(arena.stats().sorted_combines, 0u);
  EXPECT_GT(arena.stats().points_kept, 0u);

  Front acc = big;  // runtime Semiring: the sorting path
  arena.combine_into(acc, big, AttackOp::Combine, kCost, kCost);
  EXPECT_EQ(arena.stats().kway_combines, 1u);
  EXPECT_EQ(arena.stats().sorted_combines, 1u);
  // The sort path examines the full 3x3 product.
  EXPECT_GE(arena.stats().points_examined, 9u);

  const auto before = arena.stats();
  arena.combine_into(acc, big, AttackOp::Combine, kCost, kCost);
  EXPECT_EQ(arena.stats().since(before).sorted_combines, 1u);
  arena.reset_stats();
  EXPECT_EQ(arena.stats().sorted_combines, 0u);
}

TEST(Front, TakePointsLeavesEmptyFront) {
  Front front = make_front({{0, 5}, {4, 10}});
  std::vector<ValuePoint> points = front.take_points();
  EXPECT_EQ(points.size(), 2u);
  EXPECT_TRUE(front.empty());
  EXPECT_TRUE(Front::from_staircase(std::move(points))
                  .same_values(make_front({{0, 5}, {4, 10}}), kCost, kCost));
}

}  // namespace
}  // namespace adtp
