/// BddBuOptions::task_grain_points is an execution knob, never a result
/// knob: chunked propagation must produce bit-identical fronts AND
/// witnesses for every grain and thread count (grain 1 reproduces the
/// old task-per-node graph), while the default grain must actually
/// collapse the task count on attack-heavy BDDs - the whole point of the
/// granularity fix.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "core/bdd_bu.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"

namespace adtp {
namespace {

constexpr unsigned kThreadCounts[] = {2, 8};
constexpr std::size_t kGrains[] = {1, 16, 1024,
                                   std::numeric_limits<std::size_t>::max()};

TEST(BddGrain, EveryGrainAndThreadCountIsBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RandomAdtOptions gen;
    gen.share_probability = 0.3;
    gen.max_defenses = 6;
    gen.target_nodes = 20 + seed * 3;
    const AugmentedAdt aadt = generate_random_aadt(
        gen, seed, Semiring::min_cost(), Semiring::min_cost());

    BddBuOptions base;
    base.parallel_node_floor = 0;  // force the pool on tiny models
    const Front reference = bdd_bu_front(aadt, base);
    const WitnessFront reference_witness = bdd_bu_front_witness(aadt, base);

    for (unsigned threads : kThreadCounts) {
      for (std::size_t grain : kGrains) {
        BddBuOptions options = base;
        options.threads = threads;
        options.task_grain_points = grain;
        EXPECT_TRUE(bdd_bu_front(aadt, options).bit_identical_values(reference))
            << "seed " << seed << " grain " << grain << " @" << threads
            << " threads diverged";
        const WitnessFront witness = bdd_bu_front_witness(aadt, options);
        ASSERT_TRUE(witness.bit_identical_values(reference_witness))
            << "seed " << seed << " grain " << grain << " @" << threads
            << " threads: witness values diverged";
        for (std::size_t i = 0; i < witness.size(); ++i) {
          EXPECT_EQ(witness.points()[i].defense,
                    reference_witness.points()[i].defense);
          EXPECT_EQ(witness.points()[i].attack,
                    reference_witness.points()[i].attack);
        }
      }
    }
  }
}

TEST(BddGrain, DefaultGrainCollapsesTheTaskCount) {
  // fig4's BDD is a long chain of attack-variable nodes (singleton
  // fronts) under few defense variables: per-node tasks are almost all
  // bookkeeping. The propagation task count must shrink by at least the
  // ratio the estimates promise, with the front untouched.
  const AugmentedAdt aadt = catalog::fig4_exponential(10);

  auto tasks_at = [&](std::size_t grain) {
    BddBuOptions options;
    options.parallel_node_floor = 0;
    options.threads = 2;
    options.task_grain_points = grain;
    const BddBuReport report = bdd_bu_analyze(aadt, options);
    // Subtract the build-phase tasks by re-measuring them alone: run
    // sequentially instead - propagation is the only phase whose task
    // count the grain changes, so compare total counts directly.
    return report.sched.tasks;
  };

  const std::uint64_t per_node = tasks_at(1);
  const std::uint64_t chunked = tasks_at(1024);
  EXPECT_LT(chunked, per_node)
      << "default grain did not reduce the propagation task count";
  // The BDD here has thousands of nonterminals; chunking must remove the
  // bulk of the per-node tasks, not a rounding error's worth.
  EXPECT_LT(chunked, per_node / 2);
}

TEST(BddGrain, GrainKeepsTheReportCountersCoherent) {
  const AugmentedAdt aadt = catalog::fig4_exponential(8);
  BddBuOptions options;
  options.parallel_node_floor = 0;
  options.threads = 4;
  const BddBuReport chunked = bdd_bu_analyze(aadt, options);
  BddBuOptions fine = options;
  fine.task_grain_points = 1;
  const BddBuReport per_node = bdd_bu_analyze(aadt, fine);
  EXPECT_TRUE(chunked.front.bit_identical_values(per_node.front));
  EXPECT_EQ(chunked.max_front_size, per_node.max_front_size);
  EXPECT_EQ(chunked.bdd_size, per_node.bdd_size);
  EXPECT_EQ(chunked.combine_stats.staircase_merges,
            per_node.combine_stats.staircase_merges);
}

}  // namespace
}  // namespace adtp
