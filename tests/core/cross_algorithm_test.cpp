/// Cross-algorithm equivalence property suite.
///
/// Theorems 1 and 2 say BU (trees) and BDDBU (DAGs) compute exactly
/// min-dominance beta(S) - which the Naive enumeration computes by brute
/// force. These tests pit all algorithms against the oracle on hundreds of
/// randomly generated models across all Table I attribute domains, the
/// paper's four order heuristics, and both root agents.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "adt/structure.hpp"
#include "core/analyzer.hpp"
#include "gen/random_adt.hpp"
#include "util/rng.hpp"

namespace adtp {
namespace {

struct DomainPair {
  SemiringKind defender;
  SemiringKind attacker;
};

// Named constants: commas inside brace-initializers would be split by the
// INSTANTIATE macro's argument parsing.
constexpr DomainPair kCostCost{SemiringKind::MinCost, SemiringKind::MinCost};
constexpr DomainPair kCostTimePar{SemiringKind::MinCost,
                                  SemiringKind::MinTimePar};
constexpr DomainPair kCostTimeSeq{SemiringKind::MinCost,
                                  SemiringKind::MinTimeSeq};
constexpr DomainPair kSkillCost{SemiringKind::MinSkill, SemiringKind::MinCost};
constexpr DomainPair kTimeParCost{SemiringKind::MinTimePar,
                                  SemiringKind::MinCost};
constexpr DomainPair kCostProb{SemiringKind::MinCost,
                               SemiringKind::Probability};
constexpr DomainPair kTimeSeqSkill{SemiringKind::MinTimeSeq,
                                   SemiringKind::MinSkill};

using TreeCase = std::tuple<std::uint64_t, DomainPair>;

template <typename Case>
std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto& [seed, domains] = info.param;
  return "seed" + std::to_string(seed) + "_" +
         semiring_kind_name(domains.defender) + "_" +
         semiring_kind_name(domains.attacker);
}

class TreeEquivalence : public ::testing::TestWithParam<TreeCase> {};

TEST_P(TreeEquivalence, BottomUpAndBddBuMatchNaive) {
  const auto& [seed, domains] = GetParam();
  RandomAdtOptions options;
  options.target_nodes = 16 + seed % 15;
  options.share_probability = 0.0;
  options.max_defenses = 6;
  options.root_agent = seed % 3 == 0 ? Agent::Defender : Agent::Attacker;

  const Semiring dd{domains.defender};
  const Semiring da{domains.attacker};
  const AugmentedAdt aadt = generate_random_aadt(options, seed, dd, da);
  ASSERT_TRUE(aadt.adt().is_tree());

  // Approximate comparison: the algorithms combine identical values in
  // different orders, which is only associative up to floating-point ULPs.
  const Front oracle = naive_front(aadt);
  const Front bu = bottom_up_front(aadt);
  EXPECT_TRUE(bu.approx_same_values(oracle))
      << "BU " << bu.to_string() << " vs naive " << oracle.to_string();

  const Front bdd = bdd_bu_front(aadt);
  EXPECT_TRUE(bdd.approx_same_values(oracle))
      << "BDDBU " << bdd.to_string() << " vs naive " << oracle.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, TreeEquivalence,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 26),
                       ::testing::Values(kCostCost, kCostTimePar, kSkillCost,
                                         kCostProb, kTimeSeqSkill)),
    case_name<TreeCase>);

using DagCase = std::tuple<std::uint64_t, DomainPair>;

class DagEquivalence : public ::testing::TestWithParam<DagCase> {};

TEST_P(DagEquivalence, BddBuAndHybridMatchNaive) {
  const auto& [seed, domains] = GetParam();
  RandomAdtOptions options;
  options.target_nodes = 18 + seed % 16;
  options.share_probability = 0.3;
  options.max_defenses = 6;
  options.root_agent = seed % 4 == 0 ? Agent::Defender : Agent::Attacker;

  const Semiring dd{domains.defender};
  const Semiring da{domains.attacker};
  const AugmentedAdt aadt = generate_random_aadt(options, seed, dd, da);

  const Front oracle = naive_front(aadt);
  const Front bdd = bdd_bu_front(aadt);
  EXPECT_TRUE(bdd.approx_same_values(oracle))
      << "BDDBU " << bdd.to_string() << " vs naive " << oracle.to_string();

  const Front hybrid = hybrid_front(aadt);
  EXPECT_TRUE(hybrid.approx_same_values(oracle))
      << "hybrid " << hybrid.to_string() << " vs naive "
      << oracle.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DagEquivalence,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 26),
                       ::testing::Values(kCostCost, kCostTimeSeq,
                                         kTimeParCost, kCostProb)),
    case_name<DagCase>);

class OrderInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderInvariance, FrontIndependentOfDefenseFirstOrder) {
  // Theorem 2 holds for *every* defense-first order; the front must not
  // depend on the heuristic.
  const std::uint64_t seed = GetParam();
  RandomAdtOptions options;
  options.target_nodes = 30;
  options.share_probability = 0.25;
  options.max_defenses = 7;
  const AugmentedAdt aadt = generate_random_aadt(
      options, seed, Semiring::min_cost(), Semiring::min_cost());

  BddBuOptions dfs;
  dfs.order_heuristic = bdd::OrderHeuristic::Dfs;
  const Front reference = bdd_bu_front(aadt, dfs);

  for (auto heuristic : {bdd::OrderHeuristic::Bfs, bdd::OrderHeuristic::Index,
                         bdd::OrderHeuristic::Random}) {
    BddBuOptions options2;
    options2.order_heuristic = heuristic;
    options2.order_seed = seed * 31 + 7;
    const Front front = bdd_bu_front(aadt, options2);
    EXPECT_TRUE(front.same_values(reference, aadt.defender_domain(),
                                  aadt.attacker_domain()))
        << to_string(heuristic);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderInvariance,
                         ::testing::Range<std::uint64_t>(1, 16));

class WitnessConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WitnessConsistency, WitnessesReplayThroughStructureFunction) {
  const std::uint64_t seed = GetParam();
  RandomAdtOptions options;
  options.target_nodes = 24;
  options.share_probability = seed % 2 == 0 ? 0.3 : 0.0;
  options.max_defenses = 6;
  const AugmentedAdt aadt = generate_random_aadt(
      options, seed, Semiring::min_cost(), Semiring::min_cost());

  const WitnessFront bdd = bdd_bu_front_witness(aadt);
  for (const auto& p : bdd.points()) {
    EXPECT_EQ(aadt.defense_vector_value(p.defense), p.def);
    if (std::isinf(p.att)) continue;  // no successful attack exists
    EXPECT_EQ(aadt.attack_vector_value(p.attack), p.att);
    EXPECT_TRUE(attack_succeeds(aadt.adt(), p.defense, p.attack));
  }

  if (aadt.adt().is_tree()) {
    const WitnessFront bu = bottom_up_front_witness(aadt);
    for (const auto& p : bu.points()) {
      EXPECT_EQ(aadt.defense_vector_value(p.defense), p.def);
      if (std::isinf(p.att)) continue;
      EXPECT_EQ(aadt.attack_vector_value(p.attack), p.att);
      EXPECT_TRUE(attack_succeeds(aadt.adt(), p.defense, p.attack));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessConsistency,
                         ::testing::Range<std::uint64_t>(1, 21));

class ResponseOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResponseOptimality, EveryFrontPointHasNoBetterResponse) {
  // For every Pareto point's witness defense, the claimed attacker value
  // must equal the true optimal response value (Definition 7), checked by
  // brute force over all attack vectors.
  const std::uint64_t seed = GetParam();
  RandomAdtOptions options;
  options.target_nodes = 20;
  options.share_probability = 0.2;
  options.max_defenses = 5;
  const AugmentedAdt aadt = generate_random_aadt(
      options, seed, Semiring::min_cost(), Semiring::min_cost());
  const Semiring& da = aadt.attacker_domain();

  const WitnessFront front = bdd_bu_front_witness(aadt);
  StructureEvaluator eval(aadt.adt());
  const std::size_t num_a = aadt.adt().num_attacks();
  ASSERT_LE(num_a, 24u);

  for (const auto& p : front.points()) {
    double best = da.zero();
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << num_a);
         ++mask) {
      BitVec attack(num_a);
      for (std::size_t i = 0; i < num_a; ++i) {
        if ((mask >> i) & 1ULL) attack.set(i);
      }
      if (!eval.attack_succeeds(p.defense, attack)) continue;
      const double value = aadt.attack_vector_value(attack);
      if (da.strictly_prefer(value, best)) best = value;
    }
    EXPECT_TRUE(da.equivalent(best, p.att))
        << "point (" << p.def << "," << p.att << ") but optimal response is "
        << best;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResponseOptimality,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace adtp
