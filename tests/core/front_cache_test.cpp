/// FrontCache is keyed on *content*: equal models must collide onto one
/// entry however they were built, unequal attributions/options must not,
/// and a warm cache must return byte-identical results across every
/// built-in domain mix. The LRU bound and the stats counters are part of
/// the contract - serving loops size the cache from them.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <thread>
#include <vector>

#include "core/analyzer.hpp"
#include "core/batch.hpp"
#include "core/front_cache.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"

namespace adtp {
namespace {

AnalysisResult result_with_front(double def, double att) {
  AnalysisResult result;
  result.front = Front::singleton(ValuePoint{def, att});
  return result;
}

TEST(FrontCacheKey, IdenticalContentHashesEqual) {
  // Two independently constructed fig3 instances: same key.
  const AugmentedAdt a = catalog::fig3_example();
  const AugmentedAdt b = catalog::fig3_example();
  EXPECT_EQ(front_cache_key(a, {}), front_cache_key(b, {}));
}

TEST(FrontCacheKey, AttributionChangesTheKey) {
  const AugmentedAdt base = catalog::fig3_example();
  Attribution attribution = base.attribution();
  attribution.set("a1", 6);  // was 5
  const AugmentedAdt changed(base.adt(), attribution, base.defender_domain(),
                             base.attacker_domain());
  const FrontCacheKey k1 = front_cache_key(base, {});
  const FrontCacheKey k2 = front_cache_key(changed, {});
  EXPECT_EQ(k1.structure, k2.structure);
  EXPECT_NE(k1.attribution, k2.attribution);
  EXPECT_NE(k1, k2);
}

TEST(FrontCacheKey, DomainKindChangesTheKey) {
  const AugmentedAdt cost = catalog::fig3_example();
  // Same tree and values, min_time_seq attacker domain instead.
  const AugmentedAdt time(cost.adt(), cost.attribution(),
                          cost.defender_domain(), Semiring::min_time_seq());
  EXPECT_NE(front_cache_key(cost, {}).attribution,
            front_cache_key(time, {}).attribution);
}

TEST(FrontCacheKey, StructureChangesTheKey) {
  const AugmentedAdt fig3 = catalog::fig3_example();
  const AugmentedAdt fig5 = catalog::fig5_example();
  EXPECT_NE(front_cache_key(fig3, {}).structure,
            front_cache_key(fig5, {}).structure);
}

TEST(FrontCacheKey, OptionFieldsThatAffectTheResultChangeTheKey) {
  const AugmentedAdt model = catalog::fig3_example();
  AnalysisOptions a;
  AnalysisOptions b;
  b.algorithm = Algorithm::Naive;
  EXPECT_NE(front_cache_key(model, a).options,
            front_cache_key(model, b).options);

  AnalysisOptions c;
  c.bdd.order_seed = 99;
  EXPECT_NE(front_cache_key(model, a).options,
            front_cache_key(model, c).options);

  AnalysisOptions d;
  d.naive.max_bits = 5;  // guards participate: success-vs-LimitError
  EXPECT_NE(front_cache_key(model, a).options,
            front_cache_key(model, d).options);
}

TEST(FrontCacheKey, GuardPointersDoNotChangeTheKey) {
  const AugmentedAdt model = catalog::fig3_example();
  const Deadline deadline(10);
  const CancelToken token;
  AnalysisOptions a;
  AnalysisOptions b;
  b.naive.deadline = &deadline;
  b.naive.cancel = &token;
  b.bdd.deadline = &deadline;
  EXPECT_EQ(front_cache_key(model, a), front_cache_key(model, b));
}

TEST(FrontCacheKey, CustomDomainsAreNotCacheable) {
  const Semiring custom = Semiring::custom(
      "sum", 0.0, std::numeric_limits<double>::infinity(),
      [](double x, double y) { return x + y; },
      [](double x, double y) { return x <= y; });
  const AugmentedAdt base = catalog::fig3_example();
  const AugmentedAdt model(base.adt(), base.attribution(), custom,
                           Semiring::min_cost());
  EXPECT_FALSE(cacheable(model));
  EXPECT_TRUE(cacheable(base));
  EXPECT_THROW((void)front_cache_key(model, {}), Error);
}

TEST(FrontCache, LruEvictsTheLeastRecentlyUsed) {
  FrontCache cache(2);
  const FrontCacheKey k1{1, 0, 0};
  const FrontCacheKey k2{2, 0, 0};
  const FrontCacheKey k3{3, 0, 0};
  cache.insert(k1, result_with_front(1, 1));
  cache.insert(k2, result_with_front(2, 2));
  ASSERT_TRUE(cache.lookup(k1).has_value());  // refresh k1: k2 is now LRU
  cache.insert(k3, result_with_front(3, 3));
  EXPECT_TRUE(cache.lookup(k1).has_value());
  EXPECT_FALSE(cache.lookup(k2).has_value());
  EXPECT_TRUE(cache.lookup(k3).has_value());

  const FrontCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_NEAR(stats.hit_rate(), 0.75, 1e-12);
}

TEST(FrontCache, ReinsertKeepsFirstValueAndRefreshesRecency) {
  // First writer wins: a reinsert never replaces the stored value (the
  // determinism contract makes a differing value a caller bug, and
  // layered persistence relies on the false return to store each entry
  // exactly once). It still counts as a touch for LRU purposes.
  FrontCache cache(2);
  const FrontCacheKey key{7, 7, 7};
  EXPECT_TRUE(cache.insert(key, result_with_front(1, 1)));
  EXPECT_FALSE(cache.insert(key, result_with_front(2, 2)));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->front.front_point().def, 1);
  const FrontCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.duplicate_inserts, 1u);

  // Recency: reinserting the LRU key saves it from the next eviction.
  const FrontCacheKey other{8, 8, 8};
  EXPECT_TRUE(cache.insert(other, result_with_front(3, 3)));
  EXPECT_FALSE(cache.insert(key, result_with_front(1, 1)));  // touch key
  EXPECT_TRUE(cache.insert(FrontCacheKey{9, 9, 9}, result_with_front(4, 4)));
  EXPECT_TRUE(cache.lookup(key).has_value());
  EXPECT_FALSE(cache.lookup(other).has_value());  // other was evicted
}

TEST(FrontCache, ConcurrentSameKeyInsertsConvergeToOneEntry) {
  // Many workers racing lookup_or_reserve/publish on one key: exactly
  // one computes, everyone gets the first value, and hits + misses add
  // up to the number of logical queries (no double counting).
  constexpr int kWorkers = 8;
  constexpr int kRounds = 25;
  FrontCache cache(16);
  for (int round = 0; round < kRounds; ++round) {
    const FrontCacheKey key{static_cast<std::uint64_t>(round) + 1, 2, 3};
    std::atomic<int> computed{0};
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        FrontCache::FlightLookup flight = cache.lookup_or_reserve(key);
        if (flight.must_compute) {
          computed.fetch_add(1);
          cache.publish(key, result_with_front(w + 1, w + 1));
        } else {
          ASSERT_TRUE(flight.result.has_value());
        }
      });
    }
    for (std::thread& t : workers) t.join();
    EXPECT_EQ(computed.load(), 1) << "round " << round;
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->front.size(), 1u);
  }
  const FrontCache::Stats stats = cache.stats();
  // kRounds verification lookups after the races are all hits.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kWorkers + 1) * kRounds);
  EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(stats.insertions, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(stats.duplicate_inserts, 0u);
  // Workers that arrived while the computation was in flight resolved by
  // waiting; late arrivals hit directly. Either way they are hits, so
  // coalesced is bounded by the non-computing workers.
  EXPECT_LE(stats.coalesced,
            static_cast<std::uint64_t>(kWorkers - 1) * kRounds);
}

TEST(FrontCache, AbandonedReservationHandsOffToAWaiter) {
  // The computer failing must not strand waiters: abandon() wakes them
  // and one takes over the computation.
  FrontCache cache(4);
  const FrontCacheKey key{1, 2, 3};
  FrontCache::FlightLookup first = cache.lookup_or_reserve(key);
  ASSERT_TRUE(first.must_compute);
  std::thread waiter([&] {
    FrontCache::FlightLookup takeover = cache.lookup_or_reserve(key);
    EXPECT_TRUE(takeover.must_compute);
    cache.publish(key, result_with_front(5, 5));
  });
  cache.abandon(key);
  waiter.join();
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->front.front_point().def, 5);
}

TEST(FrontCache, ZeroCapacityDisablesCaching) {
  FrontCache cache(0);
  const FrontCacheKey key{1, 2, 3};
  cache.insert(key, result_with_front(1, 1));
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(FrontCache, ClearDropsEntriesAndCounters) {
  FrontCache cache(4);
  cache.insert(FrontCacheKey{1, 1, 1}, result_with_front(1, 1));
  (void)cache.lookup(FrontCacheKey{1, 1, 1});
  cache.clear();
  const FrontCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.insertions, 0u);
}

TEST(FrontCache, WarmResultsBitMatchColdAcrossDomainMixes) {
  // For every built-in defender x attacker domain pair: a duplicated
  // fleet analyzed with a shared cache must produce byte-identical fronts
  // on the warm (second) pass, at several thread counts.
  const std::vector<Semiring> domains = {
      Semiring::min_cost(), Semiring::min_time_par(), Semiring::probability()};
  for (const Semiring& defender : domains) {
    for (const Semiring& attacker : domains) {
      RandomAdtOptions options;
      options.target_nodes = 30;
      options.share_probability = 0.3;
      options.max_defenses = 8;
      std::vector<AugmentedAdt> fleet;
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        fleet.push_back(
            generate_random_aadt(options, seed, defender, attacker));
      }

      FrontCache cache(64);
      BatchOptions batch;
      batch.cache = &cache;
      batch.n_threads = 2;
      const BatchReport cold = analyze_batch(fleet, {}, batch);
      ASSERT_EQ(cold.failures, 0u)
          << defender.name() << "/" << attacker.name();
      EXPECT_EQ(cold.cache_hits, 0u);

      batch.n_threads = 4;
      const BatchReport warm = analyze_batch(fleet, {}, batch);
      ASSERT_EQ(warm.failures, 0u);
      EXPECT_EQ(warm.cache_hits, fleet.size());
      for (std::size_t i = 0; i < fleet.size(); ++i) {
        EXPECT_TRUE(warm.items[i].cached);
        EXPECT_EQ(warm.items[i].result.front.to_string(),
                  cold.items[i].result.front.to_string())
            << defender.name() << "/" << attacker.name() << " item " << i;
      }
    }
  }
}

}  // namespace
}  // namespace adtp
