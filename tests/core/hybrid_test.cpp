#include "core/hybrid.hpp"

#include <gtest/gtest.h>

#include "core/bdd_bu.hpp"
#include "core/bottom_up.hpp"
#include "core/naive.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"

namespace adtp {
namespace {

TEST(Hybrid, MoneyTheftDagFront) {
  EXPECT_EQ(hybrid_front(catalog::money_theft_dag()).to_string(),
            "{(0, 80), (20, 90), (50, 140)}");
}

TEST(Hybrid, MoneyTheftUsesOneSmallBlob) {
  // The only shared structure is inside the online branch, so exactly one
  // blob goes to BDDBU and it is smaller than the whole model.
  const HybridReport report = hybrid_analyze(catalog::money_theft_dag());
  EXPECT_EQ(report.blob_count, 1u);
  EXPECT_LT(report.largest_blob, catalog::money_theft_dag().adt().size());
  EXPECT_GT(report.tree_combines, 0u);
}

TEST(Hybrid, PureTreeNeverCallsBdd) {
  const HybridReport report = hybrid_analyze(catalog::money_theft_tree());
  EXPECT_EQ(report.blob_count, 0u);
  EXPECT_EQ(report.front.to_string(), "{(0, 90), (30, 150), (50, 165)}");
}

TEST(Hybrid, TreeModelsMatchBottomUp) {
  for (const AugmentedAdt& model :
       {catalog::fig3_example(), catalog::fig5_example(),
        catalog::fig4_exponential(5)}) {
    EXPECT_TRUE(hybrid_front(model).same_values(
        bottom_up_front(model), model.defender_domain(),
        model.attacker_domain()));
  }
}

TEST(Hybrid, RootLevelSharingFallsBackToBdd) {
  // Two parents of one shared subtree directly under the root: the whole
  // model is one blob.
  Adt adt;
  const NodeId shared = adt.add_basic("s", Agent::Attacker);
  const NodeId x = adt.add_basic("x", Agent::Attacker);
  const NodeId g1 = adt.add_gate("g1", GateType::And, Agent::Attacker,
                                 {shared, x});
  const NodeId y = adt.add_basic("y", Agent::Attacker);
  const NodeId g2 = adt.add_gate("g2", GateType::And, Agent::Attacker,
                                 {shared, y});
  const NodeId root = adt.add_gate("root", GateType::Or, Agent::Attacker,
                                   {g1, g2});
  adt.set_root(root);
  adt.freeze();
  Attribution beta;
  beta.set("s", 5);
  beta.set("x", 3);
  beta.set("y", 1);
  const AugmentedAdt aadt(std::move(adt), std::move(beta),
                          Semiring::min_cost(), Semiring::min_cost());

  const HybridReport report = hybrid_analyze(aadt);
  EXPECT_EQ(report.blob_count, 1u);
  EXPECT_EQ(report.largest_blob, aadt.adt().size());
  EXPECT_EQ(report.front.to_string(), "{(0, 6)}");  // s + y
}

TEST(Hybrid, MatchesNaiveOnRandomDags) {
  RandomAdtOptions options;
  options.target_nodes = 30;
  options.share_probability = 0.25;
  options.max_defenses = 6;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const AugmentedAdt aadt = generate_random_aadt(
        options, seed, Semiring::min_cost(), Semiring::min_cost());
    const Front hybrid = hybrid_front(aadt);
    const Front oracle = naive_front(aadt);
    EXPECT_TRUE(hybrid.same_values(oracle, aadt.defender_domain(),
                                   aadt.attacker_domain()))
        << "seed " << seed << ": " << hybrid.to_string() << " vs "
        << oracle.to_string();
  }
}

TEST(Hybrid, MatchesBddBuOnLargerDags) {
  RandomAdtOptions options;
  options.target_nodes = 90;
  options.share_probability = 0.15;
  options.max_defenses = 10;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const AugmentedAdt aadt = generate_random_aadt(
        options, seed, Semiring::min_cost(), Semiring::min_cost());
    const Front hybrid = hybrid_front(aadt);
    const Front bdd = bdd_bu_front(aadt);
    EXPECT_TRUE(hybrid.same_values(bdd, aadt.defender_domain(),
                                   aadt.attacker_domain()))
        << "seed " << seed << ": " << hybrid.to_string() << " vs "
        << bdd.to_string();
  }
}

}  // namespace
}  // namespace adtp
