#include "core/relevance.hpp"

#include <gtest/gtest.h>

#include "core/naive.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"

namespace adtp {
namespace {

TEST(Relevance, StrongPwdIsIrrelevantInMoneyTheft) {
  // The paper's observation, generalized: forbidding strong_pwd leaves
  // the front unchanged; forbidding cover keypad or SMS auth does not.
  const AugmentedAdt dag = catalog::money_theft_dag();
  const RelevanceReport report = analyze_defense_relevance(dag);
  EXPECT_EQ(report.full_front.to_string(),
            "{(0, 80), (20, 90), (50, 140)}");

  const Adt& adt = dag.adt();
  const auto irrelevant = report.irrelevant();
  ASSERT_EQ(irrelevant.size(), 1u);
  EXPECT_EQ(adt.name(irrelevant[0]), "strong_pwd");

  for (const auto& entry : report.defenses) {
    if (adt.name(entry.defense) == "cover_keypad" ||
        adt.name(entry.defense) == "sms_authentication") {
      EXPECT_TRUE(entry.relevant) << adt.name(entry.defense);
    }
  }
}

TEST(Relevance, Fig5BothDefensesRelevant) {
  const RelevanceReport report =
      analyze_defense_relevance(catalog::fig5_example());
  EXPECT_TRUE(report.irrelevant().empty());
  ASSERT_EQ(report.defenses.size(), 2u);
  // Without d1 the (4,10) and (12,inf) points disappear.
  EXPECT_EQ(report.defenses[0].front_without.to_string(),
            "{(0, 5)}");
}

TEST(Relevance, RestrictedFrontMatchesRebuiltModel) {
  // Cross-check the BDD-restriction shortcut against re-pricing the
  // defense out of reach (beta_D(d) = inf is NOT the same as forbidding -
  // the point (inf, ...) would still exist - so instead compare against a
  // naive run where the defense bit is forced off).
  RandomAdtOptions options;
  options.target_nodes = 24;
  options.share_probability = 0.25;
  options.max_defenses = 5;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const AugmentedAdt aadt = generate_random_aadt(
        options, seed, Semiring::min_cost(), Semiring::min_cost());
    const RelevanceReport report = analyze_defense_relevance(aadt);

    for (const auto& entry : report.defenses) {
      // Oracle: enumerate feasible events, dropping every delta that
      // activates the forbidden defense.
      const auto events = enumerate_feasible_events(aadt);
      std::vector<ValuePoint> points;
      const std::size_t bit = aadt.adt().defense_index(entry.defense);
      for (const auto& ev : events) {
        if (ev.defense.test(bit)) continue;
        points.push_back(ValuePoint{ev.defense_value, ev.attack_value});
      }
      const Front oracle =
          Front::minimized(std::move(points), aadt.defender_domain(),
                           aadt.attacker_domain());
      EXPECT_TRUE(entry.front_without.same_values(
          oracle, aadt.defender_domain(), aadt.attacker_domain()))
          << "seed " << seed << " defense "
          << aadt.adt().name(entry.defense) << ": "
          << entry.front_without.to_string() << " vs "
          << oracle.to_string();
    }
  }
}

TEST(Relevance, ModelsWithoutDefenses) {
  Adt adt;
  adt.add_basic("a", Agent::Attacker);
  adt.freeze();
  Attribution beta;
  beta.set("a", 3);
  const AugmentedAdt aadt(std::move(adt), std::move(beta),
                          Semiring::min_cost(), Semiring::min_cost());
  const RelevanceReport report = analyze_defense_relevance(aadt);
  EXPECT_TRUE(report.defenses.empty());
  EXPECT_EQ(report.full_front.to_string(), "{(0, 3)}");
}


TEST(Relevance, SecurityCeilings) {
  // Money theft ceilings: with all defenses purchasable the best
  // reachable security is 140. Without cover keypad the ATM attack at 90
  // is forever available; without SMS auth the online attack at 80 is.
  const AugmentedAdt dag = catalog::money_theft_dag();
  const Adt& adt = dag.adt();
  const RelevanceReport report = analyze_defense_relevance(dag);
  for (const auto& entry : report.defenses) {
    EXPECT_EQ(entry.ceiling_with, 140) << adt.name(entry.defense);
    // Ceiling without a defense is never better than with it.
    EXPECT_TRUE(dag.attacker_domain().prefer(entry.ceiling_without,
                                             entry.ceiling_with));
    if (adt.name(entry.defense) == "cover_keypad") {
      EXPECT_EQ(entry.ceiling_without, 90);
    }
    if (adt.name(entry.defense) == "sms_authentication") {
      // Without SMS the online branch costs only 80 forever.
      EXPECT_EQ(entry.ceiling_without, 80);
    }
    if (adt.name(entry.defense) == "strong_pwd") {
      EXPECT_EQ(entry.ceiling_without, 140);  // irrelevant: no change
    }
  }
}

}  // namespace
}  // namespace adtp
