/// Scalar-as-oracle contract of the SIMD Pareto kernels: for every
/// dispatch level the hardware offers, sweep / merge / k-way combine /
/// dominance must produce *bit-identical* results to the scalar code -
/// same double bits, same witness payloads, same CombineStats counters
/// (simd_lanes_used excepted, which is a throughput diagnostic). The
/// inputs deliberately include attacker plateaus, duplicate points,
/// infinities, and endgame-forcing shapes (singleton x long staircase).
///
/// This suite pins the SIMD scalar-oracle invariant of docs/CONTRACTS.md
/// (the end-to-end version lives in differential_fuzz_test.cpp) - update
/// both together.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/domains.hpp"
#include "core/pareto.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"

namespace adtp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<SimdLevel> vector_levels() {
  std::vector<SimdLevel> levels;
  for (SimdLevel l : {SimdLevel::Sse2, SimdLevel::Avx2}) {
    if (simd_level_available(l)) levels.push_back(l);
  }
  return levels;
}

bool same_bits(double x, double y) {
  return std::bit_cast<std::uint64_t>(x) == std::bit_cast<std::uint64_t>(y);
}

bool same_payload(const ValuePoint&, const ValuePoint&) { return true; }
bool same_payload(const WitnessPoint& a, const WitnessPoint& b) {
  return a.defense == b.defense && a.attack == b.attack;
}

template <typename P>
::testing::AssertionResult points_identical(const std::vector<P>& got,
                                            const std::vector<P>& want) {
  if (got.size() != want.size()) {
    return ::testing::AssertionFailure()
           << "size " << got.size() << " != " << want.size();
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (!same_bits(got[i].def, want[i].def) ||
        !same_bits(got[i].att, want[i].att)) {
      return ::testing::AssertionFailure()
             << "value mismatch at " << i << ": (" << got[i].def << ", "
             << got[i].att << ") vs (" << want[i].def << ", " << want[i].att
             << ")";
    }
    if (!same_payload(got[i], want[i])) {
      return ::testing::AssertionFailure() << "witness mismatch at " << i;
    }
  }
  return ::testing::AssertionSuccess();
}

/// Draws a value from a coarse grid so duplicates, plateaus, and (for the
/// unbounded domains) infinities all occur with useful frequency.
template <typename D>
double draw_value(Rng& rng) {
  if (D::kKind == SemiringKind::Probability) {
    return static_cast<double>(rng.range(0, 16)) / 16.0;
  }
  if (rng.range(0, 40) == 0) return kInf;
  return static_cast<double>(rng.range(0, 40)) / 4.0;
}

void fill_payload(ValuePoint&, std::uint64_t) {}
void fill_payload(WitnessPoint& p, std::uint64_t tag) {
  // Unique per-input payload so any gather mix-up is observable.
  p.defense = BitVec(64);
  p.attack = BitVec(64);
  for (std::size_t b = 0; b < 32; ++b) {
    if ((tag >> b) & 1) p.defense.set(b);
    if (((tag * 0x9e3779b97f4a7c15ull) >> b) & 1) p.attack.set(b);
  }
}

template <typename P, typename Dd, typename Da>
std::vector<P> random_points(Rng& rng, std::size_t n, const Dd&, const Da&) {
  std::vector<P> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i].def = draw_value<Dd>(rng);
    pts[i].att = draw_value<Da>(rng);
    fill_payload(pts[i], rng());
  }
  return pts;
}

/// Builds a random staircase of *exactly* \p n points: two strictly
/// increasing integer walks on a shared grid, oriented to each domain's
/// preference direction (minimizing random points instead would collapse
/// to a handful of survivors and never reach the vector block sizes).
/// The shared grid makes equal values across two staircases common, which
/// is what stresses the merge tie-breaks.
template <typename P, typename Dd, typename Da>
std::vector<P> random_staircase(Rng& rng, std::size_t n, const Dd&,
                                const Da&) {
  if (n == 0) return {};
  std::vector<std::uint64_t> xs(n), ys(n);
  std::uint64_t x = static_cast<std::uint64_t>(rng.range(0, 3));
  std::uint64_t y = static_cast<std::uint64_t>(rng.range(0, 3));
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = x;
    ys[i] = y;
    x += static_cast<std::uint64_t>(rng.range(1, 3));
    y += static_cast<std::uint64_t>(rng.range(1, 3));
  }
  const auto grid = [](SemiringKind kind, std::uint64_t v) {
    return kind == SemiringKind::Probability
               ? static_cast<double>(v) / 2048.0
               : static_cast<double>(v) / 8.0;
  };
  std::vector<P> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Walking down the staircase both values strictly worsen for their
    // owner: the defender pays more, the attacker's best response gets
    // less attractive (staircase_push's append condition). "Worsens"
    // flips with each domain's direction.
    pts[i].def = grid(Dd::kKind, Dd::kSimdPrefer == SimdPrefer::LowerIsBetter
                                     ? xs[i]
                                     : xs[n - 1] - xs[i]);
    pts[i].att = grid(Da::kKind, Da::kSimdPrefer == SimdPrefer::LowerIsBetter
                                     ? ys[i]
                                     : ys[n - 1] - ys[i]);
    fill_payload(pts[i], rng());
  }
  return pts;
}

/// Applies \p f to every (defender, attacker) policy pair drawn from the
/// three canonical op-sets, covering all 3 x 3 kernel instantiations.
template <typename F>
void for_each_domain_pair(F&& f) {
  const auto with_da = [&](const auto& dd) {
    f(dd, MinCostDomain{});
    f(dd, MinSkillDomain{});
    f(dd, ProbabilityDomain{});
  };
  with_da(MinCostDomain{});
  with_da(MinSkillDomain{});
  with_da(ProbabilityDomain{});
}

template <typename P>
void expect_sweep_matches_scalar() {
  const auto levels = vector_levels();
  if (levels.empty()) GTEST_SKIP() << "no vector ISA detected";
  Rng rng(0xA11C);
  for_each_domain_pair([&](const auto& dd, const auto& da) {
    for (std::size_t n : {0u, 1u, 7u, 16u, 33u, 257u, 1024u}) {
      std::vector<P> input = random_points<P>(rng, n, dd, da);
      std::sort(input.begin(), input.end(),
                detail::FrontLess<std::decay_t<decltype(dd)>,
                                  std::decay_t<decltype(da)>>{dd, da});
      std::vector<P> want = input;
      {
        ScopedSimdOverride scalar(SimdLevel::Scalar);
        detail::staircase_sweep_in_place(want, dd, da);
      }
      for (SimdLevel level : levels) {
        std::vector<P> got = input;
        ScopedSimdOverride vec(level);
        detail::staircase_sweep_in_place(got, dd, da);
        EXPECT_TRUE(points_identical(got, want))
            << "sweep n=" << n << " level=" << to_string(level);
      }
    }
  });
}

TEST(SimdKernels, SweepMatchesScalarOnValues) {
  expect_sweep_matches_scalar<ValuePoint>();
}

TEST(SimdKernels, SweepMatchesScalarOnWitnesses) {
  expect_sweep_matches_scalar<WitnessPoint>();
}

template <typename P>
void expect_merge_matches_scalar() {
  const auto levels = vector_levels();
  if (levels.empty()) GTEST_SKIP() << "no vector ISA detected";
  Rng rng(0xB22D);
  for_each_domain_pair([&](const auto& dd, const auto& da) {
    const std::size_t sizes[][2] = {{0, 30}, {1, 1},  {5, 200},
                                    {64, 64}, {300, 17}, {128, 256}};
    for (const auto& [na, nb] : sizes) {
      const std::vector<P> a = random_staircase<P>(rng, na, dd, da);
      const std::vector<P> b = random_staircase<P>(rng, nb, dd, da);
      std::vector<P> want;
      {
        ScopedSimdOverride scalar(SimdLevel::Scalar);
        detail::pareto_merge_staircases(a, b, want, dd, da);
      }
      for (SimdLevel level : levels) {
        std::vector<P> got;
        ScopedSimdOverride vec(level);
        detail::pareto_merge_staircases(a, b, got, dd, da);
        EXPECT_TRUE(points_identical(got, want))
            << "merge |a|=" << a.size() << " |b|=" << b.size()
            << " level=" << to_string(level);
      }
    }
  });
}

TEST(SimdKernels, MergeMatchesScalarOnValues) {
  expect_merge_matches_scalar<ValuePoint>();
}

TEST(SimdKernels, MergeMatchesScalarOnWitnesses) {
  expect_merge_matches_scalar<WitnessPoint>();
}

/// The k-way combine must match scalar point-for-point AND counter-for-
/// counter: points_examined parity is what keeps the pruning telemetry
/// trustworthy across dispatch levels.
template <typename P>
void expect_combine_matches_scalar() {
  const auto levels = vector_levels();
  if (levels.empty()) GTEST_SKIP() << "no vector ISA detected";
  Rng rng(0xC33E);
  for_each_domain_pair([&](const auto& dd, const auto& da) {
    // (1, 400) and (2, 300) collapse the tournament early and spend most
    // of the combine in the vector endgame; (40, 40) never reaches it.
    const std::size_t sizes[][2] = {{1, 400}, {2, 300}, {3, 120},
                                    {8, 260},  {40, 40}, {200, 1}};
    for (AttackOp op : {AttackOp::Combine, AttackOp::Choose}) {
      for (const auto& [nl, nr] : sizes) {
        const auto lhs = BasicFront<P>::from_staircase(
            random_staircase<P>(rng, nl, dd, da));
        const auto rhs = BasicFront<P>::from_staircase(
            random_staircase<P>(rng, nr, dd, da));
        BasicFront<P> want, got;
        CombineStats want_stats, got_stats;
        {
          ScopedSimdOverride scalar(SimdLevel::Scalar);
          FrontArena<P> arena;
          want = lhs;
          arena.combine_into(want, rhs, op, dd, da);
          want_stats = arena.stats();
        }
        for (SimdLevel level : levels) {
          ScopedSimdOverride vec(level);
          FrontArena<P> arena;
          got = lhs;
          arena.combine_into(got, rhs, op, dd, da);
          got_stats = arena.stats();
          EXPECT_TRUE(points_identical(got.points(), want.points()))
              << "combine " << nl << "x" << nr << " op=" << to_string(op)
              << " level=" << to_string(level);
          EXPECT_EQ(got_stats.points_examined, want_stats.points_examined)
              << "examined parity " << nl << "x" << nr << " op="
              << to_string(op) << " level=" << to_string(level);
          EXPECT_EQ(got_stats.points_kept, want_stats.points_kept);
        }
        EXPECT_EQ(want_stats.simd_lanes_used, 0u);
      }
    }
  });
}

TEST(SimdKernels, CombineKwayMatchesScalarOnValues) {
  expect_combine_matches_scalar<ValuePoint>();
}

TEST(SimdKernels, CombineKwayMatchesScalarOnWitnesses) {
  expect_combine_matches_scalar<WitnessPoint>();
}

TEST(SimdKernels, VectorLevelsReportLanes) {
  const auto levels = vector_levels();
  if (levels.empty()) GTEST_SKIP() << "no vector ISA detected";
  const MinCostDomain dd;
  const ProbabilityDomain da;
  Rng rng(0xD44F);
  const auto lhs = BasicFront<ValuePoint>::from_staircase(
      random_staircase<ValuePoint>(rng, 1, dd, da));
  const auto rhs = BasicFront<ValuePoint>::from_staircase(
      random_staircase<ValuePoint>(rng, 500, dd, da));
  for (SimdLevel level : levels) {
    ScopedSimdOverride vec(level);
    FrontArena<ValuePoint> arena;
    BasicFront<ValuePoint> acc = lhs;
    arena.combine_into(acc, rhs, AttackOp::Combine, dd, da);
    EXPECT_GT(arena.stats().simd_lanes_used, 0u)
        << "level=" << to_string(level);
  }
}

TEST(SimdKernels, FrontDominatesPointMatchesScalar) {
  const auto levels = vector_levels();
  if (levels.empty()) GTEST_SKIP() << "no vector ISA detected";
  Rng rng(0xE550);
  for_each_domain_pair([&](const auto& dd, const auto& da) {
    for (std::size_t n : {4u, 8u, 64u, 300u}) {
      const auto front = BasicFront<ValuePoint>::from_staircase(
          random_staircase<ValuePoint>(rng, n, dd, da));
      for (int i = 0; i < 50; ++i) {
        ValuePoint q;
        q.def = draw_value<std::decay_t<decltype(dd)>>(rng);
        q.att = draw_value<std::decay_t<decltype(da)>>(rng);
        bool want = false;
        {
          ScopedSimdOverride scalar(SimdLevel::Scalar);
          want = front_dominates_point(front, q, dd, da);
        }
        for (SimdLevel level : levels) {
          ScopedSimdOverride vec(level);
          EXPECT_EQ(front_dominates_point(front, q, dd, da), want)
              << "n=" << n << " q=(" << q.def << ", " << q.att
              << ") level=" << to_string(level);
        }
      }
    }
  });
}

}  // namespace
}  // namespace adtp
