/// The static policy structs of domains.hpp must agree exactly with their
/// runtime Semiring counterparts - they are the same Table I rows, only
/// dispatched at compile time - and dispatch_domains() must select a
/// policy pair whose operations match the two Semirings for every
/// combination of built-in kinds (plus the DynamicDomain fallback).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <type_traits>
#include <vector>

#include "core/domains.hpp"
#include "core/semiring.hpp"
#include "util/rng.hpp"

namespace adtp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Draws a value sweep suitable for \p kind: [0, 1] for probability,
/// [0, inf] with the identities for the rest.
std::vector<double> sweep_values(SemiringKind kind, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  if (kind == SemiringKind::Probability) {
    values = {0.0, 1.0, 0.5};
    for (int i = 0; i < 40; ++i) values.push_back(rng.uniform());
  } else {
    values = {0.0, kInf, 1.0};
    for (int i = 0; i < 40; ++i) {
      values.push_back(static_cast<double>(rng.range(0, 10000)) / 8.0);
    }
  }
  return values;
}

template <typename Domain>
void expect_agrees_with_runtime(const Domain& domain, SemiringKind kind) {
  const Semiring semiring(kind);
  EXPECT_EQ(Domain::kKind, kind);
  EXPECT_EQ(domain.one(), semiring.one());
  EXPECT_EQ(domain.zero(), semiring.zero());

  const auto values = sweep_values(kind, 7 + static_cast<std::uint64_t>(kind));
  for (double x : values) {
    for (double y : values) {
      EXPECT_EQ(domain.combine(x, y), semiring.combine(x, y))
          << to_string(kind) << " combine(" << x << ", " << y << ")";
      EXPECT_EQ(domain.prefer(x, y), semiring.prefer(x, y))
          << to_string(kind) << " prefer(" << x << ", " << y << ")";
      EXPECT_EQ(domain.strictly_prefer(x, y), semiring.strictly_prefer(x, y))
          << to_string(kind) << " strictly_prefer(" << x << ", " << y << ")";
      EXPECT_EQ(domain.equivalent(x, y), semiring.equivalent(x, y))
          << to_string(kind) << " equivalent(" << x << ", " << y << ")";
      EXPECT_EQ(domain.choose(x, y), semiring.choose(x, y))
          << to_string(kind) << " choose(" << x << ", " << y << ")";
    }
  }
}

TEST(Domains, MinCostAgreesWithRuntime) {
  expect_agrees_with_runtime(MinCostDomain{}, SemiringKind::MinCost);
}

TEST(Domains, MinTimeSeqAgreesWithRuntime) {
  expect_agrees_with_runtime(MinTimeSeqDomain{}, SemiringKind::MinTimeSeq);
}

TEST(Domains, MinTimeParAgreesWithRuntime) {
  expect_agrees_with_runtime(MinTimeParDomain{}, SemiringKind::MinTimePar);
}

TEST(Domains, MinSkillAgreesWithRuntime) {
  expect_agrees_with_runtime(MinSkillDomain{}, SemiringKind::MinSkill);
}

TEST(Domains, ProbabilityAgreesWithRuntime) {
  expect_agrees_with_runtime(ProbabilityDomain{}, SemiringKind::Probability);
}

TEST(Domains, DynamicDomainForwardsToSemiring) {
  const Semiring custom = Semiring::custom(
      "lex", 0.0, kInf, [](double x, double y) { return x + 2 * y; },
      [](double x, double y) { return x <= y; });
  const DynamicDomain domain(custom);
  EXPECT_EQ(domain.one(), 0.0);
  EXPECT_EQ(domain.zero(), kInf);
  EXPECT_EQ(domain.combine(3, 4), 11);
  EXPECT_TRUE(domain.prefer(1, 2));
  EXPECT_FALSE(domain.prefer(2, 1));
  EXPECT_TRUE(domain.strictly_prefer(1, 2));
  EXPECT_TRUE(domain.equivalent(2, 2));
  EXPECT_EQ(domain.choose(5, 2), 2);
  EXPECT_EQ(&domain.semiring(), &custom);
}

/// dispatch_domains must hand every built-in pair a static policy pair
/// whose operations coincide with the runtime Semirings on a random
/// sweep; a custom domain on either side must fall back to DynamicDomain.
TEST(Domains, DispatchMatchesRuntimeOnAllBuiltInPairs) {
  const SemiringKind kinds[] = {
      SemiringKind::MinCost, SemiringKind::MinTimeSeq,
      SemiringKind::MinTimePar, SemiringKind::MinSkill,
      SemiringKind::Probability};
  for (SemiringKind dk : kinds) {
    for (SemiringKind ak : kinds) {
      const Semiring dd(dk);
      const Semiring da(ak);
      const bool visited = dispatch_domains(
          dd, da, [&](const auto& sdd, const auto& sda) {
            const auto dvals = sweep_values(dk, 11);
            for (double x : dvals) {
              for (double y : dvals) {
                EXPECT_EQ(sdd.combine(x, y), dd.combine(x, y))
                    << "defender " << to_string(dk);
                EXPECT_EQ(sdd.prefer(x, y), dd.prefer(x, y))
                    << "defender " << to_string(dk);
              }
            }
            const auto avals = sweep_values(ak, 13);
            for (double x : avals) {
              for (double y : avals) {
                EXPECT_EQ(sda.combine(x, y), da.combine(x, y))
                    << "attacker " << to_string(ak);
                EXPECT_EQ(sda.prefer(x, y), da.prefer(x, y))
                    << "attacker " << to_string(ak);
              }
            }
            // Built-in pairs must not hit the erased fallback.
            constexpr bool dd_dynamic =
                std::is_same_v<std::decay_t<decltype(sdd)>, DynamicDomain>;
            constexpr bool da_dynamic =
                std::is_same_v<std::decay_t<decltype(sda)>, DynamicDomain>;
            EXPECT_FALSE(dd_dynamic);
            EXPECT_FALSE(da_dynamic);
            return true;
          });
      EXPECT_TRUE(visited);
    }
  }
}

TEST(Domains, DispatchFallsBackToDynamicForCustom) {
  const Semiring custom = Semiring::custom(
      "sum", 0.0, kInf, [](double x, double y) { return x + y; },
      [](double x, double y) { return x <= y; });
  const Semiring cost = Semiring::min_cost();

  int dynamic_sides = dispatch_domains(
      custom, cost, [](const auto& sdd, const auto& sda) {
        return int(std::is_same_v<std::decay_t<decltype(sdd)>, DynamicDomain>) +
               int(std::is_same_v<std::decay_t<decltype(sda)>, DynamicDomain>);
      });
  EXPECT_EQ(dynamic_sides, 2);

  dynamic_sides = dispatch_domains(
      cost, custom, [](const auto& sdd, const auto& sda) {
        return int(std::is_same_v<std::decay_t<decltype(sdd)>, DynamicDomain>) +
               int(std::is_same_v<std::decay_t<decltype(sda)>, DynamicDomain>);
      });
  EXPECT_EQ(dynamic_sides, 2);
}

/// The Semiring itself satisfies the domain-policy interface, so generic
/// front code accepts it interchangeably with the static structs.
TEST(Domains, SemiringIsAValidPolicy) {
  const Semiring cost = Semiring::min_cost();
  EXPECT_EQ(cost.combine(2, 3), MinCostDomain::combine(2, 3));
  EXPECT_EQ(cost.choose(2, 3), MinCostDomain::choose(2, 3));
}

/// SIMD eligibility: exactly the five built-in policies carry the SIMD
/// markers; DynamicDomain and the runtime Semiring never do, so Custom
/// domains are structurally unable to reach a vector kernel.
TEST(Domains, SimdEligibilityCoversBuiltInsOnly) {
  static_assert(is_simd_eligible_v<MinCostDomain>);
  static_assert(is_simd_eligible_v<MinTimeSeqDomain>);
  static_assert(is_simd_eligible_v<MinTimeParDomain>);
  static_assert(is_simd_eligible_v<MinSkillDomain>);
  static_assert(is_simd_eligible_v<ProbabilityDomain>);
  static_assert(!is_simd_eligible_v<DynamicDomain>);
  static_assert(!is_simd_eligible_v<Semiring>);
  static_assert(is_simd_pair_eligible_v<MinCostDomain, ProbabilityDomain>);
  static_assert(!is_simd_pair_eligible_v<MinCostDomain, DynamicDomain>);
  static_assert(!is_simd_pair_eligible_v<DynamicDomain, DynamicDomain>);
}

/// The markers must describe the actual operations: every eligible
/// domain's prefer/combine on raw doubles is exactly what its
/// (kSimdPrefer, kSimdCombine) pair advertises - this equivalence is
/// what lets the kernels claim bit-identical results.
template <typename D>
void expect_simd_markers_describe_ops(const D& d) {
  Rng rng(static_cast<std::uint64_t>(D::kKind) + 11);
  for (int i = 0; i < 200; ++i) {
    const double x = D::kKind == SemiringKind::Probability
                         ? rng.uniform()
                         : static_cast<double>(rng.range(0, 64)) / 4.0;
    const double y = D::kKind == SemiringKind::Probability
                         ? rng.uniform()
                         : static_cast<double>(rng.range(0, 64)) / 4.0;
    if (D::kSimdPrefer == SimdPrefer::LowerIsBetter) {
      EXPECT_EQ(d.prefer(x, y), x <= y);
      EXPECT_EQ(d.strictly_prefer(x, y), x < y);
    } else {
      EXPECT_EQ(d.prefer(x, y), x >= y);
      EXPECT_EQ(d.strictly_prefer(x, y), x > y);
    }
    switch (D::kSimdCombine) {
      case SimdCombine::Add: EXPECT_EQ(d.combine(x, y), x + y); break;
      case SimdCombine::Max: EXPECT_EQ(d.combine(x, y), x < y ? y : x); break;
      case SimdCombine::Mul: EXPECT_EQ(d.combine(x, y), x * y); break;
    }
  }
}

TEST(Domains, SimdMarkersDescribeTheOperations) {
  expect_simd_markers_describe_ops(MinCostDomain{});
  expect_simd_markers_describe_ops(MinTimeSeqDomain{});
  expect_simd_markers_describe_ops(MinTimeParDomain{});
  expect_simd_markers_describe_ops(MinSkillDomain{});
  expect_simd_markers_describe_ops(ProbabilityDomain{});
}

}  // namespace
}  // namespace adtp
