/// with_basic_step_removed() must be an *exact* constant-fold: the
/// reduced model's structure function equals the original's with the
/// removed step's variable fixed to false, checked here by exhaustive
/// enumeration. counterfactual_sweep() must serve every variant from one
/// shared memo without changing a bit of any front, and its criticality
/// ranking must be deterministic.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "adt/structure.hpp"
#include "core/naive.hpp"
#include "core/node_memo.hpp"
#include "core/whatif.hpp"
#include "gen/catalog.hpp"
#include "util/bitvec.hpp"

namespace adtp {
namespace {

/// Exhaustively checks that \p reduced computes the original structure
/// function with \p removed forced to false: for every defense/attack
/// vector of the reduced model, f_reduced == f_orig on the same steps
/// (matched by name) with the removed step inactive.
void expect_forced_false_semantics(const AugmentedAdt& original,
                                   const AugmentedAdt& reduced,
                                   const std::string& removed) {
  const Adt& orig = original.adt();
  const Adt& red = reduced.adt();
  ASSERT_LE(red.num_defenses() + red.num_attacks(), 16u)
      << "model too large for exhaustive check";

  // Dense-index maps from the reduced model into the original.
  std::vector<std::size_t> def_map(red.num_defenses());
  for (NodeId d : red.defense_steps()) {
    def_map[red.defense_index(d)] = orig.defense_index(orig.at(red.name(d)));
  }
  std::vector<std::size_t> att_map(red.num_attacks());
  for (NodeId a : red.attack_steps()) {
    att_map[red.attack_index(a)] = orig.attack_index(orig.at(red.name(a)));
  }

  StructureEvaluator orig_eval(orig);
  StructureEvaluator red_eval(red);
  for (std::size_t dv = 0; dv < (1u << red.num_defenses()); ++dv) {
    for (std::size_t av = 0; av < (1u << red.num_attacks()); ++av) {
      BitVec red_d(red.num_defenses());
      BitVec red_a(red.num_attacks());
      BitVec orig_d(orig.num_defenses());  // removed step stays false
      BitVec orig_a(orig.num_attacks());
      for (std::size_t i = 0; i < red.num_defenses(); ++i) {
        if ((dv >> i) & 1) {
          red_d.set(i);
          orig_d.set(def_map[i]);
        }
      }
      for (std::size_t i = 0; i < red.num_attacks(); ++i) {
        if ((av >> i) & 1) {
          red_a.set(i);
          orig_a.set(att_map[i]);
        }
      }
      EXPECT_EQ(red_eval.root_value(red_d, red_a),
                orig_eval.root_value(orig_d, orig_a))
          << "divergence removing " << removed << " at defense=" << dv
          << " attack=" << av;
    }
  }
}

TEST(WithBasicStepRemoved, DefenseRemovalMatchesForcedFalseSemantics) {
  const AugmentedAdt model = catalog::fig4_exponential(3);
  const auto reduced = with_basic_step_removed(model, "d2");
  ASSERT_TRUE(reduced.has_value());
  EXPECT_FALSE(reduced->adt().find("d2").has_value());
  // d2's INH gate I2 is false without its inhibited child, so the root OR
  // drops that branch entirely.
  EXPECT_FALSE(reduced->adt().find("I2").has_value());
  EXPECT_FALSE(reduced->adt().find("a2").has_value());
  expect_forced_false_semantics(model, *reduced, "d2");
}

TEST(WithBasicStepRemoved, TriggerRemovalCollapsesTheInhGate) {
  const AugmentedAdt model = catalog::fig4_exponential(3);
  // a2 is the trigger of I2 = INH(d2 | a2): removing it leaves the
  // inhibition permanently off, so I2 collapses onto d2.
  const auto reduced = with_basic_step_removed(model, "a2");
  ASSERT_TRUE(reduced.has_value());
  EXPECT_FALSE(reduced->adt().find("I2").has_value());
  ASSERT_TRUE(reduced->adt().find("d2").has_value());
  expect_forced_false_semantics(model, *reduced, "a2");
}

TEST(WithBasicStepRemoved, MoneyTheftDagVariantsKeepExactSemantics) {
  const AugmentedAdt model = catalog::money_theft_dag();
  for (const char* name : {"phishing", "strong_pwd", "camera", "withdraw_cash",
                           "sms_authentication"}) {
    const auto reduced = with_basic_step_removed(model, name);
    ASSERT_TRUE(reduced.has_value()) << name;
    expect_forced_false_semantics(model, *reduced, name);
  }
}

TEST(WithBasicStepRemoved, RootCollapsingToFalseIsTrivial) {
  Adt adt;
  const NodeId a1 = adt.add_basic("a1", Agent::Attacker);
  const NodeId a2 = adt.add_basic("a2", Agent::Attacker);
  adt.set_root(adt.add_gate("both", GateType::And, Agent::Attacker, {a1, a2}));
  adt.freeze();
  Attribution beta;
  beta.set("a1", 1);
  beta.set("a2", 2);
  const AugmentedAdt model(std::move(adt), std::move(beta),
                           Semiring::min_cost(), Semiring::min_cost());
  // The AND needs both steps; removing either falsifies the root.
  EXPECT_FALSE(with_basic_step_removed(model, "a1").has_value());
  EXPECT_FALSE(with_basic_step_removed(model, "a2").has_value());
}

TEST(WithBasicStepRemoved, RejectsGates) {
  const AugmentedAdt model = catalog::fig4_exponential(3);
  EXPECT_THROW((void)with_basic_step_removed(model, model.adt().at("I1")),
               ModelError);
  EXPECT_THROW((void)with_basic_step_removed(model, model.adt().root()),
               ModelError);
}

TEST(CounterfactualSweep, VariantsMatchColdAnalysisBitForBit) {
  const AugmentedAdt model = catalog::fig4_exponential(4);
  const CounterfactualReport report = counterfactual_sweep(model);

  ASSERT_EQ(report.variants.size(),
            model.adt().num_attacks() + model.adt().num_defenses());
  EXPECT_TRUE(
      report.baseline.front.bit_identical_values(analyze(model).front));
  EXPECT_GT(report.memo_hits, 0u) << "variants did not share subtree fronts";

  for (const CounterfactualVariant& variant : report.variants) {
    ASSERT_TRUE(variant.ok) << variant.name << ": " << variant.error;
    const auto reduced = with_basic_step_removed(model, variant.node);
    if (!reduced.has_value()) {
      EXPECT_TRUE(variant.trivial) << variant.name;
      EXPECT_EQ(variant.front_shift, 1.0) << variant.name;
      continue;
    }
    EXPECT_FALSE(variant.trivial) << variant.name;
    EXPECT_TRUE(
        variant.front.bit_identical_values(analyze(*reduced).front))
        << variant.name << ": memoized variant diverged from cold analysis";
  }

  // The ranking is a permutation ordered by (shift desc, name asc).
  std::vector<std::size_t> sorted = report.ranking;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  for (std::size_t i = 1; i < report.ranking.size(); ++i) {
    const auto& prev = report.variants[report.ranking[i - 1]];
    const auto& next = report.variants[report.ranking[i]];
    EXPECT_TRUE(prev.front_shift > next.front_shift ||
                (prev.front_shift == next.front_shift &&
                 prev.name < next.name));
  }
}

TEST(CounterfactualSweep, SharedMemoDoesNotChangeAnyFront) {
  const AugmentedAdt model = catalog::money_theft_dag();
  NodeFrontMemo shared;
  CounterfactualOptions with_memo;
  with_memo.memo = &shared;
  const CounterfactualReport a = counterfactual_sweep(model, with_memo);
  CounterfactualOptions no_memo;
  no_memo.analysis.bottom_up.memo = nullptr;
  const CounterfactualReport b = counterfactual_sweep(model, no_memo);

  ASSERT_EQ(a.variants.size(), b.variants.size());
  EXPECT_TRUE(a.baseline.front.bit_identical_values(b.baseline.front));
  for (std::size_t i = 0; i < a.variants.size(); ++i) {
    EXPECT_TRUE(a.variants[i].front.bit_identical_values(b.variants[i].front))
        << a.variants[i].name;
    EXPECT_EQ(a.variants[i].front_shift, b.variants[i].front_shift);
  }
  EXPECT_EQ(a.ranking, b.ranking);

  // A second sweep against the same shared memo is pure replay.
  const CounterfactualReport c = counterfactual_sweep(model, with_memo);
  EXPECT_EQ(c.memo_misses, 0u);
  EXPECT_EQ(c.ranking, a.ranking);
}

TEST(CounterfactualSweep, AgentFiltersSelectTheSweptSteps) {
  const AugmentedAdt model = catalog::fig4_exponential(3);
  CounterfactualOptions defenses_only;
  defenses_only.include_attacks = false;
  const CounterfactualReport report =
      counterfactual_sweep(model, defenses_only);
  ASSERT_EQ(report.variants.size(), model.adt().num_defenses());
  for (const CounterfactualVariant& v : report.variants) {
    EXPECT_EQ(v.agent, Agent::Defender);
  }
}

TEST(CounterfactualSweep, RemovingDeadDefenseShiftsNothing) {
  // fig3's front is unaffected by... use an explicit construction: a
  // defense whose INH trigger never fires cheaply enough to matter would
  // be model-specific; instead pin the scale: removing the most expensive
  // fig4 defense must shift the front strictly more than removing the
  // cheapest attack's counterpart is required to (sanity of the score).
  const AugmentedAdt model = catalog::fig4_exponential(4);
  const CounterfactualReport report = counterfactual_sweep(model);
  for (const CounterfactualVariant& v : report.variants) {
    EXPECT_GE(v.front_shift, 0.0);
    EXPECT_LE(v.front_shift, 1.0);
    if (v.trivial) EXPECT_EQ(v.points_changed, report.baseline.front.size());
  }
}

}  // namespace
}  // namespace adtp
