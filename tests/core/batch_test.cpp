/// analyze_batch() is a pure orchestration layer: whatever the thread
/// count, every item must carry exactly the result of a sequential
/// analyze() call on that model, and one model failing (resource guard,
/// null pointer) must not disturb its neighbours.

#include <gtest/gtest.h>

#include <vector>

#include "core/analyzer.hpp"
#include "core/batch.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"
#include "util/rng.hpp"

namespace adtp {
namespace {

std::vector<AugmentedAdt> random_fleet(std::size_t count,
                                       double share_probability,
                                       std::uint64_t seed) {
  std::vector<AugmentedAdt> fleet;
  fleet.reserve(count);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    RandomAdtOptions options;
    options.target_nodes = 40;
    options.share_probability = share_probability;
    options.max_defenses = 10;
    fleet.push_back(generate_random_aadt(options, rng(), Semiring::min_cost(),
                                         Semiring::min_cost()));
  }
  return fleet;
}

TEST(Batch, MatchesSequentialAnalyzePerTree) {
  const auto fleet = random_fleet(12, 0.2, 3);
  for (unsigned threads : {1u, 2u, 4u}) {
    const BatchReport report = analyze_batch(fleet, {}, threads);
    ASSERT_EQ(report.items.size(), fleet.size());
    EXPECT_EQ(report.failures, 0u);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      const BatchItem& item = report.items[i];
      EXPECT_EQ(item.index, i);
      ASSERT_TRUE(item.ok) << item.error;
      const AnalysisResult sequential = analyze(fleet[i]);
      EXPECT_EQ(item.result.used, sequential.used);
      // Same algorithm on the same model: the fronts are byte-equal, not
      // merely approximately equal.
      EXPECT_TRUE(item.result.front.same_values(
          sequential.front, fleet[i].defender_domain(),
          fleet[i].attacker_domain()))
          << "item " << i << ": " << item.result.front.to_string() << " vs "
          << sequential.front.to_string();
    }
  }
}

TEST(Batch, ThreadCountDoesNotChangeResults) {
  const auto fleet = random_fleet(8, 0.3, 11);
  const BatchReport one = analyze_batch(fleet, {}, 1);
  const BatchReport four = analyze_batch(fleet, {}, 4);
  ASSERT_EQ(one.items.size(), four.items.size());
  for (std::size_t i = 0; i < one.items.size(); ++i) {
    ASSERT_TRUE(one.items[i].ok);
    ASSERT_TRUE(four.items[i].ok);
    EXPECT_EQ(one.items[i].result.used, four.items[i].result.used);
    EXPECT_EQ(one.items[i].result.front.to_string(),
              four.items[i].result.front.to_string());
  }
}

TEST(Batch, ErrorsAreIsolatedPerItem) {
  // Middle item blows the naive enumeration guard; its neighbours and the
  // batch as a whole must still succeed.
  std::vector<AugmentedAdt> fleet;
  fleet.push_back(catalog::fig3_example());
  fleet.push_back(catalog::money_theft_dag());
  fleet.push_back(catalog::fig5_example());

  AnalysisOptions options;
  options.algorithm = Algorithm::Naive;
  // fig3 needs 5 bits (|A| = 3, |D| = 2), fig5 needs 4; money_theft needs
  // 13 and trips the guard.
  options.naive.max_bits = 5;

  const BatchReport report = analyze_batch(fleet, options, 2);
  ASSERT_EQ(report.items.size(), 3u);
  EXPECT_EQ(report.failures, 1u);
  EXPECT_TRUE(report.items[0].ok) << report.items[0].error;
  EXPECT_FALSE(report.items[1].ok);
  EXPECT_NE(report.items[1].error.find("enumeration guard"),
            std::string::npos);
  EXPECT_TRUE(report.items[2].ok) << report.items[2].error;
  EXPECT_EQ(report.items[0].result.front.to_string(), "{(0, 10), (15, 15)}");
  EXPECT_EQ(report.items[2].result.front.to_string(),
            "{(0, 5), (4, 10), (12, inf)}");
}

TEST(Batch, NullModelsAreReportedNotFatal) {
  const AugmentedAdt model = catalog::fig3_example();
  std::vector<const AugmentedAdt*> pointers = {&model, nullptr, &model};
  const BatchReport report = analyze_batch(
      std::span<const AugmentedAdt* const>(pointers), {}, 3);
  ASSERT_EQ(report.items.size(), 3u);
  EXPECT_EQ(report.failures, 1u);
  EXPECT_TRUE(report.items[0].ok);
  EXPECT_FALSE(report.items[1].ok);
  EXPECT_TRUE(report.items[2].ok);
}

TEST(Batch, EmptyBatch) {
  const BatchReport report =
      analyze_batch(std::span<const AugmentedAdt* const>{}, {}, 4);
  EXPECT_TRUE(report.items.empty());
  EXPECT_EQ(report.failures, 0u);
}

TEST(Batch, ZeroThreadsMeansHardwareConcurrency) {
  const auto fleet = random_fleet(3, 0.0, 17);
  const BatchReport report = analyze_batch(fleet, {}, 0);
  EXPECT_GE(report.threads_used, 1u);
  EXPECT_LE(report.threads_used, 3u);
  EXPECT_EQ(report.failures, 0u);
}

TEST(Batch, PerItemTimingIsPopulated) {
  const auto fleet = random_fleet(4, 0.2, 23);
  const BatchReport report = analyze_batch(fleet, {}, 2);
  for (const BatchItem& item : report.items) {
    EXPECT_GE(item.seconds, 0.0);
  }
  EXPECT_GT(report.seconds, 0.0);
  EXPECT_GT(report.trees_per_second(), 0.0);
}

}  // namespace
}  // namespace adtp
