/// analyze_batch() is a pure orchestration layer: whatever the thread
/// count, every item must carry exactly the result of a sequential
/// analyze() call on that model with that job's options, and one model
/// failing (resource guard, null pointer) must not disturb its
/// neighbours. The serving features - per-item options, the batch
/// deadline, cooperative cancellation, the streaming callback, and the
/// FrontCache - are covered here too.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/batch.hpp"
#include "core/front_cache.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace adtp {
namespace {

std::vector<AugmentedAdt> random_fleet(std::size_t count,
                                       double share_probability,
                                       std::uint64_t seed) {
  std::vector<AugmentedAdt> fleet;
  fleet.reserve(count);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    RandomAdtOptions options;
    options.target_nodes = 40;
    options.share_probability = share_probability;
    options.max_defenses = 10;
    fleet.push_back(generate_random_aadt(options, rng(), Semiring::min_cost(),
                                         Semiring::min_cost()));
  }
  return fleet;
}

TEST(Batch, MatchesSequentialAnalyzePerTree) {
  const auto fleet = random_fleet(12, 0.2, 3);
  for (unsigned threads : {1u, 2u, 4u}) {
    const BatchReport report = analyze_batch(fleet, {}, threads);
    ASSERT_EQ(report.items.size(), fleet.size());
    EXPECT_EQ(report.failures, 0u);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      const BatchItem& item = report.items[i];
      EXPECT_EQ(item.index, i);
      ASSERT_TRUE(item.ok) << item.error;
      const AnalysisResult sequential = analyze(fleet[i]);
      EXPECT_EQ(item.result.used, sequential.used);
      // Same algorithm on the same model: the fronts are byte-equal, not
      // merely approximately equal.
      EXPECT_TRUE(item.result.front.same_values(
          sequential.front, fleet[i].defender_domain(),
          fleet[i].attacker_domain()))
          << "item " << i << ": " << item.result.front.to_string() << " vs "
          << sequential.front.to_string();
    }
  }
}

TEST(Batch, ThreadCountDoesNotChangeResults) {
  const auto fleet = random_fleet(8, 0.3, 11);
  const BatchReport one = analyze_batch(fleet, {}, 1);
  const BatchReport four = analyze_batch(fleet, {}, 4);
  ASSERT_EQ(one.items.size(), four.items.size());
  for (std::size_t i = 0; i < one.items.size(); ++i) {
    ASSERT_TRUE(one.items[i].ok);
    ASSERT_TRUE(four.items[i].ok);
    EXPECT_EQ(one.items[i].result.used, four.items[i].result.used);
    EXPECT_EQ(one.items[i].result.front.to_string(),
              four.items[i].result.front.to_string());
  }
}

TEST(Batch, ErrorsAreIsolatedPerItem) {
  // Middle item blows the naive enumeration guard; its neighbours and the
  // batch as a whole must still succeed.
  std::vector<AugmentedAdt> fleet;
  fleet.push_back(catalog::fig3_example());
  fleet.push_back(catalog::money_theft_dag());
  fleet.push_back(catalog::fig5_example());

  AnalysisOptions options;
  options.algorithm = Algorithm::Naive;
  // fig3 needs 5 bits (|A| = 3, |D| = 2), fig5 needs 4; money_theft needs
  // 13 and trips the guard.
  options.naive.max_bits = 5;

  const BatchReport report = analyze_batch(fleet, options, 2);
  ASSERT_EQ(report.items.size(), 3u);
  EXPECT_EQ(report.failures, 1u);
  EXPECT_TRUE(report.items[0].ok) << report.items[0].error;
  EXPECT_FALSE(report.items[1].ok);
  EXPECT_NE(report.items[1].error.find("enumeration guard"),
            std::string::npos);
  EXPECT_TRUE(report.items[2].ok) << report.items[2].error;
  EXPECT_EQ(report.items[0].result.front.to_string(), "{(0, 10), (15, 15)}");
  EXPECT_EQ(report.items[2].result.front.to_string(),
            "{(0, 5), (4, 10), (12, inf)}");
}

TEST(Batch, NullModelsAreReportedNotFatal) {
  const AugmentedAdt model = catalog::fig3_example();
  std::vector<const AugmentedAdt*> pointers = {&model, nullptr, &model};
  const BatchReport report = analyze_batch(
      std::span<const AugmentedAdt* const>(pointers), {}, 3);
  ASSERT_EQ(report.items.size(), 3u);
  EXPECT_EQ(report.failures, 1u);
  EXPECT_TRUE(report.items[0].ok);
  EXPECT_FALSE(report.items[1].ok);
  EXPECT_TRUE(report.items[2].ok);
}

TEST(Batch, EmptyBatch) {
  const BatchReport report =
      analyze_batch(std::span<const AugmentedAdt* const>{}, {}, 4);
  EXPECT_TRUE(report.items.empty());
  EXPECT_EQ(report.failures, 0u);
}

TEST(Batch, ZeroThreadsMeansHardwareConcurrency) {
  const auto fleet = random_fleet(3, 0.0, 17);
  const BatchReport report = analyze_batch(fleet, {}, 0);
  EXPECT_GE(report.threads_used, 1u);
  EXPECT_LE(report.threads_used, 3u);
  EXPECT_EQ(report.failures, 0u);
}

TEST(Batch, PerItemTimingIsPopulated) {
  const auto fleet = random_fleet(4, 0.2, 23);
  const BatchReport report = analyze_batch(fleet, {}, 2);
  for (const BatchItem& item : report.items) {
    EXPECT_GE(item.seconds, 0.0);
  }
  EXPECT_GT(report.seconds, 0.0);
  EXPECT_GT(report.trees_per_second(), 0.0);
}

// ---- per-item options ----------------------------------------------------

TEST(BatchServing, PerItemOptionsAreHonored) {
  // Three jobs over the same tree, each pinned to a different algorithm:
  // the per-job options must drive the algorithm choice item by item.
  const AugmentedAdt model = catalog::fig3_example();
  std::vector<BatchJob> jobs(3);
  for (BatchJob& job : jobs) job.model = &model;
  jobs[0].options.algorithm = Algorithm::Naive;
  jobs[1].options.algorithm = Algorithm::BottomUp;
  jobs[2].options.algorithm = Algorithm::BddBu;

  const BatchReport report = analyze_batch(jobs);
  ASSERT_EQ(report.items.size(), 3u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.items[0].result.used, Algorithm::Naive);
  EXPECT_EQ(report.items[1].result.used, Algorithm::BottomUp);
  EXPECT_EQ(report.items[2].result.used, Algorithm::BddBu);
  for (const BatchItem& item : report.items) {
    ASSERT_TRUE(item.ok) << item.error;
    EXPECT_EQ(item.result.front.to_string(), "{(0, 10), (15, 15)}");
  }
}

TEST(BatchServing, PerItemGuardsStayPerItem) {
  // A tight guard on one job must not leak into its neighbour analyzing
  // the same model.
  const AugmentedAdt model = catalog::money_theft_dag();
  std::vector<BatchJob> jobs(2);
  for (BatchJob& job : jobs) {
    job.model = &model;
    job.options.algorithm = Algorithm::Naive;
  }
  jobs[0].options.naive.max_bits = 5;  // money_theft needs 13

  const BatchReport report = analyze_batch(jobs);
  EXPECT_FALSE(report.items[0].ok);
  EXPECT_NE(report.items[0].error.find("enumeration guard"),
            std::string::npos);
  EXPECT_TRUE(report.items[1].ok) << report.items[1].error;
}

// ---- deterministic streaming with mixed options --------------------------

TEST(BatchServing, MixedOptionsBitMatchSequentialAcrossThreads) {
  // The serving pipeline (per-item options + streaming callback +
  // per-thread persistent arenas) must stay bit-deterministic: every item
  // equals the sequential analyze() call with the same options, at every
  // thread count.
  const auto fleet = random_fleet(10, 0.3, 41);
  std::vector<BatchJob> jobs(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    jobs[i].model = &fleet[i];
    switch (i % 4) {
      case 0:
        jobs[i].options.algorithm = Algorithm::Auto;
        break;
      case 1:
        jobs[i].options.algorithm = Algorithm::BddBu;
        jobs[i].options.bdd.order_heuristic = bdd::OrderHeuristic::Bfs;
        break;
      case 2:
        jobs[i].options.algorithm = Algorithm::Hybrid;
        break;
      default:
        jobs[i].options.algorithm = Algorithm::BddBu;
        jobs[i].options.bdd.order_heuristic = bdd::OrderHeuristic::Random;
        jobs[i].options.bdd.order_seed = 7 + i;
        break;
    }
  }

  std::vector<AnalysisResult> sequential;
  sequential.reserve(jobs.size());
  for (const BatchJob& job : jobs) {
    sequential.push_back(analyze(*job.model, job.options));
  }

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    BatchOptions batch;
    batch.n_threads = threads;
    std::size_t streamed = 0;
    batch.on_item = [&streamed](const BatchItem&) { ++streamed; };
    const BatchReport report = analyze_batch(jobs, batch);
    ASSERT_EQ(report.items.size(), jobs.size());
    EXPECT_EQ(report.failures, 0u);
    EXPECT_EQ(streamed, jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      ASSERT_TRUE(report.items[i].ok) << report.items[i].error;
      EXPECT_EQ(report.items[i].result.used, sequential[i].used);
      EXPECT_EQ(report.items[i].result.front.to_string(),
                sequential[i].front.to_string())
          << "item " << i << " at " << threads << " threads";
    }
  }
}

// ---- deadline and cancellation -------------------------------------------

TEST(BatchServing, ExpiredDeadlineSkipsUnstartedItems) {
  const auto fleet = random_fleet(6, 0.0, 51);
  BatchOptions batch;
  batch.n_threads = 2;
  batch.deadline_seconds = 1e-12;  // expired by the first between-item check
  const BatchReport report = analyze_batch(fleet, {}, batch);
  EXPECT_TRUE(report.deadline_expired);
  EXPECT_EQ(report.failures, fleet.size());
  EXPECT_EQ(report.skipped, fleet.size());
  for (const BatchItem& item : report.items) {
    EXPECT_FALSE(item.ok);
    EXPECT_TRUE(item.skipped);
    EXPECT_NE(item.error.find("deadline expired"), std::string::npos);
  }
  // Skipped items still stream, so callers see the whole batch settle.
  EXPECT_EQ(report.completion_order.size(), fleet.size());
}

TEST(BatchServing, DeadlineInterruptsRunningAnalysis) {
  // fig4(13) has 26 enumeration bits: a full naive run costs ~2^26 model
  // evaluations (tens of seconds at least). The batch deadline must reach
  // the enumeration's guard so the item aborts within milliseconds of the
  // budget, not at the end of the enumeration.
  const AugmentedAdt model = catalog::fig4_exponential(13);
  std::vector<BatchJob> jobs(2);
  for (BatchJob& job : jobs) {
    job.model = &model;
    job.options.algorithm = Algorithm::Naive;
    job.options.naive.max_bits = 26;
  }
  BatchOptions batch;
  batch.n_threads = 1;
  batch.deadline_seconds = 0.05;
  const BatchReport report = analyze_batch(jobs, batch);
  EXPECT_TRUE(report.deadline_expired);
  ASSERT_FALSE(report.items[0].ok);
  EXPECT_FALSE(report.items[0].skipped);  // it started, then hit the guard
  EXPECT_NE(report.items[0].error.find("deadline expired"),
            std::string::npos);
  ASSERT_FALSE(report.items[1].ok);
  EXPECT_TRUE(report.items[1].skipped);
  EXPECT_LT(report.seconds, 10.0);  // nowhere near the full enumeration
}

TEST(BatchServing, GenerousDeadlineDoesNotFlagExpiry) {
  // The report flags are latched when the guard actually affects an item,
  // never re-sampled from the clock after the batch drained - a fully
  // successful batch must not claim its deadline fired.
  const auto fleet = random_fleet(3, 0.0, 121);
  CancelToken token;  // present but never cancelled
  BatchOptions batch;
  batch.deadline_seconds = 3600;
  batch.cancel = &token;
  const BatchReport report = analyze_batch(fleet, {}, batch);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_FALSE(report.deadline_expired);
  EXPECT_FALSE(report.cancelled);
}

TEST(BatchServing, PreCancelledTokenSkipsEverything) {
  const auto fleet = random_fleet(4, 0.0, 61);
  CancelToken token;
  token.cancel();
  BatchOptions batch;
  batch.cancel = &token;
  const BatchReport report = analyze_batch(fleet, {}, batch);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.skipped, fleet.size());
  for (const BatchItem& item : report.items) {
    EXPECT_NE(item.error.find("cancelled"), std::string::npos);
  }
}

TEST(BatchServing, CallbackCanCancelTheRestOfTheBatch) {
  // Single-threaded so the outcome is deterministic: the callback cancels
  // after the first completion, so exactly the remaining items skip.
  const auto fleet = random_fleet(4, 0.0, 71);
  CancelToken token;
  BatchOptions batch;
  batch.n_threads = 1;
  batch.cancel = &token;
  batch.on_item = [&token](const BatchItem&) { token.cancel(); };
  const BatchReport report = analyze_batch(fleet, {}, batch);
  EXPECT_TRUE(report.cancelled);
  EXPECT_TRUE(report.items[0].ok) << report.items[0].error;
  EXPECT_EQ(report.skipped, fleet.size() - 1);
  for (std::size_t i = 1; i < report.items.size(); ++i) {
    EXPECT_TRUE(report.items[i].skipped);
  }
}

// ---- streaming -----------------------------------------------------------

TEST(BatchServing, StreamedItemsMatchCompletionOrder) {
  const auto fleet = random_fleet(8, 0.2, 81);
  std::vector<std::size_t> streamed;
  BatchOptions batch;
  batch.n_threads = 4;
  batch.on_item = [&streamed](const BatchItem& item) {
    streamed.push_back(item.index);
  };
  const BatchReport report = analyze_batch(fleet, {}, batch);
  // The callback sequence is exactly the recorded completion order...
  EXPECT_EQ(streamed, report.completion_order);
  // ...and is a permutation of all indices.
  std::vector<std::size_t> sorted = streamed;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(BatchServing, CallbackExceptionIsCapturedNotFatal) {
  const auto fleet = random_fleet(4, 0.0, 91);
  BatchOptions batch;
  batch.n_threads = 2;
  batch.on_item = [](const BatchItem&) {
    throw std::runtime_error("consumer fell over");
  };
  const BatchReport report = analyze_batch(fleet, {}, batch);
  EXPECT_EQ(report.callback_error, "consumer fell over");
  // The analysis itself is unaffected.
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.completion_order.size(), fleet.size());
}

// ---- throughput metrics --------------------------------------------------

TEST(BatchServing, ItemsPerSecondCountsAllItemsTreesPerSecondOnlyOk) {
  const AugmentedAdt model = catalog::fig3_example();
  std::vector<const AugmentedAdt*> pointers = {&model, nullptr, &model};
  const BatchReport report = analyze_batch(
      std::span<const AugmentedAdt* const>(pointers), {}, 2);
  ASSERT_EQ(report.failures, 1u);
  ASSERT_GT(report.seconds, 0.0);
  // items_per_second spans all 3 items; trees_per_second only the 2 ok
  // ones (its denominator still includes the failure's wall-clock - the
  // documented caveat).
  EXPECT_DOUBLE_EQ(report.items_per_second() * report.seconds, 3.0);
  EXPECT_DOUBLE_EQ(report.trees_per_second() * report.seconds, 2.0);
  EXPECT_GT(report.items_per_second(), report.trees_per_second());
}

// ---- caching -------------------------------------------------------------

TEST(BatchServing, CacheServesRepeatedPairs) {
  const auto fleet = random_fleet(2, 0.2, 101);
  FrontCache cache(16);
  std::vector<BatchJob> jobs(4);
  jobs[0].model = &fleet[0];
  jobs[1].model = &fleet[0];
  jobs[2].model = &fleet[1];
  jobs[3].model = &fleet[0];
  BatchOptions batch;
  batch.n_threads = 1;  // deterministic hit pattern
  batch.cache = &cache;
  const BatchReport report = analyze_batch(jobs, batch);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.cache_hits, 2u);
  EXPECT_FALSE(report.items[0].cached);
  EXPECT_TRUE(report.items[1].cached);
  EXPECT_FALSE(report.items[2].cached);
  EXPECT_TRUE(report.items[3].cached);
  EXPECT_EQ(cache.stats().insertions, 2u);
  // Cached results are bit-identical to fresh ones.
  for (const BatchItem& item : report.items) {
    const AnalysisResult fresh = analyze(*jobs[item.index].model);
    EXPECT_EQ(item.result.front.to_string(), fresh.front.to_string());
    EXPECT_EQ(item.result.used, fresh.used);
  }
}

TEST(BatchServing, CacheKeysOnOptionsNotJustTheModel) {
  const auto fleet = random_fleet(1, 0.4, 111);
  FrontCache cache(16);
  std::vector<BatchJob> jobs(2);
  for (BatchJob& job : jobs) {
    job.model = &fleet[0];
    job.options.algorithm = Algorithm::BddBu;
    job.options.bdd.order_heuristic = bdd::OrderHeuristic::Random;
  }
  jobs[0].options.bdd.order_seed = 1;
  jobs[1].options.bdd.order_seed = 2;  // different order: different key
  BatchOptions batch;
  batch.n_threads = 1;
  batch.cache = &cache;
  const BatchReport report = analyze_batch(jobs, batch);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.cache_hits, 0u);
  EXPECT_EQ(cache.stats().insertions, 2u);
  // Same values regardless of order seed - only the key differs.
  EXPECT_EQ(report.items[0].result.front.to_string(),
            report.items[1].result.front.to_string());
}

TEST(BatchServing, IdleSlotsServeOversizedItemsIntraModelTasks) {
  // One naive job on a four-wide scheduler: the item's 2^|D| shards run
  // on the shared scheduler, so the full width stays engaged. Only the
  // width bookkeeping is observable from outside - the result must
  // equal the sequential run exactly (sharding is deterministic).
  const AugmentedAdt dag = catalog::money_theft_dag();
  AnalysisOptions naive;
  naive.algorithm = Algorithm::Naive;
  const AnalysisResult sequential = analyze(dag, naive);

  std::vector<BatchJob> jobs(1);
  jobs[0].model = &dag;
  jobs[0].options = naive;
  BatchOptions batch;
  batch.n_threads = 4;
  BatchReport report = analyze_batch(jobs, batch);
  // Sharing on: the width is NOT clamped to the job count.
  EXPECT_EQ(report.threads_used, 4u);
  EXPECT_GE(report.sched.tasks, 1u);  // at least the item task itself
  ASSERT_TRUE(report.items[0].ok) << report.items[0].error;
  EXPECT_EQ(report.items[0].result.front.to_string(),
            sequential.front.to_string());

  // Sharing off: extra slots could never see work, so the width clamps
  // to the job count and exactly one item task runs.
  batch.donate_intra_model = false;
  report = analyze_batch(jobs, batch);
  EXPECT_EQ(report.threads_used, 1u);
  EXPECT_EQ(report.sched.tasks, 1u);
  EXPECT_EQ(report.items[0].result.front.to_string(),
            sequential.front.to_string());

  // An explicit per-item thread knob is respected: the item spawns its
  // own shards instead of borrowing the batch scheduler, and the result
  // is still identical.
  jobs[0].options.naive.threads = 2;
  batch.donate_intra_model = true;
  batch.n_threads = 2;
  report = analyze_batch(jobs, batch);
  ASSERT_TRUE(report.items[0].ok) << report.items[0].error;
  EXPECT_EQ(report.items[0].result.front.to_string(),
            sequential.front.to_string());
}

TEST(BatchServing, SharedSchedulerRunsShareTheCacheWithSequentialRuns) {
  // The scheduler/pool knobs are excluded from the cache key
  // (intra-model parallelism is result-invariant), so a run with the
  // batch scheduler injected must hit the entry a sequential run stored.
  const AugmentedAdt dag = catalog::money_theft_dag();
  AnalysisOptions naive;
  naive.algorithm = Algorithm::Naive;

  FrontCache cache(16);
  std::vector<BatchJob> jobs(1);
  jobs[0].model = &dag;
  jobs[0].options = naive;

  BatchOptions cold;
  cold.n_threads = 1;  // sequential, nothing to share
  cold.cache = &cache;
  EXPECT_EQ(analyze_batch(jobs, cold).cache_hits, 0u);

  BatchOptions warm;
  warm.n_threads = 4;  // scheduler sharing active
  warm.cache = &cache;
  const BatchReport report = analyze_batch(jobs, warm);
  EXPECT_EQ(report.threads_used, 4u);
  EXPECT_EQ(report.cache_hits, 1u);
}

TEST(BatchServing, CustomDomainsBypassTheCache) {
  // A custom semiring's hooks cannot be content-hashed; such models must
  // be analyzed fresh every time, silently.
  const Semiring custom = Semiring::custom(
      "sum", 0.0, std::numeric_limits<double>::infinity(),
      [](double x, double y) { return x + y; },
      [](double x, double y) { return x <= y; });
  RandomAdtOptions options;
  options.target_nodes = 20;
  options.max_defenses = 6;
  const AugmentedAdt model = generate_random_aadt(options, 5, custom, custom);
  ASSERT_FALSE(cacheable(model));

  FrontCache cache(16);
  std::vector<BatchJob> jobs(2);
  for (BatchJob& job : jobs) job.model = &model;
  BatchOptions batch;
  batch.n_threads = 1;
  batch.cache = &cache;
  const BatchReport report = analyze_batch(jobs, batch);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.cache_hits, 0u);
  const FrontCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);  // never even consulted
}

}  // namespace
}  // namespace adtp
