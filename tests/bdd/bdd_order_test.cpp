#include "bdd/order.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"
#include "util/error.hpp"

namespace adtp::bdd {
namespace {

TEST(VarOrder, DefenseBlockComesFirst) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  for (auto heuristic : {OrderHeuristic::Dfs, OrderHeuristic::Bfs,
                         OrderHeuristic::Index, OrderHeuristic::Random}) {
    const VarOrder order =
        VarOrder::defense_first(dag.adt(), heuristic, /*seed=*/5);
    EXPECT_EQ(order.num_vars(), dag.adt().num_attacks() +
                                     dag.adt().num_defenses());
    EXPECT_EQ(order.num_defenses(), dag.adt().num_defenses());
    for (std::uint32_t v = 0; v < order.num_vars(); ++v) {
      const bool is_defense =
          dag.adt().agent(order.node_of(v)) == Agent::Defender;
      EXPECT_EQ(order.is_defense_var(v), is_defense) << to_string(heuristic);
      EXPECT_EQ(is_defense, v < order.num_defenses());
    }
  }
}

TEST(VarOrder, VarOfIsInverseOfNodeOf) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const VarOrder order = VarOrder::defense_first(dag.adt());
  for (std::uint32_t v = 0; v < order.num_vars(); ++v) {
    EXPECT_EQ(order.var_of(order.node_of(v)), v);
  }
  EXPECT_THROW((void)order.var_of(dag.adt().at("via_atm")), ModelError);
  EXPECT_THROW((void)order.node_of(order.num_vars()), ModelError);
}

TEST(VarOrder, DfsVisitsLeavesInTraversalOrder) {
  const AugmentedAdt fig5 = catalog::fig5_example();
  const VarOrder order = VarOrder::defense_first(fig5.adt());
  // DFS of OR(INH(a1|d1), INH(a2|d2)): leaves a1, d1, a2, d2; defenses
  // first keeps d1 < d2 and a1 < a2.
  EXPECT_EQ(fig5.adt().name(order.node_of(0)), "d1");
  EXPECT_EQ(fig5.adt().name(order.node_of(1)), "d2");
  EXPECT_EQ(fig5.adt().name(order.node_of(2)), "a1");
  EXPECT_EQ(fig5.adt().name(order.node_of(3)), "a2");
}

TEST(VarOrder, RandomSeedsDiffer) {
  RandomAdtOptions options;
  options.target_nodes = 60;
  const Adt adt = generate_random_adt(options, 3);
  const VarOrder a = VarOrder::defense_first(adt, OrderHeuristic::Random, 1);
  const VarOrder b = VarOrder::defense_first(adt, OrderHeuristic::Random, 2);
  EXPECT_NE(a.sequence(), b.sequence());
  // But both remain valid permutations of the same leaves.
  auto sa = a.sequence();
  auto sb = b.sequence();
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_EQ(sa, sb);
}

TEST(VarOrder, FromSequenceValidation) {
  const AugmentedAdt fig5 = catalog::fig5_example();
  const Adt& adt = fig5.adt();
  const NodeId a1 = adt.at("a1");
  const NodeId a2 = adt.at("a2");
  const NodeId d1 = adt.at("d1");
  const NodeId d2 = adt.at("d2");

  // Valid: defenses first.
  EXPECT_NO_THROW((void)VarOrder::from_sequence(adt, {d2, d1, a1, a2}));
  // Defense after attack: not defense-first.
  EXPECT_THROW((void)VarOrder::from_sequence(adt, {d1, a1, d2, a2}),
               ModelError);
  // Wrong cardinality.
  EXPECT_THROW((void)VarOrder::from_sequence(adt, {d1, d2, a1}), ModelError);
  // Duplicate leaf.
  EXPECT_THROW((void)VarOrder::from_sequence(adt, {d1, d2, a1, a1}),
               ModelError);
  // Gate in the sequence.
  EXPECT_THROW(
      (void)VarOrder::from_sequence(adt, {d1, d2, a1, adt.at("i1")}),
      ModelError);
}

TEST(VarOrder, ToStringFig6Notation) {
  const AugmentedAdt fig5 = catalog::fig5_example();
  const Adt& adt = fig5.adt();
  const VarOrder order = VarOrder::from_sequence(
      adt, {adt.at("d2"), adt.at("d1"), adt.at("a1"), adt.at("a2")});
  EXPECT_EQ(order.to_string(adt), "d2 < d1 < a1 < a2");
}

TEST(VarOrder, AttackOnlyModels) {
  const Adt at = catalog::fig1_steal_data_at();
  const VarOrder order = VarOrder::defense_first(at);
  EXPECT_EQ(order.num_defenses(), 0u);
  EXPECT_EQ(order.num_vars(), at.num_attacks());
}

TEST(VarOrder, CoversSharedLeavesOnce) {
  RandomAdtOptions options;
  options.target_nodes = 50;
  options.share_probability = 0.35;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Adt adt = generate_random_adt(options, seed);
    for (auto heuristic : {OrderHeuristic::Dfs, OrderHeuristic::Bfs}) {
      const VarOrder order = VarOrder::defense_first(adt, heuristic);
      EXPECT_EQ(order.num_vars(),
                adt.num_attacks() + adt.num_defenses())
          << "seed " << seed << " " << to_string(heuristic);
    }
  }
}

}  // namespace
}  // namespace adtp::bdd
