#include "bdd/reorder.hpp"

#include <gtest/gtest.h>

#include "bdd/build.hpp"
#include "core/bdd_bu.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"

namespace adtp::bdd {
namespace {

TEST(Reorder, BddSizeUnderMatchesManagerSize) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const VarOrder order = VarOrder::defense_first(dag.adt());
  Manager manager(order.num_vars());
  const Ref root = build_structure_function(manager, dag.adt(), order);
  EXPECT_EQ(bdd_size_under(dag.adt(), order), manager.size(root));
}

TEST(Reorder, NeverWorseThanInitial) {
  RandomAdtOptions options;
  options.target_nodes = 40;
  options.share_probability = 0.2;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Adt adt = generate_random_adt(options, seed);
    const VarOrder initial =
        VarOrder::defense_first(adt, OrderHeuristic::Random, seed);
    const ReorderResult result = minimize_order(adt, initial);
    EXPECT_LE(result.best_size, result.initial_size) << "seed " << seed;
    EXPECT_EQ(bdd_size_under(adt, result.order), result.best_size);
    EXPECT_GT(result.rebuilds, 0u);
  }
}

TEST(Reorder, ResultStaysDefenseFirst) {
  RandomAdtOptions options;
  options.target_nodes = 35;
  options.share_probability = 0.25;
  const Adt adt = generate_random_adt(options, 11);
  const ReorderResult result =
      minimize_order(adt, VarOrder::defense_first(adt));
  EXPECT_EQ(result.order.num_defenses(), adt.num_defenses());
  for (std::uint32_t v = 0; v < result.order.num_vars(); ++v) {
    EXPECT_EQ(result.order.is_defense_var(v),
              adt.agent(result.order.node_of(v)) == Agent::Defender);
  }
}

TEST(Reorder, FrontUnchangedUnderOptimizedOrder) {
  // Reordering is a performance transformation; the Pareto front must be
  // identical (Theorem 2 holds for every defense-first order).
  RandomAdtOptions options;
  options.target_nodes = 30;
  options.share_probability = 0.3;
  options.max_defenses = 6;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const AugmentedAdt aadt = generate_random_aadt(
        options, seed, Semiring::min_cost(), Semiring::min_cost());
    const ReorderResult result =
        minimize_order(aadt.adt(), VarOrder::defense_first(aadt.adt()));

    BddBuOptions plain;
    BddBuOptions optimized;
    optimized.order = result.order;
    EXPECT_TRUE(bdd_bu_front(aadt, optimized)
                    .same_values(bdd_bu_front(aadt, plain),
                                 aadt.defender_domain(),
                                 aadt.attacker_domain()))
        << "seed " << seed;
  }
}

TEST(Reorder, FullSiftKicksInForSmallModels) {
  const AugmentedAdt fig4 = catalog::fig4_exponential(4);  // 8 leaves
  ReorderOptions options;
  options.full_sift_max_leaves = 24;
  const ReorderResult full =
      minimize_order(fig4.adt(), VarOrder::defense_first(fig4.adt()),
                     options);
  // Full sifting tries every in-block position: strictly more rebuilds
  // than one hill-climbing pass over adjacent pairs.
  options.full_sift_max_leaves = 0;
  options.max_passes = 1;
  const ReorderResult climb =
      minimize_order(fig4.adt(), VarOrder::defense_first(fig4.adt()),
                     options);
  EXPECT_GT(full.rebuilds, climb.rebuilds);
  EXPECT_LE(full.best_size, climb.best_size);
}

}  // namespace
}  // namespace adtp::bdd
