#include "bdd/manager.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace adtp::bdd {
namespace {

TEST(BddManager, TerminalsPreallocated) {
  Manager m(3);
  EXPECT_EQ(m.num_nodes(), 2u);
  EXPECT_TRUE(m.is_terminal(kFalse));
  EXPECT_TRUE(m.is_terminal(kTrue));
  EXPECT_THROW((void)m.var(kTrue), ModelError);
  EXPECT_THROW((void)m.low(kFalse), ModelError);
}

TEST(BddManager, MkReductionRules) {
  Manager m(3);
  // Rule 2: identical children collapse.
  EXPECT_EQ(m.mk(0, kTrue, kTrue), kTrue);
  EXPECT_EQ(m.mk(1, kFalse, kFalse), kFalse);
  // Rule 1: structural sharing.
  const Ref a = m.mk(0, kFalse, kTrue);
  const Ref b = m.mk(0, kFalse, kTrue);
  EXPECT_EQ(a, b);
  EXPECT_GT(m.stats().unique_hits, 0u);
}

TEST(BddManager, MkValidatesInputs) {
  Manager m(2);
  EXPECT_THROW((void)m.mk(5, kFalse, kTrue), ModelError);   // var range
  EXPECT_THROW((void)m.mk(0, 99, kTrue), ModelError);       // child range
  const Ref v1 = m.make_var(1);
  EXPECT_THROW((void)m.mk(1, v1, kTrue), ModelError);  // order violation
}

TEST(BddManager, VarAndNvar) {
  Manager m(2);
  const Ref v = m.make_var(0);
  const Ref nv = m.make_nvar(0);
  EXPECT_EQ(m.low(v), kFalse);
  EXPECT_EQ(m.high(v), kTrue);
  EXPECT_EQ(m.low(nv), kTrue);
  EXPECT_EQ(m.high(nv), kFalse);
  EXPECT_EQ(m.apply_not(v), nv);
}

TEST(BddManager, BasicBooleanIdentities) {
  Manager m(2);
  const Ref x = m.make_var(0);
  const Ref y = m.make_var(1);
  EXPECT_EQ(m.apply_and(x, kTrue), x);
  EXPECT_EQ(m.apply_and(x, kFalse), kFalse);
  EXPECT_EQ(m.apply_or(x, kFalse), x);
  EXPECT_EQ(m.apply_or(x, kTrue), kTrue);
  EXPECT_EQ(m.apply_and(x, x), x);
  EXPECT_EQ(m.apply_or(x, x), x);
  EXPECT_EQ(m.apply_xor(x, x), kFalse);
  EXPECT_EQ(m.apply_not(m.apply_not(x)), x);
  // De Morgan.
  EXPECT_EQ(m.apply_not(m.apply_and(x, y)),
            m.apply_or(m.apply_not(x), m.apply_not(y)));
  // x XOR y = (x AND NOT y) OR (NOT x AND y).
  EXPECT_EQ(m.apply_xor(x, y),
            m.apply_or(m.apply_and(x, m.apply_not(y)),
                       m.apply_and(m.apply_not(x), y)));
}

TEST(BddManager, IteMatchesDefinition) {
  Manager m(3);
  const Ref f = m.make_var(0);
  const Ref g = m.make_var(1);
  const Ref h = m.make_var(2);
  const Ref ite = m.ite(f, g, h);
  for (bool bf : {false, true}) {
    for (bool bg : {false, true}) {
      for (bool bh : {false, true}) {
        EXPECT_EQ(m.evaluate(ite, {bf, bg, bh}), bf ? bg : bh);
      }
    }
  }
}

TEST(BddManager, EvaluateRequiresFullAssignment) {
  Manager m(2);
  const Ref x = m.make_var(0);
  EXPECT_THROW((void)m.evaluate(x, {true}), ModelError);
}

TEST(BddManager, RestrictCofactors) {
  Manager m(2);
  const Ref x = m.make_var(0);
  const Ref y = m.make_var(1);
  const Ref f = m.apply_and(x, y);
  EXPECT_EQ(m.restrict_var(f, 0, true), y);
  EXPECT_EQ(m.restrict_var(f, 0, false), kFalse);
  EXPECT_EQ(m.restrict_var(f, 1, true), x);
  // Restricting an absent variable is a no-op.
  EXPECT_EQ(m.restrict_var(y, 0, true), y);
}

TEST(BddManager, SatCountSmall) {
  Manager m(3);
  const Ref x = m.make_var(0);
  const Ref y = m.make_var(1);
  const Ref z = m.make_var(2);
  EXPECT_EQ(m.sat_count(kTrue), 8);
  EXPECT_EQ(m.sat_count(kFalse), 0);
  EXPECT_EQ(m.sat_count(x), 4);
  EXPECT_EQ(m.sat_count(m.apply_and(x, y)), 2);
  EXPECT_EQ(m.sat_count(m.apply_or(m.apply_and(x, y), z)), 5);
}

TEST(BddManager, SizeCountsReachable) {
  Manager m(2);
  const Ref x = m.make_var(0);
  const Ref y = m.make_var(1);
  EXPECT_EQ(m.size(kTrue), 1u);
  EXPECT_EQ(m.size(x), 3u);             // x + both terminals
  EXPECT_EQ(m.size(m.apply_and(x, y)), 4u);
}

TEST(BddManager, ReachableAscendingAndTopological) {
  Manager m(4);
  Ref f = kTrue;
  for (std::uint32_t v = 0; v < 4; ++v) {
    f = m.apply_and(f, m.make_var(v));
  }
  const auto nodes = m.reachable(f);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i - 1], nodes[i]);
  }
  for (Ref r : nodes) {
    if (m.is_terminal(r)) continue;
    EXPECT_LT(m.low(r), r);
    EXPECT_LT(m.high(r), r);
  }
}

TEST(BddManager, NodeLimitEnforced) {
  Manager m(20, /*node_limit=*/8);
  Ref f = kFalse;
  EXPECT_THROW(
      {
        // Parity function: BDD is linear but each apply allocates; the
        // tiny limit must trip.
        for (std::uint32_t v = 0; v < 20; ++v) {
          f = m.apply_xor(f, m.make_var(v));
        }
      },
      LimitError);
}

TEST(BddManager, ApplyAgainstTruthTableRandomized) {
  // Random 6-variable expressions; compare BDD evaluation with direct
  // formula evaluation on all 64 assignments.
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    Manager m(6);
    // Build a random expression tree over the 6 variables.
    std::vector<Ref> pool;
    for (std::uint32_t v = 0; v < 6; ++v) pool.push_back(m.make_var(v));
    for (int step = 0; step < 12; ++step) {
      const Ref a = pool[rng.below(pool.size())];
      const Ref b = pool[rng.below(pool.size())];
      switch (rng.below(4)) {
        case 0:
          pool.push_back(m.apply_and(a, b));
          break;
        case 1:
          pool.push_back(m.apply_or(a, b));
          break;
        case 2:
          pool.push_back(m.apply_xor(a, b));
          break;
        default:
          pool.push_back(m.apply_not(a));
          break;
      }
    }
    const Ref f = pool.back();

    // Reference: evaluate the same function via Shannon cofactoring with
    // restrict (independent code path).
    for (std::uint32_t assignment = 0; assignment < 64; ++assignment) {
      std::vector<bool> bits(6);
      for (std::uint32_t v = 0; v < 6; ++v) {
        bits[v] = ((assignment >> v) & 1u) != 0;
      }
      Ref g = f;
      for (std::uint32_t v = 0; v < 6; ++v) {
        g = m.restrict_var(g, v, bits[v]);
      }
      ASSERT_TRUE(m.is_terminal(g));
      EXPECT_EQ(m.evaluate(f, bits), g == kTrue);
    }
  }
}

TEST(BddManager, CacheStatisticsMove) {
  Manager m(8);
  const Ref x = m.make_var(3);
  const Ref y = m.make_var(5);
  (void)m.apply_and(x, y);
  const auto misses = m.stats().cache_misses;
  (void)m.apply_and(y, x);  // commutative normalization -> cache hit
  EXPECT_GT(m.stats().cache_hits, 0u);
  EXPECT_EQ(m.stats().cache_misses, misses);
}

}  // namespace
}  // namespace adtp::bdd
