#include "bdd/build.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "adt/structure.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace adtp::bdd {
namespace {

/// Checks f_T == BDD on every assignment (exhaustive up to 20 leaves).
void expect_equivalent(const Adt& adt, Manager& manager, Ref root,
                       const VarOrder& order) {
  const std::size_t bits = order.num_vars();
  ASSERT_LE(bits, 20u);
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << bits); ++mask) {
    std::vector<bool> assignment(bits);
    BitVec defense(adt.num_defenses());
    BitVec attack(adt.num_attacks());
    for (std::uint32_t v = 0; v < bits; ++v) {
      const bool value = ((mask >> v) & 1ULL) != 0;
      assignment[v] = value;
      if (!value) continue;
      const NodeId leaf = order.node_of(v);
      if (adt.agent(leaf) == Agent::Defender) {
        defense.set(adt.defense_index(leaf));
      } else {
        attack.set(adt.attack_index(leaf));
      }
    }
    ASSERT_EQ(manager.evaluate(root, assignment),
              evaluate_root(adt, defense, attack))
        << "mask " << mask;
  }
}

TEST(BddBuild, Fig5Equivalence) {
  const AugmentedAdt fig5 = catalog::fig5_example();
  const VarOrder order = VarOrder::defense_first(fig5.adt());
  Manager manager(order.num_vars());
  const Ref root = build_structure_function(manager, fig5.adt(), order);
  expect_equivalent(fig5.adt(), manager, root, order);
}

TEST(BddBuild, Fig2DagEquivalence) {
  const Adt adt = catalog::fig2_steal_data_adt();
  const VarOrder order = VarOrder::defense_first(adt);
  Manager manager(order.num_vars());
  const Ref root = build_structure_function(manager, adt, order);
  expect_equivalent(adt, manager, root, order);
}

TEST(BddBuild, MoneyTheftEquivalence) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const VarOrder order = VarOrder::defense_first(dag.adt());
  Manager manager(order.num_vars());
  const Ref root = build_structure_function(manager, dag.adt(), order);
  expect_equivalent(dag.adt(), manager, root, order);
}

TEST(BddBuild, BuildAllSharesTranslations) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const VarOrder order = VarOrder::defense_first(dag.adt());
  Manager manager(order.num_vars());
  const auto roots = build_all(manager, dag.adt(), order);
  ASSERT_EQ(roots.size(), dag.adt().size());
  // The BDD of a leaf is its variable.
  const NodeId phishing = dag.adt().at("phishing");
  EXPECT_EQ(roots[phishing], manager.make_var(order.var_of(phishing)));
  // Each internal node's BDD is consistent with its children via the gate
  // semantics; spot-check an INH.
  const NodeId inh = dag.adt().at("sms_effective");
  const Ref expected = manager.apply_and(
      roots[dag.adt().at("sms_authentication")],
      manager.apply_not(roots[dag.adt().at("steal_phone")]));
  EXPECT_EQ(roots[inh], expected);
}

TEST(BddBuild, ManagerVarCountValidated) {
  const AugmentedAdt fig5 = catalog::fig5_example();
  const VarOrder order = VarOrder::defense_first(fig5.adt());
  Manager manager(order.num_vars() + 3);
  EXPECT_THROW((void)build_all(manager, fig5.adt(), order), ModelError);
}

TEST(BddBuild, RandomModelsEquivalence) {
  RandomAdtOptions options;
  options.target_nodes = 26;
  options.share_probability = 0.3;
  options.max_defenses = 5;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Adt adt = generate_random_adt(options, seed);
    if (adt.num_attacks() + adt.num_defenses() > 16) continue;
    for (auto heuristic : {OrderHeuristic::Dfs, OrderHeuristic::Random}) {
      const VarOrder order = VarOrder::defense_first(adt, heuristic, seed);
      Manager manager(order.num_vars());
      const Ref root = build_structure_function(manager, adt, order);
      expect_equivalent(adt, manager, root, order);
    }
  }
}

TEST(BddBuild, SharedSubtreeTranslatedOnce) {
  // A DAG whose shared subtree appears under two gates must not blow up
  // the manager: the memoized build reuses the BDD.
  const Adt adt = catalog::fig2_steal_data_adt();
  const VarOrder order = VarOrder::defense_first(adt);
  Manager manager(order.num_vars());
  const auto roots = build_all(manager, adt, order);
  // SU_effective's BDD is shared by both inhibition gates.
  const Ref su_eff = roots[adt.at("SU_effective")];
  EXPECT_FALSE(manager.is_terminal(su_eff));
}


TEST(BddPaths, Example6PathSemantics) {
  // "The paths in the BDD correspond to evaluations of the structure
  // function": every root-to-1 path, with don't-cares (*) expanded both
  // ways, satisfies f_T; root-to-0 paths falsify it; and the expansions
  // of all paths partition the full assignment space.
  const AugmentedAdt fig5 = catalog::fig5_example();
  const Adt& adt = fig5.adt();
  const VarOrder order = VarOrder::defense_first(adt);
  Manager manager(order.num_vars());
  const Ref root = build_structure_function(manager, adt, order);

  double covered = 0;
  for (Ref target : {kTrue, kFalse}) {
    for (const auto& path : manager.enumerate_paths(root, target)) {
      std::size_t dont_cares = 0;
      // Expand every don't-care both ways and check the evaluation.
      std::vector<std::uint32_t> free_vars;
      for (std::uint32_t v = 0; v < order.num_vars(); ++v) {
        if (path[v] == Manager::kDontCare) {
          ++dont_cares;
          free_vars.push_back(v);
        }
      }
      covered += std::pow(2.0, static_cast<double>(dont_cares));
      for (std::uint64_t mask = 0;
           mask < (std::uint64_t{1} << free_vars.size()); ++mask) {
        BitVec defense(adt.num_defenses());
        BitVec attack(adt.num_attacks());
        auto assign = [&](std::uint32_t v, bool value) {
          if (!value) return;
          const NodeId leaf = order.node_of(v);
          if (adt.agent(leaf) == Agent::Defender) {
            defense.set(adt.defense_index(leaf));
          } else {
            attack.set(adt.attack_index(leaf));
          }
        };
        for (std::uint32_t v = 0; v < order.num_vars(); ++v) {
          if (path[v] != Manager::kDontCare) assign(v, path[v] == 1);
        }
        for (std::size_t i = 0; i < free_vars.size(); ++i) {
          assign(free_vars[i], ((mask >> i) & 1ULL) != 0);
        }
        EXPECT_EQ(evaluate_root(adt, defense, attack), target == kTrue);
      }
    }
  }
  // All 2^4 assignments are covered exactly once across both terminals.
  EXPECT_EQ(covered, 16.0);
}

TEST(BddPaths, CountMatchesSatCount) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const VarOrder order = VarOrder::defense_first(dag.adt());
  Manager manager(order.num_vars());
  const Ref root = build_structure_function(manager, dag.adt(), order);
  double sat = 0;
  for (const auto& path : manager.enumerate_paths(root, kTrue)) {
    std::size_t dont_cares = 0;
    for (auto v : path) dont_cares += (v == Manager::kDontCare);
    sat += std::pow(2.0, static_cast<double>(dont_cares));
  }
  EXPECT_EQ(sat, manager.sat_count(root));
}

TEST(BddPaths, PathLimitGuard) {
  const AugmentedAdt fig4 = catalog::fig4_exponential(8);
  const VarOrder order = VarOrder::defense_first(fig4.adt());
  Manager manager(order.num_vars());
  const Ref root = build_structure_function(manager, fig4.adt(), order);
  EXPECT_THROW((void)manager.enumerate_paths(root, kFalse, 4), LimitError);
}

TEST(BddPaths, TargetMustBeTerminal) {
  const AugmentedAdt fig5 = catalog::fig5_example();
  const VarOrder order = VarOrder::defense_first(fig5.adt());
  Manager manager(order.num_vars());
  const Ref root = build_structure_function(manager, fig5.adt(), order);
  EXPECT_THROW((void)manager.enumerate_paths(root, root), ModelError);
}

}  // namespace
}  // namespace adtp::bdd
