/// The shipped model files under data/ must stay loadable and reproduce
/// the paper's golden fronts - they are the quickest way for users to try
/// the tools (`adt_cli analyze data/money_theft.adt`), so breaking them
/// is breaking the front door.

#include <gtest/gtest.h>

#include <string>

#include "adt/adtool_xml.hpp"
#include "adt/text_format.hpp"
#include "core/analyzer.hpp"

namespace adtp {
namespace {

std::string data_path(const std::string& name) {
  return std::string(ADTP_DATA_DIR) + "/" + name;
}

TEST(DataFiles, Fig3) {
  const AugmentedAdt aadt =
      load_adt_file(data_path("fig3_example.adt")).augmented();
  EXPECT_EQ(analyze(aadt).front.to_string(), "{(0, 10), (15, 15)}");
}

TEST(DataFiles, Fig5) {
  const AugmentedAdt aadt =
      load_adt_file(data_path("fig5_example.adt")).augmented();
  EXPECT_EQ(analyze(aadt).front.to_string(), "{(0, 5), (4, 10), (12, inf)}");
}

TEST(DataFiles, Fig4N4) {
  const AugmentedAdt aadt =
      load_adt_file(data_path("fig4_n4.adt")).augmented();
  EXPECT_EQ(analyze(aadt).front.size(), 16u);
}

TEST(DataFiles, MoneyTheftDag) {
  const AugmentedAdt aadt =
      load_adt_file(data_path("money_theft.adt")).augmented();
  EXPECT_FALSE(aadt.adt().is_tree());
  EXPECT_EQ(analyze(aadt).front.to_string(),
            "{(0, 80), (20, 90), (50, 140)}");
}

TEST(DataFiles, MoneyTheftTree) {
  const AugmentedAdt aadt =
      load_adt_file(data_path("money_theft_tree.adt")).augmented();
  EXPECT_TRUE(aadt.adt().is_tree());
  const AnalysisResult result = analyze(aadt);
  EXPECT_EQ(result.used, Algorithm::BottomUp);
  EXPECT_EQ(result.front.to_string(), "{(0, 90), (30, 150), (50, 165)}");
}

TEST(DataFiles, AdtoolSampleXml) {
  const AdtoolImport import =
      load_adtool_file(data_path("adtool_sample.xml"));
  const AugmentedAdt aadt(import.adt, import.attribution,
                          Semiring::min_cost(), Semiring::min_cost());
  EXPECT_FALSE(aadt.adt().is_tree());  // shared "phish"
  const Front front = analyze(aadt).front;
  EXPECT_EQ(front.front_point().att, 30);
}

}  // namespace
}  // namespace adtp
