/// Golden-front regression suite: the paper's published fronts, pinned as
/// JSON files under tests/data/golden/.
///
/// The cross-algorithm property tests compare algorithms against each
/// other - if the shared semantics drifts, they all drift together and
/// the oracle comparison stays green. These goldens break that symmetry:
/// every algorithm listed in a golden file must reproduce the *pinned*
/// front exactly, so a semantic change in any one of them (or in all of
/// them at once) fails loudly against the paper's numbers.
///
/// Every *.json in the golden directory is discovered and checked; a file
/// naming an unknown model or algorithm fails the suite rather than being
/// skipped.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "gen/catalog.hpp"
#include "util/json.hpp"

namespace adtp {
namespace {

AugmentedAdt model_by_name(const std::string& name) {
  if (name == "fig3_example") return catalog::fig3_example();
  if (name == "fig4_n6") return catalog::fig4_exponential(6);
  if (name == "fig5_example") return catalog::fig5_example();
  if (name == "money_theft_dag") return catalog::money_theft_dag();
  if (name == "money_theft_tree") return catalog::money_theft_tree();
  throw Error("golden: unknown model '" + name + "'");
}

Front run_algorithm(const AugmentedAdt& aadt, const std::string& name) {
  if (name == "naive") return naive_front(aadt);
  if (name == "bottom-up") return bottom_up_front(aadt);
  if (name == "bdd-bu") return bdd_bu_front(aadt);
  if (name == "hybrid") return hybrid_front(aadt);
  throw Error("golden: unknown algorithm '" + name + "'");
}

std::vector<std::filesystem::path> golden_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(ADTP_GOLDEN_DIR)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(GoldenFronts, DirectoryIsNonEmpty) {
  EXPECT_GE(golden_files().size(), 5u);
}

TEST(GoldenFronts, EveryAlgorithmReproducesEveryPinnedFront) {
  for (const auto& path : golden_files()) {
    SCOPED_TRACE(path.filename().string());
    const JsonValue doc = load_json_file(path.string());
    const AugmentedAdt aadt = model_by_name(doc.at("model").as_string());

    // The file's domain tags must match the catalog model - a golden that
    // silently pins the wrong domain is itself a bug.
    EXPECT_EQ(doc.at("defender_domain").as_string(),
              semiring_kind_name(aadt.defender_domain().kind()));
    EXPECT_EQ(doc.at("attacker_domain").as_string(),
              semiring_kind_name(aadt.attacker_domain().kind()));

    const JsonValue& pinned = doc.at("front");
    ASSERT_GT(pinned.size(), 0u);

    for (const JsonValue& algorithm : doc.at("algorithms").items()) {
      const std::string name = algorithm.as_string();
      SCOPED_TRACE("algorithm " + name);
      const Front front = run_algorithm(aadt, name);
      ASSERT_EQ(front.size(), pinned.size()) << front.to_string();
      for (std::size_t i = 0; i < pinned.size(); ++i) {
        const JsonValue& point = pinned.items()[i];
        ASSERT_EQ(point.size(), 2u);
        // Exact comparison: the pinned models combine small integers, so
        // every algorithm must land on the same doubles.
        EXPECT_EQ(front.points()[i].def, point.items()[0].as_metric())
            << "point " << i << " of " << front.to_string();
        EXPECT_EQ(front.points()[i].att, point.items()[1].as_metric())
            << "point " << i << " of " << front.to_string();
      }
    }
  }
}

}  // namespace
}  // namespace adtp
