/// The serving daemon as a library (src/serve/daemon.hpp): wire
/// protocol round-trips, the two satellite fixes of PR 10 - a client
/// disconnect storm must not crash or wedge the daemon (SIGPIPE /
/// EPIPE handling), and a connection flood must be bounded by the
/// worker pool, not answered with unbounded thread spawning - plus the
/// writer/follower/promote flow over one shared store directory, all
/// in-process over real unix sockets.

#include <gtest/gtest.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adt/text_format.hpp"
#include "gen/catalog.hpp"
#include "serve/daemon.hpp"
#include "serve/socket.hpp"
#include "util/json.hpp"

namespace adtp::serve {
namespace {

/// A scratch directory for socket + store, removed on scope exit.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    static std::uint64_t counter = 0;
    path_ = std::filesystem::temp_directory_path() /
            ("adtp_serve_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  [[nodiscard]] Endpoint socket(const std::string& name) const {
    Endpoint ep;
    ep.path = (path_ / (name + ".sock")).string();
    return ep;
  }
  [[nodiscard]] std::string store() const {
    return (path_ / "store").string();
  }

 private:
  std::filesystem::path path_;
};

std::string analyze_header(const std::string& format,
                           const std::string& body) {
  return "ANALYZE " + format + " " + std::to_string(body.size()) + "\n";
}

JsonValue analyze(int fd, const std::string& format,
                  const std::string& body) {
  return parse_json(request_line(fd, analyze_header(format, body) + body));
}

/// Connects and PINGs like a well-behaved client: over-capacity replies
/// are retryable by contract, so back off and try again until admitted.
int connect_admitted(const Endpoint& endpoint) {
  for (int attempt = 0; attempt < 250; ++attempt) {
    const int fd = connect_with_retry(endpoint);
    try {
      if (parse_json(request_line(fd, "PING\n")).at("ok").as_bool()) return fd;
    } catch (const SocketError&) {
      // Rejected connections may be closed before the reply is read.
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return -1;
}

TEST(Daemon, ServesTheProtocolRoundTrip) {
  const ScratchDir dir("roundtrip");
  DaemonConfig config;
  config.store_dir = dir.store();
  config.max_connections = 4;
  DaemonServer server(dir.socket("d"), config);
  server.start();

  const int fd = connect_with_retry(server.endpoint());
  EXPECT_EQ(request_line(fd, "PING\n"), R"({"ok":true,"pong":true})");

  const std::string model = to_text_format(catalog::fig3_example());
  const JsonValue cold = analyze(fd, "text", model);
  ASSERT_TRUE(cold.at("ok").as_bool());
  EXPECT_FALSE(cold.at("cached").as_bool());
  const JsonValue warm = analyze(fd, "text", model);
  ASSERT_TRUE(warm.at("ok").as_bool());
  EXPECT_TRUE(warm.at("cached").as_bool());

  const JsonValue stats = parse_json(request_line(fd, "STATS\n"));
  EXPECT_EQ(stats.at("requests").as_number(), 2);
  EXPECT_EQ(stats.at("computed").as_number(), 1);
  EXPECT_EQ(stats.at("cache_hits").as_number(), 1);
  EXPECT_TRUE(stats.at("persistent").as_bool());

  const JsonValue bad = parse_json(request_line(fd, "FROBNICATE\n"));
  EXPECT_FALSE(bad.at("ok").as_bool());
  ::close(fd);
  server.stop();
}

TEST(Daemon, SurvivesAClientDisconnectStorm) {
  // Satellite fix 1: clients that hang up mid-exchange - after sending
  // a request but before reading its reply - make the daemon write
  // into a closed socket. Unhandled, that is a fatal SIGPIPE; handled,
  // it is a counted disconnect and the daemon keeps serving.
  const ScratchDir dir("storm");
  DaemonConfig config;
  config.store_dir = dir.store();
  config.max_connections = 4;
  DaemonServer server(dir.socket("d"), config);
  server.start();

  // A slow-ish compute so the daemon's reply write reliably lands
  // after the client is gone.
  const std::string model = to_text_format(catalog::fig4_exponential(10));
  const std::string request = analyze_header("text", model) + model;
  for (int round = 0; round < 8; ++round) {
    const int fd = connect_with_retry(server.endpoint());
    write_all_fd(fd, request.data(), request.size());
    ::close(fd);  // vanish without reading the reply
  }

  // The daemon is alive and still serves full round-trips. (The
  // abandoned connections pin workers until their computes finish, so
  // admission may take a few retryable rejections first.)
  const int fd = connect_admitted(server.endpoint());
  ASSERT_GE(fd, 0) << "the daemon never readmitted after the storm";
  const JsonValue reply = analyze(
      fd, "text", to_text_format(catalog::fig3_example()));
  EXPECT_TRUE(reply.at("ok").as_bool());
  ::close(fd);

  // Every hangup whose reply write failed is booked as a disconnect,
  // never as a server failure. (Replies that won the race and were
  // written before the close are legal, so >= 1, not == 8.)
  EXPECT_GE(server.metrics().disconnects.load(), 1u);
  EXPECT_EQ(server.metrics().failed.load(), 0u);
  server.stop();
}

TEST(Daemon, BoundsConcurrentConnectionsAtAcceptTime) {
  // Satellite fix 2: the worker pool is the connection cap. With 2
  // workers pinned by held-open connections, a third connection gets a
  // retryable over-capacity reply instead of a third thread.
  const ScratchDir dir("flood");
  DaemonConfig config;
  config.store_dir = dir.store();
  config.max_connections = 2;
  DaemonServer server(dir.socket("d"), config);
  server.start();

  const int a = connect_with_retry(server.endpoint());
  const int b = connect_with_retry(server.endpoint());
  // Round-trips prove both workers are now owned by these connections.
  EXPECT_EQ(request_line(a, "PING\n"), R"({"ok":true,"pong":true})");
  EXPECT_EQ(request_line(b, "PING\n"), R"({"ok":true,"pong":true})");

  const int c = connect_to(server.endpoint());
  const auto rejection = read_line_fd(c);
  ASSERT_TRUE(rejection.has_value()) << "over-capacity reply expected";
  const JsonValue reply = parse_json(*rejection);
  EXPECT_FALSE(reply.at("ok").as_bool());
  EXPECT_TRUE(reply.at("retryable").as_bool());
  ::close(c);
  EXPECT_GE(server.metrics().connections_rejected.load(), 1u);

  // Freeing a slot readmits: close one, the retry connects and serves.
  ::close(a);
  const int retry = connect_admitted(server.endpoint());
  ASSERT_GE(retry, 0) << "a freed slot was never reused";
  ::close(retry);
  ::close(b);
  server.stop();
}

TEST(Daemon, StopJoinsEveryThreadWithConnectionsHeldOpen) {
  // Structural no-leak guarantee: stop() must return even while idle
  // clients hold connections open (workers blocked in read).
  const ScratchDir dir("stop");
  DaemonConfig config;
  config.store_dir = dir.store();
  config.max_connections = 3;
  auto server = std::make_unique<DaemonServer>(dir.socket("d"), config);
  server->start();
  const int a = connect_with_retry(server->endpoint());
  const int b = connect_with_retry(server->endpoint());
  EXPECT_EQ(request_line(a, "PING\n"), R"({"ok":true,"pong":true})");
  server->stop();   // joins the acceptor and all workers or hangs here
  server.reset();
  ::close(a);
  ::close(b);
}

TEST(Daemon, WriterAndFollowerShareOneStoreAndPromotionHandsOver) {
  // The tentpole, end to end over sockets: a writer daemon computes
  // and persists; a follower daemon on the same directory serves the
  // same fronts warm after REFRESH; when the writer dies, PROMOTE
  // turns the follower into the writer and its inserts persist.
  const ScratchDir dir("fleet");
  const std::string model = to_text_format(catalog::fig3_example());

  DaemonConfig writer_config;
  writer_config.store_dir = dir.store();
  writer_config.max_connections = 2;
  auto writer = std::make_unique<DaemonServer>(dir.socket("w"),
                                               writer_config);
  writer->start();
  {
    const int fd = connect_with_retry(writer->endpoint());
    const JsonValue cold = analyze(fd, "text", model);
    ASSERT_TRUE(cold.at("ok").as_bool());
    EXPECT_FALSE(cold.at("cached").as_bool());
    ::close(fd);
  }

  DaemonConfig follower_config;
  follower_config.store_dir = dir.store();
  follower_config.store_follower = true;
  follower_config.max_connections = 2;
  auto follower = std::make_unique<DaemonServer>(dir.socket("f"),
                                                 follower_config);
  follower->start();
  ASSERT_TRUE(follower->cache().follower());

  const int fd = connect_with_retry(follower->endpoint());
  const JsonValue refreshed = parse_json(request_line(fd, "REFRESH\n"));
  ASSERT_TRUE(refreshed.at("ok").as_bool());
  const JsonValue warm = analyze(fd, "text", model);
  ASSERT_TRUE(warm.at("ok").as_bool());
  EXPECT_TRUE(warm.at("cached").as_bool())
      << "the writer's front must be served warm from the shared store";

  // Premature promotion is refused retryably while the writer lives.
  const JsonValue premature = parse_json(request_line(fd, "PROMOTE\n"));
  EXPECT_FALSE(premature.at("ok").as_bool());
  EXPECT_TRUE(premature.at("retryable").as_bool());

  writer.reset();  // the writer "dies"; its lease evaporates
  const JsonValue promoted = parse_json(request_line(fd, "PROMOTE\n"));
  ASSERT_TRUE(promoted.at("ok").as_bool());
  EXPECT_FALSE(follower->cache().follower());

  // A model the fleet has never seen: computed here, persisted here.
  const std::string fresh = to_text_format(catalog::fig5_example());
  const JsonValue computed = analyze(fd, "text", fresh);
  ASSERT_TRUE(computed.at("ok").as_bool());
  EXPECT_FALSE(computed.at("cached").as_bool());
  EXPECT_EQ(follower->cache().persistence_stats().store_writes, 1u)
      << "post-promotion fronts must reach the shared store";
  ::close(fd);
  follower.reset();  // releases the lease the promotion acquired

  // And the lineage survives: a fresh writer recovers both fronts.
  DaemonConfig successor_config;
  successor_config.store_dir = dir.store();
  successor_config.max_connections = 2;
  DaemonServer successor(dir.socket("s"), successor_config);
  ASSERT_TRUE(successor.cache().recovery().has_value());
  EXPECT_EQ(successor.cache().recovery()->entries_recovered, 2u);
}

TEST(Daemon, FollowerRefresherThreadTrailsTheWriter) {
  const ScratchDir dir("trail");
  const std::string model = to_text_format(catalog::fig3_example());

  DaemonConfig writer_config;
  writer_config.store_dir = dir.store();
  writer_config.max_connections = 2;
  DaemonServer writer(dir.socket("w"), writer_config);
  writer.start();

  DaemonConfig follower_config;
  follower_config.store_dir = dir.store();
  follower_config.store_follower = true;
  follower_config.store_refresh_seconds = 0.02;
  follower_config.max_connections = 2;
  DaemonServer follower(dir.socket("f"), follower_config);
  follower.start();

  {
    const int fd = connect_with_retry(writer.endpoint());
    ASSERT_TRUE(analyze(fd, "text", model).at("ok").as_bool());
    ::close(fd);
  }

  // No client ever sends REFRESH: the refresher thread must pick the
  // front up by itself.
  const int fd = connect_with_retry(follower.endpoint());
  bool warm = false;
  for (int attempt = 0; attempt < 250 && !warm; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const JsonValue reply = analyze(fd, "text", model);
    ASSERT_TRUE(reply.at("ok").as_bool());
    warm = reply.at("cached").as_bool();
  }
  EXPECT_TRUE(warm) << "the refresher never surfaced the writer's front";
  EXPECT_GE(follower.metrics().refreshes.load(), 1u);
  ::close(fd);
}

}  // namespace
}  // namespace adtp::serve
