#include "gen/random_adt.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace adtp {
namespace {

TEST(RandomAdt, DeterministicForSeed) {
  RandomAdtOptions options;
  options.target_nodes = 60;
  options.share_probability = 0.2;
  const Adt a = generate_random_adt(options, 42);
  const Adt b = generate_random_adt(options, 42);
  ASSERT_EQ(a.size(), b.size());
  for (NodeId v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a.name(v), b.name(v));
    EXPECT_EQ(a.type(v), b.type(v));
    EXPECT_EQ(a.agent(v), b.agent(v));
    EXPECT_EQ(a.children(v), b.children(v));
  }
}

TEST(RandomAdt, DifferentSeedsDiffer) {
  RandomAdtOptions options;
  options.target_nodes = 60;
  const Adt a = generate_random_adt(options, 1);
  const Adt b = generate_random_adt(options, 2);
  bool differs = a.size() != b.size();
  if (!differs) {
    for (NodeId v = 0; v < a.size() && !differs; ++v) {
      differs = a.type(v) != b.type(v) || a.children(v) != b.children(v);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(RandomAdt, ReachesTargetSize) {
  for (std::size_t target : {10u, 50u, 150u, 325u}) {
    RandomAdtOptions options;
    options.target_nodes = target;
    const Adt adt = generate_random_adt(options, 7);
    EXPECT_GE(adt.size(), target);
    // Expansion adds at most max_children nodes past the target.
    EXPECT_LE(adt.size(), target + options.max_children + 1);
  }
}

TEST(RandomAdt, TreeModeProducesTrees) {
  RandomAdtOptions options;
  options.target_nodes = 120;
  options.share_probability = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_TRUE(generate_random_adt(options, seed).is_tree())
        << "seed " << seed;
  }
}

TEST(RandomAdt, DagModeProducesSharing) {
  RandomAdtOptions options;
  options.target_nodes = 120;
  options.share_probability = 0.3;
  std::size_t dags = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    if (!generate_random_adt(options, seed).is_tree()) ++dags;
  }
  EXPECT_GE(dags, 8u);  // sharing at p=0.3 is near-certain at this size
}

TEST(RandomAdt, ModelsAlwaysValid) {
  // freeze() inside the generator already checks Definition 1; this test
  // makes the coverage explicit across shapes and root agents.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomAdtOptions options;
    options.target_nodes = 30 + (seed % 5) * 40;
    options.share_probability = (seed % 3) * 0.2;
    options.root_agent = seed % 2 == 0 ? Agent::Defender : Agent::Attacker;
    const Adt adt = generate_random_adt(options, seed);
    EXPECT_TRUE(adt.frozen());
    EXPECT_EQ(adt.agent(adt.root()), options.root_agent);
    EXPECT_GT(adt.num_attacks() + adt.num_defenses(), 0u);
  }
}

TEST(RandomAdt, MaxDefensesRespected) {
  RandomAdtOptions options;
  options.target_nodes = 200;
  options.max_defenses = 6;
  options.share_probability = 0.2;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Adt adt = generate_random_adt(options, seed);
    EXPECT_LE(adt.num_defenses(), 6u) << "seed " << seed;
  }
}

TEST(RandomAdt, ZeroTargetRejected) {
  RandomAdtOptions options;
  options.target_nodes = 0;
  EXPECT_THROW((void)generate_random_adt(options, 1), ModelError);
}

TEST(RandomAttribution, CoversEveryLeafWithDomainSuitableValues) {
  RandomAdtOptions options;
  options.target_nodes = 80;
  const Adt adt = generate_random_adt(options, 5);
  const Attribution cost_beta = random_attribution(
      adt, Semiring::min_cost(), Semiring::probability(), 3);
  for (NodeId id : adt.defense_steps()) {
    const double v = cost_beta.get(adt.name(id));
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
  }
  for (NodeId id : adt.attack_steps()) {
    const double v = cost_beta.get(adt.name(id));
    EXPECT_GT(v, 0);
    EXPECT_LT(v, 1);  // probability domain draws from (0, 1)
  }
  EXPECT_NO_THROW(cost_beta.validate(adt));
}

TEST(RandomAadt, BundlesValidatedModel) {
  RandomAdtOptions options;
  options.target_nodes = 40;
  options.share_probability = 0.25;
  const AugmentedAdt aadt = generate_random_aadt(
      options, 9, Semiring::min_cost(), Semiring::min_cost());
  EXPECT_GE(aadt.adt().size(), 40u);
  EXPECT_EQ(aadt.defender_domain().kind(), SemiringKind::MinCost);
}

}  // namespace
}  // namespace adtp
