#include "gen/catalog.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "adt/structure.hpp"
#include "core/analyzer.hpp"
#include "util/error.hpp"

namespace adtp {
namespace {

TEST(Catalog, Fig1Structure) {
  const Adt at = catalog::fig1_steal_data_at();
  EXPECT_EQ(at.size(), 7u);
  EXPECT_EQ(at.num_attacks(), 5u);
  EXPECT_EQ(at.num_defenses(), 0u);
  EXPECT_TRUE(at.is_tree());
  EXPECT_EQ(at.type(at.root()), GateType::And);
  // Any single credential theft plus SDK reaches the root.
  BitVec attack(5);
  attack.set(at.attack_index(at.at("BU")));
  EXPECT_FALSE(evaluate_root(at, BitVec(0), attack));
  attack.set(at.attack_index(at.at("SDK")));
  EXPECT_TRUE(evaluate_root(at, BitVec(0), attack));
}

TEST(Catalog, Fig2Structure) {
  const Adt adt = catalog::fig2_steal_data_adt();
  EXPECT_EQ(adt.num_attacks(), 6u);   // BU PA ESV ACV DNS SDK
  EXPECT_EQ(adt.num_defenses(), 3u);  // APUT SU SKO
  EXPECT_FALSE(adt.is_tree());        // SU_effective shared
  EXPECT_EQ(adt.parents(adt.at("SU_effective")).size(), 2u);
  // BU itself has no countermeasure, but SKO still blocks the decryption
  // key, so BU + SDK fails under full defense.
  BitVec defense(adt.num_defenses());
  for (std::size_t i = 0; i < defense.size(); ++i) defense.set(i);
  BitVec attack(adt.num_attacks());
  attack.set(adt.attack_index(adt.at("BU")));
  attack.set(adt.attack_index(adt.at("SDK")));
  EXPECT_FALSE(evaluate_root(adt, defense, attack));
}

TEST(Catalog, Fig3GoldenFront) {
  EXPECT_EQ(analyze(catalog::fig3_example()).front.to_string(),
            "{(0, 10), (15, 15)}");
}

TEST(Catalog, Fig4SizesAndBounds) {
  const AugmentedAdt fig4 = catalog::fig4_exponential(3);
  EXPECT_EQ(fig4.adt().size(), 10u);  // 3*(d,a,INH) + root
  EXPECT_EQ(fig4.adt().agent(fig4.adt().root()), Agent::Defender);
  EXPECT_THROW((void)catalog::fig4_exponential(0), ModelError);
  EXPECT_THROW((void)catalog::fig4_exponential(21), ModelError);
}

TEST(Catalog, Fig4WeightsArePowersOfTwo) {
  const AugmentedAdt fig4 = catalog::fig4_exponential(5);
  for (int i = 1; i <= 5; ++i) {
    const double expected = std::pow(2.0, i - 1);
    EXPECT_EQ(fig4.attribution().get("d" + std::to_string(i)), expected);
    EXPECT_EQ(fig4.attribution().get("a" + std::to_string(i)), expected);
  }
}

TEST(Catalog, Fig5GoldenFront) {
  EXPECT_EQ(analyze(catalog::fig5_example()).front.to_string(),
            "{(0, 5), (4, 10), (12, inf)}");
}

TEST(Catalog, MoneyTheftShape) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const AdtStats stats = dag.adt().stats();
  EXPECT_EQ(stats.attack_steps, 10u);
  EXPECT_EQ(stats.defense_steps, 3u);
  EXPECT_EQ(stats.shared_nodes, 1u);  // phishing
  EXPECT_FALSE(stats.tree_shaped);
  // Cost multiset sanity: totals match the figure.
  double attack_total = 0;
  for (NodeId id : dag.adt().attack_steps()) {
    attack_total += dag.attribution().get(dag.adt().name(id));
  }
  EXPECT_EQ(attack_total, 10 + 100 + 20 + 75 + 60 + 120 + 70 + 120 + 10 + 60);
  double defense_total = 0;
  for (NodeId id : dag.adt().defense_steps()) {
    defense_total += dag.attribution().get(dag.adt().name(id));
  }
  EXPECT_EQ(defense_total, 30 + 10 + 20);
}

TEST(Catalog, MoneyTheftGoldenFronts) {
  EXPECT_EQ(analyze(catalog::money_theft_dag()).front.to_string(),
            "{(0, 80), (20, 90), (50, 140)}");
  EXPECT_EQ(analyze(catalog::money_theft_tree()).front.to_string(),
            "{(0, 90), (30, 150), (50, 165)}");
}

TEST(Catalog, MoneyTheftTreeShape) {
  const AugmentedAdt tree = catalog::money_theft_tree();
  EXPECT_TRUE(tree.adt().is_tree());
  EXPECT_EQ(tree.adt().size(), catalog::money_theft_dag().adt().size() + 1);
}

}  // namespace
}  // namespace adtp
