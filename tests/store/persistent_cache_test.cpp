/// End-to-end persistence: a PersistentFrontCache plugged into
/// analyze_batch as a plain FrontCache*, a process "restart" (new cache
/// over the same directory), and the contract-5 claim - a store-warm
/// restart serves fronts bit-identical to cold analysis, at 1, 2 and 8
/// threads.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "gen/random_adt.hpp"
#include "store/persistent_cache.hpp"
#include "store_test_util.hpp"
#include "util/fault.hpp"

namespace adtp::store {
namespace {

using testutil::bits_equal;
using testutil::make_key;
using testutil::make_result;
using testutil::ScratchDir;

TEST(PersistentCache, LookupFallsThroughToTheStoreAndPromotes) {
  const ScratchDir dir("fallthrough");
  PersistentCacheOptions options;
  options.memory_capacity = 1;
  {
    PersistentFrontCache cache(dir.str(), options);
    EXPECT_TRUE(cache.insert(make_key(1), make_result({{1, 10}})));
    EXPECT_TRUE(cache.insert(make_key(2), make_result({{2, 20}})));
    // Key 1 was evicted from the one-slot memory tier but persists.
    const auto hit = cache.lookup(make_key(1));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->front.front_point().def, 1);
    EXPECT_EQ(cache.persistence_stats().store_hits, 1u);
    // Promoted: the repeat lookup is a memory hit, not another store read.
    ASSERT_TRUE(cache.lookup(make_key(1)).has_value());
    EXPECT_EQ(cache.persistence_stats().store_hits, 1u);
  }
  // "Restart": a fresh cache over the same directory serves both.
  PersistentFrontCache restarted(dir.str(), options);
  ASSERT_TRUE(restarted.recovery().has_value());
  EXPECT_EQ(restarted.recovery()->entries_recovered, 2u);
  ASSERT_TRUE(restarted.lookup(make_key(2)).has_value());
  EXPECT_EQ(restarted.lookup(make_key(2))->front.front_point().att, 20);
}

TEST(PersistentCache, DuplicateInsertIsPersistedOnce) {
  const ScratchDir dir("duponce");
  PersistentFrontCache cache(dir.str());
  EXPECT_TRUE(cache.insert(make_key(1), make_result({{1, 2}})));
  EXPECT_FALSE(cache.insert(make_key(1), make_result({{1, 2}})));
  const auto stats = cache.store_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->puts, 1u);
  EXPECT_EQ(cache.persistence_stats().store_writes, 1u);
}

TEST(PersistentCache, ResultMetadataSurvivesTheStore) {
  const ScratchDir dir("metadata");
  AnalysisResult in = make_result({{1, 2}, {3, 1}}, Algorithm::Hybrid);
  in.memo_hits = 12345;
  in.memo_misses = 999;
  {
    PersistentFrontCache cache(dir.str());
    cache.insert(make_key(5), in);
  }
  PersistentFrontCache cache(dir.str());
  const auto out = cache.lookup(make_key(5));
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(bits_equal(in.front, out->front));
  EXPECT_EQ(out->used, Algorithm::Hybrid);
  EXPECT_EQ(out->memo_hits, 12345u);
  EXPECT_EQ(out->memo_misses, 999u);
}

TEST(PersistentCache, WarmRestartServesBitIdenticalFrontsAcrossThreadCounts) {
  // Cold: analyze a mixed fleet once, persisting every result. Restart,
  // then serve the same fleet warm at 1/2/8 threads - every item must be
  // a cache hit and every front bit-identical to the cold run.
  RandomAdtOptions gen;
  gen.target_nodes = 40;
  gen.share_probability = 0.25;
  gen.max_defenses = 10;
  std::vector<AugmentedAdt> fleet;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    fleet.push_back(generate_random_aadt(
        gen, seed, Semiring::min_cost(), Semiring::min_cost()));
  }

  const ScratchDir dir("warm");
  PersistentCacheOptions options;
  options.memory_capacity = 64;
  BatchReport cold;
  {
    PersistentFrontCache cache(dir.str(), options);
    BatchOptions batch;
    batch.cache = &cache;
    batch.n_threads = 2;
    cold = analyze_batch(fleet, {}, batch);
    ASSERT_EQ(cold.failures, 0u);
    ASSERT_EQ(cold.cache_hits, 0u);
    ASSERT_TRUE(cache.persistent());
    EXPECT_EQ(cache.persistence_stats().store_writes, fleet.size());
  }

  for (const unsigned threads : {1u, 2u, 8u}) {
    PersistentFrontCache warm_cache(dir.str(), options);
    ASSERT_TRUE(warm_cache.persistent());
    ASSERT_TRUE(warm_cache.recovery().has_value());
    ASSERT_EQ(warm_cache.recovery()->entries_recovered, fleet.size());

    BatchOptions batch;
    batch.cache = &warm_cache;
    batch.n_threads = threads;
    const BatchReport warm = analyze_batch(fleet, {}, batch);
    ASSERT_EQ(warm.failures, 0u) << threads << " threads";
    EXPECT_EQ(warm.cache_hits, fleet.size()) << threads << " threads";
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      EXPECT_TRUE(warm.items[i].cached) << threads << " threads, item " << i;
      ASSERT_TRUE(
          bits_equal(warm.items[i].result.front, cold.items[i].result.front))
          << threads << " threads, item " << i
          << ": store-warm front differs from cold analysis";
    }
    EXPECT_EQ(warm_cache.persistence_stats().store_hits, fleet.size())
        << threads << " threads";
  }
}

TEST(PersistentCache, RetryBackoffNeverSerializesLookupsOnOtherKeys) {
  // One key hits a transient store error and enters its backoff sleep;
  // a concurrent lookup of a *different* store-resident key must not
  // wait behind it. This pins the with_retry design: the sleep holds no
  // cache lock (the store is reached through a snapshot), so a retry
  // storm on one key cannot serialize the rest of the working set.
  using Clock = std::chrono::steady_clock;
  const ScratchDir dir("backoff");
  FaultFileOps ops(real_file_ops());
  PersistentCacheOptions options;
  options.memory_capacity = 1;  // keys 1 and 2 live only in the store
  options.store.ops = &ops;
  options.retry_backoff_seconds = 1.0;
  options.max_retries = 3;
  PersistentFrontCache cache(dir.str(), options);
  ASSERT_TRUE(cache.insert(make_key(1), make_result({{1, 10}})));
  ASSERT_TRUE(cache.insert(make_key(2), make_result({{2, 20}})));
  ASSERT_TRUE(cache.insert(make_key(3), make_result({{3, 30}})));

  // The next store read (thread A's payload pread for key 1) fails
  // transiently exactly once, sending A into a 1s backoff.
  ops.fail_op(FaultFileOps::Op::Read, /*countdown=*/0, /*transient=*/true);
  std::optional<AnalysisResult> slow;
  std::thread a([&] { slow = cache.lookup(make_key(1)); });

  // retries is incremented *before* the sleep starts, so this poll
  // deterministically catches A inside (or entering) its backoff.
  const Clock::time_point poll_deadline =
      Clock::now() + std::chrono::seconds(10);
  while (cache.persistence_stats().retries == 0) {
    ASSERT_LT(Clock::now(), poll_deadline) << "retry never happened";
    std::this_thread::yield();
  }

  const Clock::time_point start = Clock::now();
  const auto other = cache.lookup(make_key(2));
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(other->front.front_point().att, 20);
  EXPECT_LT(seconds, 0.5)
      << "a lookup of another key waited behind a backoff sleep";

  a.join();
  ASSERT_TRUE(slow.has_value()) << "the retried lookup must still succeed";
  EXPECT_EQ(slow->front.front_point().def, 1);
  EXPECT_FALSE(cache.persistence_stats().degraded);
  EXPECT_GE(cache.persistence_stats().retries, 1u);
}

TEST(PersistentCache, DegradedCacheStillServesBatches) {
  // No store at all (unopenable path): analyze_batch still works and
  // still caches in memory within the process.
  PersistentCacheOptions options;
  options.on_store_error = [](const std::string&) {};
  // A path under a file (not a directory) cannot be created.
  const ScratchDir dir("degraded_batch");
  std::filesystem::create_directories(dir.path());
  testutil::write_file(dir.path() / "blocker", {1});
  PersistentFrontCache cache((dir.path() / "blocker" / "store").string(),
                             options);
  EXPECT_FALSE(cache.persistent());

  RandomAdtOptions gen;
  gen.target_nodes = 25;
  std::vector<AugmentedAdt> fleet;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    fleet.push_back(generate_random_aadt(
        gen, seed, Semiring::min_cost(), Semiring::min_cost()));
  }
  BatchOptions batch;
  batch.cache = &cache;
  batch.n_threads = 2;
  const BatchReport cold = analyze_batch(fleet, {}, batch);
  EXPECT_EQ(cold.failures, 0u);
  const BatchReport warm = analyze_batch(fleet, {}, batch);
  EXPECT_EQ(warm.failures, 0u);
  EXPECT_EQ(warm.cache_hits, fleet.size());
}

}  // namespace
}  // namespace adtp::store
