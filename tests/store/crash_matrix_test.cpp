/// The crash matrix: simulate kill -9 at *every byte offset* of a put
/// workload (and of a compaction) and assert recovery serves exactly a
/// prefix of the attempted entries - every committed put, at most the
/// one in-flight entry beyond it, every payload bit-exact, and nothing
/// else. This is the test that keeps the write-then-publish protocol
/// honest; if a format or ordering change breaks atomicity at any
/// single byte, some budget in the sweep catches it.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "store/shard.hpp"
#include "store_test_util.hpp"
#include "util/fault.hpp"

namespace adtp::store {
namespace {

using testutil::make_key;
using testutil::ScratchDir;

constexpr std::size_t kEntries = 8;

std::vector<std::uint8_t> payload_for(std::size_t i) {
  // Varying sizes (including zero) so crash points land in payloads of
  // every shape; contents keyed to i so a cross-wired offset cannot
  // produce a byte-identical wrong answer.
  std::vector<std::uint8_t> p(i * 17 % 97);
  for (std::size_t j = 0; j < p.size(); ++j) {
    p[j] = static_cast<std::uint8_t>(i * 31 + j * 7);
  }
  return p;
}

/// Runs the workload against \p ops until it crashes (or completes);
/// returns how many puts committed (returned normally).
std::size_t run_workload(const std::string& dir, FileOps& ops) {
  StoreOptions options;
  options.ops = &ops;
  std::size_t committed = 0;
  try {
    FrontStore store(dir, options);
    for (std::size_t i = 0; i < kEntries; ++i) {
      if (!store.put(make_key(i + 1), payload_for(i))) break;
      ++committed;
    }
  } catch (const StoreError&) {
    // The simulated crash: the process is "dead" from here.
  }
  return committed;
}

TEST(CrashMatrix, EveryWriteOffsetRecoversExactlyAPrefix) {
  // Dry run to learn the workload's total write volume.
  std::uint64_t total_bytes = 0;
  {
    const ScratchDir dir("crash_dry");
    FaultFileOps ops(real_file_ops());
    ASSERT_EQ(run_workload(dir.str(), ops), kEntries);
    total_bytes = ops.bytes_written();
  }
  ASSERT_GT(total_bytes, 500u) << "workload too small to be a real sweep";

  // The write that *reaches* the budget still crashes (its bytes land,
  // the ack does not), so full commitment needs one byte of headroom.
  for (std::uint64_t budget = 0; budget <= total_bytes + 1; ++budget) {
    const ScratchDir dir("crash_" + std::to_string(budget));
    FaultFileOps ops(real_file_ops());
    ops.set_write_byte_budget(budget);
    const std::size_t committed = run_workload(dir.str(), ops);
    if (budget > total_bytes) ASSERT_EQ(committed, kEntries);

    // "Reboot": recover with the real file system.
    StoreOptions options;
    FrontStore store(dir.str(), options);
    const std::size_t recovered = store.recovery().entries_recovered;

    // Exactly a prefix: every committed entry, plus at most the single
    // in-flight put whose bytes happened to all reach the file before
    // the crash point.
    ASSERT_GE(recovered, committed) << "budget " << budget;
    ASSERT_LE(recovered, committed + 1) << "budget " << budget;
    ASSERT_LE(recovered, kEntries) << "budget " << budget;
    for (std::size_t i = 0; i < kEntries; ++i) {
      const auto got = store.get(make_key(i + 1));
      if (i < recovered) {
        ASSERT_TRUE(got.has_value()) << "budget " << budget << " entry " << i;
        ASSERT_EQ(*got, payload_for(i))
            << "budget " << budget << " entry " << i;
      } else {
        ASSERT_FALSE(got.has_value())
            << "budget " << budget << " entry " << i
            << ": uncommitted entry served";
      }
    }
    ASSERT_EQ(store.recovery().records_skipped, 0u)
        << "budget " << budget
        << ": crashes damage only the tail, never the middle";

    // The recovered store must accept writes again (the daemon's
    // restart path) - recovery is not read-only archaeology.
    ASSERT_TRUE(store.put(FrontCacheKey{999, 999, 999}, payload_for(3)));
    ASSERT_EQ(store.get(FrontCacheKey{999, 999, 999}), payload_for(3));
  }
}

TEST(CrashMatrix, WriterDeathAtEveryOffsetLeavesFollowerAndPromotionExact) {
  // The multi-process variant of the sweep above: a live follower is
  // attached (real file ops, read-only) while the writer crashes at
  // every byte offset of the put stream. After the death the follower
  // must refresh to exactly a committed prefix - bit-identical, torn
  // tail invisible - and promotion must take over, truncate the torn
  // tail exactly as a restart would, and accept writes.
  constexpr std::size_t kFollowerEntries = 6;
  const auto run_puts = [](FrontStore& store) {
    std::size_t committed = 0;
    try {
      for (std::size_t i = 0; i < kFollowerEntries; ++i) {
        if (!store.put(make_key(i + 1), payload_for(i))) break;
        ++committed;
      }
    } catch (const StoreError&) {
      // The simulated crash: the writer is "dead" from here.
    }
    return committed;
  };

  // Dry run to size the put stream (creation bytes excluded: the
  // budget is armed only after the store and its CURRENT exist, since
  // a follower cannot attach before a writer initialized the dir).
  std::uint64_t put_bytes = 0;
  {
    const ScratchDir dir("fdry");
    FaultFileOps ops(real_file_ops());
    StoreOptions options;
    options.ops = &ops;
    FrontStore writer(dir.str(), options);
    const std::uint64_t before = ops.bytes_written();
    ASSERT_EQ(run_puts(writer), kFollowerEntries);
    put_bytes = ops.bytes_written() - before;
  }
  ASSERT_GT(put_bytes, 300u) << "workload too small to be a real sweep";

  for (std::uint64_t budget = 0; budget <= put_bytes + 1; ++budget) {
    const ScratchDir dir("f" + std::to_string(budget));
    FaultFileOps ops(real_file_ops());
    StoreOptions writer_options;
    writer_options.ops = &ops;
    auto writer = std::make_unique<FrontStore>(dir.str(), writer_options);

    StoreOptions follower_options;
    follower_options.mode = AttachMode::Follower;
    FrontStore follower(dir.str(), follower_options);

    ops.set_write_byte_budget(budget);
    const std::size_t committed = run_puts(*writer);
    if (budget > put_bytes) ASSERT_EQ(committed, kFollowerEntries);

    // The writer is dead but its corpse still holds the lease: the
    // follower already sees the committed prefix...
    follower.refresh();
    const std::size_t seen = follower.stats().entries;
    ASSERT_GE(seen, committed) << "budget " << budget;
    ASSERT_LE(seen, committed + 1) << "budget " << budget;
    for (std::size_t i = 0; i < kFollowerEntries; ++i) {
      const auto got = follower.get(make_key(i + 1));
      if (i < seen) {
        ASSERT_TRUE(got.has_value()) << "budget " << budget << " entry " << i;
        ASSERT_EQ(*got, payload_for(i)) << "budget " << budget;
      } else {
        ASSERT_FALSE(got.has_value())
            << "budget " << budget << " entry " << i
            << ": follower served an uncommitted entry";
      }
    }

    // ...and once the lease evaporates (kill -9 closes the fd), the
    // follower promotes onto exactly that committed prefix.
    writer.reset();
    follower.promote();
    const std::size_t promoted = follower.stats().entries;
    ASSERT_GE(promoted, committed) << "budget " << budget;
    ASSERT_LE(promoted, committed + 1) << "budget " << budget;
    for (std::size_t i = 0; i < promoted; ++i) {
      const auto got = follower.get(make_key(i + 1));
      ASSERT_TRUE(got.has_value()) << "budget " << budget << " entry " << i;
      ASSERT_EQ(*got, payload_for(i)) << "budget " << budget;
    }
    // The promoted follower is a full writer over a clean log.
    ASSERT_TRUE(follower.put(FrontCacheKey{999, 999, 999}, payload_for(3)))
        << "budget " << budget;
    ASSERT_EQ(follower.get(FrontCacheKey{999, 999, 999}), payload_for(3));
  }
}

TEST(CrashMatrix, EveryCompactionCrashPointKeepsTheLiveSetServable) {
  // Live set at compaction time: the last 4 of 12 puts (max_entries=4).
  const auto build = [](const std::string& dir, FileOps& ops) {
    StoreOptions options;
    options.ops = &ops;
    options.max_entries = 4;
    options.compact_dead_fraction = 0;  // compaction only when we say so
    auto store = std::make_unique<FrontStore>(dir, options);
    for (std::size_t i = 0; i < 12; ++i) {
      EXPECT_TRUE(store->put(make_key(i + 1), payload_for(i)));
    }
    return store;
  };

  std::uint64_t compact_bytes = 0;
  {
    const ScratchDir dir("cdry");
    FaultFileOps ops(real_file_ops());
    auto store = build(dir.str(), ops);
    const std::uint64_t before = ops.bytes_written();
    store->compact(/*force=*/true);
    compact_bytes = ops.bytes_written() - before;
  }
  ASSERT_GT(compact_bytes, 0u);

  for (std::uint64_t budget = 0; budget < compact_bytes; ++budget) {
    const ScratchDir dir("c" + std::to_string(budget));
    FaultFileOps ops(real_file_ops());
    auto store = build(dir.str(), ops);
    ops.set_write_byte_budget(budget);
    ASSERT_THROW(store->compact(/*force=*/true), StoreError)
        << "budget " << budget;
    store.reset();  // "kill -9"
    ops.reset_faults();

    // A crash anywhere before the final CURRENT publish leaves the old,
    // complete generation in charge: every entry live at compaction
    // time must still be served bit-exact after reboot.
    FrontStore reopened(dir.str());
    EXPECT_FALSE(reopened.recovery().stale_generation) << "budget " << budget;
    for (std::size_t i = 8; i < 12; ++i) {
      const auto got = reopened.get(make_key(i + 1));
      ASSERT_TRUE(got.has_value()) << "budget " << budget << " entry " << i;
      ASSERT_EQ(*got, payload_for(i)) << "budget " << budget;
    }
  }
}

}  // namespace
}  // namespace adtp::store
