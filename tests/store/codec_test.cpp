/// The codec's contract: every well-formed value round-trips to the
/// same bits (doubles by IEEE-754 pattern - infinities, negative zero
/// and subnormals included), and nothing else decodes - truncations,
/// stale versions, lying counts and trailing bytes all throw CodecError
/// rather than produce a plausible-but-wrong front.

#include <gtest/gtest.h>

#include <bit>
#include <limits>
#include <random>
#include <vector>

#include "store/codec.hpp"
#include "store_test_util.hpp"

namespace adtp::store {
namespace {

using testutil::bits_equal;
using testutil::make_result;

constexpr double kInf = std::numeric_limits<double>::infinity();

AnalysisResult roundtrip(const AnalysisResult& in) {
  const std::vector<std::uint8_t> bytes = encode_result(in);
  return decode_result(bytes.data(), bytes.size());
}

TEST(Codec, RoundTripsAnOrdinaryResult) {
  const AnalysisResult in =
      make_result({{0, 30}, {5, 12.5}, {9, 3.25}}, Algorithm::BddBu);
  const AnalysisResult out = roundtrip(in);
  EXPECT_TRUE(bits_equal(in.front, out.front));
  EXPECT_EQ(out.used, Algorithm::BddBu);
  EXPECT_EQ(out.seconds, in.seconds);
  EXPECT_EQ(out.memo_hits, in.memo_hits);
  EXPECT_EQ(out.memo_misses, in.memo_misses);
}

TEST(Codec, RoundTripsEmptyFront) {
  const AnalysisResult out = roundtrip(make_result({}));
  EXPECT_EQ(out.front.size(), 0u);
}

TEST(Codec, RoundTripsSpecialDoublesBitExactly) {
  // The attacker response to an undefended system is routinely +inf, and
  // staircase endpoints can be -inf under max-style defender domains;
  // -0.0 and subnormals guard against any sneaky text or normalization
  // path in the codec.
  const AnalysisResult in = make_result({
      {-kInf, kInf},
      {-0.0, std::numeric_limits<double>::denorm_min()},
      {std::numeric_limits<double>::min(), -0.0},
      {1e308, -kInf},
  });
  const AnalysisResult out = roundtrip(in);
  ASSERT_EQ(out.front.size(), in.front.size());
  EXPECT_TRUE(bits_equal(in.front, out.front));
  // Explicitly: -0.0 stayed -0.0 (operator== would accept +0.0).
  EXPECT_EQ(std::bit_cast<std::uint64_t>(out.front.points()[1].def),
            std::bit_cast<std::uint64_t>(-0.0));
}

TEST(Codec, RandomFrontsRoundTripBitExactly) {
  std::mt19937_64 rng(20250808);
  std::uniform_real_distribution<double> value(-1e6, 1e6);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = rng() % 40;
    std::vector<ValuePoint> points;
    double def = value(rng);
    double att = value(rng);
    for (std::size_t i = 0; i < n; ++i) {
      // Keep the staircase shape (def up, att down) so from_staircase's
      // precondition holds; exact values are irrelevant to the codec.
      def += std::abs(value(rng));
      att -= std::abs(value(rng));
      points.push_back({def, att});
    }
    AnalysisResult in;
    in.front = Front::from_staircase(std::move(points));
    in.used = static_cast<Algorithm>(rng() % 5);
    in.seconds = value(rng);
    in.memo_hits = rng();
    in.memo_misses = rng();
    const AnalysisResult out = roundtrip(in);
    ASSERT_TRUE(bits_equal(in.front, out.front)) << "iter " << iter;
    EXPECT_EQ(out.used, in.used);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.seconds),
              std::bit_cast<std::uint64_t>(in.seconds));
    EXPECT_EQ(out.memo_hits, in.memo_hits);
    EXPECT_EQ(out.memo_misses, in.memo_misses);
  }
}

TEST(Codec, EveryStrictPrefixFailsToDecode) {
  const std::vector<std::uint8_t> bytes =
      encode_result(make_result({{1, 9}, {2, 8}, {3, 7}}));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)decode_result(bytes.data(), len), CodecError)
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(Codec, TrailingBytesFailToDecode) {
  std::vector<std::uint8_t> bytes = encode_result(make_result({{1, 2}}));
  bytes.push_back(0);
  EXPECT_THROW((void)decode_result(bytes.data(), bytes.size()), CodecError);
}

TEST(Codec, UnknownVersionFailsToDecode) {
  std::vector<std::uint8_t> bytes = encode_result(make_result({{1, 2}}));
  bytes[0] = static_cast<std::uint8_t>(kCodecVersion + 1);
  EXPECT_THROW((void)decode_result(bytes.data(), bytes.size()), CodecError);
}

TEST(Codec, UnknownAlgorithmTagFailsToDecode) {
  std::vector<std::uint8_t> bytes = encode_result(make_result({{1, 2}}));
  bytes[2] = 200;  // the algorithm byte follows the u16 version
  EXPECT_THROW((void)decode_result(bytes.data(), bytes.size()), CodecError);
}

TEST(Codec, LyingPointCountFailsToDecode) {
  // Inflate the point count without supplying the points: the decoder
  // must reject before trusting (and allocating for) the count.
  AnalysisResult in = make_result({{1, 2}});
  std::vector<std::uint8_t> bytes = encode_result(in);
  const std::size_t count_at = 2 + 1 + 1 + 8 + 8 + 8;
  bytes[count_at] = 0xff;
  bytes[count_at + 1] = 0xff;
  bytes[count_at + 2] = 0xff;
  bytes[count_at + 3] = 0x7f;
  EXPECT_THROW((void)decode_result(bytes.data(), bytes.size()), CodecError);
}

TEST(Codec, WitnessFrontRoundTripsVectorsAndBits) {
  std::vector<WitnessPoint> points;
  WitnessPoint a;
  a.def = 0;
  a.att = kInf;
  a.defense = BitVec(10);
  a.attack = BitVec(17);
  WitnessPoint b;
  b.def = 4.5;
  b.att = 12;
  b.defense = BitVec(10);
  b.defense.set(0);
  b.defense.set(9);
  b.attack = BitVec(17);
  b.attack.set(16);
  points.push_back(std::move(a));
  points.push_back(std::move(b));
  WitnessFront in = WitnessFront::from_staircase(std::move(points));

  std::vector<std::uint8_t> bytes;
  encode_witness_front(in, bytes);
  const WitnessFront out = decode_witness_front(bytes.data(), bytes.size());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.points()[0].att, kInf);
  EXPECT_EQ(out.points()[0].defense.size(), 10u);
  EXPECT_EQ(out.points()[0].defense.set_bits().size(), 0u);
  EXPECT_EQ(out.points()[1].defense.set_bits(),
            (std::vector<std::size_t>{0, 9}));
  EXPECT_EQ(out.points()[1].attack.set_bits(),
            (std::vector<std::size_t>{16}));
  EXPECT_EQ(out.points()[1].attack.size(), 17u);
}

TEST(Codec, WitnessFrontPrefixesFailToDecode) {
  std::vector<WitnessPoint> points;
  WitnessPoint p;
  p.def = 1;
  p.att = 2;
  p.defense = BitVec(4);
  p.defense.set(2);
  p.attack = BitVec(4);
  points.push_back(std::move(p));
  std::vector<std::uint8_t> bytes;
  encode_witness_front(WitnessFront::from_staircase(std::move(points)), bytes);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)decode_witness_front(bytes.data(), len), CodecError);
  }
}

TEST(Codec, CorruptBitVectorFailsToDecode) {
  std::vector<WitnessPoint> points;
  WitnessPoint p;
  p.def = 1;
  p.att = 2;
  p.defense = BitVec(4);
  p.defense.set(3);
  p.attack = BitVec(4);
  points.push_back(std::move(p));
  std::vector<std::uint8_t> bytes;
  encode_witness_front(WitnessFront::from_staircase(std::move(points)), bytes);
  // The defense bitvec of point 0 sits right after version + count +
  // two doubles; corrupt its set-bit index to exceed its size.
  const std::size_t bit_index_at = 2 + 4 + 8 + 8 + 4 + 4;
  bytes[bit_index_at] = 200;
  EXPECT_THROW((void)decode_witness_front(bytes.data(), bytes.size()),
               CodecError);
}

}  // namespace
}  // namespace adtp::store
