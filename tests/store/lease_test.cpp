/// The multi-process sharing contract of one store directory: exactly
/// one writer (the flock lease on <dir>/LOCK), any number of read-only
/// followers, follower refresh across appends and compactions, and
/// promotion when the writer goes away - contract 6 of
/// docs/CONTRACTS.md. Everything here runs in one process: flock is
/// per open file description, so two FrontStore instances in one test
/// conflict exactly as two processes would.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "store/persistent_cache.hpp"
#include "store/shard.hpp"
#include "store_test_util.hpp"
#include "util/fault.hpp"

namespace adtp::store {
namespace {

using testutil::make_key;
using testutil::make_result;
using testutil::ScratchDir;

std::vector<std::uint8_t> payload_of(char fill, std::size_t n) {
  return std::vector<std::uint8_t>(n, static_cast<std::uint8_t>(fill));
}

StoreOptions follower_options() {
  StoreOptions options;
  options.mode = AttachMode::Follower;
  return options;
}

// ---- the writer lease ------------------------------------------------------

TEST(Lease, SecondWriterOpenFailsWithAClearTransientError) {
  const ScratchDir dir("double_open");
  FrontStore first(dir.str());
  ASSERT_TRUE(first.put(make_key(1), payload_of('a', 16)));
  try {
    FrontStore second(dir.str());
    FAIL() << "two live writers on one directory";
  } catch (const StoreError& e) {
    // Transient: the holder may exit any moment, so waiting is sane.
    EXPECT_TRUE(e.transient());
    EXPECT_NE(std::string(e.what()).find("locked"), std::string::npos)
        << "the error must say the store is locked, got: " << e.what();
  }
  // The failed open must not have damaged the holder.
  ASSERT_TRUE(first.put(make_key(2), payload_of('b', 16)));
  EXPECT_EQ(first.get(make_key(1)), payload_of('a', 16));
}

TEST(Lease, ReleasedOnCloseSoASuccessorCanOpen) {
  const ScratchDir dir("release");
  {
    FrontStore store(dir.str());
    ASSERT_TRUE(store.put(make_key(1), payload_of('a', 8)));
  }
  FrontStore successor(dir.str());
  EXPECT_EQ(successor.get(make_key(1)), payload_of('a', 8));
}

TEST(Lease, SurvivesCompaction) {
  // compact() closes and reopens the shard files; the lease must not
  // lapse in between (a second writer sneaking in mid-compaction would
  // be the exact interleaving the lease exists to prevent).
  const ScratchDir dir("compact_hold");
  StoreOptions options;
  options.max_entries = 2;
  options.compact_dead_fraction = 0;
  FrontStore store(dir.str(), options);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(store.put(make_key(i), payload_of('a' + i, 32)));
  }
  store.compact(/*force=*/true);
  EXPECT_THROW(FrontStore(dir.str()), StoreError)
      << "lease lapsed across compaction";
}

// ---- followers -------------------------------------------------------------

TEST(Follower, AttachServesTheCommittedEntriesBitExact) {
  const ScratchDir dir("attach");
  FrontStore writer(dir.str());
  ASSERT_TRUE(writer.put(make_key(1), payload_of('a', 64)));
  ASSERT_TRUE(writer.put(make_key(2), payload_of('b', 0)));

  FrontStore follower(dir.str(), follower_options());
  EXPECT_TRUE(follower.follower());
  EXPECT_FALSE(writer.follower());
  EXPECT_EQ(follower.recovery().entries_recovered, 2u);
  EXPECT_EQ(follower.get(make_key(1)), payload_of('a', 64));
  EXPECT_EQ(follower.get(make_key(2)), payload_of('b', 0));
  EXPECT_FALSE(follower.get(make_key(3)).has_value());
}

TEST(Follower, IsReadOnlyUntilPromoted) {
  const ScratchDir dir("readonly");
  FrontStore writer(dir.str());
  ASSERT_TRUE(writer.put(make_key(1), payload_of('a', 8)));
  FrontStore follower(dir.str(), follower_options());
  EXPECT_THROW(follower.put(make_key(9), payload_of('z', 8)), StoreError);
  EXPECT_THROW(follower.compact(/*force=*/true), StoreError);
  // And the rejected put is invisible everywhere.
  EXPECT_FALSE(writer.get(make_key(9)).has_value());
}

TEST(Follower, AttachToAnUninitializedDirIsTransient) {
  const ScratchDir dir("no_current");
  try {
    FrontStore follower(dir.str(), follower_options());
    FAIL() << "attached to a store no writer ever initialized";
  } catch (const StoreError& e) {
    EXPECT_TRUE(e.transient()) << "the writer may simply not have started "
                                  "yet; the caller should retry";
  }
}

TEST(Follower, RefreshPicksUpTheWritersAppends) {
  const ScratchDir dir("refresh");
  FrontStore writer(dir.str());
  ASSERT_TRUE(writer.put(make_key(1), payload_of('a', 16)));
  FrontStore follower(dir.str(), follower_options());
  ASSERT_EQ(follower.stats().entries, 1u);

  ASSERT_TRUE(writer.put(make_key(2), payload_of('b', 48)));
  ASSERT_TRUE(writer.put(make_key(3), payload_of('c', 5)));
  const RefreshReport report = follower.refresh();
  EXPECT_EQ(report.new_entries, 2u);
  EXPECT_FALSE(report.generation_changed);
  EXPECT_EQ(follower.get(make_key(2)), payload_of('b', 48));
  EXPECT_EQ(follower.get(make_key(3)), payload_of('c', 5));

  // Idle refresh: nothing new, nothing lost.
  const RefreshReport idle = follower.refresh();
  EXPECT_EQ(idle.new_entries, 0u);
  EXPECT_EQ(follower.stats().entries, 3u);
}

TEST(Follower, RefreshOnAWriterIsANoOp) {
  const ScratchDir dir("writer_refresh");
  FrontStore writer(dir.str());
  const RefreshReport report = writer.refresh();
  EXPECT_EQ(report.new_entries, 0u);
  EXPECT_FALSE(report.generation_changed);
}

TEST(Follower, RefreshFollowsACompactionToTheNewGeneration) {
  const ScratchDir dir("follow_compact");
  StoreOptions writer_options;
  writer_options.max_entries = 2;
  writer_options.compact_dead_fraction = 0;
  FrontStore writer(dir.str(), writer_options);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(writer.put(make_key(i), payload_of('a' + i, 32)));
  }
  FrontStore follower(dir.str(), follower_options());
  const std::uint64_t old_gen = follower.generation();

  writer.compact(/*force=*/true);
  const RefreshReport report = follower.refresh();
  EXPECT_TRUE(report.generation_changed);
  EXPECT_NE(follower.generation(), old_gen);
  // The live set (last 2 of 5) carried over bit-exact.
  EXPECT_EQ(follower.stats().entries, 2u);
  EXPECT_EQ(follower.get(make_key(4)), payload_of('a' + 4, 32));
  EXPECT_EQ(follower.get(make_key(5)), payload_of('a' + 5, 32));
  EXPECT_FALSE(follower.get(make_key(1)).has_value());
}

TEST(Follower, ManyFollowersShareOneWriter) {
  const ScratchDir dir("many");
  FrontStore writer(dir.str());
  ASSERT_TRUE(writer.put(make_key(1), payload_of('a', 24)));
  FrontStore f1(dir.str(), follower_options());
  FrontStore f2(dir.str(), follower_options());
  FrontStore f3(dir.str(), follower_options());
  for (FrontStore* f : {&f1, &f2, &f3}) {
    EXPECT_EQ(f->get(make_key(1)), payload_of('a', 24));
  }
}

// ---- promotion -------------------------------------------------------------

TEST(Promotion, FailsTransientlyWhileTheWriterLives) {
  const ScratchDir dir("premature");
  FrontStore writer(dir.str());
  ASSERT_TRUE(writer.put(make_key(1), payload_of('a', 8)));
  FrontStore follower(dir.str(), follower_options());
  try {
    follower.promote();
    FAIL() << "two writers after a premature promotion";
  } catch (const StoreError& e) {
    EXPECT_TRUE(e.transient()) << "poll again later is the right reaction";
  }
  // The follower keeps serving reads after the failed attempt.
  EXPECT_TRUE(follower.follower());
  EXPECT_EQ(follower.get(make_key(1)), payload_of('a', 8));
}

TEST(Promotion, TakesOverAfterTheWriterCloses) {
  const ScratchDir dir("takeover");
  auto writer = std::make_unique<FrontStore>(dir.str());
  ASSERT_TRUE(writer->put(make_key(1), payload_of('a', 40)));
  FrontStore follower(dir.str(), follower_options());
  writer.reset();  // the lease evaporates with the holder

  follower.promote();
  EXPECT_FALSE(follower.follower());
  EXPECT_EQ(follower.get(make_key(1)), payload_of('a', 40));
  // Full writer powers: append and compact.
  ASSERT_TRUE(follower.put(make_key(2), payload_of('b', 8)));
  follower.compact(/*force=*/true);
  EXPECT_EQ(follower.get(make_key(2)), payload_of('b', 8));
  // And the lease is genuinely held: a new writer must wait.
  EXPECT_THROW(FrontStore(dir.str()), StoreError);
}

TEST(Promotion, IsIdempotentOnAWriter) {
  const ScratchDir dir("idem");
  FrontStore writer(dir.str());
  writer.promote();  // no-op
  ASSERT_TRUE(writer.put(make_key(1), payload_of('a', 8)));
}

TEST(Promotion, SurvivesThePromotedStoreAppendingThenRestarting) {
  const ScratchDir dir("lineage");
  {
    auto writer = std::make_unique<FrontStore>(dir.str());
    ASSERT_TRUE(writer->put(make_key(1), payload_of('a', 12)));
    FrontStore follower(dir.str(), follower_options());
    writer.reset();
    follower.promote();
    ASSERT_TRUE(follower.put(make_key(2), payload_of('b', 12)));
  }
  // A later clean restart sees the whole lineage: pre-death appends and
  // post-promotion appends in one consistent store.
  FrontStore restarted(dir.str());
  EXPECT_EQ(restarted.recovery().entries_recovered, 2u);
  EXPECT_EQ(restarted.get(make_key(1)), payload_of('a', 12));
  EXPECT_EQ(restarted.get(make_key(2)), payload_of('b', 12));
}

// ---- the lock primitive through the fault seam -----------------------------

TEST(Lease, LockFaultSurfacesAsStoreError) {
  const ScratchDir dir("lock_fault");
  FaultFileOps ops(real_file_ops());
  ops.fail_op(FaultFileOps::Op::Lock, /*countdown=*/0, /*transient=*/true);
  StoreOptions options;
  options.ops = &ops;
  try {
    FrontStore store(dir.str(), options);
    FAIL() << "injected lock fault did not surface";
  } catch (const StoreError& e) {
    EXPECT_TRUE(e.transient());
  }
  // Disarmed: the next open takes the lease normally.
  FrontStore store(dir.str(), options);
  ASSERT_TRUE(store.put(make_key(1), payload_of('a', 8)));
}

// ---- the cache layer over a follower store ---------------------------------

TEST(FollowerCache, ServesTheWritersFrontsAndStaysMemoryOnlyOnInsert) {
  const ScratchDir dir("cache");
  const AnalysisResult shared = make_result({{1, 10}, {3, 4}});
  PersistentCacheOptions writer_options;
  PersistentFrontCache writer(dir.str(), writer_options);
  ASSERT_TRUE(writer.insert(make_key(1), shared));
  ASSERT_EQ(writer.persistence_stats().store_writes, 1u);

  PersistentCacheOptions options;
  options.follower = true;
  PersistentFrontCache cache(dir.str(), options);
  ASSERT_TRUE(cache.persistent());
  ASSERT_TRUE(cache.follower());

  const auto hit = cache.lookup(make_key(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->front.bit_identical_values(shared.front));
  EXPECT_EQ(cache.persistence_stats().store_hits, 1u);

  // A fresh insert is served from memory but never appended, and the
  // cache does not degrade over it.
  ASSERT_TRUE(cache.insert(make_key(2), make_result({{2, 7}})));
  EXPECT_EQ(cache.persistence_stats().store_writes, 0u);
  EXPECT_FALSE(cache.persistence_stats().degraded);
  EXPECT_TRUE(cache.lookup(make_key(2)).has_value());
  // ...and the writer never sees it.
  EXPECT_FALSE(writer.lookup(make_key(2)).has_value());
}

TEST(FollowerCache, RefreshesAndPromotesThroughTheCacheSurface) {
  const ScratchDir dir("cache_promote");
  const AnalysisResult first = make_result({{1, 10}});
  const AnalysisResult second = make_result({{2, 20}});
  auto writer = std::make_unique<PersistentFrontCache>(
      dir.str(), PersistentCacheOptions{});
  ASSERT_TRUE(writer->insert(make_key(1), first));

  PersistentCacheOptions options;
  options.follower = true;
  options.memory_capacity = 1;  // force store lookups, not memory luck
  PersistentFrontCache cache(dir.str(), options);

  ASSERT_TRUE(writer->insert(make_key(2), second));
  const auto report = cache.refresh();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->new_entries, 1u);
  ASSERT_TRUE(cache.lookup(make_key(2)).has_value());

  // Promotion fails politely while the writer lives...
  EXPECT_FALSE(cache.promote());
  EXPECT_FALSE(cache.persistence_stats().degraded)
      << "a failed promotion must not degrade a healthy follower";
  // ...and succeeds once it is gone; inserts persist from then on.
  writer.reset();
  EXPECT_TRUE(cache.promote());
  EXPECT_FALSE(cache.follower());
  ASSERT_TRUE(cache.insert(make_key(3), make_result({{3, 30}})));
  EXPECT_EQ(cache.persistence_stats().store_writes, 1u);
}

TEST(FollowerCache, OpenGracePeriodRidesOutTheWriterStartupRace) {
  // A follower daemon started alongside its writer attaches before
  // CURRENT exists. That open failure is transient, and with a grace
  // period configured the follower must wait the writer in rather
  // than degrading to memory-only for its whole lifetime.
  const ScratchDir dir("startup_race");
  PersistentCacheOptions options;
  options.follower = true;
  options.open_retry_seconds = 10.0;
  std::unique_ptr<PersistentFrontCache> follower;
  std::thread attacher([&] {
    follower = std::make_unique<PersistentFrontCache>(dir.str(), options);
  });

  // The "writer daemon" comes up a beat later and publishes a front.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  PersistentFrontCache writer(dir.str(), PersistentCacheOptions{});
  ASSERT_TRUE(writer.insert(make_key(1), make_result({{1, 10}})));

  attacher.join();
  ASSERT_TRUE(follower->persistent())
      << "the grace period must cover a writer that starts moments later";
  EXPECT_TRUE(follower->follower());
  EXPECT_FALSE(follower->persistence_stats().degraded);
  (void)follower->refresh();
  EXPECT_TRUE(follower->lookup(make_key(1)).has_value());

  // Without a grace period the pre-fleet behavior is unchanged: a
  // transient open failure degrades on the spot.
  const ScratchDir empty("no_grace");
  PersistentCacheOptions no_grace;
  no_grace.follower = true;
  PersistentFrontCache degraded(empty.str(), no_grace);
  EXPECT_FALSE(degraded.persistent());
  EXPECT_TRUE(degraded.persistence_stats().degraded);
}

}  // namespace
}  // namespace adtp::store
