/// The fault-injection seam and what the layers above do with it: the
/// store stays consistent (and throws) on injected failures, and the
/// PersistentFrontCache retries transient errors, then degrades to
/// memory-only - analysis never fails because persistence did.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "store/persistent_cache.hpp"
#include "store/shard.hpp"
#include "store_test_util.hpp"
#include "util/fault.hpp"

namespace adtp::store {
namespace {

using testutil::make_key;
using testutil::make_result;
using testutil::ScratchDir;

using Op = FaultFileOps::Op;

std::vector<std::uint8_t> payload_of(char fill, std::size_t n) {
  return std::vector<std::uint8_t>(n, static_cast<std::uint8_t>(fill));
}

// ---- the wrapper itself ----------------------------------------------------

TEST(FaultFileOps, ShortWritesAreResumedByWriteAll) {
  const ScratchDir dir("shortw");
  FaultFileOps ops(real_file_ops());
  ops.make_dir(dir.str());
  const int fd = ops.open_file(dir.str() + "/f", FileOps::OpenMode::Truncate);
  ops.short_write(0);  // the very next write_some is cut in half
  const std::string body = "0123456789abcdef";
  ops.write_all(fd, body.data(), body.size());
  std::string back(body.size(), '\0');
  ASSERT_TRUE(ops.pread_all(fd, back.data(), back.size(), 0));
  EXPECT_EQ(back, body) << "write_all must resume after a short write";
  ops.close_fd(fd);
}

TEST(FaultFileOps, FailOpFiresAtTheArmedCountdownThenDisarms) {
  const ScratchDir dir("failop");
  FaultFileOps ops(real_file_ops());
  ops.make_dir(dir.str());
  const int fd = ops.open_file(dir.str() + "/f", FileOps::OpenMode::Truncate);
  ops.fail_op(Op::Write, /*countdown=*/1, /*transient=*/true);
  char b = 'x';
  ops.write_all(fd, &b, 1);  // countdown ticks
  try {
    ops.write_all(fd, &b, 1);
    FAIL() << "armed write fault did not fire";
  } catch (const IoError& e) {
    EXPECT_TRUE(e.transient());
  }
  ops.write_all(fd, &b, 1);  // disarmed again
  ops.close_fd(fd);
}

TEST(FaultFileOps, ByteBudgetCrashPersistsExactlyThePrefix) {
  const ScratchDir dir("budget");
  FaultFileOps ops(real_file_ops());
  ops.make_dir(dir.str());
  const int fd = ops.open_file(dir.str() + "/f", FileOps::OpenMode::Truncate);
  ops.set_write_byte_budget(5);
  const std::string body = "0123456789";
  EXPECT_THROW(ops.write_all(fd, body.data(), body.size()), IoError);
  EXPECT_TRUE(ops.crashed());
  EXPECT_THROW((void)ops.file_size(fd), IoError) << "dead after the crash";
  ops.close_fd(fd);

  FileOps& real = real_file_ops();
  const int check = real.open_file(dir.str() + "/f", FileOps::OpenMode::Read);
  EXPECT_EQ(real.file_size(check), 5u);
  std::string prefix(5, '\0');
  ASSERT_TRUE(real.pread_all(check, prefix.data(), 5, 0));
  EXPECT_EQ(prefix, "01234");
  real.close_fd(check);
}

// ---- the store under injected faults ---------------------------------------

TEST(FaultFileOps, TryLockFileIsExclusiveAndReleasedByClose) {
  const ScratchDir dir("lockfile");
  FaultFileOps ops(real_file_ops());
  ops.make_dir(dir.str());
  const std::string path = dir.str() + "/LOCK";
  const int fd = ops.try_lock_file(path);
  ASSERT_GE(fd, 0);
  // A second open description (what another process would hold) is
  // refused without blocking and without throwing.
  EXPECT_EQ(ops.try_lock_file(path), -1);
  ops.close_fd(fd);
  // close releases the lease; the next holder takes it.
  const int again = ops.try_lock_file(path);
  EXPECT_GE(again, 0);
  ops.close_fd(again);
}

TEST(FaultFileOps, LockFaultFiresOnItsOwnOpClassOnly) {
  const ScratchDir dir("lockop");
  FaultFileOps ops(real_file_ops());
  ops.make_dir(dir.str());
  ops.fail_op(Op::Lock, /*countdown=*/0, /*transient=*/true);
  // Open/write/read classes are untouched by an armed Lock fault...
  const int fd = ops.open_file(dir.str() + "/f", FileOps::OpenMode::Truncate);
  char b = 'x';
  ops.write_all(fd, &b, 1);
  ops.close_fd(fd);
  // ...the next lock attempt eats it (transient flag intact)...
  try {
    (void)ops.try_lock_file(dir.str() + "/LOCK");
    FAIL() << "armed lock fault did not fire";
  } catch (const IoError& e) {
    EXPECT_TRUE(e.transient());
  }
  // ...and the disarmed wrapper locks normally.
  const int lock = ops.try_lock_file(dir.str() + "/LOCK");
  EXPECT_GE(lock, 0);
  ops.close_fd(lock);
}

TEST(FrontStoreFault, FailedPutThrowsAndLeavesTheStoreConsistent) {
  const ScratchDir dir("putfail");
  FaultFileOps ops(real_file_ops());
  StoreOptions options;
  options.ops = &ops;
  FrontStore store(dir.str(), options);
  ASSERT_TRUE(store.put(make_key(1), payload_of('a', 32)));

  ops.fail_op(Op::Write, 0);
  EXPECT_THROW((void)store.put(make_key(2), payload_of('b', 32)), StoreError);
  // The failed entry is invisible; the survivor still reads clean.
  EXPECT_FALSE(store.contains(make_key(2)));
  EXPECT_EQ(store.get(make_key(1)), payload_of('a', 32));
  // And the put can simply be retried now that the fault cleared.
  EXPECT_TRUE(store.put(make_key(2), payload_of('b', 32)));
  EXPECT_EQ(store.get(make_key(2)), payload_of('b', 32));
}

TEST(FrontStoreFault, TransientFlagPropagatesThroughStoreError) {
  const ScratchDir dir("transient");
  FaultFileOps ops(real_file_ops());
  StoreOptions options;
  options.ops = &ops;
  FrontStore store(dir.str(), options);
  ops.fail_op(Op::Write, 0, /*transient=*/true);
  try {
    (void)store.put(make_key(1), payload_of('a', 8));
    FAIL() << "injected fault did not surface";
  } catch (const StoreError& e) {
    EXPECT_TRUE(e.transient());
  }
}

TEST(FrontStoreFault, FailedCompactionLeavesTheOldGenerationServing) {
  const ScratchDir dir("compactfail");
  FaultFileOps ops(real_file_ops());
  StoreOptions options;
  options.ops = &ops;
  options.max_entries = 2;
  options.compact_dead_fraction = 0;
  FrontStore store(dir.str(), options);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(store.put(make_key(i), payload_of('a', 16)));
  }
  // Fail the rename that would publish the new CURRENT.
  ops.fail_op(Op::Rename, 0);
  EXPECT_THROW(store.compact(), StoreError);
  EXPECT_EQ(store.generation(), 1u);
  EXPECT_EQ(store.get(make_key(3)), payload_of('a', 16));
  EXPECT_EQ(store.get(make_key(4)), payload_of('a', 16));
  // With the fault gone the compaction goes through.
  store.compact();
  EXPECT_EQ(store.generation(), 2u);
  EXPECT_EQ(store.get(make_key(4)), payload_of('a', 16));
}

// ---- graceful degradation in the cache layer -------------------------------

TEST(PersistentCacheFault, TransientPutErrorsAreRetriedToSuccess) {
  const ScratchDir dir("retry");
  FaultFileOps ops(real_file_ops());
  PersistentCacheOptions options;
  options.store.ops = &ops;
  options.retry_backoff_seconds = 0;  // no need to sleep in tests
  PersistentFrontCache cache(dir.str(), options);
  ASSERT_TRUE(cache.persistent());

  ops.fail_op(Op::Write, 0, /*transient=*/true, /*times=*/2);
  EXPECT_TRUE(cache.insert(make_key(1), make_result({{1, 2}})));
  const PersistentCacheStats stats = cache.persistence_stats();
  EXPECT_TRUE(cache.persistent()) << "transient errors must not degrade";
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.store_errors, 2u);
  EXPECT_EQ(stats.store_writes, 1u);
  EXPECT_FALSE(stats.degraded);
}

TEST(PersistentCacheFault, PermanentErrorDegradesToMemoryOnly) {
  const ScratchDir dir("degrade");
  FaultFileOps ops(real_file_ops());
  PersistentCacheOptions options;
  options.store.ops = &ops;
  std::vector<std::string> log;
  options.on_store_error = [&](const std::string& what) {
    log.push_back(what);
  };
  PersistentFrontCache cache(dir.str(), options);
  ASSERT_TRUE(cache.persistent());

  ops.fail_op(Op::Write, 0, /*transient=*/false);
  EXPECT_TRUE(cache.insert(make_key(1), make_result({{1, 2}})))
      << "the memory insert must succeed regardless of the store";
  EXPECT_FALSE(cache.persistent());
  EXPECT_TRUE(cache.persistence_stats().degraded);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_NE(log[0].find("degraded to memory-only"), std::string::npos);

  // Memory-only from here on: lookups and inserts keep working.
  EXPECT_TRUE(cache.lookup(make_key(1)).has_value());
  EXPECT_TRUE(cache.insert(make_key(2), make_result({{3, 4}})));
  EXPECT_TRUE(cache.lookup(make_key(2)).has_value());
}

TEST(PersistentCacheFault, ExhaustedRetriesDegrade) {
  const ScratchDir dir("exhaust");
  FaultFileOps ops(real_file_ops());
  PersistentCacheOptions options;
  options.store.ops = &ops;
  options.max_retries = 2;
  options.retry_backoff_seconds = 0;
  PersistentFrontCache cache(dir.str(), options);
  ops.fail_op(Op::Write, 0, /*transient=*/true, /*times=*/10);
  EXPECT_TRUE(cache.insert(make_key(1), make_result({{1, 2}})));
  EXPECT_FALSE(cache.persistent());
  EXPECT_EQ(cache.persistence_stats().retries, 2u);
}

TEST(PersistentCacheFault, UnopenableStoreStartsDegradedNotThrowing) {
  const ScratchDir dir("noopen");
  FaultFileOps ops(real_file_ops());
  PersistentCacheOptions options;
  options.store.ops = &ops;
  ops.fail_op(Op::Mkdir, 0);
  PersistentFrontCache cache(dir.str(), options);
  EXPECT_FALSE(cache.persistent());
  EXPECT_FALSE(cache.recovery().has_value());
  EXPECT_TRUE(cache.insert(make_key(1), make_result({{1, 2}})));
  EXPECT_TRUE(cache.lookup(make_key(1)).has_value());
}

TEST(PersistentCacheFault, ReadErrorDegradesButServesTheMiss) {
  const ScratchDir dir("readfail");
  FaultFileOps ops(real_file_ops());
  PersistentCacheOptions options;
  options.store.ops = &ops;
  options.memory_capacity = 1;  // force the second key out of memory
  {
    PersistentFrontCache cache(dir.str(), options);
    cache.insert(make_key(1), make_result({{1, 2}}));
    cache.insert(make_key(2), make_result({{3, 4}}));
  }
  PersistentFrontCache cache(dir.str(), options);
  ops.fail_op(Op::Read, 0, /*transient=*/false);
  EXPECT_FALSE(cache.lookup(make_key(1)).has_value())
      << "a failed store read is a miss, never an exception";
  EXPECT_FALSE(cache.persistent());
}

}  // namespace
}  // namespace adtp::store
