/// FrontStore behavior and the hand-corrupted recovery corpus. Each
/// corruption scenario - flipped payload byte, flipped record checksum,
/// truncated tail, stale format version, duplicate key, malformed
/// CURRENT - must be *detected* (skipped, truncated, or refused), never
/// served as a wrong front. Corruption is applied with std::filesystem /
/// raw streams, deliberately behind the store's back.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "store/shard.hpp"
#include "store_test_util.hpp"

namespace adtp::store {
namespace {

using testutil::make_key;
using testutil::read_file;
using testutil::ScratchDir;
using testutil::write_file;

std::vector<std::uint8_t> payload_of(char fill, std::size_t n) {
  return std::vector<std::uint8_t>(n, static_cast<std::uint8_t>(fill));
}

TEST(FrontStore, PutGetAndDedup) {
  const ScratchDir dir("putget");
  FrontStore store(dir.str());
  const auto p1 = payload_of('a', 40);
  const auto p2 = payload_of('b', 10);
  EXPECT_TRUE(store.put(make_key(1), p1));
  EXPECT_TRUE(store.put(make_key(2), p2));
  EXPECT_FALSE(store.put(make_key(1), p2)) << "duplicate key must not write";

  EXPECT_EQ(store.get(make_key(1)), p1);
  EXPECT_EQ(store.get(make_key(2)), p2);
  EXPECT_FALSE(store.get(make_key(3)).has_value());
  EXPECT_TRUE(store.contains(make_key(2)));
  EXPECT_FALSE(store.contains(make_key(9)));

  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.puts, 2u);
  EXPECT_EQ(stats.duplicate_puts, 1u);
  EXPECT_EQ(stats.gets, 3u);
  EXPECT_EQ(stats.get_hits, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(FrontStore, ReopenRecoversEverything) {
  const ScratchDir dir("reopen");
  {
    FrontStore store(dir.str());
    for (std::uint64_t i = 1; i <= 20; ++i) {
      ASSERT_TRUE(store.put(make_key(i), payload_of('a' + i % 7, i * 3)));
    }
  }
  FrontStore store(dir.str());
  const RecoveryReport& rec = store.recovery();
  EXPECT_EQ(rec.entries_recovered, 20u);
  EXPECT_EQ(rec.records_skipped, 0u);
  EXPECT_EQ(rec.tail_bytes_truncated, 0u);
  EXPECT_FALSE(rec.stale_generation);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    EXPECT_EQ(store.get(make_key(i)), payload_of('a' + i % 7, i * 3));
  }
}

TEST(FrontStore, EmptyStoreZeroLengthPayloadAndReopen) {
  const ScratchDir dir("empty");
  {
    FrontStore store(dir.str());
    EXPECT_TRUE(store.put(make_key(1), payload_of('x', 0)));
  }
  FrontStore store(dir.str());
  EXPECT_EQ(store.recovery().entries_recovered, 1u);
  const auto got = store.get(make_key(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

// ---- the corruption corpus -------------------------------------------------

/// Builds a three-entry store and returns its directory file paths.
struct Corpus {
  explicit Corpus(const ScratchDir& dir)
      : data(dir.path() / "shard-1.data"), idx(dir.path() / "shard-1.idx") {
    FrontStore store(dir.str());
    EXPECT_TRUE(store.put(make_key(1), payload_of('a', 64)));
    EXPECT_TRUE(store.put(make_key(2), payload_of('b', 64)));
    EXPECT_TRUE(store.put(make_key(3), payload_of('c', 64)));
  }
  std::filesystem::path data;
  std::filesystem::path idx;
};

constexpr std::size_t kHeader = 16;
constexpr std::size_t kRecord = 56;

TEST(FrontStoreRecovery, FlippedPayloadByteSkipsOnlyThatEntry) {
  const ScratchDir dir("flip_payload");
  const Corpus corpus(dir);
  auto bytes = read_file(corpus.data);
  bytes[kHeader + 64 + 10] ^= 0x40;  // middle entry's payload

  write_file(corpus.data, bytes);
  FrontStore store(dir.str());
  const RecoveryReport& rec = store.recovery();
  EXPECT_EQ(rec.entries_recovered, 2u);
  EXPECT_EQ(rec.records_skipped, 1u);
  EXPECT_EQ(store.get(make_key(1)), payload_of('a', 64));
  EXPECT_FALSE(store.get(make_key(2)).has_value()) << "corrupt, never served";
  EXPECT_EQ(store.get(make_key(3)), payload_of('c', 64));
}

TEST(FrontStoreRecovery, FlippedRecordChecksumSkipsOnlyThatRecord) {
  const ScratchDir dir("flip_record");
  const Corpus corpus(dir);
  auto bytes = read_file(corpus.idx);
  bytes[kHeader + kRecord + 48] ^= 0x01;  // record 2's own checksum
  write_file(corpus.idx, bytes);

  FrontStore store(dir.str());
  EXPECT_EQ(store.recovery().entries_recovered, 2u);
  EXPECT_EQ(store.recovery().records_skipped, 1u);
  EXPECT_FALSE(store.get(make_key(2)).has_value());
  EXPECT_EQ(store.get(make_key(3)), payload_of('c', 64));
}

TEST(FrontStoreRecovery, CorruptKeyFieldServesNoWrongFront) {
  // Corrupting the *key* of a record makes its record checksum fail; the
  // danger case would be serving entry 2's payload under a garbled key.
  const ScratchDir dir("flip_key");
  const Corpus corpus(dir);
  auto bytes = read_file(corpus.idx);
  bytes[kHeader + kRecord + 3] ^= 0xff;
  write_file(corpus.idx, bytes);

  FrontStore store(dir.str());
  EXPECT_EQ(store.recovery().records_skipped, 1u);
  EXPECT_FALSE(store.get(make_key(2)).has_value());
}

TEST(FrontStoreRecovery, TruncatedIndexTailDropsOnlyThePartialRecord) {
  const ScratchDir dir("torn_idx");
  const Corpus corpus(dir);
  auto bytes = read_file(corpus.idx);
  const std::size_t torn = kHeader + 2 * kRecord + kRecord / 2;
  bytes.resize(torn);  // record 3 is half-written
  write_file(corpus.idx, bytes);

  {
    FrontStore store(dir.str());
    const RecoveryReport& rec = store.recovery();
    EXPECT_EQ(rec.entries_recovered, 2u);
    EXPECT_EQ(rec.records_skipped, 0u)
        << "a torn tail is truncation, not skip";
    EXPECT_GT(rec.tail_bytes_truncated, 0u);
    EXPECT_EQ(store.get(make_key(1)), payload_of('a', 64));
    EXPECT_EQ(store.get(make_key(2)), payload_of('b', 64));
    EXPECT_FALSE(store.get(make_key(3)).has_value());
  }  // close releases the writer lease
  // The torn bytes are gone from disk: a second reopen is clean.
  FrontStore again(dir.str());
  EXPECT_EQ(again.recovery().tail_bytes_truncated, 0u);
  EXPECT_EQ(again.recovery().entries_recovered, 2u);
}

TEST(FrontStoreRecovery, TruncatedDataTailDropsTheUnreachableEntry) {
  const ScratchDir dir("torn_data");
  const Corpus corpus(dir);
  auto bytes = read_file(corpus.data);
  bytes.resize(kHeader + 2 * 64 + 20);  // entry 3's payload cut short
  write_file(corpus.data, bytes);

  FrontStore store(dir.str());
  EXPECT_EQ(store.recovery().entries_recovered, 2u);
  EXPECT_FALSE(store.get(make_key(3)).has_value());
  EXPECT_EQ(store.get(make_key(2)), payload_of('b', 64));
}

TEST(FrontStoreRecovery, StaleFormatVersionStartsFreshAndServesNothing) {
  const ScratchDir dir("stale");
  const Corpus corpus(dir);
  auto bytes = read_file(corpus.idx);
  bytes[8] = 99;  // format version field of the header
  write_file(corpus.idx, bytes);

  std::uint64_t gen = 0;
  {
    FrontStore store(dir.str());
    EXPECT_TRUE(store.recovery().stale_generation);
    EXPECT_EQ(store.recovery().entries_recovered, 0u);
    EXPECT_FALSE(store.get(make_key(1)).has_value());
    EXPECT_GT(store.generation(), 1u);
    // The fresh generation is fully functional and survives reopen.
    EXPECT_TRUE(store.put(make_key(9), payload_of('z', 8)));
    gen = store.generation();
  }  // close releases the writer lease
  FrontStore reopened(dir.str());
  EXPECT_EQ(reopened.generation(), gen);
  EXPECT_EQ(reopened.get(make_key(9)), payload_of('z', 8));
}

TEST(FrontStoreRecovery, ForeignMagicStartsFresh) {
  const ScratchDir dir("magic");
  const Corpus corpus(dir);
  auto bytes = read_file(corpus.data);
  bytes[0] = 'X';
  write_file(corpus.data, bytes);
  FrontStore store(dir.str());
  EXPECT_TRUE(store.recovery().stale_generation);
  EXPECT_EQ(store.recovery().entries_recovered, 0u);
}

TEST(FrontStoreRecovery, DuplicateKeyRecordFirstWins) {
  const ScratchDir dir("dup");
  const Corpus corpus(dir);
  // Append a verbatim copy of record 1 (a valid record re-claiming key 1,
  // as a buggy or adversarial writer might): the original must win.
  auto idx = read_file(corpus.idx);
  std::vector<std::uint8_t> dup(idx.begin() + kHeader,
                                idx.begin() + kHeader + kRecord);
  idx.insert(idx.end(), dup.begin(), dup.end());
  write_file(corpus.idx, idx);

  FrontStore store(dir.str());
  EXPECT_EQ(store.recovery().entries_recovered, 3u);
  EXPECT_EQ(store.recovery().duplicates_skipped, 1u);
  EXPECT_EQ(store.get(make_key(1)), payload_of('a', 64));
}

TEST(FrontStoreRecovery, MalformedCurrentStartsFresh) {
  const ScratchDir dir("current");
  const Corpus corpus(dir);
  write_file(dir.path() / "CURRENT", {'j', 'u', 'n', 'k', '\n'});
  FrontStore store(dir.str());
  EXPECT_TRUE(store.recovery().stale_generation);
  EXPECT_EQ(store.recovery().entries_recovered, 0u);
  EXPECT_TRUE(store.put(make_key(4), payload_of('d', 4)));
  EXPECT_EQ(store.get(make_key(4)), payload_of('d', 4));
}

TEST(FrontStoreRecovery, BitRotAfterOpenIsCaughtAtReadTime) {
  const ScratchDir dir("bitrot");
  FrontStore store(dir.str());
  ASSERT_TRUE(store.put(make_key(1), payload_of('a', 64)));
  // Rot the payload underneath the open store.
  auto bytes = read_file(dir.path() / "shard-1.data");
  bytes[kHeader + 5] ^= 0x10;
  write_file(dir.path() / "shard-1.data", bytes);
  EXPECT_FALSE(store.get(make_key(1)).has_value());
  EXPECT_EQ(store.stats().corrupt_reads, 1u);
  EXPECT_FALSE(store.contains(make_key(1))) << "dropped after detection";
}

// ---- eviction and compaction -----------------------------------------------

TEST(FrontStore, MaxEntriesEvictsOldestFirst) {
  const ScratchDir dir("evict");
  StoreOptions options;
  options.max_entries = 3;
  options.compact_dead_fraction = 0;  // keep eviction observable on disk
  FrontStore store(dir.str(), options);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(store.put(make_key(i), payload_of('a', 16)));
  }
  EXPECT_FALSE(store.contains(make_key(1)));
  EXPECT_FALSE(store.contains(make_key(2)));
  EXPECT_TRUE(store.contains(make_key(3)));
  EXPECT_TRUE(store.contains(make_key(5)));
  EXPECT_EQ(store.stats().evictions, 2u);
  EXPECT_EQ(store.stats().dead_bytes, 32u);
}

TEST(FrontStore, CompactionRewritesLiveEntriesAndSurvivesReopen) {
  const ScratchDir dir("compact");
  StoreOptions options;
  options.max_entries = 4;
  options.compact_dead_fraction = 0;
  {
    FrontStore store(dir.str(), options);
    for (std::uint64_t i = 1; i <= 10; ++i) {
      ASSERT_TRUE(store.put(make_key(i), payload_of('a' + i % 7, 32)));
    }
    ASSERT_EQ(store.stats().entries, 4u);
    const std::uint64_t before = store.stats().data_bytes;
    store.compact();
    EXPECT_EQ(store.generation(), 2u);
    EXPECT_EQ(store.stats().compactions, 1u);
    EXPECT_EQ(store.stats().dead_bytes, 0u);
    EXPECT_LT(store.stats().data_bytes, before);
    for (std::uint64_t i = 7; i <= 10; ++i) {
      EXPECT_EQ(store.get(make_key(i)), payload_of('a' + i % 7, 32));
    }
    // Old generation files are gone.
    EXPECT_FALSE(std::filesystem::exists(dir.path() / "shard-1.data"));
  }
  FrontStore reopened(dir.str(), options);
  EXPECT_EQ(reopened.generation(), 2u);
  EXPECT_EQ(reopened.recovery().entries_recovered, 4u);
  for (std::uint64_t i = 7; i <= 10; ++i) {
    EXPECT_EQ(reopened.get(make_key(i)), payload_of('a' + i % 7, 32));
  }
}

TEST(FrontStore, AutoCompactionTriggersOnDeadFraction) {
  const ScratchDir dir("autocompact");
  StoreOptions options;
  options.max_entries = 2;
  options.compact_dead_fraction = 0.4;
  FrontStore store(dir.str(), options);
  for (std::uint64_t i = 1; i <= 12; ++i) {
    ASSERT_TRUE(store.put(make_key(i), payload_of('p', 100)));
  }
  EXPECT_GT(store.stats().compactions, 0u);
  // Whatever the compaction cadence, the live tail is always intact.
  EXPECT_EQ(store.get(make_key(11)), payload_of('p', 100));
  EXPECT_EQ(store.get(make_key(12)), payload_of('p', 100));
}

}  // namespace
}  // namespace adtp::store
