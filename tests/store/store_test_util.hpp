/// Shared plumbing for the store suites: scratch directories under the
/// test's working directory (removed on scope exit) and terse builders
/// for results and keys. Tests reach around the FileOps seam with
/// std::filesystem on purpose - hand-corrupting shard files must not go
/// through the interface whose error handling is under test.

#pragma once

#include <unistd.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/front_cache.hpp"

namespace adtp::store::testutil {

/// A unique scratch directory, recursively deleted on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    static std::uint64_t counter = 0;
    path_ = std::filesystem::temp_directory_path() /
            ("adtp_store_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    std::filesystem::remove_all(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] std::filesystem::path path() const { return path_; }

 private:
  std::filesystem::path path_;
};

inline AnalysisResult make_result(std::initializer_list<ValuePoint> points,
                                  Algorithm used = Algorithm::BottomUp) {
  AnalysisResult result;
  result.front = Front::from_staircase(std::vector<ValuePoint>(points));
  result.used = used;
  result.seconds = 0.125;
  result.memo_hits = 3;
  result.memo_misses = 7;
  return result;
}

inline FrontCacheKey make_key(std::uint64_t n) {
  return FrontCacheKey{n, n * 31 + 1, n * 131 + 7};
}

/// Reads a whole file as bytes (empty when absent).
inline std::vector<std::uint8_t> read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in), {});
}

/// Overwrites a file with bytes.
inline void write_file(const std::filesystem::path& p,
                       const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// True iff the two fronts match by IEEE-754 bit pattern, point by point
/// (stricter than operator== style compares: distinguishes -0.0 / +0.0
/// and treats equal NaN payloads as equal).
inline bool bits_equal(const Front& a, const Front& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a.points()[i].def) !=
        std::bit_cast<std::uint64_t>(b.points()[i].def)) {
      return false;
    }
    if (std::bit_cast<std::uint64_t>(a.points()[i].att) !=
        std::bit_cast<std::uint64_t>(b.points()[i].att)) {
      return false;
    }
  }
  return true;
}

}  // namespace adtp::store::testutil
