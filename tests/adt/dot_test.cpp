#include "adt/dot.hpp"

#include <gtest/gtest.h>

#include "bdd/build.hpp"
#include "bdd/dot.hpp"
#include "gen/catalog.hpp"

namespace adtp {
namespace {

TEST(AdtDot, MentionsEveryNodeAndEdge) {
  const AugmentedAdt fig5 = catalog::fig5_example();
  const std::string dot = to_dot(fig5.adt());
  EXPECT_NE(dot.find("digraph adt"), std::string::npos);
  for (const Node& n : fig5.adt().nodes()) {
    EXPECT_NE(dot.find(n.name), std::string::npos) << n.name;
  }
  // 6 edges in fig5: two INH gates with 2 children + OR with 2.
  std::size_t edges = 0;
  for (std::size_t pos = dot.find(" -> "); pos != std::string::npos;
       pos = dot.find(" -> ", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, 6u);
}

TEST(AdtDot, TriggerEdgesMarked) {
  const AugmentedAdt fig5 = catalog::fig5_example();
  const std::string dot = to_dot(fig5.adt());
  // Two INH gates -> two odot-marked trigger edges (the paper's circle).
  std::size_t markers = 0;
  for (std::size_t pos = dot.find("arrowhead=odot");
       pos != std::string::npos; pos = dot.find("arrowhead=odot", pos + 1)) {
    ++markers;
  }
  EXPECT_EQ(markers, 2u);
}

TEST(AdtDot, AugmentedIncludesValues) {
  const std::string dot = to_dot(catalog::fig5_example());
  EXPECT_NE(dot.find("a2\\n10"), std::string::npos);
  EXPECT_NE(dot.find("d1\\n4"), std::string::npos);
}

TEST(AdtDot, EscapesQuotes) {
  Adt adt;
  adt.add_basic("weird\"name", Agent::Attacker);
  adt.freeze();
  const std::string dot = to_dot(adt);
  EXPECT_NE(dot.find("weird\\\"name"), std::string::npos);
}

TEST(BddDot, RendersTerminalsAndEdges) {
  const AugmentedAdt fig5 = catalog::fig5_example();
  const auto order = bdd::VarOrder::defense_first(fig5.adt());
  bdd::Manager manager(order.num_vars());
  const bdd::Ref root =
      bdd::build_structure_function(manager, fig5.adt(), order);
  const std::string dot = bdd::to_dot(manager, root, fig5.adt(), order);
  EXPECT_NE(dot.find("digraph robdd"), std::string::npos);
  EXPECT_NE(dot.find("label=\"0\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"1\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // Fig. 6 style
  EXPECT_NE(dot.find("a1"), std::string::npos);
  EXPECT_NE(dot.find("d1"), std::string::npos);
}

}  // namespace
}  // namespace adtp
