#include "adt/adt.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace adtp {
namespace {

Adt small_tree() {
  Adt adt;
  const NodeId a1 = adt.add_basic("a1", Agent::Attacker);
  const NodeId a2 = adt.add_basic("a2", Agent::Attacker);
  const NodeId d1 = adt.add_basic("d1", Agent::Defender);
  const NodeId band = adt.add_gate("band", GateType::And, Agent::Attacker,
                                   {a1, a2});
  const NodeId inh = adt.add_inhibit("inh", band, d1);
  adt.set_root(inh);
  adt.freeze();
  return adt;
}

TEST(AdtModel, BuildAndQuery) {
  const Adt adt = small_tree();
  EXPECT_EQ(adt.size(), 5u);
  EXPECT_EQ(adt.name(adt.root()), "inh");
  EXPECT_EQ(adt.type(adt.root()), GateType::Inhibit);
  EXPECT_EQ(adt.agent(adt.root()), Agent::Attacker);
  EXPECT_EQ(adt.num_attacks(), 2u);
  EXPECT_EQ(adt.num_defenses(), 1u);
  EXPECT_TRUE(adt.is_tree());
}

TEST(AdtModel, FindAndAt) {
  const Adt adt = small_tree();
  EXPECT_TRUE(adt.find("a1").has_value());
  EXPECT_FALSE(adt.find("zz").has_value());
  EXPECT_EQ(adt.name(adt.at("band")), "band");
  EXPECT_THROW((void)adt.at("zz"), ModelError);
}

TEST(AdtModel, InhChildAccessors) {
  const Adt adt = small_tree();
  const NodeId inh = adt.at("inh");
  EXPECT_EQ(adt.name(adt.inhibited_child(inh)), "band");
  EXPECT_EQ(adt.name(adt.trigger_child(inh)), "d1");
  EXPECT_THROW((void)adt.inhibited_child(adt.at("a1")), ModelError);
}

TEST(AdtModel, ParentsComputed) {
  const Adt adt = small_tree();
  EXPECT_TRUE(adt.parents(adt.root()).empty());
  ASSERT_EQ(adt.parents(adt.at("a1")).size(), 1u);
  EXPECT_EQ(adt.parents(adt.at("a1"))[0], adt.at("band"));
}

TEST(AdtModel, TopologicalOrderChildrenFirst) {
  const Adt adt = small_tree();
  std::vector<std::size_t> position(adt.size());
  const auto& topo = adt.topological_order();
  for (std::size_t i = 0; i < topo.size(); ++i) position[topo[i]] = i;
  for (NodeId v = 0; v < adt.size(); ++v) {
    for (NodeId c : adt.children(v)) {
      EXPECT_LT(position[c], position[v]);
    }
  }
}

TEST(AdtModel, AttackDefenseIndexing) {
  const Adt adt = small_tree();
  EXPECT_EQ(adt.attack_index(adt.at("a1")), 0u);
  EXPECT_EQ(adt.attack_index(adt.at("a2")), 1u);
  EXPECT_EQ(adt.defense_index(adt.at("d1")), 0u);
  EXPECT_THROW((void)adt.attack_index(adt.at("d1")), ModelError);
  EXPECT_THROW((void)adt.defense_index(adt.at("a1")), ModelError);
  EXPECT_THROW((void)adt.attack_index(adt.at("band")), ModelError);
}

TEST(AdtModel, QueriesRequireFreeze) {
  Adt adt;
  adt.add_basic("a", Agent::Attacker);
  EXPECT_THROW((void)adt.root(), ModelError);
  EXPECT_THROW((void)adt.attack_steps(), ModelError);
  adt.freeze();
  EXPECT_EQ(adt.name(adt.root()), "a");
}

TEST(AdtModel, MutationAfterFreezeUnfreezes) {
  Adt adt;
  const NodeId a = adt.add_basic("a", Agent::Attacker);
  adt.freeze();
  EXPECT_TRUE(adt.frozen());
  const NodeId b = adt.add_basic("b", Agent::Attacker);
  EXPECT_FALSE(adt.frozen());
  const NodeId gate = adt.add_gate("or", GateType::Or, Agent::Attacker,
                                   {a, b});
  adt.set_root(gate);
  adt.freeze();
  EXPECT_EQ(adt.num_attacks(), 2u);
}

TEST(AdtModel, DuplicateNamesRejected) {
  Adt adt;
  adt.add_basic("x", Agent::Attacker);
  EXPECT_THROW(adt.add_basic("x", Agent::Defender), ModelError);
}

TEST(AdtModel, EmptyNamesRejected) {
  Adt adt;
  EXPECT_THROW(adt.add_basic("", Agent::Attacker), ModelError);
}

TEST(AdtModel, ChildrenMustExist) {
  Adt adt;
  EXPECT_THROW(adt.add_gate("g", GateType::And, Agent::Attacker, {5}),
               ModelError);
  EXPECT_THROW(adt.add_inhibit("i", 0, 1), ModelError);
}

TEST(AdtModel, GateTypeRestrictedInAddGate) {
  Adt adt;
  const NodeId a = adt.add_basic("a", Agent::Attacker);
  EXPECT_THROW(
      adt.add_gate("g", GateType::Inhibit, Agent::Attacker, {a, a}),
      ModelError);
  EXPECT_THROW(adt.add_gate("g", GateType::BasicStep, Agent::Attacker, {a}),
               ModelError);
}

TEST(AdtModel, EmptyGateRejected) {
  Adt adt;
  EXPECT_THROW(adt.add_gate("g", GateType::And, Agent::Attacker, {}),
               ModelError);
}

TEST(AdtModel, InhDistinctChildren) {
  Adt adt;
  const NodeId a = adt.add_basic("a", Agent::Attacker);
  EXPECT_THROW(adt.add_inhibit("i", a, a), ModelError);
}

TEST(AdtModel, Definition1MixedAgentAndOrRejected) {
  Adt adt;
  const NodeId a = adt.add_basic("a", Agent::Attacker);
  const NodeId d = adt.add_basic("d", Agent::Defender);
  adt.add_gate("g", GateType::And, Agent::Attacker, {a, d});
  EXPECT_THROW(adt.freeze(), ModelError);
}

TEST(AdtModel, Definition1InhOppositeAgents) {
  Adt adt;
  const NodeId a1 = adt.add_basic("a1", Agent::Attacker);
  const NodeId a2 = adt.add_basic("a2", Agent::Attacker);
  adt.add_inhibit("i", a1, a2);  // trigger must be the opposite agent
  EXPECT_THROW(adt.freeze(), ModelError);
}

TEST(AdtModel, UnreachableNodesRejected) {
  Adt adt;
  const NodeId a = adt.add_basic("a", Agent::Attacker);
  adt.add_basic("orphan", Agent::Attacker);
  adt.set_root(a);
  EXPECT_THROW(adt.freeze(), ModelError);
}

TEST(AdtModel, EmptyModelRejected) {
  Adt adt;
  EXPECT_THROW(adt.freeze(), ModelError);
}

TEST(AdtModel, SetRootValidates) {
  Adt adt;
  adt.add_basic("a", Agent::Attacker);
  EXPECT_THROW(adt.set_root(9), ModelError);
}

TEST(AdtModel, RootDefaultsToLastAdded) {
  Adt adt;
  const NodeId a = adt.add_basic("a", Agent::Attacker);
  const NodeId b = adt.add_basic("b", Agent::Attacker);
  adt.add_gate("top", GateType::Or, Agent::Attacker, {a, b});
  adt.freeze();  // no explicit set_root
  EXPECT_EQ(adt.name(adt.root()), "top");
}

TEST(AdtModel, DagDetection) {
  Adt adt;
  const NodeId shared = adt.add_basic("shared", Agent::Attacker);
  const NodeId a = adt.add_basic("a", Agent::Attacker);
  const NodeId g1 = adt.add_gate("g1", GateType::And, Agent::Attacker,
                                 {shared, a});
  const NodeId b = adt.add_basic("b", Agent::Attacker);
  const NodeId g2 = adt.add_gate("g2", GateType::And, Agent::Attacker,
                                 {shared, b});
  const NodeId root = adt.add_gate("root", GateType::Or, Agent::Attacker,
                                   {g1, g2});
  adt.set_root(root);
  adt.freeze();
  EXPECT_FALSE(adt.is_tree());
  EXPECT_EQ(adt.parents(shared).size(), 2u);
  const AdtStats stats = adt.stats();
  EXPECT_EQ(stats.shared_nodes, 1u);
  EXPECT_FALSE(stats.tree_shaped);
}

TEST(AdtModel, StatsCountGates) {
  const Adt adt = small_tree();
  const AdtStats stats = adt.stats();
  EXPECT_EQ(stats.nodes, 5u);
  EXPECT_EQ(stats.attack_steps, 2u);
  EXPECT_EQ(stats.defense_steps, 1u);
  EXPECT_EQ(stats.and_gates, 1u);
  EXPECT_EQ(stats.or_gates, 0u);
  EXPECT_EQ(stats.inh_gates, 1u);
  EXPECT_TRUE(stats.tree_shaped);
}

TEST(AdtModel, ToTextMentionsEveryNode) {
  const Adt adt = small_tree();
  const std::string text = adt.to_text();
  for (const Node& n : adt.nodes()) {
    EXPECT_NE(text.find(n.name), std::string::npos) << n.name;
  }
}

TEST(AdtModel, NodeIdOutOfRangeThrows) {
  const Adt adt = small_tree();
  EXPECT_THROW((void)adt.node(99), ModelError);
  EXPECT_THROW((void)adt.parents(99), ModelError);
}

}  // namespace
}  // namespace adtp
