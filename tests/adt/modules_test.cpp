#include "adt/modules.hpp"

#include <gtest/gtest.h>

#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"

namespace adtp {
namespace {

TEST(Modules, EveryTreeNodeIsAModule) {
  const AugmentedAdt fig3 = catalog::fig3_example();
  const ModuleInfo info = compute_modules(fig3.adt());
  for (NodeId v = 0; v < fig3.adt().size(); ++v) {
    EXPECT_TRUE(info.is_module[v]) << fig3.adt().name(v);
  }
  EXPECT_EQ(info.module_count(), fig3.adt().size());
}

TEST(Modules, DescendantsIncludeSelf) {
  const AugmentedAdt fig5 = catalog::fig5_example();
  const ModuleInfo info = compute_modules(fig5.adt());
  for (NodeId v = 0; v < fig5.adt().size(); ++v) {
    EXPECT_TRUE(info.descendants[v].test(v));
  }
}

TEST(Modules, RootDescendantsCoverEverything) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const ModuleInfo info = compute_modules(dag.adt());
  EXPECT_EQ(info.descendants[dag.adt().root()].count(), dag.adt().size());
  EXPECT_TRUE(info.is_module[dag.adt().root()]);
}

TEST(Modules, MoneyTheftSharingBreaksModules) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const Adt& adt = dag.adt();
  const ModuleInfo info = compute_modules(adt);
  // Phishing has two parents, so the two OR gates above it are not
  // modules...
  EXPECT_FALSE(info.is_module[adt.at("get_user_name")]);
  EXPECT_FALSE(info.is_module[adt.at("get_password")]);
  // ...but the online AND that contains all of phishing's parents is.
  EXPECT_TRUE(info.is_module[adt.at("via_online_banking")]);
  // The fully tree-shaped ATM branch is a module throughout.
  EXPECT_TRUE(info.is_module[adt.at("via_atm")]);
  EXPECT_TRUE(info.is_module[adt.at("learn_pin")]);
  // A shared leaf is trivially a module (no strict descendants).
  EXPECT_TRUE(info.is_module[adt.at("phishing")]);
}

TEST(Modules, Fig2SharedDefenseBreaksModules) {
  const Adt adt = catalog::fig2_steal_data_adt();
  const ModuleInfo info = compute_modules(adt);
  // SU_effective is shared by ESV_countered and ACV_countered.
  EXPECT_FALSE(info.is_module[adt.at("ESV_countered")]);
  EXPECT_FALSE(info.is_module[adt.at("ACV_countered")]);
  EXPECT_TRUE(info.is_module[adt.at("obtain_credentials")]);
  EXPECT_TRUE(info.is_module[adt.at("SU_effective")]);
}

TEST(Modules, ModulePropertyMatchesBruteForce) {
  RandomAdtOptions options;
  options.target_nodes = 35;
  options.share_probability = 0.3;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Adt adt = generate_random_adt(options, seed);
    const ModuleInfo info = compute_modules(adt);
    // Brute force: v is a module iff removing v disconnects its strict
    // descendants from the root.
    for (NodeId v = 0; v < adt.size(); ++v) {
      // Reachability from the root avoiding v.
      std::vector<char> reach(adt.size(), 0);
      if (adt.root() != v) {
        std::vector<NodeId> stack{adt.root()};
        reach[adt.root()] = 1;
        while (!stack.empty()) {
          const NodeId u = stack.back();
          stack.pop_back();
          for (NodeId c : adt.children(u)) {
            if (c != v && !reach[c]) {
              reach[c] = 1;
              stack.push_back(c);
            }
          }
        }
      }
      bool expected = true;
      for (std::size_t w : info.descendants[v].set_bits()) {
        if (w != v && reach[w]) expected = false;
      }
      EXPECT_EQ(info.is_module[v] != 0, expected)
          << "seed " << seed << " node " << adt.name(v);
    }
  }
}

}  // namespace
}  // namespace adtp
