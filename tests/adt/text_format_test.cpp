#include "adt/text_format.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/bottom_up.hpp"
#include "core/naive.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"
#include "util/error.hpp"

namespace adtp {
namespace {

constexpr const char* kFig5Text = R"(
# Fig. 5 of the paper
domains mincost mincost
a1 = attack 5
d1 = defense 4
i1 = INH (a1 | d1)
a2 = attack 10
d2 = defense 8
i2 = INH (a2 | d2)
top = OR A (i1, i2)
root top
)";

TEST(TextFormat, ParsesFig5) {
  const ParsedModel model = parse_adt_text(kFig5Text);
  EXPECT_EQ(model.adt.size(), 7u);
  EXPECT_EQ(model.adt.name(model.adt.root()), "top");
  EXPECT_EQ(model.attribution.get("d2"), 8);
  const Front front = bottom_up_front(model.augmented());
  EXPECT_EQ(front.to_string(), "{(0, 5), (4, 10), (12, inf)}");
}

TEST(TextFormat, AgentInferredFromFirstChild) {
  const ParsedModel model = parse_adt_text(
      "a1 = attack 1\na2 = attack 2\ntop = OR (a1, a2)\n");
  EXPECT_EQ(model.adt.agent(model.adt.root()), Agent::Attacker);
}

TEST(TextFormat, RootDefaultsToLastNode) {
  const ParsedModel model =
      parse_adt_text("a1 = attack 1\na2 = attack 2\ntop = AND A (a1, a2)\n");
  EXPECT_EQ(model.adt.name(model.adt.root()), "top");
}

TEST(TextFormat, QuotedNames) {
  const ParsedModel model = parse_adt_text(
      "\"log in & execute\" = attack 10\n"
      "\"sms auth\" = defense 20\n"
      "top = INH (\"log in & execute\" | \"sms auth\")\n");
  EXPECT_TRUE(model.adt.find("log in & execute").has_value());
  EXPECT_EQ(model.attribution.get("sms auth"), 20);
}

TEST(TextFormat, DomainsParsed) {
  const ParsedModel model = parse_adt_text(
      "domains minskill probability\na = attack 0.5\n");
  EXPECT_EQ(model.defender_domain.kind(), SemiringKind::MinSkill);
  EXPECT_EQ(model.attacker_domain.kind(), SemiringKind::Probability);
}

TEST(TextFormat, InfValueParsed) {
  const ParsedModel model = parse_adt_text("a = attack inf\n");
  EXPECT_TRUE(std::isinf(model.attribution.get("a")));
}

TEST(TextFormat, ErrorsCarryLineNumbers) {
  try {
    (void)parse_adt_text("a1 = attack 5\nb = bogus 3\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(TextFormat, UnknownChildRejected) {
  EXPECT_THROW((void)parse_adt_text("top = OR A (nope)\n"), ParseError);
}

TEST(TextFormat, ForwardReferenceRejected) {
  // Nodes must be defined before use (bottom-up construction).
  EXPECT_THROW(
      (void)parse_adt_text("top = OR A (a1)\na1 = attack 5\n"),
      ParseError);
}

TEST(TextFormat, MalformedLinesRejected) {
  EXPECT_THROW((void)parse_adt_text("a1 = attack\n"), ParseError);
  EXPECT_THROW((void)parse_adt_text("a1 attack 5\n"), ParseError);
  EXPECT_THROW((void)parse_adt_text("a1 = attack five\n"), ParseError);
  EXPECT_THROW((void)parse_adt_text("i = INH (a | )\n"), ParseError);
  EXPECT_THROW((void)parse_adt_text("domains mincost\n"), ParseError);
  EXPECT_THROW((void)parse_adt_text("domains nope mincost\na = attack 1\n"),
               ParseError);
  EXPECT_THROW((void)parse_adt_text("\n# only comments\n"), ParseError);
  EXPECT_THROW((void)parse_adt_text("a1 = attack 5 extra\n"), ParseError);
  EXPECT_THROW((void)parse_adt_text("\"unterminated = attack 5\n"),
               ParseError);
}

TEST(TextFormat, MissingValueCaughtByValidation) {
  // A gate-only model has no leaves with values - but a leaf without a
  // value line cannot even be expressed; missing attribution arises with
  // a mis-typed name instead.
  EXPECT_THROW((void)parse_adt_text("root nothing\n"), ParseError);
}

TEST(TextFormat, RoundTripMoneyTheft) {
  const AugmentedAdt original = catalog::money_theft_dag();
  const std::string text = to_text_format(original);
  const ParsedModel reparsed = parse_adt_text(text);
  const AugmentedAdt again = reparsed.augmented();
  EXPECT_EQ(again.adt().size(), original.adt().size());
  EXPECT_EQ(naive_front(again).to_string(),
            naive_front(original).to_string());
}

TEST(TextFormat, RoundTripRandomModels) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RandomAdtOptions options;
    options.target_nodes = 30;
    options.share_probability = seed % 2 == 0 ? 0.2 : 0.0;
    const AugmentedAdt original = generate_random_aadt(
        options, seed, Semiring::min_cost(), Semiring::min_cost());
    const AugmentedAdt again =
        parse_adt_text(to_text_format(original)).augmented();
    EXPECT_EQ(naive_front(again).to_string(),
              naive_front(original).to_string())
        << "seed " << seed;
  }
}

TEST(TextFormat, FileRoundTrip) {
  const AugmentedAdt original = catalog::fig5_example();
  const std::string path = ::testing::TempDir() + "/fig5.adt";
  save_adt_file(original, path);
  const ParsedModel loaded = load_adt_file(path);
  EXPECT_EQ(loaded.adt.size(), original.adt().size());
  std::remove(path.c_str());
}

TEST(TextFormat, MissingFileThrows) {
  EXPECT_THROW((void)load_adt_file("/nonexistent/nowhere.adt"), Error);
}

}  // namespace
}  // namespace adtp
