#include "adt/transform.hpp"

#include <gtest/gtest.h>

#include "adt/structure.hpp"
#include "core/bottom_up.hpp"
#include "core/naive.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"
#include "util/error.hpp"

namespace adtp {
namespace {

TEST(UnfoldToTree, TreeStaysIdentical) {
  const AugmentedAdt fig5 = catalog::fig5_example();
  const AugmentedAdt unfolded = unfold_to_tree(fig5);
  EXPECT_EQ(unfolded.adt().size(), fig5.adt().size());
  EXPECT_TRUE(unfolded.adt().is_tree());
  EXPECT_EQ(naive_front(unfolded).to_string(),
            naive_front(fig5).to_string());
}

TEST(UnfoldToTree, DuplicatesSharedNodes) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  EXPECT_FALSE(dag.adt().is_tree());
  const AugmentedAdt tree = unfold_to_tree(dag);
  EXPECT_TRUE(tree.adt().is_tree());
  // Phishing feeds two parents; the tree gains exactly one clone.
  EXPECT_EQ(tree.adt().size(), dag.adt().size() + 1);
  EXPECT_TRUE(tree.adt().find("phishing").has_value());
  EXPECT_TRUE(tree.adt().find("phishing@2").has_value());
}

TEST(UnfoldToTree, ClonesInheritAttributeValues) {
  const AugmentedAdt tree = unfold_to_tree(catalog::money_theft_dag());
  EXPECT_EQ(tree.attribution().get("phishing"), 70);
  EXPECT_EQ(tree.attribution().get("phishing@2"), 70);
}

TEST(UnfoldToTree, PaperSectionVIATreeSemantics) {
  // The paper's manual unfolding: the tree-BU front differs from the DAG
  // front because Phishing must be paid twice.
  const AugmentedAdt tree = unfold_to_tree(catalog::money_theft_dag());
  EXPECT_EQ(bottom_up_front(tree).to_string(),
            "{(0, 90), (30, 150), (50, 165)}");
}

TEST(UnfoldToTree, LeafOriginMapsClones) {
  const UnfoldResult result = unfold_to_tree(catalog::money_theft_dag().adt());
  EXPECT_EQ(result.leaf_origin.at("phishing@2"), "phishing");
  EXPECT_EQ(result.leaf_origin.at("phishing"), "phishing");
}

TEST(UnfoldToTree, DeepSharingExpandsEverything) {
  // shared appears under two gates which are themselves shared.
  Adt adt;
  const NodeId shared = adt.add_basic("s", Agent::Attacker);
  const NodeId x = adt.add_basic("x", Agent::Attacker);
  const NodeId g1 = adt.add_gate("g1", GateType::And, Agent::Attacker,
                                 {shared, x});
  const NodeId y = adt.add_basic("y", Agent::Attacker);
  const NodeId g2 = adt.add_gate("g2", GateType::Or, Agent::Attacker,
                                 {g1, y});
  const NodeId g3 = adt.add_gate("g3", GateType::Or, Agent::Attacker,
                                 {g1, shared});
  const NodeId root = adt.add_gate("root", GateType::And, Agent::Attacker,
                                   {g2, g3});
  adt.set_root(root);
  adt.freeze();

  const UnfoldResult result = unfold_to_tree(adt);
  EXPECT_TRUE(result.tree.is_tree());
  // g1 expands twice (3 nodes each: g1, s, x), s once more, y, g2, g3, root.
  EXPECT_EQ(result.tree.size(), 11u);
}

TEST(UnfoldToTree, RequiresFrozen) {
  Adt adt;
  adt.add_basic("a", Agent::Attacker);
  EXPECT_THROW((void)unfold_to_tree(adt), ModelError);
}

TEST(ExtractSubgraph, KeepsNamesAndStructure) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const NodeId online = dag.adt().at("via_online_banking");
  const AugmentedAdt sub = extract_subgraph(dag, online);
  EXPECT_EQ(sub.adt().name(sub.adt().root()), "via_online_banking");
  EXPECT_TRUE(sub.adt().find("phishing").has_value());
  EXPECT_FALSE(sub.adt().find("via_atm").has_value());
  // Phishing is still shared inside the online branch.
  EXPECT_FALSE(sub.adt().is_tree());
  EXPECT_EQ(sub.attribution().get("phishing"), 70);
}

TEST(ExtractSubgraph, LeafSubgraph) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const AugmentedAdt sub = extract_subgraph(dag, dag.adt().at("phishing"));
  EXPECT_EQ(sub.adt().size(), 1u);
  EXPECT_EQ(sub.adt().num_attacks(), 1u);
}

TEST(ExtractSubgraph, OutOfRangeRejected) {
  const Adt adt = catalog::fig1_steal_data_at();
  EXPECT_THROW((void)extract_subgraph(adt, 999), ModelError);
}

TEST(ExtractSubgraph, WholeRootIsIdentity) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const AugmentedAdt sub = extract_subgraph(dag, dag.adt().root());
  EXPECT_EQ(sub.adt().size(), dag.adt().size());
  EXPECT_EQ(naive_front(sub).to_string(), naive_front(dag).to_string());
}

TEST(UnfoldToTree, StructureFunctionAgreesOnSharedInputs) {
  // Tree semantics: an event that activates *all* copies of a duplicated
  // leaf matches the DAG's activation of the shared leaf.
  RandomAdtOptions options;
  options.target_nodes = 25;
  options.share_probability = 0.3;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Adt dag = generate_random_adt(options, seed);
    const UnfoldResult unfolded = unfold_to_tree(dag);
    const Adt& tree = unfolded.tree;

    Rng rng(seed);
    for (int trial = 0; trial < 10; ++trial) {
      BitVec dag_defense(dag.num_defenses());
      BitVec dag_attack(dag.num_attacks());
      for (std::size_t i = 0; i < dag_defense.size(); ++i) {
        if (rng.chance(0.5)) dag_defense.set(i);
      }
      for (std::size_t i = 0; i < dag_attack.size(); ++i) {
        if (rng.chance(0.5)) dag_attack.set(i);
      }
      // Mirror the event onto every clone.
      BitVec tree_defense(tree.num_defenses());
      BitVec tree_attack(tree.num_attacks());
      for (NodeId leaf : tree.defense_steps()) {
        const std::string& origin = unfolded.leaf_origin.at(tree.name(leaf));
        if (dag_defense.test(dag.defense_index(dag.at(origin)))) {
          tree_defense.set(tree.defense_index(leaf));
        }
      }
      for (NodeId leaf : tree.attack_steps()) {
        const std::string& origin = unfolded.leaf_origin.at(tree.name(leaf));
        if (dag_attack.test(dag.attack_index(dag.at(origin)))) {
          tree_attack.set(tree.attack_index(leaf));
        }
      }
      EXPECT_EQ(evaluate_root(dag, dag_defense, dag_attack),
                evaluate_root(tree, tree_defense, tree_attack))
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace adtp
