#include "adt/adtool_xml.hpp"

#include <gtest/gtest.h>

#include "adt/structure.hpp"
#include "core/bdd_bu.hpp"
#include "core/naive.hpp"
#include "gen/random_adt.hpp"
#include "util/error.hpp"

namespace adtp {
namespace {

/// A small ADTool-style export: an OR root, one conjunctive branch, a
/// countermeasure with a counter-counter, and a repeated basic-step label
/// ("phish") shared between two branches.
constexpr const char* kSample = R"(<?xml version="1.0" encoding="UTF-8"?>
<adtree>
  <node refinement="disjunctive">
    <label>break in</label>
    <node refinement="conjunctive">
      <label>insider path</label>
      <node refinement="disjunctive">
        <label>get creds</label>
        <node><label>phish</label>
          <parameter domainId="MinCost1" category="basic">30</parameter>
        </node>
        <node><label>bribe</label>
          <parameter domainId="MinCost1" category="basic">100</parameter>
        </node>
      </node>
      <node>
        <label>use vpn</label>
        <parameter domainId="MinCost1" category="basic">5</parameter>
        <node switchRole="yes">
          <label>mfa</label>
          <parameter domainId="MinCost1" category="basic">8</parameter>
          <node switchRole="yes">
            <label>steal token</label>
            <parameter domainId="MinCost1" category="basic">50</parameter>
          </node>
        </node>
      </node>
    </node>
    <node>
      <label>phish</label>
    </node>
  </node>
</adtree>
)";

TEST(AdtoolXml, ImportsStructure) {
  const AdtoolImport import = import_adtool_xml(kSample);
  const Adt& adt = import.adt;
  EXPECT_EQ(adt.name(adt.root()), "break in");
  EXPECT_EQ(adt.type(adt.root()), GateType::Or);
  EXPECT_EQ(adt.agent(adt.root()), Agent::Attacker);
  // Basic steps: phish (shared!), bribe, use vpn, steal token + mfa (D).
  EXPECT_EQ(adt.num_attacks(), 4u);
  EXPECT_EQ(adt.num_defenses(), 1u);
  // Repeated label -> one shared node -> DAG.
  EXPECT_FALSE(adt.is_tree());
  EXPECT_EQ(adt.parents(adt.at("phish")).size(), 2u);
  // Countermeasure chain: use vpn inhibited by mfa, mfa by steal token.
  const NodeId countered = adt.at("use vpn countered");
  EXPECT_EQ(adt.type(countered), GateType::Inhibit);
  EXPECT_EQ(adt.name(adt.inhibited_child(countered)), "use vpn");
  EXPECT_EQ(adt.name(adt.trigger_child(countered)), "mfa countered");
}

TEST(AdtoolXml, ParametersBecomeAttribution) {
  const AdtoolImport import = import_adtool_xml(kSample);
  EXPECT_EQ(import.attribution.get("phish"), 30);
  EXPECT_EQ(import.attribution.get("bribe"), 100);
  EXPECT_EQ(import.attribution.get("mfa"), 8);
  ASSERT_EQ(import.domain_ids.size(), 1u);
  EXPECT_EQ(import.domain_ids[0], "MinCost1");
}

TEST(AdtoolXml, ImportedModelAnalyzes) {
  const AdtoolImport import = import_adtool_xml(kSample);
  const AugmentedAdt aadt(import.adt, import.attribution,
                          Semiring::min_cost(), Semiring::min_cost());
  const Front front = bdd_bu_front(aadt);
  EXPECT_TRUE(front.same_values(naive_front(aadt), aadt.defender_domain(),
                                aadt.attacker_domain()));
  // Cheapest attack: the bare "phish" branch at 30.
  EXPECT_EQ(front.front_point().def, 0);
  EXPECT_EQ(front.front_point().att, 30);
  // mfa (8) only forces the insider path's attacker to add steal token -
  // but "phish" alone still works, so mfa never helps: front has 1 point.
  EXPECT_EQ(front.size(), 1u);
}

TEST(AdtoolXml, SemanticsMatchesByHand) {
  // With mfa deployed, "use vpn" requires "steal token".
  const AdtoolImport import = import_adtool_xml(kSample);
  const Adt& adt = import.adt;
  BitVec defense(1);
  BitVec attack(adt.num_attacks());
  attack.set(adt.attack_index(adt.at("phish")));
  // phish alone satisfies the root OR regardless of mfa.
  EXPECT_TRUE(evaluate_root(adt, defense, attack));
  defense.set(0);
  EXPECT_TRUE(evaluate_root(adt, defense, attack));
}

TEST(AdtoolXml, MultipleCountermeasuresAreOred) {
  const char* xml = R"(<adtree><node>
      <label>a</label>
      <node switchRole="yes"><label>d1</label></node>
      <node switchRole="yes"><label>d2</label></node>
    </node></adtree>)";
  const AdtoolImport import = import_adtool_xml(xml);
  const Adt& adt = import.adt;
  const NodeId trigger = adt.trigger_child(adt.at("a countered"));
  EXPECT_EQ(adt.type(trigger), GateType::Or);
  EXPECT_EQ(adt.agent(trigger), Agent::Defender);
  EXPECT_EQ(adt.children(trigger).size(), 2u);
}

TEST(AdtoolXml, DefaultRefinementIsDisjunctive) {
  const char* xml = R"(<adtree><node>
      <label>top</label>
      <node><label>x</label></node>
      <node><label>y</label></node>
    </node></adtree>)";
  const AdtoolImport import = import_adtool_xml(xml);
  EXPECT_EQ(import.adt.type(import.adt.root()), GateType::Or);
}

TEST(AdtoolXml, EntitiesAndComments) {
  const char* xml =
      "<adtree><!-- exported -->\n"
      "<node><label>A &amp; B &lt;x&gt;</label></node></adtree>";
  const AdtoolImport import = import_adtool_xml(xml);
  EXPECT_TRUE(import.adt.find("A & B <x>").has_value());
}

TEST(AdtoolXml, SelectsRequestedDomain) {
  const char* xml = R"(<adtree><node>
      <label>a</label>
      <parameter domainId="Cost">7</parameter>
      <parameter domainId="Time">3</parameter>
    </node></adtree>)";
  EXPECT_EQ(import_adtool_xml(xml, "Time").attribution.get("a"), 3);
  EXPECT_EQ(import_adtool_xml(xml, "Cost").attribution.get("a"), 7);
  // Default: the first domain encountered.
  EXPECT_EQ(import_adtool_xml(xml).attribution.get("a"), 7);
}

TEST(AdtoolXml, MalformedInputsRejected) {
  EXPECT_THROW((void)import_adtool_xml("<adtree>"), ParseError);
  EXPECT_THROW((void)import_adtool_xml("<adtree></wrong>"), ParseError);
  EXPECT_THROW((void)import_adtool_xml("<nottree/>"), ModelError);
  EXPECT_THROW((void)import_adtool_xml("<adtree></adtree>"), ModelError);
  EXPECT_THROW((void)import_adtool_xml(
                   "<adtree><node></node></adtree>"),  // no label
               ModelError);
  EXPECT_THROW((void)import_adtool_xml(
                   "<adtree><node refinement=\"weird\"><label>x</label>"
                   "<node><label>y</label></node></node></adtree>"),
               ModelError);
  EXPECT_THROW((void)import_adtool_xml(
                   "<adtree><node><label>x</label>"
                   "<parameter domainId=\"d\">abc</parameter>"
                   "</node></adtree>"),
               ModelError);
  EXPECT_THROW((void)import_adtool_xml("<adtree><node><label>&bogus;"
                                       "</label></node></adtree>"),
               ParseError);
}

TEST(AdtoolXml, MissingFileThrows) {
  EXPECT_THROW((void)load_adtool_file("/nonexistent/tree.xml"), Error);
}

// ---- export / round-trip -------------------------------------------------

TEST(AdtoolXmlExport, SampleRoundTripsToFixpoint) {
  const AdtoolImport first = import_adtool_xml(kSample);
  const std::string domain = first.domain_ids.empty()
                                 ? std::string("adtp")
                                 : first.domain_ids.front();
  const std::string xml1 =
      export_adtool_xml(first.adt, first.attribution, domain);

  // import(export(.)) must be the identity from the first import on:
  // re-importing the export and exporting again yields the same document.
  const AdtoolImport second = import_adtool_xml(xml1);
  const std::string xml2 =
      export_adtool_xml(second.adt, second.attribution, domain);
  EXPECT_EQ(xml1, xml2);

  // Structure survives: the shared "phish" step stays one DAG node, and
  // the countermeasure chain re-imports as the same INH nesting.
  EXPECT_EQ(second.adt.size(), first.adt.size());
  EXPECT_EQ(second.adt.parents(second.adt.at("phish")).size(), 2u);
  EXPECT_EQ(second.attribution.get("phish"), 30);
  EXPECT_EQ(second.attribution.get("mfa"), 8);

  // Semantics survive: identical fronts.
  const AugmentedAdt a(first.adt, first.attribution, Semiring::min_cost(),
                       Semiring::min_cost());
  const AugmentedAdt b(second.adt, second.attribution, Semiring::min_cost(),
                       Semiring::min_cost());
  EXPECT_TRUE(bdd_bu_front(a).same_values(bdd_bu_front(b),
                                          a.defender_domain(),
                                          a.attacker_domain()));
}

TEST(AdtoolXmlExport, RandomTreesRoundTrip) {
  // Property: for generated attacker-rooted trees X, with I = import and
  // E = export, E(I(E(X))) == E(X) (textual fixpoint) and the front of
  // I(E(X)) equals X's front. Trees only: shared gates unfold on export.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomAdtOptions options;
    options.target_nodes = 14 + seed % 18;
    options.share_probability = 0.0;
    options.max_defenses = 6;
    options.root_agent = Agent::Attacker;
    const AugmentedAdt aadt = generate_random_aadt(
        options, seed, Semiring::min_cost(), Semiring::min_cost());
    ASSERT_TRUE(aadt.adt().is_tree());

    const std::string xml1 =
        export_adtool_xml(aadt.adt(), aadt.attribution(), "mincost");
    const AdtoolImport imported = import_adtool_xml(xml1);
    const std::string xml2 =
        export_adtool_xml(imported.adt, imported.attribution, "mincost");
    EXPECT_EQ(xml1, xml2) << "seed " << seed;

    const AugmentedAdt reimported(imported.adt, imported.attribution,
                                  Semiring::min_cost(), Semiring::min_cost());
    const Front original = bdd_bu_front(aadt);
    const Front round_tripped = bdd_bu_front(reimported);
    EXPECT_TRUE(round_tripped.approx_same_values(original))
        << "seed " << seed << ": " << round_tripped.to_string() << " vs "
        << original.to_string();
  }
}

TEST(AdtoolXmlExport, SharedBasicStepsKeepSharingAcrossRoundTrip) {
  // DAGs whose only sharing is basic steps are inside ADTool's
  // representable class (repeated labels); the round trip keeps the DAG.
  Adt adt;
  const NodeId phish = adt.add_basic("phish", Agent::Attacker);
  const NodeId creds = adt.add_gate("creds", GateType::Or, Agent::Attacker,
                                    {phish, adt.add_basic("bribe",
                                                          Agent::Attacker)});
  const NodeId session =
      adt.add_gate("session", GateType::Or, Agent::Attacker, {phish});
  adt.set_root(adt.add_gate("root", GateType::And, Agent::Attacker,
                            {creds, session}));
  adt.freeze();
  Attribution beta;
  beta.set("phish", 30);
  beta.set("bribe", 100);

  const std::string xml = export_adtool_xml(adt, beta);
  const AdtoolImport imported = import_adtool_xml(xml);
  EXPECT_FALSE(imported.adt.is_tree());
  EXPECT_EQ(imported.adt.parents(imported.adt.at("phish")).size(), 2u);
  EXPECT_EQ(export_adtool_xml(imported.adt, imported.attribution), xml);
}

TEST(AdtoolXmlExport, NestedInhibitBaseIsWrapped) {
  // INH(INH(a | d) | a2) is not directly representable (a node cannot
  // carry two counter layers); the exporter wraps the inner INH in a
  // singleton disjunctive refinement, which is semantically neutral.
  Adt adt;
  const NodeId a = adt.add_basic("a", Agent::Attacker);
  const NodeId d = adt.add_basic("d", Agent::Defender);
  const NodeId inner = adt.add_inhibit("inner", a, d);
  const NodeId d2 = adt.add_basic("d2", Agent::Defender);
  adt.set_root(adt.add_inhibit("outer", inner, d2));
  adt.freeze();
  Attribution beta;
  beta.set("a", 5);
  beta.set("d", 4);
  beta.set("d2", 8);

  const std::string xml1 = export_adtool_xml(adt, beta);
  const AdtoolImport imported = import_adtool_xml(xml1);
  EXPECT_EQ(export_adtool_xml(imported.adt, imported.attribution), xml1);

  const AugmentedAdt original(adt, beta, Semiring::min_cost(),
                              Semiring::min_cost());
  const AugmentedAdt round_tripped(imported.adt, imported.attribution,
                                   Semiring::min_cost(),
                                   Semiring::min_cost());
  EXPECT_TRUE(bdd_bu_front(round_tripped)
                  .same_values(bdd_bu_front(original),
                               original.defender_domain(),
                               original.attacker_domain()));
}

TEST(AdtoolXmlExport, DefenderRootRejected) {
  Adt adt;
  adt.set_root(adt.add_basic("d", Agent::Defender));
  adt.freeze();
  EXPECT_THROW((void)export_adtool_xml(adt), ModelError);
}

}  // namespace
}  // namespace adtp
