#include "adt/structure.hpp"

#include <gtest/gtest.h>

#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace adtp {
namespace {

/// Reference recursive implementation of Definition 3, used to check the
/// iterative evaluator.
bool reference_eval(const Adt& adt, const BitVec& defense,
                    const BitVec& attack, NodeId v) {
  const Node& n = adt.node(v);
  switch (n.type) {
    case GateType::BasicStep:
      return n.agent == Agent::Attacker ? attack.test(adt.attack_index(v))
                                        : defense.test(adt.defense_index(v));
    case GateType::And: {
      for (NodeId c : n.children) {
        if (!reference_eval(adt, defense, attack, c)) return false;
      }
      return true;
    }
    case GateType::Or: {
      for (NodeId c : n.children) {
        if (reference_eval(adt, defense, attack, c)) return true;
      }
      return false;
    }
    case GateType::Inhibit:
      return reference_eval(adt, defense, attack, n.children[0]) &&
             !reference_eval(adt, defense, attack, n.children[1]);
  }
  return false;
}

TEST(Structure, AndGate) {
  Adt adt;
  const NodeId a = adt.add_basic("a", Agent::Attacker);
  const NodeId b = adt.add_basic("b", Agent::Attacker);
  adt.add_gate("and", GateType::And, Agent::Attacker, {a, b});
  adt.freeze();
  const BitVec d(0);
  EXPECT_FALSE(evaluate_root(adt, d, BitVec::from_string("00")));
  EXPECT_FALSE(evaluate_root(adt, d, BitVec::from_string("10")));
  EXPECT_FALSE(evaluate_root(adt, d, BitVec::from_string("01")));
  EXPECT_TRUE(evaluate_root(adt, d, BitVec::from_string("11")));
}

TEST(Structure, OrGate) {
  Adt adt;
  const NodeId a = adt.add_basic("a", Agent::Attacker);
  const NodeId b = adt.add_basic("b", Agent::Attacker);
  adt.add_gate("or", GateType::Or, Agent::Attacker, {a, b});
  adt.freeze();
  const BitVec d(0);
  EXPECT_FALSE(evaluate_root(adt, d, BitVec::from_string("00")));
  EXPECT_TRUE(evaluate_root(adt, d, BitVec::from_string("10")));
  EXPECT_TRUE(evaluate_root(adt, d, BitVec::from_string("01")));
  EXPECT_TRUE(evaluate_root(adt, d, BitVec::from_string("11")));
}

TEST(Structure, InhGateTruthTable) {
  Adt adt;
  const NodeId a = adt.add_basic("a", Agent::Attacker);
  const NodeId d = adt.add_basic("d", Agent::Defender);
  adt.add_inhibit("inh", a, d);
  adt.freeze();
  // f(INH) = f(inhibited) AND NOT f(trigger).
  EXPECT_FALSE(evaluate_root(adt, BitVec::from_string("0"),
                             BitVec::from_string("0")));
  EXPECT_TRUE(evaluate_root(adt, BitVec::from_string("0"),
                            BitVec::from_string("1")));
  EXPECT_FALSE(evaluate_root(adt, BitVec::from_string("1"),
                             BitVec::from_string("0")));
  EXPECT_FALSE(evaluate_root(adt, BitVec::from_string("1"),
                             BitVec::from_string("1")));
}

TEST(Structure, VectorSizeValidated) {
  Adt adt;
  adt.add_basic("a", Agent::Attacker);
  adt.freeze();
  EXPECT_THROW((void)evaluate_root(adt, BitVec(1), BitVec(1)), ModelError);
  EXPECT_THROW((void)evaluate_root(adt, BitVec(0), BitVec(2)), ModelError);
}

TEST(Structure, Fig2SoftwareUpdateSharedDefense) {
  // In Fig. 2, SU protects both ESV and ACV; DNS disables SU.
  const Adt adt = catalog::fig2_steal_data_adt();
  const std::size_t esv = adt.attack_index(adt.at("ESV"));
  const std::size_t dns = adt.attack_index(adt.at("DNS"));
  const std::size_t sdk = adt.attack_index(adt.at("SDK"));
  const std::size_t su = adt.defense_index(adt.at("SU"));

  BitVec attack(adt.num_attacks());
  BitVec defense(adt.num_defenses());
  attack.set(esv);
  attack.set(sdk);
  // ESV + SDK succeeds with no defenses.
  EXPECT_TRUE(evaluate_root(adt, defense, attack));
  // SU active blocks ESV.
  defense.set(su);
  EXPECT_FALSE(evaluate_root(adt, defense, attack));
  // DNS hijack re-enables the attack.
  attack.set(dns);
  EXPECT_TRUE(evaluate_root(adt, defense, attack));
}

TEST(Structure, Example2NoDefenseResponses) {
  // Example 2: with no defenses, 010 and 001 both succeed on Fig. 3.
  const AugmentedAdt fig3 = catalog::fig3_example();
  const Adt& adt = fig3.adt();
  EXPECT_TRUE(evaluate_root(adt, BitVec::from_string("00"),
                            BitVec::from_string("010")));
  EXPECT_TRUE(evaluate_root(adt, BitVec::from_string("00"),
                            BitVec::from_string("001")));
  EXPECT_FALSE(evaluate_root(adt, BitVec::from_string("00"),
                             BitVec::from_string("000")));
  // With both defenses, 010 fails but 110 succeeds.
  EXPECT_FALSE(evaluate_root(adt, BitVec::from_string("11"),
                             BitVec::from_string("010")));
  EXPECT_TRUE(evaluate_root(adt, BitVec::from_string("11"),
                            BitVec::from_string("110")));
}

TEST(Structure, AttackSucceedsFollowsRootAgent) {
  // Defender-rooted: the attack succeeds when the root evaluates to 0.
  const AugmentedAdt fig4 = catalog::fig4_exponential(2);
  const Adt& adt = fig4.adt();
  // No defenses active: root OR of (d_i AND NOT a_i) is 0 -> success.
  EXPECT_FALSE(evaluate_root(adt, BitVec::from_string("00"),
                             BitVec::from_string("00")));
  EXPECT_TRUE(attack_succeeds(adt, BitVec::from_string("00"),
                              BitVec::from_string("00")));
  // d1 active, no attack: root is 1 -> attack fails.
  EXPECT_TRUE(evaluate_root(adt, BitVec::from_string("10"),
                            BitVec::from_string("00")));
  EXPECT_FALSE(attack_succeeds(adt, BitVec::from_string("10"),
                               BitVec::from_string("00")));
  // d1 active and countered by a1 -> success again.
  EXPECT_TRUE(attack_succeeds(adt, BitVec::from_string("10"),
                              BitVec::from_string("10")));
}

TEST(Structure, EvaluateAllMatchesPerNode) {
  const AugmentedAdt fig3 = catalog::fig3_example();
  const Adt& adt = fig3.adt();
  const BitVec defense = BitVec::from_string("11");
  const BitVec attack = BitVec::from_string("110");
  const auto values = evaluate_all(adt, defense, attack);
  for (NodeId v = 0; v < adt.size(); ++v) {
    EXPECT_EQ(values[v] != 0, evaluate(adt, defense, attack, v)) << v;
  }
}

class StructureRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StructureRandomized, IterativeMatchesRecursiveReference) {
  RandomAdtOptions options;
  options.target_nodes = 40;
  options.share_probability = 0.25;
  const Adt adt = generate_random_adt(options, GetParam());
  Rng rng(GetParam() ^ 0xabcdef);
  StructureEvaluator evaluator(adt);
  for (int trial = 0; trial < 25; ++trial) {
    BitVec defense(adt.num_defenses());
    BitVec attack(adt.num_attacks());
    for (std::size_t i = 0; i < defense.size(); ++i) {
      if (rng.chance(0.5)) defense.set(i);
    }
    for (std::size_t i = 0; i < attack.size(); ++i) {
      if (rng.chance(0.5)) attack.set(i);
    }
    const bool expected =
        reference_eval(adt, defense, attack, adt.root());
    EXPECT_EQ(evaluate_root(adt, defense, attack), expected);
    EXPECT_EQ(evaluator.root_value(defense, attack), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructureRandomized,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace adtp
