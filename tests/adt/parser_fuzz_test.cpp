/// Deterministic fuzz-style robustness tests for the two parsers: random
/// mutations of valid documents (byte flips, truncations, duplications)
/// must either parse successfully or throw a library Error - never crash,
/// hang, or escape with a foreign exception type.

#include <gtest/gtest.h>

#include <string>

#include "adt/adtool_xml.hpp"
#include "adt/text_format.hpp"
#include "gen/catalog.hpp"
#include "util/rng.hpp"

namespace adtp {
namespace {

std::string mutate(const std::string& input, Rng& rng) {
  std::string out = input;
  const int strategy = static_cast<int>(rng.below(4));
  switch (strategy) {
    case 0: {  // flip random bytes
      for (int i = 0; i < 4 && !out.empty(); ++i) {
        out[rng.below(out.size())] =
            static_cast<char>(32 + rng.below(95));
      }
      break;
    }
    case 1: {  // truncate
      if (!out.empty()) out.resize(rng.below(out.size()));
      break;
    }
    case 2: {  // duplicate a random slice into a random position
      if (out.size() > 4) {
        const std::size_t from = rng.below(out.size() - 1);
        const std::size_t len =
            1 + rng.below(std::min<std::size_t>(out.size() - from, 40));
        out.insert(rng.below(out.size()), out.substr(from, len));
      }
      break;
    }
    default: {  // delete a random slice
      if (out.size() > 4) {
        const std::size_t from = rng.below(out.size() - 1);
        const std::size_t len =
            1 + rng.below(std::min<std::size_t>(out.size() - from, 40));
        out.erase(from, len);
      }
      break;
    }
  }
  return out;
}

TEST(ParserFuzz, TextFormatNeverCrashes) {
  const std::string valid = to_text_format(catalog::money_theft_dag());
  Rng rng(0xF002);
  int parsed_ok = 0;
  for (int trial = 0; trial < 1500; ++trial) {
    const std::string input = mutate(valid, rng);
    try {
      (void)parse_adt_text(input);
      ++parsed_ok;
    } catch (const Error&) {
      // Any library error is acceptable.
    }
  }
  // Some mutations (e.g. comment-area flips) must still parse; if none
  // do, the mutator is broken.
  EXPECT_GT(parsed_ok, 0);
}

TEST(ParserFuzz, AdtoolXmlNeverCrashes) {
  const std::string valid = R"(<?xml version="1.0"?>
<adtree><node refinement="disjunctive"><label>root</label>
<node><label>a</label><parameter domainId="c">3</parameter></node>
<node><label>b</label>
  <node switchRole="yes"><label>d</label></node>
</node>
</node></adtree>)";
  Rng rng(0xF003);
  int parsed_ok = 0;
  for (int trial = 0; trial < 1500; ++trial) {
    const std::string input = mutate(valid, rng);
    try {
      (void)import_adtool_xml(input);
      ++parsed_ok;
    } catch (const Error&) {
    }
  }
  EXPECT_GT(parsed_ok, 0);
}

TEST(ParserFuzz, RandomGarbageRejectedCleanly) {
  Rng rng(0xF004);
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage;
    const std::size_t length = rng.below(300);
    for (std::size_t i = 0; i < length; ++i) {
      garbage += static_cast<char>(rng.below(256));
    }
    EXPECT_THROW((void)parse_adt_text(garbage), Error) << "trial " << trial;
    try {
      (void)import_adtool_xml(garbage);
      // A parse succeeding on random bytes is implausible but not unsound
      // per se - it must at least have produced a valid document element.
      FAIL() << "random garbage accepted at trial " << trial;
    } catch (const Error&) {
    }
  }
}

TEST(ParserFuzz, DeeplyNestedXmlDoesNotOverflowQuickly) {
  // 2k nesting levels: the recursive-descent parser must either handle it
  // or fail cleanly (here: it handles it; the converter rejects missing
  // labels at the leaves).
  std::string xml = "<adtree>";
  for (int i = 0; i < 2000; ++i) xml += "<node><label>n</label>";
  for (int i = 0; i < 2000; ++i) xml += "</node>";
  xml += "</adtree>";
  EXPECT_NO_THROW((void)import_adtool_xml(xml));
}

}  // namespace
}  // namespace adtp
