#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace adtp {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double s = watch.seconds();
  EXPECT_GE(s, 0.009);
  EXPECT_LT(s, 5.0);  // generous: CI machines stall
  EXPECT_NEAR(watch.millis(), watch.seconds() * 1e3, 50.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  watch.reset();
  EXPECT_LT(watch.seconds(), 0.005);
}

TEST(Stopwatch, Monotone) {
  Stopwatch watch;
  const double a = watch.seconds();
  const double b = watch.seconds();
  EXPECT_LE(a, b);
}

TEST(Deadline, ExpiresAfterBudget) {
  const Deadline deadline(0.005);
  EXPECT_FALSE(deadline.expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.budget_seconds(), 0.005);
}

TEST(Deadline, NonPositiveBudgetNeverExpires) {
  const Deadline unlimited(0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_FALSE(unlimited.expired());
  const Deadline negative(-1.0);
  EXPECT_FALSE(negative.expired());
}

}  // namespace
}  // namespace adtp
