/// AlignedAllocator must hand out 32-byte-aligned storage through every
/// growth pattern a vector can exercise, and the CPU dispatch policy
/// (util/cpu.hpp) must honor detection clamps and overrides - these two
/// are the foundation the SIMD Pareto kernels stand on.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "util/aligned.hpp"
#include "util/cpu.hpp"

namespace adtp {
namespace {

template <typename T>
bool is_aligned32(const T* p) {
  return reinterpret_cast<std::uintptr_t>(p) % 32 == 0;
}

TEST(AlignedAllocator, VectorStorageIsAlignedThroughGrowth) {
  AlignedVec<double> v;
  for (int i = 0; i < 1000; ++i) {
    v.push_back(static_cast<double>(i));
    ASSERT_TRUE(is_aligned32(v.data())) << "after push " << i;
  }
  v.resize(4096);
  EXPECT_TRUE(is_aligned32(v.data()));
  v.shrink_to_fit();
  EXPECT_TRUE(is_aligned32(v.data()));
  // The elements must survive reallocation untouched.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(v[static_cast<std::size_t>(i)], static_cast<double>(i));
  }
}

TEST(AlignedAllocator, WorksForSmallAndOddSizedTypes) {
  AlignedVec<std::uint8_t> bytes(123, std::uint8_t{7});
  EXPECT_TRUE(is_aligned32(bytes.data()));
  AlignedVec<float> floats(1, 1.5f);
  EXPECT_TRUE(is_aligned32(floats.data()));
}

TEST(AlignedAllocator, RebindsAndComparesEqual) {
  const AlignedAllocator<double> a;
  const AlignedAllocator<float> b(a);  // rebind-style conversion
  EXPECT_TRUE(a == AlignedAllocator<double>());
  EXPECT_FALSE(a != AlignedAllocator<double>());
  (void)b;
}

TEST(CpuDispatch, DetectionIsSaneAndStable) {
  const CpuFeatures f = detect_cpu_features();
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_TRUE(f.sse2);  // architectural baseline
  EXPECT_GE(static_cast<int>(detected_simd_level()),
            static_cast<int>(SimdLevel::Sse2));
#else
  EXPECT_EQ(detected_simd_level(), SimdLevel::Scalar);
#endif
  if (f.avx2) {
    EXPECT_EQ(detected_simd_level(), SimdLevel::Avx2);
  }
  EXPECT_EQ(detected_simd_level(), detected_simd_level());  // cached
  EXPECT_TRUE(simd_level_available(SimdLevel::Scalar));
}

TEST(CpuDispatch, OverrideClampsToDetectionAndRestores) {
  const SimdLevel before = active_simd_level();
  {
    ScopedSimdOverride scalar(SimdLevel::Scalar);
    EXPECT_EQ(active_simd_level(), SimdLevel::Scalar);
  }
  EXPECT_EQ(active_simd_level(), before);
  {
    // Requesting more than the hardware has must degrade, not fault.
    ScopedSimdOverride greedy(SimdLevel::Avx2);
    EXPECT_LE(static_cast<int>(active_simd_level()),
              static_cast<int>(detected_simd_level()));
  }
  EXPECT_EQ(active_simd_level(), before);
}

TEST(CpuDispatch, LevelNamesRoundTrip) {
  EXPECT_STREQ(to_string(SimdLevel::Scalar), "scalar");
  EXPECT_STREQ(to_string(SimdLevel::Sse2), "sse2");
  EXPECT_STREQ(to_string(SimdLevel::Avx2), "avx2");
}

}  // namespace
}  // namespace adtp
