#include "util/table.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/error.hpp"

namespace adtp {
namespace {

TEST(FormatValue, Integers) {
  EXPECT_EQ(format_value(0), "0");
  EXPECT_EQ(format_value(90), "90");
  EXPECT_EQ(format_value(-5), "-5");
  EXPECT_EQ(format_value(1e6), "1000000");
}

TEST(FormatValue, Infinity) {
  EXPECT_EQ(format_value(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_value(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(FormatValue, NaN) {
  EXPECT_EQ(format_value(std::numeric_limits<double>::quiet_NaN()), "nan");
}

TEST(FormatValue, TrimsTrailingZeros) {
  EXPECT_EQ(format_value(0.5), "0.5");
  EXPECT_EQ(format_value(0.25, 4), "0.25");
  EXPECT_EQ(format_value(1.0 / 3.0, 3), "0.333");
}

TEST(FormatSeconds, PicksUnits) {
  EXPECT_EQ(format_seconds(2.5), "2.50 s");
  EXPECT_EQ(format_seconds(0.0032), "3.20 ms");
  EXPECT_EQ(format_seconds(4.2e-6), "4.20 us");
  EXPECT_EQ(format_seconds(8.0e-9), "8.00 ns");
  EXPECT_EQ(format_seconds(std::numeric_limits<double>::infinity()), "n/a");
}

TEST(TextTable, RendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| name   | value |"), std::string::npos);
  EXPECT_NE(text.find("| longer | 22    |"), std::string::npos);
}

TEST(TextTable, RowWidthEnforced) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ModelError);
}

TEST(TextTable, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), ModelError);
}

TEST(TextTable, CsvQuotesSpecials) {
  TextTable t({"k", "v"});
  t.add_row({"plain", "a,b"});
  t.add_row({"quote\"y", "x"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("plain,\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"y\",x"), std::string::npos);
}

TEST(TextTable, AddRowRawFormats) {
  TextTable t({"x", "y"});
  t.add_row_raw({1.0, std::numeric_limits<double>::infinity()});
  EXPECT_NE(t.to_csv().find("1,inf"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace adtp
