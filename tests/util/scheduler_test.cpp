/// \file scheduler_test.cpp
/// \brief Unit + stress tests for the work-stealing TaskScheduler.
///
/// The stress tests here are the ones CI runs under TSan (see
/// .github/workflows/ci.yml, sanitize matrix): they hammer the Chase-Lev
/// deques with randomized DAGs and nested runs, and assert the
/// determinism contract of docs/CONTRACTS.md - identical results at
/// every slot count - at the scheduler level, below any analysis kernel.

#include "util/parallel.hpp"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace adtp {
namespace {

TEST(SchedulerTest, EmptyGraphIsANoOp) {
  TaskScheduler sched(4);
  TaskGraph g;
  const TaskRunStats stats = sched.run(g);
  EXPECT_EQ(stats.tasks, 0u);
  EXPECT_EQ(stats.steals, 0u);
}

TEST(SchedulerTest, SingleChainRunsInOrder) {
  TaskScheduler sched(4);
  std::vector<int> order;
  auto body = [&](unsigned, std::uint32_t arg) {
    order.push_back(static_cast<int>(arg));
  };
  TaskGraph g;
  constexpr int kLen = 64;
  TaskGraph::TaskId prev = 0;
  for (int i = 0; i < kLen; ++i) {
    const TaskGraph::TaskId id = g.add(body, static_cast<std::uint32_t>(i));
    if (i > 0) g.depends(id, prev);
    prev = id;
  }
  const TaskRunStats stats = sched.run(g);
  EXPECT_EQ(stats.tasks, static_cast<std::uint64_t>(kLen));
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kLen));
  for (int i = 0; i < kLen; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, DiamondRespectsDependencies) {
  TaskScheduler sched(4);
  std::atomic<int> top_done{0};
  std::atomic<int> mids_done{0};
  std::atomic<bool> violation{false};

  auto top = [&](unsigned, std::uint32_t) { top_done.store(1); };
  auto mid = [&](unsigned, std::uint32_t) {
    if (top_done.load() != 1) violation.store(true);
    mids_done.fetch_add(1);
  };
  auto bottom = [&](unsigned, std::uint32_t) {
    if (mids_done.load() != 2) violation.store(true);
  };

  TaskGraph g;
  const auto t = g.add(top);
  const auto l = g.add(mid);
  const auto r = g.add(mid, 1);
  const auto b = g.add(bottom);
  g.depends(l, t);
  g.depends(r, t);
  g.depends(b, l);
  g.depends(b, r);
  sched.run(g);
  EXPECT_FALSE(violation.load());
}

TEST(SchedulerTest, WideFanInWaitsForAllPredecessors) {
  TaskScheduler sched(8);
  constexpr int kWide = 200;
  std::atomic<int> done{0};
  std::atomic<int> seen_at_sink{-1};
  auto leaf = [&](unsigned, std::uint32_t) { done.fetch_add(1); };
  auto sink = [&](unsigned, std::uint32_t) { seen_at_sink.store(done.load()); };

  TaskGraph g;
  const auto s = g.add(sink);
  for (int i = 0; i < kWide; ++i) {
    const auto id = g.add(leaf, static_cast<std::uint32_t>(i));
    g.depends(s, id);
  }
  const TaskRunStats stats = sched.run(g);
  EXPECT_EQ(seen_at_sink.load(), kWide);
  EXPECT_EQ(stats.tasks, static_cast<std::uint64_t>(kWide) + 1);
  EXPECT_GE(stats.max_ready_depth, 1u);
}

TEST(SchedulerTest, CycleIsRejectedUpFront) {
  TaskScheduler sched(2);
  std::atomic<int> ran{0};
  auto body = [&](unsigned, std::uint32_t) { ran.fetch_add(1); };
  TaskGraph g;
  const auto a = g.add(body);
  const auto b = g.add(body);
  const auto c = g.add(body);
  g.depends(b, a);
  g.depends(c, b);
  g.depends(a, c);
  EXPECT_THROW(sched.run(g), Error);
  EXPECT_EQ(ran.load(), 0);  // nothing may run on a cyclic graph
}

TEST(SchedulerTest, OutOfRangeEdgeIsRejected) {
  TaskScheduler sched(2);
  auto body = [&](unsigned, std::uint32_t) {};
  TaskGraph g;
  const auto a = g.add(body);
  g.depends(a, 7);  // no task 7
  EXPECT_THROW(sched.run(g), Error);
}

// The rethrown error is the smallest id among the tasks that actually
// threw. Fail-fast abort makes *which* tasks run scheduling-dependent in
// general (a late thrower can abort the graph before an earlier one
// starts), so the two sections pin the two deterministic corners.
TEST(SchedulerTest, SmallestThrowingTaskIdWins) {
  {
    // Width 1: tasks run in ascending id order, so the first (and only)
    // thrower to execute is id 1, every round.
    TaskScheduler sched(1);
    auto body = [&](unsigned, std::uint32_t arg) {
      if (arg % 3 == 1) throw Error("task " + std::to_string(arg));
    };
    TaskGraph g;
    for (std::uint32_t i = 0; i < 100; ++i) g.add(body, i);
    for (int round = 0; round < 20; ++round) {
      try {
        sched.run(g);
        FAIL() << "expected an exception";
      } catch (const Error& e) {
        EXPECT_STREQ(e.what(), "task 1");
      }
    }
  }
  {
    // Width 8, 8 tasks: hold every task in flight until all of them have
    // started, then throw from all 8 - nothing gets abort-skipped, so the
    // tie-break must pick id 0 no matter which slot threw first. (The
    // spin is bounded so a short-spawned pool degrades to a flaky-free
    // subset where 0 still ran first on the driving slot.)
    TaskScheduler sched(8);
    std::atomic<unsigned> started{0};
    auto body = [&](unsigned, std::uint32_t arg) {
      started.fetch_add(1);
      for (int spin = 0; spin < 1'000'000 && started.load() < 8; ++spin) {
        std::this_thread::yield();
      }
      throw Error("task " + std::to_string(arg));
    };
    TaskGraph g;
    for (std::uint32_t i = 0; i < 8; ++i) g.add(body, i);
    for (int round = 0; round < 5; ++round) {
      started.store(0);
      try {
        sched.run(g);
        FAIL() << "expected an exception";
      } catch (const Error& e) {
        EXPECT_STREQ(e.what(), "task 0");
      }
    }
  }
}

TEST(SchedulerTest, GraphDrainsAfterExceptionAndSchedulerStaysUsable) {
  TaskScheduler sched(4);
  auto thrower = [&](unsigned, std::uint32_t) { throw Error("boom"); };
  TaskGraph bad;
  for (int i = 0; i < 32; ++i) bad.add(thrower);
  EXPECT_THROW(sched.run(bad), Error);

  std::atomic<int> ran{0};
  auto counter = [&](unsigned, std::uint32_t) { ran.fetch_add(1); };
  TaskGraph good;
  for (int i = 0; i < 32; ++i) good.add(counter);
  sched.run(good);
  EXPECT_EQ(ran.load(), 32);
}

TEST(SchedulerTest, DependentsOfAThrowingTaskAreSkippedNotRun) {
  TaskScheduler sched(4);
  std::atomic<int> dependent_ran{0};
  auto thrower = [&](unsigned, std::uint32_t) { throw Error("boom"); };
  auto dependent = [&](unsigned, std::uint32_t) { dependent_ran.fetch_add(1); };
  TaskGraph g;
  const auto a = g.add(thrower);
  const auto b = g.add(dependent);
  g.depends(b, a);
  EXPECT_THROW(sched.run(g), Error);
  EXPECT_EQ(dependent_ran.load(), 0);
}

TEST(SchedulerTest, SlotIdsAreDenseAndWithinThreads) {
  TaskScheduler sched(4);
  const unsigned n = sched.threads();
  std::atomic<bool> bad_slot{false};
  auto body = [&](unsigned slot, std::uint32_t) {
    if (slot >= n) bad_slot.store(true);
  };
  TaskGraph g;
  for (int i = 0; i < 512; ++i) g.add(body);
  sched.run(g);
  EXPECT_FALSE(bad_slot.load());
}

TEST(SchedulerTest, ParallelForCoversEveryIndexExactlyOnce) {
  TaskScheduler sched(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  sched.parallel_for(kCount, 7, [&](unsigned, std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(SchedulerTest, RunShardedPartitionsExactly) {
  for (const unsigned shards : {1u, 2u, 5u, 8u}) {
    TaskScheduler pool(shards);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges(shards);
    run_sharded(&pool, shards, 1003,
                [&](unsigned s, std::uint64_t begin, std::uint64_t end) {
                  ranges[s] = {begin, end};
                });
    std::uint64_t expect_begin = 0;
    for (unsigned s = 0; s < shards; ++s) {
      EXPECT_EQ(ranges[s].first, expect_begin) << "shard " << s;
      EXPECT_GE(ranges[s].second, ranges[s].first);
      expect_begin = ranges[s].second;
    }
    EXPECT_EQ(expect_begin, 1003u);
  }
}

TEST(SchedulerTest, NestedRunFromInsideATask) {
  TaskScheduler sched(4);
  std::atomic<int> inner_total{0};
  auto inner = [&](unsigned, std::uint32_t) { inner_total.fetch_add(1); };
  auto outer = [&](unsigned, std::uint32_t) {
    TaskGraph g;
    for (int i = 0; i < 16; ++i) g.add(inner);
    sched.run(g);  // nested: the calling worker helps drain it
  };
  TaskGraph g;
  for (int i = 0; i < 8; ++i) g.add(outer);
  const TaskRunStats stats = sched.run(g);
  EXPECT_EQ(inner_total.load(), 8 * 16);
  EXPECT_EQ(stats.tasks, 8u);
}

TEST(SchedulerTest, RunFromSeveralExternalThreadsSerializes) {
  TaskScheduler sched(4);
  std::atomic<int> total{0};
  auto body = [&](unsigned, std::uint32_t) { total.fetch_add(1); };
  std::vector<std::thread> drivers;
  drivers.reserve(4);
  for (int d = 0; d < 4; ++d) {
    drivers.emplace_back([&] {
      for (int round = 0; round < 8; ++round) {
        TaskGraph g;
        for (int i = 0; i < 32; ++i) g.add(body);
        sched.run(g);
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  EXPECT_EQ(total.load(), 4 * 8 * 32);
}

/// Builds a random DAG whose deterministic "fold" result - every task
/// combines its predecessors' values with a fixed mixing function - must
/// not depend on scheduling. This is the scheduler-level statement of
/// the determinism contract: same graph, same values, any slot count.
std::vector<std::uint64_t> run_random_dag(TaskScheduler& sched,
                                          std::uint32_t seed,
                                          std::uint64_t* steals = nullptr) {
  std::mt19937 rng(seed);
  const int n = 200 + static_cast<int>(rng() % 200);
  std::vector<std::vector<std::uint32_t>> preds(
      static_cast<std::size_t>(n));
  for (int i = 1; i < n; ++i) {
    const int num_preds = static_cast<int>(rng() % 4);
    for (int p = 0; p < num_preds; ++p) {
      preds[static_cast<std::size_t>(i)].push_back(rng() %
                                                   static_cast<unsigned>(i));
    }
  }
  std::vector<std::uint64_t> value(static_cast<std::size_t>(n), 0);
  auto body = [&](unsigned, std::uint32_t arg) {
    std::uint64_t acc = 0x9E3779B97F4A7C15ull * (arg + 1);
    for (const std::uint32_t p : preds[arg]) {
      acc ^= value[p] + 0x2545F4914F6CDD1Dull + (acc << 6) + (acc >> 2);
    }
    value[arg] = acc;
  };
  TaskGraph g;
  for (int i = 0; i < n; ++i) g.add(body, static_cast<std::uint32_t>(i));
  for (int i = 0; i < n; ++i) {
    for (const std::uint32_t p : preds[static_cast<std::size_t>(i)]) {
      g.depends(static_cast<TaskGraph::TaskId>(i), p);
    }
  }
  const TaskRunStats stats = sched.run(g);
  EXPECT_EQ(stats.tasks, static_cast<std::uint64_t>(n));
  if (steals != nullptr) *steals += stats.steals;
  return value;
}

TEST(SchedulerStressTest, RandomDagsFoldDeterministicallyAtEverySlotCount) {
  TaskScheduler baseline(1);
  std::uint64_t steals = 0;
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    const std::vector<std::uint64_t> expect = run_random_dag(baseline, seed);
    for (const unsigned slots : {2u, 4u, 8u}) {
      TaskScheduler sched(slots);
      for (int round = 0; round < 3; ++round) {
        EXPECT_EQ(run_random_dag(sched, seed, &steals), expect)
            << "seed " << seed << " slots " << slots << " round " << round;
      }
    }
  }
  // Not asserted (a 1-core host may never steal), but surfaced so the
  // multi-core CI log shows the stealing path actually ran.
  if (steals == 0) {
    GTEST_LOG_(INFO) << "no steals observed (single-core host?)";
  }
}

TEST(SchedulerStressTest, ManyConcurrentNestedRandomDags) {
  TaskScheduler sched(8);
  TaskScheduler baseline(1);
  std::vector<std::vector<std::uint64_t>> expect;
  expect.reserve(6);
  for (std::uint32_t seed = 100; seed < 106; ++seed) {
    expect.push_back(run_random_dag(baseline, seed));
  }
  std::mutex mismatch_mutex;
  std::vector<std::uint32_t> mismatched;
  auto outer = [&](unsigned, std::uint32_t arg) {
    const std::uint32_t seed = 100 + arg % 6;
    if (run_random_dag(sched, seed) != expect[arg % 6]) {
      const std::lock_guard<std::mutex> lock(mismatch_mutex);
      mismatched.push_back(seed);
    }
  };
  TaskGraph g;
  for (std::uint32_t i = 0; i < 24; ++i) g.add(outer, i);
  sched.run(g);
  EXPECT_TRUE(mismatched.empty());
}

}  // namespace
}  // namespace adtp
