#include "util/json.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/error.hpp"

namespace adtp {
namespace {

TEST(Json, ObjectWithScalars) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("fig5");
  w.key("nodes").value(std::size_t{7});
  w.key("tree").value(true);
  w.key("missing").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"fig5","nodes":7,"tree":true,"missing":null})");
}

TEST(Json, NestedArrays) {
  JsonWriter w;
  w.begin_object();
  w.key("front").begin_array();
  w.begin_array().value(0).value(80).end_array();
  w.begin_array().value(20).value(90).end_array();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"front":[[0,80],[20,90]]})");
}

TEST(Json, DoublesAndSpecials) {
  JsonWriter w;
  w.begin_array();
  w.value(0.5);
  w.value(90.0);  // integral double prints without decimals
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), R"([0.5,90,"inf","-inf",null])");
}

TEST(Json, StringEscaping) {
  JsonWriter w;
  w.value(std::string("a\"b\\c\nd\te") + '\x01');
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(Json, TopLevelScalar) {
  JsonWriter w;
  w.value(42);
  EXPECT_EQ(w.str(), "42");
}

TEST(Json, MisuseDetected) {
  {
    JsonWriter w;
    EXPECT_THROW((void)w.str(), Error);  // nothing written
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), Error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("k");
    EXPECT_THROW(w.key("k2"), Error);  // key twice
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), Error);  // mismatched close
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW((void)w.str(), Error);  // unclosed
  }
  {
    JsonWriter w;
    w.value(1);
    EXPECT_THROW(w.value(2), Error);  // two top-level values
  }
  {
    JsonWriter w;
    EXPECT_THROW(w.key("k"), Error);  // key outside object
  }
}

TEST(JsonReader, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_EQ(parse_json("-2.5e2").as_number(), -250.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_json(R"("a\"b\\c\nA")").as_string(), "a\"b\\c\nA");
}

TEST(JsonReader, ParsesContainers) {
  const JsonValue doc = parse_json(
      R"({"name": "x", "rows": [[1, 2], [3, "inf"]], "ok": true})");
  EXPECT_EQ(doc.at("name").as_string(), "x");
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_FALSE(doc.has("missing"));
  const JsonValue& rows = doc.at("rows");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows.items()[0].items()[1].as_number(), 2.0);
  // The writer's infinity convention decodes through as_metric().
  EXPECT_TRUE(std::isinf(rows.items()[1].items()[1].as_metric()));
  EXPECT_EQ(rows.items()[1].items()[0].as_metric(), 3.0);
}

TEST(JsonReader, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("seconds").value(0.25);
  w.key("count").value(std::uint64_t{7});
  w.key("inf").value(std::numeric_limits<double>::infinity());
  w.key("tags").begin_array().value("a").value("b").end_array();
  w.end_object();
  const JsonValue doc = parse_json(w.str());
  EXPECT_EQ(doc.at("seconds").as_number(), 0.25);
  EXPECT_EQ(doc.at("count").as_number(), 7.0);
  EXPECT_TRUE(std::isinf(doc.at("inf").as_metric()));
  EXPECT_EQ(doc.at("tags").items()[1].as_string(), "b");
}

TEST(JsonReader, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_json(""), ParseError);
  EXPECT_THROW((void)parse_json("{"), ParseError);
  EXPECT_THROW((void)parse_json("[1,]"), ParseError);
  EXPECT_THROW((void)parse_json("{\"a\" 1}"), ParseError);
  EXPECT_THROW((void)parse_json("\"unterminated"), ParseError);
  EXPECT_THROW((void)parse_json("12 34"), ParseError);
  EXPECT_THROW((void)parse_json("nope"), ParseError);
  // Type mismatches throw Error, not garbage.
  EXPECT_THROW((void)parse_json("3").as_string(), Error);
  EXPECT_THROW((void)parse_json("[]").at("x"), Error);
  EXPECT_THROW((void)parse_json("\"nan\"").as_metric(), Error);
}

TEST(JsonReader, MissingFileThrows) {
  EXPECT_THROW((void)load_json_file("/nonexistent/doc.json"), Error);
}

}  // namespace
}  // namespace adtp
