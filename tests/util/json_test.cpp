#include "util/json.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/error.hpp"

namespace adtp {
namespace {

TEST(Json, ObjectWithScalars) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("fig5");
  w.key("nodes").value(std::size_t{7});
  w.key("tree").value(true);
  w.key("missing").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"fig5","nodes":7,"tree":true,"missing":null})");
}

TEST(Json, NestedArrays) {
  JsonWriter w;
  w.begin_object();
  w.key("front").begin_array();
  w.begin_array().value(0).value(80).end_array();
  w.begin_array().value(20).value(90).end_array();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"front":[[0,80],[20,90]]})");
}

TEST(Json, DoublesAndSpecials) {
  JsonWriter w;
  w.begin_array();
  w.value(0.5);
  w.value(90.0);  // integral double prints without decimals
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), R"([0.5,90,"inf","-inf",null])");
}

TEST(Json, StringEscaping) {
  JsonWriter w;
  w.value(std::string("a\"b\\c\nd\te") + '\x01');
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(Json, TopLevelScalar) {
  JsonWriter w;
  w.value(42);
  EXPECT_EQ(w.str(), "42");
}

TEST(Json, MisuseDetected) {
  {
    JsonWriter w;
    EXPECT_THROW((void)w.str(), Error);  // nothing written
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), Error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("k");
    EXPECT_THROW(w.key("k2"), Error);  // key twice
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), Error);  // mismatched close
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW((void)w.str(), Error);  // unclosed
  }
  {
    JsonWriter w;
    w.value(1);
    EXPECT_THROW(w.value(2), Error);  // two top-level values
  }
  {
    JsonWriter w;
    EXPECT_THROW(w.key("k"), Error);  // key outside object
  }
}

}  // namespace
}  // namespace adtp
