/// Fnv1a is the foundation of FrontCache keys: it must match the
/// published FNV-1a vectors, frame variable-length fields so adjacent
/// values cannot alias, and treat the two IEEE zeros as one value (the
/// only double pair the analysis considers equal with distinct bits).

#include <gtest/gtest.h>

#include "util/hash.hpp"

namespace adtp {
namespace {

TEST(Fnv1a, MatchesPublishedVectors) {
  EXPECT_EQ(Fnv1a().digest(), 0xcbf29ce484222325ULL);  // offset basis
  EXPECT_EQ(Fnv1a().bytes("a", 1).digest(), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a().bytes("foobar", 6).digest(), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, IsDeterministicAndOrderSensitive) {
  const auto ab = Fnv1a().u32(1).u32(2).digest();
  EXPECT_EQ(ab, Fnv1a().u32(1).u32(2).digest());
  EXPECT_NE(ab, Fnv1a().u32(2).u32(1).digest());
}

TEST(Fnv1a, StringFramingPreventsAliasing) {
  // Without length framing {"ab","c"} and {"a","bc"} would hash equal.
  EXPECT_NE(Fnv1a().str("ab").str("c").digest(),
            Fnv1a().str("a").str("bc").digest());
}

TEST(Fnv1a, NegativeZeroFoldsOntoPositiveZero) {
  EXPECT_EQ(Fnv1a().f64(-0.0).digest(), Fnv1a().f64(0.0).digest());
  EXPECT_NE(Fnv1a().f64(0.0).digest(), Fnv1a().f64(1.0).digest());
}

TEST(Fnv1a, DistinguishesValueWidths) {
  // u8(1) and u32(1) must not collide (different byte counts feed in).
  EXPECT_NE(Fnv1a().u8(1).digest(), Fnv1a().u32(1).digest());
}

TEST(HashCombine, IsOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

}  // namespace
}  // namespace adtp
