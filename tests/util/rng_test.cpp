#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace adtp {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
  EXPECT_EQ(rng.below(1), 0u);
  EXPECT_EQ(rng.below(0), 0u);  // documented degenerate case
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 5000; ++i) seen[rng.below(10)]++;
  for (int count : seen) EXPECT_GT(count, 300);  // roughly uniform
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool low_seen = false;
  bool high_seen = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    low_seen = low_seen || v == -2;
    high_seen = high_seen || v == 2;
  }
  EXPECT_TRUE(low_seen);
  EXPECT_TRUE(high_seen);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  // The child must not replay the parent's stream.
  Rng b(21);
  (void)b();  // advance to where the parent is
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace adtp
