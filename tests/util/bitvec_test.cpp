#include "util/bitvec.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace adtp {
namespace {

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVec, ConstructedZeroed) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.test(i));
  EXPECT_TRUE(v.none());
}

TEST(BitVec, SetResetTest) {
  BitVec v(70);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(69);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(69));
  EXPECT_FALSE(v.test(1));
  EXPECT_EQ(v.count(), 4u);
  v.reset(63);
  EXPECT_FALSE(v.test(63));
  EXPECT_EQ(v.count(), 3u);
  v.set(0, false);
  EXPECT_FALSE(v.test(0));
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(8);
  EXPECT_THROW((void)v.test(8), std::out_of_range);
  EXPECT_THROW(v.set(100), std::out_of_range);
  EXPECT_THROW((void)BitVec(3).test(64), std::out_of_range);
}

TEST(BitVec, FromStringMatchesPaperNotation) {
  // The paper writes alpha = 011 for "a2 and a3 active, a1 not".
  const BitVec v = BitVec::from_string("011");
  EXPECT_FALSE(v.test(0));
  EXPECT_TRUE(v.test(1));
  EXPECT_TRUE(v.test(2));
  EXPECT_EQ(v.to_string(), "011");
}

TEST(BitVec, FromStringRejectsJunk) {
  EXPECT_THROW(BitVec::from_string("01x"), ModelError);
}

TEST(BitVec, ClearResetsAllBits) {
  BitVec v(100);
  for (std::size_t i = 0; i < 100; i += 7) v.set(i);
  EXPECT_FALSE(v.none());
  v.clear();
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.size(), 100u);
}

TEST(BitVec, SetBitsAscending) {
  BitVec v(130);
  v.set(2);
  v.set(64);
  v.set(129);
  const std::vector<std::size_t> expected{2, 64, 129};
  EXPECT_EQ(v.set_bits(), expected);
}

TEST(BitVec, UnionIntersectionDifference) {
  BitVec a = BitVec::from_string("1100");
  const BitVec b = BitVec::from_string("1010");
  BitVec u = a;
  u |= b;
  EXPECT_EQ(u.to_string(), "1110");
  BitVec i = a;
  i &= b;
  EXPECT_EQ(i.to_string(), "1000");
  BitVec d = a;
  d -= b;
  EXPECT_EQ(d.to_string(), "0100");
}

TEST(BitVec, BinaryOpsRequireSameSize) {
  BitVec a(4);
  const BitVec b(5);
  EXPECT_THROW(a |= b, ModelError);
  EXPECT_THROW(a &= b, ModelError);
  EXPECT_THROW((void)a.is_subset_of(b), ModelError);
}

TEST(BitVec, SubsetAndIntersects) {
  const BitVec a = BitVec::from_string("0110");
  const BitVec b = BitVec::from_string("0111");
  const BitVec c = BitVec::from_string("1000");
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
}

TEST(BitVec, EqualityAndOrdering) {
  const BitVec a = BitVec::from_string("0110");
  BitVec b(4);
  b.set(1);
  b.set(2);
  EXPECT_EQ(a, b);
  b.set(3);
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b);   // 0110 < 0111 word-wise
  EXPECT_FALSE(b < a);
}

TEST(BitVec, ToUintUsesPaperEncoding) {
  // Fig. 4 encodes delta as a binary number with bit 0 most significant.
  EXPECT_EQ(BitVec::from_string("101").to_uint(), 5u);
  EXPECT_EQ(BitVec::from_string("011").to_uint(), 3u);
  EXPECT_EQ(BitVec::from_string("000").to_uint(), 0u);
  EXPECT_EQ(BitVec(0).to_uint(), 0u);
}

TEST(BitVec, ToUintRejectsWideVectors) {
  EXPECT_THROW((void)BitVec(65).to_uint(), ModelError);
}

TEST(BitVec, HashDistinguishesContents) {
  std::unordered_set<BitVec> set;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    BitVec v(97);
    for (std::size_t b = 0; b < 97; ++b) {
      if (rng.chance(0.3)) v.set(b);
    }
    set.insert(v);
  }
  // Overwhelmingly likely all distinct; the set must not collapse them.
  EXPECT_GT(set.size(), 190u);
  // And re-inserting an element must dedupe.
  const std::size_t size = set.size();
  set.insert(*set.begin());
  EXPECT_EQ(set.size(), size);
}

TEST(BitVec, HashIgnoresNothingButContents) {
  BitVec a(64);
  BitVec b(64);
  a.set(13);
  b.set(13);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(14);
  EXPECT_NE(a.hash(), b.hash());  // not guaranteed, but catastrophic if equal
}

TEST(BitVec, SizeMismatchNotEqual) {
  EXPECT_NE(BitVec(3), BitVec(4));
}

}  // namespace
}  // namespace adtp
