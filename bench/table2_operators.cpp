/// Reproduces Table II: the Bottom-Up operator table.
///
/// Prints the table, then *validates* it: for every (gate, agent)
/// combination a family of focused ADTs is generated and the Bottom-Up
/// front is compared against the Naive oracle. Finally an ablation swaps
/// the attacker-coordinate operator of each row and reports how many
/// instances the wrong operator gets wrong - evidence that every entry of
/// the table is load-bearing.

#include <iostream>

#include "bench_common.hpp"
#include "core/bottom_up.hpp"
#include "core/naive.hpp"
#include "gen/random_adt.hpp"
#include "util/table.hpp"

using namespace adtp;

namespace {

struct Row {
  GateType gate;
  Agent agent;
};

constexpr Row kRows[] = {
    {GateType::And, Agent::Attacker}, {GateType::And, Agent::Defender},
    {GateType::Or, Agent::Attacker},  {GateType::Or, Agent::Defender},
    {GateType::Inhibit, Agent::Attacker},
    {GateType::Inhibit, Agent::Defender},
};

void print_table2() {
  bench::banner("Table II: operators applied in the Bottom-Up algorithm");
  TextTable table({"gamma(v)", "tau(v)", "def. op", "att. op"});
  for (const Row& row : kRows) {
    table.add_row({to_string(row.gate), to_string(row.agent), "tensor_D",
                   std::string(to_string(attack_op(row.gate, row.agent)))});
  }
  std::cout << table.to_text();
}

/// Bottom-Up with a swappable attacker operator for one (gate, agent)
/// row; used by both the validation (correct table) and the ablation
/// (swapped operator).
Front bottom_up_with_override(const AugmentedAdt& aadt, const Row& target,
                              bool swap_target_op) {
  const Adt& adt = aadt.adt();
  const Semiring& dd = aadt.defender_domain();
  const Semiring& da = aadt.attacker_domain();
  std::vector<Front> fronts(adt.size());
  for (NodeId v : adt.topological_order()) {
    const Node& n = adt.node(v);
    if (n.type == GateType::BasicStep) {
      if (n.agent == Agent::Attacker) {
        fronts[v] = Front::singleton(
            {dd.one(), aadt.attack_value(adt.attack_index(v))});
      } else {
        fronts[v] = Front::minimized(
            {{dd.one(), da.one()},
             {aadt.defense_value(adt.defense_index(v)), da.zero()}},
            dd, da);
      }
      continue;
    }
    AttackOp op = attack_op(n.type, n.agent);
    if (swap_target_op && n.type == target.gate && n.agent == target.agent) {
      op = op == AttackOp::Combine ? AttackOp::Choose : AttackOp::Combine;
    }
    Front acc = fronts[n.children[0]];
    for (std::size_t i = 1; i < n.children.size(); ++i) {
      acc = combine_fronts(acc, fronts[n.children[i]], op, dd, da);
    }
    fronts[v] = std::move(acc);
  }
  return fronts[adt.root()];
}

void validate_and_ablate() {
  bench::banner(
      "validation + ablation on random trees (100 instances per row)");
  TextTable table({"row", "correct-op mismatches vs naive",
                   "instances with gate present", "swapped-op mismatches"});

  for (const Row& row : kRows) {
    int present = 0;
    int correct_mismatch = 0;
    int swapped_mismatch = 0;
    for (std::uint64_t seed = 1; present < 100 && seed < 3000; ++seed) {
      RandomAdtOptions options;
      options.target_nodes = 14 + seed % 14;
      options.share_probability = 0.0;
      options.max_defenses = 6;
      options.inh_probability = 0.45;  // make INH rows common
      options.root_agent =
          row.agent == Agent::Defender && row.gate != GateType::Inhibit
              ? Agent::Defender
              : Agent::Attacker;
      const AugmentedAdt aadt = generate_random_aadt(
          options, seed * 77 + 5, Semiring::min_cost(), Semiring::min_cost());

      bool has_row_gate = false;
      for (const Node& n : aadt.adt().nodes()) {
        has_row_gate = has_row_gate ||
                       (n.type == row.gate && n.agent == row.agent &&
                        n.children.size() >= 2);
      }
      if (row.gate != GateType::Inhibit && !has_row_gate) continue;
      if (row.gate == GateType::Inhibit) {
        has_row_gate = false;
        for (const Node& n : aadt.adt().nodes()) {
          has_row_gate = has_row_gate ||
                         (n.type == row.gate && n.agent == row.agent);
        }
        if (!has_row_gate) continue;
      }
      ++present;

      const Front oracle = naive_front(aadt);
      if (!bottom_up_with_override(aadt, row, false)
               .approx_same_values(oracle)) {
        ++correct_mismatch;
      }
      if (!bottom_up_with_override(aadt, row, true)
               .approx_same_values(oracle)) {
        ++swapped_mismatch;
      }
    }
    table.add_row({std::string(to_string(row.gate)) + "," +
                       to_string(row.agent),
                   std::to_string(correct_mismatch), std::to_string(present),
                   std::to_string(swapped_mismatch)});
  }
  std::cout << table.to_text();
  std::cout << "\nExpected: 0 mismatches with the correct operator; a "
               "substantial fraction with the swapped operator.\n";
}

}  // namespace

int main() {
  print_table2();
  validate_and_ablate();
  std::cout << "\n[table2_operators] done\n";
  return 0;
}
