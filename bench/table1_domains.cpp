/// Reproduces Table I: the semiring attribute domains.
///
/// Prints the table (with the probability row corrected from the
/// Definition 4 axioms, see DESIGN.md), machine-checks every axiom per
/// domain via randomized probing, and micro-times the semiring operations
/// that dominate the analysis inner loops.

#include <iostream>

#include "bench_common.hpp"
#include "core/semiring.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace adtp;

namespace {

void print_table1() {
  bench::banner("Table I: semiring attribute domains");
  TextTable table({"Metric", "V", "oplus", "tensor", "1_oplus", "1_tensor",
                   "order"});
  table.add_row({"min cost", "[0,inf]", "min", "+", "inf", "0", "<="});
  table.add_row(
      {"min time (sequential)", "[0,inf]", "min", "+", "inf", "0", "<="});
  table.add_row(
      {"min time (parallel)", "[0,inf]", "min", "max", "inf", "0", "<="});
  table.add_row({"min skill", "[0,inf]", "min", "max", "inf", "0", "<="});
  table.add_row({"probability", "[0,1]", "max", "*", "0", "1", ">="});
  std::cout << table.to_text();
}

void check_axioms() {
  bench::banner("Definition 4 axiom check (randomized, 2000 samples each)");
  TextTable table({"domain", "commut.", "assoc.", "monotone", "unit",
                   "1t minimal", "1o maximal", "total order", "ALL"});
  for (SemiringKind kind :
       {SemiringKind::MinCost, SemiringKind::MinTimeSeq,
        SemiringKind::MinTimePar, SemiringKind::MinSkill,
        SemiringKind::Probability}) {
    const Semiring s{kind};
    const auto r = s.check_axioms(/*seed=*/2025, /*samples=*/2000);
    auto yn = [](bool b) { return std::string(b ? "yes" : "NO"); };
    table.add_row({s.name(), yn(r.commutative), yn(r.associative),
                   yn(r.monotone), yn(r.one_is_unit), yn(r.one_minimal),
                   yn(r.zero_maximal), yn(r.order_total), yn(r.all_hold())});
  }
  std::cout << table.to_text();
}

void time_operations() {
  bench::banner("operation micro-timings (1e7 ops, ns/op)");
  TextTable table({"domain", "combine", "choose", "prefer"});
  Rng rng(7);
  std::vector<double> xs(1024);
  constexpr int kOps = 10'000'000;
  for (SemiringKind kind :
       {SemiringKind::MinCost, SemiringKind::MinTimePar,
        SemiringKind::Probability}) {
    const Semiring s{kind};
    for (auto& x : xs) {
      x = kind == SemiringKind::Probability ? rng.uniform()
                                            : double(rng.below(1000));
    }
    volatile double sink = 0;
    const double t_combine = bench::time_call([&] {
      double acc = s.one();
      for (int i = 0; i < kOps; ++i) acc = s.combine(acc, xs[i & 1023]);
      sink = acc;
    });
    const double t_choose = bench::time_call([&] {
      double acc = s.zero();
      for (int i = 0; i < kOps; ++i) acc = s.choose(acc, xs[i & 1023]);
      sink = acc;
    });
    const double t_prefer = bench::time_call([&] {
      long count = 0;
      for (int i = 0; i < kOps; ++i) {
        count += s.prefer(xs[i & 1023], xs[(i + 1) & 1023]);
      }
      sink = double(count);
    });
    (void)sink;
    auto ns = [&](double t) { return format_value(t / kOps * 1e9, 2); };
    table.add_row({s.name(), ns(t_combine), ns(t_choose), ns(t_prefer)});
  }
  std::cout << table.to_text();
}

}  // namespace

int main() {
  print_table1();
  check_axioms();
  time_operations();
  std::cout << "\n[table1_domains] done\n";
  return 0;
}
