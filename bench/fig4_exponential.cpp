/// Reproduces Fig. 4 / Example 4: the worst-case family with |PF| = 2^n.
///
/// For each n the bench builds the defender-rooted AADT of Fig. 4
/// (I_i = INH(d_i | a_i) with weights 2^(i-1) under an OR root), runs all
/// three algorithms, and reports the Pareto-front size (which must equal
/// 2^n = 2^|D|) and the runtimes - demonstrating the unavoidable
/// exponential worst case that motivates Section III-C.

#include <iostream>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "gen/catalog.hpp"
#include "util/table.hpp"

using namespace adtp;

int main(int argc, char** argv) {
  const std::size_t max_n = bench::arg_size_t(argc, argv, "--max-n", 12);
  const std::size_t naive_max = bench::arg_size_t(argc, argv, "--naive-max", 9);

  bench::banner("Fig. 4: |PF(T)| = 2^n worst-case family (min cost / min "
                "cost)");
  TextTable table({"n", "|N|", "|PF|", "= 2^n", "BU time", "BDDBU time",
                   "Naive time"});

  for (std::size_t n = 1; n <= max_n; ++n) {
    const AugmentedAdt aadt = catalog::fig4_exponential(static_cast<int>(n));

    Front bu_front;
    const double t_bu = bench::time_call(
        [&] { bu_front = bottom_up_front(aadt); });

    Front bdd_front;
    const double t_bdd = bench::time_call(
        [&] { bdd_front = bdd_bu_front(aadt); });

    std::string naive_cell = "skipped";
    if (n <= naive_max) {
      Front naive;
      const double t_naive = bench::time_call(
          [&] { naive = naive_front(aadt); });
      naive_cell = format_seconds(t_naive);
      if (naive.size() != bu_front.size()) naive_cell += " (MISMATCH)";
    }

    const bool sizes_ok = bu_front.size() == (std::size_t{1} << n) &&
                          bdd_front.size() == (std::size_t{1} << n);
    table.add_row({std::to_string(n), std::to_string(aadt.adt().size()),
                   std::to_string(bu_front.size()),
                   sizes_ok ? "yes" : "NO", format_seconds(t_bu),
                   format_seconds(t_bdd), naive_cell});
  }
  std::cout << table.to_text();
  std::cout << "\nEvery algorithm is worst-case exponential here: the "
               "front itself has 2^|D| points (all (k, k) are "
               "Pareto-optimal).\n";
  std::cout << "\n[fig4_exponential] done\n";
  return 0;
}
