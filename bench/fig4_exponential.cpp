/// Reproduces Fig. 4 / Example 4: the worst-case family with |PF| = 2^n.
///
/// For each n the bench builds the defender-rooted AADT of Fig. 4
/// (I_i = INH(d_i | a_i) with weights 2^(i-1) under an OR root), runs all
/// three algorithms, and reports the Pareto-front size (which must equal
/// 2^n = 2^|D|), the runtimes, and the combine-engine throughput:
/// points/sec is the rate at which the bottom-up run emitted Pareto
/// points, and "examined" counts the product points the k-way tournament
/// actually popped - the gap to the full cross product is the
/// upper-envelope pruning win on the paper's worst-case family.
///
/// With --json the same rows are written machine-readably (the CI
/// bench-smoke artifact).
///
/// With --bdd-threads T (> 1) every row additionally runs BDDBU with a
/// T-slot work-stealing task-DAG build + propagate, reports the speedup
/// over the sequential run, and verifies the fronts are bit-identical -
/// the single-huge-DAG scaling measurement of the intra-model
/// parallelism work (bench_bdd_scaling covers more shapes).
///
/// Usage: bench_fig4_exponential [--max-n N] [--naive-max N] [--json PATH]
///                               [--bdd-threads T]

#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "gen/catalog.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace adtp;

namespace {

struct Row {
  std::size_t n = 0;
  std::size_t nodes = 0;
  std::size_t pf_size = 0;
  bool sizes_ok = false;
  double bu_seconds = 0;
  double bu_points_per_second = 0;   ///< |PF| / BU time
  std::uint64_t bu_points_examined = 0;
  std::uint64_t bu_kway_combines = 0;
  double bdd_seconds = 0;
  double naive_seconds = -1;  ///< < 0 when skipped
  // --bdd-threads sweep (threads <= 1 leaves these unset).
  unsigned bdd_threads = 1;
  double bdd_par_seconds = -1;      ///< < 0 when the sweep is off
  double bdd_par_speedup = 0;       ///< bdd_seconds / bdd_par_seconds
  std::uint64_t bdd_sched_tasks = 0;
  std::uint64_t bdd_sched_steals = 0;
  bool bdd_par_identical = true;    ///< parallel front == sequential front
};

[[nodiscard]] bool write_json(const std::string& path,
                              const std::vector<Row>& rows) {
  JsonWriter json;
  json.begin_object();
  json.key("bench").value("fig4_exponential");
  json.key("rows").begin_array();
  for (const Row& row : rows) {
    json.begin_object();
    json.key("n").value(static_cast<std::uint64_t>(row.n));
    json.key("nodes").value(static_cast<std::uint64_t>(row.nodes));
    json.key("pf_size").value(static_cast<std::uint64_t>(row.pf_size));
    json.key("sizes_ok").value(row.sizes_ok);
    json.key("bu_seconds").value(row.bu_seconds);
    json.key("bu_points_per_second").value(row.bu_points_per_second);
    json.key("bu_points_examined").value(row.bu_points_examined);
    json.key("bu_kway_combines").value(row.bu_kway_combines);
    json.key("bdd_seconds").value(row.bdd_seconds);
    if (row.naive_seconds >= 0) {
      json.key("naive_seconds").value(row.naive_seconds);
    }
    if (row.bdd_par_seconds >= 0) {
      json.key("bdd_threads").value(static_cast<std::uint64_t>(
          row.bdd_threads));
      json.key("bdd_par_seconds").value(row.bdd_par_seconds);
      json.key("bdd_par_speedup").value(row.bdd_par_speedup);
      json.key("bdd_sched_tasks").value(row.bdd_sched_tasks);
      json.key("bdd_sched_steals").value(row.bdd_sched_steals);
      json.key("bdd_par_identical").value(row.bdd_par_identical);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  std::ofstream out(path);
  out << json.str() << "\n";
  if (!out.good()) {
    std::cerr << "FAILED to write " << path << "\n";
    return false;
  }
  std::cout << "wrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t max_n = bench::arg_size_t(argc, argv, "--max-n", 12);
  const std::size_t naive_max = bench::arg_size_t(argc, argv, "--naive-max", 9);
  const auto json_path = bench::arg_value(argc, argv, "--json");
  const unsigned bdd_threads = static_cast<unsigned>(
      bench::arg_size_t(argc, argv, "--bdd-threads", 1));

  bench::banner("Fig. 4: |PF(T)| = 2^n worst-case family (min cost / min "
                "cost)");
  std::vector<std::string> headers{"n", "|N|", "|PF|", "= 2^n", "BU time",
                                   "BU pts/s", "examined", "BDDBU time",
                                   "Naive time"};
  if (bdd_threads > 1) {
    headers.push_back("BDDBU x" + std::to_string(bdd_threads));
    headers.push_back("speedup");
  }
  TextTable table(headers);

  std::vector<Row> rows;
  for (std::size_t n = 1; n <= max_n; ++n) {
    const AugmentedAdt aadt = catalog::fig4_exponential(static_cast<int>(n));
    Row row;
    row.n = n;
    row.nodes = aadt.adt().size();

    const BottomUpReport bu = bottom_up_analyze(aadt);
    row.bu_seconds = bu.seconds;
    row.pf_size = bu.front.size();
    row.bu_points_per_second =
        bu.seconds > 0 ? static_cast<double>(bu.front.size()) / bu.seconds
                       : 0.0;
    row.bu_points_examined = bu.combine_stats.points_examined;
    row.bu_kway_combines = bu.combine_stats.kway_combines;

    Front bdd_front;
    row.bdd_seconds =
        bench::time_call([&] { bdd_front = bdd_bu_front(aadt); });

    if (bdd_threads > 1) {
      BddBuOptions par;
      par.threads = bdd_threads;
      BddBuReport par_report;
      row.bdd_par_seconds =
          bench::time_call([&] { par_report = bdd_bu_analyze(aadt, par); });
      row.bdd_threads = par_report.threads_used;
      row.bdd_par_speedup = row.bdd_par_seconds > 0
                                ? row.bdd_seconds / row.bdd_par_seconds
                                : 0.0;
      row.bdd_sched_tasks = par_report.sched.tasks;
      row.bdd_sched_steals = par_report.sched.steals;
      // The task-DAG engine's contract: bit-identical fronts.
      row.bdd_par_identical = par_report.front.bit_identical_values(bdd_front);
      if (!row.bdd_par_identical) {
        std::cerr << "MISMATCH: parallel BDDBU diverged at n = " << n << "\n";
      }
    }

    std::string naive_cell = "skipped";
    if (n <= naive_max) {
      Front naive;
      row.naive_seconds = bench::time_call([&] { naive = naive_front(aadt); });
      naive_cell = format_seconds(row.naive_seconds);
      if (naive.size() != bu.front.size()) naive_cell += " (MISMATCH)";
    }

    row.sizes_ok = bu.front.size() == (std::size_t{1} << n) &&
                   bdd_front.size() == (std::size_t{1} << n);
    std::vector<std::string> cells{
        std::to_string(n), std::to_string(row.nodes),
        std::to_string(row.pf_size), row.sizes_ok ? "yes" : "NO",
        format_seconds(row.bu_seconds),
        std::to_string(
            static_cast<std::uint64_t>(row.bu_points_per_second)),
        std::to_string(row.bu_points_examined),
        format_seconds(row.bdd_seconds), naive_cell};
    if (bdd_threads > 1) {
      cells.push_back(format_seconds(row.bdd_par_seconds) +
                      (row.bdd_par_identical ? "" : " (MISMATCH)"));
      cells.push_back(format_value(row.bdd_par_speedup, 2) + "x");
    }
    table.add_row(std::move(cells));
    rows.push_back(row);
  }
  std::cout << table.to_text();
  std::cout << "\nEvery algorithm is worst-case exponential here: the "
               "front itself has 2^|D| points (all (k, k) are "
               "Pareto-optimal).\nThe k-way combine keeps the bottom-up "
               "fold sort-free: 'examined' stays near 2 * |PF| per level "
               "instead of the |PF| * 2 * log sort cost.\n";

  if (json_path && !write_json(*json_path, rows)) return 1;
  // Like bench_bdd_scaling: a parallel front that diverges from the
  // sequential one is a determinism regression - fail the run, not just
  // the table, so CI's thread-sweep step gates on it.
  for (const Row& row : rows) {
    if (!row.bdd_par_identical) return 1;
  }
  std::cout << "\n[fig4_exponential] done\n";
  return 0;
}
