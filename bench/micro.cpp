/// Google-benchmark micro suite: the primitives that dominate the
/// figure-level results (BDD construction, Pareto-front operations,
/// structure-function evaluation) plus end-to-end runs of the three
/// algorithms on the case study and on random models.

#include <benchmark/benchmark.h>

#include <limits>

#include "adt/structure.hpp"
#include "bdd/build.hpp"
#include "core/analyzer.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"

using namespace adtp;

namespace {

AugmentedAdt random_tree(std::size_t nodes, std::uint64_t seed) {
  RandomAdtOptions options;
  options.target_nodes = nodes;
  options.share_probability = 0.0;
  return generate_random_aadt(options, seed, Semiring::min_cost(),
                              Semiring::min_cost());
}

AugmentedAdt random_dag(std::size_t nodes, std::uint64_t seed) {
  RandomAdtOptions options;
  options.target_nodes = nodes;
  options.share_probability = 0.2;
  options.max_defenses = 14;
  return generate_random_aadt(options, seed, Semiring::min_cost(),
                              Semiring::min_cost());
}

void BM_StructureEval(benchmark::State& state) {
  const AugmentedAdt aadt = random_dag(state.range(0), 7);
  StructureEvaluator eval(aadt.adt());
  Rng rng(3);
  BitVec defense(aadt.adt().num_defenses());
  BitVec attack(aadt.adt().num_attacks());
  for (std::size_t i = 0; i < attack.size(); ++i) {
    if (rng.chance(0.5)) attack.set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.root_value(defense, attack));
  }
}
BENCHMARK(BM_StructureEval)->Arg(50)->Arg(150)->Arg(325);

void BM_BddBuild(benchmark::State& state) {
  const AugmentedAdt aadt = random_dag(state.range(0), 11);
  const auto order = bdd::VarOrder::defense_first(aadt.adt());
  for (auto _ : state) {
    bdd::Manager manager(order.num_vars());
    benchmark::DoNotOptimize(
        bdd::build_structure_function(manager, aadt.adt(), order));
  }
}
BENCHMARK(BM_BddBuild)->Arg(50)->Arg(150)->Arg(325);

void BM_ParetoMinimize(benchmark::State& state) {
  const Semiring cost = Semiring::min_cost();
  Rng rng(5);
  std::vector<ValuePoint> points;
  for (int i = 0; i < state.range(0); ++i) {
    points.push_back(ValuePoint{double(rng.below(1000)),
                                double(rng.below(1000))});
  }
  for (auto _ : state) {
    auto copy = points;
    benchmark::DoNotOptimize(
        Front::minimized(std::move(copy), cost, cost));
  }
}
BENCHMARK(BM_ParetoMinimize)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CombineFronts(benchmark::State& state) {
  const Semiring cost = Semiring::min_cost();
  Rng rng(9);
  std::vector<ValuePoint> pts;
  for (int i = 0; i < state.range(0); ++i) {
    // A staircase (both coordinates strictly increasing) so nothing is
    // pruned: the worst case for combine.
    pts.push_back(ValuePoint{double(i), double(i)});
  }
  const Front front = Front::minimized(pts, cost, cost);
  for (auto _ : state) {
    // Copy parity with BM_CombineFrontsArena's accumulator, so the two
    // variants time identical work (copy + combine) and differ only in
    // the allocation strategy.
    Front lhs = front;
    benchmark::DoNotOptimize(
        combine_fronts(lhs, front, AttackOp::Choose, cost, cost));
  }
}
BENCHMARK(BM_CombineFronts)->Arg(16)->Arg(64)->Arg(256);

void BM_CombineFrontsArena(benchmark::State& state) {
  const Semiring cost = Semiring::min_cost();
  std::vector<ValuePoint> pts;
  for (int i = 0; i < state.range(0); ++i) {
    pts.push_back(ValuePoint{double(i), double(i)});
  }
  const Front front = Front::minimized(pts, cost, cost);
  FrontArena<ValuePoint> arena;
  for (auto _ : state) {
    Front acc = front;
    arena.combine_into(acc, front, AttackOp::Choose, cost, cost);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CombineFrontsArena)->Arg(16)->Arg(64)->Arg(256);

// The same workload through the static-dispatch kernels (built-in kinds)
// and through the DynamicDomain fallback (a custom Semiring with the very
// same min-cost operations): the delta is the price of runtime dispatch.
AugmentedAdt with_dynamic_min_cost(const AugmentedAdt& aadt) {
  const Semiring dynamic = Semiring::custom(
      "dynamic mincost", 0.0, std::numeric_limits<double>::infinity(),
      [](double x, double y) { return x + y; },
      [](double x, double y) { return x <= y; });
  return AugmentedAdt(aadt.adt(), aadt.attribution(), dynamic, dynamic);
}

void BM_BottomUpStaticDispatch(benchmark::State& state) {
  const AugmentedAdt tree = random_tree(state.range(0), 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bottom_up_front(tree));
  }
}
BENCHMARK(BM_BottomUpStaticDispatch)->Arg(150)->Arg(325);

void BM_BottomUpDynamicDispatch(benchmark::State& state) {
  const AugmentedAdt tree = with_dynamic_min_cost(random_tree(state.range(0),
                                                              13));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bottom_up_front(tree));
  }
}
BENCHMARK(BM_BottomUpDynamicDispatch)->Arg(150)->Arg(325);

void BM_BddBuStaticDispatch(benchmark::State& state) {
  const AugmentedAdt dag = random_dag(state.range(0), 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bdd_bu_front(dag));
  }
}
BENCHMARK(BM_BddBuStaticDispatch)->Arg(100)->Arg(150);

void BM_BddBuDynamicDispatch(benchmark::State& state) {
  const AugmentedAdt dag = with_dynamic_min_cost(random_dag(state.range(0),
                                                            17));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bdd_bu_front(dag));
  }
}
BENCHMARK(BM_BddBuDynamicDispatch)->Arg(100)->Arg(150);

void BM_NaiveStaticDispatch(benchmark::State& state) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive_front(dag));
  }
}
BENCHMARK(BM_NaiveStaticDispatch);

void BM_NaiveDynamicDispatch(benchmark::State& state) {
  const AugmentedAdt dag = with_dynamic_min_cost(catalog::money_theft_dag());
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive_front(dag));
  }
}
BENCHMARK(BM_NaiveDynamicDispatch);

void BM_BottomUpMoneyTheft(benchmark::State& state) {
  const AugmentedAdt tree = catalog::money_theft_tree();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bottom_up_front(tree));
  }
}
BENCHMARK(BM_BottomUpMoneyTheft);

void BM_BddBuMoneyTheft(benchmark::State& state) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bdd_bu_front(dag));
  }
}
BENCHMARK(BM_BddBuMoneyTheft);

void BM_NaiveMoneyTheft(benchmark::State& state) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive_front(dag));
  }
}
BENCHMARK(BM_NaiveMoneyTheft);

void BM_BottomUpRandomTree(benchmark::State& state) {
  const AugmentedAdt tree = random_tree(state.range(0), 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bottom_up_front(tree));
  }
}
BENCHMARK(BM_BottomUpRandomTree)->Arg(50)->Arg(150)->Arg(325);

void BM_BddBuRandomDag(benchmark::State& state) {
  const AugmentedAdt dag = random_dag(state.range(0), 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bdd_bu_front(dag));
  }
}
BENCHMARK(BM_BddBuRandomDag)->Arg(50)->Arg(100)->Arg(150);

void BM_GenerateRandomAdt(benchmark::State& state) {
  RandomAdtOptions options;
  options.target_nodes = state.range(0);
  options.share_probability = 0.2;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_random_adt(options, seed++));
  }
}
BENCHMARK(BM_GenerateRandomAdt)->Arg(50)->Arg(325);

// ---- sort path vs k-way path on general (non-singleton) combines -------
//
// Both variants run on the static MinCostDomain policies (the only ones
// eligible for the sort-free path), on the two shapes that dominate the
// Fig. 4 family: the root fold of a 2^k-point staircase with a 2-point
// defense front, and the combination of two long incomparable staircases.

Front fig4_staircase(int n) {
  std::vector<ValuePoint> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back(ValuePoint{double(i), double(i)});
  }
  return Front::minimized(std::move(pts), MinCostDomain{}, MinCostDomain{});
}

void BM_CombineFig4StepSortPath(benchmark::State& state) {
  const MinCostDomain dom;
  const Front acc = fig4_staircase(state.range(0));
  const Front step = Front::minimized(
      {ValuePoint{0, double(state.range(0))},
       ValuePoint{double(state.range(0)),
                  std::numeric_limits<double>::infinity()}},
      dom, dom);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        combine_fronts_sorted(acc, step, AttackOp::Combine, dom, dom));
  }
}
BENCHMARK(BM_CombineFig4StepSortPath)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_CombineFig4StepKWay(benchmark::State& state) {
  const MinCostDomain dom;
  const Front acc = fig4_staircase(state.range(0));
  const Front step = Front::minimized(
      {ValuePoint{0, double(state.range(0))},
       ValuePoint{double(state.range(0)),
                  std::numeric_limits<double>::infinity()}},
      dom, dom);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        combine_fronts_kway(acc, step, AttackOp::Combine, dom, dom));
  }
}
BENCHMARK(BM_CombineFig4StepKWay)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_CombineStaircasePairSortPath(benchmark::State& state) {
  const MinCostDomain dom;
  const Front lhs = fig4_staircase(state.range(0));
  const Front rhs = fig4_staircase(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        combine_fronts_sorted(lhs, rhs, AttackOp::Choose, dom, dom));
  }
}
BENCHMARK(BM_CombineStaircasePairSortPath)->Arg(64)->Arg(256)->Arg(1024);

void BM_CombineStaircasePairKWay(benchmark::State& state) {
  const MinCostDomain dom;
  const Front lhs = fig4_staircase(state.range(0));
  const Front rhs = fig4_staircase(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        combine_fronts_kway(lhs, rhs, AttackOp::Choose, dom, dom));
  }
}
BENCHMARK(BM_CombineStaircasePairKWay)->Arg(64)->Arg(256)->Arg(1024);

// ---- sharded naive enumeration ------------------------------------------

/// A 2^14-delta model kept cheap on the attack side: 14 defenses, each
/// inhibiting one of 6 shared attacks, under a defender-rooted OR (the
/// Fig. 4 shape with a shared attack layer; a DAG, so only naive and
/// BDDBU apply).
AugmentedAdt sharded_naive_model() {
  Adt adt;
  Attribution beta;
  std::vector<NodeId> attacks;
  for (int j = 0; j < 6; ++j) {
    const std::string name = "a" + std::to_string(j);
    attacks.push_back(adt.add_basic(name, Agent::Attacker));
    beta.set(name, j + 1.0);
  }
  std::vector<NodeId> gates;
  for (int i = 0; i < 14; ++i) {
    const std::string name = "d" + std::to_string(i);
    const NodeId d = adt.add_basic(name, Agent::Defender);
    beta.set(name, i + 1.0);
    gates.push_back(
        adt.add_inhibit("I" + std::to_string(i), d, attacks[i % 6]));
  }
  adt.set_root(adt.add_gate("top", GateType::Or, Agent::Defender,
                            std::move(gates)));
  adt.freeze();
  return AugmentedAdt(std::move(adt), std::move(beta), Semiring::min_cost(),
                      Semiring::min_cost());
}

void BM_NaiveSharded(benchmark::State& state) {
  const AugmentedAdt model = sharded_naive_model();
  NaiveOptions options;
  options.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive_front(model, options));
  }
}
BENCHMARK(BM_NaiveSharded)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Fig4BottomUp(benchmark::State& state) {
  const AugmentedAdt fig4 =
      catalog::fig4_exponential(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bottom_up_front(fig4));
  }
}
BENCHMARK(BM_Fig4BottomUp)->Arg(4)->Arg(8)->Arg(10);

// ---- level-parallel BDD engine ------------------------------------------
//
// The Fig. 4 family at n = 14 is the acceptance workload of the
// level-parallel propagate: ~3 * 2^n BDD nodes, levels up to 2^(n-1)
// wide, exponential fronts at the defense levels. Thread counts beyond
// the machine's cores still run (and stay bit-identical) but cannot
// speed up further.

void BM_BddPropagateThreads(benchmark::State& state) {
  const AugmentedAdt fig4 = catalog::fig4_exponential(14);
  BddBuOptions options;
  options.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    const BddBuReport report = bdd_bu_analyze(fig4, options);
    benchmark::DoNotOptimize(report.front.size());
    state.counters["propagate_s"] = report.propagate_seconds;
    state.counters["build_s"] = report.build_seconds;
  }
}
BENCHMARK(BM_BddPropagateThreads)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BddBuildThreads(benchmark::State& state) {
  // Construction-heavy shape: a large shared DAG, fronts stay small.
  const AugmentedAdt dag = random_dag(400, 23);
  const auto order = bdd::VarOrder::defense_first(dag.adt());
  bdd::BuildOptions options;
  options.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    bdd::Manager manager(order.num_vars());
    benchmark::DoNotOptimize(
        bdd::build_structure_function(manager, dag.adt(), order, options));
  }
}
BENCHMARK(BM_BddBuildThreads)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// ---- SIMD Pareto kernels -------------------------------------------------
//
// Scalar-vs-vector suites for the batch kernels behind util/cpu.hpp's
// runtime dispatch. Every suite is parameterized by the dispatch level
// (second arg: 0 = scalar, 1 = sse2, 2 = avx2) through a scoped override,
// so one binary measures all levels the CPU offers; levels the CPU lacks
// are skipped, not faked. The inputs are all-keep staircases - nothing is
// pruned, so the timed work is pure kernel throughput, and the scalar and
// vector paths do identical (bit-identical, per the test suites) work.

bool simd_level_ready(benchmark::State& state, SimdLevel& level) {
  level = static_cast<SimdLevel>(state.range(1));
  if (!simd_level_available(level)) {
    state.SkipWithError("SIMD level not available on this CPU");
    return false;
  }
  return true;
}

std::vector<ValuePoint> keep_all_staircase(int n, double offset = 0.0,
                                           double stride = 1.0) {
  std::vector<ValuePoint> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back(ValuePoint{offset + stride * i, offset + stride * i});
  }
  return pts;
}

void BM_DominanceBatch(benchmark::State& state) {
  SimdLevel level;
  if (!simd_level_ready(state, level)) return;
  const ScopedSimdOverride simd(level);
  const MinCostDomain dom;
  const Front front =
      Front::from_staircase(keep_all_staircase(state.range(0)));
  // Non-dominated queries (def below every front point), so every call
  // scans the whole front: the kernel's worst case.
  std::vector<ValuePoint> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(ValuePoint{-1.0 - i, double(i)});
  }
  for (auto _ : state) {
    for (const ValuePoint& q : queries) {
      benchmark::DoNotOptimize(front_dominates_point(front, q, dom, dom));
    }
  }
  state.SetItemsProcessed(state.iterations() * queries.size() *
                          front.size());
}
BENCHMARK(BM_DominanceBatch)
    ->ArgsProduct({{64, 1024, 16384}, {0, 1, 2}})
    ->ArgNames({"n", "simd"});

void BM_StaircaseSweep(benchmark::State& state) {
  SimdLevel level;
  if (!simd_level_ready(state, level)) return;
  const ScopedSimdOverride simd(level);
  const MinCostDomain dom;
  // Already minimal, so the sweep keeps every point and never moves one:
  // the buffer can be reused across iterations without a per-iteration
  // copy polluting the measurement.
  std::vector<ValuePoint> points = keep_all_staircase(state.range(0));
  for (auto _ : state) {
    detail::staircase_sweep_in_place(points, dom, dom);
    benchmark::DoNotOptimize(points.data());
  }
  state.SetItemsProcessed(state.iterations() * points.size());
}
BENCHMARK(BM_StaircaseSweep)
    ->ArgsProduct({{256, 4096, 65536}, {0, 1, 2}})
    ->ArgNames({"n", "simd"});

void BM_StaircaseMerge(benchmark::State& state) {
  SimdLevel level;
  if (!simd_level_ready(state, level)) return;
  const ScopedSimdOverride simd(level);
  const MinCostDomain dom;
  const int n = static_cast<int>(state.range(0));
  // Alternating sources: every point survives and the take-a/take-b runs
  // are as short as they can get - the merge kernel's worst case.
  const std::vector<ValuePoint> a = keep_all_staircase(n, 0.0, 2.0);
  const std::vector<ValuePoint> b = keep_all_staircase(n, 1.0, 2.0);
  std::vector<ValuePoint> out;
  for (auto _ : state) {
    detail::pareto_merge_staircases(a, b, out, dom, dom);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_StaircaseMerge)
    ->ArgsProduct({{256, 4096, 65536}, {0, 1, 2}})
    ->ArgNames({"n", "simd"});

void BM_StaircaseMergeRuns(benchmark::State& state) {
  SimdLevel level;
  if (!simd_level_ready(state, level)) return;
  const ScopedSimdOverride simd(level);
  const MinCostDomain dom;
  const int n = static_cast<int>(state.range(0));
  // Block-interleaved sources (runs of 32): the galloping fast path.
  std::vector<ValuePoint> a, b;
  for (int j = 0; j < 2 * n; ++j) {
    ((j / 32) % 2 == 0 ? a : b).push_back(ValuePoint{double(j), double(j)});
  }
  std::vector<ValuePoint> out;
  for (auto _ : state) {
    detail::pareto_merge_staircases(a, b, out, dom, dom);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_StaircaseMergeRuns)
    ->ArgsProduct({{256, 4096, 65536}, {0, 1, 2}})
    ->ArgNames({"n", "simd"});

void BM_CombineKWaySingleton(benchmark::State& state) {
  SimdLevel level;
  if (!simd_level_ready(state, level)) return;
  const ScopedSimdOverride simd(level);
  const MinCostDomain dom;
  // Singleton x long staircase under tensor_A: the tournament collapses
  // immediately and the whole combine runs in the vector endgame (the
  // leaf-fold shape that dominates bottom-up propagation).
  const Front single = Front::from_staircase({ValuePoint{0.0, 0.0}});
  const Front staircase =
      Front::from_staircase(keep_all_staircase(state.range(0)));
  FrontArena<ValuePoint> arena;
  for (auto _ : state) {
    Front acc = single;
    arena.combine_into(acc, staircase, AttackOp::Combine, dom, dom);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * staircase.size());
}
BENCHMARK(BM_CombineKWaySingleton)
    ->ArgsProduct({{1024, 16384}, {0, 1, 2}})
    ->ArgNames({"n", "simd"});

}  // namespace

/// BENCHMARK_MAIN plus CPU-feature context lines, so every --json report
/// records which ISA the numbers were measured on (the BENCH_*.json
/// trajectory spans machines with different vector units).
int main(int argc, char** argv) {
  const CpuFeatures features = detect_cpu_features();
  benchmark::AddCustomContext("cpu_sse2", features.sse2 ? "true" : "false");
  benchmark::AddCustomContext("cpu_avx2", features.avx2 ? "true" : "false");
  benchmark::AddCustomContext("cpu_avx512f",
                              features.avx512f ? "true" : "false");
  benchmark::AddCustomContext("simd_detected",
                              to_string(detected_simd_level()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
