/// Store-restart bench: cold analysis of a random fleet vs a store-warm
/// "process restart" served from the persistent front store, the
/// daemon's recovery path (examples/serving_daemon.cpp) in bench form.
///
/// Cold: a fresh PersistentFrontCache over an empty directory analyzes
/// every model once (every result is persisted on the way). Warm: a new
/// cache over the same directory - recovery scan included in the timing -
/// serves the identical fleet again. The bench exits nonzero if any warm
/// item is not a cache hit, if any warm front is not bit-identical to the
/// cold run (contract 5, docs/CONTRACTS.md), or if the warm speedup falls
/// below --min-speedup (0 disables the gate).
///
/// Usage: bench_store_restart [--count N] [--nodes N] [--threads T]
///                            [--repeats R] [--min-speedup S] [--json PATH]
///
/// CI runs this in bench-smoke; BENCH_9.json pins a reference run.

#include <cstdint>
#include <memory>
#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/batch.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"
#include "store/persistent_cache.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace adtp;

namespace {

/// A scratch store directory under the system temp dir, removed on exit.
struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("adtp_bench_store_" + tag + "_" +
              std::to_string(::getpid()))) {
    std::filesystem::remove_all(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::filesystem::path path;
};

struct BenchResult {
  double cold_seconds = 0;
  double warm_seconds = 0;      ///< median over --repeats restarts
  double recovery_seconds = 0;  ///< median store open + scan alone
  double speedup = 0;
  bool identical = true;
  bool all_hits = true;
  std::uint64_t entries_recovered = 0;
  std::uint64_t store_hits = 0;
};

[[nodiscard]] bool write_json(const std::string& path, std::size_t count,
                              std::size_t nodes, unsigned threads,
                              const BenchResult& r) {
  JsonWriter json;
  json.begin_object();
  json.key("bench").value("store_restart");
  json.key("count").value(static_cast<std::uint64_t>(count));
  json.key("nodes").value(static_cast<std::uint64_t>(nodes));
  json.key("threads").value(static_cast<std::uint64_t>(threads));
  json.key("cold_seconds").value(r.cold_seconds);
  json.key("warm_seconds").value(r.warm_seconds);
  json.key("recovery_seconds").value(r.recovery_seconds);
  json.key("speedup").value(r.speedup);
  json.key("identical").value(r.identical);
  json.key("entries_recovered").value(r.entries_recovered);
  json.key("store_hits").value(r.store_hits);
  json.key("warm_hit_rate").value(r.all_hits ? 1.0 : 0.0);
  json.end_object();
  std::ofstream out(path);
  out << json.str() << "\n";
  if (!out.good()) {
    std::cerr << "FAILED to write " << path << "\n";
    return false;
  }
  std::cout << "wrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t count = bench::arg_size_t(argc, argv, "--count", 24);
  const std::size_t nodes = bench::arg_size_t(argc, argv, "--nodes", 45);
  const unsigned threads =
      static_cast<unsigned>(bench::arg_size_t(argc, argv, "--threads", 4));
  const std::size_t repeats = bench::arg_size_t(argc, argv, "--repeats", 3);
  const double min_speedup =
      std::stod(bench::arg_value(argc, argv, "--min-speedup").value_or("3"));
  const auto json_path = bench::arg_value(argc, argv, "--json");

  bench::banner("Store-warm restart vs cold analysis (persistent front store)");
  bench::assert_kernel_guards(catalog::fig3_example());

  RandomAdtOptions gen;
  gen.target_nodes = nodes;
  gen.share_probability = 0.25;
  gen.max_defenses = 12;
  std::vector<AugmentedAdt> fleet;
  for (std::uint64_t seed = 1; seed <= count; ++seed) {
    fleet.push_back(generate_random_aadt(gen, seed, Semiring::min_cost(),
                                         Semiring::min_cost()));
  }
  std::cout << "fleet: " << count << " random models of ~" << nodes
            << " nodes, " << threads << " batch thread(s), " << repeats
            << " warm restart(s)\n\n";

  const ScratchDir dir("restart");
  store::PersistentCacheOptions cache_options;
  cache_options.memory_capacity = 2 * count;

  BenchResult result;
  BatchReport cold;
  {
    store::PersistentFrontCache cache(dir.path.string(), cache_options);
    if (!cache.persistent()) {
      std::cerr << "FAILED: store did not open under " << dir.path << "\n";
      return 1;
    }
    BatchOptions batch;
    batch.cache = &cache;
    batch.n_threads = threads;
    result.cold_seconds =
        bench::time_call([&] { cold = analyze_batch(fleet, {}, batch); });
    if (cold.failures != 0) {
      std::cerr << "FAILED: " << cold.failures << " cold item(s) failed\n";
      return 1;
    }
    if (cache.persistence_stats().store_writes != count) {
      std::cerr << "FAILED: only " << cache.persistence_stats().store_writes
                << "/" << count << " fronts persisted\n";
      return 1;
    }
  }

  // Warm restarts: each repeat is a fresh "process" over the same
  // directory - construction (recovery scan) plus the warm serve are both
  // inside the timed window, because a restarting daemon pays both.
  std::vector<double> warm_times;
  std::vector<double> recovery_times;
  for (std::size_t r = 0; r < repeats; ++r) {
    BatchReport warm;
    std::unique_ptr<store::PersistentFrontCache> cache_ptr;
    const double total = bench::time_call([&] {
      recovery_times.push_back(bench::time_call([&] {
        cache_ptr = std::make_unique<store::PersistentFrontCache>(
            dir.path.string(), cache_options);
      }));
      BatchOptions batch;
      batch.cache = cache_ptr.get();
      batch.n_threads = threads;
      warm = analyze_batch(fleet, {}, batch);
    });
    warm_times.push_back(total);

    store::PersistentFrontCache& cache = *cache_ptr;
    if (!cache.persistent() || !cache.recovery().has_value()) {
      std::cerr << "FAILED: warm restart " << r << " found no store\n";
      return 1;
    }
    result.entries_recovered = cache.recovery()->entries_recovered;
    result.store_hits = cache.persistence_stats().store_hits;
    if (result.entries_recovered != count) {
      std::cerr << "FAILED: restart " << r << " recovered "
                << result.entries_recovered << "/" << count << " entries\n";
      return 1;
    }
    if (warm.failures != 0 || warm.cache_hits != count) {
      result.all_hits = false;
      std::cerr << "FAILED: restart " << r << " served " << warm.cache_hits
                << "/" << count << " from cache\n";
    }
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      if (!warm.items[i].result.front.bit_identical_values(
              cold.items[i].result.front)) {
        result.identical = false;
        std::cerr << "MISMATCH: restart " << r << " item " << i
                  << ": store-warm front differs from cold analysis\n";
      }
    }

  }

  result.warm_seconds = bench::median(warm_times);
  result.recovery_seconds = bench::median(recovery_times);
  result.speedup = result.warm_seconds > 0
                       ? result.cold_seconds / result.warm_seconds
                       : 0.0;

  TextTable table({"phase", "median time", "speedup"});
  table.add_row({"cold analysis + persist", format_seconds(result.cold_seconds),
                 "1.00x"});
  table.add_row({"warm restart (recover + serve)",
                 format_seconds(result.warm_seconds),
                 format_value(result.speedup, 2) + "x"});
  table.add_row({"  of which recovery scan",
                 format_seconds(result.recovery_seconds), "-"});
  std::cout << table.to_text();
  std::cout << "\nEvery warm item is a store hit decoded from disk; the "
               "speedup is analysis cost avoided by the crash-safe store "
               "across a process restart.\n";

  if (json_path && !write_json(*json_path, count, nodes, threads, result)) {
    return 1;
  }
  if (!result.identical || !result.all_hits) return 1;
  if (min_speedup > 0 && result.speedup < min_speedup) {
    std::cerr << "FAILED: warm-restart speedup " << result.speedup
              << "x below the --min-speedup bar " << min_speedup << "x\n";
    return 1;
  }
  std::cout << "\n[store_restart] done\n";
  return 0;
}
