/// Batch-serving throughput: how many models per second the serving layer
/// sustains at 1, 2, 4, and 8 worker threads - the many-scenarios workload
/// analyze_batch() exists for. For every thread count the fleet is served
/// twice against a shared FrontCache: a cold pass (every front computed)
/// and a warm pass (every repeated (model, attribution) pair memoized), so
/// the table shows both the compute rate and the serving rate. The stream
/// column is the mean completion latency of the cold pass - how long after
/// batch start the average item became available to the on_item consumer.
///
/// With --json/--csv the same rows are written machine-readably (the CI
/// bench-smoke artifact; BENCH_*.json accumulates the perf trajectory).
///
/// Usage: bench_batch_throughput [--count N] [--nodes N] [--dag P]
///                               [--seed S] [--repeats R] [--cache N]
///                               [--json PATH] [--csv PATH]

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/batch.hpp"
#include "core/front_cache.hpp"
#include "gen/random_adt.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace adtp;

namespace {

struct Row {
  unsigned threads = 0;
  double cold_seconds = 0;
  double warm_seconds = 0;
  double trees_per_second = 0;  ///< cold pass, completed models only
  double items_per_second = 0;  ///< cold pass, all items
  double speedup = 0;           ///< cold rate vs the 1-thread cold rate
  double hit_rate = 0;          ///< warm pass cache hits / items
  double mean_stream_latency = 0;  ///< cold pass, seconds after batch start
  std::size_t failures = 0;        ///< cold pass
};

[[nodiscard]] bool write_json(const std::string& path, std::size_t count,
                              std::size_t nodes, double dag,
                              std::size_t cache_capacity,
                              const std::vector<Row>& rows) {
  JsonWriter json;
  json.begin_object();
  json.key("bench").value("batch_throughput");
  json.key("count").value(static_cast<std::uint64_t>(count));
  json.key("nodes").value(static_cast<std::uint64_t>(nodes));
  json.key("dag_probability").value(dag);
  json.key("cache_capacity").value(static_cast<std::uint64_t>(cache_capacity));
  json.key("rows").begin_array();
  for (const Row& row : rows) {
    json.begin_object();
    json.key("threads").value(static_cast<std::uint64_t>(row.threads));
    json.key("cold_seconds").value(row.cold_seconds);
    json.key("warm_seconds").value(row.warm_seconds);
    json.key("trees_per_second").value(row.trees_per_second);
    json.key("items_per_second").value(row.items_per_second);
    json.key("speedup").value(row.speedup);
    json.key("cache_hit_rate").value(row.hit_rate);
    json.key("mean_stream_latency_seconds").value(row.mean_stream_latency);
    json.key("failures").value(static_cast<std::uint64_t>(row.failures));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  std::ofstream out(path);
  out << json.str() << "\n";
  if (!out.good()) {
    std::cerr << "FAILED to write " << path << "\n";
    return false;
  }
  std::cout << "wrote " << path << "\n";
  return true;
}

[[nodiscard]] bool write_csv(const std::string& path,
                             const std::vector<Row>& rows) {
  std::ofstream out(path);
  out << "threads,cold_seconds,warm_seconds,trees_per_second,"
         "items_per_second,speedup,cache_hit_rate,"
         "mean_stream_latency_seconds,failures\n";
  for (const Row& row : rows) {
    char line[256];
    std::snprintf(line, sizeof(line), "%u,%.6f,%.6f,%.1f,%.1f,%.2f,%.3f,%.6f,%zu\n",
                  row.threads, row.cold_seconds, row.warm_seconds,
                  row.trees_per_second, row.items_per_second, row.speedup,
                  row.hit_rate, row.mean_stream_latency, row.failures);
    out << line;
  }
  if (!out.good()) {
    std::cerr << "FAILED to write " << path << "\n";
    return false;
  }
  std::cout << "wrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t count = bench::arg_size_t(argc, argv, "--count", 64);
  const std::size_t nodes = bench::arg_size_t(argc, argv, "--nodes", 100);
  const std::size_t repeats = bench::arg_size_t(argc, argv, "--repeats", 3);
  const std::size_t cache_capacity =
      bench::arg_size_t(argc, argv, "--cache", 256);
  const double dag_probability =
      bench::arg_value(argc, argv, "--dag")
          ? std::stod(*bench::arg_value(argc, argv, "--dag"))
          : 0.2;
  const std::uint64_t seed = bench::arg_size_t(argc, argv, "--seed", 1);

  bench::banner("batch serving throughput (" + std::to_string(count) +
                " models, ~" + std::to_string(nodes) + " nodes, cache " +
                std::to_string(cache_capacity) + ")");

  std::vector<AugmentedAdt> fleet;
  fleet.reserve(count);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    RandomAdtOptions options;
    options.target_nodes = nodes;
    options.share_probability = dag_probability;
    options.max_defenses = 14;
    fleet.push_back(generate_random_aadt(options, rng(), Semiring::min_cost(),
                                         Semiring::min_cost()));
  }

  AnalysisOptions analysis;
  analysis.bdd.node_limit = 8u << 20;
  analysis.bdd.max_front_points = 200000;

  FrontCache cache(cache_capacity);
  std::vector<Row> rows;
  double base_rate = 0;
  TextTable table({"threads", "cold secs", "warm secs", "trees/sec",
                   "items/sec", "speedup", "hit rate", "stream lat",
                   "failures"});
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    Row row;
    row.threads = threads;

    // Cold passes (median over repeats): the cache is cleared before each
    // run, so every front is computed. The on_item callback timestamps
    // each completion to measure streaming latency.
    BatchOptions batch;
    batch.n_threads = threads;
    batch.cache = &cache;
    double latency_sum = 0;
    Stopwatch stream_watch;
    batch.on_item = [&latency_sum, &stream_watch](const BatchItem&) {
      latency_sum += stream_watch.seconds();
    };
    std::vector<double> cold_times;
    BatchReport cold;
    for (std::size_t r = 0; r < repeats; ++r) {
      cache.clear();
      stream_watch.reset();
      cold = analyze_batch(fleet, analysis, batch);
      cold_times.push_back(cold.seconds);
    }
    row.cold_seconds = bench::median(cold_times);
    row.failures = cold.failures;
    const double completed = static_cast<double>(count - cold.failures);
    row.trees_per_second =
        row.cold_seconds > 0 ? completed / row.cold_seconds : 0;
    row.items_per_second =
        row.cold_seconds > 0 ? static_cast<double>(count) / row.cold_seconds
                             : 0;
    row.mean_stream_latency =
        count > 0 && repeats > 0
            ? latency_sum / static_cast<double>(count * repeats)
            : 0;

    // Warm passes: every repeated pair is served from the cache.
    batch.on_item = nullptr;
    std::vector<double> warm_times;
    BatchReport warm;
    for (std::size_t r = 0; r < repeats; ++r) {
      warm = analyze_batch(fleet, analysis, batch);
      warm_times.push_back(warm.seconds);
    }
    row.warm_seconds = bench::median(warm_times);
    row.hit_rate = warm.items.empty()
                       ? 0
                       : static_cast<double>(warm.cache_hits) /
                             static_cast<double>(warm.items.size());

    if (threads == 1) base_rate = row.trees_per_second;
    row.speedup = base_rate > 0 ? row.trees_per_second / base_rate : 0;

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", row.speedup);
    char hit[32];
    std::snprintf(hit, sizeof(hit), "%.0f%%", 100.0 * row.hit_rate);
    table.add_row({std::to_string(threads), format_seconds(row.cold_seconds),
                   format_seconds(row.warm_seconds),
                   std::to_string(static_cast<std::size_t>(row.trees_per_second)),
                   std::to_string(static_cast<std::size_t>(row.items_per_second)),
                   speedup, hit, format_seconds(row.mean_stream_latency),
                   std::to_string(row.failures)});
    rows.push_back(row);
  }
  std::cout << table.to_text();

  bool io_ok = true;
  if (const auto path = bench::arg_value(argc, argv, "--json")) {
    io_ok &= write_json(*path, count, nodes, dag_probability, cache_capacity,
                        rows);
  }
  if (const auto path = bench::arg_value(argc, argv, "--csv")) {
    io_ok &= write_csv(*path, rows);
  }
  return io_ok ? 0 : 1;
}
