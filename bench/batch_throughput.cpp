/// Batch-analysis throughput: how many random models per second the
/// analyzer sustains at 1, 2, 4, and 8 worker threads - the many-scenarios
/// workload that analyze_batch() exists for. Reports trees/sec and the
/// speedup over single-threaded for the same fleet (scaling is bounded by
/// the machine's core count; on a single-core host all rows converge).
///
/// Usage: bench_batch_throughput [--count N] [--nodes N] [--dag P]
///                               [--seed S] [--repeats R]

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/batch.hpp"
#include "gen/random_adt.hpp"
#include "util/table.hpp"

using namespace adtp;

int main(int argc, char** argv) {
  const std::size_t count = bench::arg_size_t(argc, argv, "--count", 64);
  const std::size_t nodes = bench::arg_size_t(argc, argv, "--nodes", 100);
  const std::size_t repeats = bench::arg_size_t(argc, argv, "--repeats", 3);
  const double dag_probability =
      bench::arg_value(argc, argv, "--dag")
          ? std::stod(*bench::arg_value(argc, argv, "--dag"))
          : 0.2;
  const std::uint64_t seed = bench::arg_size_t(argc, argv, "--seed", 1);

  bench::banner("batch throughput (" + std::to_string(count) + " models, ~" +
                std::to_string(nodes) + " nodes)");

  std::vector<AugmentedAdt> fleet;
  fleet.reserve(count);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    RandomAdtOptions options;
    options.target_nodes = nodes;
    options.share_probability = dag_probability;
    options.max_defenses = 14;
    fleet.push_back(generate_random_aadt(options, rng(), Semiring::min_cost(),
                                         Semiring::min_cost()));
  }

  AnalysisOptions analysis;
  analysis.bdd.node_limit = 8u << 20;
  analysis.bdd.max_front_points = 200000;

  double base_rate = 0;
  TextTable table({"threads", "median secs", "trees/sec", "speedup",
                   "failures"});
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    std::vector<double> times;
    BatchReport last;
    for (std::size_t r = 0; r < repeats; ++r) {
      last = analyze_batch(fleet, analysis, threads);
      times.push_back(last.seconds);
    }
    const double secs = bench::median(times);
    // Completed models only, matching BatchReport::trees_per_second.
    const double completed = static_cast<double>(count - last.failures);
    const double rate = secs > 0 ? completed / secs : 0;
    if (threads == 1) base_rate = rate;
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  base_rate > 0 ? rate / base_rate : 0.0);
    table.add_row({std::to_string(threads), format_seconds(secs),
                   std::to_string(static_cast<std::size_t>(rate)), speedup,
                   std::to_string(last.failures)});
  }
  std::cout << table.to_text();
  return 0;
}
