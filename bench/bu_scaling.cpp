/// Sibling-subtree scaling suite for the bottom-up walk: the workload the
/// work-stealing task DAG unlocked (one big *tree*, previously strictly
/// sequential). The model is a "Fig. 4 forest": an attacker-rooted AND
/// over k blocks. Each block ANDs two copies of the Fig. 4 worst-case
/// subtree (I_i = INH(d_i | a_i), weights 2^(i-1)) on the defender side -
/// a 2^n x 2^n staircase cross product, the expensive sibling-parallel
/// work - then feeds the result through an INH carrier into an attacker
/// OR with a flat bypass attack of weight 2^(n-4), which truncates the
/// block front to ~2^(n-4) points so the sequential root fold stays a
/// small tail.
///
/// Each (threads) cell reports the median wall-clock, the speedup over
/// the sequential walk, and the scheduler counters; every repeat is gated
/// on the determinism contract (docs/CONTRACTS.md): fronts AND witnesses
/// bit-identical to the threads = 1 run, mismatch fails the process.
///
/// Usage: bench_bu_scaling [--blocks K] [--block-n N] [--threads T]
///                         [--repeats R] [--json PATH]
///
/// CI runs this in bench-smoke; BENCH_7.json pins a reference run.

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/bottom_up.hpp"
#include "gen/catalog.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace adtp;

namespace {

/// Attacker-rooted AND over \p blocks blocks. Per block: two Fig. 4
/// subtrees of depth \p n (each a cheap-to-build 2^n staircase) meet at
/// a defender AND - an attacker-Choose cross product of two exponential
/// staircases, the block's real work - whose front then passes through
/// INH(main_b | defenses) into an attacker OR with a flat bypass of
/// weight 2^(n-4). The bypass caps the attacker coordinate, truncating
/// the block front to ~2^(n-4) points so the root fold over k blocks
/// stays a small sequential tail while each block's interior stays an
/// independent, expensive subtree - exactly the sibling parallelism the
/// task DAG exploits.
AugmentedAdt fig4_forest(std::size_t blocks, std::size_t n) {
  Adt adt;
  Attribution beta;
  std::vector<NodeId> block_roots;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::string bs = std::to_string(b);
    auto fig4 = [&](const char* side) {
      std::vector<NodeId> gates;
      for (std::size_t i = 1; i <= n; ++i) {
        const std::string suffix =
            "_" + std::string(side) + bs + "_" + std::to_string(i);
        const NodeId d = adt.add_basic("d" + suffix, Agent::Defender);
        const NodeId a = adt.add_basic("a" + suffix, Agent::Attacker);
        gates.push_back(adt.add_inhibit("I" + suffix, d, a));
        const double weight = std::ldexp(1.0, static_cast<int>(i) - 1);
        beta.set("d" + suffix, weight);
        beta.set("a" + suffix, weight);
      }
      return adt.add_gate("fig4_" + std::string(side) + bs, GateType::Or,
                          Agent::Defender, std::move(gates));
    };
    const NodeId defenses = adt.add_gate(
        "defenses_" + bs, GateType::And, Agent::Defender,
        {fig4("l"), fig4("r")});
    const NodeId a_main = adt.add_basic("main_" + bs, Agent::Attacker);
    beta.set("main_" + bs, 1.0);
    const NodeId carrier = adt.add_inhibit("carrier_" + bs, a_main, defenses);
    const NodeId bypass = adt.add_basic("bypass_" + bs, Agent::Attacker);
    beta.set("bypass_" + bs,
             std::ldexp(1.0, static_cast<int>(n > 4 ? n - 4 : 1)));
    block_roots.push_back(adt.add_gate("block" + bs, GateType::Or,
                                       Agent::Attacker, {carrier, bypass}));
  }
  const NodeId root = adt.add_gate("top", GateType::And, Agent::Attacker,
                                   std::move(block_roots));
  adt.set_root(root);
  adt.freeze();
  return AugmentedAdt(std::move(adt), std::move(beta), Semiring::min_cost(),
                      Semiring::min_cost());
}

struct ScalingRow {
  unsigned threads = 1;
  double seconds = 0;
  double speedup = 1;  ///< vs the threads = 1 row
  std::size_t front_size = 0;
  std::uint64_t sched_tasks = 0;
  std::uint64_t sched_steals = 0;
  std::size_t max_ready_depth = 0;
  bool identical = true;  ///< front AND witnesses match the sequential run
};

bool witnesses_identical(const WitnessFront& a, const WitnessFront& b) {
  if (!a.bit_identical_values(b)) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.points()[i].defense != b.points()[i].defense) return false;
    if (a.points()[i].attack != b.points()[i].attack) return false;
  }
  return true;
}

ScalingRow measure(const AugmentedAdt& aadt, unsigned threads,
                   std::size_t repeats, const Front* reference,
                   const WitnessFront* witness_reference, Front* front_out,
                   WitnessFront* witness_out) {
  ScalingRow row;
  row.threads = threads;
  BottomUpOptions options;
  options.threads = threads;
  std::vector<double> seconds;
  BottomUpReport report;
  for (std::size_t r = 0; r < repeats; ++r) {
    seconds.push_back(
        bench::time_call([&] { report = bottom_up_analyze(aadt, options); }));
    // The determinism gate covers EVERY repeat: a scheduling-dependent
    // divergence in any run must trip it, not just the surviving one.
    if (reference != nullptr &&
        !report.front.bit_identical_values(*reference)) {
      row.identical = false;
      std::cerr << "MISMATCH: front diverged at " << threads
                << " threads (repeat " << r << ")\n";
    }
  }
  const WitnessFront witness = bottom_up_front_witness(aadt, options);
  if (witness_reference != nullptr &&
      !witnesses_identical(witness, *witness_reference)) {
    row.identical = false;
    std::cerr << "MISMATCH: witnesses diverged at " << threads
              << " threads\n";
  }
  row.seconds = bench::median(seconds);
  row.front_size = report.front.size();
  row.sched_tasks = report.sched.tasks;
  row.sched_steals = report.sched.steals;
  row.max_ready_depth = report.sched.max_ready_depth;
  if (front_out != nullptr) *front_out = std::move(report.front);
  if (witness_out != nullptr) *witness_out = std::move(witness);
  return row;
}

[[nodiscard]] bool write_json(const std::string& path, std::size_t blocks,
                              std::size_t block_n,
                              const std::vector<ScalingRow>& rows) {
  JsonWriter json;
  json.begin_object();
  json.key("bench").value("bu_scaling");
  json.key("blocks").value(static_cast<std::uint64_t>(blocks));
  json.key("block_n").value(static_cast<std::uint64_t>(block_n));
  json.key("rows").begin_array();
  for (const ScalingRow& row : rows) {
    json.begin_object();
    json.key("threads").value(static_cast<std::uint64_t>(row.threads));
    json.key("seconds").value(row.seconds);
    json.key("speedup").value(row.speedup);
    json.key("front_size").value(static_cast<std::uint64_t>(row.front_size));
    json.key("sched_tasks").value(row.sched_tasks);
    json.key("sched_steals").value(row.sched_steals);
    json.key("max_ready_depth")
        .value(static_cast<std::uint64_t>(row.max_ready_depth));
    json.key("identical").value(row.identical);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  std::ofstream out(path);
  out << json.str() << "\n";
  if (!out.good()) {
    std::cerr << "FAILED to write " << path << "\n";
    return false;
  }
  std::cout << "wrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t blocks = bench::arg_size_t(argc, argv, "--blocks", 8);
  const std::size_t block_n = bench::arg_size_t(argc, argv, "--block-n", 11);
  const unsigned max_threads =
      static_cast<unsigned>(bench::arg_size_t(argc, argv, "--threads", 8));
  const std::size_t repeats = bench::arg_size_t(argc, argv, "--repeats", 3);
  const auto json_path = bench::arg_value(argc, argv, "--json");

  bench::banner("Bottom-up sibling-subtree scaling (Fig. 4 forest, one tree)");
  bench::assert_kernel_guards(catalog::fig3_example());

  const AugmentedAdt forest = fig4_forest(blocks, block_n);
  std::cout << "model: " << blocks << " blocks x n = " << block_n << " ("
            << forest.adt().size() << " nodes)\n\n";

  std::vector<unsigned> thread_counts{1};
  for (unsigned t = 2; t <= max_threads; t *= 2) thread_counts.push_back(t);

  TextTable table({"threads", "time", "speedup", "|PF|", "tasks", "steals",
                   "max depth", "identical"});
  std::vector<ScalingRow> rows;
  Front reference;
  WitnessFront witness_reference;
  double base_seconds = 0;
  for (unsigned threads : thread_counts) {
    const bool is_base = threads == 1;
    ScalingRow row = measure(forest, threads, repeats,
                             is_base ? nullptr : &reference,
                             is_base ? nullptr : &witness_reference,
                             is_base ? &reference : nullptr,
                             is_base ? &witness_reference : nullptr);
    if (is_base) {
      base_seconds = row.seconds;
    } else {
      row.speedup = row.seconds > 0 ? base_seconds / row.seconds : 0.0;
    }
    table.add_row({std::to_string(row.threads), format_seconds(row.seconds),
                   format_value(row.speedup, 2) + "x",
                   std::to_string(row.front_size),
                   std::to_string(row.sched_tasks),
                   std::to_string(row.sched_steals),
                   std::to_string(row.max_ready_depth),
                   row.identical ? "yes" : "NO"});
    rows.push_back(row);
  }
  std::cout << table.to_text();
  std::cout << "\nSpeedup is whole-walk wall-clock vs the sequential run "
               "(hardware with one core reports ~1x by construction); the "
               "blocks build their exponential fronts in parallel, the "
               "root fold is the sequential tail.\n";

  if (json_path && !write_json(*json_path, blocks, block_n, rows)) return 1;
  for (const ScalingRow& row : rows) {
    if (!row.identical) return 1;
  }
  std::cout << "\n[bu_scaling] done\n";
  return 0;
}
