/// Reproduces Fig. 9: pairwise per-instance runtime comparisons of Naive,
/// BU and BDDBU on randomly generated ADTs.
///
/// Panel (a): Naive vs BDDBU and panel (b): Naive vs BU on 120 random
/// ADTs with |N| < 45 (the paper's suite); panel (c): BU vs BDDBU on
/// trees up to 325 nodes. Output is one CSV row per instance - the
/// scatter points of the figure. Capped runs (deadline / guard exceeded)
/// print "cap"; the paper similarly cut off Naive at 10^4 s.
///
/// Flags: --instances N (default 120), --max-nodes N (default 44),
///        --big-instances N (default 24), --big-max-nodes N (default 325),
///        --naive-deadline SEC (default 0.5), --hybrid (adds the modular
///        hybrid analyzer column to panel c's DAG twin).

#include <iostream>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "gen/random_adt.hpp"
#include "util/table.hpp"

using namespace adtp;

namespace {

struct InstanceRow {
  std::size_t id;
  std::size_t nodes;
  bool tree;
  // "-" = not applicable/not run, "cap" = attempted but guard-capped.
  std::string naive = "-";
  std::string bu = "-";
  std::string bdd = "-";
  std::string hybrid = "-";
};

std::string cell(const std::optional<double>& t) {
  return t ? format_value(*t, 6) : "cap";
}

void print_rows(const std::vector<InstanceRow>& rows, bool with_hybrid) {
  std::cout << "id,nodes,shape,naive_s,bu_s,bddbu_s"
            << (with_hybrid ? ",hybrid_s" : "") << "\n";
  for (const auto& r : rows) {
    std::cout << r.id << ',' << r.nodes << ','
              << (r.tree ? "tree" : "dag") << ',' << r.naive << ',' << r.bu
              << ',' << r.bdd;
    if (with_hybrid) std::cout << ',' << r.hybrid;
    std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t instances =
      bench::arg_size_t(argc, argv, "--instances", 120);
  const std::size_t max_nodes =
      bench::arg_size_t(argc, argv, "--max-nodes", 44);
  const std::size_t big_instances =
      bench::arg_size_t(argc, argv, "--big-instances", 24);
  const std::size_t big_max_nodes =
      bench::arg_size_t(argc, argv, "--big-max-nodes", 325);
  const double naive_deadline =
      bench::arg_value(argc, argv, "--naive-deadline")
          ? std::stod(*bench::arg_value(argc, argv, "--naive-deadline"))
          : 0.5;

  Rng rng(20250417);

  // ---- panels (a) and (b): the paper's 120-instance suite, |N| < 45 ----
  bench::banner("Fig. 9 (a)/(b): Naive vs BDDBU vs BU, 120 ADTs, |N| < 45");
  std::vector<InstanceRow> small_rows;
  for (std::size_t i = 0; i < instances; ++i) {
    RandomAdtOptions options;
    options.target_nodes = 10 + rng.below(max_nodes > 12 ? max_nodes - 11 : 1);
    options.share_probability = (i % 2 == 0) ? 0.0 : 0.2;
    options.max_defenses = 10;
    const AugmentedAdt aadt = generate_random_aadt(
        options, rng(), Semiring::min_cost(), Semiring::min_cost());

    InstanceRow row;
    row.id = i;
    row.nodes = aadt.adt().size();
    row.tree = aadt.adt().is_tree();

    const Deadline deadline(naive_deadline);
    NaiveOptions naive_options;
    naive_options.max_bits = 24;
    naive_options.deadline = &deadline;
    row.naive = cell(bench::time_call_capped(
        [&] { (void)naive_front(aadt, naive_options); }));

    if (row.tree) {
      BottomUpOptions bu_options;
      bu_options.max_front_points = 200000;
      row.bu = cell(bench::time_call_capped(
          [&] { (void)bottom_up_front(aadt, bu_options); }));
    }

    BddBuOptions bdd_options;
    bdd_options.node_limit = 4u << 20;
    bdd_options.max_front_points = 200000;
    row.bdd = cell(bench::time_call_capped(
        [&] { (void)bdd_bu_front(aadt, bdd_options); }));

    small_rows.push_back(row);
  }
  print_rows(small_rows, false);

  // ---- panel (c): BU vs BDDBU on larger trees (up to 325 nodes) --------
  bench::banner("Fig. 9 (c): BU vs BDDBU on trees up to " +
                std::to_string(big_max_nodes) + " nodes");
  std::vector<InstanceRow> big_rows;
  for (std::size_t i = 0; i < big_instances; ++i) {
    RandomAdtOptions options;
    options.target_nodes =
        50 + (i * (big_max_nodes - 50)) / std::max<std::size_t>(
                                              big_instances - 1, 1);
    options.share_probability = 0.0;
    const AugmentedAdt aadt = generate_random_aadt(
        options, rng(), Semiring::min_cost(), Semiring::min_cost());

    InstanceRow row;
    row.id = i;
    row.nodes = aadt.adt().size();
    row.tree = true;

    BottomUpOptions bu_options;
    bu_options.max_front_points = 500000;
    row.bu = cell(bench::time_call_capped(
        [&] { (void)bottom_up_front(aadt, bu_options); }));

    BddBuOptions bdd_options;
    bdd_options.node_limit = 8u << 20;
    bdd_options.max_front_points = 500000;
    row.bdd = cell(bench::time_call_capped(
        [&] { (void)bdd_bu_front(aadt, bdd_options); }));

    big_rows.push_back(row);
  }
  print_rows(big_rows, false);

  // ---- extension: BDDBU vs modular hybrid on DAGs ----------------------
  bench::banner("extension: BDDBU vs modular hybrid on DAGs (<= 150 nodes)");
  std::vector<InstanceRow> dag_rows;
  for (std::size_t i = 0; i < 20; ++i) {
    RandomAdtOptions options;
    options.target_nodes = 30 + i * 6;
    options.share_probability = 0.15;
    options.max_defenses = 16;
    const AugmentedAdt aadt = generate_random_aadt(
        options, rng(), Semiring::min_cost(), Semiring::min_cost());

    InstanceRow row;
    row.id = i;
    row.nodes = aadt.adt().size();
    row.tree = aadt.adt().is_tree();

    BddBuOptions bdd_options;
    bdd_options.node_limit = 8u << 20;
    bdd_options.max_front_points = 500000;
    row.bdd = cell(bench::time_call_capped(
        [&] { (void)bdd_bu_front(aadt, bdd_options); }));

    HybridOptions hybrid_options;
    hybrid_options.bdd = bdd_options;
    row.hybrid = cell(bench::time_call_capped(
        [&] { (void)hybrid_front(aadt, hybrid_options); }));

    dag_rows.push_back(row);
  }
  print_rows(dag_rows, true);

  std::cout << "\nExpected shape: Naive explodes well below 45 nodes "
               "(\"cap\" rows); BU stays in the microsecond-to-millisecond "
               "range even at 325 nodes; BDDBU tracks BU on small models "
               "but grows much faster with size; hybrid sits between "
               "BDDBU and BU when sharing is localized.\n";
  std::cout << "\n[fig9_pairwise] done\n";
  return 0;
}
