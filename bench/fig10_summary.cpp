/// Reproduces Fig. 10: median runtime of each algorithm as a function of
/// ADT size, aggregated in buckets of 20 nodes (the paper's summary of
/// all pairwise comparisons).
///
/// For every bucket midpoint the bench generates several random ADTs
/// (trees for BU; DAG-shaped for BDDBU, which is its intended regime) and
/// reports the median runtime. Naive is only run while it remains
/// feasible (the paper likewise only plots it below ~45 nodes).
///
/// Flags: --max-nodes N (default 325), --per-bucket K (default 5),
///        --naive-deadline SEC (default 0.5), --cap SEC (default 30; the
///        per-run wall-clock guard on the BU/BDDBU instances).

#include <iostream>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"
#include "util/table.hpp"

using namespace adtp;

int main(int argc, char** argv) {
  const std::size_t max_nodes =
      bench::arg_size_t(argc, argv, "--max-nodes", 325);
  const std::size_t per_bucket =
      bench::arg_size_t(argc, argv, "--per-bucket", 5);
  const double naive_deadline =
      bench::arg_value(argc, argv, "--naive-deadline")
          ? std::stod(*bench::arg_value(argc, argv, "--naive-deadline"))
          : 0.5;
  const double run_cap = bench::arg_value(argc, argv, "--cap")
                             ? std::stod(*bench::arg_value(argc, argv, "--cap"))
                             : 30.0;

  bench::banner("Fig. 10: median runtime per size bucket (|N| buckets of "
                "20)");

  // Every timed run below carries the kernel guards (deadline + cancel),
  // so a pathological generated instance caps out instead of hanging the
  // bench; assert once that the kernels actually honor them.
  bench::assert_kernel_guards(catalog::fig3_example());
  CancelToken cancel;  // wired through every run; never fired here

  TextTable table({"bucket", "BU median (trees)", "Naive median",
                   "BDDBU median (DAGs)"});
  std::cout << "CSV: bucket_lo,bucket_hi,bu_s,naive_s,bddbu_s\n";

  Rng rng(424242);
  for (std::size_t lo = 10; lo < max_nodes; lo += 20) {
    const std::size_t hi = lo + 20;
    std::vector<double> bu_times;
    std::vector<double> naive_times;
    std::vector<double> bdd_times;
    bool naive_capped = false;
    bool bdd_capped = false;

    for (std::size_t k = 0; k < per_bucket; ++k) {
      const std::size_t target = lo + rng.below(20);

      // Tree instance for BU (and Naive while feasible).
      RandomAdtOptions tree_options;
      tree_options.target_nodes = target;
      tree_options.share_probability = 0.0;
      const AugmentedAdt tree = generate_random_aadt(
          tree_options, rng(), Semiring::min_cost(), Semiring::min_cost());

      const Deadline bu_deadline(run_cap);
      BottomUpOptions bu_options;
      bu_options.max_front_points = 500000;
      bu_options.deadline = &bu_deadline;
      bu_options.cancel = &cancel;
      if (const auto t = bench::time_call_capped(
              [&] { (void)bottom_up_front(tree, bu_options); })) {
        bu_times.push_back(*t);
      }

      if (lo < 50) {
        const Deadline deadline(naive_deadline);
        NaiveOptions naive_options;
        naive_options.max_bits = 24;
        naive_options.deadline = &deadline;
        naive_options.cancel = &cancel;
        if (const auto t = bench::time_call_capped(
                [&] { (void)naive_front(tree, naive_options); })) {
          naive_times.push_back(*t);
        } else {
          naive_capped = true;
        }
      }

      // DAG instance for BDDBU.
      RandomAdtOptions dag_options;
      dag_options.target_nodes = target;
      dag_options.share_probability = 0.15;
      dag_options.max_defenses = 16;
      const AugmentedAdt dag = generate_random_aadt(
          dag_options, rng(), Semiring::min_cost(), Semiring::min_cost());

      const Deadline bdd_deadline(run_cap);
      BddBuOptions bdd_options;
      bdd_options.node_limit = 8u << 20;
      bdd_options.max_front_points = 500000;
      bdd_options.deadline = &bdd_deadline;
      bdd_options.cancel = &cancel;
      if (const auto t = bench::time_call_capped(
              [&] { (void)bdd_bu_front(dag, bdd_options); })) {
        bdd_times.push_back(*t);
      } else {
        bdd_capped = true;
      }
    }

    auto cell = [](const std::vector<double>& times, bool capped,
                   bool applicable) {
      if (!applicable) return std::string("-");
      if (times.empty()) return std::string(capped ? "cap" : "-");
      std::string s = format_seconds(bench::median(times));
      if (capped) s += " (some capped)";
      return s;
    };

    const std::string bucket =
        "[" + std::to_string(lo) + "," + std::to_string(hi) + ")";
    table.add_row({bucket, cell(bu_times, false, true),
                   cell(naive_times, naive_capped, lo < 50),
                   cell(bdd_times, bdd_capped, true)});

    std::cout << lo << ',' << hi << ','
              << (bu_times.empty() ? "nan"
                                   : format_value(bench::median(bu_times), 6))
              << ','
              << (naive_times.empty()
                      ? (lo < 50 ? "cap" : "nan")
                      : format_value(bench::median(naive_times), 6))
              << ','
              << (bdd_times.empty()
                      ? "cap"
                      : format_value(bench::median(bdd_times), 6))
              << '\n';
  }

  std::cout << '\n' << table.to_text();
  std::cout << "\nExpected shape (paper Fig. 10): Naive grows exponentially "
               "and leaves the plot before 50 nodes; BU stays flat in the "
               "sub-millisecond range; BDDBU grows steeply with size but "
               "remains feasible at 325 nodes.\n";
  std::cout << "\n[fig10_summary] done\n";
  return 0;
}
