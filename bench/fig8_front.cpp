/// Reproduces Fig. 8: the Pareto fronts of the money-theft ADT under
/// Bottom-Up (tree semantics) and BDDBU (set semantics), as plot series,
/// plus the defender-budget sweep the plot encodes.

#include <iostream>

#include "adt/transform.hpp"
#include "bench_common.hpp"
#include "core/bdd_bu.hpp"
#include "core/bottom_up.hpp"
#include "core/budget.hpp"
#include "gen/catalog.hpp"
#include "util/table.hpp"

using namespace adtp;

int main() {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const AugmentedAdt tree = unfold_to_tree(dag);
  const Semiring cost = Semiring::min_cost();

  const Front bu = bottom_up_front(tree);
  const Front bdd = bdd_bu_front(dag);

  bench::banner("Fig. 8 plot series (defense cost, attack cost)");
  TextTable series({"series", "points"});
  series.add_row({"Bottom-up", bu.to_string()});
  series.add_row({"BDDBU", bdd.to_string()});
  std::cout << series.to_text();

  std::cout << "\nCSV:\nseries,defense_cost,attack_cost\n";
  for (const auto& p : bu.points()) {
    std::cout << "bottom-up," << format_value(p.def) << ","
              << format_value(p.att) << "\n";
  }
  for (const auto& p : bdd.points()) {
    std::cout << "bddbu," << format_value(p.def) << ","
              << format_value(p.att) << "\n";
  }

  bench::banner("defender budget sweep (guaranteed attacker cost)");
  TextTable sweep({"budget", "tree semantics", "set semantics"});
  for (double budget : {0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0}) {
    sweep.add_row({format_value(budget),
                   format_value(guaranteed_attacker_value(bu, budget, cost,
                                                          cost)),
                   format_value(guaranteed_attacker_value(bdd, budget, cost,
                                                          cost))});
  }
  std::cout << sweep.to_text();

  std::cout << "\n[fig8_front] done\n";
  return 0;
}
