/// Reproduces Fig. 7: the money-theft case study (Section VI-A).
///
/// Prints the model, the per-node Bottom-Up fronts of the unfolded tree
/// (the red annotations of Fig. 7), both final Pareto fronts, the optimal
/// strategies behind each point, and the comparison with the single
/// values 165 (tree semantics) / 140 (set semantics) reported by Kordy &
/// Widel [5].

#include <iostream>

#include "adt/transform.hpp"
#include "bench_common.hpp"
#include "core/bdd_bu.hpp"
#include "core/bottom_up.hpp"
#include "core/budget.hpp"
#include "core/naive.hpp"
#include "gen/catalog.hpp"
#include "util/table.hpp"

using namespace adtp;

namespace {

void print_model(const AugmentedAdt& dag) {
  bench::banner("Fig. 7 model (DAG: Phishing is shared)");
  std::cout << dag.adt().to_text();
  const AdtStats stats = dag.adt().stats();
  std::cout << "\nnodes: " << stats.nodes << "  BAS: " << stats.attack_steps
            << "  BDS: " << stats.defense_steps
            << "  shared nodes: " << stats.shared_nodes << "\n";
}

void print_per_node_fronts(const AugmentedAdt& tree) {
  bench::banner(
      "per-node Bottom-Up fronts on the unfolded tree (Fig. 7's red "
      "values)");
  const auto fronts = bottom_up_all_fronts(tree);
  TextTable table({"node", "front"});
  for (NodeId v : tree.adt().topological_order()) {
    table.add_row({tree.adt().name(v), fronts[v].to_string()});
  }
  std::cout << table.to_text();
}

void print_strategies(const AugmentedAdt& aadt, const WitnessFront& front,
                      const char* label) {
  std::cout << "\n" << label << " optimal strategies:\n";
  const Adt& adt = aadt.adt();
  for (const auto& p : front.points()) {
    std::cout << "  (" << format_value(p.def) << ", " << format_value(p.att)
              << "): defend {";
    bool first = true;
    for (std::size_t i : p.defense.set_bits()) {
      std::cout << (first ? "" : ", ")
                << adt.name(adt.defense_steps()[i]);
      first = false;
    }
    if (aadt.attacker_domain().equivalent(p.att,
                                          aadt.attacker_domain().zero())) {
      std::cout << "} -> no successful attack exists\n";
      continue;
    }
    std::cout << "} -> attacker plays {";
    first = true;
    for (std::size_t i : p.attack.set_bits()) {
      std::cout << (first ? "" : ", ") << adt.name(adt.attack_steps()[i]);
      first = false;
    }
    std::cout << "}\n";
  }
}

}  // namespace

int main() {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const AugmentedAdt tree = unfold_to_tree(dag);

  print_model(dag);
  print_per_node_fronts(tree);

  bench::banner("final Pareto fronts");
  Front tree_front;
  const double t_bu = bench::time_call(
      [&] { tree_front = bottom_up_front(tree); });
  const BddBuReport report = bdd_bu_analyze(dag);

  TextTable table({"analysis", "front", "time", "paper"});
  table.add_row({"Bottom-Up on unfolded tree", tree_front.to_string(),
                 format_seconds(t_bu), "{(0,90),(30,150),(50,165)}"});
  table.add_row({"BDDBU on the DAG", report.front.to_string(),
                 format_seconds(report.build_seconds +
                                report.propagate_seconds),
                 "{(0,80),(20,90),(50,140)}"});
  std::cout << table.to_text();
  std::cout << "\nBDD size |W| = " << report.bdd_size
            << ", max intermediate front p = " << report.max_front_size
            << "\n";

  print_strategies(tree, bottom_up_front_witness(tree), "tree-semantics");
  print_strategies(dag, bdd_bu_front_witness(dag), "set-semantics (DAG)");

  bench::banner("comparison with Kordy & Widel [5] (defender budget = inf)");
  std::cout << "tree semantics: minimal unpreventable attack cost = "
            << format_value(unlimited_defender_value(tree_front))
            << " (paper & [5]: 165)\n";
  std::cout << "set semantics:  minimal unpreventable attack cost = "
            << format_value(unlimited_defender_value(report.front))
            << " (paper & [5]: 140)\n";
  std::cout << "Existing work reports only these single values; the Pareto "
               "front above shows the full budget/security trade-off.\n";
  std::cout << "Note: the BDS 'strong_pwd' appears in no Pareto-optimal "
               "point - money spent on it is wasted.\n";

  std::cout << "\n[fig7_case_study] done\n";
  return 0;
}
