/// Ablation for the paper's future-work item on BDD variable orders:
/// "optimizing BDDs by identifying orderings that minimize their size
/// while retaining the defense-first property".
///
/// For the case study and a suite of random DAGs this bench reports the
/// structure-function BDD size and the BDDBU runtime under each
/// defense-first heuristic (DFS / BFS / Index / Random) and under the
/// block-respecting order search of bdd/reorder.hpp. The Pareto front is
/// identical under every order (Theorem 2) - only cost varies.

#include <iostream>

#include "bdd/reorder.hpp"
#include "bench_common.hpp"
#include "core/bdd_bu.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"
#include "util/table.hpp"

using namespace adtp;

namespace {

/// Per-run wall-clock cap (seconds); adversarial orders on generated
/// DAGs can blow the BDD up, and an unguarded run would hang the bench.
double g_run_cap = 60.0;
CancelToken g_cancel;  // wired through every run; never fired here

void ablate(const std::string& label, const AugmentedAdt& aadt) {
  std::cout << "\n--- " << label << " (" << aadt.adt().size()
            << " nodes, |D| = " << aadt.adt().num_defenses()
            << ", |A| = " << aadt.adt().num_attacks() << ") ---\n";
  TextTable table({"order", "BDD size |W|", "BDDBU time", "front"});

  for (auto heuristic : {bdd::OrderHeuristic::Dfs, bdd::OrderHeuristic::Bfs,
                         bdd::OrderHeuristic::Index,
                         bdd::OrderHeuristic::Random}) {
    const Deadline deadline(g_run_cap);
    BddBuOptions options;
    options.order_heuristic = heuristic;
    options.order_seed = 99;
    options.deadline = &deadline;
    options.cancel = &g_cancel;
    BddBuReport report;
    if (const auto t = bench::time_call_capped(
            [&] { report = bdd_bu_analyze(aadt, options); })) {
      table.add_row({to_string(heuristic), std::to_string(report.bdd_size),
                     format_seconds(*t), report.front.to_string()});
    } else {
      table.add_row({to_string(heuristic), "-", "cap", "-"});
    }
  }

  // Block-respecting order search, seeded with the DFS order.
  const bdd::VarOrder initial = bdd::VarOrder::defense_first(aadt.adt());
  bdd::ReorderOptions reorder_options;
  bdd::ReorderResult search;
  const double t_search = bench::time_call(
      [&] { search = minimize_order(aadt.adt(), initial, reorder_options); });
  const Deadline deadline(g_run_cap);
  BddBuOptions sifted;
  sifted.order = search.order;
  sifted.deadline = &deadline;
  sifted.cancel = &g_cancel;
  BddBuReport report;
  if (const auto t_run = bench::time_call_capped(
          [&] { report = bdd_bu_analyze(aadt, sifted); })) {
    table.add_row({"sifted (search " + format_seconds(t_search) + ", " +
                       std::to_string(search.rebuilds) + " rebuilds)",
                   std::to_string(report.bdd_size), format_seconds(*t_run),
                   report.front.to_string()});
  } else {
    table.add_row({"sifted (search " + format_seconds(t_search) + ")", "-",
                   "cap", "-"});
  }
  std::cout << table.to_text();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t instances = bench::arg_size_t(argc, argv, "--instances", 4);
  if (const auto cap = bench::arg_value(argc, argv, "--cap")) {
    g_run_cap = std::stod(*cap);
  }

  bench::banner("variable-order ablation (defense-first orders only)");
  bench::assert_kernel_guards(catalog::money_theft_dag());
  ablate("money theft (Fig. 7 DAG)", catalog::money_theft_dag());

  Rng rng(777);
  for (std::size_t i = 0; i < instances; ++i) {
    RandomAdtOptions options;
    options.target_nodes = 60 + i * 30;
    options.share_probability = 0.2;
    options.max_defenses = 12;
    const AugmentedAdt aadt = generate_random_aadt(
        options, rng(), Semiring::min_cost(), Semiring::min_cost());
    ablate("random DAG #" + std::to_string(i), aadt);
  }

  std::cout << "\nTakeaway: the front never changes; BDD size (and with it "
               "BDDBU time) varies across defense-first orders, and the "
               "block-respecting search recovers most of the gap from a "
               "bad order.\n";
  std::cout << "\n[ordering_ablation] done\n";
  return 0;
}
