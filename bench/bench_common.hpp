/// \file bench_common.hpp
/// \brief Shared helpers for the figure/table reproduction harnesses.

#pragma once

#include <algorithm>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace adtp::bench {

/// Times a callable once; returns seconds.
template <typename F>
double time_call(F&& f) {
  Stopwatch watch;
  std::forward<F>(f)();
  return watch.seconds();
}

/// Times a callable, returning nullopt if it throws LimitError (deadline
/// or node-limit exceeded) - the bench reports those as capped runs.
template <typename F>
std::optional<double> time_call_capped(F&& f) {
  Stopwatch watch;
  try {
    std::forward<F>(f)();
  } catch (const LimitError&) {
    return std::nullopt;
  }
  return watch.seconds();
}

inline double median(std::vector<double> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

/// "--flag value" style argument lookup (tiny; benches have 1-3 options).
inline std::optional<std::string> arg_value(int argc, char** argv,
                                            const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return std::string(argv[i + 1]);
  }
  return std::nullopt;
}

inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

inline std::size_t arg_size_t(int argc, char** argv, const std::string& flag,
                              std::size_t fallback) {
  const auto v = arg_value(argc, argv, flag);
  return v ? static_cast<std::size_t>(std::stoull(*v)) : fallback;
}

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace adtp::bench
