/// \file bench_common.hpp
/// \brief Shared helpers for the figure/table reproduction harnesses.

#pragma once

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace adtp::bench {

/// Times a callable once; returns seconds.
template <typename F>
double time_call(F&& f) {
  Stopwatch watch;
  std::forward<F>(f)();
  return watch.seconds();
}

/// Times a callable, returning nullopt if it throws LimitError (deadline
/// or node-limit exceeded) - the bench reports those as capped runs.
template <typename F>
std::optional<double> time_call_capped(F&& f) {
  Stopwatch watch;
  try {
    std::forward<F>(f)();
  } catch (const LimitError&) {
    return std::nullopt;
  }
  return watch.seconds();
}

inline double median(std::vector<double> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

/// "--flag value" style argument lookup (tiny; benches have 1-3 options).
inline std::optional<std::string> arg_value(int argc, char** argv,
                                            const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return std::string(argv[i + 1]);
  }
  return std::nullopt;
}

inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

inline std::size_t arg_size_t(int argc, char** argv, const std::string& flag,
                              std::size_t fallback) {
  const auto v = arg_value(argc, argv, flag);
  return v ? static_cast<std::size_t>(std::stoull(*v)) : fallback;
}

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

/// Smoke assertion for the PR 2 kernel-guard API: every analysis kernel a
/// bench is about to time must honor a pre-cancelled CancelToken (throw
/// CancelledError) and an already-expired Deadline (throw DeadlineError).
/// Benches that run open-ended generated instances call this once at
/// startup so a silently dropped guard - which would let a pathological
/// instance run the bench forever - aborts immediately instead.
inline void assert_kernel_guards(const AugmentedAdt& aadt) {
  CancelToken cancelled;
  cancelled.cancel();
  const Deadline expired(1e-12);

  auto expect = [&](const char* what, auto&& run, auto&& probe) {
    bool guarded = false;
    try {
      run();
    } catch (const std::exception& e) {
      guarded = probe(e);
    }
    if (!guarded) {
      std::cerr << "FATAL: " << what
                << " ignored its kernel guard; refusing to run unguarded "
                   "benches\n";
      std::exit(2);
    }
  };
  auto is_cancel = [](const std::exception& e) {
    return dynamic_cast<const CancelledError*>(&e) != nullptr;
  };
  auto is_deadline = [](const std::exception& e) {
    return dynamic_cast<const DeadlineError*>(&e) != nullptr;
  };

  NaiveOptions naive;
  naive.cancel = &cancelled;
  expect("naive cancel", [&] { (void)naive_front(aadt, naive); }, is_cancel);
  naive.cancel = nullptr;
  naive.deadline = &expired;
  expect("naive deadline", [&] { (void)naive_front(aadt, naive); },
         is_deadline);

  if (aadt.adt().is_tree()) {
    BottomUpOptions bu;
    bu.cancel = &cancelled;
    expect("bottom-up cancel", [&] { (void)bottom_up_front(aadt, bu); },
           is_cancel);
    bu.cancel = nullptr;
    bu.deadline = &expired;
    expect("bottom-up deadline", [&] { (void)bottom_up_front(aadt, bu); },
           is_deadline);
  }

  BddBuOptions bdd;
  bdd.cancel = &cancelled;
  expect("bdd_bu cancel", [&] { (void)bdd_bu_front(aadt, bdd); }, is_cancel);
  bdd.cancel = nullptr;
  bdd.deadline = &expired;
  expect("bdd_bu deadline", [&] { (void)bdd_bu_front(aadt, bdd); },
         is_deadline);

  HybridOptions hybrid;
  hybrid.bdd.cancel = &cancelled;
  expect("hybrid cancel", [&] { (void)hybrid_front(aadt, hybrid); },
         is_cancel);
  hybrid.bdd.cancel = nullptr;
  hybrid.bdd.deadline = &expired;
  expect("hybrid deadline", [&] { (void)hybrid_front(aadt, hybrid); },
         is_deadline);

  std::cout << "[guards] cancel + deadline honored by all kernels\n";
}

}  // namespace adtp::bench
