/// Incremental-recompute bench: edit latency vs cold re-analysis through
/// the per-node front memo (node_memo.hpp), plus counterfactual sweep
/// throughput.
///
/// The model is the bu_scaling "Fig. 4 forest": an attacker AND over k
/// independent blocks, each two Fig. 4 subtrees of depth n meeting at a
/// defender AND (the expensive staircase cross product) behind an INH
/// carrier and a bypass that truncates the block front. A one-leaf edit
/// dirties exactly one block's spine, so an incremental re-analysis
/// replays k-1 block fronts from the memo and recomputes one - the
/// speedup target of ISSUE 8's acceptance bar (>= 5x at the default
/// k = 8, n = 14) rides on the untouched blocks, not on luck.
///
/// Every incremental run is gated on the determinism contract
/// (docs/CONTRACTS.md, "Incremental equals cold"): fronts AND witnesses
/// bit-identical to the cold run, sequentially and at --threads workers;
/// any mismatch fails the process, as does a speedup below --min-speedup
/// (0 disables the gate, for hardware-agnostic smoke runs).
///
/// Usage: bench_incremental [--blocks K] [--block-n N] [--repeats R]
///                          [--threads T] [--min-speedup S] [--cf-n N]
///                          [--json PATH]
///
/// CI runs this in bench-smoke; BENCH_8.json pins a reference run.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "core/node_memo.hpp"
#include "core/whatif.hpp"
#include "gen/catalog.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace adtp;

namespace {

/// The bu_scaling forest (see bench/bu_scaling.cpp for the full rationale):
/// k independent expensive blocks under one root AND, block fronts
/// truncated by a flat bypass so the root fold stays a small tail.
AugmentedAdt fig4_forest(std::size_t blocks, std::size_t n) {
  Adt adt;
  Attribution beta;
  std::vector<NodeId> block_roots;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::string bs = std::to_string(b);
    auto fig4 = [&](const char* side) {
      std::vector<NodeId> gates;
      for (std::size_t i = 1; i <= n; ++i) {
        const std::string suffix =
            "_" + std::string(side) + bs + "_" + std::to_string(i);
        const NodeId d = adt.add_basic("d" + suffix, Agent::Defender);
        const NodeId a = adt.add_basic("a" + suffix, Agent::Attacker);
        gates.push_back(adt.add_inhibit("I" + suffix, d, a));
        const double weight = std::ldexp(1.0, static_cast<int>(i) - 1);
        beta.set("d" + suffix, weight);
        beta.set("a" + suffix, weight);
      }
      return adt.add_gate("fig4_" + std::string(side) + bs, GateType::Or,
                          Agent::Defender, std::move(gates));
    };
    const NodeId defenses = adt.add_gate(
        "defenses_" + bs, GateType::And, Agent::Defender,
        {fig4("l"), fig4("r")});
    const NodeId a_main = adt.add_basic("main_" + bs, Agent::Attacker);
    beta.set("main_" + bs, 1.0);
    const NodeId carrier = adt.add_inhibit("carrier_" + bs, a_main, defenses);
    const NodeId bypass = adt.add_basic("bypass_" + bs, Agent::Attacker);
    beta.set("bypass_" + bs,
             std::ldexp(1.0, static_cast<int>(n > 4 ? n - 4 : 1)));
    block_roots.push_back(adt.add_gate("block" + bs, GateType::Or,
                                       Agent::Attacker, {carrier, bypass}));
  }
  const NodeId root = adt.add_gate("top", GateType::And, Agent::Attacker,
                                   std::move(block_roots));
  adt.set_root(root);
  adt.freeze();
  return AugmentedAdt(std::move(adt), std::move(beta), Semiring::min_cost(),
                      Semiring::min_cost());
}

/// The edited variant of repeat \p r: one defense weight inside block
/// r mod k tweaked to a fresh value, so every repeat recomputes a real
/// dirty spine instead of replaying the previous repeat's root.
AugmentedAdt edited_variant(const AugmentedAdt& base, std::size_t blocks,
                            std::size_t r) {
  const std::string leaf = "d_l" + std::to_string(r % blocks) + "_1";
  Attribution beta = base.attribution();
  beta.set(leaf, beta.get(leaf) + 0.5 + static_cast<double>(r));
  return AugmentedAdt(base.adt(), std::move(beta), base.defender_domain(),
                      base.attacker_domain());
}

bool witnesses_identical(const WitnessFront& a, const WitnessFront& b) {
  if (!a.bit_identical_values(b)) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.points()[i].defense != b.points()[i].defense) return false;
    if (a.points()[i].attack != b.points()[i].attack) return false;
  }
  return true;
}

struct BenchResult {
  double cold_seconds = 0;         ///< median cold re-analysis of an edit
  double incremental_seconds = 0;  ///< median memoized re-analysis
  double speedup = 0;
  double hit_rate = 0;  ///< memo hit rate across the edit repeats
  std::size_t front_size = 0;
  bool identical = true;
  // Counterfactual sweep.
  std::size_t cf_variants = 0;
  double cf_seconds = 0;
  double cf_variants_per_second = 0;
  double cf_hit_rate = 0;
};

[[nodiscard]] bool write_json(const std::string& path, std::size_t blocks,
                              std::size_t block_n, std::size_t cf_n,
                              const BenchResult& r) {
  JsonWriter json;
  json.begin_object();
  json.key("bench").value("incremental");
  json.key("blocks").value(static_cast<std::uint64_t>(blocks));
  json.key("block_n").value(static_cast<std::uint64_t>(block_n));
  json.key("cold_seconds").value(r.cold_seconds);
  json.key("incremental_seconds").value(r.incremental_seconds);
  json.key("speedup").value(r.speedup);
  json.key("memo_hit_rate").value(r.hit_rate);
  json.key("front_size").value(static_cast<std::uint64_t>(r.front_size));
  json.key("identical").value(r.identical);
  json.key("counterfactual_n").value(static_cast<std::uint64_t>(cf_n));
  json.key("counterfactual_variants")
      .value(static_cast<std::uint64_t>(r.cf_variants));
  json.key("counterfactual_seconds").value(r.cf_seconds);
  json.key("counterfactual_variants_per_second")
      .value(r.cf_variants_per_second);
  json.key("counterfactual_memo_hit_rate").value(r.cf_hit_rate);
  json.end_object();
  std::ofstream out(path);
  out << json.str() << "\n";
  if (!out.good()) {
    std::cerr << "FAILED to write " << path << "\n";
    return false;
  }
  std::cout << "wrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t blocks = bench::arg_size_t(argc, argv, "--blocks", 8);
  const std::size_t block_n = bench::arg_size_t(argc, argv, "--block-n", 14);
  const std::size_t repeats = bench::arg_size_t(argc, argv, "--repeats", 3);
  const unsigned threads =
      static_cast<unsigned>(bench::arg_size_t(argc, argv, "--threads", 8));
  const std::size_t cf_n = bench::arg_size_t(argc, argv, "--cf-n", 10);
  const double min_speedup =
      std::stod(bench::arg_value(argc, argv, "--min-speedup").value_or("5"));
  const auto json_path = bench::arg_value(argc, argv, "--json");

  bench::banner("Incremental recompute (subtree-front memo, Fig. 4 forest)");
  bench::assert_kernel_guards(catalog::fig3_example());

  const AugmentedAdt base = fig4_forest(blocks, block_n);
  std::cout << "model: " << blocks << " blocks x n = " << block_n << " ("
            << base.adt().size() << " nodes); one-leaf edits, "
            << repeats << " repeats\n\n";

  NodeFrontMemo memo(std::max<std::size_t>(4096, 8 * base.adt().size()));
  BenchResult result;

  // Warm the memo with the baseline analysis (the serving loop's state
  // after the first request).
  const AnalysisResult baseline = analyze_incremental(base, memo);
  result.front_size = baseline.front.size();

  std::vector<double> cold_times;
  std::vector<double> incremental_times;
  std::uint64_t edit_hits = 0;
  std::uint64_t edit_misses = 0;
  for (std::size_t r = 0; r < repeats; ++r) {
    const AugmentedAdt variant = edited_variant(base, blocks, r);

    AnalysisResult cold;
    cold_times.push_back(
        bench::time_call([&] { cold = analyze(variant); }));

    AnalysisResult incremental;
    incremental_times.push_back(bench::time_call(
        [&] { incremental = analyze_incremental(variant, memo); }));
    edit_hits += incremental.memo_hits;
    edit_misses += incremental.memo_misses;

    if (!incremental.front.bit_identical_values(cold.front)) {
      result.identical = false;
      std::cerr << "MISMATCH: incremental front diverged from cold (repeat "
                << r << ")\n";
    }
    // The contract holds at every thread count: re-run the memoized
    // analysis on the parallel task-DAG path and gate it too.
    AnalysisOptions parallel;
    parallel.intra_model_threads = threads;
    const AnalysisResult wide =
        analyze_incremental(variant, memo, parallel);
    if (!wide.front.bit_identical_values(cold.front)) {
      result.identical = false;
      std::cerr << "MISMATCH: incremental front diverged at " << threads
                << " threads (repeat " << r << ")\n";
    }
  }

  // Witness determinism gate, once: memoized witness fronts replayed
  // through the same memo must match the cold witness run bit for bit.
  // Witness folds are several times the value-fold cost, so the gate runs
  // on a capped forest - it checks the contract, not throughput.
  {
    const std::size_t gate_n = std::min<std::size_t>(block_n, 11);
    const AugmentedAdt gate_model =
        gate_n == block_n ? base : fig4_forest(blocks, gate_n);
    NodeFrontMemo gate_memo(memo.capacity());
    (void)analyze_incremental(gate_model, gate_memo);
    const AugmentedAdt variant = edited_variant(gate_model, blocks, repeats);
    const WitnessFront cold_witness = bottom_up_front_witness(variant);
    for (const unsigned t : {1u, threads}) {
      BottomUpOptions bu;
      bu.threads = t;
      bu.memo = &gate_memo;
      if (!witnesses_identical(bottom_up_front_witness(variant, bu),
                               cold_witness)) {
        result.identical = false;
        std::cerr << "MISMATCH: memoized witnesses diverged at " << t
                  << " threads\n";
      }
    }
  }

  result.cold_seconds = bench::median(cold_times);
  result.incremental_seconds = bench::median(incremental_times);
  result.speedup = result.incremental_seconds > 0
                       ? result.cold_seconds / result.incremental_seconds
                       : 0.0;
  const std::uint64_t edit_lookups = edit_hits + edit_misses;
  result.hit_rate = edit_lookups == 0
                        ? 0.0
                        : static_cast<double>(edit_hits) /
                              static_cast<double>(edit_lookups);

  TextTable table({"mode", "median time", "speedup", "memo hit rate"});
  table.add_row({"cold re-analysis", format_seconds(result.cold_seconds), "1.00x",
                 "-"});
  table.add_row({"incremental edit", format_seconds(result.incremental_seconds),
                 format_value(result.speedup, 2) + "x",
                 format_value(100.0 * result.hit_rate, 1) + "%"});
  std::cout << table.to_text();

  // Counterfactual sweep throughput: every single-deletion variant of a
  // Fig. 4 instance, all sharing one memo.
  {
    const AugmentedAdt cf_model =
        catalog::fig4_exponential(static_cast<int>(cf_n));
    CounterfactualReport sweep;
    result.cf_seconds =
        bench::time_call([&] { sweep = counterfactual_sweep(cf_model); });
    result.cf_variants = sweep.variants.size();
    result.cf_variants_per_second =
        result.cf_seconds > 0
            ? static_cast<double>(result.cf_variants) / result.cf_seconds
            : 0.0;
    const std::uint64_t cf_lookups = sweep.memo_hits + sweep.memo_misses;
    result.cf_hit_rate = cf_lookups == 0
                             ? 0.0
                             : static_cast<double>(sweep.memo_hits) /
                                   static_cast<double>(cf_lookups);
    for (const CounterfactualVariant& v : sweep.variants) {
      if (!v.ok) {
        result.identical = false;
        std::cerr << "FAILED variant " << v.name << ": " << v.error << "\n";
      }
    }
    std::cout << "\ncounterfactual sweep (fig4 n = " << cf_n << "): "
              << result.cf_variants << " variants in "
              << format_seconds(result.cf_seconds) << " ("
              << format_value(result.cf_variants_per_second, 1)
              << " variants/s, memo hit rate "
              << format_value(100.0 * result.cf_hit_rate, 1) << "%)\n";
  }

  std::cout << "\nSpeedup is cold re-analysis over memoized re-analysis of "
               "a one-leaf edit; the memo replays every untouched block "
               "front, so the ideal is ~k for k blocks.\n";

  if (json_path &&
      !write_json(*json_path, blocks, block_n, cf_n, result)) {
    return 1;
  }
  if (!result.identical) return 1;
  if (min_speedup > 0 && result.speedup < min_speedup) {
    std::cerr << "FAILED: incremental speedup " << result.speedup
              << "x below the --min-speedup bar " << min_speedup << "x\n";
    return 1;
  }
  std::cout << "\n[incremental] done\n";
  return 0;
}
