/// Single-huge-DAG BDD scaling suite: the workload PR 4's batch pool
/// could not touch (one model, one core). Measures the task-DAG
/// (work-stealing) BDD construction + Pareto propagation at 1..N worker
/// threads on
///
///  - the Fig. 4 worst-case family (wide levels, exponential fronts: the
///    propagate-bound regime), and
///  - a large generated DAG (construction-heavy regime),
///
/// reporting per-phase times, speedups over the sequential run, the
/// scheduler counters (tasks / steals / peak ready-queue depth), and a
/// bit-identical front check (the determinism contract of
/// BddBuOptions::threads).
///
/// Usage: bench_bdd_scaling [--fig4-n N] [--dag-nodes N] [--threads T]
///                          [--repeats R] [--json PATH]
///
/// CI runs this in bench-smoke; BENCH_5.json pins a reference run.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/bdd_bu.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace adtp;

namespace {

struct ScalingRow {
  std::string model;
  unsigned threads = 1;
  double build_seconds = 0;
  double propagate_seconds = 0;
  double total_seconds = 0;
  double propagate_speedup = 1;  ///< vs the threads = 1 row of the model
  double total_speedup = 1;
  std::size_t bdd_size = 0;
  std::uint64_t sched_tasks = 0;
  std::uint64_t sched_steals = 0;
  std::size_t max_ready_depth = 0;
  std::size_t max_level_width = 0;
  std::size_t front_size = 0;
  bool identical = true;  ///< front bit-identical to the sequential run
};

/// Runs one (model, threads) cell \p repeats times and keeps the median
/// per-phase times (scheduler noise dominates single runs on shared CI
/// boxes). The last run's front lands in \p front_out (at threads == 1
/// it becomes the reference the other cells are checked against).
ScalingRow measure(const std::string& label, const AugmentedAdt& aadt,
                   unsigned threads, std::size_t repeats,
                   const Front* reference, Front* front_out) {
  ScalingRow row;
  row.model = label;
  row.threads = threads;
  std::vector<double> build;
  std::vector<double> propagate;
  std::vector<double> total;
  BddBuReport report;
  for (std::size_t r = 0; r < repeats; ++r) {
    BddBuOptions options;
    options.threads = threads;
    const double t = bench::time_call(
        [&] { report = bdd_bu_analyze(aadt, options); });
    build.push_back(report.build_seconds);
    propagate.push_back(report.propagate_seconds);
    total.push_back(t);
    // The determinism gate covers EVERY repeat, not just the one whose
    // front happens to survive the loop - a scheduling-dependent
    // divergence in any run must trip it.
    if (reference != nullptr &&
        !report.front.bit_identical_values(*reference)) {
      row.identical = false;
      std::cerr << "MISMATCH: " << label << " at " << threads
                << " threads (repeat " << r
                << ") diverged from the sequential front\n";
    }
  }
  row.build_seconds = bench::median(build);
  row.propagate_seconds = bench::median(propagate);
  row.total_seconds = bench::median(total);
  row.bdd_size = report.bdd_size;
  row.sched_tasks = report.sched.tasks;
  row.sched_steals = report.sched.steals;
  row.max_ready_depth = report.sched.max_ready_depth;
  row.max_level_width = report.max_level_width;
  row.front_size = report.front.size();
  if (front_out != nullptr) *front_out = std::move(report.front);
  return row;
}

[[nodiscard]] bool write_json(const std::string& path,
                              const std::vector<ScalingRow>& rows) {
  JsonWriter json;
  json.begin_object();
  json.key("bench").value("bdd_scaling");
  json.key("rows").begin_array();
  for (const ScalingRow& row : rows) {
    json.begin_object();
    json.key("model").value(row.model);
    json.key("threads").value(static_cast<std::uint64_t>(row.threads));
    json.key("build_seconds").value(row.build_seconds);
    json.key("propagate_seconds").value(row.propagate_seconds);
    json.key("total_seconds").value(row.total_seconds);
    json.key("propagate_speedup").value(row.propagate_speedup);
    json.key("total_speedup").value(row.total_speedup);
    json.key("bdd_size").value(static_cast<std::uint64_t>(row.bdd_size));
    json.key("sched_tasks").value(row.sched_tasks);
    json.key("sched_steals").value(row.sched_steals);
    json.key("max_ready_depth")
        .value(static_cast<std::uint64_t>(row.max_ready_depth));
    json.key("max_level_width")
        .value(static_cast<std::uint64_t>(row.max_level_width));
    json.key("front_size").value(static_cast<std::uint64_t>(row.front_size));
    json.key("identical").value(row.identical);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  std::ofstream out(path);
  out << json.str() << "\n";
  if (!out.good()) {
    std::cerr << "FAILED to write " << path << "\n";
    return false;
  }
  std::cout << "wrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t fig4_n = bench::arg_size_t(argc, argv, "--fig4-n", 14);
  const std::size_t dag_nodes =
      bench::arg_size_t(argc, argv, "--dag-nodes", 400);
  const unsigned max_threads = static_cast<unsigned>(
      bench::arg_size_t(argc, argv, "--threads", 8));
  const std::size_t repeats = bench::arg_size_t(argc, argv, "--repeats", 3);
  const auto json_path = bench::arg_value(argc, argv, "--json");

  bench::banner("BDD level-parallel scaling (1 vs N threads, one DAG)");
  bench::assert_kernel_guards(catalog::fig3_example());

  RandomAdtOptions dag_options;
  dag_options.target_nodes = dag_nodes;
  dag_options.share_probability = 0.2;
  dag_options.max_defenses = 16;
  const AugmentedAdt dag = generate_random_aadt(
      dag_options, 4242, Semiring::min_cost(), Semiring::min_cost());

  struct ModelCase {
    std::string label;
    const AugmentedAdt* model;
  };
  const AugmentedAdt fig4 =
      catalog::fig4_exponential(static_cast<int>(fig4_n));
  const std::vector<ModelCase> cases{
      {"fig4_n" + std::to_string(fig4_n), &fig4},
      {"random_dag_" + std::to_string(dag.adt().size()), &dag},
  };

  std::vector<unsigned> thread_counts{1};
  for (unsigned t = 2; t <= max_threads; t *= 2) thread_counts.push_back(t);

  TextTable table({"model", "threads", "build", "propagate", "total",
                   "speedup", "tasks", "steals", "max width", "identical"});
  std::vector<ScalingRow> rows;
  for (const ModelCase& c : cases) {
    Front reference;
    double base_propagate = 0;
    double base_total = 0;
    for (unsigned threads : thread_counts) {
      ScalingRow row =
          measure(c.label, *c.model, threads, repeats,
                  threads == 1 ? nullptr : &reference,
                  threads == 1 ? &reference : nullptr);
      if (threads == 1) {
        base_propagate = row.propagate_seconds;
        base_total = row.total_seconds;
      } else {
        row.propagate_speedup = row.propagate_seconds > 0
                                    ? base_propagate / row.propagate_seconds
                                    : 0.0;
        row.total_speedup =
            row.total_seconds > 0 ? base_total / row.total_seconds : 0.0;
      }
      table.add_row({row.model, std::to_string(row.threads),
                     format_seconds(row.build_seconds),
                     format_seconds(row.propagate_seconds),
                     format_seconds(row.total_seconds),
                     format_value(row.propagate_speedup, 2) + "x",
                     std::to_string(row.sched_tasks),
                     std::to_string(row.sched_steals),
                     std::to_string(row.max_level_width),
                     row.identical ? "yes" : "NO"});
      rows.push_back(row);
    }
  }
  std::cout << table.to_text();
  std::cout << "\nSpeedup is propagate-phase wall-clock vs the sequential "
               "run of the same model (hardware with one core reports "
               "~1x by construction).\n";

  if (json_path && !write_json(*json_path, rows)) return 1;
  for (const ScalingRow& row : rows) {
    if (!row.identical) return 1;
  }
  std::cout << "\n[bdd_scaling] done\n";
  return 0;
}
