/// Sustained-QPS bench: a closed-loop client swarm against a live
/// in-process serving daemon (src/serve/daemon.hpp) over a heavy-tailed
/// model-size mix - the catalog models plus the fig4 exponential family,
/// Zipf-weighted so small popular models dominate and big fig4 instances
/// form the tail, the request distribution a fleet front-end actually
/// produces.
///
/// Each client owns one connection and issues back-to-back ANALYZE
/// requests for --duration seconds (closed loop: offered load tracks
/// service rate, so the reported QPS is *sustained*, not peak-burst).
/// Admission rejections (max-inflight / max-connections) are retried
/// with backoff and counted, never failed. With --churn K every K-th
/// request the client hangs up abruptly - sometimes right after sending,
/// so the daemon writes into a closed socket - and reconnects: the
/// disconnect storm of satellite fix 1, exercised under full load.
///
/// Reported: sustained QPS, p50/p95/p99 latency, warm share (fraction
/// served from memory or store), rejections, disconnects. The bench
/// exits nonzero on any hard failure, on a daemon that lost requests,
/// or below --min-qps (0 disables). CI pins BENCH_10.json as the
/// regression baseline.
///
/// Usage: bench_qps_sustained [--clients N] [--duration S] [--churn K]
///                            [--max-inflight N] [--max-connections N]
///                            [--min-qps Q] [--json PATH]

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "adt/adtool_xml.hpp"
#include "adt/text_format.hpp"
#include "bench_common.hpp"
#include "gen/catalog.hpp"
#include "serve/daemon.hpp"
#include "serve/socket.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace adtp;
using Clock = std::chrono::steady_clock;

namespace {

struct ScratchDir {
  explicit ScratchDir(const std::string& tag)
      : path(std::filesystem::temp_directory_path() /
             ("adtp_qps_" + tag + "_" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::filesystem::path path;
};

struct RequestItem {
  std::string name;
  std::string format;
  std::string body;
};

/// The catalog + fig4-family mix. Order matters: Zipf weight 1/(i+1)^s
/// makes the head (small catalog models) hot and the fig4 tail heavy.
std::vector<RequestItem> build_mix() {
  std::vector<RequestItem> items;
  items.push_back({"fig3", "text", to_text_format(catalog::fig3_example())});
  items.push_back({"fig5", "text", to_text_format(catalog::fig5_example())});
  {
    const AugmentedAdt money = catalog::money_theft_dag();
    items.push_back({"money_dag", "xml",
                     export_adtool_xml(money.adt(), money.attribution())});
  }
  items.push_back(
      {"money_tree", "text", to_text_format(catalog::money_theft_tree())});
  {
    const AugmentedAdt fig5 = catalog::fig5_example();
    JsonWriter envelope;
    envelope.begin_object();
    envelope.key("format").value("text");
    envelope.key("model").value(to_text_format(fig5));
    envelope.key("algorithm").value("naive");
    envelope.end_object();
    items.push_back({"fig5_json", "json", envelope.str()});
  }
  for (int n = 4; n <= 12; ++n) {
    items.push_back({"fig4_" + std::to_string(n), "text",
                     to_text_format(catalog::fig4_exponential(n))});
  }
  return items;
}

/// Zipf(s) sampler over [0, n): cumulative weights, binary search.
class ZipfPicker {
 public:
  ZipfPicker(std::size_t n, double s) {
    cumulative_.reserve(n);
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cumulative_.push_back(total);
    }
  }

  template <typename Rng>
  std::size_t operator()(Rng& rng) const {
    std::uniform_real_distribution<double> uniform(0.0, cumulative_.back());
    const double u = uniform(rng);
    return static_cast<std::size_t>(
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u) -
        cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

struct ClientTotals {
  std::vector<double> latencies_ms;  ///< successful requests only
  std::uint64_t served = 0;
  std::uint64_t rejected_retries = 0;  ///< retryable rejections absorbed
  std::uint64_t churns = 0;            ///< abrupt hangups we caused
  std::uint64_t failures = 0;          ///< ok=false, not retryable
};

/// One closed-loop client: its own connection, its own RNG, back-to-back
/// requests until the deadline.
ClientTotals run_client(const serve::Endpoint& ep,
                        const std::vector<RequestItem>& items,
                        const ZipfPicker& pick, std::uint64_t seed,
                        std::size_t churn_every, Clock::time_point until) {
  ClientTotals totals;
  std::mt19937_64 rng(seed);
  int fd = serve::connect_with_retry(ep);
  std::uint64_t sent = 0;
  while (Clock::now() < until) {
    const RequestItem& item = items[pick(rng)];
    const std::string header = "ANALYZE " + item.format + " " +
                               std::to_string(item.body.size()) + "\n";
    ++sent;
    if (churn_every > 0 && sent % churn_every == 0) {
      // Abrupt hangup: send a full request, then vanish without reading
      // the reply - the daemon's write lands on a dead socket. Half the
      // time, hang up before even sending, exercising the read side.
      ++totals.churns;
      try {
        if (rng() % 2 == 0) {
          serve::write_all_fd(fd, (header + item.body).data(),
                              header.size() + item.body.size());
        }
      } catch (const serve::SocketError&) {
        // The daemon may already have dropped us; reconnect regardless.
      }
      ::close(fd);
      fd = serve::connect_with_retry(ep);
      continue;
    }
    double backoff = 0.005;
    for (int attempt = 0;; ++attempt) {
      const Clock::time_point start = Clock::now();
      std::string reply_line;
      try {
        reply_line = serve::request_line(fd, header + item.body);
      } catch (const serve::SocketError&) {
        // Dropped (likely an earlier churn raced the daemon's close);
        // reconnect and retry the same request.
        ::close(fd);
        fd = serve::connect_with_retry(ep);
        if (attempt >= 8) {
          ++totals.failures;
          break;
        }
        continue;
      }
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
      const JsonValue reply = parse_json(reply_line);
      if (reply.at("ok").as_bool()) {
        ++totals.served;
        totals.latencies_ms.push_back(ms);
        break;
      }
      const bool retryable =
          reply.has("retryable") && reply.at("retryable").as_bool();
      if (!retryable || attempt >= 8) {
        ++totals.failures;
        break;
      }
      ++totals.rejected_retries;
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2, 0.2);
    }
  }
  ::close(fd);
  return totals;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  const std::size_t clients = bench::arg_size_t(argc, argv, "--clients", 8);
  const double duration = std::stod(
      bench::arg_value(argc, argv, "--duration").value_or("10"));
  const std::size_t churn = bench::arg_size_t(argc, argv, "--churn", 50);
  const std::size_t max_inflight =
      bench::arg_size_t(argc, argv, "--max-inflight", 8);
  const std::size_t max_connections =
      bench::arg_size_t(argc, argv, "--max-connections", 2 * clients);
  const double min_qps = std::stod(
      bench::arg_value(argc, argv, "--min-qps").value_or("0"));
  const auto json_path = bench::arg_value(argc, argv, "--json");

  bench::banner("Sustained QPS under a heavy-tailed serving mix");
  bench::assert_kernel_guards(catalog::fig3_example());

  const std::vector<RequestItem> items = build_mix();
  const ZipfPicker pick(items.size(), 1.1);
  std::cout << "mix: " << items.size() << " models (catalog head, fig4 tail), "
            << clients << " closed-loop client(s), " << duration
            << "s, churn every "
            << (churn > 0 ? std::to_string(churn) : std::string("-"))
            << " request(s)\n";

  const ScratchDir dir("swarm");
  serve::Endpoint ep;
  ep.path = (dir.path / "d.sock").string();

  serve::DaemonConfig config;
  config.store_dir = (dir.path / "store").string();
  config.max_inflight = max_inflight;
  config.max_connections = max_connections;
  config.deadline_seconds = 30.0;
  config.memory_capacity = 4 * items.size();
  serve::DaemonServer server(ep, config);
  if (!server.cache().persistent()) {
    std::cerr << "FAILED: store did not open under " << config.store_dir
              << "\n";
    return 1;
  }
  server.start();

  const Clock::time_point start = Clock::now();
  const Clock::time_point until =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(duration));
  std::vector<ClientTotals> totals(clients);
  std::vector<std::thread> swarm;
  swarm.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    swarm.emplace_back([&, c] {
      totals[c] = run_client(ep, items, pick, 0x9e3779b9u + 977u * c, churn,
                             until);
    });
  }
  for (std::thread& t : swarm) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> latencies;
  std::uint64_t served = 0, rejected_retries = 0, churns = 0, failures = 0;
  for (const ClientTotals& t : totals) {
    latencies.insert(latencies.end(), t.latencies_ms.begin(),
                     t.latencies_ms.end());
    served += t.served;
    rejected_retries += t.rejected_retries;
    churns += t.churns;
    failures += t.failures;
  }
  std::sort(latencies.begin(), latencies.end());
  const double qps = elapsed > 0 ? static_cast<double>(served) / elapsed : 0;
  const double p50 = percentile(latencies, 0.50);
  const double p95 = percentile(latencies, 0.95);
  const double p99 = percentile(latencies, 0.99);

  const serve::DaemonMetrics& m = server.metrics();
  const std::uint64_t daemon_served =
      m.computed.load() + m.cache_hits.load();
  const double warm_share =
      daemon_served > 0 ? static_cast<double>(m.cache_hits.load()) /
                              static_cast<double>(daemon_served)
                        : 0;
  const std::uint64_t disconnects = m.disconnects.load();
  server.stop();

  TextTable table({"metric", "value"});
  table.add_row({"sustained QPS", format_value(qps, 1)});
  table.add_row({"p50 latency", format_value(p50, 3) + " ms"});
  table.add_row({"p95 latency", format_value(p95, 3) + " ms"});
  table.add_row({"p99 latency", format_value(p99, 3) + " ms"});
  table.add_row({"served", std::to_string(served)});
  table.add_row({"warm share", format_value(100 * warm_share, 1) + " %"});
  table.add_row({"admission retries", std::to_string(rejected_retries)});
  table.add_row({"abrupt hangups", std::to_string(churns)});
  table.add_row({"daemon disconnects", std::to_string(disconnects)});
  table.add_row({"client failures", std::to_string(failures)});
  std::cout << table.to_text();
  std::cout << "\nClosed loop: every client waits for its reply, so QPS is "
               "what the daemon sustains, not what was offered; the churn "
               "column is the disconnect storm it absorbed while serving.\n";

  if (json_path) {
    JsonWriter json;
    json.begin_object();
    json.key("bench").value("qps_sustained");
    json.key("clients").value(static_cast<std::uint64_t>(clients));
    json.key("duration_seconds").value(elapsed);
    json.key("served").value(served);
    json.key("qps").value(qps);
    json.key("p50_ms").value(p50);
    json.key("p95_ms").value(p95);
    json.key("p99_ms").value(p99);
    json.key("warm_share").value(warm_share);
    json.key("admission_retries").value(rejected_retries);
    json.key("hangups").value(churns);
    json.key("disconnects").value(disconnects);
    json.key("failures").value(failures);
    json.end_object();
    std::ofstream out(*json_path);
    out << json.str() << "\n";
    if (!out.good()) {
      std::cerr << "FAILED to write " << *json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << *json_path << "\n";
  }

  if (failures != 0) {
    std::cerr << "FAILED: " << failures << " request(s) hard-failed\n";
    return 1;
  }
  if (served == 0) {
    std::cerr << "FAILED: nothing served\n";
    return 1;
  }
  if (churn > 0 && disconnects == 0) {
    std::cerr << "FAILED: churned " << churns
              << " connection(s) but the daemon counted no disconnect\n";
    return 1;
  }
  if (min_qps > 0 && qps < min_qps) {
    std::cerr << "FAILED: sustained " << qps << " QPS below the --min-qps bar "
              << min_qps << "\n";
    return 1;
  }
  std::cout << "\n[qps_sustained] done\n";
  return 0;
}
