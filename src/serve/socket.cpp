#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace adtp::serve {

namespace {

[[noreturn]] void throw_socket(const std::string& what) {
  const int err = errno;
  throw SocketError(what + ": " + std::strerror(err),
                    /*disconnect=*/err == EPIPE || err == ECONNRESET);
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  const std::size_t colon = spec.rfind(':');
  if (colon != std::string::npos && spec.find('/') == std::string::npos) {
    ep.is_unix = false;
    ep.host = spec.substr(0, colon);
    ep.port = static_cast<std::uint16_t>(std::stoul(spec.substr(colon + 1)));
  } else {
    ep.path = spec;
  }
  return ep;
}

int listen_on(const Endpoint& ep) {
  if (ep.is_unix) {
    ::unlink(ep.path.c_str());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_socket("socket()");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      throw SocketError("unix socket path too long: " + ep.path);
    }
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      throw_socket("bind(" + ep.path + ")");
    }
    if (::listen(fd, 64) != 0) {
      ::close(fd);
      throw_socket("listen()");
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_socket("socket()");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ep.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_socket("bind(port " + std::to_string(ep.port) + ")");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_socket("listen()");
  }
  return fd;
}

int connect_to(const Endpoint& ep) {
  if (ep.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_socket("socket()");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      throw_socket("connect(" + ep.path + ")");
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_socket("socket()");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw SocketError("bad host: " + ep.host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_socket("connect(" + ep.describe() + ")");
  }
  return fd;
}

int connect_with_retry(const Endpoint& ep) {
  double backoff = 0.05;
  for (int attempt = 0;; ++attempt) {
    try {
      return connect_to(ep);
    } catch (const SocketError&) {
      if (attempt >= 7) throw;
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff *= 2;
    }
  }
}

void write_all_fd(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that closed early yields EPIPE instead of a
    // process-fatal SIGPIPE (see the file comment).
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_socket("socket write failed");
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

std::optional<std::string> read_line_fd(int fd, std::size_t max) {
  std::string line;
  char c = 0;
  while (true) {
    const ssize_t r = ::read(fd, &c, 1);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_socket("socket read failed");
    }
    if (r == 0) {
      if (line.empty()) return std::nullopt;
      return line;  // EOF mid-line: hand back what arrived
    }
    if (c == '\n') return line;
    if (line.size() >= max) throw SocketError("request line too long");
    line += c;
  }
}

std::string read_exact_fd(int fd, std::size_t n) {
  std::string body(n, '\0');
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, body.data() + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_socket("socket read failed");
    }
    if (r == 0) {
      throw SocketError("connection closed mid-payload", /*disconnect=*/true);
    }
    got += static_cast<std::size_t>(r);
  }
  return body;
}

std::string request_line(int fd, const std::string& line) {
  write_all_fd(fd, line.data(), line.size());
  const auto response = read_line_fd(fd, 1u << 22);
  if (!response.has_value()) {
    throw SocketError("daemon closed the connection", /*disconnect=*/true);
  }
  return *response;
}

}  // namespace adtp::serve
