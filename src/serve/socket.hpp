/// \file socket.hpp
/// \brief The daemon's tiny socket layer: Unix / loopback-TCP endpoints,
///        line-framed I/O, and disconnect-safe writes.
///
/// Everything here is a thin POSIX wrapper shared by the serving daemon
/// (src/serve/daemon.hpp), its example front-end, the sustained-QPS
/// bench, and the tests - so all of them exercise the exact I/O path
/// production clients see.
///
/// Writes never raise SIGPIPE: write_all_fd sends with MSG_NOSIGNAL, and
/// a peer that vanished mid-response (EPIPE/ECONNRESET) surfaces as a
/// SocketError with disconnect() set. A disconnect is a per-connection
/// event - the daemon counts it and serves the next connection; it is
/// never allowed to take the process down (a client closing early must
/// not kill a daemon mid-::write, which is exactly what an unhandled
/// SIGPIPE does).

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "util/error.hpp"

namespace adtp::serve {

/// A socket operation failed. \p disconnect marks the peer going away
/// (EPIPE, ECONNRESET): routine per-connection trouble, not a server
/// fault.
class SocketError : public Error {
 public:
  explicit SocketError(const std::string& what, bool disconnect = false)
      : Error(what), disconnect_(disconnect) {}

  [[nodiscard]] bool disconnect() const noexcept { return disconnect_; }

 private:
  bool disconnect_;
};

/// A Unix-domain path or a loopback TCP host:port.
struct Endpoint {
  bool is_unix = true;
  std::string path;        ///< unix socket path
  std::string host;        ///< tcp host
  std::uint16_t port = 0;  ///< tcp port

  [[nodiscard]] std::string describe() const {
    return is_unix ? path : host + ":" + std::to_string(port);
  }
};

/// "host:port" (no '/') parses as TCP; anything else is a unix path.
[[nodiscard]] Endpoint parse_endpoint(const std::string& spec);

/// Binds and listens (unlinking a stale unix path first). Throws Error.
[[nodiscard]] int listen_on(const Endpoint& ep);

/// Connects; throws SocketError on failure.
[[nodiscard]] int connect_to(const Endpoint& ep);

/// connect_to with doubling backoff from 50ms (~6s total): the daemon
/// may still be booting, or a previous instance may just have died.
[[nodiscard]] int connect_with_retry(const Endpoint& ep);

/// Writes all \p n bytes via send(MSG_NOSIGNAL) - no SIGPIPE, ever.
/// Throws SocketError; disconnect() is set when the peer went away.
void write_all_fd(int fd, const char* data, std::size_t n);

/// Reads one '\n'-terminated line (terminator consumed, not returned).
/// Empty optional on clean EOF before any byte; EOF mid-line hands back
/// what arrived. Throws SocketError (disconnect() for a reset peer).
[[nodiscard]] std::optional<std::string> read_line_fd(int fd,
                                                      std::size_t max = 4096);

/// Reads exactly \p n bytes; throws SocketError on EOF or failure.
[[nodiscard]] std::string read_exact_fd(int fd, std::size_t n);

/// Client helper: sends \p line, returns the single-line reply. Throws
/// SocketError when the daemon closed the connection instead.
[[nodiscard]] std::string request_line(int fd, const std::string& line);

}  // namespace adtp::serve
