#include "serve/daemon.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>

#include "adt/adtool_xml.hpp"
#include "adt/text_format.hpp"
#include "core/analyzer.hpp"
#include "util/cancel.hpp"
#include "util/json.hpp"

namespace adtp::serve {

namespace {

struct ParsedRequest {
  std::optional<AugmentedAdt> aadt;  ///< engaged after a successful parse
  AnalysisOptions options;
  double deadline_override = 0;  ///< json envelope only; 0 = server default
};

Algorithm parse_algorithm(const std::string& name) {
  if (name == "auto") return Algorithm::Auto;
  if (name == "naive") return Algorithm::Naive;
  if (name == "bottom_up" || name == "bottom-up") return Algorithm::BottomUp;
  if (name == "bdd_bu" || name == "bdd-bu") return Algorithm::BddBu;
  if (name == "hybrid") return Algorithm::Hybrid;
  throw Error("unknown algorithm: " + name);
}

AugmentedAdt model_from(const std::string& format, const std::string& body) {
  if (format == "text") return parse_adt_text(body).augmented();
  if (format == "xml") {
    AdtoolImport imported = import_adtool_xml(body);
    return AugmentedAdt(std::move(imported.adt),
                        std::move(imported.attribution), Semiring::min_cost(),
                        Semiring::min_cost());
  }
  throw Error("unknown model format: " + format);
}

ParsedRequest parse_request(const std::string& format,
                            const std::string& body) {
  ParsedRequest req;
  if (format == "json") {
    const JsonValue doc = parse_json(body);
    const std::string inner =
        doc.has("format") ? doc.at("format").as_string() : "text";
    if (inner == "json") throw Error("json envelope cannot nest json");
    req.aadt = model_from(inner, doc.at("model").as_string());
    if (doc.has("algorithm")) {
      req.options.algorithm = parse_algorithm(doc.at("algorithm").as_string());
    }
    if (doc.has("deadline")) {
      req.deadline_override = doc.at("deadline").as_number();
    }
    return req;
  }
  req.aadt = model_from(format, body);
  return req;
}

std::string error_json(const std::string& what, bool retryable) {
  JsonWriter json;
  json.begin_object();
  json.key("ok").value(false);
  json.key("error").value(what);
  json.key("retryable").value(retryable);
  json.end_object();
  return json.str();
}

std::string result_json(const AnalysisResult& result, bool cached,
                        std::size_t nodes) {
  JsonWriter json;
  json.begin_object();
  json.key("ok").value(true);
  json.key("cached").value(cached);
  json.key("algorithm").value(to_string(result.used));
  json.key("nodes").value(static_cast<std::uint64_t>(nodes));
  json.key("seconds").value(result.seconds);
  json.key("front").begin_array();
  for (const ValuePoint& p : result.front.points()) {
    json.begin_array();
    json.value(p.def);
    json.value(p.att);
    json.end_array();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace

DaemonServer::DaemonServer(Endpoint endpoint, DaemonConfig config)
    : endpoint_(std::move(endpoint)),
      config_(std::move(config)),
      cache_(config_.store_dir, [this] {
        store::PersistentCacheOptions options;
        options.memory_capacity = config_.memory_capacity;
        options.follower = config_.store_follower;
        // A follower daemon is routinely started alongside its writer;
        // give the writer a moment to initialize the directory instead
        // of degrading on the startup race.
        if (config_.store_follower) options.open_retry_seconds = 5.0;
        options.on_store_error = [this](const std::string& what) {
          log("[store] " + what);
        };
        return options;
      }()) {}

DaemonServer::~DaemonServer() { stop(); }

void DaemonServer::log(const std::string& what) {
  if (config_.log) config_.log(what);
}

void DaemonServer::start() {
  if (started_) return;
  listener_ = listen_on(endpoint_);
  if (!endpoint_.is_unix && endpoint_.port == 0) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      endpoint_.port = ntohs(addr.sin_port);
    }
  }
  if (::pipe(wake_pipe_) != 0) {
    ::close(listener_);
    listener_ = -1;
    throw SocketError(std::string("pipe() failed: ") + std::strerror(errno));
  }
  started_ = true;
  stopping_.store(false);
  workers_.reserve(config_.max_connections);
  for (std::size_t i = 0; i < config_.max_connections; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  if (cache_.follower() && config_.store_refresh_seconds > 0) {
    refresher_ = std::thread([this] { refresher_loop(); });
  }
}

void DaemonServer::stop() {
  if (!started_) return;
  if (stopping_.exchange(true)) return;
  // Wake the acceptor's poll, then every blocked thread and connection.
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // In-flight reads on every open connection return EOF/reset now.
    for (const int fd : active_) ::shutdown(fd, SHUT_RDWR);
  }
  cv_.notify_all();
  refresh_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  if (refresher_.joinable()) refresher_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Workers closed what they served; close what never got picked up.
  for (const int fd : pending_) ::close(fd);
  pending_.clear();
  active_.clear();
  if (listener_ >= 0) ::close(listener_);
  listener_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  started_ = false;
}

void DaemonServer::accept_loop() {
  while (!stopping_.load()) {
    pollfd fds[2] = {{listener_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      log(std::string("[daemon] poll failed: ") + std::strerror(errno));
      break;
    }
    if (stopping_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listener_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) continue;
      log(std::string("[daemon] accept failed: ") + std::strerror(errno));
      break;
    }
    bool admitted = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.size() + serving_ < config_.max_connections) {
        active_.insert(fd);
        pending_.push_back(fd);
        admitted = true;
      }
    }
    if (admitted) {
      metrics_.connections_accepted.fetch_add(1);
      cv_.notify_one();
    } else {
      // Saturated pool: the cap is enforced here, at accept time - a
      // connection storm never grows the thread count.
      metrics_.connections_rejected.fetch_add(1);
      const std::string reply =
          error_json("over capacity (max-connections reached)",
                     /*retryable=*/true) +
          "\n";
      try {
        write_all_fd(fd, reply.data(), reply.size());
      } catch (const SocketError&) {
        // Best effort; the peer may already be gone.
      }
      ::close(fd);
    }
  }
}

void DaemonServer::worker_loop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock,
               [this] { return stopping_.load() || !pending_.empty(); });
      if (stopping_.load()) return;
      fd = pending_.front();
      pending_.pop_front();
      ++serving_;
    }
    serve_connection(fd);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      active_.erase(fd);
      --serving_;
    }
    ::close(fd);
  }
}

void DaemonServer::refresher_loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(refresh_mutex_);
      refresh_cv_.wait_for(
          lock,
          std::chrono::duration<double>(config_.store_refresh_seconds),
          [this] { return stopping_.load(); });
      if (stopping_.load()) return;
    }
    if (cache_.refresh().has_value()) metrics_.refreshes.fetch_add(1);
  }
}

void DaemonServer::serve_connection(int fd) {
  try {
    while (!stopping_.load()) {
      const std::optional<std::string> line = read_line_fd(fd);
      if (!line.has_value()) break;
      const std::string response = serve_request(fd, *line) + "\n";
      write_all_fd(fd, response.data(), response.size());
    }
  } catch (const SocketError& e) {
    // A peer that vanished (EPIPE on our write, reset on our read) is
    // routine: count it, drop the connection, serve the next one.
    if (e.disconnect()) {
      metrics_.disconnects.fetch_add(1);
    } else {
      log(std::string("[conn] ") + e.what());
    }
  } catch (const std::exception& e) {
    log(std::string("[conn] ") + e.what());
  }
}

std::string DaemonServer::serve_request(int fd, const std::string& line) {
  std::istringstream words(line);
  std::string verb;
  words >> verb;
  if (verb == "PING") return R"({"ok":true,"pong":true})";
  if (verb == "STATS") return stats_json();
  if (verb == "REFRESH") {
    const auto report = cache_.refresh();
    if (!report.has_value()) {
      return error_json("store degraded; nothing to refresh", false);
    }
    metrics_.refreshes.fetch_add(1);
    JsonWriter json;
    json.begin_object();
    json.key("ok").value(true);
    json.key("new_entries").value(report->new_entries);
    json.key("generation_changed").value(report->generation_changed);
    json.end_object();
    return json.str();
  }
  if (verb == "PROMOTE") {
    if (!cache_.follower()) {
      return error_json("not a follower (already the writer or degraded)",
                        false);
    }
    if (!cache_.promote()) {
      return error_json("writer lease unavailable (writer still alive?)",
                        /*retryable=*/true);
    }
    metrics_.promotions.fetch_add(1);
    return R"({"ok":true,"promoted":true})";
  }
  if (verb == "ANALYZE") {
    std::string format;
    std::size_t nbytes = 0;
    if (!(words >> format >> nbytes) || nbytes > (16u << 20)) {
      return error_json("malformed ANALYZE header", false);
    }
    const std::string body = read_exact_fd(fd, nbytes);
    return serve_analyze(format, body);
  }
  return error_json("unknown verb: " + verb, false);
}

/// Serves one ANALYZE request body; returns the JSON response line.
/// Identical concurrent requests coalesce on the cache's single-flight
/// path, so a thundering herd computes each front exactly once.
std::string DaemonServer::serve_analyze(const std::string& format,
                                        const std::string& body) {
  ParsedRequest req;
  try {
    req = parse_request(format, body);
  } catch (const std::exception& e) {
    metrics_.failed.fetch_add(1);
    return error_json(e.what(), /*retryable=*/false);
  }

  // Admission: reject past the in-flight cap instead of queueing a
  // request that would expire before a worker even picks it up.
  if (inflight_.fetch_add(1) >= config_.max_inflight) {
    inflight_.fetch_sub(1);
    metrics_.rejected.fetch_add(1);
    return error_json("over capacity (max-inflight reached)",
                      /*retryable=*/true);
  }
  struct InflightRelease {
    std::atomic<std::size_t>& n;
    ~InflightRelease() { n.fetch_sub(1); }
  } release{inflight_};

  metrics_.requests.fetch_add(1);
  const double budget = req.deadline_override > 0 ? req.deadline_override
                                                  : config_.deadline_seconds;
  const Deadline deadline(budget);
  req.options.naive.deadline = &deadline;
  req.options.bottom_up.deadline = &deadline;
  req.options.bdd.deadline = &deadline;
  req.options.hybrid.bdd.deadline = &deadline;
  if (config_.threads > 0) req.options.intra_model_threads = config_.threads;

  const FrontCacheKey key = front_cache_key(*req.aadt, req.options);
  FrontCache::FlightLookup flight = cache_.lookup_or_reserve(key);
  if (flight.result.has_value()) {
    metrics_.cache_hits.fetch_add(1);
    return result_json(*flight.result, /*cached=*/true,
                       req.aadt->adt().size());
  }
  AnalysisResult result;
  try {
    result = analyze(*req.aadt, req.options);
  } catch (const std::exception& e) {
    cache_.abandon(key);
    metrics_.failed.fetch_add(1);
    return error_json(e.what(), /*retryable=*/false);
  }
  cache_.publish(key, result);
  metrics_.computed.fetch_add(1);
  return result_json(result, /*cached=*/false, req.aadt->adt().size());
}

std::string DaemonServer::stats_json() {
  const FrontCache::Stats memory = cache_.stats();
  const store::PersistentCacheStats persistence = cache_.persistence_stats();
  JsonWriter json;
  json.begin_object();
  json.key("ok").value(true);
  json.key("requests").value(metrics_.requests.load());
  json.key("computed").value(metrics_.computed.load());
  json.key("cache_hits").value(metrics_.cache_hits.load());
  json.key("rejected").value(metrics_.rejected.load());
  json.key("failed").value(metrics_.failed.load());
  const std::uint64_t served =
      metrics_.computed.load() + metrics_.cache_hits.load();
  json.key("hit_rate")
      .value(served == 0 ? 0.0
                         : static_cast<double>(metrics_.cache_hits.load()) /
                               static_cast<double>(served));
  json.key("connections").begin_object();
  json.key("accepted").value(metrics_.connections_accepted.load());
  json.key("rejected").value(metrics_.connections_rejected.load());
  json.key("disconnects").value(metrics_.disconnects.load());
  json.end_object();
  json.key("memory").begin_object();
  json.key("hits").value(memory.hits);
  json.key("misses").value(memory.misses);
  json.key("entries").value(static_cast<std::uint64_t>(memory.entries));
  json.key("coalesced").value(memory.coalesced);
  json.end_object();
  json.key("persistent").value(cache_.persistent());
  json.key("follower").value(cache_.follower());
  json.key("refreshes").value(metrics_.refreshes.load());
  json.key("promotions").value(metrics_.promotions.load());
  json.key("store").begin_object();
  json.key("hits").value(persistence.store_hits);
  json.key("writes").value(persistence.store_writes);
  json.key("errors").value(persistence.store_errors);
  json.key("retries").value(persistence.retries);
  json.key("decode_failures").value(persistence.decode_failures);
  json.key("degraded").value(persistence.degraded);
  json.end_object();
  if (const auto recovery = cache_.recovery()) {
    json.key("recovery").begin_object();
    json.key("entries_recovered").value(recovery->entries_recovered);
    json.key("records_skipped").value(recovery->records_skipped);
    json.key("tail_bytes_truncated").value(recovery->tail_bytes_truncated);
    json.key("stale_generation").value(recovery->stale_generation);
    json.end_object();
  }
  json.end_object();
  return json.str();
}

}  // namespace adtp::serve
