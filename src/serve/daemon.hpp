/// \file daemon.hpp
/// \brief The embeddable analysis daemon: a bounded worker pool serving
///        the ANALYZE/STATS/PING wire protocol over a shared,
///        crash-safe front store.
///
/// DaemonServer is the serving core behind examples/serving_daemon.cpp,
/// factored into the library so tests and the sustained-QPS bench run
/// the real accept loop, the real protocol, and the real cache in
/// process. One server owns one PersistentFrontCache (writer or
/// follower; see store/shard.hpp's multi-process model) and serves:
///
///   ANALYZE <format> <nbytes>\n<payload>   format in {text, xml, json}
///   STATS\n     serving + cache + store metrics as one JSON line
///   PING\n      liveness probe
///   REFRESH\n   follower: pick up the writer's committed appends now
///   PROMOTE\n   follower: try to take the writer lease (retryable
///               error while the writer lives)
///
/// Concurrency model - two explicit bounds, no unbounded anything:
///
///   * max_connections worker threads are spawned once; each serves one
///     connection at a time. The acceptor hands a new connection to an
///     idle worker or, when all are busy, answers with a retryable
///     over-capacity JSON line and closes - the cap is enforced at
///     accept time, so a connection storm cannot spawn a thread per
///     socket (the failure mode this class replaced).
///   * max_inflight bounds concurrent *analyses* across all
///     connections; excess ANALYZE requests are rejected retryably up
///     front instead of queueing past their deadline.
///
/// A client disconnecting mid-response is a counted per-connection
/// event (SIGPIPE is never raised - src/serve/socket.hpp): the worker
/// finishes the connection and picks up the next one. stop() is
/// idempotent, wakes every blocked thread, and joins them all - a
/// stopped server has provably no threads left.
///
/// In follower mode with store_refresh_seconds > 0 a refresher thread
/// calls cache().refresh() on that period, so a follower daemon trails
/// the writer's appends without client action.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "serve/socket.hpp"
#include "store/persistent_cache.hpp"

namespace adtp::serve {

struct DaemonConfig {
  /// Per-analysis kernel deadline (a Deadline, not a socket timeout).
  double deadline_seconds = 10.0;
  /// Concurrent analyses admitted across all connections.
  std::size_t max_inflight = 8;
  /// Worker pool size = concurrent connections served; beyond it a new
  /// connection gets a retryable over-capacity reply and is closed.
  std::size_t max_connections = 64;
  /// Intra-model threads per analysis (0 = kernel default).
  unsigned threads = 0;
  /// Memory tier capacity of the cache.
  std::size_t memory_capacity = 256;
  /// Store directory (the cache degrades to memory-only on store
  /// trouble; it never fails the daemon).
  std::string store_dir = "adtp_store";
  /// Attach the store as a read-only follower of another daemon's
  /// writer lease (store/persistent_cache.hpp).
  bool store_follower = false;
  /// Follower auto-refresh period; <= 0 disables the refresher thread.
  double store_refresh_seconds = 0;
  /// Diagnostics sink (store degradation, per-connection errors);
  /// null discards. Called from server threads: keep it cheap.
  std::function<void(const std::string&)> log;
};

/// Monotone serving counters (atomics: read them live via STATS).
struct DaemonMetrics {
  std::atomic<std::uint64_t> requests{0};     ///< ANALYZE accepted
  std::atomic<std::uint64_t> computed{0};     ///< served by a kernel run
  std::atomic<std::uint64_t> cache_hits{0};   ///< memory or store hit
  std::atomic<std::uint64_t> rejected{0};     ///< max_inflight rejections
  std::atomic<std::uint64_t> failed{0};       ///< parse/model/deadline errors
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_rejected{0};  ///< pool saturated
  std::atomic<std::uint64_t> disconnects{0};  ///< peer vanished mid-exchange
  std::atomic<std::uint64_t> refreshes{0};    ///< follower refreshes run
  std::atomic<std::uint64_t> promotions{0};   ///< successful PROMOTEs
};

class DaemonServer {
 public:
  /// Opens the cache (never throws for store trouble) but does not
  /// listen yet; call start().
  explicit DaemonServer(Endpoint endpoint, DaemonConfig config);
  /// stop()s.
  ~DaemonServer();

  DaemonServer(const DaemonServer&) = delete;
  DaemonServer& operator=(const DaemonServer&) = delete;

  /// Binds, listens, and spawns the acceptor + workers (+ refresher in
  /// follower mode). Throws SocketError when the endpoint cannot be
  /// bound. For a TCP endpoint with port 0 the kernel picks a port;
  /// endpoint() reports the real one after start().
  void start();

  /// Idempotent: wakes and joins every server thread, closes every
  /// connection. After stop() returns no server thread exists.
  void stop();

  [[nodiscard]] const Endpoint& endpoint() const noexcept {
    return endpoint_;
  }
  [[nodiscard]] const DaemonMetrics& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] store::PersistentFrontCache& cache() noexcept {
    return cache_;
  }

  /// The STATS response body (also handy for tests and the bench).
  [[nodiscard]] std::string stats_json();

 private:
  void accept_loop();
  void worker_loop();
  void refresher_loop();
  void serve_connection(int fd);
  [[nodiscard]] std::string serve_request(int fd, const std::string& line);
  [[nodiscard]] std::string serve_analyze(const std::string& format,
                                          const std::string& body);
  void log(const std::string& what);

  Endpoint endpoint_;
  DaemonConfig config_;
  store::PersistentFrontCache cache_;
  DaemonMetrics metrics_;
  std::atomic<std::size_t> inflight_{0};

  std::atomic<bool> stopping_{false};
  bool started_ = false;
  int listener_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< stop() pokes the acceptor's poll
  std::thread acceptor_;
  std::thread refresher_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;  ///< guards the three fields below
  std::condition_variable cv_;
  std::deque<int> pending_;            ///< accepted, waiting for a worker
  std::unordered_set<int> active_;     ///< every open connection fd
  std::size_t serving_ = 0;            ///< workers mid-connection

  /// The refresher sleeps on its own condvar so a worker wake-up is
  /// never consumed by it (a lost notify would strand a connection).
  std::mutex refresh_mutex_;
  std::condition_variable refresh_cv_;
};

}  // namespace adtp::serve
