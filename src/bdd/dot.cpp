#include "bdd/dot.hpp"

#include <sstream>

namespace adtp::bdd {

std::string to_dot(const Manager& manager, Ref root, const Adt& adt,
                   const VarOrder& order) {
  std::ostringstream out;
  out << "digraph robdd {\n";
  out << "  node [fontname=\"Helvetica\"];\n";
  for (Ref r : manager.reachable(root)) {
    if (manager.is_terminal(r)) {
      out << "  b" << r << " [label=\"" << (r == kTrue ? 1 : 0)
          << "\", shape=square];\n";
      continue;
    }
    const NodeId leaf = order.node_of(manager.var(r));
    const bool defender = adt.agent(leaf) == Agent::Defender;
    out << "  b" << r << " [label=\"" << adt.name(leaf)
        << "\", shape=circle, style=filled, fillcolor=\""
        << (defender ? "#d9ead3" : "#f4cccc") << "\"];\n";
    out << "  b" << r << " -> b" << manager.low(r)
        << " [style=dashed, label=\"0\"];\n";
    out << "  b" << r << " -> b" << manager.high(r) << " [label=\"1\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace adtp::bdd
