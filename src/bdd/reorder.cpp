#include "bdd/reorder.hpp"

#include <algorithm>
#include <limits>

#include "bdd/build.hpp"
#include "bdd/manager.hpp"
#include "util/error.hpp"

namespace adtp::bdd {

namespace {

constexpr std::size_t kRejected = std::numeric_limits<std::size_t>::max();

/// Size of the structure-function BDD under a candidate leaf sequence,
/// or kRejected if the rebuild hits the node limit.
std::size_t try_candidate(const Adt& adt, const std::vector<NodeId>& leaves,
                          std::size_t node_limit, std::size_t& rebuilds) {
  ++rebuilds;
  try {
    const VarOrder order = VarOrder::from_sequence(adt, leaves);
    Manager manager(order.num_vars(), node_limit);
    const Ref root = build_structure_function(manager, adt, order);
    return manager.size(root);
  } catch (const LimitError&) {
    return kRejected;
  }
}

}  // namespace

std::size_t bdd_size_under(const Adt& adt, const VarOrder& order,
                           std::size_t node_limit) {
  Manager manager(order.num_vars(), node_limit);
  const Ref root = build_structure_function(manager, adt, order);
  return manager.size(root);
}

ReorderResult minimize_order(const Adt& adt, const VarOrder& initial,
                             const ReorderOptions& options) {
  ReorderResult result;
  std::vector<NodeId> best = initial.sequence();
  const std::size_t defenses = initial.num_defenses();
  const std::size_t total = best.size();

  result.initial_size =
      try_candidate(adt, best, options.node_limit, result.rebuilds);
  std::size_t best_size = result.initial_size;

  auto block_of = [&](std::size_t pos) { return pos < defenses ? 0 : 1; };

  if (total <= options.full_sift_max_leaves) {
    // Full sifting: move each leaf through every position of its block,
    // keeping the best placement before sifting the next leaf.
    for (std::size_t i = 0; i < total; ++i) {
      const NodeId leaf = best[i];
      const std::size_t lo = block_of(i) == 0 ? 0 : defenses;
      const std::size_t hi = block_of(i) == 0 ? defenses : total;
      for (std::size_t pos = lo; pos < hi; ++pos) {
        std::vector<NodeId> candidate = best;
        candidate.erase(std::find(candidate.begin(), candidate.end(), leaf));
        candidate.insert(candidate.begin() + static_cast<std::ptrdiff_t>(pos),
                         leaf);
        if (candidate == best) continue;
        const std::size_t size =
            try_candidate(adt, candidate, options.node_limit,
                          result.rebuilds);
        if (size < best_size) {
          best_size = size;
          best = std::move(candidate);
        }
      }
    }
  } else {
    // Adjacent-swap hill climbing, bounded passes.
    for (int pass = 0; pass < options.max_passes; ++pass) {
      bool improved = false;
      for (std::size_t i = 0; i + 1 < total; ++i) {
        if (block_of(i) != block_of(i + 1)) continue;  // stay defense-first
        std::vector<NodeId> candidate = best;
        std::swap(candidate[i], candidate[i + 1]);
        const std::size_t size =
            try_candidate(adt, candidate, options.node_limit,
                          result.rebuilds);
        if (size < best_size) {
          best_size = size;
          best = std::move(candidate);
          improved = true;
        }
      }
      if (!improved) break;
    }
  }

  result.best_size = best_size;
  result.order = VarOrder::from_sequence(adt, std::move(best));
  return result;
}

}  // namespace adtp::bdd
