/// \file build.hpp
/// \brief Translating an ADT's structure function into an ROBDD.
///
/// The translation compiles the ADT into one task DAG for the
/// work-stealing scheduler: every apply of every gate's balanced
/// pairwise reduction tree is a task depending only on its two operand
/// tasks, so independent applies run concurrently on the manager's
/// striped tables the moment their inputs exist - no level barriers.
/// The reduction shape is fixed (balanced, left-to-right pairing) for
/// every thread count - including the sequential path, which executes
/// the same task list in creation order - so the set of BDD nodes a
/// build creates is identical no matter how many workers ran it.

#pragma once

#include <vector>

#include "adt/adt.hpp"
#include "bdd/manager.hpp"
#include "bdd/order.hpp"
#include "util/parallel.hpp"

namespace adtp::bdd {

/// Knobs of the ADT -> ROBDD translation.
struct BuildOptions {
  /// Worker threads for the task-DAG translation: 1 (default) runs
  /// sequentially on the calling thread, 0 resolves to the hardware
  /// concurrency. The produced BDD is identical for every value.
  unsigned threads = 1;

  /// Optional externally-owned scheduler (shared with the propagation
  /// phase by core/bdd_bu.cpp); overrides \p threads when set.
  TaskScheduler* pool = nullptr;

  /// When set, the scheduler counters of the build run are accumulated
  /// here (untouched on the sequential path).
  TaskRunStats* stats = nullptr;
};

/// Builds the BDD of f_T(., ., v) for every node v of \p adt (memoized over
/// the DAG, so shared subtrees are translated once) and returns the per-node
/// roots indexed by NodeId. The manager must have order.num_vars()
/// variables.
[[nodiscard]] std::vector<Ref> build_all(Manager& manager, const Adt& adt,
                                         const VarOrder& order,
                                         const BuildOptions& options = {});

/// Builds the BDD of the root structure function f_T(., ., R_T).
[[nodiscard]] Ref build_structure_function(Manager& manager, const Adt& adt,
                                           const VarOrder& order,
                                           const BuildOptions& options = {});

}  // namespace adtp::bdd
