/// \file build.hpp
/// \brief Translating an ADT's structure function into an ROBDD.

#pragma once

#include <vector>

#include "adt/adt.hpp"
#include "bdd/manager.hpp"
#include "bdd/order.hpp"

namespace adtp::bdd {

/// Builds the BDD of f_T(., ., v) for every node v of \p adt (memoized over
/// the DAG, so shared subtrees are translated once) and returns the per-node
/// roots indexed by NodeId. The manager must have order.num_vars()
/// variables.
[[nodiscard]] std::vector<Ref> build_all(Manager& manager, const Adt& adt,
                                         const VarOrder& order);

/// Builds the BDD of the root structure function f_T(., ., R_T).
[[nodiscard]] Ref build_structure_function(Manager& manager, const Adt& adt,
                                           const VarOrder& order);

}  // namespace adtp::bdd
