/// \file dot.hpp (bdd)
/// \brief Graphviz DOT export of ROBDDs (the paper's Fig. 6 style):
///        dashed edges are labeled 0 (low), solid edges 1 (high).

#pragma once

#include <string>

#include "adt/adt.hpp"
#include "bdd/manager.hpp"
#include "bdd/order.hpp"

namespace adtp::bdd {

/// Renders the BDD rooted at \p root; node labels are the ADT leaf names
/// provided through \p order / \p adt.
[[nodiscard]] std::string to_dot(const Manager& manager, Ref root,
                                 const Adt& adt, const VarOrder& order);

}  // namespace adtp::bdd
