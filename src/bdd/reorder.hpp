/// \file reorder.hpp
/// \brief Static variable-order optimization under the defense-first
///        constraint (the paper's future-work item: "optimizing BDDs by
///        identifying orderings that minimize their size while retaining
///        the defense-first property").
///
/// This library's manager is append-only (no in-place level swaps), so
/// reordering is done at the *order* level: candidate orders are evaluated
/// by rebuilding the BDD in a fresh manager and measuring the reachable
/// node count. Two searches are provided:
///  - adjacent-swap hill climbing (cheap, bounded passes), and
///  - full sifting (each leaf tries every position in its block),
/// both of which only permute leaves inside their defense/attack block, so
/// every candidate remains defense-first and Theorem 2 keeps applying.

#pragma once

#include <cstdint>

#include "adt/adt.hpp"
#include "bdd/order.hpp"

namespace adtp::bdd {

struct ReorderOptions {
  /// Maximum hill-climbing passes over all adjacent pairs.
  int max_passes = 4;

  /// Switch to full sifting when the leaf count is at most this.
  std::size_t full_sift_max_leaves = 24;

  /// Node limit for candidate rebuilds (0 = manager default); candidates
  /// that blow past it are simply rejected.
  std::size_t node_limit = 0;
};

struct ReorderResult {
  VarOrder order;            ///< the best order found
  std::size_t initial_size = 0;  ///< BDD size under the initial order
  std::size_t best_size = 0;     ///< BDD size under the returned order
  std::size_t rebuilds = 0;      ///< candidate evaluations performed
};

/// Measures the BDD size of \p adt's structure function under \p order.
[[nodiscard]] std::size_t bdd_size_under(const Adt& adt, const VarOrder& order,
                                         std::size_t node_limit = 0);

/// Searches for a smaller defense-first order starting from \p initial.
[[nodiscard]] ReorderResult minimize_order(const Adt& adt,
                                           const VarOrder& initial,
                                           const ReorderOptions& options = {});

}  // namespace adtp::bdd
