/// \file manager.hpp
/// \brief A from-scratch ROBDD engine (Definition 10).
///
/// Classic index-based reduced ordered binary decision diagrams without
/// complement edges:
///  - nodes are (var, low, high) triples hash-consed in a unique table, so
///    structurally equal functions share one node (reduction rule 1);
///  - mk() collapses nodes with identical children (reduction rule 2);
///  - binary operations go through a memoized apply(); negation has its own
///    memoized recursion.
///
/// Variables are dense indices 0..num_vars-1 and the index *is* the order:
/// smaller variables are tested closer to the root. Mapping ADT leaves to
/// variable indices (including the paper's defense-first orders) is the job
/// of bdd/order.hpp.
///
/// Concurrency: the manager supports *concurrent construction* - mk() and
/// the apply family may be called from several threads at once (the
/// level-parallel builder in bdd/build.cpp does exactly that) once
/// enter_concurrent_mode() has been called. The unique table and the
/// computed cache are striped: each of kStripes shards owns its own mutex
/// and hash map, so threads building independent subtrees rarely contend;
/// outside concurrent mode the stripe locks are skipped entirely, keeping
/// the serial hot path as fast as a single-map design. Node storage is a
/// chunked arena whose chunks never move, making node reads lock-free in
/// both modes; a published Ref (one obtained from any manager operation)
/// can always be dereferenced safely. The *set* of nodes a build creates
/// is canonical, so node counts and every structural query are identical
/// for every thread count - only node indices may be permuted between
/// runs.
///
/// Nodes are never garbage collected: the analyses in this library build a
/// bounded number of functions per manager, and node indices stay stable,
/// which the Pareto propagation (core/bdd_bu.cpp) relies on. A configurable
/// node limit guards against ordering-induced blow-up; exceeding it throws
/// LimitError rather than exhausting memory.

#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace adtp::bdd {

/// Index of a BDD node within its manager. 0 and 1 are the terminals.
using Ref = std::uint32_t;

inline constexpr Ref kFalse = 0;
inline constexpr Ref kTrue = 1;

/// One nonterminal BDD node. Terminals use var = kTermVar.
struct BddNode {
  std::uint32_t var;
  Ref low;
  Ref high;
};

/// Aggregate statistics of a manager (for benches and reports). Counter
/// values are exact after construction quiesces; num_nodes is always
/// exact. Note that cache hit/miss tallies can vary across thread counts
/// (racing threads may both miss the same apply before one publishes) -
/// the produced BDD never does.
struct ManagerStats {
  std::size_t num_nodes = 0;     ///< total allocated, incl. both terminals
  std::size_t unique_hits = 0;   ///< mk() calls answered from the table
  std::size_t cache_hits = 0;    ///< apply/not calls answered from cache
  std::size_t cache_misses = 0;
};

class Manager {
 public:
  /// A manager over \p num_vars variables; \p node_limit bounds the total
  /// number of allocated nodes (0 means the default of 16M).
  explicit Manager(std::uint32_t num_vars, std::size_t node_limit = 0);

  [[nodiscard]] std::uint32_t num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

  /// A snapshot of the counters (aggregated across stripes).
  [[nodiscard]] ManagerStats stats() const;

  [[nodiscard]] bool is_terminal(Ref f) const noexcept { return f <= kTrue; }

  /// Variable index of a nonterminal node; throws for terminals.
  [[nodiscard]] std::uint32_t var(Ref f) const;
  [[nodiscard]] Ref low(Ref f) const;
  [[nodiscard]] Ref high(Ref f) const;

  /// Switches the manager into concurrent-construction mode: from then
  /// on every unique-table / computed-cache / allocation access takes
  /// its stripe lock. One-way, and it must happen-before the first
  /// concurrent operation (the level-parallel builder flips it before
  /// dispatching to its pool, so the pool's own synchronization
  /// publishes the flag). Serial callers never pay for locks they do
  /// not need - the single-threaded hot path stays lock-free.
  void enter_concurrent_mode() noexcept { concurrent_ = true; }
  [[nodiscard]] bool concurrent_mode() const noexcept { return concurrent_; }

  /// The hash-consing constructor: returns the canonical node for
  /// (var, low, high), applying both ROBDD reduction rules. Thread-safe
  /// in concurrent mode.
  Ref mk(std::uint32_t var, Ref low, Ref high);

  /// The function "variable v" and its negation.
  Ref make_var(std::uint32_t v);
  Ref make_nvar(std::uint32_t v);

  // Memoized Boolean operations; thread-safe.
  Ref apply_and(Ref f, Ref g);
  Ref apply_or(Ref f, Ref g);
  Ref apply_xor(Ref f, Ref g);
  Ref apply_not(Ref f);

  /// if-then-else: f ? g : h.
  Ref ite(Ref f, Ref g, Ref h);

  /// Cofactor: f with variable \p v fixed to \p value.
  Ref restrict_var(Ref f, std::uint32_t v, bool value);

  /// Evaluates f under a full assignment (index = variable).
  [[nodiscard]] bool evaluate(Ref f, const std::vector<bool>& assignment) const;

  /// Number of satisfying assignments of f over all num_vars() variables.
  [[nodiscard]] double sat_count(Ref f) const;

  /// Number of nodes reachable from f (terminals included) - the |W| of
  /// the paper's complexity bound.
  [[nodiscard]] std::size_t size(Ref f) const;

  /// Nodes reachable from \p f in ascending index order (children before
  /// parents - a node's children exist before mk() can reference them, so
  /// index order is topological even under concurrent construction).
  [[nodiscard]] std::vector<Ref> reachable(Ref f) const;

  /// A path assignment: one entry per variable; 0/1 for decisions taken
  /// along the path, DontCare for variables the path skips (the paper's
  /// Example 6 writes these as '*').
  static constexpr std::int8_t kDontCare = -1;

  /// Enumerates every root-to-\p target path of \p f as partial
  /// assignments (the paper's "paths in the BDD correspond to evaluations
  /// of the structure function"). Throws LimitError when more than
  /// \p max_paths paths exist (path counts are worst-case exponential).
  [[nodiscard]] std::vector<std::vector<std::int8_t>> enumerate_paths(
      Ref f, Ref target, std::size_t max_paths = 1u << 20) const;

 private:
  enum class Op : std::uint8_t { And, Or, Xor };

  struct UniqueKey {
    std::uint32_t var;
    Ref low;
    Ref high;
    bool operator==(const UniqueKey&) const = default;
  };
  struct UniqueKeyHash {
    std::size_t operator()(const UniqueKey& k) const noexcept;
  };
  struct CacheKey {
    std::uint8_t op;  // Op, or 0xFF for NOT
    Ref f;
    Ref g;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const noexcept;
  };

  /// Lock shards of the unique table / computed cache. 64 stripes keep
  /// 8-16 concurrent builders mostly contention-free while the per-stripe
  /// maps stay small enough to be cheap for tiny managers.
  static constexpr std::size_t kStripes = 64;

  struct UniqueStripe {
    mutable std::mutex mutex;  // mutable: stats() locks through const this
    std::unordered_map<UniqueKey, Ref, UniqueKeyHash> map;
    std::size_t hits = 0;  ///< guarded by mutex
  };
  struct CacheStripe {
    mutable std::mutex mutex;
    std::unordered_map<CacheKey, Ref, CacheKeyHash> map;
    std::size_t hits = 0;    ///< guarded by mutex
    std::size_t misses = 0;  ///< guarded by mutex
  };

  // Chunked node arena: chunk c holds 2^(kFirstChunkBits + c) nodes and
  // starts at index (2^c - 1) << kFirstChunkBits, so capacity doubles
  // while small managers only ever touch the first 1K-node chunk. Chunks
  // never move, which is what makes node() lock-free.
  static constexpr std::uint32_t kFirstChunkBits = 10;
  static constexpr std::size_t kMaxChunks = 33;

  static std::uint32_t chunk_of(Ref f) noexcept {
    return static_cast<std::uint32_t>(
               std::bit_width((f >> kFirstChunkBits) + 1)) -
           1;
  }
  static Ref chunk_start(std::uint32_t c) noexcept {
    return ((Ref{1} << c) - 1) << kFirstChunkBits;
  }

  /// Lock-free node read; \p f must be a published nonterminal Ref.
  [[nodiscard]] const BddNode& node(Ref f) const noexcept {
    const std::uint32_t c = chunk_of(f);
    return chunks_[c].load(std::memory_order_acquire)[f - chunk_start(c)];
  }

  /// Locks \p m only in concurrent mode (see enter_concurrent_mode()).
  class MaybeLock {
   public:
    MaybeLock(std::mutex& m, bool enabled) : m_(enabled ? &m : nullptr) {
      if (m_ != nullptr) m_->lock();
    }
    MaybeLock(const MaybeLock&) = delete;
    MaybeLock& operator=(const MaybeLock&) = delete;
    ~MaybeLock() {
      if (m_ != nullptr) m_->unlock();
    }

   private:
    std::mutex* m_;
  };

  /// Appends a node to the arena; takes alloc_mutex_ (in concurrent
  /// mode) and enforces the node limit.
  Ref allocate(const BddNode& n);

  Ref apply(Op op, Ref f, Ref g);
  [[nodiscard]] static bool terminal_of(Op op, bool a, bool b) noexcept;

  std::uint32_t num_vars_;
  std::size_t node_limit_;
  bool concurrent_ = false;

  std::array<std::atomic<BddNode*>, kMaxChunks> chunks_{};
  std::vector<std::unique_ptr<BddNode[]>> chunk_storage_;  // alloc_mutex_
  std::mutex alloc_mutex_;
  std::atomic<std::uint32_t> size_{0};

  std::array<UniqueStripe, kStripes> unique_;
  std::array<CacheStripe, kStripes> cache_;

  static constexpr std::uint32_t kTermVar = 0xFFFFFFFFu;
};

}  // namespace adtp::bdd
