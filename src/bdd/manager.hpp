/// \file manager.hpp
/// \brief A from-scratch ROBDD engine (Definition 10).
///
/// Classic index-based reduced ordered binary decision diagrams without
/// complement edges:
///  - nodes are (var, low, high) triples hash-consed in a unique table, so
///    structurally equal functions share one node (reduction rule 1);
///  - mk() collapses nodes with identical children (reduction rule 2);
///  - binary operations go through a memoized apply(); negation has its own
///    memoized recursion.
///
/// Variables are dense indices 0..num_vars-1 and the index *is* the order:
/// smaller variables are tested closer to the root. Mapping ADT leaves to
/// variable indices (including the paper's defense-first orders) is the job
/// of bdd/order.hpp.
///
/// Nodes are never garbage collected: the analyses in this library build a
/// bounded number of functions per manager, and node indices stay stable,
/// which the Pareto propagation (core/bdd_bu.cpp) relies on. A configurable
/// node limit guards against ordering-induced blow-up; exceeding it throws
/// LimitError rather than exhausting memory.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace adtp::bdd {

/// Index of a BDD node within its manager. 0 and 1 are the terminals.
using Ref = std::uint32_t;

inline constexpr Ref kFalse = 0;
inline constexpr Ref kTrue = 1;

/// One nonterminal BDD node. Terminals use var = kTermVar.
struct BddNode {
  std::uint32_t var;
  Ref low;
  Ref high;
};

/// Aggregate statistics of a manager (for benches and reports).
struct ManagerStats {
  std::size_t num_nodes = 0;     ///< total allocated, incl. both terminals
  std::size_t unique_hits = 0;   ///< mk() calls answered from the table
  std::size_t cache_hits = 0;    ///< apply/not calls answered from cache
  std::size_t cache_misses = 0;
};

class Manager {
 public:
  /// A manager over \p num_vars variables; \p node_limit bounds the total
  /// number of allocated nodes (0 means the default of 16M).
  explicit Manager(std::uint32_t num_vars, std::size_t node_limit = 0);

  [[nodiscard]] std::uint32_t num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const ManagerStats& stats() const noexcept { return stats_; }

  [[nodiscard]] bool is_terminal(Ref f) const noexcept { return f <= kTrue; }

  /// Variable index of a nonterminal node; throws for terminals.
  [[nodiscard]] std::uint32_t var(Ref f) const;
  [[nodiscard]] Ref low(Ref f) const;
  [[nodiscard]] Ref high(Ref f) const;

  /// The hash-consing constructor: returns the canonical node for
  /// (var, low, high), applying both ROBDD reduction rules.
  Ref mk(std::uint32_t var, Ref low, Ref high);

  /// The function "variable v" and its negation.
  Ref make_var(std::uint32_t v);
  Ref make_nvar(std::uint32_t v);

  Ref apply_and(Ref f, Ref g);
  Ref apply_or(Ref f, Ref g);
  Ref apply_xor(Ref f, Ref g);
  Ref apply_not(Ref f);

  /// if-then-else: f ? g : h.
  Ref ite(Ref f, Ref g, Ref h);

  /// Cofactor: f with variable \p v fixed to \p value.
  Ref restrict_var(Ref f, std::uint32_t v, bool value);

  /// Evaluates f under a full assignment (index = variable).
  [[nodiscard]] bool evaluate(Ref f, const std::vector<bool>& assignment) const;

  /// Number of satisfying assignments of f over all num_vars() variables.
  [[nodiscard]] double sat_count(Ref f) const;

  /// Number of nodes reachable from f (terminals included) - the |W| of
  /// the paper's complexity bound.
  [[nodiscard]] std::size_t size(Ref f) const;

  /// Nodes reachable from \p f in ascending index order (children before
  /// parents - mk() creates children first, so index order is topological).
  [[nodiscard]] std::vector<Ref> reachable(Ref f) const;

  /// A path assignment: one entry per variable; 0/1 for decisions taken
  /// along the path, DontCare for variables the path skips (the paper's
  /// Example 6 writes these as '*').
  static constexpr std::int8_t kDontCare = -1;

  /// Enumerates every root-to-\p target path of \p f as partial
  /// assignments (the paper's "paths in the BDD correspond to evaluations
  /// of the structure function"). Throws LimitError when more than
  /// \p max_paths paths exist (path counts are worst-case exponential).
  [[nodiscard]] std::vector<std::vector<std::int8_t>> enumerate_paths(
      Ref f, Ref target, std::size_t max_paths = 1u << 20) const;

 private:
  enum class Op : std::uint8_t { And, Or, Xor };

  struct UniqueKey {
    std::uint32_t var;
    Ref low;
    Ref high;
    bool operator==(const UniqueKey&) const = default;
  };
  struct UniqueKeyHash {
    std::size_t operator()(const UniqueKey& k) const noexcept;
  };
  struct CacheKey {
    std::uint8_t op;  // Op, or 0xFF for NOT
    Ref f;
    Ref g;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const noexcept;
  };

  Ref apply(Op op, Ref f, Ref g);
  [[nodiscard]] static bool terminal_of(Op op, bool a, bool b) noexcept;
  void check_limit();

  std::uint32_t num_vars_;
  std::size_t node_limit_;
  std::vector<BddNode> nodes_;
  std::unordered_map<UniqueKey, Ref, UniqueKeyHash> unique_;
  std::unordered_map<CacheKey, Ref, CacheKeyHash> cache_;
  ManagerStats stats_;

  static constexpr std::uint32_t kTermVar = 0xFFFFFFFFu;
};

}  // namespace adtp::bdd
