/// \file order.hpp
/// \brief Variable orders for ADT BDDs, including the paper's
///        defense-first orders (Definition 11).
///
/// A VarOrder maps every basic step (leaf) of an Adt to a BDD variable
/// index; index 0 is tested first. Theorem 2 requires a *defense-first*
/// order - every BDS before every BAS - which all factory heuristics here
/// produce by construction. The heuristic choice changes only the BDD
/// *size* (and hence BDDBU's running time), not correctness; the
/// ordering_ablation bench quantifies the difference.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adt/adt.hpp"

namespace adtp::bdd {

/// How leaves are arranged inside the defense block and the attack block.
enum class OrderHeuristic : std::uint8_t {
  Dfs,    ///< first-visit order of a depth-first traversal from the root
  Bfs,    ///< first-visit order of a breadth-first traversal
  Index,  ///< ascending NodeId (construction order)
  Random  ///< a seeded shuffle (for ablation baselines)
};

[[nodiscard]] const char* to_string(OrderHeuristic h) noexcept;

/// A defense-first variable order over the leaves of one Adt.
class VarOrder {
 public:
  /// An empty order; only useful as a to-be-assigned placeholder.
  VarOrder() = default;

  /// Builds a defense-first order with the given heuristic. \p seed is
  /// only used by OrderHeuristic::Random.
  static VarOrder defense_first(const Adt& adt,
                                OrderHeuristic heuristic = OrderHeuristic::Dfs,
                                std::uint64_t seed = 1);

  /// Builds an order from an explicit leaf sequence (defenses first).
  /// Throws ModelError if the sequence is not a permutation of the leaves
  /// or is not defense-first.
  static VarOrder from_sequence(const Adt& adt, std::vector<NodeId> leaves);

  /// Total number of variables (= |D| + |A|).
  [[nodiscard]] std::uint32_t num_vars() const noexcept {
    return static_cast<std::uint32_t>(order_.size());
  }

  /// Number of defense variables; defenses occupy [0, num_defenses()).
  [[nodiscard]] std::uint32_t num_defenses() const noexcept {
    return num_defenses_;
  }

  /// The leaf tested at variable index \p var.
  [[nodiscard]] NodeId node_of(std::uint32_t var) const;

  /// The variable index of leaf \p id; throws if \p id is not a leaf.
  [[nodiscard]] std::uint32_t var_of(NodeId id) const;

  /// True iff \p var is a defense variable.
  [[nodiscard]] bool is_defense_var(std::uint32_t var) const {
    return var < num_defenses_;
  }

  /// The leaf sequence (variable index -> NodeId).
  [[nodiscard]] const std::vector<NodeId>& sequence() const noexcept {
    return order_;
  }

  /// Renders as "d2 < d1 < a1 < a2" (the paper's Fig. 6 notation).
  [[nodiscard]] std::string to_string(const Adt& adt) const;

 private:
  std::vector<NodeId> order_;          // var -> leaf
  std::vector<std::uint32_t> var_of_;  // NodeId -> var (or kNoVar)
  std::uint32_t num_defenses_ = 0;

  static constexpr std::uint32_t kNoVar = 0xFFFFFFFFu;
};

}  // namespace adtp::bdd
