#include "bdd/manager.hpp"

#include <algorithm>
#include <cmath>

namespace adtp::bdd {

namespace {

constexpr std::size_t kDefaultNodeLimit = std::size_t{16} * 1024 * 1024;

std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::size_t Manager::UniqueKeyHash::operator()(
    const UniqueKey& k) const noexcept {
  std::uint64_t h = (static_cast<std::uint64_t>(k.var) << 32) ^ k.low;
  return static_cast<std::size_t>(mix(h ^ (static_cast<std::uint64_t>(k.high)
                                           << 17)));
}

std::size_t Manager::CacheKeyHash::operator()(
    const CacheKey& k) const noexcept {
  std::uint64_t h = (static_cast<std::uint64_t>(k.f) << 32) ^ k.g;
  return static_cast<std::size_t>(mix(h + k.op));
}

Manager::Manager(std::uint32_t num_vars, std::size_t node_limit)
    : num_vars_(num_vars),
      node_limit_(node_limit == 0 ? kDefaultNodeLimit : node_limit) {
  // Terminals occupy indices 0 (false) and 1 (true). Construction is
  // single-threaded, so plain allocate() is fine.
  allocate(BddNode{kTermVar, kFalse, kFalse});
  allocate(BddNode{kTermVar, kTrue, kTrue});
}

Ref Manager::allocate(const BddNode& n) {
  const MaybeLock lock(alloc_mutex_, concurrent_);
  const std::uint32_t idx = size_.load(std::memory_order_relaxed);
  if (idx >= node_limit_) {
    throw LimitError("bdd: node limit of " + std::to_string(node_limit_) +
                     " exceeded (the variable order may be adversarial for "
                     "this model)");
  }
  const std::uint32_t c = chunk_of(idx);
  BddNode* chunk = chunks_[c].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    auto fresh =
        std::make_unique<BddNode[]>(std::size_t{1} << (kFirstChunkBits + c));
    chunk = fresh.get();
    chunk_storage_.push_back(std::move(fresh));
    chunks_[c].store(chunk, std::memory_order_release);
  }
  chunk[idx - chunk_start(c)] = n;
  size_.store(idx + 1, std::memory_order_release);
  return idx;
}

ManagerStats Manager::stats() const {
  ManagerStats out;
  out.num_nodes = num_nodes();
  for (const UniqueStripe& s : unique_) {
    const std::lock_guard<std::mutex> lock(s.mutex);
    out.unique_hits += s.hits;
  }
  for (const CacheStripe& s : cache_) {
    const std::lock_guard<std::mutex> lock(s.mutex);
    out.cache_hits += s.hits;
    out.cache_misses += s.misses;
  }
  return out;
}

std::uint32_t Manager::var(Ref f) const {
  if (is_terminal(f)) {
    throw ModelError("bdd: terminal nodes carry no variable");
  }
  return node(f).var;
}

Ref Manager::low(Ref f) const {
  if (is_terminal(f)) throw ModelError("bdd: terminals have no children");
  return node(f).low;
}

Ref Manager::high(Ref f) const {
  if (is_terminal(f)) throw ModelError("bdd: terminals have no children");
  return node(f).high;
}

Ref Manager::mk(std::uint32_t v, Ref lo, Ref hi) {
  if (v >= num_vars_) {
    throw ModelError("bdd: variable " + std::to_string(v) +
                     " out of range (num_vars = " + std::to_string(num_vars_) +
                     ")");
  }
  const std::uint32_t allocated = size_.load(std::memory_order_acquire);
  if (lo >= allocated || hi >= allocated) {
    throw ModelError("bdd: mk() child out of range");
  }
  // Ordering invariant: children must test strictly later variables.
  if ((!is_terminal(lo) && node(lo).var <= v) ||
      (!is_terminal(hi) && node(hi).var <= v)) {
    throw ModelError("bdd: mk() would violate the variable order");
  }
  if (lo == hi) return lo;  // reduction rule 2
  const UniqueKey key{v, lo, hi};
  // Stripe selection uses a cheap multiplicative mix, not the full map
  // hash (the map re-hashes internally anyway); it only needs to spread
  // concurrent builders across the 64 locks.
  static_assert(kStripes == 64,
                "stripe indices take the top 6 bits of a 32-bit mix");
  UniqueStripe& stripe =
      unique_[((lo ^ (hi << 7) ^ (v << 13)) * 0x9E3779B1u) >> 26];
  const MaybeLock lock(stripe.mutex, concurrent_);
  if (auto it = stripe.map.find(key); it != stripe.map.end()) {
    ++stripe.hits;
    return it->second;  // reduction rule 1
  }
  const Ref ref = allocate(BddNode{v, lo, hi});
  stripe.map.emplace(key, ref);
  return ref;
}

Ref Manager::make_var(std::uint32_t v) { return mk(v, kFalse, kTrue); }

Ref Manager::make_nvar(std::uint32_t v) { return mk(v, kTrue, kFalse); }

bool Manager::terminal_of(Op op, bool a, bool b) noexcept {
  switch (op) {
    case Op::And:
      return a && b;
    case Op::Or:
      return a || b;
    case Op::Xor:
      return a != b;
  }
  return false;
}

Ref Manager::apply(Op op, Ref f, Ref g) {
  // Terminal cases, including short circuits.
  switch (op) {
    case Op::And:
      if (f == kFalse || g == kFalse) return kFalse;
      if (f == kTrue) return g;
      if (g == kTrue) return f;
      if (f == g) return f;
      break;
    case Op::Or:
      if (f == kTrue || g == kTrue) return kTrue;
      if (f == kFalse) return g;
      if (g == kFalse) return f;
      if (f == g) return f;
      break;
    case Op::Xor:
      if (f == kFalse) return g;
      if (g == kFalse) return f;
      if (f == g) return kFalse;
      if (f == kTrue) return apply_not(g);
      if (g == kTrue) return apply_not(f);
      break;
  }

  // Normalize commutative operands for better cache hit rates.
  if (f > g) std::swap(f, g);
  const CacheKey key{static_cast<std::uint8_t>(op), f, g};
  CacheStripe& stripe =
      cache_[((f ^ (g << 9) ^ (static_cast<std::uint32_t>(key.op) << 17)) *
              0x9E3779B1u) >>
             26];
  {
    const MaybeLock lock(stripe.mutex, concurrent_);
    if (auto it = stripe.map.find(key); it != stripe.map.end()) {
      ++stripe.hits;
      return it->second;
    }
    ++stripe.misses;
  }
  // The stripe lock is NOT held across the recursion: two threads may
  // race the same apply and both compute it, but hash consing makes the
  // results identical, so the second insert below is a no-op.

  const std::uint32_t fv = is_terminal(f) ? kTermVar : node(f).var;
  const std::uint32_t gv = is_terminal(g) ? kTermVar : node(g).var;
  const std::uint32_t v = std::min(fv, gv);

  const Ref f0 = (fv == v) ? node(f).low : f;
  const Ref f1 = (fv == v) ? node(f).high : f;
  const Ref g0 = (gv == v) ? node(g).low : g;
  const Ref g1 = (gv == v) ? node(g).high : g;

  const Ref lo = apply(op, f0, g0);
  const Ref hi = apply(op, f1, g1);
  const Ref result = mk(v, lo, hi);
  {
    const MaybeLock lock(stripe.mutex, concurrent_);
    stripe.map.emplace(key, result);
  }
  return result;
}

Ref Manager::apply_and(Ref f, Ref g) { return apply(Op::And, f, g); }
Ref Manager::apply_or(Ref f, Ref g) { return apply(Op::Or, f, g); }
Ref Manager::apply_xor(Ref f, Ref g) { return apply(Op::Xor, f, g); }

Ref Manager::apply_not(Ref f) {
  if (f == kFalse) return kTrue;
  if (f == kTrue) return kFalse;
  const CacheKey key{0xFF, f, 0};
  CacheStripe& stripe = cache_[((f ^ 0xFFu) * 0x9E3779B1u) >> 26];
  {
    const MaybeLock lock(stripe.mutex, concurrent_);
    if (auto it = stripe.map.find(key); it != stripe.map.end()) {
      ++stripe.hits;
      return it->second;
    }
    ++stripe.misses;
  }
  const Ref result =
      mk(node(f).var, apply_not(node(f).low), apply_not(node(f).high));
  {
    const MaybeLock lock(stripe.mutex, concurrent_);
    stripe.map.emplace(key, result);
  }
  return result;
}

Ref Manager::ite(Ref f, Ref g, Ref h) {
  // (f AND g) OR (NOT f AND h); adequate for this library's workloads.
  return apply_or(apply_and(f, g), apply_and(apply_not(f), h));
}

Ref Manager::restrict_var(Ref f, std::uint32_t v, bool value) {
  if (is_terminal(f)) return f;
  const BddNode& n = node(f);
  if (n.var > v) return f;  // v does not occur below here
  if (n.var == v) return value ? n.high : n.low;
  const Ref lo = restrict_var(n.low, v, value);
  const Ref hi = restrict_var(n.high, v, value);
  return mk(n.var, lo, hi);
}

bool Manager::evaluate(Ref f, const std::vector<bool>& assignment) const {
  if (assignment.size() != num_vars_) {
    throw ModelError("bdd: evaluate() needs one value per variable");
  }
  while (!is_terminal(f)) {
    const BddNode& n = node(f);
    f = assignment[n.var] ? n.high : n.low;
  }
  return f == kTrue;
}

double Manager::sat_count(Ref f) const {
  // Count over reachable nodes, then scale by skipped variables.
  const auto order = reachable(f);
  std::unordered_map<Ref, double> counts;
  for (Ref r : order) {
    if (r == kFalse) {
      counts[r] = 0;
    } else if (r == kTrue) {
      counts[r] = 1;
    } else {
      const BddNode& n = node(r);
      auto weight = [&](Ref child) {
        const std::uint32_t child_var =
            is_terminal(child) ? num_vars_ : node(child).var;
        const double skipped = static_cast<double>(child_var - n.var - 1);
        return counts.at(child) * std::pow(2.0, skipped);
      };
      counts[r] = weight(n.low) + weight(n.high);
    }
  }
  const std::uint32_t root_var = is_terminal(f) ? num_vars_ : node(f).var;
  return counts.at(f) * std::pow(2.0, static_cast<double>(root_var));
}

std::size_t Manager::size(Ref f) const { return reachable(f).size(); }

std::vector<std::vector<std::int8_t>> Manager::enumerate_paths(
    Ref f, Ref target, std::size_t max_paths) const {
  if (target != kFalse && target != kTrue) {
    throw ModelError("bdd: enumerate_paths target must be a terminal");
  }
  std::vector<std::vector<std::int8_t>> paths;
  std::vector<std::int8_t> current(num_vars_, kDontCare);

  auto recurse = [&](auto&& self, Ref w) -> void {
    if (is_terminal(w)) {
      if (w == target) {
        if (paths.size() >= max_paths) {
          throw LimitError("bdd: more than " + std::to_string(max_paths) +
                           " paths");
        }
        paths.push_back(current);
      }
      return;
    }
    const BddNode& n = node(w);
    current[n.var] = 0;
    self(self, n.low);
    current[n.var] = 1;
    self(self, n.high);
    current[n.var] = kDontCare;
  };
  recurse(recurse, f);
  return paths;
}

std::vector<Ref> Manager::reachable(Ref f) const {
  std::vector<char> seen(num_nodes(), 0);
  std::vector<Ref> stack{f};
  seen[f] = 1;
  while (!stack.empty()) {
    const Ref r = stack.back();
    stack.pop_back();
    if (is_terminal(r)) continue;
    const BddNode& n = node(r);
    for (Ref child : {n.low, n.high}) {
      if (!seen[child]) {
        seen[child] = 1;
        stack.push_back(child);
      }
    }
  }
  std::vector<Ref> out;
  const Ref total = static_cast<Ref>(seen.size());
  for (Ref r = 0; r < total; ++r) {
    if (seen[r]) out.push_back(r);
  }
  return out;
}

}  // namespace adtp::bdd
