#include "bdd/order.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace adtp::bdd {

const char* to_string(OrderHeuristic h) noexcept {
  switch (h) {
    case OrderHeuristic::Dfs:
      return "dfs";
    case OrderHeuristic::Bfs:
      return "bfs";
    case OrderHeuristic::Index:
      return "index";
    case OrderHeuristic::Random:
      return "random";
  }
  return "?";
}

namespace {

std::vector<NodeId> leaves_dfs(const Adt& adt) {
  std::vector<NodeId> leaves;
  std::vector<char> seen(adt.size(), 0);
  // Explicit stack; children pushed in reverse so they pop left-to-right.
  std::vector<NodeId> stack{adt.root()};
  seen[adt.root()] = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    const Node& n = adt.node(v);
    if (n.type == GateType::BasicStep) {
      leaves.push_back(v);
      continue;
    }
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      if (!seen[*it]) {
        seen[*it] = 1;
        stack.push_back(*it);
      }
    }
  }
  return leaves;
}

std::vector<NodeId> leaves_bfs(const Adt& adt) {
  std::vector<NodeId> leaves;
  std::vector<char> seen(adt.size(), 0);
  std::deque<NodeId> queue{adt.root()};
  seen[adt.root()] = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    const Node& n = adt.node(v);
    if (n.type == GateType::BasicStep) {
      leaves.push_back(v);
      continue;
    }
    for (NodeId c : n.children) {
      if (!seen[c]) {
        seen[c] = 1;
        queue.push_back(c);
      }
    }
  }
  return leaves;
}

}  // namespace

VarOrder VarOrder::defense_first(const Adt& adt, OrderHeuristic heuristic,
                                 std::uint64_t seed) {
  std::vector<NodeId> leaves;
  switch (heuristic) {
    case OrderHeuristic::Dfs:
      leaves = leaves_dfs(adt);
      break;
    case OrderHeuristic::Bfs:
      leaves = leaves_bfs(adt);
      break;
    case OrderHeuristic::Index:
    case OrderHeuristic::Random: {
      for (NodeId id : adt.defense_steps()) leaves.push_back(id);
      for (NodeId id : adt.attack_steps()) leaves.push_back(id);
      break;
    }
  }

  // Partition into the defense block followed by the attack block,
  // preserving the heuristic's relative order (stable).
  std::vector<NodeId> sequence;
  sequence.reserve(leaves.size());
  for (NodeId id : leaves) {
    if (adt.agent(id) == Agent::Defender) sequence.push_back(id);
  }
  const auto defenses = sequence.size();
  for (NodeId id : leaves) {
    if (adt.agent(id) == Agent::Attacker) sequence.push_back(id);
  }

  if (heuristic == OrderHeuristic::Random) {
    Rng rng(seed);
    // Fisher-Yates within each block; the blocks themselves stay fixed so
    // the order remains defense-first.
    for (std::size_t i = defenses; i > 1; --i) {
      std::swap(sequence[i - 1], sequence[rng.below(i)]);
    }
    for (std::size_t i = sequence.size(); i > defenses + 1; --i) {
      std::swap(sequence[i - 1],
                sequence[defenses + rng.below(i - defenses)]);
    }
  }

  return from_sequence(adt, std::move(sequence));
}

VarOrder VarOrder::from_sequence(const Adt& adt, std::vector<NodeId> leaves) {
  const std::size_t expected = adt.num_attacks() + adt.num_defenses();
  if (leaves.size() != expected) {
    throw ModelError("VarOrder: sequence has " +
                     std::to_string(leaves.size()) + " leaves, expected " +
                     std::to_string(expected));
  }
  VarOrder order;
  order.order_ = std::move(leaves);
  order.var_of_.assign(adt.size(), kNoVar);

  bool in_attack_block = false;
  for (std::uint32_t v = 0; v < order.order_.size(); ++v) {
    const NodeId id = order.order_[v];
    if (id >= adt.size() || adt.type(id) != GateType::BasicStep) {
      throw ModelError("VarOrder: sequence entry " + std::to_string(v) +
                       " is not a basic step");
    }
    if (order.var_of_[id] != kNoVar) {
      throw ModelError("VarOrder: leaf '" + adt.name(id) +
                       "' appears twice in the sequence");
    }
    order.var_of_[id] = v;
    if (adt.agent(id) == Agent::Attacker) {
      in_attack_block = true;
    } else {
      if (in_attack_block) {
        throw ModelError(
            "VarOrder: defense '" + adt.name(id) +
            "' ordered after an attack; Theorem 2 requires defense-first "
            "orders");
      }
      ++order.num_defenses_;
    }
  }
  return order;
}

NodeId VarOrder::node_of(std::uint32_t var) const {
  if (var >= order_.size()) {
    throw ModelError("VarOrder: variable " + std::to_string(var) +
                     " out of range");
  }
  return order_[var];
}

std::uint32_t VarOrder::var_of(NodeId id) const {
  if (id >= var_of_.size() || var_of_[id] == kNoVar) {
    throw ModelError("VarOrder: node " + std::to_string(id) +
                     " is not a leaf of this order");
  }
  return var_of_[id];
}

std::string VarOrder::to_string(const Adt& adt) const {
  std::string out;
  for (std::size_t v = 0; v < order_.size(); ++v) {
    if (v != 0) out += " < ";
    out += adt.name(order_[v]);
  }
  return out;
}

}  // namespace adtp::bdd
