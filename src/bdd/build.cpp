#include "bdd/build.hpp"

#include <algorithm>
#include <optional>

#include "util/error.hpp"

namespace adtp::bdd {

namespace {

/// One gate being folded: its pending operand list shrinks by balanced
/// pairwise reduction rounds until a single Ref remains. The pairing
/// shape depends only on the child list, never on scheduling, so every
/// thread count folds the very same apply tree.
struct GateFold {
  NodeId id = 0;
  GateType type = GateType::And;
  std::vector<Ref> ops;
  std::vector<Ref> next;  ///< per-round results, disjoint slots per task
};

/// A (gate, pair) work item of one reduction round.
struct FoldTask {
  std::uint32_t fold;
  std::uint32_t pair;
};

}  // namespace

std::vector<Ref> build_all(Manager& manager, const Adt& adt,
                           const VarOrder& order,
                           const BuildOptions& options) {
  if (manager.num_vars() != order.num_vars()) {
    throw ModelError("bdd::build_all: manager has " +
                     std::to_string(manager.num_vars()) +
                     " variables but the order defines " +
                     std::to_string(order.num_vars()));
  }

  // Group nodes by height (longest path to a leaf): a node's children all
  // live in strictly lower levels, so one level's translations are
  // mutually independent.
  std::vector<std::uint32_t> height(adt.size(), 0);
  std::uint32_t max_height = 0;
  for (NodeId v : adt.topological_order()) {
    std::uint32_t h = 0;
    for (NodeId c : adt.node(v).children) h = std::max(h, height[c] + 1);
    height[v] = h;
    max_height = std::max(max_height, h);
  }
  std::vector<std::vector<NodeId>> levels(max_height + 1);
  for (NodeId v : adt.topological_order()) levels[height[v]].push_back(v);

  // Pool resolution: an externally shared pool wins; otherwise spawn one
  // only when more than one worker was asked for.
  WorkerPool* pool = options.pool;
  std::optional<WorkerPool> owned;
  if (pool == nullptr && resolve_thread_knob(options.threads) > 1) {
    owned.emplace(options.threads);
    pool = &*owned;
  }
  // The stripe locks only engage when tasks will actually run on more
  // than one thread; the flag is published to the workers through the
  // pool's own dispatch synchronization.
  if (pool != nullptr && pool->threads() > 1) {
    manager.enter_concurrent_mode();
  }
  auto for_each = [&](std::size_t count, std::size_t grain,
                      const std::function<void(unsigned, std::size_t)>& fn) {
    if (pool != nullptr && pool->threads() > 1) {
      pool->parallel_for(count, grain, fn);
    } else {
      for (std::size_t i = 0; i < count; ++i) fn(0, i);
    }
  };

  std::vector<Ref> result(adt.size(), kFalse);

  // Height 0: basic steps translate to their variables.
  const std::vector<NodeId>& leaves = levels[0];
  for_each(leaves.size(), 16, [&](unsigned, std::size_t i) {
    result[leaves[i]] = manager.make_var(order.var_of(leaves[i]));
  });

  std::vector<GateFold> folds;
  std::vector<FoldTask> tasks;
  for (std::uint32_t h = 1; h <= max_height; ++h) {
    folds.clear();
    for (NodeId v : levels[h]) {
      const Node& n = adt.node(v);
      GateFold fold;
      fold.id = v;
      fold.type = n.type;
      fold.ops.reserve(n.children.size());
      for (NodeId c : n.children) fold.ops.push_back(result[c]);
      folds.push_back(std::move(fold));
    }

    // Balanced reduction rounds: each round pairs adjacent operands of
    // every still-unfinished gate; an odd leftover passes through. All
    // pairs of a round - across gates - run as one parallel_for.
    while (true) {
      tasks.clear();
      for (std::uint32_t f = 0; f < folds.size(); ++f) {
        GateFold& fold = folds[f];
        const std::size_t pairs = fold.ops.size() / 2;
        fold.next.resize(pairs);
        for (std::uint32_t p = 0; p < pairs; ++p) {
          tasks.push_back(FoldTask{f, p});
        }
      }
      if (tasks.empty()) break;

      for_each(tasks.size(), 1, [&](unsigned, std::size_t t) {
        GateFold& fold = folds[tasks[t].fold];
        const std::uint32_t p = tasks[t].pair;
        const Ref a = fold.ops[2 * p];
        const Ref b = fold.ops[2 * p + 1];
        switch (fold.type) {
          case GateType::And:
            fold.next[p] = manager.apply_and(a, b);
            break;
          case GateType::Or:
            fold.next[p] = manager.apply_or(a, b);
            break;
          case GateType::Inhibit:
            // Definition 3: f(inhibited) AND NOT f(trigger); an INH has
            // exactly two children, so this is its only pair.
            fold.next[p] = manager.apply_and(a, manager.apply_not(b));
            break;
          case GateType::BasicStep:
            break;  // unreachable: leaves live in level 0
        }
      });

      for (GateFold& fold : folds) {
        if (fold.ops.size() < 2) continue;
        const bool odd = fold.ops.size() % 2 != 0;
        const Ref leftover = fold.ops.back();
        fold.ops = std::move(fold.next);
        fold.next = {};
        if (odd) fold.ops.push_back(leftover);
      }
    }

    for (GateFold& fold : folds) {
      // AND/OR gates are validated non-empty, so one operand remains.
      result[fold.id] = fold.ops.front();
    }
  }
  return result;
}

Ref build_structure_function(Manager& manager, const Adt& adt,
                             const VarOrder& order,
                             const BuildOptions& options) {
  return build_all(manager, adt, order, options)[adt.root()];
}

}  // namespace adtp::bdd
