#include "bdd/build.hpp"

#include "util/error.hpp"

namespace adtp::bdd {

std::vector<Ref> build_all(Manager& manager, const Adt& adt,
                           const VarOrder& order) {
  if (manager.num_vars() != order.num_vars()) {
    throw ModelError("bdd::build_all: manager has " +
                     std::to_string(manager.num_vars()) +
                     " variables but the order defines " +
                     std::to_string(order.num_vars()));
  }
  std::vector<Ref> result(adt.size(), kFalse);
  // Ascending NodeId is topological, so children are already translated.
  for (NodeId v : adt.topological_order()) {
    const Node& n = adt.node(v);
    switch (n.type) {
      case GateType::BasicStep:
        result[v] = manager.make_var(order.var_of(v));
        break;
      case GateType::And: {
        Ref acc = kTrue;
        for (NodeId c : n.children) acc = manager.apply_and(acc, result[c]);
        result[v] = acc;
        break;
      }
      case GateType::Or: {
        Ref acc = kFalse;
        for (NodeId c : n.children) acc = manager.apply_or(acc, result[c]);
        result[v] = acc;
        break;
      }
      case GateType::Inhibit: {
        // Definition 3: f(inhibited) AND NOT f(trigger).
        const Ref inhibited = result[n.children[0]];
        const Ref trigger = result[n.children[1]];
        result[v] = manager.apply_and(inhibited, manager.apply_not(trigger));
        break;
      }
    }
  }
  return result;
}

Ref build_structure_function(Manager& manager, const Adt& adt,
                             const VarOrder& order) {
  return build_all(manager, adt, order)[adt.root()];
}

}  // namespace adtp::bdd
