#include "bdd/build.hpp"

#include <cstdint>
#include <optional>

#include "util/error.hpp"

namespace adtp::bdd {

namespace {

/// One node of the compiled apply DAG. Var tasks materialize a leaf's
/// variable; the pair kinds apply two earlier tasks' results. Operand
/// fields \p a and \p b are *task* ids, so the task list doubles as the
/// dependency graph.
struct BuildTask {
  enum class Kind : std::uint8_t { Var, And, Or, Inh };
  Kind kind = Kind::Var;
  std::uint32_t a = 0;  ///< Var: variable index; else left operand task
  std::uint32_t b = 0;  ///< pair kinds: right operand task
};

}  // namespace

std::vector<Ref> build_all(Manager& manager, const Adt& adt,
                           const VarOrder& order,
                           const BuildOptions& options) {
  if (manager.num_vars() != order.num_vars()) {
    throw ModelError("bdd::build_all: manager has " +
                     std::to_string(manager.num_vars()) +
                     " variables but the order defines " +
                     std::to_string(order.num_vars()));
  }

  // Compile the ADT into a flat task list. Walking the topological
  // order and emitting each gate's balanced reduction rounds in
  // ascending round order makes the creation order itself a valid
  // topological order of the task DAG - the sequential path below is
  // therefore a plain loop. The pairing shape (adjacent operands, odd
  // leftover carried into the next round) depends only on child lists,
  // never on scheduling, so every thread count folds the very same
  // apply tree.
  std::vector<BuildTask> tasks;
  tasks.reserve(2 * adt.size());
  std::vector<std::uint32_t> final_task(adt.size(), 0);
  std::vector<std::uint32_t> ops;
  std::vector<std::uint32_t> next;
  for (NodeId v : adt.topological_order()) {
    const Node& n = adt.node(v);
    if (n.type == GateType::BasicStep) {
      tasks.push_back(BuildTask{BuildTask::Kind::Var, order.var_of(v), 0});
      final_task[v] = static_cast<std::uint32_t>(tasks.size() - 1);
      continue;
    }
    if (n.type == GateType::Inhibit) {
      // Definition 3: f(inhibited) AND NOT f(trigger). An INH has
      // exactly two children, so it is a single apply task.
      tasks.push_back(BuildTask{BuildTask::Kind::Inh,
                                final_task[n.children[0]],
                                final_task[n.children[1]]});
      final_task[v] = static_cast<std::uint32_t>(tasks.size() - 1);
      continue;
    }
    const BuildTask::Kind kind = n.type == GateType::And
                                     ? BuildTask::Kind::And
                                     : BuildTask::Kind::Or;
    ops.clear();
    for (NodeId c : n.children) ops.push_back(final_task[c]);
    while (ops.size() > 1) {
      next.clear();
      const std::size_t pairs = ops.size() / 2;
      for (std::size_t p = 0; p < pairs; ++p) {
        tasks.push_back(BuildTask{kind, ops[2 * p], ops[2 * p + 1]});
        next.push_back(static_cast<std::uint32_t>(tasks.size() - 1));
      }
      if (ops.size() % 2 != 0) next.push_back(ops.back());
      ops.swap(next);
    }
    // AND/OR gates are validated non-empty; a one-child gate simply
    // aliases its child's task.
    final_task[v] = ops.front();
  }

  std::vector<Ref> value(tasks.size(), kFalse);
  auto exec = [&](std::uint32_t t) {
    const BuildTask& task = tasks[t];
    switch (task.kind) {
      case BuildTask::Kind::Var:
        value[t] = manager.make_var(task.a);
        break;
      case BuildTask::Kind::And:
        value[t] = manager.apply_and(value[task.a], value[task.b]);
        break;
      case BuildTask::Kind::Or:
        value[t] = manager.apply_or(value[task.a], value[task.b]);
        break;
      case BuildTask::Kind::Inh:
        value[t] = manager.apply_and(value[task.a],
                                     manager.apply_not(value[task.b]));
        break;
    }
  };

  // Pool resolution: an externally shared scheduler wins; otherwise
  // spawn one only when more than one worker was asked for.
  TaskScheduler* pool = options.pool;
  std::optional<TaskScheduler> owned;
  if (pool == nullptr && resolve_thread_knob(options.threads) > 1) {
    owned.emplace(options.threads);
    pool = &*owned;
  }

  if (pool != nullptr && pool->threads() > 1) {
    // The stripe locks only engage when tasks will actually run on more
    // than one thread; the flag is published to the workers through the
    // scheduler's own synchronization.
    manager.enter_concurrent_mode();
    auto body = [&](unsigned, std::uint32_t t) { exec(t); };
    TaskGraph graph;
    graph.reserve(tasks.size(), 2 * tasks.size());
    for (std::uint32_t t = 0; t < tasks.size(); ++t) {
      graph.add(body, t);
      if (tasks[t].kind != BuildTask::Kind::Var) {
        graph.depends(t, tasks[t].a);
        graph.depends(t, tasks[t].b);
      }
    }
    const TaskRunStats stats = pool->run(graph);
    if (options.stats != nullptr) *options.stats += stats;
  } else {
    for (std::uint32_t t = 0; t < tasks.size(); ++t) exec(t);
  }

  std::vector<Ref> result(adt.size(), kFalse);
  for (NodeId v = 0; v < adt.size(); ++v) result[v] = value[final_task[v]];
  return result;
}

Ref build_structure_function(Manager& manager, const Adt& adt,
                             const VarOrder& order,
                             const BuildOptions& options) {
  return build_all(manager, adt, order, options)[adt.root()];
}

}  // namespace adtp::bdd
