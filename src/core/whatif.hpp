/// \file whatif.hpp
/// \brief Counterfactual ("what-if") analysis: fronts of single-step
///        deletions, served from a shared per-node front memo.
///
/// A counterfactual variant asks "what does the Pareto front become if
/// one basic step disappears?" - a defense that was decommissioned, an
/// attack capability that was patched away. Deleting a basic step b is
/// fixing its structure-function variable to false and constant-folding:
/// an AND with a false child is false, an OR drops false children (and is
/// false once all are gone), an INH with a false inhibited child is false
/// and with a false trigger collapses to its inhibited child. The fold is
/// exact - the variant's structure function equals the original's with
/// x_b := false - so the variant front is the true front of the reduced
/// model.
///
/// counterfactual_sweep() builds every single-deletion variant and
/// analyzes them all against ONE shared NodeFrontMemo (node_memo.hpp):
/// each variant differs from the baseline along one leaf-to-root spine,
/// so every untouched subtree front is computed once - by the baseline -
/// and replayed by every variant that contains it. The sweep then ranks
/// the steps by how much their deletion moves the front (front_shift),
/// giving a criticality ordering of the model's basic steps.
///
/// Determinism: variants are built and analyzed in a fixed order
/// (ascending NodeId) and the memo replays bit-identical fronts, so the
/// report - fronts, shifts, ranking - is identical for every thread count
/// and whether or not the memo is shared (docs/CONTRACTS.md).

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/analyzer.hpp"

namespace adtp {

class NodeFrontMemo;

/// Returns the model with basic step \p leaf deleted (its variable fixed
/// to false and the structure constant-folded), or std::nullopt when the
/// fold collapses the whole root to false - the "trivial" variant where
/// no attack ever succeeds (deleting a defense never causes this; losing
/// an attack step can). Throws ModelError if \p leaf is not a basic step.
///
/// The surviving nodes keep their names, agents and attribute values, so
/// untouched subtrees hash identically (node_memo.hpp) and their memoized
/// fronts are shared between the original and the variant.
[[nodiscard]] std::optional<AugmentedAdt> with_basic_step_removed(
    const AugmentedAdt& aadt, NodeId leaf);

/// Convenience overload by leaf name.
[[nodiscard]] std::optional<AugmentedAdt> with_basic_step_removed(
    const AugmentedAdt& aadt, const std::string& name);

struct CounterfactualOptions {
  /// Options for the baseline and every variant analysis. The algorithm
  /// resolves as in analyze_incremental(); per-algorithm memo pointers
  /// set here win over the sweep's shared memo.
  AnalysisOptions analysis;

  /// Shared per-node memo; nullptr (default) makes the sweep create a
  /// private one sized for the model. Pass a long-lived memo to share
  /// fronts across sweeps (the interactive what-if workload).
  NodeFrontMemo* memo = nullptr;

  bool include_attacks = true;   ///< sweep attacker basic steps
  bool include_defenses = true;  ///< sweep defender basic steps
};

/// Outcome of one single-deletion variant.
struct CounterfactualVariant {
  NodeId node = kNoNode;  ///< the deleted basic step (baseline NodeId)
  std::string name;       ///< its name
  Agent agent = Agent::Attacker;
  bool ok = false;        ///< analysis succeeded (also true when trivial)
  /// True iff the deletion collapsed the root to constant false: no
  /// attack succeeds at all. \p front is empty and front_shift is 1.
  bool trivial = false;
  Front front;        ///< the variant's Pareto front (empty iff trivial)
  std::string error;  ///< exception message iff !ok
  /// Criticality: 1 - |shared points| / max(|baseline|, |variant|),
  /// where points are compared bit-identically. 0 = deletion changed
  /// nothing, 1 = no point survived.
  double front_shift = 0;
  /// Points in exactly one of the two fronts (symmetric difference).
  std::size_t points_changed = 0;
  double seconds = 0;  ///< build + analysis wall-clock for this variant
};

/// Outcome of a whole sweep.
struct CounterfactualReport {
  AnalysisResult baseline;  ///< the unmodified model's front
  /// One entry per swept basic step, ascending baseline NodeId.
  std::vector<CounterfactualVariant> variants;
  /// Indices into \p variants, most critical first (front_shift
  /// descending, name ascending as the deterministic tie-break).
  std::vector<std::size_t> ranking;
  std::uint64_t memo_hits = 0;    ///< summed over baseline + variants
  std::uint64_t memo_misses = 0;  ///< ditto
  double seconds = 0;             ///< wall-clock for the whole sweep
};

/// Analyzes the baseline and every single-deletion variant per
/// \p options, sharing one per-node front memo across all of them.
[[nodiscard]] CounterfactualReport counterfactual_sweep(
    const AugmentedAdt& aadt, const CounterfactualOptions& options = {});

}  // namespace adtp
