#include "core/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>

#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace adtp {

namespace {

/// State shared by the item tasks of one analyze_batch() call.
struct BatchContext {
  std::span<const BatchJob> jobs;
  const BatchOptions& options;
  BatchReport& report;
  Deadline deadline;  ///< batch-wide; disabled when deadline_seconds <= 0
  /// The batch scheduler; shared with items' intra-model phases when
  /// donate_intra_model is on.
  TaskScheduler* sched = nullptr;

  /// Serializes completion bookkeeping and the on_item callback; also
  /// guards report.completion_order and report.callback_error.
  std::mutex stream_mutex;
  bool callback_failed = false;  ///< guarded by stream_mutex

  /// Latched when the batch deadline / cancel token actually affected an
  /// item (skip or in-flight abort). The report flags come from these,
  /// never from re-sampling the clock after the batch drained - a batch
  /// whose last item finished just inside the budget reports false even
  /// if the teardown crosses the line.
  std::atomic<bool> saw_deadline{false};
  std::atomic<bool> saw_cancel{false};

  BatchContext(std::span<const BatchJob> jobs_, const BatchOptions& options_,
               BatchReport& report_)
      : jobs(jobs_),
        options(options_),
        report(report_),
        deadline(options_.deadline_seconds) {}
};

bool batch_cancelled(const BatchContext& ctx) {
  return ctx.options.cancel != nullptr && ctx.options.cancel->cancelled();
}

/// Copies the job's options and threads the batch-wide guards, the
/// slot's persistent arena, and (when sharing is on) the batch scheduler
/// into every per-algorithm slot that has not been explicitly set by the
/// caller. Precedence: a job that carries its own deadline/cancel
/// pointer keeps it for the in-flight phase (an explicit per-item guard
/// is a deliberate override); the batch-wide guards still gate that
/// item's *start* via the between-item checks.
AnalysisOptions instrument_options(const BatchContext& ctx,
                                   const AnalysisOptions& base,
                                   FrontArena<ValuePoint>& arena) {
  AnalysisOptions opts = base;
  const Deadline* deadline =
      ctx.options.deadline_seconds > 0 ? &ctx.deadline : nullptr;
  const CancelToken* cancel = ctx.options.cancel;
  auto inject = [&](const Deadline*& d, const CancelToken*& c) {
    if (d == nullptr) d = deadline;
    if (c == nullptr) c = cancel;
  };
  inject(opts.naive.deadline, opts.naive.cancel);
  inject(opts.bottom_up.deadline, opts.bottom_up.cancel);
  inject(opts.bdd.deadline, opts.bdd.cancel);
  inject(opts.hybrid.bdd.deadline, opts.hybrid.bdd.cancel);
  if (opts.bottom_up.arena == nullptr) opts.bottom_up.arena = &arena;
  if (opts.bdd.arena == nullptr) opts.bdd.arena = &arena;
  if (opts.hybrid.bdd.arena == nullptr) opts.hybrid.bdd.arena = &arena;
  // Shared-memo serving: every item consults one per-node front memo, so
  // edited variants of one model recompute only their dirty spines. The
  // memo is thread-safe and hit results are bit-identical, so injection
  // is invisible to the determinism guarantee above.
  if (ctx.options.memo != nullptr) {
    if (opts.bottom_up.memo == nullptr) opts.bottom_up.memo = ctx.options.memo;
    if (opts.hybrid.memo == nullptr) opts.hybrid.memo = ctx.options.memo;
  }
  // Scheduler sharing: hand the batch scheduler to every intra-model
  // parallel path, so an oversized item (a huge naive enumeration, one
  // giant tree or DAG) spreads over whatever slots are idle instead of
  // straggling on one - work stealing balances items against shards with
  // no hand-tuned split. Each path still applies its own work floors, so
  // small items run their cheap sequential kernels untouched. An
  // explicit per-item thread or pool knob is a deliberate setting and
  // disables the injection.
  if (ctx.sched != nullptr && ctx.sched->threads() > 1 &&
      ctx.options.donate_intra_model && opts.intra_model_threads == 0 &&
      opts.naive.threads == 1 && opts.naive.pool == nullptr &&
      opts.bottom_up.threads == 1 && opts.bottom_up.pool == nullptr &&
      opts.bdd.threads == 1 && opts.bdd.pool == nullptr &&
      opts.hybrid.bdd.threads == 1 && opts.hybrid.bdd.pool == nullptr) {
    opts.naive.pool = ctx.sched;
    opts.bottom_up.pool = ctx.sched;
    opts.bdd.pool = ctx.sched;
    opts.hybrid.bdd.pool = ctx.sched;
  }
  return opts;
}

void run_item(BatchContext& ctx, const BatchJob& job, BatchItem& item,
              FrontArena<ValuePoint>& arena) {
  Stopwatch watch;
  // Between-items checks: claimed-but-unstarted work is shed the moment
  // the batch is cancelled or out of budget.
  if (batch_cancelled(ctx)) {
    ctx.saw_cancel.store(true, std::memory_order_relaxed);
    item.skipped = true;
    item.error = "analyze_batch: batch cancelled";
    item.seconds = watch.seconds();
    return;
  }
  if (ctx.deadline.expired()) {
    ctx.saw_deadline.store(true, std::memory_order_relaxed);
    item.skipped = true;
    item.error = "analyze_batch: batch deadline expired";
    item.seconds = watch.seconds();
    return;
  }
  try {
    if (job.model == nullptr) throw Error("analyze_batch: null model pointer");
    const AnalysisOptions opts = instrument_options(ctx, job.options, arena);
    FrontCache* cache = ctx.options.cache;
    if (cache != nullptr && cacheable(*job.model)) {
      // Single-flight: duplicated jobs in one batch (fleet scenarios,
      // sweeps with repeated points) analyze once; every other worker on
      // the key blocks on the computer and takes the published result as
      // a hit. The reservation MUST be resolved - publish on success,
      // abandon on any failure - or waiters hang.
      const FrontCacheKey key = front_cache_key(*job.model, opts);
      FrontCache::FlightLookup flight = cache->lookup_or_reserve(key);
      if (flight.result.has_value()) {
        item.result = std::move(*flight.result);
        item.cached = true;
        item.ok = true;
      } else {
        try {
          item.result = analyze(*job.model, opts);
        } catch (...) {
          cache->abandon(key);
          throw;
        }
        item.ok = true;
        cache->publish(key, item.result);
      }
    } else {
      item.result = analyze(*job.model, opts);
      item.ok = true;
    }
    if (!item.cached) {
      item.memo_hits = item.result.memo_hits;
      item.memo_misses = item.result.memo_misses;
    }
  } catch (const CancelledError& e) {
    // Attribute to the batch token only if it is the one that fired (the
    // job may carry its own).
    if (batch_cancelled(ctx)) {
      ctx.saw_cancel.store(true, std::memory_order_relaxed);
    }
    item.ok = false;
    item.error = e.what();
  } catch (const DeadlineError& e) {
    if (ctx.options.deadline_seconds > 0 && ctx.deadline.expired()) {
      ctx.saw_deadline.store(true, std::memory_order_relaxed);
    }
    item.ok = false;
    item.error = e.what();
  } catch (const std::exception& e) {
    item.ok = false;
    item.error = e.what();
  } catch (...) {
    // Custom Semiring hooks can throw anything; never let it escape an
    // item task (it would abort the whole batch graph).
    item.ok = false;
    item.error = "analyze_batch: non-standard exception";
  }
  item.seconds = watch.seconds();
}

/// Records the item's completion and streams it to the caller. One mutex
/// makes completion_order exactly the callback invocation order.
void finish_item(BatchContext& ctx, const BatchItem& item) {
  const std::lock_guard<std::mutex> lock(ctx.stream_mutex);
  ctx.report.completion_order.push_back(item.index);
  if (ctx.options.on_item && !ctx.callback_failed) {
    try {
      ctx.options.on_item(item);
    } catch (const std::exception& e) {
      ctx.callback_failed = true;
      ctx.report.callback_error = e.what();
    } catch (...) {
      ctx.callback_failed = true;
      ctx.report.callback_error = "analyze_batch: non-standard exception";
    }
  }
}

}  // namespace

BatchReport analyze_batch(std::span<const BatchJob> jobs,
                          const BatchOptions& options) {
  BatchReport report;
  report.items.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) report.items[i].index = i;
  report.completion_order.reserve(jobs.size());

  // With scheduler sharing on, the full requested width stays: a batch
  // of one giant job on an 8-wide scheduler runs that job's intra-model
  // tasks on all 8 slots. Without sharing, extra slots could never see
  // work, so the width is clamped to the job count.
  unsigned requested = resolve_thread_knob(options.n_threads);
  if (!options.donate_intra_model) {
    requested = static_cast<unsigned>(std::min<std::size_t>(
        requested, std::max<std::size_t>(1, jobs.size())));
  }

  Stopwatch watch;
  TaskScheduler sched(requested);
  report.threads_used = sched.threads();
  BatchContext ctx(jobs, options, report);
  if (options.donate_intra_model) ctx.sched = &sched;

  // One arena per scheduler slot, alive for the whole batch: combine
  // buffers recycle across every item a slot processes, not just within
  // one analysis. Item tasks are the only users (intra-model parallel
  // kernels keep private arenas), and a slot runs one item at a time,
  // so the arenas are never shared.
  std::vector<FrontArena<ValuePoint>> arenas(sched.threads());
  auto body = [&](unsigned slot, std::uint32_t i) {
    BatchItem& item = report.items[i];
    run_item(ctx, jobs[i], item, arenas[slot]);
    finish_item(ctx, item);
  };
  TaskGraph graph;
  graph.reserve(jobs.size());
  for (std::uint32_t i = 0; i < jobs.size(); ++i) graph.add(body, i);
  // run_item/finish_item capture every exception, so the graph cannot
  // abort; the stats cover item tasks plus all shared intra-model tasks
  // the items nested onto the scheduler.
  report.sched = sched.run(graph);

  report.seconds = watch.seconds();
  report.deadline_expired =
      ctx.saw_deadline.load(std::memory_order_relaxed);
  report.cancelled = ctx.saw_cancel.load(std::memory_order_relaxed);

  for (const BatchItem& item : report.items) {
    if (!item.ok) ++report.failures;
    if (item.skipped) ++report.skipped;
    if (item.cached) ++report.cache_hits;
    report.memo_hits += item.memo_hits;
    report.memo_misses += item.memo_misses;
  }
  return report;
}

BatchReport analyze_batch(const std::vector<BatchJob>& jobs,
                          const BatchOptions& options) {
  return analyze_batch(std::span<const BatchJob>(jobs), options);
}

BatchReport analyze_batch(const std::vector<AugmentedAdt>& models,
                          const AnalysisOptions& analysis,
                          const BatchOptions& options) {
  std::vector<BatchJob> jobs;
  jobs.reserve(models.size());
  for (const AugmentedAdt& model : models) {
    jobs.push_back(BatchJob{&model, analysis});
  }
  return analyze_batch(std::span<const BatchJob>(jobs), options);
}

BatchReport analyze_batch(std::span<const AugmentedAdt* const> models,
                          const AnalysisOptions& options, unsigned n_threads) {
  std::vector<BatchJob> jobs;
  jobs.reserve(models.size());
  for (const AugmentedAdt* model : models) {
    jobs.push_back(BatchJob{model, options});
  }
  BatchOptions batch;
  batch.n_threads = n_threads;
  return analyze_batch(std::span<const BatchJob>(jobs), batch);
}

BatchReport analyze_batch(const std::vector<AugmentedAdt>& models,
                          const AnalysisOptions& options, unsigned n_threads) {
  BatchOptions batch;
  batch.n_threads = n_threads;
  return analyze_batch(models, options, batch);
}

}  // namespace adtp
