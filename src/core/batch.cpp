#include "core/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "util/timer.hpp"

namespace adtp {

namespace {

void run_item(const AugmentedAdt* model, const AnalysisOptions& options,
              BatchItem& item) {
  Stopwatch watch;
  try {
    if (model == nullptr) throw Error("analyze_batch: null model pointer");
    item.result = analyze(*model, options);
    item.ok = true;
  } catch (const std::exception& e) {
    item.ok = false;
    item.error = e.what();
  } catch (...) {
    // Custom Semiring hooks can throw anything; never let it escape a
    // worker thread (std::terminate would take the whole batch down).
    item.ok = false;
    item.error = "analyze_batch: non-standard exception";
  }
  item.seconds = watch.seconds();
}

}  // namespace

BatchReport analyze_batch(std::span<const AugmentedAdt* const> models,
                          const AnalysisOptions& options, unsigned n_threads) {
  BatchReport report;
  report.items.resize(models.size());
  for (std::size_t i = 0; i < models.size(); ++i) report.items[i].index = i;

  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  n_threads = static_cast<unsigned>(
      std::min<std::size_t>(n_threads, std::max<std::size_t>(1, models.size())));
  report.threads_used = n_threads;

  Stopwatch watch;
  if (n_threads == 1) {
    for (std::size_t i = 0; i < models.size(); ++i) {
      run_item(models[i], options, report.items[i]);
    }
  } else {
    // Self-balancing pool: each worker claims the next unprocessed index.
    // Items are disjoint slots of a pre-sized vector, so no locking.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= models.size()) break;
        run_item(models[i], options, report.items[i]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(n_threads - 1);
    try {
      for (unsigned t = 0; t + 1 < n_threads; ++t) pool.emplace_back(worker);
    } catch (const std::system_error&) {
      // Thread creation failed (resource limit): the workers that did
      // start, plus the calling thread, still drain the whole queue.
    }
    worker();  // the calling thread participates
    for (std::thread& t : pool) t.join();
    report.threads_used = static_cast<unsigned>(pool.size()) + 1;
  }
  report.seconds = watch.seconds();

  for (const BatchItem& item : report.items) {
    if (!item.ok) ++report.failures;
  }
  return report;
}

BatchReport analyze_batch(const std::vector<AugmentedAdt>& models,
                          const AnalysisOptions& options, unsigned n_threads) {
  std::vector<const AugmentedAdt*> pointers;
  pointers.reserve(models.size());
  for (const AugmentedAdt& model : models) pointers.push_back(&model);
  return analyze_batch(std::span<const AugmentedAdt* const>(pointers), options,
                       n_threads);
}

}  // namespace adtp
