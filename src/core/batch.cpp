#include "core/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "util/timer.hpp"

namespace adtp {

namespace {

/// State shared by the workers of one analyze_batch() call.
struct BatchContext {
  std::span<const BatchJob> jobs;
  const BatchOptions& options;
  BatchReport& report;
  Deadline deadline;  ///< batch-wide; disabled when deadline_seconds <= 0
  /// intra_model_threads donated to every item that did not set its own:
  /// floor(requested batch threads / jobs) when the pool is wider than
  /// the job list, else 1 (no override is injected then).
  unsigned donated_threads = 1;

  std::atomic<std::size_t> next{0};  ///< next unclaimed item index
  /// Serializes completion bookkeeping and the on_item callback; also
  /// guards report.completion_order and report.callback_error.
  std::mutex stream_mutex;
  bool callback_failed = false;  ///< guarded by stream_mutex

  /// Latched when the batch deadline / cancel token actually affected an
  /// item (skip or in-flight abort). The report flags come from these,
  /// never from re-sampling the clock after the batch drained - a batch
  /// whose last item finished just inside the budget reports false even
  /// if the join crosses the line.
  std::atomic<bool> saw_deadline{false};
  std::atomic<bool> saw_cancel{false};

  BatchContext(std::span<const BatchJob> jobs_, const BatchOptions& options_,
               BatchReport& report_)
      : jobs(jobs_),
        options(options_),
        report(report_),
        deadline(options_.deadline_seconds) {}
};

bool batch_cancelled(const BatchContext& ctx) {
  return ctx.options.cancel != nullptr && ctx.options.cancel->cancelled();
}

/// Copies the job's options and threads the batch-wide guards and the
/// worker's persistent arena into every per-algorithm slot that has not
/// been explicitly set by the caller. Precedence: a job that carries its
/// own deadline/cancel pointer keeps it for the in-flight phase (an
/// explicit per-item guard is a deliberate override); the batch-wide
/// guards still gate that item's *start* via the between-item checks.
AnalysisOptions instrument_options(const BatchContext& ctx,
                                   const AnalysisOptions& base,
                                   FrontArena<ValuePoint>& arena) {
  AnalysisOptions opts = base;
  const Deadline* deadline =
      ctx.options.deadline_seconds > 0 ? &ctx.deadline : nullptr;
  const CancelToken* cancel = ctx.options.cancel;
  auto inject = [&](const Deadline*& d, const CancelToken*& c) {
    if (d == nullptr) d = deadline;
    if (c == nullptr) c = cancel;
  };
  inject(opts.naive.deadline, opts.naive.cancel);
  inject(opts.bottom_up.deadline, opts.bottom_up.cancel);
  inject(opts.bdd.deadline, opts.bdd.cancel);
  inject(opts.hybrid.bdd.deadline, opts.hybrid.bdd.cancel);
  if (opts.bottom_up.arena == nullptr) opts.bottom_up.arena = &arena;
  if (opts.bdd.arena == nullptr) opts.bdd.arena = &arena;
  if (opts.hybrid.bdd.arena == nullptr) opts.hybrid.bdd.arena = &arena;
  // Idle-worker donation: a pool wider than the job list hands the
  // surplus to each analysis as intra-model shards. An explicit per-item
  // intra_model_threads, naive.threads, or bdd threads knob is a
  // deliberate setting and is kept.
  if (ctx.donated_threads > 1 && opts.intra_model_threads == 0 &&
      opts.naive.threads == 1 && opts.bdd.threads == 1 &&
      opts.hybrid.bdd.threads == 1) {
    opts.intra_model_threads = ctx.donated_threads;
  }
  return opts;
}

void run_item(BatchContext& ctx, const BatchJob& job, BatchItem& item,
              FrontArena<ValuePoint>& arena) {
  Stopwatch watch;
  // Between-items checks: claimed-but-unstarted work is shed the moment
  // the batch is cancelled or out of budget.
  if (batch_cancelled(ctx)) {
    ctx.saw_cancel.store(true, std::memory_order_relaxed);
    item.skipped = true;
    item.error = "analyze_batch: batch cancelled";
    item.seconds = watch.seconds();
    return;
  }
  if (ctx.deadline.expired()) {
    ctx.saw_deadline.store(true, std::memory_order_relaxed);
    item.skipped = true;
    item.error = "analyze_batch: batch deadline expired";
    item.seconds = watch.seconds();
    return;
  }
  try {
    if (job.model == nullptr) throw Error("analyze_batch: null model pointer");
    const AnalysisOptions opts = instrument_options(ctx, job.options, arena);
    FrontCache* cache = ctx.options.cache;
    if (cache != nullptr && cacheable(*job.model)) {
      const FrontCacheKey key = front_cache_key(*job.model, opts);
      if (auto hit = cache->lookup(key)) {
        item.result = std::move(*hit);
        item.cached = true;
        item.ok = true;
      } else {
        item.result = analyze(*job.model, opts);
        item.ok = true;
        cache->insert(key, item.result);
      }
    } else {
      item.result = analyze(*job.model, opts);
      item.ok = true;
    }
  } catch (const CancelledError& e) {
    // Attribute to the batch token only if it is the one that fired (the
    // job may carry its own).
    if (batch_cancelled(ctx)) {
      ctx.saw_cancel.store(true, std::memory_order_relaxed);
    }
    item.ok = false;
    item.error = e.what();
  } catch (const DeadlineError& e) {
    if (ctx.options.deadline_seconds > 0 && ctx.deadline.expired()) {
      ctx.saw_deadline.store(true, std::memory_order_relaxed);
    }
    item.ok = false;
    item.error = e.what();
  } catch (const std::exception& e) {
    item.ok = false;
    item.error = e.what();
  } catch (...) {
    // Custom Semiring hooks can throw anything; never let it escape a
    // worker thread (std::terminate would take the whole batch down).
    item.ok = false;
    item.error = "analyze_batch: non-standard exception";
  }
  item.seconds = watch.seconds();
}

/// Records the item's completion and streams it to the caller. One mutex
/// makes completion_order exactly the callback invocation order.
void finish_item(BatchContext& ctx, const BatchItem& item) {
  const std::lock_guard<std::mutex> lock(ctx.stream_mutex);
  ctx.report.completion_order.push_back(item.index);
  if (ctx.options.on_item && !ctx.callback_failed) {
    try {
      ctx.options.on_item(item);
    } catch (const std::exception& e) {
      ctx.callback_failed = true;
      ctx.report.callback_error = e.what();
    } catch (...) {
      ctx.callback_failed = true;
      ctx.report.callback_error = "analyze_batch: non-standard exception";
    }
  }
}

void worker(BatchContext& ctx) {
  // One arena per worker thread, alive for the whole batch: combine
  // buffers recycle across every item this worker processes, not just
  // within one analysis.
  FrontArena<ValuePoint> arena;
  while (true) {
    const std::size_t i = ctx.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= ctx.jobs.size()) break;
    BatchItem& item = ctx.report.items[i];
    run_item(ctx, ctx.jobs[i], item, arena);
    finish_item(ctx, item);
  }
}

}  // namespace

BatchReport analyze_batch(std::span<const BatchJob> jobs,
                          const BatchOptions& options) {
  BatchReport report;
  report.items.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) report.items[i].index = i;
  report.completion_order.reserve(jobs.size());

  unsigned requested = options.n_threads;
  if (requested == 0) {
    requested = std::max(1u, std::thread::hardware_concurrency());
  }
  // Workers are clamped to the job count; the surplus of the *requested*
  // width is what donation hands back as intra-model shards.
  const unsigned n_threads = static_cast<unsigned>(
      std::min<std::size_t>(requested, std::max<std::size_t>(1, jobs.size())));
  report.threads_used = n_threads;

  Stopwatch watch;
  BatchContext ctx(jobs, options, report);
  if (options.donate_intra_model && !jobs.empty()) {
    ctx.donated_threads = std::max(
        1u, static_cast<unsigned>(requested / jobs.size()));
  }
  report.donated_intra_model_threads = ctx.donated_threads;
  if (n_threads == 1) {
    worker(ctx);
  } else {
    // Self-balancing pool: each worker claims the next unprocessed index.
    // Items are disjoint slots of a pre-sized vector, so only the
    // completion stream needs a lock.
    std::vector<std::thread> pool;
    pool.reserve(n_threads - 1);
    try {
      for (unsigned t = 0; t + 1 < n_threads; ++t) {
        pool.emplace_back([&ctx]() { worker(ctx); });
      }
    } catch (const std::system_error&) {
      // Thread creation failed (resource limit): the workers that did
      // start, plus the calling thread, still drain the whole queue.
    }
    worker(ctx);  // the calling thread participates
    for (std::thread& t : pool) t.join();
    report.threads_used = static_cast<unsigned>(pool.size()) + 1;
  }
  report.seconds = watch.seconds();
  report.deadline_expired =
      ctx.saw_deadline.load(std::memory_order_relaxed);
  report.cancelled = ctx.saw_cancel.load(std::memory_order_relaxed);

  for (const BatchItem& item : report.items) {
    if (!item.ok) ++report.failures;
    if (item.skipped) ++report.skipped;
    if (item.cached) ++report.cache_hits;
  }
  return report;
}

BatchReport analyze_batch(const std::vector<BatchJob>& jobs,
                          const BatchOptions& options) {
  return analyze_batch(std::span<const BatchJob>(jobs), options);
}

BatchReport analyze_batch(const std::vector<AugmentedAdt>& models,
                          const AnalysisOptions& analysis,
                          const BatchOptions& options) {
  std::vector<BatchJob> jobs;
  jobs.reserve(models.size());
  for (const AugmentedAdt& model : models) {
    jobs.push_back(BatchJob{&model, analysis});
  }
  return analyze_batch(std::span<const BatchJob>(jobs), options);
}

BatchReport analyze_batch(std::span<const AugmentedAdt* const> models,
                          const AnalysisOptions& options, unsigned n_threads) {
  std::vector<BatchJob> jobs;
  jobs.reserve(models.size());
  for (const AugmentedAdt* model : models) {
    jobs.push_back(BatchJob{model, options});
  }
  BatchOptions batch;
  batch.n_threads = n_threads;
  return analyze_batch(std::span<const BatchJob>(jobs), batch);
}

BatchReport analyze_batch(const std::vector<AugmentedAdt>& models,
                          const AnalysisOptions& options, unsigned n_threads) {
  BatchOptions batch;
  batch.n_threads = n_threads;
  return analyze_batch(models, options, batch);
}

}  // namespace adtp
