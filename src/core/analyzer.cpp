#include "core/analyzer.hpp"

#include "util/error.hpp"
#include "util/timer.hpp"

namespace adtp {

const char* to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::Auto:
      return "auto";
    case Algorithm::Naive:
      return "naive";
    case Algorithm::BottomUp:
      return "bottom-up";
    case Algorithm::BddBu:
      return "bdd-bu";
    case Algorithm::Hybrid:
      return "hybrid";
  }
  return "?";
}

AnalysisResult analyze(const AugmentedAdt& aadt,
                       const AnalysisOptions& options) {
  Algorithm algorithm = options.algorithm;
  if (algorithm == Algorithm::Auto) {
    algorithm =
        aadt.adt().is_tree() ? Algorithm::BottomUp : Algorithm::BddBu;
  }

  AnalysisResult result;
  result.used = algorithm;
  Stopwatch watch;
  switch (algorithm) {
    case Algorithm::Naive: {
      NaiveOptions naive = options.naive;
      if (options.intra_model_threads != 0) {
        naive.threads = options.intra_model_threads;
      }
      result.front = naive_front(aadt, naive);
      break;
    }
    case Algorithm::BottomUp: {
      BottomUpOptions bottom_up = options.bottom_up;
      if (options.intra_model_threads != 0) {
        bottom_up.threads = options.intra_model_threads;
      }
      result.front = bottom_up_front(aadt, bottom_up);
      break;
    }
    case Algorithm::BddBu: {
      BddBuOptions bdd = options.bdd;
      if (options.intra_model_threads != 0) {
        bdd.threads = options.intra_model_threads;
      }
      result.front = bdd_bu_front(aadt, bdd);
      break;
    }
    case Algorithm::Hybrid: {
      HybridOptions hybrid = options.hybrid;
      if (options.intra_model_threads != 0) {
        hybrid.bdd.threads = options.intra_model_threads;
      }
      result.front = hybrid_front(aadt, hybrid);
      break;
    }
    case Algorithm::Auto:
      throw Error("analyze: unresolved Auto algorithm");
  }
  result.seconds = watch.seconds();
  return result;
}

}  // namespace adtp
