#include "core/analyzer.hpp"

#include "core/node_memo.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace adtp {

const char* to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::Auto:
      return "auto";
    case Algorithm::Naive:
      return "naive";
    case Algorithm::BottomUp:
      return "bottom-up";
    case Algorithm::BddBu:
      return "bdd-bu";
    case Algorithm::Hybrid:
      return "hybrid";
  }
  return "?";
}

AnalysisResult analyze(const AugmentedAdt& aadt,
                       const AnalysisOptions& options) {
  Algorithm algorithm = options.algorithm;
  if (algorithm == Algorithm::Auto) {
    algorithm =
        aadt.adt().is_tree() ? Algorithm::BottomUp : Algorithm::BddBu;
  }

  AnalysisResult result;
  result.used = algorithm;
  NodeMemoStats memo_stats;
  Stopwatch watch;
  switch (algorithm) {
    case Algorithm::Naive: {
      NaiveOptions naive = options.naive;
      if (options.intra_model_threads != 0) {
        naive.threads = options.intra_model_threads;
      }
      result.front = naive_front(aadt, naive);
      break;
    }
    case Algorithm::BottomUp: {
      BottomUpOptions bottom_up = options.bottom_up;
      if (options.intra_model_threads != 0) {
        bottom_up.threads = options.intra_model_threads;
      }
      if (bottom_up.memo_stats == nullptr) bottom_up.memo_stats = &memo_stats;
      result.front = bottom_up_front(aadt, bottom_up);
      result.memo_hits = bottom_up.memo_stats->hits;
      result.memo_misses = bottom_up.memo_stats->misses;
      break;
    }
    case Algorithm::BddBu: {
      BddBuOptions bdd = options.bdd;
      if (options.intra_model_threads != 0) {
        bdd.threads = options.intra_model_threads;
      }
      result.front = bdd_bu_front(aadt, bdd);
      break;
    }
    case Algorithm::Hybrid: {
      HybridOptions hybrid = options.hybrid;
      if (options.intra_model_threads != 0) {
        hybrid.bdd.threads = options.intra_model_threads;
      }
      if (hybrid.memo_stats == nullptr) hybrid.memo_stats = &memo_stats;
      result.front = hybrid_front(aadt, hybrid);
      result.memo_hits = hybrid.memo_stats->hits;
      result.memo_misses = hybrid.memo_stats->misses;
      break;
    }
    case Algorithm::Auto:
      throw Error("analyze: unresolved Auto algorithm");
  }
  result.seconds = watch.seconds();
  return result;
}

AnalysisResult analyze_incremental(const AugmentedAdt& aadt,
                                   NodeFrontMemo& memo,
                                   const AnalysisOptions& options) {
  AnalysisOptions opts = options;
  if (opts.algorithm == Algorithm::Auto) {
    // Resolve here instead of deferring to analyze(): the incremental
    // DAG path is Hybrid (BddBu has no per-node memo - its BDD nodes are
    // not ADT subtrees).
    opts.algorithm =
        aadt.adt().is_tree() ? Algorithm::BottomUp : Algorithm::Hybrid;
  }
  if (opts.bottom_up.memo == nullptr) opts.bottom_up.memo = &memo;
  if (opts.hybrid.memo == nullptr) opts.hybrid.memo = &memo;
  return analyze(aadt, opts);
}

}  // namespace adtp
