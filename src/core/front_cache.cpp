#include "core/front_cache.hpp"

#include "util/error.hpp"
#include "util/hash.hpp"

namespace adtp {

namespace {

std::uint64_t structure_hash(const Adt& adt) {
  Fnv1a h;
  h.size(adt.size());
  h.u32(adt.root());
  for (const Node& n : adt.nodes()) {
    h.u8(static_cast<std::uint8_t>(n.type));
    h.u8(static_cast<std::uint8_t>(n.agent));
    h.size(n.children.size());
    for (NodeId c : n.children) h.u32(c);
  }
  return h.digest();
}

std::uint64_t attribution_hash(const AugmentedAdt& aadt) {
  Fnv1a h;
  // Built-in kinds are fully described by their enum tag (one/zero and the
  // operators are functions of the kind).
  h.u8(static_cast<std::uint8_t>(aadt.defender_domain().kind()));
  h.u8(static_cast<std::uint8_t>(aadt.attacker_domain().kind()));
  const Adt& adt = aadt.adt();
  h.size(adt.num_attacks());
  for (std::size_t i = 0; i < adt.num_attacks(); ++i) {
    h.f64(aadt.attack_value(i));
  }
  h.size(adt.num_defenses());
  for (std::size_t i = 0; i < adt.num_defenses(); ++i) {
    h.f64(aadt.defense_value(i));
  }
  return h.digest();
}

void hash_bdd_options(Fnv1a& h, const BddBuOptions& options) {
  h.u8(static_cast<std::uint8_t>(options.order_heuristic));
  h.u64(options.order_seed);
  h.size(options.node_limit);
  h.size(options.max_front_points);
  h.boolean(options.order.has_value());
  if (options.order.has_value()) {
    for (NodeId id : options.order->sequence()) h.u32(id);
  }
}

std::uint64_t options_hash(const AnalysisOptions& options) {
  // Every field that can change the produced front *or* turn a success
  // into a guard failure participates; the deadline/cancel/arena/pool
  // pointers do not (see the header's key contract). Thread counts
  // (intra_model_threads, naive.threads, bdd.threads) and the
  // parallel_node_floor are likewise excluded: intra-model parallelism is
  // result-invariant by construction, so a sequential run must hit the
  // cache entry a sharded run stored, and vice versa.
  Fnv1a h;
  h.u8(static_cast<std::uint8_t>(options.algorithm));
  h.size(options.naive.max_bits);
  h.size(options.bottom_up.max_front_points);
  hash_bdd_options(h, options.bdd);
  hash_bdd_options(h, options.hybrid.bdd);
  return h.digest();
}

}  // namespace

bool cacheable(const AugmentedAdt& aadt) {
  return aadt.defender_domain().kind() != SemiringKind::Custom &&
         aadt.attacker_domain().kind() != SemiringKind::Custom;
}

FrontCacheKey front_cache_key(const AugmentedAdt& aadt,
                              const AnalysisOptions& options) {
  if (!cacheable(aadt)) {
    throw Error(
        "front_cache_key: custom semiring domains cannot be content-hashed");
  }
  FrontCacheKey key;
  key.structure = structure_hash(aadt.adt());
  key.attribution = attribution_hash(aadt);
  key.options = options_hash(options);
  return key;
}

std::size_t FrontCache::KeyHash::operator()(
    const FrontCacheKey& k) const noexcept {
  std::uint64_t h = hash_combine(k.structure, k.attribution);
  h = hash_combine(h, k.options);
  return static_cast<std::size_t>(h);
}

FrontCache::FrontCache(std::size_t capacity) : capacity_(capacity) {}

FrontCache::~FrontCache() = default;

std::optional<AnalysisResult> FrontCache::lookup(const FrontCacheKey& key) {
  std::shared_ptr<const AnalysisResult> hit;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    hit = it->second->second;
  }
  return *hit;  // deep copy outside the lock
}

bool FrontCache::insert(const FrontCacheKey& key,
                        const AnalysisResult& result) {
  if (capacity_ == 0) return false;
  // Deep-copy before taking the mutex for the same reason as lookup().
  auto stored = std::make_shared<const AnalysisResult>(result);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // First writer wins: the values are identical by the determinism
    // contract, so only recency moves. Callers layering persistence key
    // off the false return to avoid storing the same entry twice.
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.duplicate_inserts;
    return false;
  }
  lru_.emplace_front(key, std::move(stored));
  map_.emplace(key, lru_.begin());
  ++stats_.insertions;
  if (lru_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return true;
}

void FrontCache::settle_flight_stats(std::uint64_t n, bool coalesced) {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_.misses -= n;
  if (coalesced) ++stats_.coalesced;
}

FrontCache::FlightLookup FrontCache::lookup_or_reserve(
    const FrontCacheKey& key) {
  std::unique_lock<std::mutex> flight(flight_mutex_);
  // Each loop iteration's failed lookup() books a miss; all but the one
  // that sticks (the reserving worker's first) are provisional and get
  // uncounted on resolution, so a logical query counts exactly one of
  // {hit, miss}.
  std::uint64_t provisional = 0;
  for (;;) {
    if (auto hit = lookup(key)) {
      settle_flight_stats(provisional, /*coalesced=*/provisional > 0);
      return FlightLookup{std::move(hit), /*must_compute=*/false};
    }
    ++provisional;
    if (in_flight_.insert(key).second) {
      settle_flight_stats(provisional - 1, /*coalesced=*/false);
      return FlightLookup{std::nullopt, /*must_compute=*/true};
    }
    flight_cv_.wait(flight);
  }
}

void FrontCache::publish(const FrontCacheKey& key,
                         const AnalysisResult& result) {
  {
    const std::lock_guard<std::mutex> flight(flight_mutex_);
    insert(key, result);
    in_flight_.erase(key);
  }
  flight_cv_.notify_all();
}

void FrontCache::abandon(const FrontCacheKey& key) {
  {
    const std::lock_guard<std::mutex> flight(flight_mutex_);
    in_flight_.erase(key);
  }
  flight_cv_.notify_all();
}

FrontCache::Stats FrontCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.entries = lru_.size();
  return out;
}

void FrontCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  map_.clear();
  stats_ = Stats{};
}

}  // namespace adtp
