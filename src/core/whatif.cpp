#include "core/whatif.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>

#include "core/node_memo.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace adtp {

namespace {

/// Follows the alias chain (INH nodes collapsed onto their inhibited
/// child). Chains are pre-resolved in topo order, so this is one hop.
NodeId resolve(const std::vector<NodeId>& alias, NodeId v) {
  return alias[v] == v ? v : alias[v];
}

/// Sorted bit-pattern keys of a front's points, for exact (bit-identical)
/// set comparison between two fronts.
std::vector<std::pair<std::uint64_t, std::uint64_t>> point_keys(
    const Front& front) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> keys;
  keys.reserve(front.points().size());
  for (const ValuePoint& p : front.points()) {
    keys.emplace_back(std::bit_cast<std::uint64_t>(p.def),
                      std::bit_cast<std::uint64_t>(p.att));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Fills the variant's front_shift / points_changed against the baseline.
void score_variant(const Front& baseline, CounterfactualVariant& variant) {
  const auto base = point_keys(baseline);
  const auto var = point_keys(variant.front);
  std::size_t common = 0;
  for (std::size_t i = 0, j = 0; i < base.size() && j < var.size();) {
    if (base[i] < var[j]) {
      ++i;
    } else if (var[j] < base[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  variant.points_changed = base.size() + var.size() - 2 * common;
  const std::size_t larger = std::max(base.size(), var.size());
  variant.front_shift =
      larger == 0 ? 0.0
                  : 1.0 - static_cast<double>(common) /
                              static_cast<double>(larger);
}

}  // namespace

std::optional<AugmentedAdt> with_basic_step_removed(const AugmentedAdt& aadt,
                                                    NodeId leaf) {
  const Adt& adt = aadt.adt();
  adt.require_frozen();
  if (leaf >= adt.size() || adt.type(leaf) != GateType::BasicStep) {
    throw ModelError(
        "with_basic_step_removed: node is not a basic step");
  }

  // Pass 1 (topo, children first): constant-fold x_leaf := false.
  //  - AND with a false child is false; OR with only false children is
  //    false; INH is false iff its inhibited child is (a false trigger
  //    never falsifies the INH - it removes the inhibition).
  //  - An INH whose trigger folded to false collapses onto its inhibited
  //    child (f(INH) = f(inhibited) AND NOT false); the alias array maps
  //    such nodes to their replacement, chains pre-resolved.
  const std::size_t n = adt.size();
  std::vector<char> is_false(n, 0);
  std::vector<NodeId> alias(n);
  for (std::size_t v = 0; v < n; ++v) alias[v] = static_cast<NodeId>(v);
  for (NodeId v : adt.topological_order()) {
    switch (adt.type(v)) {
      case GateType::BasicStep:
        is_false[v] = (v == leaf) ? 1 : 0;
        break;
      case GateType::And: {
        for (NodeId c : adt.children(v)) {
          if (is_false[c]) {
            is_false[v] = 1;
            break;
          }
        }
        break;
      }
      case GateType::Or: {
        is_false[v] = 1;
        for (NodeId c : adt.children(v)) {
          if (!is_false[c]) {
            is_false[v] = 0;
            break;
          }
        }
        break;
      }
      case GateType::Inhibit: {
        const NodeId inhibited = adt.inhibited_child(v);
        const NodeId trigger = adt.trigger_child(v);
        if (is_false[inhibited]) {
          is_false[v] = 1;
        } else if (is_false[trigger]) {
          alias[v] = resolve(alias, inhibited);
        }
        break;
      }
    }
  }

  const NodeId new_root = resolve(alias, adt.root());
  if (is_false[new_root]) return std::nullopt;

  // Pass 2 (reverse topo, root first): mark the nodes the folded model
  // still needs. OR gates skip false children; aliased INH nodes are
  // traversed through their replacement.
  std::vector<char> needed(n, 0);
  needed[new_root] = 1;
  const auto& topo = adt.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    if (!needed[v] || adt.type(v) == GateType::BasicStep) continue;
    for (NodeId c : adt.children(v)) {
      if (adt.type(v) == GateType::Or && is_false[c]) continue;
      needed[resolve(alias, c)] = 1;
    }
  }

  // Pass 3 (topo): rebuild the surviving structure. Names, agents and
  // child order are preserved, so untouched subtrees hash identically to
  // the baseline's and share its memoized fronts.
  Adt reduced;
  std::vector<NodeId> map(n, kNoNode);
  for (NodeId v : topo) {
    if (!needed[v] || alias[v] != v) continue;
    switch (adt.type(v)) {
      case GateType::BasicStep:
        map[v] = reduced.add_basic(adt.name(v), adt.agent(v));
        break;
      case GateType::And:
      case GateType::Or: {
        std::vector<NodeId> children;
        children.reserve(adt.children(v).size());
        for (NodeId c : adt.children(v)) {
          if (adt.type(v) == GateType::Or && is_false[c]) continue;
          children.push_back(map[resolve(alias, c)]);
        }
        map[v] = reduced.add_gate(adt.name(v), adt.type(v), adt.agent(v),
                                  std::move(children));
        break;
      }
      case GateType::Inhibit:
        map[v] = reduced.add_inhibit(
            adt.name(v), map[resolve(alias, adt.inhibited_child(v))],
            map[resolve(alias, adt.trigger_child(v))]);
        break;
    }
  }
  reduced.set_root(map[new_root]);
  reduced.freeze();

  Attribution attribution;
  for (NodeId a : reduced.attack_steps()) {
    attribution.set(reduced.name(a), aadt.attribution().get(reduced.name(a)));
  }
  for (NodeId d : reduced.defense_steps()) {
    attribution.set(reduced.name(d), aadt.attribution().get(reduced.name(d)));
  }
  return AugmentedAdt(std::move(reduced), std::move(attribution),
                      aadt.defender_domain(), aadt.attacker_domain());
}

std::optional<AugmentedAdt> with_basic_step_removed(const AugmentedAdt& aadt,
                                                    const std::string& name) {
  return with_basic_step_removed(aadt, aadt.adt().at(name));
}

CounterfactualReport counterfactual_sweep(const AugmentedAdt& aadt,
                                          const CounterfactualOptions& options) {
  Stopwatch watch;
  const Adt& adt = aadt.adt();
  adt.require_frozen();

  CounterfactualReport report;
  // Private memo sized so the baseline's gates plus every variant's spine
  // stay resident for the whole sweep.
  NodeFrontMemo local_memo(std::max<std::size_t>(4096, 4 * adt.size()));
  NodeFrontMemo* memo = options.memo != nullptr ? options.memo : &local_memo;

  report.baseline = analyze_incremental(aadt, *memo, options.analysis);
  report.memo_hits += report.baseline.memo_hits;
  report.memo_misses += report.baseline.memo_misses;

  std::vector<NodeId> steps;
  if (options.include_attacks) {
    steps.insert(steps.end(), adt.attack_steps().begin(),
                 adt.attack_steps().end());
  }
  if (options.include_defenses) {
    steps.insert(steps.end(), adt.defense_steps().begin(),
                 adt.defense_steps().end());
  }
  std::sort(steps.begin(), steps.end());

  report.variants.reserve(steps.size());
  for (NodeId step : steps) {
    CounterfactualVariant variant;
    variant.node = step;
    variant.name = adt.name(step);
    variant.agent = adt.agent(step);
    Stopwatch variant_watch;
    try {
      if (std::optional<AugmentedAdt> reduced =
              with_basic_step_removed(aadt, step)) {
        AnalysisResult result =
            analyze_incremental(*reduced, *memo, options.analysis);
        variant.front = std::move(result.front);
        report.memo_hits += result.memo_hits;
        report.memo_misses += result.memo_misses;
      } else {
        variant.trivial = true;
      }
      variant.ok = true;
      score_variant(report.baseline.front, variant);
    } catch (const std::exception& e) {
      variant.error = e.what();
    }
    variant.seconds = variant_watch.seconds();
    report.variants.push_back(std::move(variant));
  }

  report.ranking.resize(report.variants.size());
  for (std::size_t i = 0; i < report.ranking.size(); ++i) {
    report.ranking[i] = i;
  }
  std::sort(report.ranking.begin(), report.ranking.end(),
            [&](std::size_t a, std::size_t b) {
              const CounterfactualVariant& va = report.variants[a];
              const CounterfactualVariant& vb = report.variants[b];
              if (va.front_shift != vb.front_shift) {
                return va.front_shift > vb.front_shift;
              }
              return va.name < vb.name;
            });

  report.seconds = watch.seconds();
  return report;
}

}  // namespace adtp
