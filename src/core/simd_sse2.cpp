/// \file simd_sse2.cpp
/// \brief 2-lane (128-bit) instantiation of the SoA Pareto kernels.
///
/// SSE2 is architecturally guaranteed on x86-64, so this TU compiles
/// with the project's default flags; non-x86 targets get a nullptr
/// table and dispatch stays scalar.

#include "core/simd.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include "core/simd_kernels_impl.hpp"

namespace adtp {
namespace simd {
namespace {

struct PackSse2 {
  using V = __m128d;
  static constexpr int kWidth = 2;

  static V loadu(const double* p) { return _mm_loadu_pd(p); }
  static void storeu(double* p, V v) { _mm_storeu_pd(p, v); }
  static V set1(double x) { return _mm_set1_pd(x); }
  static V add(V a, V b) { return _mm_add_pd(a, b); }
  static V mul(V a, V b) { return _mm_mul_pd(a, b); }

  static V lt_vec(V a, V b) { return _mm_cmplt_pd(a, b); }
  static V gt_vec(V a, V b) { return _mm_cmpgt_pd(a, b); }
  static V le_vec(V a, V b) { return _mm_cmple_pd(a, b); }
  static V ge_vec(V a, V b) { return _mm_cmpge_pd(a, b); }
  static V and_vec(V a, V b) { return _mm_and_pd(a, b); }
  static V or_vec(V a, V b) { return _mm_or_pd(a, b); }
  static int mask_of(V v) { return _mm_movemask_pd(v); }
  static int lt_mask(V a, V b) { return _mm_movemask_pd(_mm_cmplt_pd(a, b)); }
  static int gt_mask(V a, V b) { return _mm_movemask_pd(_mm_cmpgt_pd(a, b)); }
  static int le_mask(V a, V b) { return _mm_movemask_pd(_mm_cmple_pd(a, b)); }
  static int ge_mask(V a, V b) { return _mm_movemask_pd(_mm_cmpge_pd(a, b)); }
  static int eq_mask(V a, V b) { return _mm_movemask_pd(_mm_cmpeq_pd(a, b)); }
  static int neq_mask(V a, V b) {
    return _mm_movemask_pd(_mm_cmpneq_pd(a, b));
  }

  /// m ? x : y per lane, m produced by a compare (all-ones / all-zeros).
  static V select(V m, V x, V y) {
    return _mm_or_pd(_mm_and_pd(m, x), _mm_andnot_pd(m, y));
  }

  /// [s, v0]: shifts the lanes up by one, feeding s into lane 0.
  static V shift_in(V v, double s) {
    return _mm_shuffle_pd(_mm_set_sd(s), v, 0);
  }

  /// Deinterleaves kWidth consecutive (def, att) pairs starting at p,
  /// preserving point order: def = [d0, d1], att = [a0, a1].
  static void load_pairs(const double* p, V* def, V* att) {
    const __m128d v0 = _mm_loadu_pd(p);      // d0 a0
    const __m128d v1 = _mm_loadu_pd(p + 2);  // d1 a1
    *def = _mm_unpacklo_pd(v0, v1);
    *att = _mm_unpackhi_pd(v0, v1);
  }

  /// As load_pairs, but the within-block lane order may be permuted
  /// (def/att stay aligned lane-for-lane) - for order-insensitive
  /// reductions. On SSE2 the ordered form is already cheapest.
  static void load_pairs_unordered(const double* p, V* def, V* att) {
    load_pairs(p, def, att);
  }
};

}  // namespace

const KernelTable* kernels_sse2() noexcept {
  static const KernelTable table = detail::make_kernel_table<PackSse2>();
  return &table;
}

}  // namespace simd
}  // namespace adtp

#else  // non-x86 targets

namespace adtp {
namespace simd {

const KernelTable* kernels_sse2() noexcept { return nullptr; }

}  // namespace simd
}  // namespace adtp

#endif
