/// \file batch.hpp
/// \brief Multi-threaded batch analysis of many AADTs (the many-scenarios
///        workload).
///
/// analyze_batch() runs analyze() over a span of models on a small
/// fixed-size thread pool: workers pull the next unclaimed index from a
/// shared atomic counter, so load balances itself without work stealing.
/// Each item gets its own wall-clock timing and error capture - one model
/// blowing a resource guard (LimitError) or failing validation never
/// affects its batch neighbours.
///
/// Determinism: item i's result is identical to calling analyze(*models[i],
/// options) sequentially; only the execution order across items varies
/// with n_threads.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/analyzer.hpp"

namespace adtp {

/// Outcome of one batch item. Exactly one of ok/error is meaningful:
/// when ok is false, \p error holds the exception message and \p result
/// is default-constructed.
struct BatchItem {
  /// Position in the input span. Redundant with the item's slot in
  /// BatchReport::items, but kept so items stay traceable when callers
  /// copy them out, sort by time, or collect only the failures.
  std::size_t index = 0;
  bool ok = false;
  AnalysisResult result;  ///< valid iff ok
  std::string error;      ///< exception what() iff !ok
  double seconds = 0;     ///< wall-clock for this item (even on failure)
};

/// Outcome of a whole batch run.
struct BatchReport {
  std::vector<BatchItem> items;  ///< one per input, in input order
  std::size_t failures = 0;      ///< number of items with !ok
  unsigned threads_used = 1;
  double seconds = 0;  ///< wall-clock for the whole batch

  /// Completed (ok) models per second of batch wall-clock.
  [[nodiscard]] double trees_per_second() const {
    if (seconds <= 0) return 0.0;
    return static_cast<double>(items.size() - failures) / seconds;
  }
};

/// Analyzes every model in \p models with \p options on \p n_threads
/// worker threads (0 = std::thread::hardware_concurrency(), clamped to the
/// batch size). Null pointers in the span are reported as failed items.
[[nodiscard]] BatchReport analyze_batch(
    std::span<const AugmentedAdt* const> models,
    const AnalysisOptions& options = {}, unsigned n_threads = 0);

/// Convenience overload over owned models.
[[nodiscard]] BatchReport analyze_batch(const std::vector<AugmentedAdt>& models,
                                        const AnalysisOptions& options = {},
                                        unsigned n_threads = 0);

}  // namespace adtp
