/// \file batch.hpp
/// \brief Job-based batch serving over many AADTs (the many-scenarios
///        workload).
///
/// analyze_batch() runs analyze() over a span of BatchJobs - each item
/// carries its own model *and* its own AnalysisOptions - as one task
/// graph on a work-stealing TaskScheduler (util/parallel.hpp). Each item
/// gets its own wall-clock timing and error capture - one model blowing
/// a resource guard (LimitError) or failing validation never affects its
/// batch neighbours. By default the items *share* the scheduler with
/// their own intra-model phases (naive shards, bottom-up sibling folds,
/// BDD build/propagate tasks): an oversized item fans its tasks out over
/// whatever slots are idle, and work stealing balances items against
/// shards with no hand-tuned thread split.
///
/// Serving features (all opt-in via BatchOptions):
///  - Deadline: a wall-clock budget for the whole batch. Items not yet
///    started when it expires are skipped; items in flight observe it
///    through the per-analysis guards (the batch injects the deadline into
///    each job's naive/bottom-up/BDD options), so a stuck item stops
///    instead of running the clock out. A job that sets its own per-item
///    deadline/cancel pointer keeps it in flight - an explicit per-item
///    guard deliberately overrides the injected one; the batch guards
///    still gate that item's start.
///  - Cancellation: a caller-owned CancelToken, polled between items and
///    inside the analysis kernels. Callable from another thread or from
///    the on_item callback ("stop after the first failure").
///  - Streaming: on_item fires as each item completes, before the batch
///    drains. Invocations are serialized (no locking needed inside the
///    callback) and their order is recorded in BatchReport::
///    completion_order.
///  - Caching: a FrontCache memoizes successful results keyed on model
///    content + options, so repeated (model, attribution) pairs are served
///    without recomputation. The cache outlives the batch; share one
///    across batches for a warm serving loop.
///
/// Underneath, every scheduler slot keeps one FrontArena alive across
/// all items it processes, so combine-buffer recycling spans the whole
/// batch rather than one analysis.
///
/// Determinism: item i's result is identical to calling analyze(*jobs[i]
/// .model, jobs[i].options) sequentially; only the execution order across
/// items (and hence completion_order) varies with n_threads. A cache hit
/// returns the stored result of an identically-keyed run, preserving this
/// guarantee.

#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/front_cache.hpp"
#include "util/cancel.hpp"

namespace adtp {

/// One unit of serving work: a borrowed model plus the options to analyze
/// it with. The model must outlive the analyze_batch() call.
struct BatchJob {
  const AugmentedAdt* model = nullptr;
  AnalysisOptions options;
};

/// Outcome of one batch item. Exactly one of ok/error is meaningful:
/// when ok is false, \p error holds the exception message and \p result
/// is default-constructed.
struct BatchItem {
  /// Position in the input span. Redundant with the item's slot in
  /// BatchReport::items, but kept so items stay traceable when callers
  /// copy them out, sort by time, or collect only the failures.
  std::size_t index = 0;
  bool ok = false;
  /// True iff the result was served from the FrontCache (ok is also true;
  /// result.seconds still reports the original computation's time).
  bool cached = false;
  /// Per-node memo counters of this item's analysis (zero for FrontCache
  /// hits - a whole-result hit never reaches the kernels - and for items
  /// without a memo).
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  /// True iff the item never started: the batch deadline had expired or
  /// the batch was cancelled before a worker claimed it (ok is false and
  /// error says which).
  bool skipped = false;
  AnalysisResult result;  ///< valid iff ok
  std::string error;      ///< exception message iff !ok
  double seconds = 0;     ///< wall-clock for this item (even on failure)
};

/// Batch-wide serving knobs; default-constructed it behaves like the
/// plain parallel batch of old.
struct BatchOptions {
  /// Scheduler width (0 = std::thread::hardware_concurrency(), also
  /// overridable via the ADTP_THREADS environment variable). Clamped to
  /// the batch size only when donate_intra_model is off - with sharing
  /// on, surplus slots serve the items' own intra-model tasks.
  unsigned n_threads = 0;

  /// Wall-clock budget for the whole batch in seconds; <= 0 means none.
  double deadline_seconds = 0;

  /// Optional caller-owned cancellation token; see the file comment.
  const CancelToken* cancel = nullptr;

  /// Streaming callback, invoked once per item as it completes (ok,
  /// failed, or skipped alike). Invocations are serialized across workers.
  /// Exceptions are captured into BatchReport::callback_error and disable
  /// further callbacks; they do not abort the batch.
  std::function<void(const BatchItem&)> on_item;

  /// Optional shared result cache; nullptr disables caching. Models with
  /// Custom semiring domains bypass the cache (see front_cache.hpp).
  FrontCache* cache = nullptr;

  /// Optional shared per-node front memo (node_memo.hpp), injected into
  /// every item's bottom-up and hybrid options: items that are edited
  /// variants of each other - the interactive serving workload - share
  /// every untouched subtree front across the batch (and across batches,
  /// when the memo outlives them). The memo is thread-safe; items fill
  /// and consult it concurrently. Results are unaffected (a memo hit is
  /// bit-identical to recomputation), so this knob - unlike the model
  /// content - never enters the FrontCacheKey. Items that set their own
  /// per-algorithm memo pointer keep it.
  NodeFrontMemo* memo = nullptr;

  /// When true (default), the batch scheduler is shared with every
  /// item's intra-model phases: the per-algorithm pool pointers
  /// (naive / bottom_up / bdd / hybrid.bdd) are set to the batch
  /// scheduler, so an oversized item (a huge naive enumeration, one
  /// giant tree's sibling folds, a big DAG's BDD build + propagate)
  /// fans out over idle slots instead of straggling on one core while
  /// the rest of the pool idles. Items that set intra_model_threads (or
  /// any per-algorithm threads/pool knob) themselves keep their own
  /// setting; results are unaffected either way (intra-model
  /// parallelism is deterministic).
  bool donate_intra_model = true;
};

/// Outcome of a whole batch run.
struct BatchReport {
  std::vector<BatchItem> items;  ///< one per input, in input order
  std::size_t failures = 0;      ///< number of items with !ok (incl. skipped)
  std::size_t skipped = 0;       ///< items never started (deadline/cancel)
  std::size_t cache_hits = 0;    ///< items served from the FrontCache
  std::uint64_t memo_hits = 0;   ///< summed per-node memo hits of all items
  std::uint64_t memo_misses = 0; ///< summed per-node memo misses
  /// Item indices in the order they completed (= the on_item invocation
  /// order). A permutation of [0, items.size()).
  std::vector<std::size_t> completion_order;
  /// True iff the batch deadline actually affected an item (skipped it or
  /// aborted it in flight) - not merely that the clock crossed the budget
  /// at some point; a batch whose last item finishes just inside the
  /// budget reports false.
  bool deadline_expired = false;
  /// True iff the cancel token was observed set while items remained
  /// (skipped or aborted at least one); same latched semantics.
  bool cancelled = false;
  /// First exception message thrown by on_item, empty if none. Further
  /// callbacks are suppressed once set.
  std::string callback_error;
  unsigned threads_used = 1;  ///< scheduler slots serving the batch
  /// Scheduler counters of the batch run: item tasks plus every shared
  /// intra-model task the items nested onto the scheduler.
  TaskRunStats sched;
  double seconds = 0;  ///< wall-clock for the whole batch

  /// Completed (ok) models per second of batch wall-clock. Caveat: the
  /// numerator excludes failed items but the denominator includes the
  /// wall-clock they consumed before failing, so a batch with expensive
  /// failures under-reports sustained throughput of the successes. Use
  /// items_per_second() for an all-items rate.
  [[nodiscard]] double trees_per_second() const {
    if (seconds <= 0) return 0.0;
    return static_cast<double>(items.size() - failures) / seconds;
  }

  /// All items (successes and failures) per second of batch wall-clock -
  /// the fair rate when failures consume meaningful time.
  [[nodiscard]] double items_per_second() const {
    if (seconds <= 0) return 0.0;
    return static_cast<double>(items.size()) / seconds;
  }
};

/// Serves every job in \p jobs per \p options. Null model pointers in the
/// span are reported as failed items.
[[nodiscard]] BatchReport analyze_batch(std::span<const BatchJob> jobs,
                                        const BatchOptions& options = {});

/// Convenience overload over an owned job vector.
[[nodiscard]] BatchReport analyze_batch(const std::vector<BatchJob>& jobs,
                                        const BatchOptions& options = {});

/// Convenience: every model analyzed with the same \p analysis options,
/// with full serving knobs.
[[nodiscard]] BatchReport analyze_batch(const std::vector<AugmentedAdt>& models,
                                        const AnalysisOptions& analysis,
                                        const BatchOptions& options);

/// Analyzes every model in \p models with \p options on \p n_threads
/// worker threads (the pre-serving API, kept for one-shot callers).
[[nodiscard]] BatchReport analyze_batch(
    std::span<const AugmentedAdt* const> models,
    const AnalysisOptions& options = {}, unsigned n_threads = 0);

/// Convenience overload over owned models.
[[nodiscard]] BatchReport analyze_batch(const std::vector<AugmentedAdt>& models,
                                        const AnalysisOptions& options = {},
                                        unsigned n_threads = 0);

}  // namespace adtp
