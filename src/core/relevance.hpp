/// \file relevance.hpp
/// \brief Defense-relevance analysis (extension).
///
/// The paper's case study observes that the BDS "strong pwd" is part of no
/// Pareto-optimal point, "suggesting that this action does not help the
/// defender and should be avoided". This module generalizes that
/// observation into an exact analysis: a defense d is *irrelevant* when
/// forbidding it entirely (fixing delta_d = 0) leaves the Pareto front
/// unchanged - every trade-off the defender could reach with d is reachable
/// without it. Implemented by restricting the structure function's ROBDD on
/// d's variable and re-running BDDBU, so one BDD build serves all queries.

#pragma once

#include <vector>

#include "core/bdd_bu.hpp"

namespace adtp {

/// Relevance verdict for one basic defense step.
struct DefenseRelevance {
  NodeId defense = kNoNode;
  bool relevant = false;  ///< forbidding it changes the Pareto front
  Front front_without;    ///< PF(T | delta_d = 0)

  /// Security ceiling with/without this defense: the attacker's optimal
  /// value when the defender budget is unlimited (the fronts' endpoints).
  /// The gap is the defense's contribution to the best reachable
  /// security level - a quick ROI signal for defense portfolios.
  double ceiling_with = 0;
  double ceiling_without = 0;
};

struct RelevanceReport {
  Front full_front;  ///< PF(T) with every defense available
  std::vector<DefenseRelevance> defenses;  ///< one entry per BDS

  /// The irrelevant defenses (money spent on them is wasted).
  [[nodiscard]] std::vector<NodeId> irrelevant() const {
    std::vector<NodeId> out;
    for (const auto& d : defenses) {
      if (!d.relevant) out.push_back(d.defense);
    }
    return out;
  }
};

/// Computes relevance for every defense of \p aadt. Works on trees and
/// DAGs (everything goes through the BDD pipeline).
[[nodiscard]] RelevanceReport analyze_defense_relevance(
    const AugmentedAdt& aadt, const BddBuOptions& options = {});

}  // namespace adtp
