/// \file bdd_bu.hpp
/// \brief The BDD-based Pareto-front algorithm for DAG-shaped ADTs
///        (Algorithm 3; correct by Theorem 2).
///
/// The ADT's structure function is translated to an ROBDD under a
/// defense-first variable order; a Pareto front is then propagated
/// bottom-up over the (shared) BDD nodes, memoized per node, giving the
/// paper's O(|W| p^2) complexity. At attack-labeled nodes the front is a
/// singleton (no defense variable occurs below them - this is exactly why
/// Theorem 2 needs defense-first orders); at defense-labeled nodes the low
/// front is merged with the cost-shifted high front and pruned.
///
/// Intra-model parallelism: both phases compile into task DAGs for the
/// work-stealing TaskScheduler (util/parallel.hpp). Construction makes
/// every apply of every gate's balanced reduction tree a task
/// (bdd/build.cpp); propagation chunks contiguous runs of the
/// children-first node order into tasks of roughly task_grain_points of
/// estimated front work (attack-variable nodes always carry singleton
/// fronts, so vast low-work regions collapse into few tasks instead of
/// drowning the scheduler in per-node bookkeeping), each task depending
/// on the chunks holding its nodes' children - a chunk runs the moment
/// its producers finish, with no per-level barrier. Every node's front
/// is a pure function of its children's fronts, computed with the same
/// operations in the same (children-first) order whatever worker or
/// chunk runs it, so fronts and witnesses are bit-identical for every
/// thread count and grain; neither knob enters the FrontCache key.

#pragma once

#include <cstdint>
#include <optional>

#include "bdd/manager.hpp"
#include "bdd/order.hpp"
#include "core/attribution.hpp"
#include "core/pareto.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace adtp {

struct BddBuOptions {
  /// Heuristic for the defense-first variable order.
  bdd::OrderHeuristic order_heuristic = bdd::OrderHeuristic::Dfs;

  /// Seed for OrderHeuristic::Random.
  std::uint64_t order_seed = 1;

  /// Node allocation guard for the manager (0 = manager default).
  std::size_t node_limit = 0;

  /// Aborts with LimitError when any intermediate front exceeds this many
  /// points (fronts are worst-case exponential, Fig. 4). 0 = unlimited.
  std::size_t max_front_points = 0;

  /// Explicit variable order; overrides order_heuristic when set.
  std::optional<bdd::VarOrder> order;

  /// Optional wall-clock guard, checked once per propagated BDD node;
  /// throws LimitError. (The translation phase is guarded by node_limit.)
  const Deadline* deadline = nullptr;

  /// Optional cooperative cancellation, checked once per propagated BDD
  /// node; throws CancelledError. analyze_batch() injects its token here.
  const CancelToken* cancel = nullptr;

  /// Optional external combine scratch space, reused across analyses (the
  /// sequential value-front path only; parallel runs and witness runs
  /// keep private per-slot arenas).
  FrontArena<ValuePoint>* arena = nullptr;

  /// Worker threads for BDD construction and task-DAG propagation:
  /// 1 (default) runs sequentially, 0 resolves to the hardware
  /// concurrency, N > 1 uses N workers (the calling thread is one of
  /// them). Fronts and witnesses are bit-identical for every value (see
  /// the file comment), so this knob deliberately does not participate in
  /// the FrontCache key; analyze_batch() raises it for oversized items
  /// via AnalysisOptions::intra_model_threads.
  unsigned threads = 1;

  /// Models smaller than this many ADT nodes never engage a multi-slot
  /// scheduler up front even when \p threads (or an external \p pool)
  /// offers more than one - per-node task bookkeeping costs more than a
  /// small model's whole analysis. A small ADT whose BDD turns out huge
  /// still engages right after the build. Tests set 0 to force the
  /// parallel path on tiny models.
  std::size_t parallel_node_floor = 64;

  /// Work-estimate budget for one parallel propagation task: contiguous
  /// runs of the children-first BDD node order fold into a single task
  /// until their estimated front points (1 per attack-variable node -
  /// their fronts are always singletons - and a capped child sum per
  /// defense-variable node) reach this budget. This collapses the many
  /// near-empty tasks of low-work BDD regions into few substantial ones;
  /// 1 reproduces the old task-per-node graph. Per-node computation and
  /// order are unchanged, so results are bit-identical for every value
  /// and - like \p threads - the knob never enters the FrontCache key.
  std::size_t task_grain_points = 1024;

  /// Optional externally-owned scheduler; when set it overrides
  /// \p threads (no pool is spawned - the external one is used once the
  /// model clears the floors above). hybrid_analyze() shares one
  /// scheduler across all its per-blob runs this way, and analyze_batch
  /// injects the batch scheduler for oversized items. Like \p arena,
  /// never part of the FrontCache key.
  TaskScheduler* pool = nullptr;
};

/// Detailed outcome of a BDDBU run, for benches and reports.
struct BddBuReport {
  Front front;
  std::size_t bdd_size = 0;       ///< |W|: nodes reachable from the root
  std::size_t manager_nodes = 0;  ///< total nodes allocated while building
  std::size_t max_front_size = 0; ///< the p of the O(|W| p^2) bound
  /// Front-operation counters of the propagation (staircase merges at
  /// defense variables; combines only when blobs delegate here), summed
  /// across every worker arena of a parallel run.
  CombineStats combine_stats;
  double build_seconds = 0;       ///< ADT -> ROBDD translation time
  double propagate_seconds = 0;   ///< front propagation time
  // Parallelism counters.
  unsigned threads_used = 1;       ///< scheduler slots serving both phases
  std::size_t max_level_width = 0; ///< nodes in the widest BDD level
  TaskRunStats sched;              ///< build + propagate task-DAG counters
};

/// Algorithm 3 at the root of the ROBDD. Works for arbitrary (tree- or
/// DAG-shaped) ADTs.
[[nodiscard]] Front bdd_bu_front(const AugmentedAdt& aadt,
                                 const BddBuOptions& options = {});

/// As bdd_bu_front(), with witness events attached to every point.
[[nodiscard]] WitnessFront bdd_bu_front_witness(
    const AugmentedAdt& aadt, const BddBuOptions& options = {});

/// As bdd_bu_front(), returning size/time diagnostics alongside the front.
[[nodiscard]] BddBuReport bdd_bu_analyze(const AugmentedAdt& aadt,
                                         const BddBuOptions& options = {});

/// Runs Algorithm 3 on an already-built BDD; exposed for callers that
/// manage their own Manager (e.g. the ordering-ablation bench). Always
/// sequential.
[[nodiscard]] Front bdd_bu_on_bdd(const AugmentedAdt& aadt,
                                  bdd::Manager& manager, bdd::Ref root,
                                  const bdd::VarOrder& order);

}  // namespace adtp
