/// \file bdd_bu.hpp
/// \brief The BDD-based Pareto-front algorithm for DAG-shaped ADTs
///        (Algorithm 3; correct by Theorem 2).
///
/// The ADT's structure function is translated to an ROBDD under a
/// defense-first variable order; a Pareto front is then propagated
/// bottom-up over the (shared) BDD nodes, memoized per node, giving the
/// paper's O(|W| p^2) complexity. At attack-labeled nodes the front is a
/// singleton (no defense variable occurs below them - this is exactly why
/// Theorem 2 needs defense-first orders); at defense-labeled nodes the low
/// front is merged with the cost-shifted high front and pruned.

#pragma once

#include <cstdint>
#include <optional>

#include "bdd/manager.hpp"
#include "bdd/order.hpp"
#include "core/attribution.hpp"
#include "core/pareto.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace adtp {

struct BddBuOptions {
  /// Heuristic for the defense-first variable order.
  bdd::OrderHeuristic order_heuristic = bdd::OrderHeuristic::Dfs;

  /// Seed for OrderHeuristic::Random.
  std::uint64_t order_seed = 1;

  /// Node allocation guard for the manager (0 = manager default).
  std::size_t node_limit = 0;

  /// Aborts with LimitError when any intermediate front exceeds this many
  /// points (fronts are worst-case exponential, Fig. 4). 0 = unlimited.
  std::size_t max_front_points = 0;

  /// Explicit variable order; overrides order_heuristic when set.
  std::optional<bdd::VarOrder> order;

  /// Optional wall-clock guard, checked once per propagated BDD node;
  /// throws LimitError. (The translation phase is guarded by node_limit.)
  const Deadline* deadline = nullptr;

  /// Optional cooperative cancellation, checked once per propagated BDD
  /// node; throws CancelledError. analyze_batch() injects its token here.
  const CancelToken* cancel = nullptr;

  /// Optional external combine scratch space, reused across analyses (the
  /// value-front path only; witness runs keep a private arena). Not
  /// thread-safe: at most one analysis may use an arena at a time.
  FrontArena<ValuePoint>* arena = nullptr;
};

/// Detailed outcome of a BDDBU run, for benches and reports.
struct BddBuReport {
  Front front;
  std::size_t bdd_size = 0;       ///< |W|: nodes reachable from the root
  std::size_t manager_nodes = 0;  ///< total nodes allocated while building
  std::size_t max_front_size = 0; ///< the p of the O(|W| p^2) bound
  /// Front-operation counters of the propagation (staircase merges at
  /// defense variables; combines only when blobs delegate here).
  CombineStats combine_stats;
  double build_seconds = 0;       ///< ADT -> ROBDD translation time
  double propagate_seconds = 0;   ///< front propagation time
};

/// Algorithm 3 at the root of the ROBDD. Works for arbitrary (tree- or
/// DAG-shaped) ADTs.
[[nodiscard]] Front bdd_bu_front(const AugmentedAdt& aadt,
                                 const BddBuOptions& options = {});

/// As bdd_bu_front(), with witness events attached to every point.
[[nodiscard]] WitnessFront bdd_bu_front_witness(
    const AugmentedAdt& aadt, const BddBuOptions& options = {});

/// As bdd_bu_front(), returning size/time diagnostics alongside the front.
[[nodiscard]] BddBuReport bdd_bu_analyze(const AugmentedAdt& aadt,
                                         const BddBuOptions& options = {});

/// Runs Algorithm 3 on an already-built BDD; exposed for callers that
/// manage their own Manager (e.g. the ordering-ablation bench).
[[nodiscard]] Front bdd_bu_on_bdd(const AugmentedAdt& aadt,
                                  bdd::Manager& manager, bdd::Ref root,
                                  const bdd::VarOrder& order);

}  // namespace adtp
