#include "core/node_memo.hpp"

#include "core/bdd_bu.hpp"

namespace adtp {

bool memoizable(const AugmentedAdt& aadt) {
  return aadt.defender_domain().kind() != SemiringKind::Custom &&
         aadt.attacker_domain().kind() != SemiringKind::Custom;
}

std::vector<std::uint64_t> subtree_value_hashes(const AugmentedAdt& aadt) {
  const Adt& adt = aadt.adt();
  std::vector<std::uint64_t> hashes(adt.size(), 0);
  for (NodeId v : adt.topological_order()) {
    const Node& n = adt.node(v);
    Fnv1a h;
    h.u8(static_cast<std::uint8_t>(n.type));
    h.u8(static_cast<std::uint8_t>(n.agent));
    if (n.type == GateType::BasicStep) {
      h.f64(aadt.value_of(v));
    } else {
      h.size(n.children.size());
      for (NodeId c : n.children) h.u64(hashes[c]);
    }
    hashes[v] = h.digest();
  }
  return hashes;
}

std::vector<std::uint64_t> subtree_layout_hashes(const Adt& adt) {
  std::vector<std::uint64_t> hashes(adt.size(), 0);
  for (NodeId v : adt.topological_order()) {
    const Node& n = adt.node(v);
    Fnv1a h;
    if (n.type == GateType::BasicStep) {
      // Fold the model-wide widths into every leaf: a witness BitVec of a
      // different width is a different bit pattern even when the dense
      // indices below this subtree agree.
      h.u8(static_cast<std::uint8_t>(n.agent));
      h.size(adt.num_attacks());
      h.size(adt.num_defenses());
      h.size(n.agent == Agent::Attacker ? adt.attack_index(v)
                                        : adt.defense_index(v));
    } else {
      h.size(n.children.size());
      for (NodeId c : n.children) h.u64(hashes[c]);
    }
    hashes[v] = h.digest();
  }
  return hashes;
}

std::uint64_t bottom_up_memo_context(const AugmentedAdt& aadt,
                                     std::size_t max_front_points) {
  Fnv1a h;
  h.u8('B');  // algorithm family: the bottom-up kernels
  h.u8(static_cast<std::uint8_t>(aadt.defender_domain().kind()));
  h.u8(static_cast<std::uint8_t>(aadt.attacker_domain().kind()));
  h.size(max_front_points);
  return h.digest();
}

std::uint64_t hybrid_memo_context(const AugmentedAdt& aadt,
                                  const BddBuOptions& bdd) {
  // The same result-affecting BDDBU fields the FrontCache key hashes: a
  // blob front is a canonical Pareto front whichever variable order built
  // it, but node_limit / max_front_points can turn success into a guard
  // failure, and failures are never memoized - keying on them keeps a hit
  // from masking a limit a fresh run would honor under *different* limits.
  Fnv1a h;
  h.u8('H');  // algorithm family: the hybrid walker
  h.u8(static_cast<std::uint8_t>(aadt.defender_domain().kind()));
  h.u8(static_cast<std::uint8_t>(aadt.attacker_domain().kind()));
  h.u8(static_cast<std::uint8_t>(bdd.order_heuristic));
  h.u64(bdd.order_seed);
  h.size(bdd.node_limit);
  h.size(bdd.max_front_points);
  h.boolean(bdd.order.has_value());
  if (bdd.order.has_value()) {
    for (NodeId id : bdd.order->sequence()) h.u32(id);
  }
  return h.digest();
}

}  // namespace adtp
