#include "core/budget.hpp"

#include "util/error.hpp"

namespace adtp {

double guaranteed_attacker_value(const Front& front, double budget,
                                 const Semiring& defender,
                                 const Semiring& attacker) {
  if (front.empty()) {
    throw Error("budget query on an empty Pareto front");
  }
  // Points are sorted with the defender value worsening and the attacker
  // value growing more adverse; take the last affordable point.
  double best = attacker.one();
  bool found = false;
  for (const ValuePoint& p : front.points()) {
    if (defender.prefer(p.def, budget)) {
      best = p.att;
      found = true;
    }
  }
  if (!found) {
    // Budget below even the free point; can only happen with exotic custom
    // domains - report the free point's value.
    return front.front_point().att;
  }
  return best;
}

std::optional<double> cheapest_defense_for(const Front& front, double target,
                                           const Semiring& defender,
                                           const Semiring& attacker) {
  (void)defender;
  for (const ValuePoint& p : front.points()) {
    // Adverse enough: the target is at least as good (for the attacker)
    // as the response value, i.e. response >= target in adversity.
    if (attacker.prefer(target, p.att)) return p.def;
  }
  return std::nullopt;
}

double unlimited_defender_value(const Front& front) {
  if (front.empty()) {
    throw Error("budget query on an empty Pareto front");
  }
  return front.points().back().att;
}

}  // namespace adtp
