#include "core/naive.hpp"

#include <bit>
#include <cstdint>

#include "core/domains.hpp"
#include "util/error.hpp"

namespace adtp {

namespace {

/// Fast structure-function evaluation over uint64 masks. Bit i of the
/// attack (defense) mask is BAS (BDS) index i. Only valid when
/// |A|, |D| <= 64, which the max_bits guard already implies.
class MaskEvaluator {
 public:
  explicit MaskEvaluator(const Adt& adt) : adt_(&adt), values_(adt.size()) {
    // Precompute leaf positions: for each node, which mask bit drives it.
    leaf_bit_.assign(adt.size(), 0);
    leaf_kind_.assign(adt.size(), 0);
    for (NodeId id : adt.attack_steps()) {
      leaf_kind_[id] = 1;
      leaf_bit_[id] = adt.attack_index(id);
    }
    for (NodeId id : adt.defense_steps()) {
      leaf_kind_[id] = 2;
      leaf_bit_[id] = adt.defense_index(id);
    }
  }

  [[nodiscard]] bool root_value(std::uint64_t defense, std::uint64_t attack) {
    const Adt& adt = *adt_;
    for (NodeId v : adt.topological_order()) {
      const Node& n = adt.node(v);
      char value = 0;
      switch (n.type) {
        case GateType::BasicStep:
          value = leaf_kind_[v] == 1
                      ? static_cast<char>((attack >> leaf_bit_[v]) & 1)
                      : static_cast<char>((defense >> leaf_bit_[v]) & 1);
          break;
        case GateType::And:
          value = 1;
          for (NodeId c : n.children) {
            value = static_cast<char>(value & values_[c]);
          }
          break;
        case GateType::Or:
          value = 0;
          for (NodeId c : n.children) {
            value = static_cast<char>(value | values_[c]);
          }
          break;
        case GateType::Inhibit:
          value = static_cast<char>(values_[n.children[0]] &&
                                    !values_[n.children[1]]);
          break;
      }
      values_[v] = value;
    }
    return values_[adt.root()] != 0;
  }

 private:
  const Adt* adt_;
  std::vector<char> values_;
  std::vector<std::size_t> leaf_bit_;
  std::vector<char> leaf_kind_;
};

BitVec mask_to_bitvec(std::uint64_t mask, std::size_t size) {
  BitVec v(size);
  for (std::size_t i = 0; i < size; ++i) {
    if ((mask >> i) & 1ULL) v.set(i);
  }
  return v;
}

void check_limits(const AugmentedAdt& aadt, const NaiveOptions& options) {
  const std::size_t bits = aadt.adt().num_attacks() + aadt.adt().num_defenses();
  if (bits > options.max_bits) {
    throw LimitError("naive: |D| + |A| = " + std::to_string(bits) +
                     " exceeds the enumeration guard of " +
                     std::to_string(options.max_bits) + " bits");
  }
}

/// The per-attacker-domain kernel of Algorithm 2's enumeration: the subset
/// DP and the 2^|A| response scans run with inlined combine/prefer.
template <typename Da>
std::vector<FeasibleEvent> enumerate_kernel(const AugmentedAdt& aadt,
                                            const NaiveOptions& options,
                                            const Da& da) {
  const Adt& adt = aadt.adt();
  const std::size_t num_d = adt.num_defenses();
  const std::size_t num_a = adt.num_attacks();
  const bool root_is_attack = adt.agent(adt.root()) == Agent::Attacker;

  MaskEvaluator eval(adt);

  // beta-hat_A for every attack mask, by subset dynamic programming; keeps
  // the hot loop free of per-mask recombination. Tabulated only while the
  // table stays small (2^22 doubles = 32 MiB); above that, computed per
  // mask.
  const bool tabulate = num_a <= 22;
  std::vector<double> attack_value;
  if (tabulate) {
    attack_value.resize(std::size_t{1} << num_a);
    attack_value[0] = da.one();
    for (std::uint64_t alpha = 1; alpha < attack_value.size(); ++alpha) {
      const std::uint64_t low = alpha & (~alpha + 1);  // lowest set bit
      const auto low_index = static_cast<std::size_t>(std::countr_zero(low));
      attack_value[alpha] =
          da.combine(attack_value[alpha ^ low], aadt.attack_value(low_index));
    }
  }
  auto value_of_alpha = [&](std::uint64_t alpha) {
    if (tabulate) return attack_value[alpha];
    double v = da.one();
    std::uint64_t rest = alpha;
    while (rest != 0) {
      const auto i = static_cast<std::size_t>(std::countr_zero(rest));
      v = da.combine(v, aadt.attack_value(i));
      rest &= rest - 1;
    }
    return v;
  };

  std::vector<FeasibleEvent> events;
  events.reserve(std::size_t{1} << num_d);

  for (std::uint64_t delta = 0; delta < (std::uint64_t{1} << num_d);
       ++delta) {
    check_interrupt(options.deadline, options.cancel, "naive");
    // Algorithm 2 lines 4-11: the attacker's optimal response.
    bool found = false;
    double best = da.zero();
    std::uint64_t best_alpha = 0;
    for (std::uint64_t alpha = 0; alpha < (std::uint64_t{1} << num_a);
         ++alpha) {
      const bool value = eval.root_value(delta, alpha);
      const bool success = root_is_attack ? value : !value;
      if (!success) continue;
      const double candidate = value_of_alpha(alpha);
      if (!found || da.strictly_prefer(candidate, best)) {
        found = true;
        best = candidate;
        best_alpha = alpha;
      }
    }

    FeasibleEvent ev;
    ev.defense = mask_to_bitvec(delta, num_d);
    ev.defense_value = aadt.defense_vector_value(ev.defense);
    if (found) {
      ev.response = mask_to_bitvec(best_alpha, num_a);
      ev.attack_value = best;
    } else {
      ev.attack_value = da.zero();  // 1_oplus_A: no successful attack
    }
    events.push_back(std::move(ev));
  }
  return events;
}

}  // namespace

std::vector<FeasibleEvent> enumerate_feasible_events(
    const AugmentedAdt& aadt, const NaiveOptions& options) {
  check_limits(aadt, options);
  // The enumeration depends on the attacker domain only; single-domain
  // dispatch avoids instantiating it per (defender, attacker) pair.
  return dispatch_domain(aadt.attacker_domain(), [&](const auto& da) {
    return enumerate_kernel(aadt, options, da);
  });
}

Front naive_front(const AugmentedAdt& aadt, const NaiveOptions& options) {
  // The enumeration is the exponential part; instantiate it per attacker
  // domain only. The final minimize over 2^|D| events is comparatively
  // cheap, so the runtime Semirings suffice there.
  const auto events = enumerate_feasible_events(aadt, options);
  std::vector<ValuePoint> points;
  points.reserve(events.size());
  for (const auto& ev : events) {
    points.push_back(ValuePoint{ev.defense_value, ev.attack_value});
  }
  return Front::minimized(std::move(points), aadt.defender_domain(),
                          aadt.attacker_domain());
}

WitnessFront naive_front_witness(const AugmentedAdt& aadt,
                                 const NaiveOptions& options) {
  const auto events = enumerate_feasible_events(aadt, options);
  const std::size_t num_a = aadt.adt().num_attacks();
  std::vector<WitnessPoint> points;
  points.reserve(events.size());
  for (const auto& ev : events) {
    WitnessPoint p;
    p.def = ev.defense_value;
    p.att = ev.attack_value;
    p.defense = ev.defense;
    p.attack = ev.response ? *ev.response : BitVec(num_a);
    points.push_back(std::move(p));
  }
  return WitnessFront::minimized(std::move(points), aadt.defender_domain(),
                                 aadt.attacker_domain());
}

}  // namespace adtp
