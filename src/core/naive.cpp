#include "core/naive.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "core/domains.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace adtp {

namespace {

/// Fast structure-function evaluation over uint64 masks. Bit i of the
/// attack (defense) mask is BAS (BDS) index i. Only valid when
/// |A|, |D| <= 64, which the max_bits guard already implies.
class MaskEvaluator {
 public:
  explicit MaskEvaluator(const Adt& adt) : adt_(&adt), values_(adt.size()) {
    // Precompute leaf positions: for each node, which mask bit drives it.
    leaf_bit_.assign(adt.size(), 0);
    leaf_kind_.assign(adt.size(), 0);
    for (NodeId id : adt.attack_steps()) {
      leaf_kind_[id] = 1;
      leaf_bit_[id] = adt.attack_index(id);
    }
    for (NodeId id : adt.defense_steps()) {
      leaf_kind_[id] = 2;
      leaf_bit_[id] = adt.defense_index(id);
    }
  }

  [[nodiscard]] bool root_value(std::uint64_t defense, std::uint64_t attack) {
    const Adt& adt = *adt_;
    for (NodeId v : adt.topological_order()) {
      const Node& n = adt.node(v);
      char value = 0;
      switch (n.type) {
        case GateType::BasicStep:
          value = leaf_kind_[v] == 1
                      ? static_cast<char>((attack >> leaf_bit_[v]) & 1)
                      : static_cast<char>((defense >> leaf_bit_[v]) & 1);
          break;
        case GateType::And:
          value = 1;
          for (NodeId c : n.children) {
            value = static_cast<char>(value & values_[c]);
          }
          break;
        case GateType::Or:
          value = 0;
          for (NodeId c : n.children) {
            value = static_cast<char>(value | values_[c]);
          }
          break;
        case GateType::Inhibit:
          value = static_cast<char>(values_[n.children[0]] &&
                                    !values_[n.children[1]]);
          break;
      }
      values_[v] = value;
    }
    return values_[adt.root()] != 0;
  }

 private:
  const Adt* adt_;
  std::vector<char> values_;
  std::vector<std::size_t> leaf_bit_;
  std::vector<char> leaf_kind_;
};

BitVec mask_to_bitvec(std::uint64_t mask, std::size_t size) {
  BitVec v(size);
  for (std::size_t i = 0; i < size; ++i) {
    if ((mask >> i) & 1ULL) v.set(i);
  }
  return v;
}

/// beta-hat_D(delta) over the defense mask, combining in the same
/// ascending-index order as AugmentedAdt::defense_vector_value (so
/// witness replay through that function is exact for all domains whose
/// combine is associative in this order - and within ULPs otherwise).
template <typename Dd>
double delta_defense_value(const AugmentedAdt& aadt, const Dd& dd,
                           std::uint64_t delta) {
  double def = dd.one();
  while (delta != 0) {
    const auto i = static_cast<std::size_t>(std::countr_zero(delta));
    def = dd.combine(def, aadt.defense_value(i));
    delta &= delta - 1;
  }
  return def;
}

void check_limits(const AugmentedAdt& aadt, const NaiveOptions& options) {
  const std::size_t bits = aadt.adt().num_attacks() + aadt.adt().num_defenses();
  if (bits > options.max_bits) {
    throw LimitError("naive: |D| + |A| = " + std::to_string(bits) +
                     " exceeds the enumeration guard of " +
                     std::to_string(options.max_bits) + " bits");
  }
}

/// beta-hat_A for attack masks. Tabulated by subset dynamic programming
/// while the table stays small (2^22 doubles = 32 MiB); above that,
/// computed per mask. Built once, then shared read-only across shards.
template <typename Da>
class AttackValues {
 public:
  AttackValues(const AugmentedAdt& aadt, const Da& da)
      : aadt_(&aadt), da_(&da) {
    const std::size_t num_a = aadt.adt().num_attacks();
    if (num_a <= 22) {
      table_.resize(std::size_t{1} << num_a);
      table_[0] = da.one();
      for (std::uint64_t alpha = 1; alpha < table_.size(); ++alpha) {
        const std::uint64_t low = alpha & (~alpha + 1);  // lowest set bit
        const auto low_index = static_cast<std::size_t>(std::countr_zero(low));
        table_[alpha] =
            da.combine(table_[alpha ^ low], aadt.attack_value(low_index));
      }
    }
  }

  [[nodiscard]] double operator()(std::uint64_t alpha) const {
    if (!table_.empty()) return table_[alpha];
    double v = da_->one();
    std::uint64_t rest = alpha;
    while (rest != 0) {
      const auto i = static_cast<std::size_t>(std::countr_zero(rest));
      v = da_->combine(v, aadt_->attack_value(i));
      rest &= rest - 1;
    }
    return v;
  }

 private:
  const AugmentedAdt* aadt_;
  const Da* da_;
  std::vector<double> table_;
};

/// Sharding floor: a shard must amortize its thread's create/join cost
/// (~tens of microseconds), so each worker gets at least this many root
/// evaluations (delta/alpha pairs, each a full structure-function walk).
/// Below the floor the enumeration runs on fewer threads - possibly one -
/// which keeps small models in a wide donated batch from paying more for
/// spawning than for enumerating.
constexpr double kMinEvalsPerShard = 16384;

/// The number of shards actually used: an external scheduler offers its
/// slot count, otherwise the threads knob resolves (0 = hardware
/// concurrency); the count is clamped so no shard is empty and no shard
/// falls under the work floor.
unsigned resolve_shards(const NaiveOptions& options, std::uint64_t num_deltas,
                        std::size_t num_attacks) {
  std::uint64_t threads = options.pool != nullptr
                              ? options.pool->threads()
                              : resolve_thread_knob(options.threads);
  threads = std::min<std::uint64_t>(threads, std::max<std::uint64_t>(
                                                 1, num_deltas));
  // Work estimate in double: 2^(|D| + |A|) overflows uint64 only when it
  // is unenumerable anyway.
  const double evals = std::ldexp(static_cast<double>(num_deltas),
                                  static_cast<int>(num_attacks));
  const double fair = std::max(1.0, evals / kMinEvalsPerShard);
  if (fair < static_cast<double>(threads)) {
    threads = static_cast<std::uint64_t>(fair);
  }
  return static_cast<unsigned>(threads);
}

/// Algorithm 2 lines 4-11 for every delta in [begin, end): the 2^|A|
/// response scan with inlined combine/prefer, reporting each delta's
/// optimal response to \p emit(delta, found, best_value, best_alpha).
/// One MaskEvaluator per call, so concurrent shards never share mutable
/// state; \p values is read-only.
template <typename Da, typename Emit>
void scan_deltas(const AugmentedAdt& aadt, const NaiveOptions& options,
                 const Da& da, const AttackValues<Da>& values,
                 std::uint64_t begin, std::uint64_t end, Emit&& emit) {
  const Adt& adt = aadt.adt();
  const std::size_t num_a = adt.num_attacks();
  const bool root_is_attack = adt.agent(adt.root()) == Agent::Attacker;
  MaskEvaluator eval(adt);

  for (std::uint64_t delta = begin; delta < end; ++delta) {
    check_interrupt(options.deadline, options.cancel, "naive");
    bool found = false;
    double best = da.zero();
    std::uint64_t best_alpha = 0;
    for (std::uint64_t alpha = 0; alpha < (std::uint64_t{1} << num_a);
         ++alpha) {
      const bool value = eval.root_value(delta, alpha);
      const bool success = root_is_attack ? value : !value;
      if (!success) continue;
      const double candidate = values(alpha);
      if (!found || da.strictly_prefer(candidate, best)) {
        found = true;
        best = candidate;
        best_alpha = alpha;
      }
    }
    emit(delta, found, best, best_alpha);
  }
}

/// The sharded kernel of enumerate_feasible_events: shards fill disjoint
/// slices of the delta-ordered output vector, so the result is identical
/// for every thread count.
template <typename Da>
std::vector<FeasibleEvent> enumerate_kernel(const AugmentedAdt& aadt,
                                            const NaiveOptions& options,
                                            const Da& da) {
  const std::size_t num_d = aadt.adt().num_defenses();
  const std::size_t num_a = aadt.adt().num_attacks();
  const std::uint64_t total = std::uint64_t{1} << num_d;
  const unsigned threads =
      resolve_shards(options, total, aadt.adt().num_attacks());

  const AttackValues<Da> values(aadt, da);
  std::vector<FeasibleEvent> events(total);
  run_sharded(options.pool, threads, total, [&](unsigned, std::uint64_t begin,
                                  std::uint64_t end) {
    scan_deltas(aadt, options, da, values, begin, end,
                [&](std::uint64_t delta, bool found, double best,
                    std::uint64_t best_alpha) {
                  FeasibleEvent& ev = events[delta];
                  ev.defense = mask_to_bitvec(delta, num_d);
                  ev.defense_value = aadt.defense_vector_value(ev.defense);
                  if (found) {
                    ev.response = mask_to_bitvec(best_alpha, num_a);
                    ev.attack_value = best;
                  } else {
                    ev.attack_value = da.zero();  // 1_oplus_A: no attack
                  }
                });
  });
  return events;
}

/// The sharded kernel of naive_front: each shard minimizes its own slice
/// of the delta space into a staircase (memory stays proportional to the
/// partial fronts, not the 2^|D| event set), and the per-shard fronts are
/// reduced pairwise in shard order. Minimization only *selects* among
/// per-delta values computed independently of the sharding, so the result
/// is identical for every thread count.
template <typename Dd, typename Da>
Front front_kernel(const AugmentedAdt& aadt, const NaiveOptions& options,
                   const Dd& dd, const Da& da) {
  const std::uint64_t total = std::uint64_t{1} << aadt.adt().num_defenses();
  const unsigned threads =
      resolve_shards(options, total, aadt.adt().num_attacks());

  const AttackValues<Da> values(aadt, da);
  std::vector<std::vector<ValuePoint>> shards(threads);
  run_sharded(options.pool, threads, total,
              [&](unsigned shard, std::uint64_t begin,
                                  std::uint64_t end) {
    // Shard memory is bounded: raw points are compacted to the running
    // partial front at geometric capacity checkpoints (minimizing a
    // partially-minimized buffer is sound - the sort re-establishes the
    // staircase order), so a shard holds O(max(front, 2^16)) points, not
    // its whole delta slice.
    constexpr std::size_t kCompactFloor = std::size_t{1} << 16;
    std::vector<ValuePoint>& points = shards[shard];
    points.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(end - begin, kCompactFloor)));
    scan_deltas(aadt, options, da, values, begin, end,
                [&](std::uint64_t delta, bool found, double best,
                    std::uint64_t) {
                  points.push_back(
                      ValuePoint{delta_defense_value(aadt, dd, delta),
                                 found ? best : da.zero()});
                  if (points.size() == points.capacity() &&
                      points.size() >= kCompactFloor) {
                    detail::pareto_minimize_in_place(points, dd, da);
                  }
                });
    detail::pareto_minimize_in_place(points, dd, da);
  });

  std::vector<ValuePoint> front = std::move(shards[0]);
  std::vector<ValuePoint> merged;
  for (unsigned s = 1; s < threads; ++s) {
    detail::pareto_merge_staircases(front, shards[s], merged, dd, da);
    front.swap(merged);
  }
  return Front::from_staircase(std::move(front));
}

/// The sharded kernel of naive_front_witness: like front_kernel, but the
/// points carry their witness event (defense vector + optimal response),
/// so the full 2^|D| event vector is never materialized - each shard
/// minimizes its slice into a witness staircase and the per-shard fronts
/// are reduced pairwise in shard order.
///
/// Witness determinism across thread counts: points enter in ascending
/// delta order and are compacted with the *stable* minimize, so among
/// equal value pairs the smallest delta survives a shard; the staircase
/// merge keeps the earlier operand on value ties, and shards are merged
/// in ascending delta order - so the surviving witness for every kept
/// value pair is the smallest-delta one overall, for every shard layout.
template <typename Dd, typename Da>
WitnessFront witness_kernel(const AugmentedAdt& aadt,
                            const NaiveOptions& options, const Dd& dd,
                            const Da& da) {
  const std::size_t num_d = aadt.adt().num_defenses();
  const std::size_t num_a = aadt.adt().num_attacks();
  const std::uint64_t total = std::uint64_t{1} << num_d;
  const unsigned threads =
      resolve_shards(options, total, num_a);

  const AttackValues<Da> values(aadt, da);
  std::vector<std::vector<WitnessPoint>> shards(threads);
  run_sharded(options.pool, threads, total,
              [&](unsigned shard, std::uint64_t begin,
                                  std::uint64_t end) {
    // Witness points are heavy (two bitvecs each), so the compaction
    // floor is lower than the value path's.
    constexpr std::size_t kCompactFloor = std::size_t{1} << 12;
    std::vector<WitnessPoint>& points = shards[shard];
    points.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(end - begin, kCompactFloor)));
    scan_deltas(aadt, options, da, values, begin, end,
                [&](std::uint64_t delta, bool found, double best,
                    std::uint64_t best_alpha) {
                  WitnessPoint p;
                  p.def = delta_defense_value(aadt, dd, delta);
                  p.att = found ? best : da.zero();
                  p.defense = mask_to_bitvec(delta, num_d);
                  p.attack = found ? mask_to_bitvec(best_alpha, num_a)
                                   : BitVec(num_a);
                  points.push_back(std::move(p));
                  if (points.size() == points.capacity() &&
                      points.size() >= kCompactFloor) {
                    detail::pareto_minimize_stable(points, dd, da);
                  }
                });
    detail::pareto_minimize_stable(points, dd, da);
  });

  std::vector<WitnessPoint> front = std::move(shards[0]);
  std::vector<WitnessPoint> merged;
  for (unsigned s = 1; s < threads; ++s) {
    detail::pareto_merge_staircases(front, shards[s], merged, dd, da);
    front.swap(merged);
  }
  return WitnessFront::from_staircase(std::move(front));
}

}  // namespace

std::vector<FeasibleEvent> enumerate_feasible_events(
    const AugmentedAdt& aadt, const NaiveOptions& options) {
  check_limits(aadt, options);
  // The enumeration depends on the attacker domain only; single-domain
  // dispatch avoids instantiating it per (defender, attacker) pair.
  return dispatch_domain(aadt.attacker_domain(), [&](const auto& da) {
    return enumerate_kernel(aadt, options, da);
  });
}

Front naive_front(const AugmentedAdt& aadt, const NaiveOptions& options) {
  check_limits(aadt, options);
  // Unlike enumerate_feasible_events, the front path minimizes inside the
  // shards, so both domains are needed as inlinable policies.
  return dispatch_domains(aadt.defender_domain(), aadt.attacker_domain(),
                          [&](const auto& dd, const auto& da) {
                            return front_kernel(aadt, options, dd, da);
                          });
}

WitnessFront naive_front_witness(const AugmentedAdt& aadt,
                                 const NaiveOptions& options) {
  check_limits(aadt, options);
  // Sharded like naive_front - the witness path no longer funnels through
  // the full 2^|D| event vector; see witness_kernel for why the kept
  // witnesses are identical for every thread count.
  return dispatch_domains(aadt.defender_domain(), aadt.attacker_domain(),
                          [&](const auto& dd, const auto& da) {
                            return witness_kernel(aadt, options, dd, da);
                          });
}

}  // namespace adtp
