/// \file bottom_up.hpp
/// \brief The Bottom-Up Pareto-front algorithm for tree-shaped ADTs
///        (Algorithm 1, Table II; correct by Theorem 1).
///
/// Each node propagates a Pareto front of (defender value, attacker value)
/// pairs. At an attack-rooted subtree a pair (s, t) reads "if the defender
/// spends s inside this subtree, the attacker's cheapest way to make the
/// subtree succeed costs t"; at a defense-rooted subtree t is the
/// attacker's cheapest way to *defeat* the subtree. Leaves:
///   BAS a:  {(1_tensor_D, beta_A(a))}
///   BDS d:  {(1_tensor_D, 1_tensor_A), (beta_D(d), 1_oplus_A)}
/// Gates combine children's fronts with (tensor_D, op_A) where op_A follows
/// Table II, pruning dominated points after every combination (Lemma 2).
///
/// Intra-model parallelism: sibling subtrees of a tree are independent,
/// so the walk compiles into a task DAG - one task per node, edges gate
/// -> child - for the work-stealing TaskScheduler (util/parallel.hpp).
/// Every gate folds its children's fronts left to right exactly like the
/// sequential walk (the fold shape is fixed; arenas are scratch), so
/// fronts and witnesses are bit-identical for every thread count and the
/// threads knob stays out of the FrontCache key (docs/CONTRACTS.md).

#pragma once

#include <vector>

#include "core/attribution.hpp"
#include "core/pareto.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace adtp {

class NodeFrontMemo;
struct NodeMemoStats;

/// Table II: the attacker-coordinate operator for a gate of type \p gate
/// owned by \p agent. The defender coordinate always uses tensor_D.
[[nodiscard]] AttackOp attack_op(GateType gate, Agent agent);

struct BottomUpOptions {
  /// Aborts with LimitError when any intermediate front exceeds this many
  /// points (fronts are worst-case exponential, Fig. 4). 0 = unlimited.
  std::size_t max_front_points = 0;

  /// Optional wall-clock guard, checked once per gate; throws LimitError.
  const Deadline* deadline = nullptr;

  /// Optional cooperative cancellation, checked once per gate; throws
  /// CancelledError. analyze_batch() injects its batch-wide token here.
  const CancelToken* cancel = nullptr;

  /// Optional external combine scratch space, reused across analyses (the
  /// sequential value-front path only; parallel runs and witness runs
  /// keep private per-slot arenas). Not thread-safe: at most one analysis
  /// may use an arena at a time. analyze_batch() hands each worker thread
  /// its own persistent arena so buffer recycling spans the whole batch.
  FrontArena<ValuePoint>* arena = nullptr;

  /// Worker threads for the sibling-subtree task DAG: 1 (default) runs
  /// the plain sequential walk, 0 resolves to the hardware concurrency,
  /// N > 1 uses N workers. Fronts and witnesses are bit-identical for
  /// every value (see the file comment), so this knob deliberately does
  /// not participate in the FrontCache key; analyze_batch() raises it
  /// for oversized items via AnalysisOptions::intra_model_threads.
  unsigned threads = 1;

  /// Trees smaller than this many nodes always take the sequential walk
  /// even when \p threads (or an external \p pool) offers more - the
  /// per-node task bookkeeping costs more than a small tree's whole
  /// analysis. Tests set 0 to force the parallel path on tiny models.
  std::size_t parallel_node_floor = 64;

  /// Optional externally-owned scheduler; when set it overrides
  /// \p threads (subject to the floor above). analyze_batch() injects
  /// the batch scheduler here for oversized items. Like \p arena, never
  /// part of the FrontCache key.
  TaskScheduler* pool = nullptr;

  /// Optional per-node front memo (node_memo.hpp): gate fronts found
  /// under their subtree content key are replayed instead of recomputed,
  /// so a one-node edit re-analyzes only the root-ward dirty spine.
  /// Memoized fronts are bit-identical to a cold run by construction
  /// (docs/CONTRACTS.md), so this knob - like threads and pool - never
  /// enters the FrontCache key. Models with Custom domains bypass it.
  /// analyze_incremental() and analyze_batch()'s shared-memo mode set it.
  NodeFrontMemo* memo = nullptr;

  /// When set (and \p memo is active), receives this run's gate-level
  /// memo hit/miss counts.
  NodeMemoStats* memo_stats = nullptr;
};

/// Diagnostics of a Bottom-Up run, for benches and reports.
struct BottomUpReport {
  Front front;
  std::size_t max_front_size = 0;  ///< largest intermediate front
  /// Combine-path counters for this run (which merges took the sort-free
  /// k-way path, and how many product points they examined), summed
  /// across every slot arena of a parallel run.
  CombineStats combine_stats;
  double seconds = 0;  ///< wall-clock of the propagation
  unsigned threads_used = 1;  ///< scheduler slots serving the walk
  TaskRunStats sched;         ///< task-DAG counters (zero when sequential)
  std::uint64_t memo_hits = 0;    ///< gate fronts replayed from the memo
  std::uint64_t memo_misses = 0;  ///< gate fronts computed (memo active)
};

/// Algorithm 1 at the root. Requires aadt.adt().is_tree(); throws
/// ModelError otherwise (use bdd_bu_front() or unfold_to_tree()).
[[nodiscard]] Front bottom_up_front(const AugmentedAdt& aadt,
                                    const BottomUpOptions& options = {});

/// As bottom_up_front(), returning combine-path diagnostics alongside the
/// front.
[[nodiscard]] BottomUpReport bottom_up_analyze(
    const AugmentedAdt& aadt, const BottomUpOptions& options = {});

/// As bottom_up_front(), with witness events attached to every point.
[[nodiscard]] WitnessFront bottom_up_front_witness(
    const AugmentedAdt& aadt, const BottomUpOptions& options = {});

/// Runs Algorithm 1 and returns the intermediate front of *every* node,
/// indexed by NodeId (the red per-node annotations of the paper's Fig. 7).
[[nodiscard]] std::vector<Front> bottom_up_all_fronts(
    const AugmentedAdt& aadt, const BottomUpOptions& options = {});

}  // namespace adtp
