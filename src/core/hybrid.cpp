#include "core/hybrid.hpp"

#include "adt/modules.hpp"
#include "adt/transform.hpp"
#include "core/bottom_up.hpp"
#include "core/domains.hpp"

namespace adtp {

namespace {

/// The per-domain-pair hybrid walker; instantiated by dispatch_domains()
/// so tree-style combines run on the static policies (blobs delegate to
/// bdd_bu_front, which dispatches on the sub-AADT itself).
template <typename Dd, typename Da>
struct HybridState {
  const AugmentedAdt& aadt;
  const HybridOptions& options;
  const ModuleInfo& modules;
  const Dd& dd;
  const Da& da;
  HybridReport& report;
  FrontArena<ValuePoint>* arena;

  /// True iff gate \p v can be combined tree-style: every child is a
  /// single-parent module and the children's descendant sets are pairwise
  /// disjoint (so their basic steps - and thus their strategy choices -
  /// are independent).
  bool children_are_independent(NodeId v) {
    const Adt& adt = aadt.adt();
    const auto& children = adt.children(v);
    for (NodeId c : children) {
      if (adt.parents(c).size() != 1) return false;
      if (!modules.is_module[c]) return false;
    }
    for (std::size_t i = 0; i < children.size(); ++i) {
      for (std::size_t j = i + 1; j < children.size(); ++j) {
        if (modules.descendants[children[i]].intersects(
                modules.descendants[children[j]])) {
          return false;
        }
      }
    }
    return true;
  }

  Front leaf_front(NodeId v) {
    const Adt& adt = aadt.adt();
    if (adt.agent(v) == Agent::Attacker) {
      return Front::singleton(
          ValuePoint{dd.one(), aadt.attack_value(adt.attack_index(v))});
    }
    return Front::minimized(
        {ValuePoint{dd.one(), da.one()},
         ValuePoint{aadt.defense_value(adt.defense_index(v)), da.zero()}},
        dd, da);
  }

  Front blob_front(NodeId v) {
    // Sharing reaches into this subtree: analyze the whole sub-DAG with
    // BDDBU (Theorem 2 applies to the sub-AADT as its own model).
    const AugmentedAdt sub = extract_subgraph(aadt, v);
    ++report.blob_count;
    report.largest_blob = std::max(report.largest_blob, sub.adt().size());
    return bdd_bu_front(sub, options.bdd);
  }

  Front front(NodeId v) {
    // The per-blob guards live in options.bdd and are honored inside
    // bdd_bu_front; this check covers the tree-style walk between blobs.
    check_interrupt(options.bdd.deadline, options.bdd.cancel, "hybrid");
    const Adt& adt = aadt.adt();
    if (adt.type(v) == GateType::BasicStep) return leaf_front(v);
    if (!children_are_independent(v)) return blob_front(v);

    const AttackOp op = attack_op(adt.type(v), adt.agent(v));
    const auto& children = adt.children(v);
    Front acc = front(children[0]);
    for (std::size_t i = 1; i < children.size(); ++i) {
      const Front child = front(children[i]);
      arena->combine_into(acc, child, op, dd, da);
    }
    ++report.tree_combines;
    return acc;
  }
};

}  // namespace

Front hybrid_front(const AugmentedAdt& aadt, const HybridOptions& options) {
  return hybrid_analyze(aadt, options).front;
}

HybridReport hybrid_analyze(const AugmentedAdt& aadt,
                            const HybridOptions& options) {
  const ModuleInfo modules = compute_modules(aadt.adt());
  HybridReport report;
  // The tree-style combines and the per-blob BDDBU runs interleave on one
  // thread, so sharing one caller-provided arena between them is safe.
  FrontArena<ValuePoint> local_arena;
  FrontArena<ValuePoint>* arena =
      options.bdd.arena != nullptr ? options.bdd.arena : &local_arena;
  const CombineStats before = arena->stats();
  report.front = dispatch_domains(
      aadt.defender_domain(), aadt.attacker_domain(),
      [&](const auto& dd, const auto& da) {
        HybridState state{aadt, options, modules, dd, da, report, arena};
        return state.front(aadt.adt().root());
      });
  // Blob runs pass options.bdd.arena into bdd_bu_front too, so when the
  // caller shared one arena these counters include the blob merges; with
  // a local arena they cover the tree-style combines only.
  report.combine_stats = arena->stats().since(before);
  return report;
}

}  // namespace adtp
