#include "core/hybrid.hpp"

#include <optional>

#include "adt/modules.hpp"
#include "adt/transform.hpp"
#include "core/bottom_up.hpp"
#include "core/domains.hpp"
#include "core/node_memo.hpp"
#include "util/parallel.hpp"

namespace adtp {

namespace {

/// The per-domain-pair hybrid walker; instantiated by dispatch_domains()
/// so tree-style combines run on the static policies (blobs delegate to
/// bdd_bu_front, which dispatches on the sub-AADT itself).
template <typename Dd, typename Da>
struct HybridState {
  const AugmentedAdt& aadt;
  const HybridOptions& options;
  const ModuleInfo& modules;
  const Dd& dd;
  const Da& da;
  HybridReport& report;
  FrontArena<ValuePoint>* arena;
  /// Scheduler shared by every blob run (owned by hybrid_analyze);
  /// spawned lazily at the first blob that wants more than one thread,
  /// so tree-shaped models never pay for it.
  std::optional<TaskScheduler>& blob_pool;

  /// True iff gate \p v can be combined tree-style: every child is a
  /// single-parent module and the children's descendant sets are pairwise
  /// disjoint (so their basic steps - and thus their strategy choices -
  /// are independent).
  bool children_are_independent(NodeId v) {
    const Adt& adt = aadt.adt();
    const auto& children = adt.children(v);
    for (NodeId c : children) {
      if (adt.parents(c).size() != 1) return false;
      if (!modules.is_module[c]) return false;
    }
    for (std::size_t i = 0; i < children.size(); ++i) {
      for (std::size_t j = i + 1; j < children.size(); ++j) {
        if (modules.descendants[children[i]].intersects(
                modules.descendants[children[j]])) {
          return false;
        }
      }
    }
    return true;
  }

  Front leaf_front(NodeId v) {
    const Adt& adt = aadt.adt();
    if (adt.agent(v) == Agent::Attacker) {
      return Front::singleton(
          ValuePoint{dd.one(), aadt.attack_value(adt.attack_index(v))});
    }
    return Front::minimized(
        {ValuePoint{dd.one(), da.one()},
         ValuePoint{aadt.defense_value(adt.defense_index(v)), da.zero()}},
        dd, da);
  }

  Front blob_front(NodeId v) {
    // Sharing reaches into this subtree: analyze the whole sub-DAG with
    // BDDBU (Theorem 2 applies to the sub-AADT as its own model). The
    // blob inherits the BDDBU options - including the level-parallelism
    // threads knob - and its report counters fold into the hybrid's.
    const AugmentedAdt sub = extract_subgraph(aadt, v);
    ++report.blob_count;
    report.largest_blob = std::max(report.largest_blob, sub.adt().size());
    // The blob may route some combines through the shared arena (its
    // worker 0) and some through private worker arenas; its report sums
    // them all, while the hybrid's final arena delta counts the shared
    // part again. Track the shared part to subtract it once at the end.
    BddBuOptions blob_options = options.bdd;
    const unsigned requested = resolve_thread_knob(blob_options.threads);
    if (blob_options.pool == nullptr && requested > 1) {
      if (!blob_pool) blob_pool.emplace(requested);
      blob_options.pool = &*blob_pool;
    }
    const CombineStats arena_before = arena->stats();
    BddBuReport blob = bdd_bu_analyze(sub, blob_options);
    blob_arena_overlap += arena->stats().since(arena_before);
    blob_combines += blob.combine_stats;
    report.bdd_threads_used =
        std::max(report.bdd_threads_used, blob.threads_used);
    report.bdd_max_level_width =
        std::max(report.bdd_max_level_width, blob.max_level_width);
    report.bdd_sched += blob.sched;
    return std::move(blob.front);
  }

  CombineStats blob_combines{};       ///< summed blob report counters
  CombineStats blob_arena_overlap{};  ///< blob work that hit the shared arena

  /// Per-node front memo; populated by hybrid_analyze when
  /// options.memo is set and the model is memoizable.
  NodeFrontMemo* memo = nullptr;
  std::vector<std::uint64_t> memo_subtree{};  ///< subtree content hashes
  std::uint64_t memo_context = 0;
  NodeMemoStats memo_stats{};

  Front front(NodeId v) {
    // The per-blob guards live in options.bdd and are honored inside
    // bdd_bu_front; this check covers the tree-style walk between blobs.
    check_interrupt(options.bdd.deadline, options.bdd.cancel, "hybrid");
    const Adt& adt = aadt.adt();
    if (adt.type(v) == GateType::BasicStep) return leaf_front(v);

    // A memo hit replays the gate's (or whole blob's) front and prunes
    // its entire subtree from the walk - the dirty spine of an edit is
    // the only part that recomputes. Replay is bit-identical: the key
    // covers everything the front is a function of (node_memo.hpp).
    NodeMemoKey key;
    if (memo != nullptr) {
      key = NodeMemoKey{memo_subtree[v], memo_context, 0};
      Front replayed;
      if (memo->lookup(key, replayed)) {
        ++memo_stats.hits;
        return replayed;
      }
      ++memo_stats.misses;
    }

    Front acc;
    if (!children_are_independent(v)) {
      acc = blob_front(v);
    } else {
      const AttackOp op = attack_op(adt.type(v), adt.agent(v));
      const auto& children = adt.children(v);
      acc = front(children[0]);
      for (std::size_t i = 1; i < children.size(); ++i) {
        const Front child = front(children[i]);
        arena->combine_into(acc, child, op, dd, da);
      }
      ++report.tree_combines;
    }
    if (memo != nullptr) memo->insert(key, acc);
    return acc;
  }
};

}  // namespace

Front hybrid_front(const AugmentedAdt& aadt, const HybridOptions& options) {
  return hybrid_analyze(aadt, options).front;
}

HybridReport hybrid_analyze(const AugmentedAdt& aadt,
                            const HybridOptions& options) {
  const ModuleInfo modules = compute_modules(aadt.adt());
  HybridReport report;
  // The tree-style combines and the per-blob BDDBU runs interleave on one
  // thread, so sharing one caller-provided arena between them is safe.
  FrontArena<ValuePoint> local_arena;
  FrontArena<ValuePoint>* arena =
      options.bdd.arena != nullptr ? options.bdd.arena : &local_arena;
  const CombineStats before = arena->stats();
  CombineStats blob_combines;
  CombineStats blob_arena_overlap;
  std::optional<TaskScheduler> blob_pool;
  report.front = dispatch_domains(
      aadt.defender_domain(), aadt.attacker_domain(),
      [&](const auto& dd, const auto& da) {
        HybridState state{aadt, options,  modules, dd,
                          da,   report,   arena,   blob_pool};
        if (options.memo != nullptr && options.memo->capacity() != 0 &&
            memoizable(aadt)) {
          state.memo = options.memo;
          state.memo_subtree = subtree_value_hashes(aadt);
          state.memo_context = hybrid_memo_context(aadt, options.bdd);
        }
        Front front = state.front(aadt.adt().root());
        blob_combines = state.blob_combines;
        blob_arena_overlap = state.blob_arena_overlap;
        report.memo_hits = state.memo_stats.hits;
        report.memo_misses = state.memo_stats.misses;
        if (options.memo_stats != nullptr) {
          *options.memo_stats = state.memo_stats;
        }
        return front;
      });
  // The arena delta covers the tree-style combines plus whatever blob
  // work ran on the shared arena; the blob reports cover all blob work.
  // Summing both and subtracting the overlap counts everything once.
  CombineStats total = arena->stats().since(before);
  total += blob_combines;
  report.combine_stats = total.since(blob_arena_overlap);
  return report;
}

}  // namespace adtp
