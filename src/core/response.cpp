#include "core/response.hpp"

#include <unordered_map>

#include "util/error.hpp"

namespace adtp {

Responder::Responder(const AugmentedAdt& aadt, std::size_t node_limit)
    : aadt_(&aadt),
      order_(bdd::VarOrder::defense_first(aadt.adt())),
      manager_(order_.num_vars(), node_limit),
      root_(bdd::build_structure_function(manager_, aadt.adt(), order_)) {}

std::size_t Responder::bdd_size() const { return manager_.size(root_); }

ResponseResult Responder::respond(const BitVec& defense) const {
  const Adt& adt = aadt_->adt();
  const Semiring& da = aadt_->attacker_domain();
  if (defense.size() != adt.num_defenses()) {
    throw ModelError("Responder::respond: defense vector size " +
                     std::to_string(defense.size()) + " != |D| = " +
                     std::to_string(adt.num_defenses()));
  }

  // Cofactor on the deployed defenses; the result tests attack variables
  // only (defenses occupy the first block of the order).
  bdd::Ref f = root_;
  for (std::uint32_t v = 0; v < order_.num_defenses(); ++v) {
    const NodeId leaf = order_.node_of(v);
    f = manager_.restrict_var(f, v, defense.test(adt.defense_index(leaf)));
  }

  // The attacker's target terminal (Definition 7).
  const bool root_is_attack = adt.agent(adt.root()) == Agent::Attacker;
  const bdd::Ref target = root_is_attack ? bdd::kTrue : bdd::kFalse;

  struct NodeValue {
    double value;
    bool reachable;     // can the target terminal be reached from here?
    bool via_high;      // witness breadcrumb
  };
  std::unordered_map<bdd::Ref, NodeValue> values;

  for (bdd::Ref w : manager_.reachable(f)) {
    if (manager_.is_terminal(w)) {
      values[w] = NodeValue{w == target ? da.one() : da.zero(), w == target,
                            false};
      continue;
    }
    const NodeValue& low = values.at(manager_.low(w));
    const NodeValue& high = values.at(manager_.high(w));
    const NodeId leaf = order_.node_of(manager_.var(w));
    const double beta = aadt_->attack_value(adt.attack_index(leaf));
    const double via_high_value = da.combine(beta, high.value);

    NodeValue nv;
    nv.reachable = low.reachable || high.reachable;
    if (!high.reachable) {
      nv.value = low.value;
      nv.via_high = false;
    } else if (!low.reachable) {
      nv.value = via_high_value;
      nv.via_high = true;
    } else {
      nv.via_high = da.strictly_prefer(via_high_value, low.value);
      nv.value = nv.via_high ? via_high_value : low.value;
    }
    values[w] = nv;
  }

  ResponseResult result;
  result.attack = BitVec(adt.num_attacks());
  result.attack_exists = values.at(f).reachable;
  result.value = result.attack_exists ? values.at(f).value : da.zero();
  if (result.attack_exists) {
    // Walk the breadcrumbs to extract one optimal attack vector.
    bdd::Ref w = f;
    while (!manager_.is_terminal(w)) {
      const NodeValue& nv = values.at(w);
      if (nv.via_high) {
        const NodeId leaf = order_.node_of(manager_.var(w));
        result.attack.set(adt.attack_index(leaf));
        w = manager_.high(w);
      } else {
        w = manager_.low(w);
      }
    }
  }
  return result;
}

ResponseResult Responder::respond_undefended() const {
  return respond(BitVec(aadt_->adt().num_defenses()));
}

std::vector<BitVec> Responder::minimal_attacks(const BitVec& defense,
                                               std::size_t max_sets) const {
  const Adt& adt = aadt_->adt();
  if (defense.size() != adt.num_defenses()) {
    throw ModelError("Responder::minimal_attacks: defense vector size " +
                     std::to_string(defense.size()) + " != |D| = " +
                     std::to_string(adt.num_defenses()));
  }
  bdd::Ref f = root_;
  for (std::uint32_t v = 0; v < order_.num_defenses(); ++v) {
    const NodeId leaf = order_.node_of(v);
    f = manager_.restrict_var(f, v, defense.test(adt.defense_index(leaf)));
  }
  const bool root_is_attack = adt.agent(adt.root()) == Agent::Attacker;
  const bdd::Ref target = root_is_attack ? bdd::kTrue : bdd::kFalse;

  // Minimal models of a function monotone in its (attack) variables:
  //   minsets(w) = minsets(low)
  //              + { {v} + h : h in minsets(high), no l in minsets(low)
  //                            with l subset-of h }.
  // Sets not containing w's variable must satisfy the low cofactor; sets
  // containing it are minimal iff the rest is minimal for the high
  // cofactor and does not already satisfy the low one.
  std::unordered_map<bdd::Ref, std::vector<BitVec>> memo;
  std::size_t total = 0;

  auto recurse = [&](auto&& self, bdd::Ref w) -> const std::vector<BitVec>& {
    if (auto it = memo.find(w); it != memo.end()) return it->second;
    std::vector<BitVec> sets;
    if (manager_.is_terminal(w)) {
      if (w == target) sets.push_back(BitVec(adt.num_attacks()));
    } else {
      // Copies, not references: the second recursion can rehash the memo
      // map and invalidate a reference obtained from the first.
      std::vector<BitVec> low = self(self, manager_.low(w));
      const std::vector<BitVec> high = self(self, manager_.high(w));
      sets = std::move(low);
      const std::size_t attack_index =
          adt.attack_index(order_.node_of(manager_.var(w)));
      for (const BitVec& h : high) {
        bool covered = false;
        for (const BitVec& l : sets) {
          if (l.is_subset_of(h)) {
            covered = true;
            break;
          }
        }
        if (covered) continue;
        BitVec with_v = h;
        with_v.set(attack_index);
        sets.push_back(std::move(with_v));
      }
    }
    total += sets.size();
    if (total > max_sets) {
      throw LimitError("minimal_attacks: more than " +
                       std::to_string(max_sets) + " sets");
    }
    return memo.emplace(w, std::move(sets)).first->second;
  };

  std::vector<BitVec> result = recurse(recurse, f);
  return result;
}

ResponseResult optimal_response(const AugmentedAdt& aadt,
                                const BitVec& defense) {
  return Responder(aadt).respond(defense);
}

}  // namespace adtp
