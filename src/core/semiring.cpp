#include "core/semiring.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace adtp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

const char* to_string(SemiringKind kind) noexcept {
  switch (kind) {
    case SemiringKind::MinCost:
      return "min cost";
    case SemiringKind::MinTimeSeq:
      return "min time (sequential)";
    case SemiringKind::MinTimePar:
      return "min time (parallel)";
    case SemiringKind::MinSkill:
      return "min skill";
    case SemiringKind::Probability:
      return "probability";
    case SemiringKind::Custom:
      return "custom";
  }
  return "?";
}

std::optional<SemiringKind> parse_semiring_kind(std::string_view name) noexcept {
  std::string normal;
  for (char ch : name) {
    if (ch == '-' || ch == '_' || ch == ' ') continue;
    normal += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  if (normal == "mincost" || normal == "cost") return SemiringKind::MinCost;
  if (normal == "mintimeseq" || normal == "mintime(sequential)") {
    return SemiringKind::MinTimeSeq;
  }
  if (normal == "mintimepar" || normal == "mintime(parallel)") {
    return SemiringKind::MinTimePar;
  }
  if (normal == "minskill" || normal == "skill") return SemiringKind::MinSkill;
  if (normal == "probability" || normal == "prob") {
    return SemiringKind::Probability;
  }
  return std::nullopt;
}

std::string semiring_kind_name(SemiringKind kind) {
  switch (kind) {
    case SemiringKind::MinCost:
      return "mincost";
    case SemiringKind::MinTimeSeq:
      return "mintimeseq";
    case SemiringKind::MinTimePar:
      return "mintimepar";
    case SemiringKind::MinSkill:
      return "minskill";
    case SemiringKind::Probability:
      return "probability";
    case SemiringKind::Custom:
      break;
  }
  throw ModelError("semiring_kind_name: custom domains have no canonical "
                   "text-format name");
}

Semiring::Semiring(SemiringKind kind, std::string name, double one,
                   double zero)
    : kind_(kind), name_(std::move(name)), one_(one), zero_(zero) {}

Semiring::Semiring(SemiringKind kind)
    : Semiring(kind, to_string(kind),
               kind == SemiringKind::Probability ? 1.0 : 0.0,
               kind == SemiringKind::Probability ? 0.0 : kInf) {
  if (kind == SemiringKind::Custom) {
    throw ModelError("Semiring: use Semiring::custom() to build a custom "
                     "domain");
  }
}

Semiring Semiring::custom(std::string name, double one, double zero,
                          std::function<double(double, double)> combine,
                          std::function<bool(double, double)> prefer) {
  if (!combine || !prefer) {
    throw ModelError("Semiring::custom: combine and prefer are required");
  }
  Semiring s(SemiringKind::Custom, std::move(name), one, zero);
  s.custom_ = std::make_shared<const CustomOps>(
      CustomOps{std::move(combine), std::move(prefer)});
  return s;
}

double Semiring::combine(double x, double y) const {
  switch (kind_) {
    case SemiringKind::MinCost:
    case SemiringKind::MinTimeSeq:
      return x + y;
    case SemiringKind::MinTimePar:
    case SemiringKind::MinSkill:
      return std::max(x, y);
    case SemiringKind::Probability:
      return x * y;
    case SemiringKind::Custom:
      return custom_->combine(x, y);
  }
  return zero_;
}

bool Semiring::prefer(double x, double y) const {
  switch (kind_) {
    case SemiringKind::MinCost:
    case SemiringKind::MinTimeSeq:
    case SemiringKind::MinTimePar:
    case SemiringKind::MinSkill:
      return x <= y;
    case SemiringKind::Probability:
      return x >= y;
    case SemiringKind::Custom:
      return custom_->prefer(x, y);
  }
  return false;
}

bool Semiring::contains(double x) const {
  if (std::isnan(x)) return false;
  switch (kind_) {
    case SemiringKind::MinCost:
    case SemiringKind::MinTimeSeq:
    case SemiringKind::MinTimePar:
    case SemiringKind::MinSkill:
      return x >= 0;
    case SemiringKind::Probability:
      return x >= 0 && x <= 1;
    case SemiringKind::Custom:
      return true;
  }
  return false;
}

Semiring::AxiomReport Semiring::check_axioms(std::uint64_t seed,
                                             int samples) const {
  AxiomReport report;
  Rng rng(seed);

  // Representative values: the identities plus random in-domain points.
  std::vector<double> pool{one(), zero()};
  const bool bounded = kind_ == SemiringKind::Probability ||
                       (kind_ == SemiringKind::Custom && zero_ <= 1.0 &&
                        one_ <= 1.0 && zero_ >= 0.0 && one_ >= 0.0);
  for (int i = 0; i < 14; ++i) {
    pool.push_back(bounded ? rng.uniform()
                           : static_cast<double>(rng.range(0, 1000)));
  }

  // Value equality up to floating-point rounding: combine() on doubles is
  // only associative up to ULPs (e.g. products in the probability domain).
  auto eqv = [&](double x, double y) {
    if (x == y) return true;
    const double scale = std::max({1.0, std::abs(x), std::abs(y)});
    return std::abs(x - y) <= 1e-9 * scale;
  };

  for (int i = 0; i < samples; ++i) {
    const double x = pool[rng.below(pool.size())];
    const double y = pool[rng.below(pool.size())];
    const double z = pool[rng.below(pool.size())];

    if (!eqv(combine(x, y), combine(y, x))) report.commutative = false;
    if (!eqv(combine(combine(x, y), z), combine(x, combine(y, z)))) {
      report.associative = false;
    }
    if (prefer(x, y) && !prefer(combine(x, z), combine(y, z))) {
      report.monotone = false;
    }
    if (!eqv(combine(x, one()), x)) report.one_is_unit = false;
    if (!prefer(one(), x)) report.one_minimal = false;
    if (!prefer(x, zero())) report.zero_maximal = false;
    if (!prefer(x, y) && !prefer(y, x)) report.order_total = false;
  }
  return report;
}

}  // namespace adtp
