/// \file pareto.hpp
/// \brief Pareto points, dominance, and Pareto fronts (Definitions 8-9).
///
/// A point pairs a defender metric value with the attacker's optimal
/// response value. Dominance follows Definition 9:
///   (s1, t1)  dominates  (s2, t2)   iff   s1 <=_D s2  and  t1 >=_A t2,
/// i.e. the defender spends no more and the attacker is at least as badly
/// off. A front stores the Pareto-minimal *value pairs* (duplicates
/// collapse), sorted with strictly improving defender values and strictly
/// "worsening for the attacker" response values - a staircase.
///
/// Fronts are generic over the point payload: ValuePoint carries only the
/// two metric values, WitnessPoint additionally carries a witness event
/// (which defense/attack sets realize the point), supporting strategy
/// extraction.
///
/// All operations are additionally generic over the *domain policies*
/// (domains.hpp): any type exposing combine/prefer/strictly_prefer/
/// equivalent/choose/one/zero over doubles works, which includes both the
/// static per-kind structs and the runtime Semiring itself. The analysis
/// algorithms instantiate the static policies via dispatch_domains() so
/// the per-merge hot loops are branch-free.
///
/// FrontArena supports the accumulate-combine pattern of the algorithms:
/// it recycles the combine scratch buffers across the thousands of merges
/// of a single analysis instead of allocating per merge. For domain pairs
/// whose combines are monotone w.r.t. prefer (staircase_combine_eligible -
/// all the static built-ins) the combine step is *sort-free*: the rows of
/// the cross product are themselves staircases, so a k-way tournament
/// merge with upper-envelope row pruning produces the minimized result
/// without ever materializing or sorting the product. Non-monotone/custom
/// domains keep the materialize + sort + sweep path.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "core/domains.hpp"
#include "core/semiring.hpp"
#include "core/simd.hpp"
#include "util/bitvec.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace adtp {

/// A value-only Pareto point: defender metric, attacker response metric.
struct ValuePoint {
  double def = 0;
  double att = 0;
};

/// A Pareto point carrying a witness event.
struct WitnessPoint {
  double def = 0;
  double att = 0;
  BitVec defense;  ///< witness defense vector (full |D| indexing)
  BitVec attack;   ///< witness attack vector (full |A| indexing)
};

/// True iff \p p dominates \p q per Definition 9 (non-strict).
template <typename P, typename Dd, typename Da>
[[nodiscard]] bool dominates(const P& p, const P& q, const Dd& dd,
                             const Da& da) {
  return dd.prefer(p.def, q.def) && da.prefer(q.att, p.att);
}

/// How the attacker coordinate is merged when combining two fronts
/// (Table II): Combine applies tensor_A, Choose applies oplus_A.
enum class AttackOp : std::uint8_t { Combine, Choose };

[[nodiscard]] constexpr const char* to_string(AttackOp op) noexcept {
  return op == AttackOp::Combine ? "tensor_A" : "oplus_A";
}

/// True iff the (defender, attacker) policy pair admits the sort-free
/// staircase combine paths for \p op: when the defender combine is
/// monotone (and, under AttackOp::Combine, the attacker combine too -
/// Choose uses prefer alone), every row of a staircase cross product is
/// itself a staircase, so the product can be minimized by a k-way merge
/// instead of a full sort. Gated on domains.hpp's kMonotoneCombine
/// marker, so DynamicDomain and the runtime Semiring always report false
/// and take the sorting path.
template <typename Dd, typename Da>
[[nodiscard]] constexpr bool staircase_combine_eligible(AttackOp op) {
  return is_monotone_combine_v<Dd> &&
         (op == AttackOp::Choose || is_monotone_combine_v<Da>);
}

// ---- staircase primitives ------------------------------------------------

namespace detail {

/// Kept as an alias of domains.hpp's public k-way-eligibility trait (the
/// detection moved there so dispatch code can consult it without pulling
/// in the front machinery).
template <typename D>
using is_monotone_domain = has_monotone_combine<D>;

/// Strict weak order of the staircase: best defender value first; ties put
/// the most attacker-adverse response first (so a single forward sweep
/// keeps exactly the Pareto-minimal points).
template <typename Dd, typename Da>
struct FrontLess {
  const Dd& dd;
  const Da& da;

  template <typename P>
  bool operator()(const P& a, const P& b) const {
    if (!dd.equivalent(a.def, b.def)) return dd.strictly_prefer(a.def, b.def);
    if (!da.equivalent(a.att, b.att)) return da.strictly_prefer(b.att, a.att);
    return false;
  }
};

/// Appends \p p to the staircase \p out, preserving Pareto-minimality.
/// Precondition: points arrive with non-strictly worsening defender values
/// (any attacker tie order). Keeps p iff it is strictly more adverse than
/// the last kept point; when p matches the last point's defender value and
/// is strictly more adverse, it *dominates* the last point and replaces it.
template <typename P, typename Dd, typename Da>
void staircase_push(std::vector<P>& out, P&& p, const Dd& dd, const Da& da) {
  if (!out.empty()) {
    P& last = out.back();
    if (!da.strictly_prefer(last.att, p.att)) return;  // last dominates p
    if (dd.equivalent(last.def, p.def)) {              // p dominates last
      last = std::move(p);
      return;
    }
  }
  out.push_back(std::move(p));
}

/// Copies a point span's value coordinates into SoA columns for the
/// batch kernels (payloads never leave the point vector; kernels return
/// index selections and the caller gathers).
template <typename P>
void soa_transpose(const std::vector<P>& pts, AlignedVec<double>& def,
                   AlignedVec<double>& att) {
  const std::size_t n = pts.size();
  def.resize(n);
  att.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    def[i] = pts[i].def;
    att[i] = pts[i].att;
  }
}

/// The forward dominance sweep shared by the two minimizers: compacts
/// \p points - already in FrontLess order - to the Pareto-minimal
/// staircase in place (staircase_push's keep/replace rule, batched).
///
/// Domain pairs carrying the SIMD markers dispatch large spans to the
/// batch select kernel of the active CPU level (bit-identical to the
/// scalar loop below, which is the oracle the kernels are fuzzed
/// against); \p soa borrows transpose scratch (thread-local fallback)
/// and \p simd_lanes, when given, accumulates kernel throughput into
/// CombineStats::simd_lanes_used.
template <typename P, typename Dd, typename Da>
void staircase_sweep_in_place(std::vector<P>& points, const Dd& dd,
                              const Da& da, simd::SoaScratch* soa = nullptr,
                              std::uint64_t* simd_lanes = nullptr) {
  if constexpr (is_simd_pair_eligible_v<Dd, Da>) {
    if (points.size() >= simd::kMinSweepPoints &&
        points.size() < simd::kMaxSelectSpan) {
      if (const simd::KernelTable* kt = simd::active_kernels()) {
        simd::SoaScratch& s = soa != nullptr ? *soa : simd::tls_soa_scratch();
        s.sel.resize(points.size());
        simd::PushTail tail;
        simd::SelectResult r;
        if constexpr (std::is_same_v<P, ValuePoint>) {
          // ValuePoint is exactly the interleaved layout the pairs
          // kernels read; skip the transpose pass.
          static_assert(sizeof(ValuePoint) == 2 * sizeof(double));
          r = kt->push_select_pairs[simd::pref_index(Da::kSimdPrefer)](
              reinterpret_cast<const double*>(points.data()), points.size(),
              s.sel.data(), &tail);
        } else {
          soa_transpose(points, s.a_def, s.a_att);
          r = kt->push_select[simd::pref_index(Da::kSimdPrefer)](
              s.a_def.data(), s.a_att.data(), points.size(), s.sel.data(),
              &tail);
        }
        // Kept indices are strictly increasing with sel[j] >= j, so the
        // forward gather never overwrites a pending source; and when
        // everything is kept that forces sel to be the identity, so the
        // gather is skippable.
        if (r.kept < points.size()) {
          for (std::size_t j = 0; j < r.kept; ++j) {
            if (s.sel[j] != j) points[j] = std::move(points[s.sel[j]]);
          }
          points.resize(r.kept);
        }
        if (simd_lanes != nullptr) *simd_lanes += r.lanes;
        return;
      }
    }
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (kept != 0) {
      P& last = points[kept - 1];
      if (!da.strictly_prefer(last.att, points[i].att)) continue;
      if (dd.equivalent(last.def, points[i].def)) {
        last = std::move(points[i]);
        continue;
      }
    }
    if (kept != i) points[kept] = std::move(points[i]);
    ++kept;
  }
  points.resize(kept);
}

/// Sorts \p points and compacts them to the Pareto-minimal staircase
/// without allocating.
template <typename P, typename Dd, typename Da>
void pareto_minimize_in_place(std::vector<P>& points, const Dd& dd,
                              const Da& da) {
  std::sort(points.begin(), points.end(), FrontLess<Dd, Da>{dd, da});
  staircase_sweep_in_place(points, dd, da);
}

/// As pareto_minimize_in_place(), but *stable*: among points with
/// equivalent value pairs, the earliest input position wins. Needed where
/// the kept payload must be a deterministic function of the input
/// sequence alone - the sharded naive witness path feeds points in
/// ascending delta order and relies on "smallest delta wins" being
/// independent of compaction checkpoints and shard boundaries.
template <typename P, typename Dd, typename Da>
void pareto_minimize_stable(std::vector<P>& points, const Dd& dd,
                            const Da& da) {
  std::stable_sort(points.begin(), points.end(), FrontLess<Dd, Da>{dd, da});
  staircase_sweep_in_place(points, dd, da);
}

/// Merges two already-minimized staircases into \p out (cleared first) in
/// O(|a| + |b|) - the sorted-merge fast path that replaces concatenate +
/// sort + sweep for front unions.
/// SIMD-eligible domain pairs dispatch large merges to the run-galloping
/// merge kernel: it emits an index selection, and the gather below
/// copies only the *kept* points - a real win for witness fronts, where
/// the scalar loop's staircase_push copies every candidate's bit
/// vectors. \p soa / \p simd_lanes as in staircase_sweep_in_place.
template <typename P, typename Dd, typename Da>
void pareto_merge_staircases(const std::vector<P>& a, const std::vector<P>& b,
                             std::vector<P>& out, const Dd& dd, const Da& da,
                             simd::SoaScratch* soa = nullptr,
                             std::uint64_t* simd_lanes = nullptr) {
  if constexpr (is_simd_pair_eligible_v<Dd, Da>) {
    if (a.size() + b.size() >= simd::kMinMergePoints &&
        a.size() < simd::kMaxSelectSpan && b.size() < simd::kMaxSelectSpan) {
      if (const simd::KernelTable* kt = simd::active_kernels()) {
        simd::SoaScratch& s = soa != nullptr ? *soa : simd::tls_soa_scratch();
        s.sel.resize(a.size() + b.size());
        simd::MergeResult r;
        if constexpr (std::is_same_v<P, ValuePoint>) {
          // Interleaved layout matches the pairs kernel; no transposes.
          static_assert(sizeof(ValuePoint) == 2 * sizeof(double));
          r = kt->merge_select_pairs[simd::pref_index(Dd::kSimdPrefer)]
                                    [simd::pref_index(Da::kSimdPrefer)](
              reinterpret_cast<const double*>(a.data()), a.size(),
              reinterpret_cast<const double*>(b.data()), b.size(),
              s.sel.data());
        } else {
          soa_transpose(a, s.a_def, s.a_att);
          soa_transpose(b, s.b_def, s.b_att);
          r = kt->merge_select[simd::pref_index(Dd::kSimdPrefer)]
                              [simd::pref_index(Da::kSimdPrefer)](
              s.a_def.data(), s.a_att.data(), a.size(), s.b_def.data(),
              s.b_att.data(), b.size(), s.sel.data());
        }
        out.clear();
        out.reserve(r.kept);
        const P* abase = a.data();
        const P* bbase = b.data();
        for (std::size_t j = 0; j < r.kept; ++j) {
          const std::uint32_t e = s.sel[j];
          // Conditional base pointer instead of a conditional copy: the
          // source alternates on interleaved merges, and a select is
          // cheaper than a data-dependent branch per point.
          const P* base = (e & simd::kMergeSrcB) != 0 ? bbase : abase;
          out.push_back(base[e & ~simd::kMergeSrcB]);
        }
        if (simd_lanes != nullptr) *simd_lanes += r.lanes;
        return;
      }
    }
  }
  out.clear();
  out.reserve(a.size() + b.size());
  const FrontLess<Dd, Da> less{dd, da};
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (less(b[j], a[i])) {
      staircase_push(out, P(b[j]), dd, da);
      ++j;
    } else {
      staircase_push(out, P(a[i]), dd, da);
      ++i;
    }
  }
  for (; i < a.size(); ++i) staircase_push(out, P(a[i]), dd, da);
  for (; j < b.size(); ++j) staircase_push(out, P(b[j]), dd, da);
}

// Payload hooks: value-only points have no extra state.
inline void merge_defense_witness(ValuePoint&, const ValuePoint&) {}
inline void merge_attack_witness(ValuePoint&, const ValuePoint&) {}
inline void adopt_attack_witness(ValuePoint&, const ValuePoint&) {}

inline void merge_defense_witness(WitnessPoint& into,
                                  const WitnessPoint& from) {
  into.defense |= from.defense;
}
inline void merge_attack_witness(WitnessPoint& into,
                                 const WitnessPoint& from) {
  into.attack |= from.attack;
}
inline void adopt_attack_witness(WitnessPoint& into,
                                 const WitnessPoint& from) {
  into.attack = from.attack;
}

/// The (tensor_D, op_A) product of two points, witness payloads included:
/// defense witnesses union; attack witnesses union under Combine and adopt
/// the attacker-preferred side under Choose (ties keep \p p's).
template <typename P, typename Dd, typename Da>
[[nodiscard]] P product_point(const P& p, const P& q, AttackOp op,
                              const Dd& dd, const Da& da) {
  P r = p;
  r.def = dd.combine(p.def, q.def);
  merge_defense_witness(r, q);
  if (op == AttackOp::Combine) {
    r.att = da.combine(p.att, q.att);
    merge_attack_witness(r, q);
  } else if (da.strictly_prefer(q.att, p.att)) {
    r.att = q.att;
    adopt_attack_witness(r, q);
  }
  return r;
}

/// The value pair of product_point(p, q, op) without materializing the
/// payload - the key computation of the k-way merge's tournament.
template <typename P, typename Dd, typename Da>
void product_values(const P& p, const P& q, AttackOp op, const Dd& dd,
                    const Da& da, double& def, double& att) {
  def = dd.combine(p.def, q.def);
  if (op == AttackOp::Combine) {
    att = da.combine(p.att, q.att);
  } else {
    att = da.strictly_prefer(q.att, p.att) ? q.att : p.att;
  }
}

/// Upfront reservation cap for cross-product buffers: past this, growth is
/// left to push_back's geometric policy so a pathological combine commits
/// memory only as it actually materializes points.
inline constexpr std::size_t kProductReserveCap = std::size_t{1} << 16;

/// Fills \p out with the pairwise (tensor_D, op_A) products of the two
/// fronts' points, in lhs-major order. The output IS the full
/// |lhs| x |rhs| cross product; the reservation is merely capped (see
/// kProductReserveCap) so tiny-output giant combines do not pre-commit the
/// whole product in one jump.
template <typename P, typename Dd, typename Da>
void product_points(const std::vector<P>& lhs, const std::vector<P>& rhs,
                    AttackOp op, const Dd& dd, const Da& da,
                    std::vector<P>& out) {
  out.clear();
  out.reserve(std::min(lhs.size() * rhs.size(), kProductReserveCap));
  for (const P& p : lhs) {
    for (const P& q : rhs) {
      out.push_back(product_point(p, q, op, dd, da));
    }
  }
}

/// One pending element of the k-way merge: the product of row \p row of
/// the smaller operand with column \p col of the larger one, keyed by its
/// combined value pair so the tournament never touches point payloads
/// (witness bitvecs are materialized only for kept points).
struct KWayEntry {
  double def = 0;
  double att = 0;
  std::uint32_t row = 0;
  std::uint32_t col = 0;
};

/// The single-remaining-row bulk tail of combine_kway: once the
/// tournament is down to one row, the rest of that row is emitted in
/// ascending staircase order anyway, so its products are batch-computed
/// into SoA columns (one broadcast combine per coordinate) and pushed
/// through the same batch select kernel as the sweep - the heap drops
/// out entirely. This is the dominant phase of the leaf folds the
/// bottom-up algorithms live on (a singleton accumulator makes k = 1, so
/// the *whole* combine is this endgame).
///
/// The kept set is provably identical to popping the products one by
/// one: the upper-envelope prune can only fire after the output tail has
/// absorbed an attacker value at least as adverse as the row's last,
/// which also makes every remaining product un-keepable. Only the
/// scalar `examined` count is affected by stopping early, and it is
/// reproduced exactly by the post-hoc walk at the bottom (the prune
/// condition changes only when the tail changes, i.e. at kept points).
/// Returns that scalar-parity examined count.
template <typename P, typename Dd, typename Da>
std::size_t kway_endgame(const std::vector<P>& rows, const std::vector<P>& cols,
                         bool rows_on_lhs, const KWayEntry& head, AttackOp op,
                         const Dd& dd, const Da& da,
                         const simd::KernelTable& kt,
                         const std::vector<double>& row_tails,
                         simd::SoaScratch& s, std::vector<P>& out,
                         std::uint64_t* simd_lanes) {
  const std::size_t m = cols.size();
  const std::size_t c0 = head.col;
  const std::size_t len = m - c0;
  const double row_tail = row_tails[head.row];
  // Scalar parity: the prune test precedes the first pop's push.
  if (!out.empty() && da.prefer(row_tail, out.back().att)) return 1;

  const P& rp = rows[head.row];
  s.b_def.resize(len);
  s.b_att.resize(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.b_def[i] = cols[c0 + i].def;
    s.b_att[i] = cols[c0 + i].att;
  }
  s.p_def.resize(len);
  s.p_att.resize(len);
  // product_values' operand roles: p is the lhs-side point, and here the
  // *column* points vary while the row point is broadcast - so the
  // broadcast constant sits on p's side exactly when rows came from lhs.
  const bool swapped = rows_on_lhs;
  simd::combine_col_fn<Dd>(kt, swapped)(s.b_def.data(), len, rp.def,
                                        s.p_def.data());
  const int da_idx = simd::pref_index(Da::kSimdPrefer);
  if (op == AttackOp::Combine) {
    simd::combine_col_fn<Da>(kt, swapped)(s.b_att.data(), len, rp.att,
                                          s.p_att.data());
  } else {
    kt.choose_att[da_idx][swapped ? 1 : 0](s.b_att.data(), len, rp.att,
                                           s.p_att.data());
  }
  simd::PushTail tail;
  if (!out.empty()) {
    tail.has = true;
    tail.def = out.back().def;
    tail.att = out.back().att;
  }
  s.sel.resize(len);
  const simd::SelectResult r = kt.push_select[da_idx](
      s.p_def.data(), s.p_att.data(), len, s.sel.data(), &tail);
  if (simd_lanes != nullptr) {
    *simd_lanes += r.lanes + 2 * static_cast<std::uint64_t>(len);
  }

  const auto materialize = [&](std::uint32_t selidx) {
    const std::size_t col = c0 + selidx;
    const P& p = rows_on_lhs ? rp : cols[col];
    const P& q = rows_on_lhs ? cols[col] : rp;
    return product_point(p, q, op, dd, da);
  };
  std::size_t j = 0;
  if (r.replaced_first && r.kept > 0) {
    out.back() = materialize(s.sel[0]);
    j = 1;
  }
  for (; j < r.kept; ++j) out.push_back(materialize(s.sel[j]));

  // Scalar-parity examined count: the scalar loop pops products one at
  // a time and stops one past the first kept product whose attacker
  // value the row tail weakly dominates (at which point nothing later
  // can be kept either - see the function comment).
  for (std::size_t t = 0; t < r.kept; ++t) {
    const std::size_t pos = s.sel[t];
    if (da.prefer(row_tail, s.p_att[pos])) {
      return pos + 1 < len ? pos + 2 : len;
    }
  }
  return len;
}

/// Sort-free combine of two staircases (the general, non-singleton hot
/// path): each of the k = min(|lhs|, |rhs|) rows of the cross product is
/// itself a staircase (this is what staircase_combine_eligible certifies),
/// so a k-way tournament merge emits the products with non-strictly
/// worsening defender values - exactly staircase_push's precondition - and
/// the linear dominance sweep yields the minimized front in
/// O(|lhs||rhs| log k) worst case without materializing or sorting the
/// product.
///
/// Upper-envelope pruning usually does far better: a row's most adverse
/// value is its last product, and the output tail is the most adverse
/// point kept so far with a defender value at least as good as every
/// pending product - so once the tail is at least as adverse as a row's
/// final value, the whole remaining row is dominated and drops out of the
/// tournament. On staircase families (Fig. 4) this collapses the
/// enumeration to O((|lhs| + |rhs|) log k) products examined.
///
/// \p heap and \p row_tails are caller scratch (recycled by FrontArena);
/// \p out receives the minimized staircase. Returns the number of product
/// points actually examined (popped from the tournament).
///
/// Precondition: staircase_combine_eligible<Dd, Da>(op); both inputs are
/// staircases under (dd, da). \p out must not alias either input; the
/// inputs may alias each other.
template <typename P, typename Dd, typename Da>
std::size_t combine_kway(const std::vector<P>& lhs, const std::vector<P>& rhs,
                         AttackOp op, const Dd& dd, const Da& da,
                         std::vector<KWayEntry>& heap,
                         std::vector<double>& row_tails, std::vector<P>& out,
                         simd::SoaScratch* soa = nullptr,
                         std::uint64_t* simd_lanes = nullptr) {
  out.clear();
  if (lhs.empty() || rhs.empty()) return 0;
  // Rows iterate over the smaller operand so the tournament holds
  // min(|lhs|, |rhs|) entries; the product keeps its (lhs, rhs) operand
  // roles either way (tensor ops are commutative on values, and witness
  // adoption keeps lhs's payload on attacker-value ties).
  const bool rows_on_lhs = lhs.size() <= rhs.size();
  const std::vector<P>& rows = rows_on_lhs ? lhs : rhs;
  const std::vector<P>& cols = rows_on_lhs ? rhs : lhs;
  const std::size_t k = rows.size();
  const std::size_t m = cols.size();

  auto entry_at = [&](std::uint32_t row, std::uint32_t col) {
    KWayEntry e;
    e.row = row;
    e.col = col;
    const P& p = rows_on_lhs ? rows[row] : cols[col];
    const P& q = rows_on_lhs ? cols[col] : rows[row];
    product_values(p, q, op, dd, da, e.def, e.att);
    return e;
  };

  // SIMD-eligible domain pairs vectorize the per-row setup (row tails +
  // first tournament entries, one broadcast combine per column) and the
  // single-remaining-row endgame inside the loop; the tournament itself
  // is inherently serial and stays scalar.
  const simd::KernelTable* kt = nullptr;
  simd::SoaScratch* s = nullptr;
  if constexpr (is_simd_pair_eligible_v<Dd, Da>) {
    if (m < simd::kMaxSelectSpan) {
      kt = simd::active_kernels();
      if (kt != nullptr) s = soa != nullptr ? soa : &simd::tls_soa_scratch();
    }
  }

  row_tails.resize(k);
  heap.clear();
  heap.reserve(k);
  bool simd_init = false;
  if constexpr (is_simd_pair_eligible_v<Dd, Da>) {
    if (kt != nullptr && k >= simd::kMinKwayRows) {
      // Here the *row* points vary while one column point is broadcast,
      // so the broadcast sits on product_values' p side exactly when the
      // rows came from the rhs (mirror of the endgame's roles).
      const bool swapped = !rows_on_lhs;
      soa_transpose(rows, s->a_def, s->a_att);
      s->p_def.resize(k);
      s->p_att.resize(k);
      const int da_idx = simd::pref_index(Da::kSimdPrefer);
      const auto att_col = [&](double c, double* dst) {
        if (op == AttackOp::Combine) {
          simd::combine_col_fn<Da>(*kt, swapped)(s->a_att.data(), k, c, dst);
        } else {
          kt->choose_att[da_idx][swapped ? 1 : 0](s->a_att.data(), k, c, dst);
        }
      };
      att_col(cols[m - 1].att, row_tails.data());
      simd::combine_col_fn<Dd>(*kt, swapped)(s->a_def.data(), k, cols[0].def,
                                             s->p_def.data());
      att_col(cols[0].att, s->p_att.data());
      for (std::uint32_t i = 0; i < k; ++i) {
        heap.push_back(KWayEntry{s->p_def[i], s->p_att[i], i, 0});
      }
      if (simd_lanes != nullptr) {
        *simd_lanes += 3 * static_cast<std::uint64_t>(k);
      }
      simd_init = true;
    }
  }
  if (!simd_init) {
    for (std::uint32_t i = 0; i < k; ++i) {
      row_tails[i] = entry_at(i, static_cast<std::uint32_t>(m - 1)).att;
    }
    for (std::uint32_t i = 0; i < k; ++i) heap.push_back(entry_at(i, 0));
  }

  // Min-heap under the staircase order of the value pairs. std::push_heap
  // keeps the comparator-maximal element last, so the comparator is the
  // inverse of FrontLess.
  const FrontLess<Dd, Da> less{dd, da};
  auto heap_after = [&](const KWayEntry& a, const KWayEntry& b) {
    return less(ValuePoint{b.def, b.att}, ValuePoint{a.def, a.att});
  };
  std::make_heap(heap.begin(), heap.end(), heap_after);

  std::size_t examined = 0;
  while (!heap.empty()) {
    if constexpr (is_simd_pair_eligible_v<Dd, Da>) {
      if (kt != nullptr && heap.size() == 1 &&
          m - heap[0].col >= simd::kMinEndgameCols) {
        examined += kway_endgame(rows, cols, rows_on_lhs, heap[0], op, dd,
                                 da, *kt, row_tails, *s, out, simd_lanes);
        break;
      }
    }
    std::pop_heap(heap.begin(), heap.end(), heap_after);
    const KWayEntry e = heap.back();
    heap.pop_back();
    ++examined;
    if (!out.empty() && da.prefer(row_tails[e.row], out.back().att)) {
      continue;  // whole remaining row dominated by the output tail
    }
    // staircase_push's reject test, hoisted so dominated products are
    // never materialized (the payload copy is the expensive part for
    // witness points).
    if (out.empty() || da.strictly_prefer(out.back().att, e.att)) {
      const P& p = rows_on_lhs ? rows[e.row] : cols[e.col];
      const P& q = rows_on_lhs ? cols[e.col] : rows[e.row];
      staircase_push(out, product_point(p, q, op, dd, da), dd, da);
    }
    if (e.col + 1 < m) {
      heap.push_back(entry_at(e.row, e.col + 1));
      std::push_heap(heap.begin(), heap.end(), heap_after);
    }
  }
  return examined;
}

}  // namespace detail

// ---- fronts --------------------------------------------------------------

/// A Pareto front over payload type \p P (ValuePoint or WitnessPoint).
template <typename P>
class BasicFront {
 public:
  BasicFront() = default;

  /// Builds the Pareto-minimal front of arbitrary \p points.
  template <typename Dd, typename Da>
  static BasicFront minimized(std::vector<P> points, const Dd& dd,
                              const Da& da) {
    detail::pareto_minimize_in_place(points, dd, da);
    return from_staircase(std::move(points));
  }

  /// A front with a single point.
  static BasicFront singleton(P point) {
    BasicFront out;
    out.points_.push_back(std::move(point));
    return out;
  }

  /// Adopts \p points that are already a Pareto-minimal staircase (e.g.
  /// produced by the detail:: staircase primitives). No validation is
  /// performed; passing unsorted or dominated points breaks the front
  /// invariant silently.
  static BasicFront from_staircase(std::vector<P> points) {
    BasicFront out;
    out.points_ = std::move(points);
    return out;
  }

  /// Moves the point storage out (for capacity recycling by FrontArena),
  /// leaving this front empty.
  [[nodiscard]] std::vector<P> take_points() {
    std::vector<P> out = std::move(points_);
    points_.clear();
    return out;
  }

  [[nodiscard]] const std::vector<P>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] const P& front_point() const { return points_.at(0); }

  /// The union of two fronts, re-minimized (O(n + m) staircase merge).
  /// Precondition: both fronts are staircases under the *same* \p dd /
  /// \p da passed here - which every front built by this API with those
  /// domains is. Passing a different domain pair than the fronts were
  /// minimized under breaks the merge's sortedness assumption.
  template <typename Dd, typename Da>
  [[nodiscard]] BasicFront merged_with(const BasicFront& other, const Dd& dd,
                                       const Da& da) const {
    std::vector<P> merged;
    detail::pareto_merge_staircases(points_, other.points_, merged, dd, da);
    return from_staircase(std::move(merged));
  }

  /// True iff both fronts contain equivalent value pairs in order
  /// (witnesses are ignored).
  template <typename Dd, typename Da>
  [[nodiscard]] bool same_values(const BasicFront& other, const Dd& dd,
                                 const Da& da) const {
    if (points_.size() != other.points_.size()) return false;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (!dd.equivalent(points_[i].def, other.points_[i].def)) return false;
      if (!da.equivalent(points_[i].att, other.points_[i].att)) return false;
    }
    return true;
  }

  /// True iff both fronts contain exactly the same value doubles in
  /// order (bitwise-for-practical-purposes: == on every coordinate;
  /// witness payloads are ignored). This is the determinism contract of
  /// the intra-model thread knobs - the differential fuzz suite and the
  /// scaling benches all gate on this one predicate.
  [[nodiscard]] bool bit_identical_values(const BasicFront& other) const {
    if (points_.size() != other.points_.size()) return false;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (points_[i].def != other.points_[i].def) return false;
      if (points_[i].att != other.points_[i].att) return false;
    }
    return true;
  }

  /// As same_values(), but tolerating relative floating-point error up to
  /// \p rel_tol; needed when algorithms combine the same values in
  /// different orders (double arithmetic is only associative up to ULPs).
  [[nodiscard]] bool approx_same_values(const BasicFront& other,
                                        double rel_tol = 1e-9) const {
    if (points_.size() != other.points_.size()) return false;
    auto close = [rel_tol](double x, double y) {
      if (x == y) return true;  // covers equal infinities
      const double scale = std::max({1.0, std::abs(x), std::abs(y)});
      return std::abs(x - y) <= rel_tol * scale;
    };
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (!close(points_[i].def, other.points_[i].def)) return false;
      if (!close(points_[i].att, other.points_[i].att)) return false;
    }
    return true;
  }

  /// Renders as "{(d1, a1), (d2, a2), ...}".
  [[nodiscard]] std::string to_string() const {
    std::string out = "{";
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (i != 0) out += ", ";
      out += "(" + format_value(points_[i].def) + ", " +
             format_value(points_[i].att) + ")";
    }
    out += "}";
    return out;
  }

 private:
  std::vector<P> points_;
};

using Front = BasicFront<ValuePoint>;
using WitnessFront = BasicFront<WitnessPoint>;

/// The sorting reference path of the combine step: materializes the full
/// cross product, sorts it, and sweeps. O(nm log nm); correct for *any*
/// domain pair, monotone or not - this is the fallback for custom domains
/// and the oracle the sort-free path is tested against.
template <typename P, typename Dd, typename Da>
[[nodiscard]] BasicFront<P> combine_fronts_sorted(const BasicFront<P>& lhs,
                                                  const BasicFront<P>& rhs,
                                                  AttackOp op, const Dd& dd,
                                                  const Da& da) {
  std::vector<P> out;
  detail::product_points(lhs.points(), rhs.points(), op, dd, da, out);
  detail::pareto_minimize_in_place(out, dd, da);
  return BasicFront<P>::from_staircase(std::move(out));
}

/// The sort-free k-way staircase merge path of the combine step.
/// Precondition: staircase_combine_eligible<Dd, Da>(op) - calling this
/// with a non-monotone combine silently breaks the staircase invariant.
template <typename P, typename Dd, typename Da>
[[nodiscard]] BasicFront<P> combine_fronts_kway(const BasicFront<P>& lhs,
                                                const BasicFront<P>& rhs,
                                                AttackOp op, const Dd& dd,
                                                const Da& da) {
  std::vector<detail::KWayEntry> heap;
  std::vector<double> row_tails;
  std::vector<P> out;
  detail::combine_kway(lhs.points(), rhs.points(), op, dd, da, heap,
                       row_tails, out);
  return BasicFront<P>::from_staircase(std::move(out));
}

/// Combines two child fronts per the Bottom-Up step (Alg. 1 lines 7-8):
/// the defender coordinate always uses tensor_D; the attacker coordinate
/// uses tensor_A or oplus_A per \p op (Table II); the result is
/// re-minimized (sound by Lemma 2). Witness payloads are maintained:
/// defense witnesses union; attack witnesses union under Combine and adopt
/// the chosen side under Choose.
///
/// Dispatches to the sort-free k-way merge for domain pairs that certify
/// staircase_combine_eligible and to the sorting path otherwise; the two
/// agree on values (witness choice between equal-value products may
/// differ, both being valid). Hot loops should prefer
/// FrontArena::combine_into, which recycles the scratch buffers.
template <typename P, typename Dd, typename Da>
[[nodiscard]] BasicFront<P> combine_fronts(const BasicFront<P>& lhs,
                                           const BasicFront<P>& rhs,
                                           AttackOp op, const Dd& dd,
                                           const Da& da) {
  if (staircase_combine_eligible<Dd, Da>(op)) {
    return combine_fronts_kway(lhs, rhs, op, dd, da);
  }
  return combine_fronts_sorted(lhs, rhs, op, dd, da);
}

/// True iff some point of \p front dominates \p q (Definition 9) - the
/// "is this configuration already covered?" query. A linear scan; domain
/// pairs carrying the SIMD markers batch large fronts through the active
/// dominance kernel (bit-identical outcome, the compares are exact).
template <typename P, typename Dd, typename Da>
[[nodiscard]] bool front_dominates_point(const BasicFront<P>& front,
                                         const P& q, const Dd& dd,
                                         const Da& da) {
  const std::vector<P>& pts = front.points();
  // Only the payload-free ValuePoint takes the kernel: its layout is the
  // interleaved pairs form the kernel reads directly. A per-query
  // transpose of a payload-carrying front costs more than the scan it
  // would accelerate, so WitnessPoint stays on the scalar loop.
  if constexpr (is_simd_pair_eligible_v<Dd, Da> &&
                std::is_same_v<P, ValuePoint>) {
    if (pts.size() >= simd::kMinDominatePoints) {
      if (const simd::KernelTable* kt = simd::active_kernels()) {
        static_assert(sizeof(ValuePoint) == 2 * sizeof(double));
        return kt->any_dominates_pairs[simd::pref_index(Dd::kSimdPrefer)]
                                      [simd::pref_index(Da::kSimdPrefer)](
            reinterpret_cast<const double*>(pts.data()), pts.size(), q.def,
            q.att, nullptr);
      }
    }
  }
  for (const P& p : pts) {
    if (dominates(p, q, dd, da)) return true;
  }
  return false;
}

/// Reusable scratch space for the combine-heavy inner loops of the
/// analysis algorithms. One arena serves one analysis at a time (it is
/// not thread-safe); every combine reuses the arena's cross-product and
/// output buffers instead of allocating, and the accumulator's old
/// storage is recycled as the next output buffer. An arena may be reused
/// across *sequential* analyses - results never depend on prior arena
/// state, only capacity carries over - which is how analyze_batch()
/// recycles buffers across all items served by one worker thread (see
/// BottomUpOptions/BddBuOptions::arena).
/// Running totals of the combine work a FrontArena has served; benches
/// and the per-algorithm reports read these to show which path the hot
/// loop actually took and how effective upper-envelope pruning was.
/// Snapshot-and-subtract to attribute work to one analysis when the arena
/// is shared across a batch.
struct CombineStats {
  std::uint64_t kway_combines = 0;    ///< combines on the sort-free path
  std::uint64_t sorted_combines = 0;  ///< combines that sorted the product
  /// Two-staircase unions via merged_transformed (Algorithm 3's defense
  /// step); already sort-free for monotone domains.
  std::uint64_t staircase_merges = 0;
  /// Product points examined: every point of the cross product on the
  /// sorting path, only the tournament pops on the k-way path - the gap
  /// between this and the full product is the pruning win.
  std::uint64_t points_examined = 0;
  std::uint64_t points_kept = 0;  ///< points surviving minimization
  /// Point-elements streamed through the SIMD batch kernels (0 on the
  /// scalar dispatch level or for non-eligible domains). A throughput
  /// diagnostic, not a determinism-relevant quantity: the same analysis
  /// at different dispatch levels reports different lane counts while
  /// producing bit-identical fronts.
  std::uint64_t simd_lanes_used = 0;

  /// The work recorded since \p earlier (an older snapshot of the same
  /// counter set).
  [[nodiscard]] CombineStats since(const CombineStats& earlier) const {
    CombineStats d;
    d.kway_combines = kway_combines - earlier.kway_combines;
    d.sorted_combines = sorted_combines - earlier.sorted_combines;
    d.staircase_merges = staircase_merges - earlier.staircase_merges;
    d.points_examined = points_examined - earlier.points_examined;
    d.points_kept = points_kept - earlier.points_kept;
    d.simd_lanes_used = simd_lanes_used - earlier.simd_lanes_used;
    return d;
  }

  /// Accumulates another counter set (e.g. the per-worker arenas of a
  /// level-parallel propagation; integer sums are scheduling-invariant).
  CombineStats& operator+=(const CombineStats& other) {
    kway_combines += other.kway_combines;
    sorted_combines += other.sorted_combines;
    staircase_merges += other.staircase_merges;
    points_examined += other.points_examined;
    points_kept += other.points_kept;
    simd_lanes_used += other.simd_lanes_used;
    return *this;
  }
};

template <typename P>
class FrontArena {
 public:
  /// Replaces \p acc with combine_fronts(acc, rhs, op, dd, da).
  ///
  /// Domain pairs certifying staircase_combine_eligible (the static
  /// built-ins) take the sort-free k-way staircase merge, which never
  /// materializes the cross product; unmarked domains (DynamicDomain, the
  /// runtime Semiring) materialize, sort, and sweep.
  template <typename Dd, typename Da>
  void combine_into(BasicFront<P>& acc, const BasicFront<P>& rhs, AttackOp op,
                    const Dd& dd, const Da& da) {
    if (staircase_combine_eligible<Dd, Da>(op)) {
      stats_.points_examined += detail::combine_kway(
          acc.points(), rhs.points(), op, dd, da, heap_, row_tails_, spare_,
          &soa_, &stats_.simd_lanes_used);
      ++stats_.kway_combines;
    } else {
      detail::product_points(acc.points(), rhs.points(), op, dd, da, scratch_);
      std::sort(scratch_.begin(), scratch_.end(),
                detail::FrontLess<Dd, Da>{dd, da});
      spare_.clear();
      // No reserve to the cross-product size: the output buffer is adopted
      // by acc and can outlive the arena (e.g. stored as a per-node
      // front), so its capacity must stay proportional to the *kept*
      // points.
      for (P& p : scratch_) {
        detail::staircase_push(spare_, std::move(p), dd, da);
      }
      stats_.points_examined += scratch_.size();
      ++stats_.sorted_combines;
      trim_scratch(spare_.size());
    }
    stats_.points_kept += spare_.size();
    std::vector<P> recycled = acc.take_points();
    acc = BasicFront<P>::from_staircase(std::move(spare_));
    spare_ = std::move(recycled);
  }

  [[nodiscard]] const CombineStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = CombineStats{}; }

  /// Builds the minimized union of \p base with transform(q) for every
  /// point q of \p other, where \p transform shifts the defender
  /// coordinate via tensor_D (Algorithm 3's defense-variable step). For
  /// domains marked kMonotoneCombine the shift is order-preserving, so
  /// the union is a merge of two staircases and needs no sort; unmarked
  /// domains (DynamicDomain, runtime Semiring) take the sorting path so
  /// the result is a valid staircase even if a custom combine quietly
  /// violates the monotonicity axiom.
  template <typename Dd, typename Da, typename Transform>
  [[nodiscard]] BasicFront<P> merged_transformed(const BasicFront<P>& base,
                                                 const BasicFront<P>& other,
                                                 Transform&& transform,
                                                 const Dd& dd, const Da& da) {
    scratch_.clear();
    scratch_.reserve(other.size());
    for (const P& q : other.points()) scratch_.push_back(transform(q));
    std::vector<P> merged;
    if constexpr (is_monotone_combine_v<Dd>) {
      detail::pareto_merge_staircases(base.points(), scratch_, merged, dd, da,
                                      &soa_, &stats_.simd_lanes_used);
    } else {
      merged.reserve(base.size() + scratch_.size());
      merged.insert(merged.end(), base.points().begin(), base.points().end());
      merged.insert(merged.end(), scratch_.begin(), scratch_.end());
      detail::pareto_minimize_in_place(merged, dd, da);
    }
    ++stats_.staircase_merges;
    stats_.points_examined += base.size() + scratch_.size();
    stats_.points_kept += merged.size();
    return BasicFront<P>::from_staircase(std::move(merged));
  }

 private:
  /// Bounds the cross-product buffer's *retained* capacity at a multiple
  /// of the points the combine actually kept: an arena that served one
  /// giant custom-domain combine must not pin that product's memory for
  /// the rest of its (batch-long) life. The 8x / 1024-entry hysteresis
  /// keeps steady-state recycling allocation-free.
  void trim_scratch(std::size_t kept) {
    const std::size_t cap = scratch_.capacity();
    if (cap > 1024 && cap / 8 > kept) {
      scratch_.clear();
      scratch_.shrink_to_fit();
    }
  }

  std::vector<P> scratch_;  ///< cross-product / transform buffer
  std::vector<P> spare_;    ///< recycled output buffer
  std::vector<detail::KWayEntry> heap_;  ///< k-way tournament entries
  std::vector<double> row_tails_;        ///< per-row most adverse value
  simd::SoaScratch soa_;  ///< SoA column view for the batch kernels
  CombineStats stats_;
};

/// Reference O(n^2) Pareto minimization used by tests to validate the
/// staircase implementation.
template <typename P, typename Dd, typename Da>
[[nodiscard]] std::vector<P> pareto_min_bruteforce(const std::vector<P>& pts,
                                                   const Dd& dd,
                                                   const Da& da) {
  std::vector<P> kept;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < pts.size() && !dominated; ++j) {
      if (i == j) continue;
      const bool j_dominates = dominates(pts[j], pts[i], dd, da);
      const bool values_equal = dd.equivalent(pts[i].def, pts[j].def) &&
                                da.equivalent(pts[i].att, pts[j].att);
      // Equal value pairs collapse: keep only the first occurrence.
      if (values_equal) {
        if (j < i) dominated = true;
      } else if (j_dominates) {
        dominated = true;
      }
    }
    if (!dominated) kept.push_back(pts[i]);
  }
  return kept;
}

}  // namespace adtp
