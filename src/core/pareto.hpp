/// \file pareto.hpp
/// \brief Pareto points, dominance, and Pareto fronts (Definitions 8-9).
///
/// A point pairs a defender metric value with the attacker's optimal
/// response value. Dominance follows Definition 9:
///   (s1, t1)  dominates  (s2, t2)   iff   s1 <=_D s2  and  t1 >=_A t2,
/// i.e. the defender spends no more and the attacker is at least as badly
/// off. A front stores the Pareto-minimal *value pairs* (duplicates
/// collapse), sorted with strictly improving defender values and strictly
/// "worsening for the attacker" response values - a staircase.
///
/// Fronts are generic over the point payload: ValuePoint carries only the
/// two metric values, WitnessPoint additionally carries a witness event
/// (which defense/attack sets realize the point), supporting strategy
/// extraction.
///
/// All operations are additionally generic over the *domain policies*
/// (domains.hpp): any type exposing combine/prefer/strictly_prefer/
/// equivalent/choose/one/zero over doubles works, which includes both the
/// static per-kind structs and the runtime Semiring itself. The analysis
/// algorithms instantiate the static policies via dispatch_domains() so
/// the per-merge hot loops are branch-free.
///
/// FrontArena supports the accumulate-combine pattern of the algorithms:
/// it recycles the cross-product and output buffers across the thousands
/// of merges of a single analysis instead of allocating per merge, and it
/// skips the full re-sort whenever the product of two staircases is
/// already ordered (either operand a singleton - the common leaf case).

#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <type_traits>
#include <vector>

#include "core/domains.hpp"
#include "core/semiring.hpp"
#include "util/bitvec.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace adtp {

/// A value-only Pareto point: defender metric, attacker response metric.
struct ValuePoint {
  double def = 0;
  double att = 0;
};

/// A Pareto point carrying a witness event.
struct WitnessPoint {
  double def = 0;
  double att = 0;
  BitVec defense;  ///< witness defense vector (full |D| indexing)
  BitVec attack;   ///< witness attack vector (full |A| indexing)
};

/// True iff \p p dominates \p q per Definition 9 (non-strict).
template <typename P, typename Dd, typename Da>
[[nodiscard]] bool dominates(const P& p, const P& q, const Dd& dd,
                             const Da& da) {
  return dd.prefer(p.def, q.def) && da.prefer(q.att, p.att);
}

/// How the attacker coordinate is merged when combining two fronts
/// (Table II): Combine applies tensor_A, Choose applies oplus_A.
enum class AttackOp : std::uint8_t { Combine, Choose };

[[nodiscard]] constexpr const char* to_string(AttackOp op) noexcept {
  return op == AttackOp::Combine ? "tensor_A" : "oplus_A";
}

// ---- staircase primitives ------------------------------------------------

namespace detail {

/// True iff the domain policy declares its combine monotone w.r.t. its
/// prefer (domains.hpp's kMonotoneCombine). DynamicDomain and the runtime
/// Semiring carry no marker, so custom domains never enable the
/// sort-skipping fast paths even when their (unchecked) axioms would
/// permit it.
template <typename D, typename = void>
struct is_monotone_domain : std::false_type {};
template <typename D>
struct is_monotone_domain<D, std::void_t<decltype(D::kMonotoneCombine)>>
    : std::bool_constant<D::kMonotoneCombine> {};

/// Strict weak order of the staircase: best defender value first; ties put
/// the most attacker-adverse response first (so a single forward sweep
/// keeps exactly the Pareto-minimal points).
template <typename Dd, typename Da>
struct FrontLess {
  const Dd& dd;
  const Da& da;

  template <typename P>
  bool operator()(const P& a, const P& b) const {
    if (!dd.equivalent(a.def, b.def)) return dd.strictly_prefer(a.def, b.def);
    if (!da.equivalent(a.att, b.att)) return da.strictly_prefer(b.att, a.att);
    return false;
  }
};

/// Appends \p p to the staircase \p out, preserving Pareto-minimality.
/// Precondition: points arrive with non-strictly worsening defender values
/// (any attacker tie order). Keeps p iff it is strictly more adverse than
/// the last kept point; when p matches the last point's defender value and
/// is strictly more adverse, it *dominates* the last point and replaces it.
template <typename P, typename Dd, typename Da>
void staircase_push(std::vector<P>& out, P&& p, const Dd& dd, const Da& da) {
  if (!out.empty()) {
    P& last = out.back();
    if (!da.strictly_prefer(last.att, p.att)) return;  // last dominates p
    if (dd.equivalent(last.def, p.def)) {              // p dominates last
      last = std::move(p);
      return;
    }
  }
  out.push_back(std::move(p));
}

/// Sorts \p points and compacts them to the Pareto-minimal staircase
/// without allocating.
template <typename P, typename Dd, typename Da>
void pareto_minimize_in_place(std::vector<P>& points, const Dd& dd,
                              const Da& da) {
  std::sort(points.begin(), points.end(), FrontLess<Dd, Da>{dd, da});
  std::size_t kept = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (kept != 0) {
      P& last = points[kept - 1];
      if (!da.strictly_prefer(last.att, points[i].att)) continue;
      if (dd.equivalent(last.def, points[i].def)) {
        last = std::move(points[i]);
        continue;
      }
    }
    if (kept != i) points[kept] = std::move(points[i]);
    ++kept;
  }
  points.resize(kept);
}

/// Merges two already-minimized staircases into \p out (cleared first) in
/// O(|a| + |b|) - the sorted-merge fast path that replaces concatenate +
/// sort + sweep for front unions.
template <typename P, typename Dd, typename Da>
void pareto_merge_staircases(const std::vector<P>& a, const std::vector<P>& b,
                             std::vector<P>& out, const Dd& dd, const Da& da) {
  out.clear();
  out.reserve(a.size() + b.size());
  const FrontLess<Dd, Da> less{dd, da};
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (less(b[j], a[i])) {
      staircase_push(out, P(b[j]), dd, da);
      ++j;
    } else {
      staircase_push(out, P(a[i]), dd, da);
      ++i;
    }
  }
  for (; i < a.size(); ++i) staircase_push(out, P(a[i]), dd, da);
  for (; j < b.size(); ++j) staircase_push(out, P(b[j]), dd, da);
}

// Payload hooks: value-only points have no extra state.
inline void merge_defense_witness(ValuePoint&, const ValuePoint&) {}
inline void merge_attack_witness(ValuePoint&, const ValuePoint&) {}
inline void adopt_attack_witness(ValuePoint&, const ValuePoint&) {}

inline void merge_defense_witness(WitnessPoint& into,
                                  const WitnessPoint& from) {
  into.defense |= from.defense;
}
inline void merge_attack_witness(WitnessPoint& into,
                                 const WitnessPoint& from) {
  into.attack |= from.attack;
}
inline void adopt_attack_witness(WitnessPoint& into,
                                 const WitnessPoint& from) {
  into.attack = from.attack;
}

/// Fills \p out with the pairwise (tensor_D, op_A) products of the two
/// fronts' points, in lhs-major order.
template <typename P, typename Dd, typename Da>
void product_points(const std::vector<P>& lhs, const std::vector<P>& rhs,
                    AttackOp op, const Dd& dd, const Da& da,
                    std::vector<P>& out) {
  out.clear();
  out.reserve(lhs.size() * rhs.size());
  for (const P& p : lhs) {
    for (const P& q : rhs) {
      P r = p;
      r.def = dd.combine(p.def, q.def);
      merge_defense_witness(r, q);
      if (op == AttackOp::Combine) {
        r.att = da.combine(p.att, q.att);
        merge_attack_witness(r, q);
      } else if (da.strictly_prefer(q.att, p.att)) {
        r.att = q.att;
        adopt_attack_witness(r, q);
      }
      out.push_back(std::move(r));
    }
  }
}

}  // namespace detail

// ---- fronts --------------------------------------------------------------

/// A Pareto front over payload type \p P (ValuePoint or WitnessPoint).
template <typename P>
class BasicFront {
 public:
  BasicFront() = default;

  /// Builds the Pareto-minimal front of arbitrary \p points.
  template <typename Dd, typename Da>
  static BasicFront minimized(std::vector<P> points, const Dd& dd,
                              const Da& da) {
    detail::pareto_minimize_in_place(points, dd, da);
    return from_staircase(std::move(points));
  }

  /// A front with a single point.
  static BasicFront singleton(P point) {
    BasicFront out;
    out.points_.push_back(std::move(point));
    return out;
  }

  /// Adopts \p points that are already a Pareto-minimal staircase (e.g.
  /// produced by the detail:: staircase primitives). No validation is
  /// performed; passing unsorted or dominated points breaks the front
  /// invariant silently.
  static BasicFront from_staircase(std::vector<P> points) {
    BasicFront out;
    out.points_ = std::move(points);
    return out;
  }

  /// Moves the point storage out (for capacity recycling by FrontArena),
  /// leaving this front empty.
  [[nodiscard]] std::vector<P> take_points() {
    std::vector<P> out = std::move(points_);
    points_.clear();
    return out;
  }

  [[nodiscard]] const std::vector<P>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] const P& front_point() const { return points_.at(0); }

  /// The union of two fronts, re-minimized (O(n + m) staircase merge).
  /// Precondition: both fronts are staircases under the *same* \p dd /
  /// \p da passed here - which every front built by this API with those
  /// domains is. Passing a different domain pair than the fronts were
  /// minimized under breaks the merge's sortedness assumption.
  template <typename Dd, typename Da>
  [[nodiscard]] BasicFront merged_with(const BasicFront& other, const Dd& dd,
                                       const Da& da) const {
    std::vector<P> merged;
    detail::pareto_merge_staircases(points_, other.points_, merged, dd, da);
    return from_staircase(std::move(merged));
  }

  /// True iff both fronts contain equivalent value pairs in order
  /// (witnesses are ignored).
  template <typename Dd, typename Da>
  [[nodiscard]] bool same_values(const BasicFront& other, const Dd& dd,
                                 const Da& da) const {
    if (points_.size() != other.points_.size()) return false;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (!dd.equivalent(points_[i].def, other.points_[i].def)) return false;
      if (!da.equivalent(points_[i].att, other.points_[i].att)) return false;
    }
    return true;
  }

  /// As same_values(), but tolerating relative floating-point error up to
  /// \p rel_tol; needed when algorithms combine the same values in
  /// different orders (double arithmetic is only associative up to ULPs).
  [[nodiscard]] bool approx_same_values(const BasicFront& other,
                                        double rel_tol = 1e-9) const {
    if (points_.size() != other.points_.size()) return false;
    auto close = [rel_tol](double x, double y) {
      if (x == y) return true;  // covers equal infinities
      const double scale = std::max({1.0, std::abs(x), std::abs(y)});
      return std::abs(x - y) <= rel_tol * scale;
    };
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (!close(points_[i].def, other.points_[i].def)) return false;
      if (!close(points_[i].att, other.points_[i].att)) return false;
    }
    return true;
  }

  /// Renders as "{(d1, a1), (d2, a2), ...}".
  [[nodiscard]] std::string to_string() const {
    std::string out = "{";
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (i != 0) out += ", ";
      out += "(" + format_value(points_[i].def) + ", " +
             format_value(points_[i].att) + ")";
    }
    out += "}";
    return out;
  }

 private:
  std::vector<P> points_;
};

using Front = BasicFront<ValuePoint>;
using WitnessFront = BasicFront<WitnessPoint>;

/// Combines two child fronts per the Bottom-Up step (Alg. 1 lines 7-8):
/// the defender coordinate always uses tensor_D; the attacker coordinate
/// uses tensor_A or oplus_A per \p op (Table II); the result is
/// re-minimized (sound by Lemma 2). Witness payloads are maintained:
/// defense witnesses union; attack witnesses union under Combine and adopt
/// the chosen side under Choose.
template <typename P, typename Dd, typename Da>
[[nodiscard]] BasicFront<P> combine_fronts(const BasicFront<P>& lhs,
                                           const BasicFront<P>& rhs,
                                           AttackOp op, const Dd& dd,
                                           const Da& da) {
  std::vector<P> out;
  detail::product_points(lhs.points(), rhs.points(), op, dd, da, out);
  detail::pareto_minimize_in_place(out, dd, da);
  return BasicFront<P>::from_staircase(std::move(out));
}

/// Reusable scratch space for the combine-heavy inner loops of the
/// analysis algorithms. One arena serves one analysis at a time (it is
/// not thread-safe); every combine reuses the arena's cross-product and
/// output buffers instead of allocating, and the accumulator's old
/// storage is recycled as the next output buffer. An arena may be reused
/// across *sequential* analyses - results never depend on prior arena
/// state, only capacity carries over - which is how analyze_batch()
/// recycles buffers across all items served by one worker thread (see
/// BottomUpOptions/BddBuOptions::arena).
template <typename P>
class FrontArena {
 public:
  /// Replaces \p acc with combine_fronts(acc, rhs, op, dd, da).
  ///
  /// Fast path: when either operand is a singleton, the cross product of
  /// the two staircases is already sorted (tensor_D and the Table II
  /// attacker ops are monotone w.r.t. prefer), so the re-sort is skipped
  /// and only the linear dominance sweep runs. Taken only for domains
  /// that declare kMonotoneCombine (the static built-ins); under Choose
  /// the attacker coordinate uses prefer alone, so only the defender
  /// combine must be monotone.
  template <typename Dd, typename Da>
  void combine_into(BasicFront<P>& acc, const BasicFront<P>& rhs, AttackOp op,
                    const Dd& dd, const Da& da) {
    detail::product_points(acc.points(), rhs.points(), op, dd, da, scratch_);
    const bool rows_sorted =
        detail::is_monotone_domain<Dd>::value &&
        (op == AttackOp::Choose || detail::is_monotone_domain<Da>::value) &&
        (acc.size() == 1 || rhs.size() == 1);
    if (!rows_sorted) {
      std::sort(scratch_.begin(), scratch_.end(),
                detail::FrontLess<Dd, Da>{dd, da});
    }
    spare_.clear();
    // No reserve to the cross-product size: the output buffer is adopted
    // by acc and can outlive the arena (e.g. stored as a per-node front),
    // so its capacity must stay proportional to the *kept* points.
    for (P& p : scratch_) detail::staircase_push(spare_, std::move(p), dd, da);
    std::vector<P> recycled = acc.take_points();
    acc = BasicFront<P>::from_staircase(std::move(spare_));
    spare_ = std::move(recycled);
  }

  /// Builds the minimized union of \p base with transform(q) for every
  /// point q of \p other, where \p transform shifts the defender
  /// coordinate via tensor_D (Algorithm 3's defense-variable step). For
  /// domains marked kMonotoneCombine the shift is order-preserving, so
  /// the union is a merge of two staircases and needs no sort; unmarked
  /// domains (DynamicDomain, runtime Semiring) take the sorting path so
  /// the result is a valid staircase even if a custom combine quietly
  /// violates the monotonicity axiom.
  template <typename Dd, typename Da, typename Transform>
  [[nodiscard]] BasicFront<P> merged_transformed(const BasicFront<P>& base,
                                                 const BasicFront<P>& other,
                                                 Transform&& transform,
                                                 const Dd& dd, const Da& da) {
    scratch_.clear();
    scratch_.reserve(other.size());
    for (const P& q : other.points()) scratch_.push_back(transform(q));
    std::vector<P> merged;
    if constexpr (detail::is_monotone_domain<Dd>::value) {
      detail::pareto_merge_staircases(base.points(), scratch_, merged, dd,
                                      da);
    } else {
      merged.reserve(base.size() + scratch_.size());
      merged.insert(merged.end(), base.points().begin(), base.points().end());
      merged.insert(merged.end(), scratch_.begin(), scratch_.end());
      detail::pareto_minimize_in_place(merged, dd, da);
    }
    return BasicFront<P>::from_staircase(std::move(merged));
  }

 private:
  std::vector<P> scratch_;  ///< cross-product / transform buffer
  std::vector<P> spare_;    ///< recycled output buffer
};

/// Reference O(n^2) Pareto minimization used by tests to validate the
/// staircase implementation.
template <typename P, typename Dd, typename Da>
[[nodiscard]] std::vector<P> pareto_min_bruteforce(const std::vector<P>& pts,
                                                   const Dd& dd,
                                                   const Da& da) {
  std::vector<P> kept;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < pts.size() && !dominated; ++j) {
      if (i == j) continue;
      const bool j_dominates = dominates(pts[j], pts[i], dd, da);
      const bool values_equal = dd.equivalent(pts[i].def, pts[j].def) &&
                                da.equivalent(pts[i].att, pts[j].att);
      // Equal value pairs collapse: keep only the first occurrence.
      if (values_equal) {
        if (j < i) dominated = true;
      } else if (j_dominates) {
        dominated = true;
      }
    }
    if (!dominated) kept.push_back(pts[i]);
  }
  return kept;
}

}  // namespace adtp
