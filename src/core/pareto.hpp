/// \file pareto.hpp
/// \brief Pareto points, dominance, and Pareto fronts (Definitions 8-9).
///
/// A point pairs a defender metric value with the attacker's optimal
/// response value. Dominance follows Definition 9:
///   (s1, t1)  dominates  (s2, t2)   iff   s1 <=_D s2  and  t1 >=_A t2,
/// i.e. the defender spends no more and the attacker is at least as badly
/// off. A front stores the Pareto-minimal *value pairs* (duplicates
/// collapse), sorted with strictly improving defender values and strictly
/// "worsening for the attacker" response values - a staircase.
///
/// Fronts are generic over the point payload: ValuePoint carries only the
/// two metric values, WitnessPoint additionally carries a witness event
/// (which defense/attack sets realize the point), supporting strategy
/// extraction.

#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/semiring.hpp"
#include "util/bitvec.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace adtp {

/// A value-only Pareto point: defender metric, attacker response metric.
struct ValuePoint {
  double def = 0;
  double att = 0;
};

/// A Pareto point carrying a witness event.
struct WitnessPoint {
  double def = 0;
  double att = 0;
  BitVec defense;  ///< witness defense vector (full |D| indexing)
  BitVec attack;   ///< witness attack vector (full |A| indexing)
};

/// True iff \p p dominates \p q per Definition 9 (non-strict).
template <typename P>
[[nodiscard]] bool dominates(const P& p, const P& q, const Semiring& dd,
                             const Semiring& da) {
  return dd.prefer(p.def, q.def) && da.prefer(q.att, p.att);
}

/// How the attacker coordinate is merged when combining two fronts
/// (Table II): Combine applies tensor_A, Choose applies oplus_A.
enum class AttackOp : std::uint8_t { Combine, Choose };

[[nodiscard]] constexpr const char* to_string(AttackOp op) noexcept {
  return op == AttackOp::Combine ? "tensor_A" : "oplus_A";
}

/// A Pareto front over payload type \p P (ValuePoint or WitnessPoint).
template <typename P>
class BasicFront {
 public:
  BasicFront() = default;

  /// Builds the Pareto-minimal front of arbitrary \p points.
  static BasicFront minimized(std::vector<P> points, const Semiring& dd,
                              const Semiring& da);

  /// A front with a single point.
  static BasicFront singleton(P point);

  [[nodiscard]] const std::vector<P>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] const P& front_point() const { return points_.at(0); }

  /// The union of two fronts, re-minimized.
  [[nodiscard]] BasicFront merged_with(const BasicFront& other,
                                       const Semiring& dd,
                                       const Semiring& da) const;

  /// True iff both fronts contain equivalent value pairs in order
  /// (witnesses are ignored).
  [[nodiscard]] bool same_values(const BasicFront& other, const Semiring& dd,
                                 const Semiring& da) const;

  /// As same_values(), but tolerating relative floating-point error up to
  /// \p rel_tol; needed when algorithms combine the same values in
  /// different orders (double arithmetic is only associative up to ULPs).
  [[nodiscard]] bool approx_same_values(const BasicFront& other,
                                        double rel_tol = 1e-9) const;

  /// Renders as "{(d1, a1), (d2, a2), ...}".
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<P> points_;
};

using Front = BasicFront<ValuePoint>;
using WitnessFront = BasicFront<WitnessPoint>;

/// Combines two child fronts per the Bottom-Up step (Alg. 1 lines 7-8):
/// the defender coordinate always uses tensor_D; the attacker coordinate
/// uses tensor_A or oplus_A per \p op (Table II); the result is
/// re-minimized (sound by Lemma 2). Witness payloads are maintained:
/// defense witnesses union; attack witnesses union under Combine and adopt
/// the chosen side under Choose.
template <typename P>
[[nodiscard]] BasicFront<P> combine_fronts(const BasicFront<P>& lhs,
                                           const BasicFront<P>& rhs,
                                           AttackOp op, const Semiring& dd,
                                           const Semiring& da);

/// Reference O(n^2) Pareto minimization used by tests to validate the
/// staircase implementation.
template <typename P>
[[nodiscard]] std::vector<P> pareto_min_bruteforce(const std::vector<P>& pts,
                                                   const Semiring& dd,
                                                   const Semiring& da);

// ---- implementation ------------------------------------------------------

namespace detail {

// Payload hooks: value-only points have no extra state.
inline void merge_defense_witness(ValuePoint&, const ValuePoint&) {}
inline void merge_attack_witness(ValuePoint&, const ValuePoint&) {}
inline void adopt_attack_witness(ValuePoint&, const ValuePoint&) {}

inline void merge_defense_witness(WitnessPoint& into,
                                  const WitnessPoint& from) {
  into.defense |= from.defense;
}
inline void merge_attack_witness(WitnessPoint& into,
                                 const WitnessPoint& from) {
  into.attack |= from.attack;
}
inline void adopt_attack_witness(WitnessPoint& into,
                                 const WitnessPoint& from) {
  into.attack = from.attack;
}

}  // namespace detail

template <typename P>
BasicFront<P> BasicFront<P>::minimized(std::vector<P> points,
                                       const Semiring& dd,
                                       const Semiring& da) {
  // Staircase sweep: sort by defender value (best first; ties put the most
  // attacker-adverse response first), then keep a point iff its response
  // is strictly more adverse than everything already kept.
  std::sort(points.begin(), points.end(), [&](const P& a, const P& b) {
    if (!dd.equivalent(a.def, b.def)) return dd.strictly_prefer(a.def, b.def);
    if (!da.equivalent(a.att, b.att)) return da.strictly_prefer(b.att, a.att);
    return false;
  });
  BasicFront out;
  bool have = false;
  double most_adverse = 0;
  for (P& p : points) {
    if (!have || da.strictly_prefer(most_adverse, p.att)) {
      most_adverse = p.att;
      have = true;
      out.points_.push_back(std::move(p));
    }
  }
  return out;
}

template <typename P>
BasicFront<P> BasicFront<P>::singleton(P point) {
  BasicFront out;
  out.points_.push_back(std::move(point));
  return out;
}

template <typename P>
BasicFront<P> BasicFront<P>::merged_with(const BasicFront& other,
                                         const Semiring& dd,
                                         const Semiring& da) const {
  std::vector<P> all = points_;
  all.insert(all.end(), other.points_.begin(), other.points_.end());
  return minimized(std::move(all), dd, da);
}

template <typename P>
bool BasicFront<P>::same_values(const BasicFront& other, const Semiring& dd,
                                const Semiring& da) const {
  if (points_.size() != other.points_.size()) return false;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (!dd.equivalent(points_[i].def, other.points_[i].def)) return false;
    if (!da.equivalent(points_[i].att, other.points_[i].att)) return false;
  }
  return true;
}

template <typename P>
bool BasicFront<P>::approx_same_values(const BasicFront& other,
                                       double rel_tol) const {
  if (points_.size() != other.points_.size()) return false;
  auto close = [rel_tol](double x, double y) {
    if (x == y) return true;  // covers equal infinities
    const double scale = std::max({1.0, std::abs(x), std::abs(y)});
    return std::abs(x - y) <= rel_tol * scale;
  };
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (!close(points_[i].def, other.points_[i].def)) return false;
    if (!close(points_[i].att, other.points_[i].att)) return false;
  }
  return true;
}

template <typename P>
std::string BasicFront<P>::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (i != 0) out += ", ";
    out += "(" + format_value(points_[i].def) + ", " +
           format_value(points_[i].att) + ")";
  }
  out += "}";
  return out;
}

template <typename P>
BasicFront<P> combine_fronts(const BasicFront<P>& lhs, const BasicFront<P>& rhs,
                             AttackOp op, const Semiring& dd,
                             const Semiring& da) {
  std::vector<P> out;
  out.reserve(lhs.size() * rhs.size());
  for (const P& p : lhs.points()) {
    for (const P& q : rhs.points()) {
      P r = p;
      r.def = dd.combine(p.def, q.def);
      detail::merge_defense_witness(r, q);
      if (op == AttackOp::Combine) {
        r.att = da.combine(p.att, q.att);
        detail::merge_attack_witness(r, q);
      } else if (da.strictly_prefer(q.att, p.att)) {
        r.att = q.att;
        detail::adopt_attack_witness(r, q);
      }
      out.push_back(std::move(r));
    }
  }
  return BasicFront<P>::minimized(std::move(out), dd, da);
}

template <typename P>
std::vector<P> pareto_min_bruteforce(const std::vector<P>& pts,
                                     const Semiring& dd, const Semiring& da) {
  std::vector<P> kept;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < pts.size() && !dominated; ++j) {
      if (i == j) continue;
      const bool j_dominates = dominates(pts[j], pts[i], dd, da);
      const bool values_equal = dd.equivalent(pts[i].def, pts[j].def) &&
                                da.equivalent(pts[i].att, pts[j].att);
      // Equal value pairs collapse: keep only the first occurrence.
      if (values_equal) {
        if (j < i) dominated = true;
      } else if (j_dominates) {
        dominated = true;
      }
    }
    if (!dominated) kept.push_back(pts[i]);
  }
  return kept;
}

}  // namespace adtp
