/// \file simd.hpp
/// \brief Batch (SoA) Pareto kernels with runtime CPU dispatch.
///
/// The hot loops of every algorithm - dominance scans, staircase sweeps,
/// two-staircase merges, and the k-way tournament combine - reduce to
/// streaming two double columns (defender value, attacker value) through
/// a handful of compare/combine patterns. This header defines those
/// kernels as a table of function pointers over *structure-of-arrays*
/// columns; core/pareto.hpp transposes point spans into scratch columns,
/// runs a kernel, and gathers the surviving points (payloads - witness
/// bit vectors - never enter a kernel, so select-then-gather keeps them
/// untouched and bit-identical).
///
/// Determinism contract: every kernel performs exactly the comparisons
/// and arithmetic of the scalar code it replaces, in an order that cannot
/// change the outcome, so fronts and witnesses are bit-identical between
/// dispatch levels. The trap cases are handled explicitly:
///  - MinSkill's combine is `x < y ? y : x`, which differs from hardware
///    max on signed-zero ties; kernels emulate it with compare+blend and
///    keep operand roles via the Swapped table axis.
///  - FrontLess tie-breaks and staircase_push replacement compare with
///    `==` / strict orders only; vector compares are IEEE-exact.
///
/// Kernels exist per (preference direction, lane width); the direction
/// axes are indexed with pref_index() from a domain's kSimdPrefer marker
/// (core/domains.hpp). Domains without the markers (Custom semirings,
/// DynamicDomain) never reach a kernel: dispatch in pareto.hpp is
/// guarded by is_simd_eligible_v at compile time and by
/// active_simd_level() at run time.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/aligned.hpp"
#include "util/cpu.hpp"

namespace adtp {

/// Which direction a domain's strict preference points on raw doubles.
/// Lower: prefer(x, y) == (x <= y) (cost, time, skill).
/// Higher: prefer(x, y) == (x >= y) (probability).
enum class SimdPrefer : std::uint8_t { LowerIsBetter = 0, HigherIsBetter = 1 };

/// Which arithmetic a domain's combine performs on raw doubles.
/// Max is `x < y ? y : x` exactly (not hardware max; see file comment).
enum class SimdCombine : std::uint8_t { Add = 0, Max = 1, Mul = 2 };

namespace simd {

/// Table index for a preference direction.
constexpr int pref_index(SimdPrefer p) noexcept {
  return p == SimdPrefer::LowerIsBetter ? 0 : 1;
}

/// Minimum span sizes before transposing into columns pays for itself;
/// below these the scalar code runs (tuned on bench_micro, see BENCH_6).
inline constexpr std::size_t kMinSweepPoints = 16;
inline constexpr std::size_t kMinMergePoints = 16;   ///< sum of both inputs
inline constexpr std::size_t kMinDominatePoints = 8;
inline constexpr std::size_t kMinKwayRows = 8;
inline constexpr std::size_t kMinEndgameCols = 8;

/// Selection entries index 31 bits; spans at or above this fall back to
/// scalar (fronts this large exceed every configured front cap anyway).
inline constexpr std::size_t kMaxSelectSpan = 0x7fffffffu;

/// In merge_select output, this bit marks an index into the second input.
inline constexpr std::uint32_t kMergeSrcB = 0x80000000u;

/// The staircase tail a push kernel starts from (out.back() of the
/// caller, if any); updated to the tail after the batch.
struct PushTail {
  bool has = false;
  double def = 0.0;
  double att = 0.0;
};

struct SelectResult {
  std::size_t kept = 0;  ///< entries written to the selection buffer
  /// True when the first selection entry *replaces* the caller's
  /// existing tail point (staircase_push's equivalent-def rule fired
  /// against the external tail) instead of appending after it.
  bool replaced_first = false;
  std::uint64_t lanes = 0;  ///< elements streamed through vector ops
};

struct MergeResult {
  std::size_t kept = 0;
  std::uint64_t lanes = 0;
};

/// staircase_push over a batch: emits indices of surviving points into
/// sel (caller-sized to n), resolving skip/replace/append exactly like
/// the scalar loop. Kept indices are strictly increasing with
/// sel[j] >= j, so an in-place forward gather is safe.
using PushSelectFn = SelectResult (*)(const double* def, const double* att,
                                      std::size_t n, std::uint32_t* sel,
                                      PushTail* tail);

/// pareto_merge_staircases over two staircase columns: emits the merged
/// selection (kMergeSrcB tags source b) into sel (sized to na + nb).
using MergeSelectFn = MergeResult (*)(const double* adef, const double* aatt,
                                      std::size_t na, const double* bdef,
                                      const double* batt, std::size_t nb,
                                      std::uint32_t* sel);

/// Whether any column point dominates (def no worse AND att no less
/// adverse than) the query point.
using AnyDominatesFn = bool (*)(const double* def, const double* att,
                                std::size_t n, double qdef, double qatt,
                                std::uint64_t* lanes);

/// AoS ("pairs") variants: the input is interleaved (def, att) doubles -
/// exactly ValuePoint's layout - deinterleaved in registers, so payload-
/// free spans skip the transpose pass entirely (the transpose costs as
/// much as the kernel on short-lived spans; see BENCH_6).
using PushSelectPairsFn = SelectResult (*)(const double* pts, std::size_t n,
                                           std::uint32_t* sel,
                                           PushTail* tail);
using AnyDominatesPairsFn = bool (*)(const double* pts, std::size_t n,
                                     double qdef, double qatt,
                                     std::uint64_t* lanes);
using MergeSelectPairsFn = MergeResult (*)(const double* apts, std::size_t na,
                                           const double* bpts, std::size_t nb,
                                           std::uint32_t* sel);

/// dst[i] = OP(src[i], c) - or OP(c, src[i]) for the Swapped variants,
/// which matter only for the non-commutative Max/Choose ops.
using CombineColFn = void (*)(const double* src, std::size_t n, double c,
                              double* dst);

/// One dispatch level's kernels. Two-way axes: [pref_index(dd or da)]
/// for direction, [swapped] for operand roles of non-commutative ops.
struct KernelTable {
  int width = 1;  ///< double lanes per vector op
  PushSelectFn push_select[2] = {};          ///< [da]
  PushSelectPairsFn push_select_pairs[2] = {};        ///< [da], AoS input
  MergeSelectFn merge_select[2][2] = {};     ///< [dd][da]
  MergeSelectPairsFn merge_select_pairs[2][2] = {};    ///< [dd][da], AoS
  AnyDominatesFn any_dominates[2][2] = {};   ///< [dd][da]
  AnyDominatesPairsFn any_dominates_pairs[2][2] = {};  ///< [dd][da], AoS
  CombineColFn combine_add = nullptr;
  CombineColFn combine_mul = nullptr;
  CombineColFn combine_max[2] = {};          ///< [swapped]
  CombineColFn choose_att[2][2] = {};        ///< [da][swapped]
};

/// The kernel table for the active dispatch level, or nullptr when the
/// active level is Scalar (callers then run the scalar oracle code).
[[nodiscard]] const KernelTable* active_kernels() noexcept;

/// Per-level tables; nullptr when the build target lacks the ISA.
/// active_kernels() only consults these at or below the detected level,
/// so their lazy initialization never executes on unsupported hardware.
[[nodiscard]] const KernelTable* kernels_sse2() noexcept;
[[nodiscard]] const KernelTable* kernels_avx2() noexcept;

/// Picks the column-combine kernel for a domain's op, honoring operand
/// roles for the non-commutative Max.
template <typename D>
[[nodiscard]] CombineColFn combine_col_fn(const KernelTable& k,
                                          bool swapped) noexcept {
  if constexpr (D::kSimdCombine == SimdCombine::Add) {
    (void)swapped;
    return k.combine_add;
  } else if constexpr (D::kSimdCombine == SimdCombine::Mul) {
    (void)swapped;
    return k.combine_mul;
  } else {
    return k.combine_max[swapped ? 1 : 0];
  }
}

/// Reusable SoA scratch columns. FrontArena owns one; free-function
/// entry points share a thread-local instance (tls_soa_scratch).
struct SoaScratch {
  AlignedVec<double> a_def, a_att;  ///< first input columns
  AlignedVec<double> b_def, b_att;  ///< second input columns
  AlignedVec<double> p_def, p_att;  ///< product / result columns
  std::vector<std::uint32_t> sel;   ///< selection output

  void release() {
    a_def = {}; a_att = {};
    b_def = {}; b_att = {};
    p_def = {}; p_att = {};
    sel = {};
  }
};

/// The calling thread's shared scratch (for pareto.hpp free functions
/// that have no arena to borrow from).
[[nodiscard]] SoaScratch& tls_soa_scratch() noexcept;

}  // namespace simd
}  // namespace adtp
