#include "core/attribution.hpp"

#include <cmath>

#include "util/error.hpp"

namespace adtp {

void Attribution::set(std::string name, double value) {
  values_[std::move(name)] = value;
}

double Attribution::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    throw AttributionError("Attribution: no value assigned to '" + name +
                           "'");
  }
  return it->second;
}

void Attribution::validate(const Adt& adt) const {
  for (const auto& [name, value] : values_) {
    const auto id = adt.find(name);
    if (!id) {
      throw AttributionError("Attribution: value assigned to unknown node '" +
                             name + "'");
    }
    if (adt.type(*id) != GateType::BasicStep) {
      throw AttributionError("Attribution: '" + name +
                             "' is a gate; only basic steps carry values");
    }
    if (std::isnan(value)) {
      throw AttributionError("Attribution: value of '" + name + "' is NaN");
    }
  }
  for (NodeId id : adt.attack_steps()) {
    if (!values_.contains(adt.name(id))) {
      throw AttributionError("Attribution: basic attack step '" +
                             adt.name(id) + "' has no value");
    }
  }
  for (NodeId id : adt.defense_steps()) {
    if (!values_.contains(adt.name(id))) {
      throw AttributionError("Attribution: basic defense step '" +
                             adt.name(id) + "' has no value");
    }
  }
}

AugmentedAdt::AugmentedAdt(Adt adt, Attribution attribution,
                           Semiring defender_domain, Semiring attacker_domain)
    : adt_(std::move(adt)),
      attribution_(std::move(attribution)),
      defender_domain_(std::move(defender_domain)),
      attacker_domain_(std::move(attacker_domain)) {
  adt_.freeze();
  attribution_.validate(adt_);
  attack_values_.reserve(adt_.num_attacks());
  for (NodeId id : adt_.attack_steps()) {
    const double value = attribution_.get(adt_.name(id));
    if (!attacker_domain_.contains(value)) {
      throw AttributionError("AugmentedAdt: value " + std::to_string(value) +
                             " of attack step '" + adt_.name(id) +
                             "' is outside the " + attacker_domain_.name() +
                             " domain");
    }
    attack_values_.push_back(value);
  }
  defense_values_.reserve(adt_.num_defenses());
  for (NodeId id : adt_.defense_steps()) {
    const double value = attribution_.get(adt_.name(id));
    if (!defender_domain_.contains(value)) {
      throw AttributionError("AugmentedAdt: value " + std::to_string(value) +
                             " of defense step '" + adt_.name(id) +
                             "' is outside the " + defender_domain_.name() +
                             " domain");
    }
    defense_values_.push_back(value);
  }
}

double AugmentedAdt::value_of(NodeId id) const {
  const Node& n = adt_.node(id);
  if (n.type != GateType::BasicStep) {
    throw AttributionError("AugmentedAdt::value_of: '" + n.name +
                           "' is not a basic step");
  }
  return n.agent == Agent::Attacker
             ? attack_values_[adt_.attack_index(id)]
             : defense_values_[adt_.defense_index(id)];
}

double AugmentedAdt::defense_vector_value(const BitVec& defense) const {
  double value = defender_domain_.one();
  for (std::size_t i = 0; i < defense.size(); ++i) {
    if (defense.test(i)) {
      value = defender_domain_.combine(value, defense_values_[i]);
    }
  }
  return value;
}

double AugmentedAdt::attack_vector_value(const BitVec& attack) const {
  double value = attacker_domain_.one();
  for (std::size_t i = 0; i < attack.size(); ++i) {
    if (attack.test(i)) {
      value = attacker_domain_.combine(value, attack_values_[i]);
    }
  }
  return value;
}

}  // namespace adtp
