/// \file node_memo.hpp
/// \brief A bounded, thread-safe memo of per-node Pareto fronts keyed on
///        subtree content, for incremental re-analysis.
///
/// Interactive serving is dominated by one-node edits to an
/// already-analyzed model: a cost tweak, a defense toggled, a subtree
/// grafted. The bottom-up semantics make everything outside the root-ward
/// spine of an edit reusable - a node's front is a pure function of its
/// subtree's content (structure + leaf values + domains + the
/// result-affecting options). The NodeFrontMemo caches those per-node
/// fronts keyed by a recursive content hash, so re-analyzing an edited
/// model recomputes only the dirty spine: O(depth) combines instead of
/// O(|tree|). The bottom-up and hybrid kernels consult it when
/// *Options::memo is set; analyze_incremental() and the analyze_batch()
/// shared-memo mode are the front doors.
///
/// Key composition (full key stored and compared exactly, like the
/// FrontCache - an FNV-1a collision costs a miss, never a wrong hit):
///  - subtree: recursive hash of the node's subtree - gate type, agent,
///    child order, and every reachable leaf's agent + attribute value.
///    Content-derived: the same subtree in two independently built models
///    hashes equal, which is exactly what lets counterfactual variants
///    share untouched fronts.
///  - context: everything outside the subtree that can change its front -
///    the two domain kinds, the algorithm family, and its result-affecting
///    limits (see bottom_up_memo_context / hybrid_memo_context).
///  - layout: for witness fronts only (0 for value fronts). Witness bit
///    vectors are indexed by the *model's* dense BAS/BDS indices and sized
///    by its |A| / |D|, so a witness front is reusable only when the
///    subtree's leaves keep their dense indices and the global widths
///    match; the layout hash pins both.
///
/// Determinism contract (docs/CONTRACTS.md): a memo hit replays a front
/// that an identically-keyed computation produced, so memoized results
/// are bit-identical to a cold analysis at every thread count, and the
/// memo knobs stay out of the FrontCacheKey. The memo's *eviction state*
/// may depend on scheduling (parallel kernels insert from worker
/// threads); results never do.

#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/attribution.hpp"
#include "core/pareto.hpp"
#include "util/hash.hpp"

namespace adtp {

struct BddBuOptions;  // node_memo.cpp hashes its result-affecting fields

/// Content-derived memo key; see the file comment for what each part
/// covers. Compared exactly - the hash maps only route the lookup.
struct NodeMemoKey {
  std::uint64_t subtree = 0;
  std::uint64_t context = 0;
  std::uint64_t layout = 0;  ///< 0 for value fronts
  bool operator==(const NodeMemoKey&) const = default;
};

/// Per-run memo counters, filled by a kernel when *Options::memo_stats is
/// set (gates only - leaf fronts are cheaper to rebuild than to look up).
struct NodeMemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// True iff fronts of \p aadt can be memoized (no Custom domain - their
/// hooks are opaque function objects that cannot be content-hashed; same
/// rule as cacheable()).
[[nodiscard]] bool memoizable(const AugmentedAdt& aadt);

/// The recursive subtree content hash of every node, indexed by NodeId:
/// leaves hash (type, agent, attribute value), gates hash (type, agent,
/// child subtree hashes in child order). One topological pass.
[[nodiscard]] std::vector<std::uint64_t> subtree_value_hashes(
    const AugmentedAdt& aadt);

/// The witness-layout hash of every node: the dense BAS/BDS index of each
/// reachable leaf plus the model-wide |A| and |D| (witness BitVec widths).
/// Value fronts do not need it; witness fronts are reusable only under an
/// identical layout.
[[nodiscard]] std::vector<std::uint64_t> subtree_layout_hashes(const Adt& adt);

/// Context hash for the bottom-up kernels: domain kinds plus
/// max_front_points (the only bottom-up option that can change a front or
/// turn success into a guard failure).
[[nodiscard]] std::uint64_t bottom_up_memo_context(
    const AugmentedAdt& aadt, std::size_t max_front_points);

/// Context hash for the hybrid walker: domain kinds plus the per-blob
/// BDDBU options that are result-affecting (order, seed, node_limit,
/// max_front_points - the same fields the FrontCache key hashes).
[[nodiscard]] std::uint64_t hybrid_memo_context(const AugmentedAdt& aadt,
                                                const BddBuOptions& bdd);

/// Bounded, thread-safe LRU memo of per-node fronts - value and witness
/// fronts in separate stores (they never share a key shape). Entries are
/// held behind shared_ptr so the mutex only guards pointer and list-node
/// operations; deep copies happen outside the lock. Evicted entries
/// donate their point buffers to a small recycling pool, so a steady
/// stream of inserts at capacity reuses storage instead of churning the
/// allocator.
class NodeFrontMemo {
 public:
  /// \p capacity bounds each store's entry count; 0 disables the memo
  /// (every lookup misses, every insert is dropped).
  explicit NodeFrontMemo(std::size_t capacity = 4096)
      : values_(capacity), witnesses_(capacity) {}

  /// On hit, deep-copies the stored front into \p out, refreshes its
  /// recency, and returns true.
  template <typename P>
  [[nodiscard]] bool lookup(const NodeMemoKey& key, BasicFront<P>& out) {
    return store<P>().lookup(key, out);
  }

  /// Inserts (or refreshes) a deep copy of \p front under \p key,
  /// evicting the least recently used entry when over capacity.
  template <typename P>
  void insert(const NodeMemoKey& key, const BasicFront<P>& front) {
    store<P>().insert(key, front);
  }

  /// Cumulative counters across both stores since construction or the
  /// last clear().
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;  ///< current size (both stores)

    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };

  [[nodiscard]] Stats stats() const {
    Stats out;
    values_.add_stats(out);
    witnesses_.add_stats(out);
    return out;
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return values_.capacity;
  }

  /// Drops every entry and resets the counters.
  void clear() {
    values_.clear();
    witnesses_.clear();
  }

 private:
  struct KeyHash {
    std::size_t operator()(const NodeMemoKey& k) const noexcept {
      return static_cast<std::size_t>(
          hash_combine(hash_combine(k.subtree, k.context), k.layout));
    }
  };

  template <typename P>
  struct Store {
    using Entry = std::pair<NodeMemoKey, std::shared_ptr<BasicFront<P>>>;

    explicit Store(std::size_t capacity_) : capacity(capacity_) {}

    bool lookup(const NodeMemoKey& key, BasicFront<P>& out) {
      std::shared_ptr<const BasicFront<P>> hit;
      {
        const std::lock_guard<std::mutex> lock(mutex);
        const auto it = map.find(key);
        if (it == map.end()) {
          ++misses;
          return false;
        }
        ++hits;
        lru.splice(lru.begin(), lru, it->second);  // refresh recency
        hit = it->second->second;
      }
      out = *hit;  // deep copy outside the lock
      return true;
    }

    void insert(const NodeMemoKey& key, const BasicFront<P>& front) {
      if (capacity == 0) return;
      // Deep-copy into a (possibly recycled) buffer before taking the
      // mutex, so concurrent workers never serialize on point copies.
      std::vector<P> points = take_buffer();
      points.assign(front.points().begin(), front.points().end());
      auto stored = std::make_shared<BasicFront<P>>(
          BasicFront<P>::from_staircase(std::move(points)));
      std::shared_ptr<BasicFront<P>> evicted;
      {
        const std::lock_guard<std::mutex> lock(mutex);
        const auto it = map.find(key);
        if (it != map.end()) {
          it->second->second = std::move(stored);
          lru.splice(lru.begin(), lru, it->second);
          return;
        }
        lru.emplace_front(key, std::move(stored));
        map.emplace(key, lru.begin());
        ++insertions;
        if (lru.size() > capacity) {
          map.erase(lru.back().first);
          evicted = std::move(lru.back().second);
          lru.pop_back();
          ++evictions;
        }
      }
      if (evicted != nullptr && evicted.use_count() == 1) {
        recycle_buffer(evicted->take_points());
      }
    }

    void add_stats(Stats& out) const {
      const std::lock_guard<std::mutex> lock(mutex);
      out.hits += hits;
      out.misses += misses;
      out.insertions += insertions;
      out.evictions += evictions;
      out.entries += lru.size();
    }

    void clear() {
      const std::lock_guard<std::mutex> lock(mutex);
      lru.clear();
      map.clear();
      pool.clear();
      hits = misses = insertions = evictions = 0;
    }

    std::vector<P> take_buffer() {
      const std::lock_guard<std::mutex> lock(mutex);
      if (pool.empty()) return {};
      std::vector<P> buf = std::move(pool.back());
      pool.pop_back();
      return buf;
    }

    void recycle_buffer(std::vector<P>&& buf) {
      buf.clear();
      const std::lock_guard<std::mutex> lock(mutex);
      if (pool.size() < kPoolSize) pool.push_back(std::move(buf));
    }

    static constexpr std::size_t kPoolSize = 32;

    std::size_t capacity;
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< most recent first
    std::unordered_map<NodeMemoKey, typename std::list<Entry>::iterator,
                       KeyHash>
        map;
    std::vector<std::vector<P>> pool;  ///< recycled point buffers
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  template <typename P>
  Store<P>& store() {
    if constexpr (std::is_same_v<P, ValuePoint>) {
      return values_;
    } else {
      return witnesses_;
    }
  }

  Store<ValuePoint> values_;
  Store<WitnessPoint> witnesses_;
};

}  // namespace adtp
