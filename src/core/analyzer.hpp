/// \file analyzer.hpp
/// \brief One-call façade over the three Pareto-front algorithms.

#pragma once

#include <cstdint>
#include <string>

#include "core/attribution.hpp"
#include "core/bdd_bu.hpp"
#include "core/bottom_up.hpp"
#include "core/hybrid.hpp"
#include "core/naive.hpp"
#include "core/pareto.hpp"

namespace adtp {

/// Which algorithm analyze() should run.
enum class Algorithm : std::uint8_t {
  Auto,     ///< BottomUp for trees, BddBu for DAGs
  Naive,    ///< Algorithm 2 (exponential; oracle/baseline)
  BottomUp, ///< Algorithm 1 (trees only)
  BddBu,    ///< Algorithm 3
  Hybrid,   ///< modular decomposition extension
};

[[nodiscard]] const char* to_string(Algorithm a) noexcept;

struct AnalysisOptions {
  Algorithm algorithm = Algorithm::Auto;
  NaiveOptions naive;
  BottomUpOptions bottom_up;
  BddBuOptions bdd;
  HybridOptions hybrid;

  /// Worker threads *inside* one analysis: 0 (default) keeps every
  /// per-algorithm setting as-is; any other value overrides the knobs of
  /// all four intra-model parallel paths - naive.threads (the sharded
  /// 2^|D| enumeration), bottom_up.threads (the sibling-subtree task
  /// DAG), and bdd.threads / hybrid.bdd.threads (the task-DAG BDD
  /// construction + propagation). Results are identical for every value,
  /// so the FrontCache key deliberately ignores it. analyze_batch()
  /// shares its scheduler with items' intra-model phases instead of
  /// letting an oversized item straggle on one core.
  unsigned intra_model_threads = 0;
};

struct AnalysisResult {
  Front front;
  Algorithm used = Algorithm::Auto;  ///< the algorithm actually executed
  double seconds = 0;                ///< wall-clock analysis time
  /// Per-node memo counters of this run; zero unless a NodeFrontMemo was
  /// threaded into the executed kernel (bottom-up or hybrid).
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
};

/// Computes PF(T) with the requested (or automatically selected)
/// algorithm.
[[nodiscard]] AnalysisResult analyze(const AugmentedAdt& aadt,
                                     const AnalysisOptions& options = {});

class NodeFrontMemo;

/// As analyze(), but consulting (and filling) \p memo, the per-node front
/// memo of node_memo.hpp: a model that differs from a previously analyzed
/// one in a single subtree recomputes only the root-ward spine of the
/// edit. Auto resolves to BottomUp for trees and to Hybrid (not BddBu)
/// for DAGs - the hybrid walker is the DAG kernel with a memo path. An
/// explicit Naive/BddBu request runs cold (those kernels have no per-node
/// memo); explicit per-algorithm memo pointers in \p options win over
/// \p memo. Results are bit-identical to analyze() without a memo, at
/// every thread count (docs/CONTRACTS.md).
[[nodiscard]] AnalysisResult analyze_incremental(
    const AugmentedAdt& aadt, NodeFrontMemo& memo,
    const AnalysisOptions& options = {});

}  // namespace adtp
