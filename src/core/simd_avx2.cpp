/// \file simd_avx2.cpp
/// \brief 4-lane (256-bit) instantiation of the SoA Pareto kernels.
///
/// This TU is compiled with -mavx2 (see CMakeLists.txt), so nothing in
/// it may run on a CPU without AVX2 - including the lazy table
/// initialization below. That is safe because simd.cpp only calls
/// kernels_avx2() when the *detected* level is Avx2 (env/overrides are
/// clamped to detection). Builds without AVX2 support in the compiler,
/// and non-x86 targets, get a nullptr table.

#include "core/simd.hpp"

#if (defined(__x86_64__) || defined(_M_X64)) && defined(__AVX2__)

#include <immintrin.h>

#include "core/simd_kernels_impl.hpp"

namespace adtp {
namespace simd {
namespace {

struct PackAvx2 {
  using V = __m256d;
  static constexpr int kWidth = 4;

  static V loadu(const double* p) { return _mm256_loadu_pd(p); }
  static void storeu(double* p, V v) { _mm256_storeu_pd(p, v); }
  static V set1(double x) { return _mm256_set1_pd(x); }
  static V add(V a, V b) { return _mm256_add_pd(a, b); }
  static V mul(V a, V b) { return _mm256_mul_pd(a, b); }

  static V lt_vec(V a, V b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static V gt_vec(V a, V b) { return _mm256_cmp_pd(a, b, _CMP_GT_OQ); }
  static V le_vec(V a, V b) { return _mm256_cmp_pd(a, b, _CMP_LE_OQ); }
  static V ge_vec(V a, V b) { return _mm256_cmp_pd(a, b, _CMP_GE_OQ); }
  static V and_vec(V a, V b) { return _mm256_and_pd(a, b); }
  static V or_vec(V a, V b) { return _mm256_or_pd(a, b); }
  static int mask_of(V v) { return _mm256_movemask_pd(v); }
  static int lt_mask(V a, V b) { return _mm256_movemask_pd(lt_vec(a, b)); }
  static int gt_mask(V a, V b) { return _mm256_movemask_pd(gt_vec(a, b)); }
  static int le_mask(V a, V b) {
    return _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_LE_OQ));
  }
  static int ge_mask(V a, V b) {
    return _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_GE_OQ));
  }
  static int eq_mask(V a, V b) {
    return _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_EQ_OQ));
  }
  // NEQ_UQ matches scalar != (true on unordered), as EQ_OQ matches ==.
  static int neq_mask(V a, V b) {
    return _mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_NEQ_UQ));
  }

  /// m ? x : y per lane, m produced by a compare.
  static V select(V m, V x, V y) { return _mm256_blendv_pd(y, x, m); }

  /// [s, v0, v1, v2]: shifts the lanes up by one, feeding s into lane 0.
  static V shift_in(V v, double s) {
    const V up = _mm256_permute4x64_pd(v, _MM_SHUFFLE(2, 1, 0, 0));
    return _mm256_blend_pd(up, _mm256_set1_pd(s), 0x1);
  }

  /// Deinterleaves kWidth consecutive (def, att) pairs starting at p,
  /// preserving point order: def = [d0, d1, d2, d3], att likewise.
  static void load_pairs(const double* p, V* def, V* att) {
    const __m256d v0 = _mm256_loadu_pd(p);      // d0 a0 d1 a1
    const __m256d v1 = _mm256_loadu_pd(p + 4);  // d2 a2 d3 a3
    const __m256d lo = _mm256_unpacklo_pd(v0, v1);  // d0 d2 d1 d3
    const __m256d hi = _mm256_unpackhi_pd(v0, v1);  // a0 a2 a1 a3
    *def = _mm256_permute4x64_pd(lo, _MM_SHUFFLE(3, 1, 2, 0));
    *att = _mm256_permute4x64_pd(hi, _MM_SHUFFLE(3, 1, 2, 0));
  }

  /// As load_pairs, but skips the order-restoring permutes: lanes come
  /// out as [x0, x2, x1, x3] on both columns, def/att still aligned
  /// lane-for-lane - enough for order-insensitive reductions.
  static void load_pairs_unordered(const double* p, V* def, V* att) {
    const __m256d v0 = _mm256_loadu_pd(p);
    const __m256d v1 = _mm256_loadu_pd(p + 4);
    *def = _mm256_unpacklo_pd(v0, v1);
    *att = _mm256_unpackhi_pd(v0, v1);
  }
};

}  // namespace

const KernelTable* kernels_avx2() noexcept {
  static const KernelTable table = detail::make_kernel_table<PackAvx2>();
  return &table;
}

}  // namespace simd
}  // namespace adtp

#else  // non-x86 targets, or a toolchain that cannot emit AVX2

namespace adtp {
namespace simd {

const KernelTable* kernels_avx2() noexcept { return nullptr; }

}  // namespace simd
}  // namespace adtp

#endif
