#include "core/simd.hpp"

namespace adtp {
namespace simd {

const KernelTable* active_kernels() noexcept {
  const SimdLevel level = active_simd_level();
  // active_simd_level() is clamped to detection, so consulting a
  // per-level table here never initializes kernels the CPU cannot run.
  if (level == SimdLevel::Avx2) {
    if (const KernelTable* t = kernels_avx2()) return t;
    // Toolchain could not build AVX2 kernels: degrade to SSE2.
  }
  if (level >= SimdLevel::Sse2) {
    if (const KernelTable* t = kernels_sse2()) return t;
  }
  return nullptr;
}

SoaScratch& tls_soa_scratch() noexcept {
  thread_local SoaScratch scratch;
  return scratch;
}

}  // namespace simd
}  // namespace adtp
