#include "core/relevance.hpp"

#include "bdd/build.hpp"
#include "core/budget.hpp"

namespace adtp {

RelevanceReport analyze_defense_relevance(const AugmentedAdt& aadt,
                                          const BddBuOptions& options) {
  const Adt& adt = aadt.adt();
  bdd::VarOrder order =
      options.order.has_value()
          ? *options.order
          : bdd::VarOrder::defense_first(adt, options.order_heuristic,
                                         options.order_seed);
  bdd::Manager manager(order.num_vars(), options.node_limit);
  const bdd::Ref root = bdd::build_structure_function(manager, adt, order);

  RelevanceReport report;
  report.full_front = bdd_bu_on_bdd(aadt, manager, root, order);

  for (NodeId d : adt.defense_steps()) {
    // Forbid d: the cofactor f|_{delta_d = 0} never tests d's variable,
    // so the same defense-first order stays valid.
    const bdd::Ref restricted =
        manager.restrict_var(root, order.var_of(d), false);
    DefenseRelevance entry;
    entry.defense = d;
    entry.front_without = bdd_bu_on_bdd(aadt, manager, restricted, order);
    entry.relevant = !entry.front_without.same_values(
        report.full_front, aadt.defender_domain(), aadt.attacker_domain());
    entry.ceiling_with = unlimited_defender_value(report.full_front);
    entry.ceiling_without = unlimited_defender_value(entry.front_without);
    report.defenses.push_back(std::move(entry));
  }
  return report;
}

}  // namespace adtp
