/// \file naive.hpp
/// \brief The Naive Pareto-front algorithm (Algorithm 2).
///
/// Enumerates every defense vector delta, computes the attacker's optimal
/// response rho(delta) by enumerating every attack vector (Definition 7),
/// and minimizes the resulting value pairs under Definition 9 dominance.
/// Exact for arbitrary DAG-shaped ADTs but exponential in |D| + |A|; it is
/// the correctness oracle for the other algorithms and the baseline of the
/// paper's experiments.
///
/// Intra-model parallelism: the 2^|D| delta space is embarrassingly
/// parallel, so NaiveOptions::threads shards it across a worker pool.
/// Results are *identical* for every thread count: the per-delta values
/// are computed independently of the sharding, enumerate_feasible_events
/// writes disjoint slices of one delta-ordered vector, and the front paths
/// minimize per-shard staircases that are then reduced pairwise in shard
/// order - dominance minimization only selects among the same value pairs,
/// so no floating-point recombination depends on the shard layout. The
/// witness path shards the same way (it no longer materializes the event
/// vector); stable minimization makes "smallest delta wins" the tie rule
/// among equal value pairs, so even the kept witnesses are bit-identical
/// for every thread count.

#pragma once

#include <optional>
#include <vector>

#include "core/attribution.hpp"
#include "core/pareto.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace adtp {

class TaskScheduler;  // util/parallel.hpp

struct NaiveOptions {
  /// Refuses instances with |D| + |A| above this (the enumeration would
  /// run forever); throws LimitError.
  std::size_t max_bits = 30;

  /// Optional wall-clock guard: when set and expired mid-run, throws
  /// LimitError (the paper similarly caps runs at 10^4 seconds).
  const Deadline* deadline = nullptr;

  /// Optional cooperative cancellation: when set mid-run, throws
  /// CancelledError. Checked once per enumerated defense vector, like the
  /// deadline. analyze_batch() injects its batch-wide token here.
  const CancelToken* cancel = nullptr;

  /// Worker threads sharding the 2^|D| delta enumeration: 1 (default)
  /// runs sequentially on the calling thread, 0 resolves to
  /// std::thread::hardware_concurrency(), N > 1 uses N workers (the
  /// calling thread is one of them). Always clamped to the number of
  /// deltas. The result is identical for every value (see the file
  /// comment), so this knob deliberately does not participate in the
  /// FrontCache key; analyze_batch() raises it for oversized items when
  /// workers would otherwise sit idle.
  unsigned threads = 1;

  /// Optional externally-owned scheduler the shards run on; when set it
  /// overrides \p threads (the shard count still honors the work floor
  /// and delta clamp). analyze_batch() injects the batch scheduler here
  /// for oversized items. Never part of the FrontCache key.
  TaskScheduler* pool = nullptr;
};

/// One row of the feasible-event set S (Definition 8): a defense vector
/// and the attacker's optimal response (nullopt when no successful attack
/// exists, the paper's "rho(delta) = circumflex" case).
struct FeasibleEvent {
  BitVec defense;
  std::optional<BitVec> response;
  double defense_value = 0;  ///< beta-hat_D(delta)
  double attack_value = 0;   ///< beta-hat_A(rho(delta)), or 1_oplus_A
};

/// Computes the full feasible-event set S, one entry per defense vector,
/// in ascending binary order of delta.
[[nodiscard]] std::vector<FeasibleEvent> enumerate_feasible_events(
    const AugmentedAdt& aadt, const NaiveOptions& options = {});

/// Algorithm 2: the Pareto front min_dominance(beta-hat(S)).
[[nodiscard]] Front naive_front(const AugmentedAdt& aadt,
                                const NaiveOptions& options = {});

/// As naive_front(), with witness events attached to every point.
[[nodiscard]] WitnessFront naive_front_witness(
    const AugmentedAdt& aadt, const NaiveOptions& options = {});

}  // namespace adtp
