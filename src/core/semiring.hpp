/// \file semiring.hpp
/// \brief Linearly ordered unital semiring attribute domains (Definition 4).
///
/// A semiring attribute domain is L = (V, combine, one, zero, prefer) where
/// in the paper's notation:
///   - combine  is the binary operator  (x tensor y),
///   - one      is 1_tensor  (the unit of combine, minimal w.r.t. prefer),
///   - zero     is 1_oplus   (maximal w.r.t. prefer; "impossible/worst"),
///   - prefer   is the linear order <= (true when the first argument is at
///              least as good as the second),
///   - choose   is the induced oplus:  x oplus y = min_prefer(x, y).
///
/// All Table I domains have values in [0, inf] or [0, 1], so V = double.
/// Note on Table I's probability row: from the Definition 4 axioms (1_tensor
/// is the unit of tensor and minimal w.r.t. prefer, 1_oplus is maximal) the
/// probability domain is ([0,1], max, *, 0, 1, >=): "better" means a higher
/// success probability, zero() = 0 ("attack impossible"), one() = 1.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace adtp {

/// The built-in attribute domains of Table I, plus Custom for user hooks.
enum class SemiringKind : std::uint8_t {
  MinCost,      ///< ([0,inf], min, +,   inf, 0, <=)
  MinTimeSeq,   ///< ([0,inf], min, +,   inf, 0, <=)  sequential time
  MinTimePar,   ///< ([0,inf], min, max, inf, 0, <=)  parallel time
  MinSkill,     ///< ([0,inf], min, max, inf, 0, <=)
  Probability,  ///< ([0,1],   max, *,   0,   1, >=)
  Custom,       ///< user-supplied hooks
};

[[nodiscard]] const char* to_string(SemiringKind kind) noexcept;

/// Parses a built-in domain name as used by the text format and CLIs:
/// "mincost", "mintimeseq", "mintimepar", "minskill", "probability"
/// (case-insensitive, '-'/'_' ignored). Custom is not parseable.
[[nodiscard]] std::optional<SemiringKind> parse_semiring_kind(
    std::string_view name) noexcept;

/// The canonical text-format name of a built-in kind (inverse of
/// parse_semiring_kind); throws for Custom.
[[nodiscard]] std::string semiring_kind_name(SemiringKind kind);

/// A runtime-dispatched semiring attribute domain over double values.
///
/// The five Table I domains are value types constructed from a
/// SemiringKind; bespoke metrics are built with Semiring::custom(). The
/// custom hooks live behind a single shared_ptr, so copying a Semiring -
/// built-in or custom - never copies std::function state; built-in copies
/// are a kind tag, a name, two doubles and a null pointer.
///
/// Semiring is the public façade and the Custom fallback; the analysis
/// hot loops run on the static policy structs of domains.hpp, selected by
/// dispatch_domains().
class Semiring {
 public:
  /// The user hooks of a Custom domain (immutable once built; shared by
  /// all copies of the Semiring).
  struct CustomOps {
    std::function<double(double, double)> combine;
    std::function<bool(double, double)> prefer;
  };
  /// Constructs one of the built-in Table I domains.
  explicit Semiring(SemiringKind kind);

  /// Shorthand factories for the Table I rows.
  static Semiring min_cost() { return Semiring(SemiringKind::MinCost); }
  static Semiring min_time_seq() { return Semiring(SemiringKind::MinTimeSeq); }
  static Semiring min_time_par() { return Semiring(SemiringKind::MinTimePar); }
  static Semiring min_skill() { return Semiring(SemiringKind::MinSkill); }
  static Semiring probability() { return Semiring(SemiringKind::Probability); }

  /// Builds a custom domain. \p combine must be commutative, associative,
  /// monotone w.r.t. \p prefer, with unit \p one; \p zero must be maximal
  /// and \p one minimal w.r.t. \p prefer. check_axioms() can probe this.
  /// The hooks are shared (not copied) by all copies of the Semiring, so
  /// they must be stateless or thread-safe: analyze_batch() may invoke
  /// them concurrently from several worker threads.
  static Semiring custom(std::string name, double one, double zero,
                         std::function<double(double, double)> combine,
                         std::function<bool(double, double)> prefer);

  [[nodiscard]] SemiringKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// 1_tensor: the neutral element of combine (and the best value).
  [[nodiscard]] double one() const noexcept { return one_; }

  /// 1_oplus: the absorbing/worst value ("no strategy exists").
  [[nodiscard]] double zero() const noexcept { return zero_; }

  /// x tensor y.
  [[nodiscard]] double combine(double x, double y) const;

  /// The linear order: true iff x is at least as good as y (x prefer-<= y).
  [[nodiscard]] bool prefer(double x, double y) const;

  /// True iff x is strictly better than y.
  [[nodiscard]] bool strictly_prefer(double x, double y) const {
    return prefer(x, y) && !prefer(y, x);
  }

  /// True iff x and y are equivalent under the order (equal for all
  /// built-ins).
  [[nodiscard]] bool equivalent(double x, double y) const {
    return prefer(x, y) && prefer(y, x);
  }

  /// x oplus y = min_prefer(x, y).
  [[nodiscard]] double choose(double x, double y) const {
    return prefer(x, y) ? x : y;
  }

  /// True iff \p x lies in the domain's value set V (Table I): [0, inf]
  /// for the cost/time/skill domains, [0, 1] for probability. Custom
  /// domains accept any non-NaN value (their V is not known here).
  /// Values outside V break the semiring axioms silently (e.g. negative
  /// costs destroy monotonicity), so AugmentedAdt rejects them.
  [[nodiscard]] bool contains(double x) const;

  /// Result of a randomized probe of the Definition 4 axioms; all fields
  /// true means no counterexample was found.
  struct AxiomReport {
    bool commutative = true;
    bool associative = true;
    bool monotone = true;
    bool one_is_unit = true;
    bool one_minimal = true;
    bool zero_maximal = true;
    bool order_total = true;

    [[nodiscard]] bool all_hold() const noexcept {
      return commutative && associative && monotone && one_is_unit &&
             one_minimal && zero_maximal && order_total;
    }
  };

  /// Randomized axiom probe over \p samples triples drawn from
  /// representative values of the domain (plus one() and zero()).
  [[nodiscard]] AxiomReport check_axioms(std::uint64_t seed = 1,
                                         int samples = 200) const;

 private:
  Semiring(SemiringKind kind, std::string name, double one, double zero);

  SemiringKind kind_;
  std::string name_;
  double one_;
  double zero_;
  std::shared_ptr<const CustomOps> custom_;  ///< null for built-in kinds
};

}  // namespace adtp
