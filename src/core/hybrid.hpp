/// \file hybrid.hpp
/// \brief Modular hybrid analyzer (the paper's future-work extension).
///
/// Combines the strengths of the two exact algorithms: wherever the ADT is
/// locally tree-shaped the cheap Bottom-Up combination of child fronts is
/// used (sound because each child is an independent module, so Lemma 1's
/// disjointness argument applies); wherever sharing is confined inside a
/// sub-DAG, that whole "blob" is analyzed with BDDBU and its front is
/// treated as a leaf front. On a tree this degenerates to Algorithm 1, on
/// a fully entangled DAG to Algorithm 3; in between it analyzes each shared
/// region with a *smaller* BDD than the global one.

#pragma once

#include "core/attribution.hpp"
#include "core/bdd_bu.hpp"
#include "core/pareto.hpp"

namespace adtp {

class NodeFrontMemo;
struct NodeMemoStats;

struct HybridOptions {
  /// Options forwarded to the per-blob BDDBU runs.
  BddBuOptions bdd;

  /// Optional per-node front memo (node_memo.hpp): gate and blob fronts
  /// found under their subtree content key are replayed instead of
  /// recomputed, so an edited DAG re-analyzes only the dirty spine.
  /// Replayed fronts are bit-identical to a cold run by construction
  /// (docs/CONTRACTS.md), so this knob never enters the FrontCache key.
  /// Models with Custom domains bypass it.
  NodeFrontMemo* memo = nullptr;

  /// When set (and \p memo is active), receives this run's memo
  /// hit/miss counts.
  NodeMemoStats* memo_stats = nullptr;
};

/// Diagnostics of a hybrid run.
struct HybridReport {
  Front front;
  std::size_t blob_count = 0;      ///< sub-DAGs handed to BDDBU
  std::size_t largest_blob = 0;    ///< node count of the largest such blob
  std::size_t tree_combines = 0;   ///< gates combined tree-style
  /// Front-operation counters of the whole hybrid walk: tree-style
  /// combines plus every per-blob BDDBU run's merges (the blob reports
  /// are folded in, whichever arenas the blobs used).
  CombineStats combine_stats;
  // Parallelism counters aggregated over the per-blob BDDBU runs (the
  // blobs inherit options.bdd.threads and share one scheduler; the
  // tree-style walk itself is sequential).
  unsigned bdd_threads_used = 1;       ///< max workers any blob ran with
  std::size_t bdd_max_level_width = 0; ///< widest BDD level of any blob
  TaskRunStats bdd_sched;              ///< summed blob task-DAG counters
  std::uint64_t memo_hits = 0;    ///< node fronts replayed from the memo
  std::uint64_t memo_misses = 0;  ///< node fronts computed (memo active)
};

/// Computes the Pareto front of an arbitrary ADT by modular decomposition.
[[nodiscard]] Front hybrid_front(const AugmentedAdt& aadt,
                                 const HybridOptions& options = {});

/// As hybrid_front(), with diagnostics.
[[nodiscard]] HybridReport hybrid_analyze(const AugmentedAdt& aadt,
                                          const HybridOptions& options = {});

}  // namespace adtp
