/// \file front_cache.hpp
/// \brief A bounded, thread-safe LRU cache of analysis results, keyed on
///        model content rather than object identity.
///
/// Serving workloads re-analyze the same (model, attribution) pairs over
/// and over - parameter sweeps where only one attribution varies, fleets
/// with duplicated scenarios, interactive ADTool-style editing. A
/// FrontCache memoizes the full AnalysisResult for repeated pairs; lookup
/// keys are content hashes, so two independently built but structurally
/// identical models (same gates, agents, child wiring, leaf values and
/// domains - names are deliberately ignored) share an entry.
///
/// The key has three 64-bit components, compared exactly (a hash collision
/// on all three simultaneously is the only way to get a wrong hit; with
/// FNV-1a over 192 bits that is negligible, and the cache is advisory -
/// callers who cannot tolerate it leave the cache off):
///  - structure: the ADT's shape (gate types, agents, child lists, root),
///  - attribution: both domain kinds plus the dense per-leaf values,
///  - options: every AnalysisOptions field that can change the result or
///    whether a guard fires (algorithm choice, BDD order, all limits).
///    Deadline/cancel/arena pointers are excluded: they never change a
///    *completed* result. A hit may therefore be served where a fresh run
///    would have timed out - a strict improvement, not an inconsistency.
///
/// Custom semirings are uncacheable (their hooks are opaque function
/// objects that cannot be content-hashed); cacheable() reports this and
/// analyze_batch() silently bypasses the cache for such models. Only
/// successful results are cached - failures are cheap to rediscover and
/// often depend on guards.
///
/// Two concurrency rules keep multi-worker serving sane:
///  - insert() is first-writer-wins: a second insert under a live key
///    refreshes recency but keeps the first value (results are
///    deterministic functions of the key, so the values are identical
///    and replacement would only churn shared_ptrs). The bool return
///    tells layered caches (the persistent store) whether the entry is
///    new - only fresh entries are worth persisting.
///  - lookup_or_reserve()/publish()/abandon() single-flight misses: of N
///    workers missing the same key at once, exactly one computes; the
///    rest block and then count as hits (stats record them under
///    \c coalesced, and every logical query counts exactly one of
///    {hit, miss} - waiters' provisional misses are uncounted when their
///    wait resolves).
///
/// lookup() and insert() are virtual so a persistence layer can slot
/// underneath (store/persistent_cache.hpp) with the single-flight
/// machinery inherited unchanged.
///
/// The in-process cache does not persist across processes; layer a
/// store::PersistentFrontCache on top for that.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/analyzer.hpp"

namespace adtp {

/// Content-derived cache key; see file comment for what each hash covers.
struct FrontCacheKey {
  std::uint64_t structure = 0;
  std::uint64_t attribution = 0;
  std::uint64_t options = 0;

  bool operator==(const FrontCacheKey&) const = default;
};

/// True iff results for \p aadt can be cached (no Custom domain).
[[nodiscard]] bool cacheable(const AugmentedAdt& aadt);

/// Builds the cache key for an analysis of \p aadt under \p options.
/// Precondition: cacheable(aadt); throws Error otherwise.
[[nodiscard]] FrontCacheKey front_cache_key(const AugmentedAdt& aadt,
                                            const AnalysisOptions& options);

/// Bounded LRU cache of AnalysisResults. All methods are thread-safe (one
/// mutex; the critical sections copy a Front at worst, never analyze).
class FrontCache {
 public:
  /// \p capacity is the maximum number of entries; 0 disables the cache
  /// (every lookup misses, inserts are dropped).
  explicit FrontCache(std::size_t capacity = 256);
  virtual ~FrontCache();

  FrontCache(const FrontCache&) = delete;
  FrontCache& operator=(const FrontCache&) = delete;

  /// Returns the cached result and refreshes its recency, or nullopt.
  [[nodiscard]] virtual std::optional<AnalysisResult> lookup(
      const FrontCacheKey& key);

  /// Inserts \p result under \p key, evicting the least recently used
  /// entry when over capacity. First writer wins: when the key is
  /// already live the call only refreshes recency and returns false;
  /// true means the entry is new.
  virtual bool insert(const FrontCacheKey& key, const AnalysisResult& result);

  /// The outcome of lookup_or_reserve().
  struct FlightLookup {
    /// Set on a hit (immediate or after waiting out another worker's
    /// computation of the same key).
    std::optional<AnalysisResult> result;
    /// True: the key is reserved for this caller, who MUST eventually
    /// call publish() or abandon() for it (or every later worker on the
    /// key blocks forever).
    bool must_compute = false;
  };

  /// Single-flight lookup: a hit returns it; the first worker to miss a
  /// key gets must_compute; further workers missing the same key block
  /// until the computer publishes (then take the hit) or abandons (then
  /// one of them becomes the computer). Exactly one of {hit, miss} is
  /// counted per call, however long the wait.
  [[nodiscard]] FlightLookup lookup_or_reserve(const FrontCacheKey& key);

  /// Completes a reservation with its computed result; wakes waiters.
  void publish(const FrontCacheKey& key, const AnalysisResult& result);

  /// Releases a reservation without a result (the computation failed);
  /// wakes waiters so another worker can take over.
  void abandon(const FrontCacheKey& key);

  /// Cumulative counters since construction or the last clear().
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    /// insert() calls that found the key live and kept the first value.
    std::uint64_t duplicate_inserts = 0;
    /// Hits (included in \c hits) that were resolved by waiting out
    /// another worker's in-flight computation of the same key.
    std::uint64_t coalesced = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;  ///< current size

    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Drops every entry and resets the counters.
  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const FrontCacheKey& k) const noexcept;
  };
  /// Results are held behind shared_ptr so the mutex only ever guards
  /// pointer and list-node operations; the deep Front copy handed to the
  /// caller happens outside the lock (workers on the warm path would
  /// otherwise serialize on multi-thousand-point copies).
  using Entry =
      std::pair<FrontCacheKey, std::shared_ptr<const AnalysisResult>>;

  /// Subtracts \p n provisional misses (recorded by a waiter's repeated
  /// failed lookups) and, when \p coalesced, books the surviving hit as
  /// resolved-by-waiting.
  void settle_flight_stats(std::uint64_t n, bool coalesced);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< most recent first
  std::unordered_map<FrontCacheKey, std::list<Entry>::iterator, KeyHash> map_;
  Stats stats_;

  /// Single-flight state. Lock order: flight_mutex_ before mutex_ (the
  /// flight methods call the virtual lookup/insert while holding
  /// flight_mutex_); nothing ever takes them the other way around.
  std::mutex flight_mutex_;
  std::condition_variable flight_cv_;
  std::unordered_set<FrontCacheKey, KeyHash> in_flight_;
};

}  // namespace adtp
