/// \file front_cache.hpp
/// \brief A bounded, thread-safe LRU cache of analysis results, keyed on
///        model content rather than object identity.
///
/// Serving workloads re-analyze the same (model, attribution) pairs over
/// and over - parameter sweeps where only one attribution varies, fleets
/// with duplicated scenarios, interactive ADTool-style editing. A
/// FrontCache memoizes the full AnalysisResult for repeated pairs; lookup
/// keys are content hashes, so two independently built but structurally
/// identical models (same gates, agents, child wiring, leaf values and
/// domains - names are deliberately ignored) share an entry.
///
/// The key has three 64-bit components, compared exactly (a hash collision
/// on all three simultaneously is the only way to get a wrong hit; with
/// FNV-1a over 192 bits that is negligible, and the cache is advisory -
/// callers who cannot tolerate it leave the cache off):
///  - structure: the ADT's shape (gate types, agents, child lists, root),
///  - attribution: both domain kinds plus the dense per-leaf values,
///  - options: every AnalysisOptions field that can change the result or
///    whether a guard fires (algorithm choice, BDD order, all limits).
///    Deadline/cancel/arena pointers are excluded: they never change a
///    *completed* result. A hit may therefore be served where a fresh run
///    would have timed out - a strict improvement, not an inconsistency.
///
/// Custom semirings are uncacheable (their hooks are opaque function
/// objects that cannot be content-hashed); cacheable() reports this and
/// analyze_batch() silently bypasses the cache for such models. Only
/// successful results are cached - failures are cheap to rediscover and
/// often depend on guards.
///
/// The cache does not persist across processes; see ROADMAP.

#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/analyzer.hpp"

namespace adtp {

/// Content-derived cache key; see file comment for what each hash covers.
struct FrontCacheKey {
  std::uint64_t structure = 0;
  std::uint64_t attribution = 0;
  std::uint64_t options = 0;

  bool operator==(const FrontCacheKey&) const = default;
};

/// True iff results for \p aadt can be cached (no Custom domain).
[[nodiscard]] bool cacheable(const AugmentedAdt& aadt);

/// Builds the cache key for an analysis of \p aadt under \p options.
/// Precondition: cacheable(aadt); throws Error otherwise.
[[nodiscard]] FrontCacheKey front_cache_key(const AugmentedAdt& aadt,
                                            const AnalysisOptions& options);

/// Bounded LRU cache of AnalysisResults. All methods are thread-safe (one
/// mutex; the critical sections copy a Front at worst, never analyze).
class FrontCache {
 public:
  /// \p capacity is the maximum number of entries; 0 disables the cache
  /// (every lookup misses, inserts are dropped).
  explicit FrontCache(std::size_t capacity = 256);

  /// Returns the cached result and refreshes its recency, or nullopt.
  [[nodiscard]] std::optional<AnalysisResult> lookup(const FrontCacheKey& key);

  /// Inserts (or refreshes) \p result under \p key, evicting the least
  /// recently used entry when over capacity.
  void insert(const FrontCacheKey& key, const AnalysisResult& result);

  /// Cumulative counters since construction or the last clear().
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;  ///< current size

    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Drops every entry and resets the counters.
  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const FrontCacheKey& k) const noexcept;
  };
  /// Results are held behind shared_ptr so the mutex only ever guards
  /// pointer and list-node operations; the deep Front copy handed to the
  /// caller happens outside the lock (workers on the warm path would
  /// otherwise serialize on multi-thousand-point copies).
  using Entry =
      std::pair<FrontCacheKey, std::shared_ptr<const AnalysisResult>>;

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< most recent first
  std::unordered_map<FrontCacheKey, std::list<Entry>::iterator, KeyHash> map_;
  Stats stats_;
};

}  // namespace adtp
