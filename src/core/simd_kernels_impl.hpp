/// \file simd_kernels_impl.hpp
/// \brief Width-generic bodies of the SoA Pareto kernels.
///
/// Included ONLY by the per-ISA translation units (simd_sse2.cpp,
/// simd_avx2.cpp), each of which supplies a Pack type wrapping its
/// intrinsics and instantiates make_kernel_table<Pack>(). Keeping the
/// logic here means both ISAs share one audited implementation of the
/// scalar-exact semantics; the Pack layer is a thin register veneer.
///
/// Every kernel mirrors a specific scalar loop in core/pareto.hpp:
///  - push_select        <-> detail::staircase_push driven in a loop
///                           (detail::staircase_sweep_in_place, and the
///                           combine_kway single-row endgame)
///  - merge_select       <-> detail::pareto_merge_staircases
///  - any_dominates      <-> a linear dominates() scan
///  - combine_* / choose <-> product_values' per-coordinate ops
///
/// The vector fast paths only ever *batch* decisions whose outcome is
/// provably identical to running the scalar loop element by element
/// (see the inline notes); any block where that cannot be established
/// from the masks falls back to the scalar step for those lanes.

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "core/simd.hpp"

namespace adtp {
namespace simd {
namespace detail {

template <typename PK>
struct Kern {
  using V = typename PK::V;
  static constexpr int W = PK::kWidth;
  static constexpr int kFull = (1 << W) - 1;

  // Strict preference on raw doubles, by direction index (0 = lower is
  // better, 1 = higher is better). These are exactly the comparisons the
  // domain policies in core/domains.hpp perform.
  template <int DIR>
  static bool sp(double x, double y) {
    return DIR == 0 ? x < y : x > y;
  }
  template <int DIR>
  static bool pf(double x, double y) {
    return DIR == 0 ? x <= y : x >= y;
  }
  template <int DIR>
  static int sp_mask(V x, V y) {
    return DIR == 0 ? PK::lt_mask(x, y) : PK::gt_mask(x, y);
  }
  template <int DIR>
  static int pf_mask(V x, V y) {
    return DIR == 0 ? PK::le_mask(x, y) : PK::ge_mask(x, y);
  }
  template <int DIR>
  static V sp_vec(V x, V y) {
    return DIR == 0 ? PK::lt_vec(x, y) : PK::gt_vec(x, y);
  }
  template <int DIR>
  static V pf_vec(V x, V y) {
    return DIR == 0 ? PK::le_vec(x, y) : PK::ge_vec(x, y);
  }

  static std::size_t first_set(int mask) {
    return static_cast<std::size_t>(
        std::countr_zero(static_cast<unsigned>(mask)));
  }
  static std::size_t first_clear(int mask) {
    return first_set(~mask & kFull);
  }

  /// staircase_push over a batch. The scalar_step lambda is a verbatim
  /// transcription of detail::staircase_push resolving against the
  /// running tail; the vector path batches two provably-equivalent
  /// cases: "whole block skipped" (no lane strictly worsens the tail's
  /// attacker value, and since nothing is pushed the tail - and thus
  /// every lane's decision - is final) and "whole block appended" (each
  /// lane strictly worsens its predecessor's attacker value with a
  /// distinct defender value, which chains the per-lane tails exactly).
  template <int DA>
  static SelectResult push_select(const double* def, const double* att,
                                  std::size_t n, std::uint32_t* sel,
                                  PushTail* tail) {
    SelectResult res;
    std::size_t m = 0;
    bool has = tail->has;
    double tdef = tail->def;
    double tatt = tail->att;
    bool replaced_first = false;
    const auto scalar_step = [&](std::size_t p) {
      const double d = def[p];
      const double a = att[p];
      if (has) {
        if (!sp<DA>(tatt, a)) return;  // not strictly more adverse: skip
        if (d == tdef) {               // equivalent defender value: replace
          if (m == 0) {
            replaced_first = true;
            sel[m++] = static_cast<std::uint32_t>(p);
          } else {
            sel[m - 1] = static_cast<std::uint32_t>(p);
          }
          tatt = a;
          return;
        }
      }
      sel[m++] = static_cast<std::uint32_t>(p);
      tdef = d;
      tatt = a;
      has = true;
    };

    std::size_t i = 0;
    // The chain trick below shifts the tail into lane 0, so it needs an
    // established tail; seed one scalar step when starting empty.
    if (!has && n > 0) {
      scalar_step(0);
      i = 1;
    }
    while (i + static_cast<std::size_t>(W) <= n) {
      const V va = PK::loadu(att + i);
      res.lanes += W;
      const int keep = sp_mask<DA>(PK::set1(tatt), va);
      if (keep == 0) {  // block skipped; tail unchanged so this is exact
        i += W;
        continue;
      }
      if (keep == kFull) {
        const V vd = PK::loadu(def + i);
        const V pa = PK::shift_in(va, tatt);  // lane l's predecessor att
        const V pd = PK::shift_in(vd, tdef);
        const int chain = sp_mask<DA>(pa, va);
        const int distinct = PK::neq_mask(pd, vd);
        res.lanes += 2 * W;
        if ((chain & distinct) == kFull) {  // block appended wholesale
          for (int l = 0; l < W; ++l) {
            sel[m + static_cast<std::size_t>(l)] =
                static_cast<std::uint32_t>(i + static_cast<std::size_t>(l));
          }
          m += W;
          tdef = def[i + W - 1];
          tatt = att[i + W - 1];
          has = true;
          i += W;
          continue;
        }
      }
      for (int l = 0; l < W; ++l) scalar_step(i + static_cast<std::size_t>(l));
      i += W;
    }
    for (; i < n; ++i) scalar_step(i);

    tail->has = has;
    tail->def = tdef;
    tail->att = tatt;
    res.kept = m;
    res.replaced_first = replaced_first;
    return res;
  }

  /// push_select over interleaved (def, att) pairs - ValuePoint's exact
  /// memory layout - so payload-free sweeps skip the transpose pass. The
  /// decision logic is a lockstep copy of push_select above (any change
  /// must touch both); only the loads differ.
  template <int DA>
  static SelectResult push_select_pairs(const double* pts, std::size_t n,
                                        std::uint32_t* sel, PushTail* tail) {
    SelectResult res;
    std::size_t m = 0;
    bool has = tail->has;
    double tdef = tail->def;
    double tatt = tail->att;
    bool replaced_first = false;
    const auto scalar_step = [&](std::size_t p) {
      const double d = pts[2 * p];
      const double a = pts[2 * p + 1];
      if (has) {
        if (!sp<DA>(tatt, a)) return;  // not strictly more adverse: skip
        if (d == tdef) {               // equivalent defender value: replace
          if (m == 0) {
            replaced_first = true;
            sel[m++] = static_cast<std::uint32_t>(p);
          } else {
            sel[m - 1] = static_cast<std::uint32_t>(p);
          }
          tatt = a;
          return;
        }
      }
      sel[m++] = static_cast<std::uint32_t>(p);
      tdef = d;
      tatt = a;
      has = true;
    };

    std::size_t i = 0;
    if (!has && n > 0) {
      scalar_step(0);
      i = 1;
    }
    while (i + static_cast<std::size_t>(W) <= n) {
      V vd, va;
      PK::load_pairs(pts + 2 * i, &vd, &va);
      res.lanes += W;
      const int keep = sp_mask<DA>(PK::set1(tatt), va);
      if (keep == 0) {  // block skipped; tail unchanged so this is exact
        i += W;
        continue;
      }
      if (keep == kFull) {
        const V pa = PK::shift_in(va, tatt);  // lane l's predecessor att
        const V pd = PK::shift_in(vd, tdef);
        const int chain = sp_mask<DA>(pa, va);
        const int distinct = PK::neq_mask(pd, vd);
        res.lanes += 2 * W;
        if ((chain & distinct) == kFull) {  // block appended wholesale
          for (int l = 0; l < W; ++l) {
            sel[m + static_cast<std::size_t>(l)] =
                static_cast<std::uint32_t>(i + static_cast<std::size_t>(l));
          }
          m += W;
          tdef = pts[2 * (i + W - 1)];
          tatt = pts[2 * (i + W - 1) + 1];
          has = true;
          i += W;
          continue;
        }
      }
      for (int l = 0; l < W; ++l) scalar_step(i + static_cast<std::size_t>(l));
      i += W;
    }
    for (; i < n; ++i) scalar_step(i);

    tail->has = has;
    tail->def = tdef;
    tail->att = tatt;
    res.kept = m;
    res.replaced_first = replaced_first;
    return res;
  }

  /// Column accessors letting one merge implementation read either SoA
  /// columns or interleaved (def, att) pairs; the pairs form uses the
  /// ordered deinterleave because galloping consumes points in order.
  struct SoaCols {
    const double* def;
    const double* att;
    double d(std::size_t i) const { return def[i]; }
    double a(std::size_t i) const { return att[i]; }
    void load(std::size_t i, V* vd, V* va) const {
      *vd = PK::loadu(def + i);
      *va = PK::loadu(att + i);
    }
    V load_att(std::size_t i) const { return PK::loadu(att + i); }
  };
  struct PairsCols {
    const double* pts;
    double d(std::size_t i) const { return pts[2 * i]; }
    double a(std::size_t i) const { return pts[2 * i + 1]; }
    void load(std::size_t i, V* vd, V* va) const {
      PK::load_pairs(pts + 2 * i, vd, va);
    }
    V load_att(std::size_t i) const {
      V vd, va;
      PK::load_pairs(pts + 2 * i, &vd, &va);
      return va;
    }
  };

  /// pareto_merge_staircases as run-at-a-time galloping. The scalar loop
  /// repeatedly takes from `a` while !FrontLess(b[j], a[i]) (b[j] fixed),
  /// else from `b` while FrontLess(b[j], a[i]) (a[i] fixed); vector
  /// compares find each run length in W-sized bites. Within a run the
  /// inputs are consecutive points of one staircase (strictly worsening
  /// defender, strictly more adverse attacker), so staircase_push keeps
  /// a suffix of it: scan for the first survivor, resolve its
  /// replace/append against the tail, then append the rest wholesale.
  template <int DD, int DA, typename CA, typename CB>
  static MergeResult merge_core(CA ca, std::size_t na, CB cb, std::size_t nb,
                                std::uint32_t* sel) {
    MergeResult res;
    std::size_t m = 0;
    bool has = false;
    double tdef = 0.0;
    double tatt = 0.0;

    const auto push_run = [&](const auto& rc, std::size_t start,
                              std::size_t len, std::uint32_t src) {
      std::size_t s = 0;
      if (has) {
        const V vt = PK::set1(tatt);
        for (;;) {
          if (len - s >= static_cast<std::size_t>(W)) {
            const int alive = sp_mask<DA>(vt, rc.load_att(start + s));
            res.lanes += W;
            if (alive == 0) {
              s += W;
              continue;
            }
            s += first_set(alive);
            break;
          }
          while (s < len && !sp<DA>(tatt, rc.a(start + s))) ++s;
          break;
        }
        if (s == len) return;  // whole run dominated by the tail
        if (rc.d(start + s) == tdef) {  // first survivor replaces the tail
          sel[m - 1] = src | static_cast<std::uint32_t>(start + s);
        } else {
          sel[m++] = src | static_cast<std::uint32_t>(start + s);
        }
        ++s;
      } else {
        sel[m++] = src | static_cast<std::uint32_t>(start);
        s = 1;
      }
      for (std::size_t l = s; l < len; ++l) {
        sel[m++] = src | static_cast<std::uint32_t>(start + l);
      }
      tdef = rc.d(start + len - 1);
      tatt = rc.a(start + len - 1);
      has = true;
    };

    // Per-point staircase_push against the running tail, for interleaved
    // bursts where run-at-a-time galloping degenerates (see below).
    // has implies m >= 1 here: push_run never sets `has` without having
    // written at least one selection entry.
    const auto scalar_push = [&](double d, double a, std::uint32_t tagged) {
      if (has) {
        if (!sp<DA>(tatt, a)) return;
        if (d == tdef) {
          sel[m - 1] = tagged;
          tatt = a;
          return;
        }
      }
      sel[m++] = tagged;
      tdef = d;
      tatt = a;
      has = true;
    };

    std::size_t i = 0;
    std::size_t j = 0;
    int short_rounds = 0;
    while (i < na && j < nb) {
      // On finely interleaved staircases every run is a point or two, and
      // galloping pays a broadcast + W-wide compare per point where the
      // scalar merge pays two compares. After a few consecutive all-short
      // rounds, burst through scalar merge steps. Leaving short_rounds at
      // 2 makes the next iteration gallop exactly once as a probe: still
      // short puts it straight back in a burst (one probe round per 256
      // points), while recovered run structure resets to full galloping.
      if (short_rounds >= 3) {
        for (int s = 0; s < 256 && i < na && j < nb; ++s) {
          if (sp<DD>(ca.d(i), cb.d(j)) ||
              (ca.d(i) == cb.d(j) && !sp<DA>(ca.a(i), cb.a(j)))) {
            scalar_push(ca.d(i), ca.a(i), static_cast<std::uint32_t>(i));
            ++i;
          } else {
            scalar_push(cb.d(j), cb.a(j),
                        kMergeSrcB | static_cast<std::uint32_t>(j));
            ++j;
          }
        }
        short_rounds = 2;
        continue;
      }
      // take_a(l) == !FrontLess(b[j], a[l]):
      //   defender values differ -> strictly_prefer(a.def, b.def)
      //   defender values equal  -> !strictly_prefer(a.att, b.att)
      std::size_t r = 0;
      {
        const V vbd = PK::set1(cb.d(j));
        const V vba = PK::set1(cb.a(j));
        for (;;) {
          if (na - i - r >= static_cast<std::size_t>(W)) {
            V vad, vaa;
            ca.load(i + r, &vad, &vaa);
            const int take = (sp_mask<DD>(vad, vbd) |
                              (PK::eq_mask(vad, vbd) &
                               ~sp_mask<DA>(vaa, vba))) &
                             kFull;
            res.lanes += 2 * W;
            if (take == kFull) {
              r += W;
              continue;
            }
            r += first_clear(take);
            break;
          }
          while (i + r < na &&
                 (sp<DD>(ca.d(i + r), cb.d(j)) ||
                  (ca.d(i + r) == cb.d(j) &&
                   !sp<DA>(ca.a(i + r), cb.a(j))))) {
            ++r;
          }
          break;
        }
      }
      if (r > 0) {
        push_run(ca, i, r, 0);
        i += r;
        if (i >= na) break;
      }
      // take_b(l) == FrontLess(b[l], a[i]); guaranteed for l == j after a
      // maximal a-run, hence the max with 1.
      std::size_t rb = 0;
      {
        const V vad = PK::set1(ca.d(i));
        const V vaa = PK::set1(ca.a(i));
        for (;;) {
          if (nb - j - rb >= static_cast<std::size_t>(W)) {
            V vbd, vba;
            cb.load(j + rb, &vbd, &vba);
            const int take = (sp_mask<DD>(vbd, vad) |
                              (PK::eq_mask(vbd, vad) &
                               sp_mask<DA>(vaa, vba))) &
                             kFull;
            res.lanes += 2 * W;
            if (take == kFull) {
              rb += W;
              continue;
            }
            rb += first_clear(take);
            break;
          }
          while (j + rb < nb &&
                 (sp<DD>(cb.d(j + rb), ca.d(i)) ||
                  (cb.d(j + rb) == ca.d(i) &&
                   sp<DA>(ca.a(i), cb.a(j + rb))))) {
            ++rb;
          }
          break;
        }
      }
      if (rb == 0) rb = 1;
      push_run(cb, j, rb, kMergeSrcB);
      j += rb;
      short_rounds = (r < static_cast<std::size_t>(W) &&
                      rb < static_cast<std::size_t>(W))
                         ? short_rounds + 1
                         : 0;
    }
    if (i < na) push_run(ca, i, na - i, 0);
    if (j < nb) push_run(cb, j, nb - j, kMergeSrcB);

    res.kept = m;
    return res;
  }

  template <int DD, int DA>
  static MergeResult merge_select(const double* adef, const double* aatt,
                                  std::size_t na, const double* bdef,
                                  const double* batt, std::size_t nb,
                                  std::uint32_t* sel) {
    return merge_core<DD, DA>(SoaCols{adef, aatt}, na, SoaCols{bdef, batt},
                              nb, sel);
  }

  template <int DD, int DA>
  static MergeResult merge_select_pairs(const double* apts, std::size_t na,
                                        const double* bpts, std::size_t nb,
                                        std::uint32_t* sel) {
    return merge_core<DD, DA>(PairsCols{apts}, na, PairsCols{bpts}, nb, sel);
  }

  /// Linear dominance scan: any point with defender value no worse than
  /// the query's AND attacker value no less adverse.
  template <int DD, int DA>
  static bool any_dominates(const double* def, const double* att,
                            std::size_t n, double qdef, double qatt,
                            std::uint64_t* lanes) {
    const V vqd = PK::set1(qdef);
    const V vqa = PK::set1(qatt);
    std::size_t i = 0;
    for (; i + static_cast<std::size_t>(W) <= n; i += W) {
      const int ok = pf_mask<DD>(PK::loadu(def + i), vqd) &
                     pf_mask<DA>(vqa, PK::loadu(att + i));
      if (lanes != nullptr) *lanes += W;
      if (ok != 0) return true;
    }
    for (; i < n; ++i) {
      if (pf<DD>(def[i], qdef) && pf<DA>(qatt, att[i])) return true;
    }
    return false;
  }

  /// Dominance scan over interleaved (def, att) pairs. The reduction is
  /// order-insensitive, so the cheaper unordered deinterleave suffices.
  /// The main loop combines four blocks entirely in the vector domain
  /// (AND per block, OR across blocks) and extracts ONE mask per 4 * W
  /// points: movemask-per-block makes this loop uop-bound rather than
  /// load-bound, and the coarser early-exit granularity cannot change
  /// the boolean outcome.
  template <int DD, int DA>
  static bool any_dominates_pairs(const double* pts, std::size_t n,
                                  double qdef, double qatt,
                                  std::uint64_t* lanes) {
    const V vqd = PK::set1(qdef);
    const V vqa = PK::set1(qatt);
    const auto hit_vec = [&](std::size_t p) {
      V d, a;
      PK::load_pairs_unordered(pts + 2 * p, &d, &a);
      return PK::and_vec(pf_vec<DD>(d, vqd), pf_vec<DA>(vqa, a));
    };
    const std::size_t w = static_cast<std::size_t>(W);
    std::size_t i = 0;
    for (; i + 4 * w <= n; i += 4 * w) {
      const V ok = PK::or_vec(PK::or_vec(hit_vec(i), hit_vec(i + w)),
                              PK::or_vec(hit_vec(i + 2 * w),
                                         hit_vec(i + 3 * w)));
      if (lanes != nullptr) *lanes += 4 * w;
      if (PK::mask_of(ok) != 0) return true;
    }
    for (; i + w <= n; i += w) {
      if (lanes != nullptr) *lanes += w;
      if (PK::mask_of(hit_vec(i)) != 0) return true;
    }
    for (; i < n; ++i) {
      if (pf<DD>(pts[2 * i], qdef) && pf<DA>(qatt, pts[2 * i + 1])) {
        return true;
      }
    }
    return false;
  }

  static void combine_add(const double* src, std::size_t n, double c,
                          double* dst) {
    const V vc = PK::set1(c);
    std::size_t i = 0;
    for (; i + static_cast<std::size_t>(W) <= n; i += W) {
      PK::storeu(dst + i, PK::add(PK::loadu(src + i), vc));
    }
    for (; i < n; ++i) dst[i] = src[i] + c;
  }

  static void combine_mul(const double* src, std::size_t n, double c,
                          double* dst) {
    const V vc = PK::set1(c);
    std::size_t i = 0;
    for (; i + static_cast<std::size_t>(W) <= n; i += W) {
      PK::storeu(dst + i, PK::mul(PK::loadu(src + i), vc));
    }
    for (; i < n; ++i) dst[i] = src[i] * c;
  }

  /// MinSkill's combine `x < y ? y : x`, NOT hardware max: the two
  /// differ on signed-zero ties (and operand roles pick the surviving
  /// representation), so blend on an explicit compare instead.
  template <bool SW>
  static void combine_max(const double* src, std::size_t n, double c,
                          double* dst) {
    const V vc = PK::set1(c);
    std::size_t i = 0;
    for (; i + static_cast<std::size_t>(W) <= n; i += W) {
      const V vs = PK::loadu(src + i);
      const V x = SW ? vc : vs;
      const V y = SW ? vs : vc;
      PK::storeu(dst + i, PK::select(PK::lt_vec(x, y), y, x));
    }
    for (; i < n; ++i) {
      const double x = SW ? c : src[i];
      const double y = SW ? src[i] : c;
      dst[i] = x < y ? y : x;
    }
  }

  /// product_values' AttackOp::Choose on the attacker coordinate:
  /// strictly_prefer(q.att, p.att) ? q.att : p.att, operand roles exact.
  template <int DA, bool SW>
  static void choose_att(const double* src, std::size_t n, double c,
                         double* dst) {
    const V vc = PK::set1(c);
    std::size_t i = 0;
    for (; i + static_cast<std::size_t>(W) <= n; i += W) {
      const V vs = PK::loadu(src + i);
      const V p = SW ? vc : vs;
      const V q = SW ? vs : vc;
      PK::storeu(dst + i, PK::select(sp_vec<DA>(q, p), q, p));
    }
    for (; i < n; ++i) {
      const double p = SW ? c : src[i];
      const double q = SW ? src[i] : c;
      dst[i] = sp<DA>(q, p) ? q : p;
    }
  }
};

template <typename PK>
KernelTable make_kernel_table() {
  using K = Kern<PK>;
  KernelTable t;
  t.width = PK::kWidth;
  t.push_select[0] = &K::template push_select<0>;
  t.push_select[1] = &K::template push_select<1>;
  t.push_select_pairs[0] = &K::template push_select_pairs<0>;
  t.push_select_pairs[1] = &K::template push_select_pairs<1>;
  t.merge_select[0][0] = &K::template merge_select<0, 0>;
  t.merge_select[0][1] = &K::template merge_select<0, 1>;
  t.merge_select[1][0] = &K::template merge_select<1, 0>;
  t.merge_select[1][1] = &K::template merge_select<1, 1>;
  t.merge_select_pairs[0][0] = &K::template merge_select_pairs<0, 0>;
  t.merge_select_pairs[0][1] = &K::template merge_select_pairs<0, 1>;
  t.merge_select_pairs[1][0] = &K::template merge_select_pairs<1, 0>;
  t.merge_select_pairs[1][1] = &K::template merge_select_pairs<1, 1>;
  t.any_dominates[0][0] = &K::template any_dominates<0, 0>;
  t.any_dominates[0][1] = &K::template any_dominates<0, 1>;
  t.any_dominates[1][0] = &K::template any_dominates<1, 0>;
  t.any_dominates[1][1] = &K::template any_dominates<1, 1>;
  t.any_dominates_pairs[0][0] = &K::template any_dominates_pairs<0, 0>;
  t.any_dominates_pairs[0][1] = &K::template any_dominates_pairs<0, 1>;
  t.any_dominates_pairs[1][0] = &K::template any_dominates_pairs<1, 0>;
  t.any_dominates_pairs[1][1] = &K::template any_dominates_pairs<1, 1>;
  t.combine_add = &K::combine_add;
  t.combine_mul = &K::combine_mul;
  t.combine_max[0] = &K::template combine_max<false>;
  t.combine_max[1] = &K::template combine_max<true>;
  t.choose_att[0][0] = &K::template choose_att<0, false>;
  t.choose_att[0][1] = &K::template choose_att<0, true>;
  t.choose_att[1][0] = &K::template choose_att<1, false>;
  t.choose_att[1][1] = &K::template choose_att<1, true>;
  return t;
}

}  // namespace detail
}  // namespace simd
}  // namespace adtp
