#include "core/bottom_up.hpp"

#include <type_traits>

#include "core/domains.hpp"
#include "util/error.hpp"

namespace adtp {

AttackOp attack_op(GateType gate, Agent agent) {
  switch (gate) {
    case GateType::And:
      return agent == Agent::Attacker ? AttackOp::Combine : AttackOp::Choose;
    case GateType::Or:
      return agent == Agent::Attacker ? AttackOp::Choose : AttackOp::Combine;
    case GateType::Inhibit:
      return agent == Agent::Attacker ? AttackOp::Combine : AttackOp::Choose;
    case GateType::BasicStep:
      break;
  }
  throw ModelError("attack_op: basic steps have no combination operator");
}

namespace {

template <typename P, typename Dd, typename Da>
P attack_leaf_point(const AugmentedAdt& aadt, NodeId id, const Dd& dd,
                    const Da&) {
  const std::size_t index = aadt.adt().attack_index(id);
  P p;
  p.def = dd.one();
  p.att = aadt.attack_value(index);
  if constexpr (std::is_same_v<P, WitnessPoint>) {
    p.defense = BitVec(aadt.adt().num_defenses());
    p.attack = BitVec(aadt.adt().num_attacks());
    p.attack.set(index);
  }
  return p;
}

template <typename P, typename Dd, typename Da>
std::vector<P> defense_leaf_points(const AugmentedAdt& aadt, NodeId id,
                                   const Dd& dd, const Da& da) {
  const std::size_t index = aadt.adt().defense_index(id);
  // Inactive: costs nothing, and "defeating" it is free for the attacker.
  P off;
  off.def = dd.one();
  off.att = da.one();
  // Active: costs beta_D, and a bare BDS cannot be defeated.
  P on;
  on.def = aadt.defense_value(index);
  on.att = da.zero();
  if constexpr (std::is_same_v<P, WitnessPoint>) {
    off.defense = BitVec(aadt.adt().num_defenses());
    off.attack = BitVec(aadt.adt().num_attacks());
    on.defense = off.defense;
    on.attack = off.attack;
    on.defense.set(index);
  }
  return {std::move(off), std::move(on)};
}

/// The per-domain-pair kernel of Algorithm 1; instantiated once per policy
/// pair by dispatch_domains(), so combine/prefer inline with no dispatch
/// in the merge loops. The FrontArena recycles buffers across all merges.
template <typename P, typename Dd, typename Da>
std::vector<BasicFront<P>> bottom_up_kernel(const AugmentedAdt& aadt,
                                            const BottomUpOptions& options,
                                            std::size_t* max_front_size,
                                            const Dd& dd, const Da& da) {
  const Adt& adt = aadt.adt();
  // Value-front runs may borrow a caller-provided arena (analyze_batch
  // hands every worker thread one that persists across batch items, so
  // buffer recycling spans the batch); witness runs keep a private one.
  FrontArena<P> local_arena;
  FrontArena<P>* arena = &local_arena;
  if constexpr (std::is_same_v<P, ValuePoint>) {
    if (options.arena != nullptr) arena = options.arena;
  }
  std::size_t max_p = 0;
  std::vector<BasicFront<P>> fronts(adt.size());
  for (NodeId v : adt.topological_order()) {
    check_interrupt(options.deadline, options.cancel, "bottom_up");
    const Node& n = adt.node(v);
    if (n.type == GateType::BasicStep) {
      if (n.agent == Agent::Attacker) {
        fronts[v] =
            BasicFront<P>::singleton(attack_leaf_point<P>(aadt, v, dd, da));
      } else {
        fronts[v] = BasicFront<P>::minimized(
            defense_leaf_points<P>(aadt, v, dd, da), dd, da);
      }
      continue;
    }
    // Fold the children's fronts pairwise (Alg. 1 lines 7-9); pruning
    // after every combination is lossless by Lemma 2.
    const AttackOp op = attack_op(n.type, n.agent);
    BasicFront<P> acc = fronts[n.children[0]];
    for (std::size_t i = 1; i < n.children.size(); ++i) {
      arena->combine_into(acc, fronts[n.children[i]], op, dd, da);
      if (options.max_front_points != 0 &&
          acc.size() > options.max_front_points) {
        throw LimitError("bottom_up: intermediate front exceeds " +
                         std::to_string(options.max_front_points) +
                         " points at node '" + n.name + "'");
      }
    }
    max_p = std::max(max_p, acc.size());
    fronts[v] = std::move(acc);
  }
  if (max_front_size != nullptr) *max_front_size = max_p;
  return fronts;
}

template <typename P>
std::vector<BasicFront<P>> bottom_up_all(const AugmentedAdt& aadt,
                                         const BottomUpOptions& options,
                                         std::size_t* max_front_size = nullptr) {
  if (!aadt.adt().is_tree()) {
    throw ModelError(
        "bottom_up: the ADT is DAG-shaped (a node has multiple parents); "
        "the Bottom-Up algorithm is only sound for trees - use "
        "bdd_bu_front() or transform the model with unfold_to_tree()");
  }
  return dispatch_domains(
      aadt.defender_domain(), aadt.attacker_domain(),
      [&](const auto& dd, const auto& da) {
        return bottom_up_kernel<P>(aadt, options, max_front_size, dd, da);
      });
}

}  // namespace

Front bottom_up_front(const AugmentedAdt& aadt,
                      const BottomUpOptions& options) {
  auto fronts = bottom_up_all<ValuePoint>(aadt, options);
  return std::move(fronts[aadt.adt().root()]);
}

BottomUpReport bottom_up_analyze(const AugmentedAdt& aadt,
                                 const BottomUpOptions& options) {
  BottomUpReport report;
  // Stats live on the arena; pin one locally when the caller did not
  // provide theirs, and attribute by snapshot so a batch-shared arena
  // reports only this run's work.
  FrontArena<ValuePoint> local_arena;
  BottomUpOptions opts = options;
  if (opts.arena == nullptr) opts.arena = &local_arena;
  const CombineStats before = opts.arena->stats();
  Stopwatch watch;
  auto fronts = bottom_up_all<ValuePoint>(aadt, opts, &report.max_front_size);
  report.seconds = watch.seconds();
  report.combine_stats = opts.arena->stats().since(before);
  report.front = std::move(fronts[aadt.adt().root()]);
  return report;
}

WitnessFront bottom_up_front_witness(const AugmentedAdt& aadt,
                                     const BottomUpOptions& options) {
  auto fronts = bottom_up_all<WitnessPoint>(aadt, options);
  return std::move(fronts[aadt.adt().root()]);
}

std::vector<Front> bottom_up_all_fronts(const AugmentedAdt& aadt,
                                        const BottomUpOptions& options) {
  return bottom_up_all<ValuePoint>(aadt, options);
}

}  // namespace adtp
