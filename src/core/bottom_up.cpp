#include "core/bottom_up.hpp"

#include <algorithm>
#include <optional>
#include <type_traits>

#include "core/domains.hpp"
#include "util/error.hpp"

namespace adtp {

AttackOp attack_op(GateType gate, Agent agent) {
  switch (gate) {
    case GateType::And:
      return agent == Agent::Attacker ? AttackOp::Combine : AttackOp::Choose;
    case GateType::Or:
      return agent == Agent::Attacker ? AttackOp::Choose : AttackOp::Combine;
    case GateType::Inhibit:
      return agent == Agent::Attacker ? AttackOp::Combine : AttackOp::Choose;
    case GateType::BasicStep:
      break;
  }
  throw ModelError("attack_op: basic steps have no combination operator");
}

namespace {

template <typename P, typename Dd, typename Da>
P attack_leaf_point(const AugmentedAdt& aadt, NodeId id, const Dd& dd,
                    const Da&) {
  const std::size_t index = aadt.adt().attack_index(id);
  P p;
  p.def = dd.one();
  p.att = aadt.attack_value(index);
  if constexpr (std::is_same_v<P, WitnessPoint>) {
    p.defense = BitVec(aadt.adt().num_defenses());
    p.attack = BitVec(aadt.adt().num_attacks());
    p.attack.set(index);
  }
  return p;
}

template <typename P, typename Dd, typename Da>
std::vector<P> defense_leaf_points(const AugmentedAdt& aadt, NodeId id,
                                   const Dd& dd, const Da& da) {
  const std::size_t index = aadt.adt().defense_index(id);
  // Inactive: costs nothing, and "defeating" it is free for the attacker.
  P off;
  off.def = dd.one();
  off.att = da.one();
  // Active: costs beta_D, and a bare BDS cannot be defeated.
  P on;
  on.def = aadt.defense_value(index);
  on.att = da.zero();
  if constexpr (std::is_same_v<P, WitnessPoint>) {
    off.defense = BitVec(aadt.adt().num_defenses());
    off.attack = BitVec(aadt.adt().num_attacks());
    on.defense = off.defense;
    on.attack = off.attack;
    on.defense.set(index);
  }
  return {std::move(off), std::move(on)};
}

/// One node of Algorithm 1: leaves materialize their fronts, gates fold
/// their children's fronts left to right (Alg. 1 lines 7-9; pruning
/// after every combination is lossless by Lemma 2). Shared verbatim by
/// the sequential walk and every parallel task, so the fold shape -
/// and with it the result, bit for bit - cannot depend on scheduling.
template <typename P, typename Dd, typename Da>
void compute_node(const AugmentedAdt& aadt, NodeId v,
                  std::vector<BasicFront<P>>& fronts, FrontArena<P>& arena,
                  std::size_t& max_p, const BottomUpOptions& options,
                  const Dd& dd, const Da& da) {
  check_interrupt(options.deadline, options.cancel, "bottom_up");
  const Adt& adt = aadt.adt();
  const Node& n = adt.node(v);
  if (n.type == GateType::BasicStep) {
    if (n.agent == Agent::Attacker) {
      fronts[v] =
          BasicFront<P>::singleton(attack_leaf_point<P>(aadt, v, dd, da));
    } else {
      fronts[v] = BasicFront<P>::minimized(
          defense_leaf_points<P>(aadt, v, dd, da), dd, da);
    }
    return;
  }
  const AttackOp op = attack_op(n.type, n.agent);
  BasicFront<P> acc = fronts[n.children[0]];
  for (std::size_t i = 1; i < n.children.size(); ++i) {
    arena.combine_into(acc, fronts[n.children[i]], op, dd, da);
    if (options.max_front_points != 0 &&
        acc.size() > options.max_front_points) {
      throw LimitError("bottom_up: intermediate front exceeds " +
                       std::to_string(options.max_front_points) +
                       " points at node '" + n.name + "'");
    }
  }
  max_p = std::max(max_p, acc.size());
  fronts[v] = std::move(acc);
}

/// Parallelism diagnostics of one run, filled by the parallel kernel
/// (the caller cannot read the per-slot arenas itself).
struct BuCounters {
  unsigned threads_used = 1;
  TaskRunStats sched;
  CombineStats combine;
  bool combine_valid = false;  ///< true iff the parallel kernel filled it
};

/// The sequential kernel of Algorithm 1; instantiated once per policy
/// pair by dispatch_domains(), so combine/prefer inline with no dispatch
/// in the merge loops. The FrontArena recycles buffers across all merges.
template <typename P, typename Dd, typename Da>
std::vector<BasicFront<P>> bottom_up_kernel(const AugmentedAdt& aadt,
                                            const BottomUpOptions& options,
                                            std::size_t* max_front_size,
                                            const Dd& dd, const Da& da) {
  const Adt& adt = aadt.adt();
  // Value-front runs may borrow a caller-provided arena (analyze_batch
  // hands every worker thread one that persists across batch items, so
  // buffer recycling spans the batch); witness runs keep a private one.
  FrontArena<P> local_arena;
  FrontArena<P>* arena = &local_arena;
  if constexpr (std::is_same_v<P, ValuePoint>) {
    if (options.arena != nullptr) arena = options.arena;
  }
  std::size_t max_p = 0;
  std::vector<BasicFront<P>> fronts(adt.size());
  for (NodeId v : adt.topological_order()) {
    compute_node(aadt, v, fronts, *arena, max_p, options, dd, da);
  }
  if (max_front_size != nullptr) *max_front_size = max_p;
  return fronts;
}

/// The parallel kernel: one task per node, edges gate -> child, so
/// sibling subtrees fold concurrently and a gate starts the instant its
/// last child finishes. Tasks write disjoint front slots and use
/// private per-slot arenas (the caller's arena is never touched - it is
/// not safe under the scheduler's task interleaving).
template <typename P, typename Dd, typename Da>
std::vector<BasicFront<P>> bottom_up_parallel_kernel(
    const AugmentedAdt& aadt, const BottomUpOptions& options,
    TaskScheduler& pool, std::size_t* max_front_size, BuCounters* counters,
    const Dd& dd, const Da& da) {
  const Adt& adt = aadt.adt();
  const unsigned workers = pool.threads();
  std::vector<FrontArena<P>> arenas(workers);
  std::vector<std::size_t> max_p(workers, 0);
  std::vector<BasicFront<P>> fronts(adt.size());

  auto body = [&](unsigned slot, std::uint32_t v) {
    compute_node(aadt, static_cast<NodeId>(v), fronts, arenas[slot],
                 max_p[slot], options, dd, da);
  };
  // Task ids coincide with NodeIds: one task per node, added in id
  // order; dependency edges make each gate wait for its children.
  TaskGraph graph;
  graph.reserve(adt.size(), adt.size());
  for (NodeId v = 0; v < adt.size(); ++v) {
    graph.add(body, static_cast<std::uint32_t>(v));
  }
  for (NodeId v = 0; v < adt.size(); ++v) {
    for (NodeId c : adt.node(v).children) {
      graph.depends(static_cast<TaskGraph::TaskId>(v),
                    static_cast<TaskGraph::TaskId>(c));
    }
  }
  const TaskRunStats stats = pool.run(graph);

  std::size_t max_p_all = 0;
  for (std::size_t m : max_p) max_p_all = std::max(max_p_all, m);
  if (max_front_size != nullptr) *max_front_size = max_p_all;
  if (counters != nullptr) {
    counters->threads_used = workers;
    counters->sched += stats;
    for (const FrontArena<P>& a : arenas) counters->combine += a.stats();
    counters->combine_valid = true;
  }
  return fronts;
}

template <typename P>
std::vector<BasicFront<P>> bottom_up_all(
    const AugmentedAdt& aadt, const BottomUpOptions& options,
    std::size_t* max_front_size = nullptr, BuCounters* counters = nullptr) {
  if (!aadt.adt().is_tree()) {
    throw ModelError(
        "bottom_up: the ADT is DAG-shaped (a node has multiple parents); "
        "the Bottom-Up algorithm is only sound for trees - use "
        "bdd_bu_front() or transform the model with unfold_to_tree()");
  }
  // Engage the scheduler only when more than one slot is on offer and
  // the tree clears the floor; otherwise the plain walk wins.
  TaskScheduler* pool = options.pool;
  const unsigned width =
      pool != nullptr ? pool->threads() : resolve_thread_knob(options.threads);
  const bool parallel =
      width > 1 && aadt.adt().size() >= options.parallel_node_floor;
  std::optional<TaskScheduler> owned;
  if (parallel && pool == nullptr) {
    owned.emplace(width);
    pool = &*owned;
  }
  return dispatch_domains(
      aadt.defender_domain(), aadt.attacker_domain(),
      [&](const auto& dd, const auto& da) {
        if (parallel && pool->threads() > 1) {
          return bottom_up_parallel_kernel<P>(aadt, options, *pool,
                                              max_front_size, counters, dd,
                                              da);
        }
        return bottom_up_kernel<P>(aadt, options, max_front_size, dd, da);
      });
}

}  // namespace

Front bottom_up_front(const AugmentedAdt& aadt,
                      const BottomUpOptions& options) {
  auto fronts = bottom_up_all<ValuePoint>(aadt, options);
  return std::move(fronts[aadt.adt().root()]);
}

BottomUpReport bottom_up_analyze(const AugmentedAdt& aadt,
                                 const BottomUpOptions& options) {
  BottomUpReport report;
  // Stats live on the arenas. The parallel kernel sums its private slot
  // arenas; the sequential path attributes by snapshot so a batch-shared
  // arena reports only this run's work.
  FrontArena<ValuePoint> local_arena;
  BottomUpOptions opts = options;
  if (opts.arena == nullptr) opts.arena = &local_arena;
  const CombineStats before = opts.arena->stats();
  BuCounters counters;
  Stopwatch watch;
  auto fronts = bottom_up_all<ValuePoint>(aadt, opts, &report.max_front_size,
                                          &counters);
  report.seconds = watch.seconds();
  report.combine_stats = counters.combine_valid
                             ? counters.combine
                             : opts.arena->stats().since(before);
  report.threads_used = counters.threads_used;
  report.sched = counters.sched;
  report.front = std::move(fronts[aadt.adt().root()]);
  return report;
}

WitnessFront bottom_up_front_witness(const AugmentedAdt& aadt,
                                     const BottomUpOptions& options) {
  auto fronts = bottom_up_all<WitnessPoint>(aadt, options);
  return std::move(fronts[aadt.adt().root()]);
}

std::vector<Front> bottom_up_all_fronts(const AugmentedAdt& aadt,
                                        const BottomUpOptions& options) {
  return bottom_up_all<ValuePoint>(aadt, options);
}

}  // namespace adtp
