#include "core/bottom_up.hpp"

#include <algorithm>
#include <optional>
#include <type_traits>

#include "core/domains.hpp"
#include "core/node_memo.hpp"
#include "util/error.hpp"

namespace adtp {

AttackOp attack_op(GateType gate, Agent agent) {
  switch (gate) {
    case GateType::And:
      return agent == Agent::Attacker ? AttackOp::Combine : AttackOp::Choose;
    case GateType::Or:
      return agent == Agent::Attacker ? AttackOp::Choose : AttackOp::Combine;
    case GateType::Inhibit:
      return agent == Agent::Attacker ? AttackOp::Combine : AttackOp::Choose;
    case GateType::BasicStep:
      break;
  }
  throw ModelError("attack_op: basic steps have no combination operator");
}

namespace {

template <typename P, typename Dd, typename Da>
P attack_leaf_point(const AugmentedAdt& aadt, NodeId id, const Dd& dd,
                    const Da&) {
  const std::size_t index = aadt.adt().attack_index(id);
  P p;
  p.def = dd.one();
  p.att = aadt.attack_value(index);
  if constexpr (std::is_same_v<P, WitnessPoint>) {
    p.defense = BitVec(aadt.adt().num_defenses());
    p.attack = BitVec(aadt.adt().num_attacks());
    p.attack.set(index);
  }
  return p;
}

template <typename P, typename Dd, typename Da>
std::vector<P> defense_leaf_points(const AugmentedAdt& aadt, NodeId id,
                                   const Dd& dd, const Da& da) {
  const std::size_t index = aadt.adt().defense_index(id);
  // Inactive: costs nothing, and "defeating" it is free for the attacker.
  P off;
  off.def = dd.one();
  off.att = da.one();
  // Active: costs beta_D, and a bare BDS cannot be defeated.
  P on;
  on.def = aadt.defense_value(index);
  on.att = da.zero();
  if constexpr (std::is_same_v<P, WitnessPoint>) {
    off.defense = BitVec(aadt.adt().num_defenses());
    off.attack = BitVec(aadt.adt().num_attacks());
    on.defense = off.defense;
    on.attack = off.attack;
    on.defense.set(index);
  }
  return {std::move(off), std::move(on)};
}

/// One node of Algorithm 1: leaves materialize their fronts, gates fold
/// their children's fronts left to right (Alg. 1 lines 7-9; pruning
/// after every combination is lossless by Lemma 2). Shared verbatim by
/// the sequential walk and every parallel task, so the fold shape -
/// and with it the result, bit for bit - cannot depend on scheduling.
template <typename P, typename Dd, typename Da>
void compute_node(const AugmentedAdt& aadt, NodeId v,
                  std::vector<BasicFront<P>>& fronts, FrontArena<P>& arena,
                  std::size_t& max_p, const BottomUpOptions& options,
                  const Dd& dd, const Da& da) {
  check_interrupt(options.deadline, options.cancel, "bottom_up");
  const Adt& adt = aadt.adt();
  const Node& n = adt.node(v);
  if (n.type == GateType::BasicStep) {
    if (n.agent == Agent::Attacker) {
      fronts[v] =
          BasicFront<P>::singleton(attack_leaf_point<P>(aadt, v, dd, da));
    } else {
      fronts[v] = BasicFront<P>::minimized(
          defense_leaf_points<P>(aadt, v, dd, da), dd, da);
    }
    return;
  }
  const AttackOp op = attack_op(n.type, n.agent);
  BasicFront<P> acc = fronts[n.children[0]];
  for (std::size_t i = 1; i < n.children.size(); ++i) {
    arena.combine_into(acc, fronts[n.children[i]], op, dd, da);
    if (options.max_front_points != 0 &&
        acc.size() > options.max_front_points) {
      throw LimitError("bottom_up: intermediate front exceeds " +
                       std::to_string(options.max_front_points) +
                       " points at node '" + n.name + "'");
    }
  }
  max_p = std::max(max_p, acc.size());
  fronts[v] = std::move(acc);
}

/// Parallelism diagnostics of one run, filled by the parallel kernel
/// (the caller cannot read the per-slot arenas itself).
struct BuCounters {
  unsigned threads_used = 1;
  TaskRunStats sched;
  CombineStats combine;
  bool combine_valid = false;  ///< true iff the parallel kernel filled it
};

/// The dirty-spine plan of one memoized run: which nodes were preloaded
/// from the NodeFrontMemo and which must be computed. Built once on the
/// caller thread; both kernels consume it. When the memo is off (or the
/// model is not memoizable) the plan degenerates to "compute everything"
/// and store() is a no-op, so the kernels have a single code path.
template <typename P>
struct MemoPlan {
  NodeFrontMemo* memo = nullptr;
  std::vector<NodeMemoKey> keys;  ///< per NodeId; empty when memo off
  std::vector<NodeId> order;      ///< nodes to compute, topological
  NodeMemoStats stats;

  /// Preloads memo hits into \p fronts, marks the dirty spine, and
  /// returns the topological compute order. Only nodes reachable from a
  /// missing ancestor are visited: a hit prunes its whole subtree.
  static MemoPlan build(const AugmentedAdt& aadt,
                        const BottomUpOptions& options,
                        std::vector<BasicFront<P>>& fronts) {
    MemoPlan plan;
    const Adt& adt = aadt.adt();
    if (options.memo == nullptr || options.memo->capacity() == 0 ||
        !memoizable(aadt)) {
      plan.order = adt.topological_order();
      return plan;
    }
    plan.memo = options.memo;
    const std::vector<std::uint64_t> subtree = subtree_value_hashes(aadt);
    const std::uint64_t context =
        bottom_up_memo_context(aadt, options.max_front_points);
    std::uint64_t layout_root = 0;
    std::vector<std::uint64_t> layout;
    if constexpr (std::is_same_v<P, WitnessPoint>) {
      layout = subtree_layout_hashes(adt);
    }
    plan.keys.resize(adt.size());
    for (NodeId v = 0; v < adt.size(); ++v) {
      if constexpr (std::is_same_v<P, WitnessPoint>) {
        layout_root = layout[v];
      }
      plan.keys[v] = NodeMemoKey{subtree[v], context, layout_root};
    }
    // Descend from the root through lookup misses: a gate that hits is
    // materialized from the memo and its subtree never visited; leaves
    // are always computed (cheaper to rebuild than to look up).
    enum : char { kUnvisited = 0, kCompute = 1, kPreloaded = 2 };
    std::vector<char> state(adt.size(), kUnvisited);
    std::vector<NodeId> stack{adt.root()};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      if (state[v] != kUnvisited) continue;
      const Node& n = adt.node(v);
      if (n.type != GateType::BasicStep &&
          plan.memo->template lookup<P>(plan.keys[v], fronts[v])) {
        state[v] = kPreloaded;
        ++plan.stats.hits;
        continue;
      }
      state[v] = kCompute;
      if (n.type != GateType::BasicStep) {
        ++plan.stats.misses;
        for (NodeId c : n.children) stack.push_back(c);
      }
    }
    for (NodeId v : adt.topological_order()) {
      if (state[v] == kCompute) plan.order.push_back(v);
    }
    return plan;
  }

  /// Memoizes a freshly computed gate front. Thread-safe; called from
  /// worker tasks by the parallel kernel.
  void store(const AugmentedAdt& aadt, NodeId v,
             const BasicFront<P>& front) const {
    if (memo == nullptr) return;
    if (aadt.adt().type(v) == GateType::BasicStep) return;
    memo->template insert<P>(keys[v], front);
  }

  void publish(const BottomUpOptions& options) const {
    if (options.memo_stats != nullptr) *options.memo_stats = stats;
  }
};

/// The sequential kernel of Algorithm 1; instantiated once per policy
/// pair by dispatch_domains(), so combine/prefer inline with no dispatch
/// in the merge loops. The FrontArena recycles buffers across all merges.
template <typename P, typename Dd, typename Da>
std::vector<BasicFront<P>> bottom_up_kernel(const AugmentedAdt& aadt,
                                            const BottomUpOptions& options,
                                            std::size_t* max_front_size,
                                            const Dd& dd, const Da& da) {
  const Adt& adt = aadt.adt();
  // Value-front runs may borrow a caller-provided arena (analyze_batch
  // hands every worker thread one that persists across batch items, so
  // buffer recycling spans the batch); witness runs keep a private one.
  FrontArena<P> local_arena;
  FrontArena<P>* arena = &local_arena;
  if constexpr (std::is_same_v<P, ValuePoint>) {
    if (options.arena != nullptr) arena = options.arena;
  }
  std::size_t max_p = 0;
  std::vector<BasicFront<P>> fronts(adt.size());
  const MemoPlan<P> plan = MemoPlan<P>::build(aadt, options, fronts);
  for (NodeId v : plan.order) {
    compute_node(aadt, v, fronts, *arena, max_p, options, dd, da);
    plan.store(aadt, v, fronts[v]);
  }
  plan.publish(options);
  if (max_front_size != nullptr) *max_front_size = max_p;
  return fronts;
}

/// The parallel kernel: one task per node, edges gate -> child, so
/// sibling subtrees fold concurrently and a gate starts the instant its
/// last child finishes. Tasks write disjoint front slots and use
/// private per-slot arenas (the caller's arena is never touched - it is
/// not safe under the scheduler's task interleaving).
template <typename P, typename Dd, typename Da>
std::vector<BasicFront<P>> bottom_up_parallel_kernel(
    const AugmentedAdt& aadt, const BottomUpOptions& options,
    TaskScheduler& pool, std::size_t* max_front_size, BuCounters* counters,
    const Dd& dd, const Da& da) {
  const Adt& adt = aadt.adt();
  const unsigned workers = pool.threads();
  std::vector<FrontArena<P>> arenas(workers);
  std::vector<std::size_t> max_p(workers, 0);
  std::vector<BasicFront<P>> fronts(adt.size());

  const MemoPlan<P> plan = MemoPlan<P>::build(aadt, options, fronts);
  auto body = [&](unsigned slot, std::uint32_t v) {
    compute_node(aadt, static_cast<NodeId>(v), fronts, arenas[slot],
                 max_p[slot], options, dd, da);
    plan.store(aadt, static_cast<NodeId>(v), fronts[v]);
  };
  // One task per node of the dirty spine (every node when the memo is
  // off), added in topological order; dependency edges make each gate
  // wait for its still-dirty children (preloaded children are already
  // materialized). The per-node fold shape is compute_node either way,
  // so memoization never changes what a computed node computes.
  std::vector<std::uint32_t> task_of(adt.size(), 0xFFFFFFFFu);
  TaskGraph graph;
  graph.reserve(plan.order.size(), plan.order.size());
  for (std::uint32_t i = 0; i < plan.order.size(); ++i) {
    task_of[plan.order[i]] = i;
    graph.add(body, static_cast<std::uint32_t>(plan.order[i]));
  }
  for (std::uint32_t i = 0; i < plan.order.size(); ++i) {
    for (NodeId c : adt.node(plan.order[i]).children) {
      if (task_of[c] != 0xFFFFFFFFu) {
        graph.depends(static_cast<TaskGraph::TaskId>(i),
                      static_cast<TaskGraph::TaskId>(task_of[c]));
      }
    }
  }
  const TaskRunStats stats = pool.run(graph);
  plan.publish(options);

  std::size_t max_p_all = 0;
  for (std::size_t m : max_p) max_p_all = std::max(max_p_all, m);
  if (max_front_size != nullptr) *max_front_size = max_p_all;
  if (counters != nullptr) {
    counters->threads_used = workers;
    counters->sched += stats;
    for (const FrontArena<P>& a : arenas) counters->combine += a.stats();
    counters->combine_valid = true;
  }
  return fronts;
}

template <typename P>
std::vector<BasicFront<P>> bottom_up_all(
    const AugmentedAdt& aadt, const BottomUpOptions& options,
    std::size_t* max_front_size = nullptr, BuCounters* counters = nullptr) {
  if (!aadt.adt().is_tree()) {
    throw ModelError(
        "bottom_up: the ADT is DAG-shaped (a node has multiple parents); "
        "the Bottom-Up algorithm is only sound for trees - use "
        "bdd_bu_front() or transform the model with unfold_to_tree()");
  }
  // Engage the scheduler only when more than one slot is on offer and
  // the tree clears the floor; otherwise the plain walk wins.
  TaskScheduler* pool = options.pool;
  const unsigned width =
      pool != nullptr ? pool->threads() : resolve_thread_knob(options.threads);
  const bool parallel =
      width > 1 && aadt.adt().size() >= options.parallel_node_floor;
  std::optional<TaskScheduler> owned;
  if (parallel && pool == nullptr) {
    owned.emplace(width);
    pool = &*owned;
  }
  return dispatch_domains(
      aadt.defender_domain(), aadt.attacker_domain(),
      [&](const auto& dd, const auto& da) {
        if (parallel && pool->threads() > 1) {
          return bottom_up_parallel_kernel<P>(aadt, options, *pool,
                                              max_front_size, counters, dd,
                                              da);
        }
        return bottom_up_kernel<P>(aadt, options, max_front_size, dd, da);
      });
}

}  // namespace

Front bottom_up_front(const AugmentedAdt& aadt,
                      const BottomUpOptions& options) {
  auto fronts = bottom_up_all<ValuePoint>(aadt, options);
  return std::move(fronts[aadt.adt().root()]);
}

BottomUpReport bottom_up_analyze(const AugmentedAdt& aadt,
                                 const BottomUpOptions& options) {
  BottomUpReport report;
  // Stats live on the arenas. The parallel kernel sums its private slot
  // arenas; the sequential path attributes by snapshot so a batch-shared
  // arena reports only this run's work.
  FrontArena<ValuePoint> local_arena;
  BottomUpOptions opts = options;
  if (opts.arena == nullptr) opts.arena = &local_arena;
  NodeMemoStats memo_stats;
  if (opts.memo_stats == nullptr) opts.memo_stats = &memo_stats;
  const CombineStats before = opts.arena->stats();
  BuCounters counters;
  Stopwatch watch;
  auto fronts = bottom_up_all<ValuePoint>(aadt, opts, &report.max_front_size,
                                          &counters);
  report.seconds = watch.seconds();
  report.memo_hits = opts.memo_stats->hits;
  report.memo_misses = opts.memo_stats->misses;
  report.combine_stats = counters.combine_valid
                             ? counters.combine
                             : opts.arena->stats().since(before);
  report.threads_used = counters.threads_used;
  report.sched = counters.sched;
  report.front = std::move(fronts[aadt.adt().root()]);
  return report;
}

WitnessFront bottom_up_front_witness(const AugmentedAdt& aadt,
                                     const BottomUpOptions& options) {
  auto fronts = bottom_up_all<WitnessPoint>(aadt, options);
  return std::move(fronts[aadt.adt().root()]);
}

std::vector<Front> bottom_up_all_fronts(const AugmentedAdt& aadt,
                                        const BottomUpOptions& options) {
  return bottom_up_all<ValuePoint>(aadt, options);
}

}  // namespace adtp
