/// \file budget.hpp
/// \brief Budget queries on computed Pareto fronts.
///
/// The paper motivates the Pareto front as "the set of maximal achievable
/// attacker costs for each possible defender budget". These helpers answer
/// the two planning questions directly:
///  - guaranteed_attacker_value: with defender budget b, how badly off can
///    the defender make an optimally-playing attacker?
///  - cheapest_defense_for: what is the least defender spend that pushes
///    the attacker's optimal response to at least a target value?

#pragma once

#include <optional>

#include "core/pareto.hpp"

namespace adtp {

/// The best (most attacker-adverse) response value achievable with
/// defender budget \p budget: the point with the largest defender value
/// still within budget. Fronts always contain a point with defender value
/// 1_tensor_D, so this is well-defined for every budget that is at least
/// as bad as 1_tensor_D (i.e. any valid budget).
[[nodiscard]] double guaranteed_attacker_value(const Front& front,
                                               double budget,
                                               const Semiring& defender,
                                               const Semiring& attacker);

/// The cheapest defender value whose optimal attacker response is at
/// least as adverse as \p target (w.r.t. the attacker order); nullopt if
/// no point on the front reaches the target.
[[nodiscard]] std::optional<double> cheapest_defense_for(
    const Front& front, double target, const Semiring& defender,
    const Semiring& attacker);

/// The single value reported by attacker-only analyses (e.g. the ADTool
/// -style "minimal cost of an unpreventable attack"): the attacker value
/// when the defender has unlimited budget - the last point of the front.
[[nodiscard]] double unlimited_defender_value(const Front& front);

}  // namespace adtp
