/// \file attribution.hpp
/// \brief Basic assignments beta_A / beta_D and augmented ADTs (Def. 5-6).

#pragma once

#include <string>
#include <unordered_map>

#include "adt/adt.hpp"
#include "core/semiring.hpp"
#include "util/bitvec.hpp"

namespace adtp {

/// The basic assignment functions: beta_A maps each BAS to a value of the
/// attacker domain, beta_D each BDS to a value of the defender domain.
class Attribution {
 public:
  Attribution() = default;

  /// Assigns a value to the basic step named \p name (agent inferred from
  /// the node when validated). Values may be set before or after the Adt
  /// is built; validation happens in validate()/AugmentedAdt.
  void set(std::string name, double value);

  [[nodiscard]] bool has(const std::string& name) const {
    return values_.contains(name);
  }
  [[nodiscard]] double get(const std::string& name) const;

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] const std::unordered_map<std::string, double>& values()
      const noexcept {
    return values_;
  }

  /// Checks that every BAS and BDS of \p adt has a finite, non-NaN value
  /// and that no value refers to a missing or non-leaf node.
  /// Throws AttributionError otherwise.
  void validate(const Adt& adt) const;

 private:
  std::unordered_map<std::string, double> values_;
};

/// An augmented attack-defense tree (Definition 5): the structure T plus
/// the two attribute domains and the basic assignment.
///
/// The attribution is eagerly baked into dense per-index arrays so the
/// analysis algorithms can do O(1) lookups by BAS/BDS index.
class AugmentedAdt {
 public:
  /// \p adt must already be frozen (or freezable); throws on invalid
  /// attribution.
  AugmentedAdt(Adt adt, Attribution attribution, Semiring defender_domain,
               Semiring attacker_domain);

  [[nodiscard]] const Adt& adt() const noexcept { return adt_; }
  [[nodiscard]] const Semiring& defender_domain() const noexcept {
    return defender_domain_;
  }
  [[nodiscard]] const Semiring& attacker_domain() const noexcept {
    return attacker_domain_;
  }
  [[nodiscard]] const Attribution& attribution() const noexcept {
    return attribution_;
  }

  /// beta_A by dense attack index (position in adt().attack_steps()).
  [[nodiscard]] double attack_value(std::size_t attack_index) const {
    return attack_values_.at(attack_index);
  }
  /// beta_D by dense defense index.
  [[nodiscard]] double defense_value(std::size_t defense_index) const {
    return defense_values_.at(defense_index);
  }

  /// beta of a leaf node (either agent) by NodeId.
  [[nodiscard]] double value_of(NodeId id) const;

  /// Metric value of a defense vector (Definition 6): tensor_D over the
  /// activated BDS; the empty vector yields 1_tensor_D.
  [[nodiscard]] double defense_vector_value(const BitVec& defense) const;

  /// Metric value of an attack vector (Definition 6).
  [[nodiscard]] double attack_vector_value(const BitVec& attack) const;

 private:
  Adt adt_;
  Attribution attribution_;
  Semiring defender_domain_;
  Semiring attacker_domain_;
  std::vector<double> attack_values_;
  std::vector<double> defense_values_;
};

}  // namespace adtp
