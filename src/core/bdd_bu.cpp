#include "core/bdd_bu.hpp"

#include <algorithm>
#include <optional>
#include <type_traits>
#include <vector>

#include "bdd/build.hpp"
#include "core/domains.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace adtp {

namespace {

constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

/// Aggregated diagnostics of one propagation, filled by the kernel (the
/// caller cannot read per-worker arenas itself).
struct PropagateCounters {
  std::size_t max_front_size = 0;
  std::size_t max_level_width = 0;
  CombineStats combine;
  TaskRunStats sched;
};

/// The per-domain-pair kernel of Algorithm 3 over a built BDD, generic in
/// the point payload; instantiated once per policy pair by
/// dispatch_domains().
///
/// Every nonterminal BDD node is one task whose dependencies are its
/// low/high children (terminal fronts are precomputed), writing a
/// disjoint front slot; the scheduler runs a node the moment both
/// children finished - no level barrier. A node's front is a pure
/// function of its children's fronts (the arenas are scratch only), so
/// the result is bit-identical for every thread count and for the
/// sequential path, which executes the same per-node computation in
/// reachable order (children first).
template <typename P, typename Dd, typename Da>
BasicFront<P> propagate_kernel(const AugmentedAdt& aadt, bdd::Manager& manager,
                               bdd::Ref root, const bdd::VarOrder& order,
                               PropagateCounters* counters,
                               const BddBuOptions& options,
                               TaskScheduler* pool, const Dd& dd,
                               const Da& da) {
  const std::size_t max_front_points = options.max_front_points;
  const Adt& adt = aadt.adt();
  const bool root_is_attack = adt.agent(adt.root()) == Agent::Attacker;
  const std::size_t num_d = adt.num_defenses();
  const std::size_t num_a = adt.num_attacks();

  auto make_point = [&](double def, double att) {
    P p;
    p.def = def;
    p.att = att;
    if constexpr (std::is_same_v<P, WitnessPoint>) {
      p.defense = BitVec(num_d);
      p.attack = BitVec(num_a);
    }
    return p;
  };

  // Alg. 3 lines 2-5: terminal fronts depend on the root agent - the
  // attacker's target leaf is 1 when tau(R_T) = A and 0 otherwise.
  const bdd::Ref attacker_target = root_is_attack ? bdd::kTrue : bdd::kFalse;

  // Dense slots for the reachable nodes: shared nodes are computed exactly
  // once (the memoization that gives O(|W| p^2)), and workers write
  // disjoint slots without synchronization beyond the dependency edges.
  const std::vector<bdd::Ref> reach = manager.reachable(root);
  std::vector<std::uint32_t> slot(manager.num_nodes(), kNoSlot);
  for (std::uint32_t i = 0; i < reach.size(); ++i) {
    slot[reach[i]] = i;
  }
  std::vector<BasicFront<P>> fronts(reach.size());

  const bool parallel = pool != nullptr && pool->threads() > 1;
  const unsigned workers = parallel ? pool->threads() : 1;

  // One arena per scheduler slot. The sequential value-front path may
  // borrow a caller-provided arena (persistent across batch items on one
  // worker thread); parallel runs - whose tasks can execute on any slot,
  // interleaved with other nested runs - and witness runs keep private
  // scratch.
  FrontArena<P> fallback_arena;
  FrontArena<P>* arena0 = &fallback_arena;
  if constexpr (std::is_same_v<P, ValuePoint>) {
    if (!parallel && options.arena != nullptr) arena0 = options.arena;
  }
  const CombineStats arena0_before = arena0->stats();
  std::vector<FrontArena<P>> extra_arenas(workers > 1 ? workers - 1 : 0);
  std::vector<std::size_t> max_p(workers, 0);

  // Terminal fronts up front; nonterminals become tasks. reachable()
  // returns children before parents, so the nonterminal order is itself
  // a valid topological order of the dependency DAG.
  std::vector<bdd::Ref> nonterms;
  nonterms.reserve(reach.size());
  std::vector<std::size_t> level_width(order.num_vars(), 0);
  for (bdd::Ref w : reach) {
    if (manager.is_terminal(w)) {
      const double att = (w == attacker_target) ? da.one() : da.zero();
      fronts[slot[w]] =
          BasicFront<P>::singleton(make_point(dd.one(), att));
    } else {
      ++level_width[manager.var(w)];
      nonterms.push_back(w);
    }
  }
  if (counters != nullptr) {
    for (const std::size_t width : level_width) {
      counters->max_level_width = std::max(counters->max_level_width, width);
    }
  }

  auto process_node = [&](unsigned worker, bdd::Ref w) {
    check_interrupt(options.deadline, options.cancel, "bdd_bu");
    const std::uint32_t v = manager.var(w);
    const NodeId leaf = order.node_of(v);
    const auto& low = fronts[slot[manager.low(w)]];
    const auto& high = fronts[slot[manager.high(w)]];

    if (!order.is_defense_var(v)) {
      // Alg. 3 lines 6-9: attack variable. Both child fronts are
      // singletons with defender coordinate 1_tensor_D (no defense
      // variable occurs below, by the defense-first order).
      if (low.size() != 1 || high.size() != 1) {
        throw Error(
            "bdd_bu: internal invariant violated - non-singleton front "
            "below an attack variable (is the order defense-first?)");
      }
      const P& p0 = low.front_point();
      const P& p1 = high.front_point();
      const double beta = aadt.attack_value(adt.attack_index(leaf));
      const double via_high = da.combine(beta, p1.att);
      P p = make_point(dd.one(), da.choose(p0.att, via_high));
      if constexpr (std::is_same_v<P, WitnessPoint>) {
        // The attacker takes the preferred branch; record its decisions.
        if (da.strictly_prefer(via_high, p0.att)) {
          p.attack = p1.attack;
          p.attack.set(adt.attack_index(leaf));
        } else {
          p.attack = p0.attack;
        }
      }
      fronts[slot[w]] = BasicFront<P>::singleton(std::move(p));
    } else {
      // Alg. 3 lines 10-14: defense variable. Either skip the defense
      // (low front) or buy it (high front shifted by beta_D). Shifting by
      // a constant via tensor_D preserves the staircase order, so the
      // union is a sorted merge - no re-sort.
      const double beta = aadt.defense_value(adt.defense_index(leaf));
      FrontArena<P>* arena =
          worker == 0 ? arena0 : &extra_arenas[worker - 1];
      auto front = arena->merged_transformed(
          low, high,
          [&](const P& q) {
            P shifted = q;
            shifted.def = dd.combine(beta, q.def);
            if constexpr (std::is_same_v<P, WitnessPoint>) {
              shifted.defense.set(adt.defense_index(leaf));
            }
            return shifted;
          },
          dd, da);
      if (max_front_points != 0 && front.size() > max_front_points) {
        throw LimitError("bdd_bu: intermediate front exceeds " +
                         std::to_string(max_front_points) + " points");
      }
      max_p[worker] = std::max(max_p[worker], front.size());
      fronts[slot[w]] = std::move(front);
    }
  };

  if (parallel) {
    // Granularity: a task per nonterminal drowns the scheduler in
    // bookkeeping wherever per-node work is tiny - attack-variable nodes
    // always carry singleton fronts, and on attack-heavy BDDs they are
    // the bulk of |W|. Estimate each node's front work (1 for terminals
    // and attack variables, capped child sum for defense variables) and
    // fold contiguous runs of the children-first order into one task
    // until the estimate reaches the grain budget. A chunk processes its
    // nodes in that same order, so the per-node computation is identical
    // to the sequential path and to every other grain: results stay
    // bit-identical (grain 1 reproduces the old task-per-node graph).
    const std::size_t grain =
        std::max<std::size_t>(1, options.task_grain_points);
    std::vector<std::size_t> est(reach.size(), 1);
    for (const bdd::Ref w : nonterms) {
      if (order.is_defense_var(manager.var(w))) {
        est[slot[w]] = std::min(
            grain, est[slot[manager.low(w)]] + est[slot[manager.high(w)]]);
      }
    }
    std::vector<std::uint32_t> chunk_begin;  // index into nonterms
    std::size_t acc = 0;
    for (std::uint32_t i = 0; i < nonterms.size(); ++i) {
      if (acc == 0) chunk_begin.push_back(i);
      acc += est[slot[nonterms[i]]];
      if (acc >= grain) acc = 0;
    }
    const std::uint32_t num_chunks =
        static_cast<std::uint32_t>(chunk_begin.size());
    auto chunk_end = [&](std::uint32_t c) {
      return c + 1 < num_chunks ? chunk_begin[c + 1]
                                : static_cast<std::uint32_t>(nonterms.size());
    };
    std::vector<std::uint32_t> chunk_of(manager.num_nodes(), kNoSlot);
    for (std::uint32_t c = 0; c < num_chunks; ++c) {
      for (std::uint32_t i = chunk_begin[c]; i < chunk_end(c); ++i) {
        chunk_of[nonterms[i]] = c;
      }
    }
    auto body = [&](unsigned worker, std::uint32_t c) {
      for (std::uint32_t i = chunk_begin[c]; i < chunk_end(c); ++i) {
        process_node(worker, nonterms[i]);
      }
    };
    // Dependency edges point at the chunks holding the nodes' children
    // (always earlier chunks - the order is children-first; terminals
    // are already materialized above). last_dep deduplicates edges per
    // consuming chunk.
    TaskGraph graph;
    graph.reserve(num_chunks, 2 * num_chunks);
    std::vector<std::uint32_t> last_dep(num_chunks, kNoSlot);
    for (std::uint32_t c = 0; c < num_chunks; ++c) {
      graph.add(body, c);
      for (std::uint32_t i = chunk_begin[c]; i < chunk_end(c); ++i) {
        const bdd::Ref w = nonterms[i];
        for (const bdd::Ref child : {manager.low(w), manager.high(w)}) {
          if (manager.is_terminal(child)) continue;
          const std::uint32_t producer = chunk_of[child];
          if (producer == c || last_dep[producer] == c) continue;
          last_dep[producer] = c;
          graph.depends(c, producer);
        }
      }
    }
    const TaskRunStats stats = pool->run(graph);
    if (counters != nullptr) counters->sched += stats;
  } else {
    for (bdd::Ref w : nonterms) process_node(0, w);
  }

  BasicFront<P>& root_front = fronts[slot[root]];
  if (counters != nullptr) {
    counters->max_front_size = root_front.size();
    for (std::size_t m : max_p) {
      counters->max_front_size = std::max(counters->max_front_size, m);
    }
    counters->combine = arena0->stats().since(arena0_before);
    for (const FrontArena<P>& a : extra_arenas) {
      counters->combine += a.stats();
    }
  }
  return std::move(root_front);
}

template <typename P>
BasicFront<P> propagate(const AugmentedAdt& aadt, bdd::Manager& manager,
                        bdd::Ref root, const bdd::VarOrder& order,
                        PropagateCounters* counters,
                        const BddBuOptions& options, TaskScheduler* pool) {
  return dispatch_domains(
      aadt.defender_domain(), aadt.attacker_domain(),
      [&](const auto& dd, const auto& da) {
        return propagate_kernel<P>(aadt, manager, root, order, counters,
                                   options, pool, dd, da);
      });
}

bdd::VarOrder resolve_order(const AugmentedAdt& aadt,
                            const BddBuOptions& options) {
  if (options.order.has_value()) return *options.order;
  return bdd::VarOrder::defense_first(aadt.adt(), options.order_heuristic,
                                      options.order_seed);
}

/// BDD managers below this many allocated nodes never trigger the
/// late (post-build) engagement: their whole propagation costs less than
/// the per-node task bookkeeping. Models over the ADT-node floor engage
/// up front regardless, so construction parallelizes too.
constexpr std::size_t kMinBddNodesForPool = 4096;

/// Lazily-engaged scheduler of one BDDBU run. A small ADT can still
/// translate to a huge BDD (the Fig. 4 family: 43 ADT nodes, ~3 * 2^n
/// BDD nodes), so the scheduler engages either up front - when the ADT
/// itself clears options.parallel_node_floor - or right after the build,
/// when the manager turns out large enough that task-DAG propagation
/// pays for itself. An external scheduler (hybrid blobs, batch
/// donation) is subject to the same floors - it exists already, but
/// per-node task bookkeeping on a tiny model still costs more than the
/// sequential loop - just without the spawn cost when it does engage.
class PoolGate {
 public:
  PoolGate(const AugmentedAdt& aadt, const BddBuOptions& options)
      : external_(options.pool),
        requested_(external_ != nullptr ? external_->threads()
                                        : resolve_thread_knob(options.threads)) {
    if (requested_ > 1 &&
        aadt.adt().size() >= options.parallel_node_floor) {
      engage();
    }
  }

  /// Called between build and propagate with the manager's node count.
  void after_build(std::size_t manager_nodes) {
    if (pool_ == nullptr && requested_ > 1 &&
        manager_nodes >= kMinBddNodesForPool) {
      engage();
    }
  }

  [[nodiscard]] TaskScheduler* pool() noexcept { return pool_; }
  [[nodiscard]] unsigned threads_used() const noexcept {
    return pool_ != nullptr ? pool_->threads() : 1;
  }

 private:
  void engage() {
    if (external_ != nullptr) {
      pool_ = external_;
      return;
    }
    storage_.emplace(requested_);
    pool_ = &*storage_;
  }

  TaskScheduler* external_;
  unsigned requested_;
  std::optional<TaskScheduler> storage_;
  TaskScheduler* pool_ = nullptr;
};

}  // namespace

Front bdd_bu_front(const AugmentedAdt& aadt, const BddBuOptions& options) {
  return bdd_bu_analyze(aadt, options).front;
}

WitnessFront bdd_bu_front_witness(const AugmentedAdt& aadt,
                                  const BddBuOptions& options) {
  const bdd::VarOrder order = resolve_order(aadt, options);
  bdd::Manager manager(order.num_vars(), options.node_limit);
  PoolGate gate(aadt, options);
  check_interrupt(options.deadline, options.cancel, "bdd_bu");
  bdd::BuildOptions build;
  build.pool = gate.pool();
  const bdd::Ref root =
      bdd::build_structure_function(manager, aadt.adt(), order, build);
  gate.after_build(manager.num_nodes());
  return propagate<WitnessPoint>(aadt, manager, root, order, nullptr, options,
                                 gate.pool());
}

BddBuReport bdd_bu_analyze(const AugmentedAdt& aadt,
                           const BddBuOptions& options) {
  const bdd::VarOrder order = resolve_order(aadt, options);
  bdd::Manager manager(order.num_vars(), options.node_limit);
  PoolGate gate(aadt, options);

  BddBuReport report;
  check_interrupt(options.deadline, options.cancel, "bdd_bu");
  Stopwatch build_watch;
  bdd::BuildOptions build;
  build.pool = gate.pool();
  build.stats = &report.sched;
  const bdd::Ref root =
      bdd::build_structure_function(manager, aadt.adt(), order, build);
  report.build_seconds = build_watch.seconds();
  report.bdd_size = manager.size(root);
  report.manager_nodes = manager.num_nodes();
  gate.after_build(manager.num_nodes());
  report.threads_used = gate.threads_used();

  PropagateCounters counters;
  Stopwatch prop_watch;
  report.front = propagate<ValuePoint>(aadt, manager, root, order, &counters,
                                       options, gate.pool());
  report.propagate_seconds = prop_watch.seconds();
  report.max_front_size = counters.max_front_size;
  report.combine_stats = counters.combine;
  report.max_level_width = counters.max_level_width;
  report.sched += counters.sched;
  return report;
}

Front bdd_bu_on_bdd(const AugmentedAdt& aadt, bdd::Manager& manager,
                    bdd::Ref root, const bdd::VarOrder& order) {
  const BddBuOptions options;
  return propagate<ValuePoint>(aadt, manager, root, order, nullptr, options,
                               nullptr);
}

}  // namespace adtp
