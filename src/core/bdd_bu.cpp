#include "core/bdd_bu.hpp"

#include <type_traits>
#include <unordered_map>

#include "bdd/build.hpp"
#include "core/domains.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace adtp {

namespace {

/// The per-domain-pair kernel of Algorithm 3 over a built BDD, generic in
/// the point payload; instantiated once per policy pair by
/// dispatch_domains(). \p max_front_size reports the largest intermediate
/// front.
template <typename P, typename Dd, typename Da>
BasicFront<P> propagate_kernel(const AugmentedAdt& aadt, bdd::Manager& manager,
                               bdd::Ref root, const bdd::VarOrder& order,
                               std::size_t* max_front_size,
                               const BddBuOptions& options, const Dd& dd,
                               const Da& da) {
  const std::size_t max_front_points = options.max_front_points;
  const Adt& adt = aadt.adt();
  const bool root_is_attack = adt.agent(adt.root()) == Agent::Attacker;
  const std::size_t num_d = adt.num_defenses();
  const std::size_t num_a = adt.num_attacks();

  auto make_point = [&](double def, double att) {
    P p;
    p.def = def;
    p.att = att;
    if constexpr (std::is_same_v<P, WitnessPoint>) {
      p.defense = BitVec(num_d);
      p.attack = BitVec(num_a);
    }
    return p;
  };

  // Alg. 3 lines 2-5: terminal fronts depend on the root agent - the
  // attacker's target leaf is 1 when tau(R_T) = A and 0 otherwise.
  const bdd::Ref attacker_target = root_is_attack ? bdd::kTrue : bdd::kFalse;

  std::unordered_map<bdd::Ref, BasicFront<P>> fronts;
  fronts.reserve(manager.size(root));

  // Value-front runs may borrow a caller-provided arena (persistent across
  // batch items on one worker thread); witness runs keep a private one.
  FrontArena<P> local_arena;
  FrontArena<P>* arena = &local_arena;
  if constexpr (std::is_same_v<P, ValuePoint>) {
    if (options.arena != nullptr) arena = options.arena;
  }
  std::size_t max_p = 0;

  // reachable() yields ascending node indices, which is a topological
  // order (children are created before parents), so one sweep suffices;
  // shared nodes are computed exactly once (the memoization that gives
  // O(|W| p^2)).
  for (bdd::Ref w : manager.reachable(root)) {
    check_interrupt(options.deadline, options.cancel, "bdd_bu");
    if (manager.is_terminal(w)) {
      const double att = (w == attacker_target) ? da.one() : da.zero();
      fronts.emplace(w, BasicFront<P>::singleton(make_point(dd.one(), att)));
      continue;
    }
    const std::uint32_t v = manager.var(w);
    const NodeId leaf = order.node_of(v);
    const auto& low = fronts.at(manager.low(w));
    const auto& high = fronts.at(manager.high(w));

    if (!order.is_defense_var(v)) {
      // Alg. 3 lines 6-9: attack variable. Both child fronts are
      // singletons with defender coordinate 1_tensor_D (no defense
      // variable occurs below, by the defense-first order).
      if (low.size() != 1 || high.size() != 1) {
        throw Error(
            "bdd_bu: internal invariant violated - non-singleton front "
            "below an attack variable (is the order defense-first?)");
      }
      const P& p0 = low.front_point();
      const P& p1 = high.front_point();
      const double beta = aadt.attack_value(adt.attack_index(leaf));
      const double via_high = da.combine(beta, p1.att);
      P p = make_point(dd.one(), da.choose(p0.att, via_high));
      if constexpr (std::is_same_v<P, WitnessPoint>) {
        // The attacker takes the preferred branch; record its decisions.
        if (da.strictly_prefer(via_high, p0.att)) {
          p.attack = p1.attack;
          p.attack.set(adt.attack_index(leaf));
        } else {
          p.attack = p0.attack;
        }
      }
      fronts.emplace(w, BasicFront<P>::singleton(std::move(p)));
    } else {
      // Alg. 3 lines 10-14: defense variable. Either skip the defense
      // (low front) or buy it (high front shifted by beta_D). Shifting by
      // a constant via tensor_D preserves the staircase order, so the
      // union is a sorted merge - no re-sort.
      const double beta = aadt.defense_value(adt.defense_index(leaf));
      auto front = arena->merged_transformed(
          low, high,
          [&](const P& q) {
            P shifted = q;
            shifted.def = dd.combine(beta, q.def);
            if constexpr (std::is_same_v<P, WitnessPoint>) {
              shifted.defense.set(adt.defense_index(leaf));
            }
            return shifted;
          },
          dd, da);
      if (max_front_points != 0 && front.size() > max_front_points) {
        throw LimitError("bdd_bu: intermediate front exceeds " +
                         std::to_string(max_front_points) + " points");
      }
      max_p = std::max(max_p, front.size());
      fronts.emplace(w, std::move(front));
    }
  }

  if (max_front_size != nullptr) {
    max_p = std::max(max_p, fronts.at(root).size());
    *max_front_size = max_p;
  }
  return std::move(fronts.at(root));
}

template <typename P>
BasicFront<P> propagate(const AugmentedAdt& aadt, bdd::Manager& manager,
                        bdd::Ref root, const bdd::VarOrder& order,
                        std::size_t* max_front_size,
                        const BddBuOptions& options = {}) {
  return dispatch_domains(
      aadt.defender_domain(), aadt.attacker_domain(),
      [&](const auto& dd, const auto& da) {
        return propagate_kernel<P>(aadt, manager, root, order, max_front_size,
                                   options, dd, da);
      });
}

bdd::VarOrder resolve_order(const AugmentedAdt& aadt,
                            const BddBuOptions& options) {
  if (options.order.has_value()) return *options.order;
  return bdd::VarOrder::defense_first(aadt.adt(), options.order_heuristic,
                                      options.order_seed);
}

}  // namespace

Front bdd_bu_front(const AugmentedAdt& aadt, const BddBuOptions& options) {
  return bdd_bu_analyze(aadt, options).front;
}

WitnessFront bdd_bu_front_witness(const AugmentedAdt& aadt,
                                  const BddBuOptions& options) {
  const bdd::VarOrder order = resolve_order(aadt, options);
  bdd::Manager manager(order.num_vars(), options.node_limit);
  check_interrupt(options.deadline, options.cancel, "bdd_bu");
  const bdd::Ref root =
      bdd::build_structure_function(manager, aadt.adt(), order);
  return propagate<WitnessPoint>(aadt, manager, root, order, nullptr, options);
}

BddBuReport bdd_bu_analyze(const AugmentedAdt& aadt,
                           const BddBuOptions& options) {
  const bdd::VarOrder order = resolve_order(aadt, options);
  bdd::Manager manager(order.num_vars(), options.node_limit);

  BddBuReport report;
  check_interrupt(options.deadline, options.cancel, "bdd_bu");
  Stopwatch build_watch;
  const bdd::Ref root =
      bdd::build_structure_function(manager, aadt.adt(), order);
  report.build_seconds = build_watch.seconds();
  report.bdd_size = manager.size(root);
  report.manager_nodes = manager.num_nodes();

  // Front-operation stats live on the arena; pin one locally when the
  // caller did not provide theirs, and attribute by snapshot so a
  // batch-shared arena reports only this run's work.
  FrontArena<ValuePoint> local_arena;
  BddBuOptions opts = options;
  if (opts.arena == nullptr) opts.arena = &local_arena;
  const CombineStats before = opts.arena->stats();

  Stopwatch prop_watch;
  report.front = propagate<ValuePoint>(aadt, manager, root, order,
                                       &report.max_front_size, opts);
  report.propagate_seconds = prop_watch.seconds();
  report.combine_stats = opts.arena->stats().since(before);
  return report;
}

Front bdd_bu_on_bdd(const AugmentedAdt& aadt, bdd::Manager& manager,
                    bdd::Ref root, const bdd::VarOrder& order) {
  return propagate<ValuePoint>(aadt, manager, root, order, nullptr);
}

}  // namespace adtp
