/// \file domains.hpp
/// \brief Compile-time attribute-domain policies and double dispatch.
///
/// The runtime Semiring (semiring.hpp) stays the public façade: it is what
/// models carry and what the text format parses. The hot loops of the
/// analysis algorithms, however, should not pay a switch-on-kind (or a
/// std::function call for custom domains) per combine/prefer. This header
/// provides one empty policy struct per Table I row whose operations are
/// static, inlinable members, plus:
///
///  - DynamicDomain: a pointer-sized adapter that forwards to a runtime
///    Semiring; the fallback for Semiring::custom() domains.
///  - dispatch_domains(dd, da, f): double dispatch that invokes \p f with
///    the policy pair matching the two Semirings, instantiating the
///    callable's kernel once per distinct operation pair.
///
/// Any type with combine/prefer/strictly_prefer/equivalent/choose/one/zero
/// is a valid domain policy; in particular `const Semiring&` itself
/// satisfies the interface, so templated kernels accept either.
///
/// To bound code size, dispatch canonicalizes kinds with identical
/// operations: MinTimeSeq shares MinCostDomain's (+, <=) and MinTimePar
/// shares MinSkillDomain's (max, <=), so the five built-in kinds produce
/// 3 x 3 static kernel instantiations instead of 25. A pair involving any
/// Custom domain falls back to (DynamicDomain, DynamicDomain).

#pragma once

#include <limits>
#include <type_traits>
#include <utility>

#include "core/semiring.hpp"
#include "core/simd.hpp"

namespace adtp {

namespace detail {
inline constexpr double kDomainInf = std::numeric_limits<double>::infinity();
}  // namespace detail

/// Detects a policy's kMonotoneCombine marker: true iff the domain declares
/// its combine monotone w.r.t. its prefer (a Definition 4 axiom that holds
/// by construction for the Table I built-ins). DynamicDomain and the
/// runtime Semiring carry no marker, so custom domains never qualify even
/// when their (unchecked) axioms would permit it.
///
/// This is the k-way-eligibility trait of the combine engine: a monotone
/// combine guarantees that every row of a staircase cross product is itself
/// a staircase, which is what the sort-free merge paths in pareto.hpp
/// (pareto.hpp's staircase_combine_eligible) rely on.
template <typename D, typename = void>
struct has_monotone_combine : std::false_type {};
template <typename D>
struct has_monotone_combine<D, std::void_t<decltype(D::kMonotoneCombine)>>
    : std::bool_constant<D::kMonotoneCombine> {};

template <typename D>
inline constexpr bool is_monotone_combine_v = has_monotone_combine<D>::value;

/// Detects a policy's SIMD markers: kSimdPrefer (which way its prefer
/// points on raw doubles) and kSimdCombine (which arithmetic its combine
/// performs). A domain carrying both is a fixed-width numeric domain
/// whose every operation the batch kernels in core/simd.hpp can
/// reproduce bit-exactly; only the Table I built-ins declare them.
/// DynamicDomain and the runtime Semiring (i.e. Custom domains) carry
/// neither and always take the scalar code paths.
template <typename D, typename = void>
struct is_simd_eligible : std::false_type {};
template <typename D>
struct is_simd_eligible<
    D, std::void_t<decltype(D::kSimdPrefer), decltype(D::kSimdCombine)>>
    : std::true_type {};

template <typename D>
inline constexpr bool is_simd_eligible_v = is_simd_eligible<D>::value;

/// Both sides of a (defender, attacker) pair must be eligible before any
/// Pareto kernel may vectorize (every kernel mixes both orders).
template <typename Dd, typename Da>
inline constexpr bool is_simd_pair_eligible_v =
    is_simd_eligible_v<Dd> && is_simd_eligible_v<Da>;

/// ([0,inf], min, +, inf, 0, <=): the Table I min-cost row.
///
/// kMonotoneCombine marks that combine is monotone w.r.t. prefer (a
/// Definition 4 axiom that holds by construction for the built-ins);
/// FrontArena's sort-skipping fast paths are gated on it, so domains
/// without the marker (DynamicDomain, the runtime Semiring) always take
/// the sorting path and stay staircase-valid even if a custom combine
/// quietly violates the axiom.
struct MinCostDomain {
  static constexpr SemiringKind kKind = SemiringKind::MinCost;
  static constexpr bool kMonotoneCombine = true;
  static constexpr SimdPrefer kSimdPrefer = SimdPrefer::LowerIsBetter;
  static constexpr SimdCombine kSimdCombine = SimdCombine::Add;
  static constexpr double one() noexcept { return 0.0; }
  static constexpr double zero() noexcept { return detail::kDomainInf; }
  static constexpr double combine(double x, double y) noexcept { return x + y; }
  static constexpr bool prefer(double x, double y) noexcept { return x <= y; }
  static constexpr bool strictly_prefer(double x, double y) noexcept {
    return x < y;
  }
  static constexpr bool equivalent(double x, double y) noexcept {
    return x == y;
  }
  static constexpr double choose(double x, double y) noexcept {
    return x <= y ? x : y;
  }
};

/// ([0,inf], min, +, inf, 0, <=): sequential time; operations identical to
/// MinCostDomain (dispatch canonicalizes the two).
struct MinTimeSeqDomain : MinCostDomain {
  static constexpr SemiringKind kKind = SemiringKind::MinTimeSeq;
};

/// ([0,inf], min, max, inf, 0, <=): the Table I min-skill row.
struct MinSkillDomain {
  static constexpr SemiringKind kKind = SemiringKind::MinSkill;
  static constexpr bool kMonotoneCombine = true;
  static constexpr SimdPrefer kSimdPrefer = SimdPrefer::LowerIsBetter;
  static constexpr SimdCombine kSimdCombine = SimdCombine::Max;
  static constexpr double one() noexcept { return 0.0; }
  static constexpr double zero() noexcept { return detail::kDomainInf; }
  static constexpr double combine(double x, double y) noexcept {
    return x < y ? y : x;
  }
  static constexpr bool prefer(double x, double y) noexcept { return x <= y; }
  static constexpr bool strictly_prefer(double x, double y) noexcept {
    return x < y;
  }
  static constexpr bool equivalent(double x, double y) noexcept {
    return x == y;
  }
  static constexpr double choose(double x, double y) noexcept {
    return x <= y ? x : y;
  }
};

/// ([0,inf], min, max, inf, 0, <=): parallel time; operations identical to
/// MinSkillDomain (dispatch canonicalizes the two).
struct MinTimeParDomain : MinSkillDomain {
  static constexpr SemiringKind kKind = SemiringKind::MinTimePar;
};

/// ([0,1], max, *, 0, 1, >=): success probability; higher is better.
struct ProbabilityDomain {
  static constexpr SemiringKind kKind = SemiringKind::Probability;
  static constexpr bool kMonotoneCombine = true;
  static constexpr SimdPrefer kSimdPrefer = SimdPrefer::HigherIsBetter;
  static constexpr SimdCombine kSimdCombine = SimdCombine::Mul;
  static constexpr double one() noexcept { return 1.0; }
  static constexpr double zero() noexcept { return 0.0; }
  static constexpr double combine(double x, double y) noexcept { return x * y; }
  static constexpr bool prefer(double x, double y) noexcept { return x >= y; }
  static constexpr bool strictly_prefer(double x, double y) noexcept {
    return x > y;
  }
  static constexpr bool equivalent(double x, double y) noexcept {
    return x == y;
  }
  static constexpr double choose(double x, double y) noexcept {
    return x >= y ? x : y;
  }
};

// The SIMD markers must respect the same canonicalization dispatch uses:
// MinTimeSeq shares MinCostDomain's op-set and MinTimePar shares
// MinSkillDomain's, so the five built-in kinds still collapse to three
// kernel instantiations (checked again by bench_micro's Dispatch suite).
static_assert(MinTimeSeqDomain::kSimdPrefer == MinCostDomain::kSimdPrefer &&
              MinTimeSeqDomain::kSimdCombine == MinCostDomain::kSimdCombine);
static_assert(MinTimeParDomain::kSimdPrefer == MinSkillDomain::kSimdPrefer &&
              MinTimeParDomain::kSimdCombine == MinSkillDomain::kSimdCombine);

/// Pointer-sized adapter that presents a runtime Semiring through the
/// domain-policy interface; the dispatch fallback for custom domains. The
/// referenced Semiring must outlive the adapter.
class DynamicDomain {
 public:
  explicit DynamicDomain(const Semiring& semiring) noexcept
      : semiring_(&semiring) {}

  [[nodiscard]] double one() const noexcept { return semiring_->one(); }
  [[nodiscard]] double zero() const noexcept { return semiring_->zero(); }
  [[nodiscard]] double combine(double x, double y) const {
    return semiring_->combine(x, y);
  }
  [[nodiscard]] bool prefer(double x, double y) const {
    return semiring_->prefer(x, y);
  }
  [[nodiscard]] bool strictly_prefer(double x, double y) const {
    return semiring_->strictly_prefer(x, y);
  }
  [[nodiscard]] bool equivalent(double x, double y) const {
    return semiring_->equivalent(x, y);
  }
  [[nodiscard]] double choose(double x, double y) const {
    return semiring_->choose(x, y);
  }

  [[nodiscard]] const Semiring& semiring() const noexcept {
    return *semiring_;
  }

 private:
  const Semiring* semiring_;
};

/// Single-domain dispatch: invokes \p f with the policy matching \p s
/// (DynamicDomain for custom kinds). For kernels that depend on only one
/// domain - e.g. the Naive enumeration, which is generic in the attacker
/// domain alone - this avoids instantiating per pair.
template <typename F>
decltype(auto) dispatch_domain(const Semiring& s, F&& f) {
  switch (s.kind()) {
    case SemiringKind::MinCost:
    case SemiringKind::MinTimeSeq:
      return f(MinCostDomain{});
    case SemiringKind::MinTimePar:
    case SemiringKind::MinSkill:
      return f(MinSkillDomain{});
    case SemiringKind::Probability:
      return f(ProbabilityDomain{});
    case SemiringKind::Custom:
      break;
  }
  return f(DynamicDomain(s));
}

/// Double dispatch over the (defender, attacker) domain pair: invokes \p f
/// with static policy structs when both Semirings are built-in kinds, and
/// with DynamicDomain adapters when either is custom. \p f must be callable
/// for every policy pair (a generic lambda) and return the same type for
/// all of them.
template <typename F>
decltype(auto) dispatch_domains(const Semiring& dd, const Semiring& da,
                                F&& f) {
  if (dd.kind() == SemiringKind::Custom || da.kind() == SemiringKind::Custom) {
    return f(DynamicDomain(dd), DynamicDomain(da));
  }
  return dispatch_domain(dd, [&](const auto& pd) {
    return dispatch_domain(da, [&](const auto& pa) { return f(pd, pa); });
  });
}

}  // namespace adtp
