/// \file response.hpp
/// \brief The attacker's optimal response rho(delta) for a *fixed* defense
///        vector (Definition 7).
///
/// The Pareto-front algorithms answer the planning question over all
/// defense vectors at once; this module answers the operational question
/// for one deployed defense configuration: what will an optimal attacker
/// do, and what does it cost them? When the model has no defenses this is
/// exactly the classical BDD-based attack-tree analysis of
/// Lopuhaa-Zwakenberg et al. (the paper's [18]), which Algorithm 3
/// degenerates to.
///
/// Implementation: the structure function's ROBDD is cofactored on every
/// defense variable according to delta; the remaining BDD mentions attack
/// variables only and a single bottom-up sweep propagates the optimal
/// attack value (and its witness) per node. A Responder instance builds
/// the BDD once and serves many delta queries.

#pragma once

#include "bdd/build.hpp"
#include "core/attribution.hpp"
#include "util/bitvec.hpp"

namespace adtp {

/// Outcome of one optimal-response query.
struct ResponseResult {
  /// False when no attack vector achieves the attacker's goal; then
  /// value = 1_oplus_A and attack is the empty vector (the paper's
  /// rho(delta) = "hat").
  bool attack_exists = false;

  /// beta-hat_A(rho(delta)).
  double value = 0;

  /// A witness optimal attack vector (any minimizer).
  BitVec attack;
};

/// Multi-query optimal-response engine over one augmented ADT.
class Responder {
 public:
  /// Builds the structure function's ROBDD (defense-first order).
  /// \p node_limit guards the manager (0 = default). The model is held by
  /// reference and must outlive the Responder; binding a temporary is
  /// rejected at compile time.
  explicit Responder(const AugmentedAdt& aadt, std::size_t node_limit = 0);
  explicit Responder(AugmentedAdt&&, std::size_t = 0) = delete;

  /// The attacker's optimal response to \p defense (size |D|).
  [[nodiscard]] ResponseResult respond(const BitVec& defense) const;

  /// Convenience: the classical "no defenses deployed" analysis.
  [[nodiscard]] ResponseResult respond_undefended() const;

  /// All *minimal* successful attack vectors against \p defense - the
  /// ADT analogue of fault-tree minimal cut sets. The structure function
  /// is monotone in the attack variables (attacks only ever help the
  /// attacker), so minimal models are well-defined; they are enumerated
  /// directly on the cofactored ROBDD. Throws LimitError when more than
  /// \p max_sets sets exist (worst-case exponential).
  [[nodiscard]] std::vector<BitVec> minimal_attacks(
      const BitVec& defense, std::size_t max_sets = 1u << 20) const;

  /// Number of BDD nodes backing this responder (diagnostics).
  [[nodiscard]] std::size_t bdd_size() const;

 private:
  const AugmentedAdt* aadt_;
  bdd::VarOrder order_;
  // mutable: restrict_var() may allocate cofactor nodes in the manager.
  mutable bdd::Manager manager_;
  bdd::Ref root_;
};

/// One-shot convenience wrapper around Responder.
[[nodiscard]] ResponseResult optimal_response(const AugmentedAdt& aadt,
                                              const BitVec& defense);

}  // namespace adtp
