#include "core/pareto.hpp"

namespace adtp {

// Explicit instantiations for the two supported payloads; keeps the
// template code out of every including translation unit.
template class BasicFront<ValuePoint>;
template class BasicFront<WitnessPoint>;

template BasicFront<ValuePoint> combine_fronts(const BasicFront<ValuePoint>&,
                                               const BasicFront<ValuePoint>&,
                                               AttackOp, const Semiring&,
                                               const Semiring&);
template BasicFront<WitnessPoint> combine_fronts(
    const BasicFront<WitnessPoint>&, const BasicFront<WitnessPoint>&, AttackOp,
    const Semiring&, const Semiring&);

template std::vector<ValuePoint> pareto_min_bruteforce(
    const std::vector<ValuePoint>&, const Semiring&, const Semiring&);
template std::vector<WitnessPoint> pareto_min_bruteforce(
    const std::vector<WitnessPoint>&, const Semiring&, const Semiring&);

}  // namespace adtp
